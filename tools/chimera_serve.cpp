/**
 * @file
 * chimera-serve: the plan-and-serve daemon CLI.
 *
 * Usage:
 *   chimera-serve --socket <path> [options]   run the daemon
 *   chimera-serve --check [options]           deterministic replay check
 *
 * Options:
 *   --socket <path>         Unix-domain socket to listen on (daemon mode)
 *   --executors <N>         executor threads (default 2)
 *   --exec-threads <N>      worker threads per executed group (default 1)
 *   --no-batching           serve every request alone
 *   --max-batch <N>         max total slices per batch group (default 8)
 *   --batch-window-us <N>   admission coalescing window (default 200)
 *   --capacity <bytes>      planning memory budget (default 786432)
 *   --cache-dir <dir>       plan-cache directory (default
 *                           CHIMERA_PLAN_CACHE or ~/.cache/chimera)
 *   --no-cache              memory-only plan cache
 *   --verify                audit plans with the legality verifier
 *
 * `--check` runs the built-in deterministic workload twice through the
 * daemon's own planner gate and batcher — every request alone, then
 * coalesced — with a memory-only cache and a serial executor, verifies
 * the two passes produce bitwise-identical outputs, and prints a stable
 * digest of the batched responses. Two runs of `chimera-serve --check`
 * must print the same digest; a mismatch between passes exits 1.
 *
 * In daemon mode the process runs until a client sends a Shutdown
 * request or SIGINT/SIGTERM arrives, drains gracefully, and prints the
 * final stats document to stdout.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "support/error.hpp"

namespace {

using namespace chimera;

std::atomic<bool> gStop{false};

void
onSignal(int)
{
    gStop.store(true);
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: chimera-serve --socket <path> [options]\n"
        "       chimera-serve --check [options]\n"
        "options:\n"
        "  --executors <N>        executor threads (default 2)\n"
        "  --exec-threads <N>     workers per executed group (default 1)\n"
        "  --no-batching          serve every request alone\n"
        "  --max-batch <N>        max slices per batch group (default 8)\n"
        "  --batch-window-us <N>  admission window, microseconds "
        "(default 200)\n"
        "  --capacity <bytes>     planning budget (default 786432)\n"
        "  --cache-dir <dir>      plan-cache directory\n"
        "  --no-cache             memory-only plan cache\n"
        "  --verify               audit plans with the verifier\n");
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions options;
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--executors") {
            options.executors = std::atoi(value());
        } else if (arg == "--exec-threads") {
            options.execThreads = std::atoi(value());
        } else if (arg == "--no-batching") {
            options.batching = false;
        } else if (arg == "--max-batch") {
            options.maxBatch = std::atoll(value());
        } else if (arg == "--batch-window-us") {
            options.batchWindowMicros = std::atoll(value());
        } else if (arg == "--capacity") {
            options.capacityBytes = std::atof(value());
        } else if (arg == "--cache-dir") {
            options.cacheDir = value();
        } else if (arg == "--no-cache") {
            options.cacheDir = "-";
        } else if (arg == "--verify") {
            options.verifyPlans = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    try {
        if (check) {
            const serve::CheckResult result = serve::runCheckReplay(
                serve::builtinCheckWorkload(),
                options.batching ? options.maxBatch : 1,
                options.capacityBytes);
            std::printf("chimera-serve check\n");
            std::printf("requests: %lld\n",
                        static_cast<long long>(result.requests));
            std::printf("groups: %lld\n",
                        static_cast<long long>(result.groups));
            std::printf("identical: %s\n",
                        result.identical ? "yes" : "NO");
            std::printf("digest: %016llx\n",
                        static_cast<unsigned long long>(result.digest));
            if (!result.identical) {
                std::fprintf(stderr,
                             "error: batched outputs differ from "
                             "individually-executed outputs\n");
                return 1;
            }
            std::printf("check: ok\n");
            return 0;
        }

        if (options.socketPath.empty()) {
            usage();
            return 2;
        }
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        serve::Server server(options);
        server.start();
        while (!gStop.load() && !server.shutdownRequested()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        server.stop();
        std::fputs(server.statsText().c_str(), stdout);
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
