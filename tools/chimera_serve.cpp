/**
 * @file
 * chimera-serve: the plan-and-serve daemon CLI.
 *
 * Usage:
 *   chimera-serve --socket <path> [options]   run the daemon
 *   chimera-serve --check [options]           deterministic replay check
 *
 * Options:
 *   --socket <path>         Unix-domain socket to listen on (daemon mode)
 *   --executors <N>         executor threads (default 2)
 *   --exec-threads <N>      worker threads per executed group (default 1)
 *   --no-batching           serve every request alone
 *   --max-batch <N>         max total slices per batch group (default 8)
 *   --batch-window-us <N>   admission coalescing window (default 200)
 *   --capacity <bytes>      planning memory budget (default 786432)
 *   --cache-dir <dir>       plan-cache directory (default
 *                           CHIMERA_PLAN_CACHE or ~/.cache/chimera)
 *   --no-cache              memory-only plan cache
 *   --verify                audit plans with the legality verifier
 *   --trace-out <file>      record spans across the daemon's whole
 *                           lifecycle and write Chrome trace JSON to
 *                           <file> at shutdown (unwritable path: exit 2)
 *   --metrics-dump <file>   write the merged metrics registry (JSON:
 *                           counters, gauges, latency histograms) to
 *                           <file> at shutdown
 *
 * `--check` runs the built-in deterministic workload twice through the
 * daemon's own planner gate and batcher — every request alone, then
 * coalesced — with a memory-only cache and a serial executor, verifies
 * the two passes produce bitwise-identical outputs, and prints a stable
 * digest of the batched responses. Two runs of `chimera-serve --check`
 * must print the same digest; a mismatch between passes exits 1.
 *
 * In daemon mode the process runs until a client sends a Shutdown
 * request or SIGINT/SIGTERM arrives, drains gracefully, and prints the
 * final stats document to stdout.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"

namespace {

using namespace chimera;

std::atomic<bool> gStop{false};

void
onSignal(int)
{
    gStop.store(true);
}

/** Probes @p path for writability; a bad path is a usage error (exit
 * 2) caught at startup, not a crash after hours of serving. */
void
probeWritable(const std::string &path, const char *what)
{
    std::FILE *probe = std::fopen(path.c_str(), "wb");
    if (probe == nullptr) {
        std::fprintf(stderr, "error: cannot write %s to %s\n", what,
                     path.c_str());
        std::exit(2);
    }
    std::fclose(probe);
}

/** Writes the trace and/or metrics files requested on the command
 * line; @p server may be null (--check mode: global registry only). */
void
flushObservability(const std::string &traceOut,
                   const std::string &metricsDump,
                   const serve::Server *server)
{
    if (!traceOut.empty()) {
        if (obs::TraceRecorder *recorder = obs::trace()) {
            recorder->writeJson(traceOut);
            std::fprintf(stderr, "trace written to %s (%lld events)\n",
                         traceOut.c_str(),
                         static_cast<long long>(recorder->eventCount()));
        }
    }
    if (!metricsDump.empty()) {
        const std::string json =
            server != nullptr ? server->metricsJson()
                              : obs::Registry::global().renderJson();
        std::FILE *out = std::fopen(metricsDump.c_str(), "wb");
        if (out == nullptr) {
            std::fprintf(stderr, "error: cannot write metrics to %s\n",
                         metricsDump.c_str());
            std::exit(2);
        }
        std::fwrite(json.data(), 1, json.size(), out);
        std::fclose(out);
        std::fprintf(stderr, "metrics written to %s\n",
                     metricsDump.c_str());
    }
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: chimera-serve --socket <path> [options]\n"
        "       chimera-serve --check [options]\n"
        "options:\n"
        "  --executors <N>        executor threads (default 2)\n"
        "  --exec-threads <N>     workers per executed group (default 1)\n"
        "  --no-batching          serve every request alone\n"
        "  --max-batch <N>        max slices per batch group (default 8)\n"
        "  --batch-window-us <N>  admission window, microseconds "
        "(default 200)\n"
        "  --capacity <bytes>     planning budget (default 786432)\n"
        "  --cache-dir <dir>      plan-cache directory\n"
        "  --no-cache             memory-only plan cache\n"
        "  --verify               audit plans with the verifier\n"
        "  --trace-out <file>     write Chrome trace JSON at shutdown\n"
        "  --metrics-dump <file>  write metrics registry JSON at "
        "shutdown\n");
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions options;
    bool check = false;
    std::string traceOut;
    std::string metricsDump;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--executors") {
            options.executors = std::atoi(value());
        } else if (arg == "--exec-threads") {
            options.execThreads = std::atoi(value());
        } else if (arg == "--no-batching") {
            options.batching = false;
        } else if (arg == "--max-batch") {
            options.maxBatch = std::atoll(value());
        } else if (arg == "--batch-window-us") {
            options.batchWindowMicros = std::atoll(value());
        } else if (arg == "--capacity") {
            options.capacityBytes = std::atof(value());
        } else if (arg == "--cache-dir") {
            options.cacheDir = value();
        } else if (arg == "--no-cache") {
            options.cacheDir = "-";
        } else if (arg == "--verify") {
            options.verifyPlans = true;
        } else if (arg == "--trace-out") {
            traceOut = value();
        } else if (arg == "--metrics-dump") {
            metricsDump = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (!traceOut.empty()) {
        probeWritable(traceOut, "trace output");
        obs::TraceRecorder::enableGlobal();
    }
    if (!metricsDump.empty()) {
        probeWritable(metricsDump, "metrics dump");
    }

    try {
        if (check) {
            const serve::CheckResult result = serve::runCheckReplay(
                serve::builtinCheckWorkload(),
                options.batching ? options.maxBatch : 1,
                options.capacityBytes);
            std::printf("chimera-serve check\n");
            std::printf("requests: %lld\n",
                        static_cast<long long>(result.requests));
            std::printf("groups: %lld\n",
                        static_cast<long long>(result.groups));
            std::printf("identical: %s\n",
                        result.identical ? "yes" : "NO");
            std::printf("digest: %016llx\n",
                        static_cast<unsigned long long>(result.digest));
            if (!result.identical) {
                std::fprintf(stderr,
                             "error: batched outputs differ from "
                             "individually-executed outputs\n");
                return 1;
            }
            std::printf("check: ok\n");
            flushObservability(traceOut, metricsDump, nullptr);
            return 0;
        }

        if (options.socketPath.empty()) {
            usage();
            return 2;
        }
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        serve::Server server(options);
        server.start();
        while (!gStop.load() && !server.shutdownRequested()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        server.stop();
        std::fputs(server.statsText().c_str(), stdout);
        flushObservability(traceOut, metricsDump, &server);
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
