/**
 * @file
 * chimera-check: static legality verifier for chains and plan documents.
 *
 * Describes a chain the same way chimera-plan does, audits the chain IR
 * (rules CH01-CH07), then audits either a plan document supplied with
 * --plan or the planner's own winning schedule (rules PL01-PL12 plus
 * the DP01-DP06 concurrency rules), and optionally the micro-kernel
 * register tile (KP01-KP03). Prints every finding as "severity: [rule]
 * location: message" and exits non-zero when any error-severity finding
 * was reported.
 *
 * With --race the tool additionally *executes* the fused chain (gemm
 * and conv modes only) under a shadow-memory race checker: every block
 * task tags the output elements it writes, and two distinct tasks
 * claiming the same element is reported as rule RC01. Detection is
 * keyed on the deterministic block-task index, so the suspect plan is
 * run serially — a mis-declared parallel axis is caught without ever
 * racing for real. This is the dynamic complement of the static DP
 * rules: DP02 says the declared table disagrees with the analysis,
 * RC01 says the disagreement produces conflicting writers in practice.
 *
 * With --search the tool replays the planner's pruned order search
 * against exhaustive enumeration (rules OE01-OE04,
 * src/verify/search_verifier.hpp): exact pruning modes must select the
 * bitwise-identical plan, sampled symmetry-class members must solve
 * identically to their representatives, every solved order must respect
 * its certified lower bound, and beam mode's optimality-gap bound must
 * cover the exhaustive optimum. --prune picks the audited mode
 * (none/symmetry/dominance/beam, default dominance).
 *
 * With --static the tool runs the symbolic plan-safety analyzer (rules
 * SB01-SB04, src/analysis/static_safety.hpp) on the resolved plan:
 * shape-generic bounds containment, workspace budgeting, int64
 * overflow-freedom and race-freedom, proven over a shape domain rather
 * than observed on one shape. --domain axis=max (repeatable) widens an
 * axis to [1, max]; the default domain pins every axis to its concrete
 * extent. A certified plan prints its certificate line plus a
 * machine-parseable per-rule timing line.
 *
 * Usage:
 *   chimera-check gemm <batch> <M> <N> <K> <L> [options]
 *   chimera-check gemm3 <batch> <M> <N> <K> <L> <P> [options]
 *   chimera-check conv <batch> <IC> <H> <W> <OC1> <OC2> <k1> <k2> \
 *                      <stride1> <stride2> [options]
 *   chimera-check dsl '<einsum statements>' idx=extent... [options]
 * Options:
 *   --plan <file>        verify the plan document instead of planning
 *   --fingerprint <hex>  expected fingerprint for --plan (rule PL10)
 *   --capacity <bytes>   on-chip budget for PL07/SB02 (default 786432)
 *   --softmax | --relu   fuse that epilogue on the intermediate
 *   --registers <N>      also audit the selected micro-kernel params
 *   --no-recount         skip the brute-force Algorithm-1 recount (PL09)
 *   --threads <N>        planner threads when planning fresh
 *   --race               execute the fused chain under the shadow-memory
 *                        race checker (gemm/conv only; rule RC01)
 *   --search             replay the pruned order search against
 *                        exhaustive enumeration (OE01-OE04)
 *   --prune <mode>       pruning mode for --search: none, symmetry,
 *                        dominance (default), or beam
 *   --beam-width <N>     beam width when --prune beam (default 8)
 *   --static             run the symbolic safety analyzer (SB01-SB04)
 *   --domain axis=max    widen one axis of the --static shape domain to
 *                        [1, max] (repeatable)
 *
 * Exit status: 0 clean (warnings allowed), 1 rule violations found,
 * 2 usage or IO failure (unreadable plan file, bad --domain axis, ...).
 */

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "analysis/race_checker.hpp"
#include "exec/constraints.hpp"
#include "exec/conv_chain_exec.hpp"
#include "exec/gemm_chain3_exec.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/builders.hpp"
#include "ir/dsl.hpp"
#include "kernels/kernel_params.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "verify/chain_verifier.hpp"
#include "verify/plan_verifier.hpp"
#include "verify/safety_verifier.hpp"
#include "verify/search_verifier.hpp"

namespace {

using namespace chimera;

struct CliOptions
{
    double capacityBytes = 768.0 * 1024;
    ir::Epilogue epilogue = ir::Epilogue::None;
    std::string planFile;
    std::string fingerprint;
    int registers = 0; // 0 = skip the kernel-params audit
    bool recount = true;
    int threads = 0;
    bool race = false;
    bool search = false;
    analysis::PruneMode prune = analysis::PruneMode::Dominance;
    int beamWidth = 8;
    bool staticSafety = false;
    std::map<std::string, std::int64_t> safetyDomain; // axis -> max
};

/** Executes one planned schedule under a RaceChecker; empty for dsl. */
using RaceScan =
    std::function<verify::Report(const plan::ExecutionPlan &)>;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: chimera-check gemm <batch> <M> <N> <K> <L> [options]\n"
        "       chimera-check gemm3 <batch> <M> <N> <K> <L> <P>"
        " [options]\n"
        "       chimera-check conv <batch> <IC> <H> <W> <OC1> <OC2>"
        " <k1> <k2> <st1> <st2> [options]\n"
        "       chimera-check dsl '<einsum statements>' idx=extent..."
        " [options]\n"
        "options: --plan <file> --fingerprint <hex> --capacity <bytes>"
        " --softmax --relu --registers <N> --no-recount --threads <N>"
        " --race (gemm/conv only) --search --prune <mode>"
        " --beam-width <N> --static --domain axis=max\n");
    std::exit(2);
}

CliOptions
parseOptions(int argc, char **argv, int firstOption)
{
    CliOptions options;
    for (int i = firstOption; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--plan" && i + 1 < argc) {
            options.planFile = argv[++i];
        } else if (arg == "--fingerprint" && i + 1 < argc) {
            options.fingerprint = argv[++i];
        } else if (arg == "--capacity" && i + 1 < argc) {
            options.capacityBytes = std::atof(argv[++i]);
        } else if (arg == "--softmax") {
            options.epilogue = ir::Epilogue::Softmax;
        } else if (arg == "--relu") {
            options.epilogue = ir::Epilogue::Relu;
        } else if (arg == "--registers" && i + 1 < argc) {
            options.registers = std::atoi(argv[++i]);
        } else if (arg == "--no-recount") {
            options.recount = false;
        } else if (arg == "--race") {
            options.race = true;
        } else if (arg == "--search") {
            options.search = true;
        } else if (arg == "--prune" && i + 1 < argc) {
            const std::optional<analysis::PruneMode> mode =
                analysis::parsePruneMode(argv[++i]);
            if (!mode) {
                usage();
            }
            options.prune = *mode;
        } else if (arg == "--beam-width" && i + 1 < argc) {
            options.beamWidth = std::atoi(argv[++i]);
            if (options.beamWidth < 1) {
                usage();
            }
        } else if (arg == "--static") {
            options.staticSafety = true;
        } else if (arg == "--domain" && i + 1 < argc) {
            const std::string spec = argv[++i];
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= spec.size()) {
                usage();
            }
            const std::int64_t maxExtent =
                std::atoll(spec.c_str() + eq + 1);
            if (maxExtent < 1) {
                usage();
            }
            options.safetyDomain[spec.substr(0, eq)] = maxExtent;
        } else if (arg == "--threads" && i + 1 < argc) {
            options.threads = std::atoi(argv[++i]);
        } else {
            usage();
        }
    }
    return options;
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return std::nullopt;
    }
    std::string contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        contents.append(buffer, n);
    }
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok) {
        return std::nullopt;
    }
    return contents;
}

verify::PlanVerifyOptions
verifyOptions(const CliOptions &options)
{
    verify::PlanVerifyOptions vo;
    vo.memCapacityBytes = options.capacityBytes;
    vo.recount = options.recount;
    return vo;
}

/**
 * Audits the --plan document (or PL01 when it does not even parse).
 * An *unreadable* file is an IO failure, not a rule violation: it
 * throws, and main turns that into exit status 2. @p resolved, when
 * non-null, receives the deserialized plan if the document binds — the
 * --static pass runs on it.
 */
verify::Report
checkPlanFile(const ir::Chain &chain, const CliOptions &options,
              std::optional<plan::ExecutionPlan> *resolved)
{
    verify::Report report;
    const std::optional<std::string> text = readFile(options.planFile);
    if (!text) {
        throw Error("cannot read plan file " + options.planFile);
    }
    try {
        const plan::ParsedPlanDoc doc = plan::parsePlanDocument(*text);
        report.merge(verify::verifyPlanDocument(
            chain, doc, options.fingerprint, verifyOptions(options)));
    } catch (const Error &e) {
        report.error("PL01", options.planFile, e.what());
    }
    if (resolved != nullptr) {
        try {
            *resolved =
                plan::deserializePlan(chain, *text, options.fingerprint);
        } catch (const Error &) {
            // Document does not even bind to the chain; the findings
            // above already say why, and --static has nothing to run on.
        }
    }
    return report;
}

/** Plans the chain fresh and audits the winner. */
verify::Report
checkFreshPlan(const ir::Chain &chain,
               const solver::TileConstraints &constraints,
               const CliOptions &options,
               std::optional<plan::ExecutionPlan> *resolved)
{
    verify::Report report;
    plan::PlannerOptions po;
    po.memCapacityBytes = options.capacityBytes;
    po.constraints = constraints;
    po.threads = options.threads;
    po.verify = false; // we are the verifier; report, don't throw
    try {
        const plan::ExecutionPlan plan = plan::planChain(chain, po);
        std::printf("plan:  order %s, %d candidates solved\n",
                    plan::orderString(chain, plan.perm).c_str(),
                    plan.candidatesExamined);
        report.merge(verify::verifyExecutionPlan(chain, plan,
                                                 verifyOptions(options)));
        if (resolved != nullptr) {
            *resolved = plan;
        }
    } catch (const Error &e) {
        report.error("PL05", "planner",
                     std::string("planning failed: ") + e.what());
    }
    return report;
}

/**
 * The --static pass: runs the symbolic safety analyzer over the
 * resolved plan and the CLI-assembled shape domain, reporting SB
 * violations into @p report and printing the certificate plus a
 * machine-parseable per-rule timing line (consumed by CI's analyzer
 * timing artifact). A bad --domain axis throws out of
 * verifyPlanSafety — a CLI input defect, exit status 2.
 */
void
runStaticSafety(const ir::Chain &chain, const plan::ExecutionPlan &plan,
                const CliOptions &options, verify::Report &report)
{
    verify::SafetyVerifyOptions so;
    so.memCapacityBytes = options.capacityBytes;
    so.workers = std::max(1, options.threads);
    std::string spec;
    for (const auto &[axis, maxExtent] : options.safetyDomain) {
        if (!spec.empty()) {
            spec += ",";
        }
        spec += axis + ":1.." + std::to_string(maxExtent);
    }
    so.domainSpec = spec;
    analysis::SafetyAnalysis analysis;
    report.merge(verify::verifyPlanSafety(chain, plan, so, &analysis));
    if (analysis.certificate.certified) {
        std::printf("static-safety: certified domain=%s digest=%s\n",
                    analysis.certificate.domain.c_str(),
                    analysis.certificate.digest.c_str());
    } else {
        std::printf("static-safety: refuted domain=%s (%zu"
                    " violation(s))\n",
                    analysis.certificate.domain.c_str(),
                    analysis.violations.size());
    }
    std::printf("static-safety timing: sb01 %.3f ms sb02 %.3f ms"
                " sb03 %.3f ms sb04 %.3f ms total %.3f ms\n",
                analysis.ruleSeconds[0] * 1e3,
                analysis.ruleSeconds[1] * 1e3,
                analysis.ruleSeconds[2] * 1e3,
                analysis.ruleSeconds[3] * 1e3,
                analysis.totalSeconds * 1e3);
}

/**
 * The --search pass: replays the pruned order search against exhaustive
 * enumeration (verify::replaySearch) and prints both outcomes plus the
 * search-stats line of the pruned run. OE01-OE04 findings land in
 * @p report; a planner failure is an environment problem and exits 2
 * through main's catch.
 */
void
runSearchReplay(const ir::Chain &chain,
                const solver::TileConstraints &constraints,
                const CliOptions &options, verify::Report &report)
{
    plan::PlannerOptions po;
    po.memCapacityBytes = options.capacityBytes;
    po.constraints = constraints;
    po.threads = options.threads;
    po.prune = options.prune;
    po.beamWidth = options.beamWidth;
    const verify::SearchReplay replay =
        verify::replaySearch(chain, po);
    const analysis::SearchStats &s = replay.pruned.search;
    std::printf(
        "search: mode=%s order %s — solved %lld of %lld enumerated"
        " (filtered %lld, symmetry %lld, dominance %lld, beam %lld%s)\n",
        analysis::pruneModeName(s.mode),
        plan::orderString(chain, replay.pruned.perm).c_str(),
        static_cast<long long>(s.solved),
        static_cast<long long>(s.enumerated),
        static_cast<long long>(s.filtered),
        static_cast<long long>(s.symmetryPruned),
        static_cast<long long>(s.dominancePruned),
        static_cast<long long>(s.beamPruned),
        s.truncated ? "; truncated" : "");
    std::printf(
        "search: exhaustive order %s — solved %lld of %lld enumerated\n",
        plan::orderString(chain, replay.exhaustive.perm).c_str(),
        static_cast<long long>(replay.exhaustive.search.solved),
        static_cast<long long>(replay.exhaustive.search.enumerated));
    if (s.mode == analysis::PruneMode::Beam) {
        std::printf("search: beam gap bound %lld bytes\n",
                    static_cast<long long>(s.gapBoundBytes));
    } else if (replay.pruned.perm == replay.exhaustive.perm &&
               replay.pruned.tiles == replay.exhaustive.tiles) {
        std::printf("search: pruned and exhaustive argmin agree\n");
    }
    report.merge(replay.report);
}

/** Reports checker conflicts as RC01 (or prints the clean summary). */
void
reportRaceFindings(const analysis::RaceChecker &checker,
                   verify::Report &report)
{
    if (checker.hasConflicts()) {
        report.error("RC01", "race", checker.report());
    } else {
        std::printf("race:  no conflicting writers observed\n");
    }
}

/**
 * The plan the dynamic race scan should execute: the --plan document
 * when given (deliberately loaded through deserializePlan, which keeps
 * a mis-declared concurrency table so the scan can observe it), else a
 * fresh planner run. Throws on unreadable/unbindable documents.
 */
plan::ExecutionPlan
planForRaceScan(const ir::Chain &chain,
                const solver::TileConstraints &constraints,
                const CliOptions &options)
{
    if (!options.planFile.empty()) {
        const std::optional<std::string> text = readFile(options.planFile);
        if (!text) {
            throw Error("cannot read plan file " + options.planFile);
        }
        return plan::deserializePlan(chain, *text, options.fingerprint);
    }
    plan::PlannerOptions po;
    po.memCapacityBytes = options.capacityBytes;
    po.constraints = constraints;
    po.threads = options.threads;
    po.verify = false;
    return plan::planChain(chain, po);
}

int
run(const ir::Chain &chain, const solver::TileConstraints &constraints,
    const CliOptions &options, const RaceScan &raceScan = {})
{
    std::printf("chain: %s (%d axes, %zu ops, %zu tensors)\n",
                chain.name().c_str(), chain.numAxes(), chain.ops().size(),
                chain.tensors().size());

    if (options.race && !raceScan) {
        std::fprintf(stderr,
                     "--race needs an executable chain (gemm or conv"
                     " mode)\n");
        usage();
    }

    verify::Report report = verify::verifyChain(chain);
    const bool chainBroken = report.hasErrors();
    std::optional<plan::ExecutionPlan> resolved;
    if (chainBroken) {
        std::printf("chain IR is ill-formed; skipping plan checks\n");
    } else if (!options.planFile.empty()) {
        report.merge(checkPlanFile(chain, options,
                                   options.staticSafety ? &resolved
                                                        : nullptr));
    } else {
        report.merge(
            checkFreshPlan(chain, constraints, options, &resolved));
    }

    if (options.staticSafety && !chainBroken) {
        if (resolved) {
            runStaticSafety(chain, *resolved, options, report);
        } else {
            std::printf("static-safety: skipped (no resolvable plan)\n");
        }
    }

    if (options.search && !chainBroken) {
        runSearchReplay(chain, constraints, options, report);
    }

    if (options.race && !chainBroken) {
        try {
            report.merge(raceScan(planForRaceScan(chain, constraints,
                                                  options)));
        } catch (const Error &e) {
            report.error("RC01", "race",
                         std::string("race scan could not execute the"
                                     " plan: ") +
                             e.what());
        }
    }

    if (options.registers > 0) {
        report.merge(verify::verifyKernelParams(
            kernels::selectCpuKernelParams(options.registers),
            options.registers));
    }

    const std::string rendered = report.render();
    if (!rendered.empty()) {
        std::printf("%s\n", rendered.c_str());
    }
    if (report.hasErrors()) {
        std::printf("chimera-check: %d error(s), %d warning(s)\n",
                    report.errorCount(), report.warningCount());
        return 1;
    }
    if (report.warningCount() > 0) {
        std::printf("chimera-check: clean (%d warning(s))\n",
                    report.warningCount());
    } else {
        std::printf("chimera-check: clean\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
    }
    const std::string mode = argv[1];
    const auto &kernel =
        kernels::MicroKernelRegistry::instance().select(detectSimdTier());

    try {
        if (mode == "gemm" && argc >= 7) {
            const CliOptions options = parseOptions(argc, argv, 7);
            ir::GemmChainConfig cfg;
            cfg.name = "check-gemm-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.m = std::atoll(argv[3]);
            cfg.n = std::atoll(argv[4]);
            cfg.k = std::atoll(argv[5]);
            cfg.l = std::atoll(argv[6]);
            cfg.epilogue = options.epilogue;
            if (cfg.epilogue == ir::Epilogue::Softmax) {
                cfg.softmaxScale =
                    1.0f / std::sqrt(static_cast<float>(cfg.k));
            }
            const ir::Chain chain = ir::makeGemmChain(cfg);
            const RaceScan scan =
                [&cfg](const plan::ExecutionPlan &plan) {
                    verify::Report report;
                    Tensor a(exec::gemmChainShapeA(cfg));
                    Tensor b(exec::gemmChainShapeB(cfg));
                    Tensor d(exec::gemmChainShapeD(cfg));
                    Tensor e(exec::gemmChainShapeE(cfg));
                    Rng rng(42);
                    fillUniform(a, rng);
                    fillUniform(b, rng);
                    fillUniform(d, rng);
                    analysis::RaceChecker checker(e.numel());
                    exec::ExecOptions eo;
                    eo.threads = 1; // task-keyed detection: run serially
                    eo.raceCheck = &checker;
                    exec::runFusedGemmChain(
                        cfg, plan, exec::ComputeEngine::best(), a, b, d,
                        e, eo);
                    reportRaceFindings(checker, report);
                    return report;
                };
            return run(chain, exec::cpuChainConstraints(chain, kernel),
                       options, scan);
        }
        if (mode == "gemm3" && argc >= 8) {
            const CliOptions options = parseOptions(argc, argv, 8);
            ir::GemmChain3Config cfg;
            cfg.name = "check-gemm3-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.m = std::atoll(argv[3]);
            cfg.n = std::atoll(argv[4]);
            cfg.k = std::atoll(argv[5]);
            cfg.l = std::atoll(argv[6]);
            cfg.p = std::atoll(argv[7]);
            cfg.epilogue = options.epilogue;
            if (cfg.epilogue == ir::Epilogue::Softmax) {
                cfg.softmaxScale =
                    1.0f / std::sqrt(static_cast<float>(cfg.k));
            }
            const ir::Chain chain = ir::makeGemmChain3(cfg);
            const RaceScan scan =
                [&cfg](const plan::ExecutionPlan &plan) {
                    verify::Report report;
                    Tensor a(exec::gemmChain3ShapeA(cfg));
                    Tensor b(exec::gemmChain3ShapeB(cfg));
                    Tensor d(exec::gemmChain3ShapeD(cfg));
                    Tensor f(exec::gemmChain3ShapeF(cfg));
                    Tensor e(exec::gemmChain3ShapeE(cfg));
                    Rng rng(42);
                    fillUniform(a, rng);
                    fillUniform(b, rng);
                    fillUniform(d, rng);
                    fillUniform(f, rng);
                    analysis::RaceChecker checker(e.numel());
                    exec::ExecOptions eo;
                    eo.threads = 1; // task-keyed detection: run serially
                    eo.raceCheck = &checker;
                    exec::runFusedGemmChain3(
                        cfg, plan, exec::ComputeEngine::best(), a, b, d,
                        f, e, eo);
                    reportRaceFindings(checker, report);
                    return report;
                };
            return run(chain, exec::gemmChain3Constraints(chain, kernel),
                       options, scan);
        }
        if (mode == "conv" && argc >= 12) {
            const CliOptions options = parseOptions(argc, argv, 12);
            ir::ConvChainConfig cfg;
            cfg.name = "check-conv-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.ic = std::atoll(argv[3]);
            cfg.h = std::atoll(argv[4]);
            cfg.w = std::atoll(argv[5]);
            cfg.oc1 = std::atoll(argv[6]);
            cfg.oc2 = std::atoll(argv[7]);
            cfg.k1 = std::atoi(argv[8]);
            cfg.k2 = std::atoi(argv[9]);
            cfg.stride1 = std::atoi(argv[10]);
            cfg.stride2 = std::atoi(argv[11]);
            cfg.epilogue = options.epilogue;
            const ir::Chain chain = ir::makeConvChain(cfg);
            const RaceScan scan =
                [&cfg](const plan::ExecutionPlan &plan) {
                    verify::Report report;
                    Tensor input(exec::convChainShapeI(cfg));
                    Tensor w1(exec::convChainShapeW1(cfg));
                    Tensor w2(exec::convChainShapeW2(cfg));
                    Tensor output(exec::convChainShapeO(cfg));
                    Rng rng(42);
                    fillUniform(input, rng);
                    fillUniform(w1, rng);
                    fillUniform(w2, rng);
                    analysis::RaceChecker checker(output.numel());
                    exec::ExecOptions eo;
                    eo.threads = 1; // task-keyed detection: run serially
                    eo.raceCheck = &checker;
                    exec::runFusedConvChain(cfg, plan,
                                            exec::ComputeEngine::best(),
                                            input, w1, w2, output, eo);
                    reportRaceFindings(checker, report);
                    return report;
                };
            return run(chain, exec::cpuChainConstraints(chain, kernel),
                       options, scan);
        }
        if (mode == "dsl" && argc >= 3) {
            std::map<std::string, std::int64_t> extents;
            int firstOption = argc;
            for (int i = 3; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg.rfind("--", 0) == 0) {
                    firstOption = i;
                    break;
                }
                const std::size_t eq = arg.find('=');
                if (eq == std::string::npos) {
                    usage();
                }
                extents[arg.substr(0, eq)] =
                    std::atoll(arg.c_str() + eq + 1);
            }
            const CliOptions options =
                parseOptions(argc, argv, firstOption);
            const ir::Chain chain =
                ir::parseEinsumChain(argv[2], extents, "check-dsl-chain");
            return run(chain, plan::alphaConstraints(chain, 16), options);
        }
        usage();
    } catch (const chimera::Error &e) {
        // Errors that escape to here are environment/usage failures
        // (unreadable plan file, unknown --domain axis, chain-builder
        // misuse) — not rule violations, which exit 1 above. CI and the
        // sweep scripts rely on the distinction.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
