/**
 * @file
 * chimera-check: static legality verifier for chains and plan documents.
 *
 * Describes a chain the same way chimera-plan does, audits the chain IR
 * (rules CH01-CH07), then audits either a plan document supplied with
 * --plan or the planner's own winning schedule (rules PL01-PL11), and
 * optionally the micro-kernel register tile (KP01-KP03). Prints every
 * finding as "severity: [rule] location: message" and exits non-zero
 * when any error-severity finding was reported.
 *
 * Usage:
 *   chimera-check gemm <batch> <M> <N> <K> <L> [options]
 *   chimera-check conv <batch> <IC> <H> <W> <OC1> <OC2> <k1> <k2> \
 *                      <stride1> <stride2> [options]
 *   chimera-check dsl '<einsum statements>' idx=extent... [options]
 * Options:
 *   --plan <file>        verify the plan document instead of planning
 *   --fingerprint <hex>  expected fingerprint for --plan (rule PL10)
 *   --capacity <bytes>   on-chip budget for PL07 (default 786432)
 *   --softmax | --relu   fuse that epilogue on the intermediate
 *   --registers <N>      also audit the selected micro-kernel params
 *   --no-recount         skip the brute-force Algorithm-1 recount (PL09)
 *   --threads <N>        planner threads when planning fresh
 *
 * Exit status: 0 clean (warnings allowed), 1 errors found, 2 bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <optional>
#include <string>

#include "exec/constraints.hpp"
#include "ir/builders.hpp"
#include "ir/dsl.hpp"
#include "kernels/kernel_params.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "verify/chain_verifier.hpp"
#include "verify/plan_verifier.hpp"

namespace {

using namespace chimera;

struct CliOptions
{
    double capacityBytes = 768.0 * 1024;
    ir::Epilogue epilogue = ir::Epilogue::None;
    std::string planFile;
    std::string fingerprint;
    int registers = 0; // 0 = skip the kernel-params audit
    bool recount = true;
    int threads = 0;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: chimera-check gemm <batch> <M> <N> <K> <L> [options]\n"
        "       chimera-check conv <batch> <IC> <H> <W> <OC1> <OC2>"
        " <k1> <k2> <st1> <st2> [options]\n"
        "       chimera-check dsl '<einsum statements>' idx=extent..."
        " [options]\n"
        "options: --plan <file> --fingerprint <hex> --capacity <bytes>"
        " --softmax --relu --registers <N> --no-recount --threads <N>\n");
    std::exit(2);
}

CliOptions
parseOptions(int argc, char **argv, int firstOption)
{
    CliOptions options;
    for (int i = firstOption; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--plan" && i + 1 < argc) {
            options.planFile = argv[++i];
        } else if (arg == "--fingerprint" && i + 1 < argc) {
            options.fingerprint = argv[++i];
        } else if (arg == "--capacity" && i + 1 < argc) {
            options.capacityBytes = std::atof(argv[++i]);
        } else if (arg == "--softmax") {
            options.epilogue = ir::Epilogue::Softmax;
        } else if (arg == "--relu") {
            options.epilogue = ir::Epilogue::Relu;
        } else if (arg == "--registers" && i + 1 < argc) {
            options.registers = std::atoi(argv[++i]);
        } else if (arg == "--no-recount") {
            options.recount = false;
        } else if (arg == "--threads" && i + 1 < argc) {
            options.threads = std::atoi(argv[++i]);
        } else {
            usage();
        }
    }
    return options;
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return std::nullopt;
    }
    std::string contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        contents.append(buffer, n);
    }
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok) {
        return std::nullopt;
    }
    return contents;
}

verify::PlanVerifyOptions
verifyOptions(const CliOptions &options)
{
    verify::PlanVerifyOptions vo;
    vo.memCapacityBytes = options.capacityBytes;
    vo.recount = options.recount;
    return vo;
}

/** Audits the --plan document (or PL01 when it does not even parse). */
verify::Report
checkPlanFile(const ir::Chain &chain, const CliOptions &options)
{
    verify::Report report;
    const std::optional<std::string> text = readFile(options.planFile);
    if (!text) {
        report.error("PL01", options.planFile, "cannot read plan file");
        return report;
    }
    try {
        const plan::ParsedPlanDoc doc = plan::parsePlanDocument(*text);
        report.merge(verify::verifyPlanDocument(
            chain, doc, options.fingerprint, verifyOptions(options)));
    } catch (const Error &e) {
        report.error("PL01", options.planFile, e.what());
    }
    return report;
}

/** Plans the chain fresh and audits the winner. */
verify::Report
checkFreshPlan(const ir::Chain &chain,
               const solver::TileConstraints &constraints,
               const CliOptions &options)
{
    verify::Report report;
    plan::PlannerOptions po;
    po.memCapacityBytes = options.capacityBytes;
    po.constraints = constraints;
    po.threads = options.threads;
    po.verify = false; // we are the verifier; report, don't throw
    try {
        const plan::ExecutionPlan plan = plan::planChain(chain, po);
        std::printf("plan:  order %s, %d candidates solved\n",
                    plan::orderString(chain, plan.perm).c_str(),
                    plan.candidatesExamined);
        report.merge(verify::verifyExecutionPlan(chain, plan,
                                                 verifyOptions(options)));
    } catch (const Error &e) {
        report.error("PL05", "planner",
                     std::string("planning failed: ") + e.what());
    }
    return report;
}

int
run(const ir::Chain &chain, const solver::TileConstraints &constraints,
    const CliOptions &options)
{
    std::printf("chain: %s (%d axes, %zu ops, %zu tensors)\n",
                chain.name().c_str(), chain.numAxes(), chain.ops().size(),
                chain.tensors().size());

    verify::Report report = verify::verifyChain(chain);
    const bool chainBroken = report.hasErrors();
    if (chainBroken) {
        std::printf("chain IR is ill-formed; skipping plan checks\n");
    } else if (!options.planFile.empty()) {
        report.merge(checkPlanFile(chain, options));
    } else {
        report.merge(checkFreshPlan(chain, constraints, options));
    }

    if (options.registers > 0) {
        report.merge(verify::verifyKernelParams(
            kernels::selectCpuKernelParams(options.registers),
            options.registers));
    }

    const std::string rendered = report.render();
    if (!rendered.empty()) {
        std::printf("%s\n", rendered.c_str());
    }
    if (report.hasErrors()) {
        std::printf("chimera-check: %d error(s), %d warning(s)\n",
                    report.errorCount(), report.warningCount());
        return 1;
    }
    if (report.warningCount() > 0) {
        std::printf("chimera-check: clean (%d warning(s))\n",
                    report.warningCount());
    } else {
        std::printf("chimera-check: clean\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
    }
    const std::string mode = argv[1];
    const auto &kernel =
        kernels::MicroKernelRegistry::instance().select(detectSimdTier());

    try {
        if (mode == "gemm" && argc >= 7) {
            const CliOptions options = parseOptions(argc, argv, 7);
            ir::GemmChainConfig cfg;
            cfg.name = "check-gemm-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.m = std::atoll(argv[3]);
            cfg.n = std::atoll(argv[4]);
            cfg.k = std::atoll(argv[5]);
            cfg.l = std::atoll(argv[6]);
            cfg.epilogue = options.epilogue;
            if (cfg.epilogue == ir::Epilogue::Softmax) {
                cfg.softmaxScale =
                    1.0f / std::sqrt(static_cast<float>(cfg.k));
            }
            const ir::Chain chain = ir::makeGemmChain(cfg);
            return run(chain, exec::cpuChainConstraints(chain, kernel),
                       options);
        }
        if (mode == "conv" && argc >= 12) {
            const CliOptions options = parseOptions(argc, argv, 12);
            ir::ConvChainConfig cfg;
            cfg.name = "check-conv-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.ic = std::atoll(argv[3]);
            cfg.h = std::atoll(argv[4]);
            cfg.w = std::atoll(argv[5]);
            cfg.oc1 = std::atoll(argv[6]);
            cfg.oc2 = std::atoll(argv[7]);
            cfg.k1 = std::atoi(argv[8]);
            cfg.k2 = std::atoi(argv[9]);
            cfg.stride1 = std::atoi(argv[10]);
            cfg.stride2 = std::atoi(argv[11]);
            cfg.epilogue = options.epilogue;
            const ir::Chain chain = ir::makeConvChain(cfg);
            return run(chain, exec::cpuChainConstraints(chain, kernel),
                       options);
        }
        if (mode == "dsl" && argc >= 3) {
            std::map<std::string, std::int64_t> extents;
            int firstOption = argc;
            for (int i = 3; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg.rfind("--", 0) == 0) {
                    firstOption = i;
                    break;
                }
                const std::size_t eq = arg.find('=');
                if (eq == std::string::npos) {
                    usage();
                }
                extents[arg.substr(0, eq)] =
                    std::atoll(arg.c_str() + eq + 1);
            }
            const CliOptions options =
                parseOptions(argc, argv, firstOption);
            const ir::Chain chain =
                ir::parseEinsumChain(argv[2], extents, "check-dsl-chain");
            return run(chain, plan::alphaConstraints(chain, 16), options);
        }
        usage();
    } catch (const chimera::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
