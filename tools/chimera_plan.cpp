/**
 * @file
 * chimera-plan: command-line planner. Describes a chain from arguments,
 * runs the inter-block optimizer, and prints the chosen schedule, the
 * per-tensor data movement breakdown, and optionally the generated C
 * kernel or a serialized plan document.
 *
 * Usage:
 *   chimera-plan gemm  <batch> <M> <N> <K> <L> [options]
 *   chimera-plan conv  <batch> <IC> <H> <W> <OC1> <OC2> <k1> <k2> \
 *                      <stride1> <stride2> [options]
 * Options:
 *   --softmax | --relu      fuse that epilogue on the intermediate
 *   --capacity <bytes>      on-chip memory budget (default 786432)
 *   --threads <N>           planner threads (0 = CHIMERA_THREADS/auto)
 *   --emit-c                print the generated C kernel (GEMM chains)
 *   --emit-plan             print the serialized plan document
 *   --cache | --no-cache    use/skip the persistent plan cache (on by
 *                           default; a warm entry skips enumeration)
 *   --cache-dir <dir>       cache location (default CHIMERA_PLAN_CACHE
 *                           or ~/.cache/chimera)
 *   --verify                audit the winning plan with the legality
 *                           verifier (see chimera-check); exit 1 on
 *                           any error finding
 *   --trace                 record planner spans; write Chrome trace
 *                           JSON to chimera-plan-trace.json on exit
 *   --trace-out <file>      like --trace, to <file> (an unwritable
 *                           path is a usage error: exit 2)
 */

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/c_emitter.hpp"
#include "ir/dsl.hpp"
#include "codegen/conv_emitter.hpp"
#include "exec/constraints.hpp"
#include "model/data_movement.hpp"
#include "obs/trace.hpp"
#include "plan/plan_cache.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "verify/plan_verifier.hpp"

namespace {

using namespace chimera;

struct CliOptions
{
    double capacityBytes = 768.0 * 1024;
    ir::Epilogue epilogue = ir::Epilogue::None;
    int threads = 0;
    bool emitC = false;
    bool emitPlan = false;
    bool useCache = true;
    bool verify = false;
    std::string cacheDir; // empty = PlanCache::defaultDirectory()
};

/** Trace output path chosen by --trace/--trace-out ("" = disabled).
 * File-scope so main() can flush it after any mode branch. */
std::string gTraceOutPath;

/**
 * Arms tracing for the rest of the process. The path is probed
 * immediately — `--trace-out /no/such/dir/t.json` is a usage error
 * (exit 2) discovered before any planning work, not a crash at exit.
 */
void
armTrace(const std::string &path)
{
    std::FILE *probe = std::fopen(path.c_str(), "wb");
    if (probe == nullptr) {
        std::fprintf(stderr,
                     "error: cannot write trace output to %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::fclose(probe);
    gTraceOutPath = path;
    obs::TraceRecorder::enableGlobal();
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: chimera-plan gemm <batch> <M> <N> <K> <L> [options]\n"
        "       chimera-plan conv <batch> <IC> <H> <W> <OC1> <OC2>"
        " <k1> <k2> <st1> <st2> [options]\n"
        "       chimera-plan dsl '<einsum statements>' idx=extent..."
        " [options]\n"
        "options: --softmax --relu --capacity <bytes> --threads <N>"
        " --emit-c --emit-plan --cache --no-cache --cache-dir <dir>"
        " --verify --trace --trace-out <file>\n");
    std::exit(2);
}

CliOptions
parseOptions(int argc, char **argv, int firstOption)
{
    CliOptions options;
    for (int i = firstOption; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--softmax") {
            options.epilogue = ir::Epilogue::Softmax;
        } else if (arg == "--relu") {
            options.epilogue = ir::Epilogue::Relu;
        } else if (arg == "--capacity" && i + 1 < argc) {
            options.capacityBytes = std::atof(argv[++i]);
        } else if (arg == "--threads" && i + 1 < argc) {
            options.threads = std::atoi(argv[++i]);
        } else if (arg == "--emit-c") {
            options.emitC = true;
        } else if (arg == "--emit-plan") {
            options.emitPlan = true;
        } else if (arg == "--cache") {
            options.useCache = true;
        } else if (arg == "--no-cache") {
            options.useCache = false;
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            options.cacheDir = argv[++i];
        } else if (arg == "--verify") {
            options.verify = true;
        } else if (arg == "--trace") {
            armTrace("chimera-plan-trace.json");
        } else if (arg == "--trace-out" && i + 1 < argc) {
            armTrace(argv[++i]);
        } else {
            usage();
        }
    }
    return options;
}

/** Instantiates the plan cache the CLI flags ask for (or none). */
plan::PlanCache *
makeCache(const CliOptions &options,
          std::unique_ptr<plan::PlanCache> &holder)
{
    if (!options.useCache) {
        return nullptr;
    }
    holder = std::make_unique<plan::PlanCache>(
        options.cacheDir.empty() ? plan::PlanCache::defaultDirectory()
                                 : options.cacheDir);
    return holder.get();
}

void
printPlanReport(const ir::Chain &chain, const plan::ExecutionPlan &plan)
{
    std::printf("chain: %s (%d axes, %.2f MFLOP, IO %s)\n",
                chain.name().c_str(), chain.numAxes(),
                chain.totalFlops() / 1e6,
                formatBytes(static_cast<double>(chain.ioBytes())).c_str());
    std::printf("order: %s\n",
                plan::orderString(chain, plan.perm).c_str());
    std::printf("tiles: ");
    for (int a = 0; a < chain.numAxes(); ++a) {
        std::printf("%s%s=%ld",
                    a == 0 ? "" : " ",
                    chain.axes()[static_cast<std::size_t>(a)].name.c_str(),
                    static_cast<long>(
                        plan.tiles[static_cast<std::size_t>(a)]));
    }
    const std::string provenance =
        plan.candidatesExamined == 0
            ? "warm plan cache hit"
            : std::to_string(plan.candidatesExamined) +
                  " candidates solved";
    std::printf("\npredicted movement: %s  on-chip: %s  "
                "(%s, %.3f ms)\n",
                formatBytes(plan.predictedVolumeBytes).c_str(),
                formatBytes(static_cast<double>(plan.memUsageBytes))
                    .c_str(),
                provenance.c_str(), plan.planSeconds * 1e3);

    const model::DataMovement dm =
        model::computeDataMovement(chain, plan.perm, plan.tiles);
    AsciiTable table({"tensor", "kind", "movement"});
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const ir::TensorDecl &tensor = chain.tensors()[t];
        const char *kind =
            tensor.kind == ir::TensorKind::Input
                ? "input"
                : (tensor.kind == ir::TensorKind::Output ? "output"
                                                         : "on-chip");
        table.addRow({tensor.name, kind,
                      formatBytes(dm.perTensorBytes[t])});
    }
    std::printf("%s", table.render().c_str());
}

/** --verify: audits the winner; returns the process exit code. */
int
auditPlan(const ir::Chain &chain, const plan::ExecutionPlan &plan,
          double capacityBytes)
{
    verify::PlanVerifyOptions vo;
    vo.memCapacityBytes = capacityBytes;
    const verify::Report report =
        verify::verifyExecutionPlan(chain, plan, vo);
    const std::string rendered = report.render();
    if (!rendered.empty()) {
        std::printf("%s\n", rendered.c_str());
    }
    if (report.hasErrors()) {
        std::printf("verify: %d error(s)\n", report.errorCount());
        return 1;
    }
    std::printf("verify: clean\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
    }
    const std::string mode = argv[1];
    const auto &kernel =
        kernels::MicroKernelRegistry::instance().select(detectSimdTier());

    int rc = 0;
    try {
        if (mode == "gemm" && argc >= 7) {
            const CliOptions options = parseOptions(argc, argv, 7);
            ir::GemmChainConfig cfg;
            cfg.name = "cli-gemm-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.m = std::atoll(argv[3]);
            cfg.n = std::atoll(argv[4]);
            cfg.k = std::atoll(argv[5]);
            cfg.l = std::atoll(argv[6]);
            cfg.epilogue = options.epilogue;
            if (cfg.epilogue == ir::Epilogue::Softmax) {
                cfg.softmaxScale =
                    1.0f / std::sqrt(static_cast<float>(cfg.k));
            }
            const ir::Chain chain = ir::makeGemmChain(cfg);
            plan::PlannerOptions po;
            po.memCapacityBytes = options.capacityBytes;
            po.constraints = exec::cpuChainConstraints(chain, kernel);
            po.threads = options.threads;
            std::unique_ptr<plan::PlanCache> cache;
            po.cache = makeCache(options, cache);
            const plan::ExecutionPlan plan = plan::planChain(chain, po);
            printPlanReport(chain, plan);
            if (options.verify) {
                rc = auditPlan(chain, plan, options.capacityBytes);
            }
            if (options.emitPlan) {
                std::printf("\n%s",
                            plan::serializePlan(chain, plan).c_str());
            }
            if (options.emitC) {
                std::printf("\n%s",
                            codegen::emitGemmChainC(cfg, plan).c_str());
            }
        } else if (mode == "conv" && argc >= 12) {
            const CliOptions options = parseOptions(argc, argv, 12);
            ir::ConvChainConfig cfg;
            cfg.name = "cli-conv-chain";
            cfg.batch = std::atoll(argv[2]);
            cfg.ic = std::atoll(argv[3]);
            cfg.h = std::atoll(argv[4]);
            cfg.w = std::atoll(argv[5]);
            cfg.oc1 = std::atoll(argv[6]);
            cfg.oc2 = std::atoll(argv[7]);
            cfg.k1 = std::atoi(argv[8]);
            cfg.k2 = std::atoi(argv[9]);
            cfg.stride1 = std::atoi(argv[10]);
            cfg.stride2 = std::atoi(argv[11]);
            cfg.epilogue = options.epilogue;
            const ir::Chain chain = ir::makeConvChain(cfg);
            plan::PlannerOptions po;
            po.memCapacityBytes = options.capacityBytes;
            po.constraints = exec::cpuChainConstraints(chain, kernel);
            po.threads = options.threads;
            std::unique_ptr<plan::PlanCache> cache;
            po.cache = makeCache(options, cache);
            const plan::ExecutionPlan plan = plan::planChain(chain, po);
            printPlanReport(chain, plan);
            if (options.verify) {
                rc = auditPlan(chain, plan, options.capacityBytes);
            }
            if (options.emitPlan) {
                std::printf("\n%s",
                            plan::serializePlan(chain, plan).c_str());
            }
            if (options.emitC) {
                std::printf("\n%s",
                            codegen::emitConvChainC(cfg, plan).c_str());
            }
        } else if (mode == "dsl" && argc >= 3) {
            std::map<std::string, std::int64_t> extents;
            int firstOption = argc;
            for (int i = 3; i < argc; ++i) {
                const std::string arg = argv[i];
                const std::size_t eq = arg.find('=');
                if (arg.rfind("--", 0) == 0) {
                    firstOption = i;
                    break;
                }
                if (eq == std::string::npos) {
                    usage();
                }
                extents[arg.substr(0, eq)] =
                    std::atoll(arg.c_str() + eq + 1);
            }
            const CliOptions options =
                parseOptions(argc, argv, firstOption);
            const ir::Chain chain =
                ir::parseEinsumChain(argv[2], extents, "cli-dsl-chain");
            plan::PlannerOptions po;
            po.memCapacityBytes = options.capacityBytes;
            po.constraints = plan::alphaConstraints(chain, 16);
            po.threads = options.threads;
            std::unique_ptr<plan::PlanCache> cache;
            po.cache = makeCache(options, cache);
            const plan::ExecutionPlan plan = plan::planChain(chain, po);
            printPlanReport(chain, plan);
            if (options.verify) {
                rc = auditPlan(chain, plan, options.capacityBytes);
            }
            if (options.emitPlan) {
                std::printf("\n%s",
                            plan::serializePlan(chain, plan).c_str());
            }
        } else {
            usage();
        }
    } catch (const chimera::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    if (!gTraceOutPath.empty()) {
        try {
            obs::TraceRecorder *recorder = obs::trace();
            if (recorder != nullptr) {
                recorder->writeJson(gTraceOutPath);
                std::printf("trace: %s (%lld events)\n",
                            gTraceOutPath.c_str(),
                            static_cast<long long>(
                                recorder->eventCount()));
            }
        } catch (const chimera::Error &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    return rc;
}
