/**
 * @file
 * google-benchmark microbenchmarks of the building blocks: registered
 * micro kernels, block matmul across shapes, packing routines, the
 * Algorithm-1 evaluation, and full chain planning.
 */

#include <benchmark/benchmark.h>

#include "exec/constraints.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/workloads.hpp"
#include "kernels/block_matmul.hpp"
#include "kernels/mma_tile.hpp"
#include "kernels/npu_mad.hpp"
#include "model/data_movement.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"

namespace chimera {
namespace {

void
BM_MicroKernel(benchmark::State &state, const std::string &name)
{
    const kernels::MicroKernel &kernel =
        kernels::MicroKernelRegistry::instance().byName(name);
    const int kc = 256;
    std::vector<float> aPack(static_cast<std::size_t>(kc * kernel.mr));
    std::vector<float> bPack(static_cast<std::size_t>(kc * kernel.nr));
    std::vector<float> c(
        static_cast<std::size_t>(kernel.mr * kernel.nr), 0.0f);
    Rng rng(1);
    for (auto &v : aPack) {
        v = rng.uniform(-1.0f, 1.0f);
    }
    for (auto &v : bPack) {
        v = rng.uniform(-1.0f, 1.0f);
    }
    for (auto _ : state) {
        kernel.fn(aPack.data(), bPack.data(), c.data(), kernel.nr, kc);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * kernel.mr *
                            kernel.nr * kc);
}

void
RegisterMicroKernels()
{
    for (const kernels::MicroKernel &kernel :
         kernels::MicroKernelRegistry::instance().kernels()) {
        benchmark::RegisterBenchmark(
            ("BM_MicroKernel/" + kernel.name).c_str(),
            [name = kernel.name](benchmark::State &state) {
                BM_MicroKernel(state, name);
            });
    }
}

void
BM_BlockMatmul(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Tensor a({n, n});
    Tensor b({n, n});
    Tensor c({n, n});
    Rng rng(2);
    fillUniform(a, rng);
    fillUniform(b, rng);
    c.zero();
    const kernels::MicroKernel &kernel =
        kernels::MicroKernelRegistry::instance().select(detectSimdTier());
    kernels::Workspace workspace;
    for (auto _ : state) {
        kernels::blockMatmul(kernel, a.data(), n, b.data(), n, c.data(), n,
                             n, n, n, workspace);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_BlockMatmul)->Arg(64)->Arg(128)->Arg(256);

void
BM_PackB(benchmark::State &state)
{
    const std::int64_t kc = 256;
    const int nr = 64;
    std::vector<float> src(static_cast<std::size_t>(kc * 512));
    std::vector<float> dst(static_cast<std::size_t>(kc * nr));
    for (auto _ : state) {
        kernels::packBPanel(src.data(), 512, kc, nr, nr, dst.data());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(state.iterations() * kc * nr * 4);
}
BENCHMARK(BM_PackB);

void
BM_Algorithm1(benchmark::State &state)
{
    const ir::Chain chain =
        ir::makeGemmChain(ir::tableIvWorkloads()[1].config);
    const auto perm = plan::permFromOrderString(chain, "b,m,l,k,n");
    auto tiles = chain.fullExtents();
    tiles[1] = 64;
    tiles[4] = 64;
    for (auto _ : state) {
        const auto dm = model::computeDataMovement(chain, perm, tiles);
        benchmark::DoNotOptimize(dm.volumeBytes);
    }
}
BENCHMARK(BM_Algorithm1);

void
BM_PlanGemmChain(benchmark::State &state)
{
    const ir::Chain chain =
        ir::makeGemmChain(ir::tableIvWorkloads()[1].config);
    plan::PlannerOptions options;
    options.memCapacityBytes = 768.0 * 1024;
    options.constraints = exec::cpuChainConstraints(
        chain, kernels::MicroKernelRegistry::instance().select(
                   detectSimdTier()));
    for (auto _ : state) {
        const auto plan = plan::planChain(chain, options);
        benchmark::DoNotOptimize(plan.predictedVolumeBytes);
    }
}
BENCHMARK(BM_PlanGemmChain);

void
BM_NpuMadMatmul(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Tensor a({n, n});
    Tensor b({n, n});
    Tensor c({n, n});
    Rng rng(3);
    fillUniform(a, rng);
    fillUniform(b, rng);
    kernels::MadShape shape;
    shape.m1 = 2;
    shape.n1 = 2;
    shape.k1 = 2;
    shape.m2 = 16;
    shape.n2 = 16;
    shape.k2 = 16;
    for (auto _ : state) {
        kernels::madMatmul(a, b, c, shape);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_NpuMadMatmul)->Arg(64)->Arg(128);

void
BM_MmaTiled(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Tensor a({n, n});
    Tensor b({n, n});
    Tensor c({n, n});
    Rng rng(4);
    fillUniform(a, rng);
    fillUniform(b, rng);
    for (auto _ : state) {
        const kernels::MmaStats stats = kernels::mmaMatmulTiled(a, b, c);
        benchmark::DoNotOptimize(stats.mmaOps);
    }
    state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MmaTiled)->Arg(64)->Arg(128);

} // namespace
} // namespace chimera

int
main(int argc, char **argv)
{
    chimera::RegisterMicroKernels();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
