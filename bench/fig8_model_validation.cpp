/**
 * @file
 * Figure 8d-f reproduction: validation of the analytical data-movement
 * model. For the square GEMM chain the bench sweeps random tile
 * vectors, predicts the L1-fill volume with Algorithm 1, measures it
 * with the LRU cache simulator, and reports the R^2 correlation —
 * the paper's metric (R^2 = 0.97 / 0.98 for orders mlkn / mlnk).
 *
 * Case (f) disables intermediate reuse on both sides (the C tensor is
 * spilled to its DRAM-sized buffer), reproducing the paper's ablation
 * of the on-chip intermediate.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "cachesim/gemm_trace.hpp"
#include "model/data_movement.hpp"
#include "support/mathutil.hpp"

namespace chimera::bench {
namespace {

struct Case
{
    const char *label;
    const char *order;
    bool reuseIntermediate;
};

void
runCase(const Case &c, const ir::GemmChainConfig &cfg)
{
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const auto perm = plan::permFromOrderString(chain, c.order);
    const auto levels = cachesim::xeonLikeCaches();

    model::ModelOptions modelOptions;
    modelOptions.intermediatesAreIO = !c.reuseIntermediate;
    cachesim::TraceOptions traceOptions;
    traceOptions.reuseIntermediate = c.reuseIntermediate;

    Rng rng(2024);
    std::vector<double> predicted;
    std::vector<double> measured;
    double bestPredicted = 1e300;
    double bestMeasured = 0.0;
    const std::int64_t sizes[] = {16, 32, 48, 64, 96, 128, 160, 192, 256};
    const int wanted = 90;
    int attempts = 0;
    while (static_cast<int>(predicted.size()) < wanted &&
           attempts < wanted * 20) {
        ++attempts;
        std::vector<std::int64_t> tiles = chain.fullExtents();
        auto pick = [&](const char *name) {
            tiles[static_cast<std::size_t>(ir::axisIdByName(chain, name))] =
                sizes[rng.below(sizeof(sizes) / sizeof(sizes[0]))];
        };
        pick("m");
        pick("n");
        pick("k");
        pick("l");
        const model::DataMovement dm =
            model::computeDataMovement(chain, perm, tiles, modelOptions);
        // Keep the block working set within L1 (with LRU headroom), the
        // regime the model describes.
        if (static_cast<double>(dm.memUsageBytes) > 20.0 * 1024) {
            continue;
        }
        plan::ExecutionPlan candidate;
        candidate.perm = perm;
        candidate.tiles = tiles;
        const cachesim::TraceResult trace = cachesim::traceFusedGemmChain(
            cfg, candidate, levels, traceOptions);
        predicted.push_back(dm.volumeBytes);
        measured.push_back(trace.trafficIntoLevelBytes[0]);
        if (dm.volumeBytes < bestPredicted) {
            bestPredicted = dm.volumeBytes;
            bestMeasured = trace.trafficIntoLevelBytes[0];
        }
    }

    const double r2 = rSquared(predicted, measured);
    double ratioSum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        ratioSum += measured[i] / predicted[i];
    }
    std::printf("case %-28s order %-6s configs %3zu  R^2 = %.3f  mean "
                "measured/predicted = %.2f\n",
                c.label, c.order, predicted.size(), r2,
                ratioSum / static_cast<double>(predicted.size()));
    std::printf("    predicted-optimal point: predicted %.2f MB, measured"
                " %.2f MB\n",
                bestPredicted / 1e6, bestMeasured / 1e6);
}

} // namespace
} // namespace chimera::bench

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 8d-f — analytical model validation (predicted vs "
        "measured L1 fill)",
        "Square GEMM chain M = N = K = L = 512; ~90 random tile vectors "
        "per case; ground truth from the LRU cache simulator. Paper: "
        "R^2 = 0.97 (mlkn), 0.98 (mlnk).");

    ir::GemmChainConfig cfg;
    cfg.name = "fig8";
    cfg.m = 512;
    cfg.n = 512;
    cfg.k = 512;
    cfg.l = 512;

    const bench::Case cases[] = {
        {"(d) mlkn, C reused", "m,l,k,n", true},
        {"(e) mlnk, C reused", "m,l,n,k", true},
        {"(f) mlkn, C spilled", "m,l,k,n", false},
    };
    for (const auto &c : cases) {
        bench::runCase(c, cfg);
    }
    std::printf("\nCase (f) moves strictly more data than (d) at equal "
                "tiles: reusing the on-chip intermediate matters.\n");
    return 0;
}
