#pragma once

/**
 * @file
 * Shared helpers for the per-figure bench binaries: planning with the
 * standard CPU budget, timed executions of the fused/unfused paths, and
 * uniform table headers. Every bench prints the rows of its paper
 * table/figure through AsciiTable so runs are diffable.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "exec/chunk_profile.hpp"
#include "exec/constraints.hpp"
#include "exec/conv_chain_exec.hpp"
#include "exec/exec_options.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "hw/machines.hpp"
#include "ir/workloads.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace chimera::bench {

/** Planner memory budget: most of the Xeon-class per-core L2. */
inline constexpr double kCpuCapacityBytes = 768.0 * 1024;

/** Timed repetitions per measurement (best-of). */
inline constexpr int kRepeats = 3;

/**
 * Parses `--threads N` from the command line. Returns 0 (defer to
 * CHIMERA_THREADS / the hardware count) when the flag is absent.
 */
inline int
threadsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            return std::atoi(argv[i + 1]);
        }
    }
    return 0;
}

/** True when @p flag appears verbatim on the command line. */
inline bool
flagInArgs(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return true;
        }
    }
    return false;
}

/** Widest micro kernel available on this host. */
inline const kernels::MicroKernel &
hostKernel()
{
    return kernels::MicroKernelRegistry::instance().select(
        detectSimdTier());
}

/** Plans a chain with the executor-aware CPU constraints. */
inline plan::ExecutionPlan
planCpu(const ir::Chain &chain,
        double capacityBytes = kCpuCapacityBytes)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    options.constraints = exec::cpuChainConstraints(chain, hostKernel());
    return plan::planChain(chain, options);
}

/**
 * Thread-aware planCpu: the plan targets @p execThreads workers on the
 * multicore CPU topology, so shared-level per-worker budgets shrink the
 * tiles when the working sets would collide in the LLC, and the plan
 * carries the parallel-axis chunking (plannedThreads / parallelGrain)
 * the chunked executors dispatch by.
 */
inline plan::ExecutionPlan
planCpuThreaded(const ir::Chain &chain, int execThreads,
                double capacityBytes = kCpuCapacityBytes)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    options.constraints = exec::cpuChainConstraints(chain, hostKernel());
    options.execThreads = execThreads;
    options.topology = hw::multicoreCpuTopology();
    return plan::planChain(chain, options);
}

/**
 * Best-of simulated critical path over @p repeats runs: @p run executes
 * the workload with a fresh ChunkProfile of @p workers simulated
 * workers attached, and the result is the smallest criticalPathSeconds
 * observed. The run itself may execute on any number of real threads
 * (including one — the bench host can be a single core); the profile
 * charges each chunk to its static owner, so the critical path reflects
 * the plan's balance, not the host's parallelism.
 */
template <typename Fn>
inline double
bestOfSimulatedSeconds(int workers, Fn &&run, int repeats = kRepeats)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
        exec::ChunkProfile profile(workers);
        run(profile);
        best = std::min(best, profile.criticalPathSeconds());
    }
    return best;
}

/**
 * planCpu variant consulting @p cache: the first call per chain is a
 * cold miss (plans and stores), repeated calls are warm hits with
 * candidatesExamined == 0. Used by the cache-aware bench columns.
 */
inline plan::ExecutionPlan
planCpuCached(const ir::Chain &chain, plan::PlanCache &cache,
              double capacityBytes = kCpuCapacityBytes)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    options.constraints = exec::cpuChainConstraints(chain, hostKernel());
    options.cache = &cache;
    return plan::planChain(chain, options);
}

/** Holds the tensors of one GEMM-chain workload. */
struct GemmChainData
{
    explicit GemmChainData(const ir::GemmChainConfig &cfg,
                           std::uint64_t seed = 42)
        : a(exec::gemmChainShapeA(cfg)), b(exec::gemmChainShapeB(cfg)),
          d(exec::gemmChainShapeD(cfg)), e(exec::gemmChainShapeE(cfg)),
          scratchC(exec::gemmChainShapeC(cfg))
    {
        Rng rng(seed);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);
    }

    Tensor a, b, d, e, scratchC;
};

/** Holds the tensors of one conv-chain workload. */
struct ConvChainData
{
    explicit ConvChainData(const ir::ConvChainConfig &cfg,
                           std::uint64_t seed = 42)
        : input(exec::convChainShapeI(cfg)), w1(exec::convChainShapeW1(cfg)),
          w2(exec::convChainShapeW2(cfg)),
          output(exec::convChainShapeO(cfg)),
          scratchT(exec::convChainShapeT(cfg))
    {
        Rng rng(seed);
        fillUniform(input, rng);
        fillUniform(w1, rng);
        fillUniform(w2, rng);
    }

    Tensor input, w1, w2, output, scratchT;
};

/** Best-of timed fused GEMM chain run, seconds. */
inline double
timeFusedGemmChain(const ir::GemmChainConfig &cfg,
                   const plan::ExecutionPlan &plan,
                   const exec::ComputeEngine &engine, GemmChainData &data,
                   int repeats = kRepeats,
                   const exec::ExecOptions &options = {})
{
    return bestOfSeconds(
        [&] {
            exec::runFusedGemmChain(cfg, plan, engine, data.a, data.b,
                                    data.d, data.e, options);
        },
        repeats);
}

/** Best-of timed unfused GEMM chain run, seconds. */
inline double
timeUnfusedGemmChain(const ir::GemmChainConfig &cfg,
                     const exec::ComputeEngine &engine, GemmChainData &data,
                     const exec::GemmTiles &tiles1,
                     const exec::GemmTiles &tiles2, int repeats = kRepeats,
                     const exec::ExecOptions &options = {})
{
    return bestOfSeconds(
        [&] {
            exec::runUnfusedGemmChain(cfg, engine, data.a, data.b, data.d,
                                      data.scratchC, data.e, tiles1,
                                      tiles2, options);
        },
        repeats);
}

/** Per-GEMM tiles solved analytically (the tuned-library proxy). */
inline exec::GemmTiles
solvedGemmTiles(std::int64_t batch, std::int64_t m, std::int64_t n,
                std::int64_t k)
{
    const ir::Chain chain = ir::makeSingleGemm(batch, m, n, k);
    const plan::ExecutionPlan plan = planCpu(chain);
    exec::GemmTiles tiles;
    for (int a = 0; a < chain.numAxes(); ++a) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(a)].name;
        const std::int64_t tile =
            plan.tiles[static_cast<std::size_t>(a)];
        if (name == "m") {
            tiles.tm = tile;
        } else if (name == "n") {
            tiles.tn = tile;
        } else if (name == "k") {
            tiles.tk = tile;
        }
    }
    return tiles;
}

/** Prints a section header for a bench. */
inline void
printHeader(const std::string &title, const std::string &subtitle)
{
    std::printf("=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

} // namespace chimera::bench
