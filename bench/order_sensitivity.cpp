/**
 * @file
 * Order-sensitivity study: the inter-block claim checked against
 * wall-clock. For every *executable* block order of a Bert-style batch
 * GEMM chain, tiles are solved analytically, the fused kernel runs,
 * and the measured time is compared with the Algorithm-1 volume
 * prediction. If the model ranks orders correctly, the planner's pick
 * (minimum DV) should sit at or near the measured minimum.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "model/data_movement.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"

int
main()
{
    using namespace chimera;
    using namespace chimera::bench;
    bench::printHeader(
        "Order sensitivity — measured time vs predicted volume per "
        "block order",
        "G2-derived chain (batch 12, 512x512 scores, 64-dim heads); "
        "tiles solved per order under the L2 budget.");

    ir::GemmChainConfig cfg = ir::tableIvWorkloads()[1].config;
    cfg.epilogue = ir::Epilogue::Softmax;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    GemmChainData data(cfg);

    struct Row
    {
        std::string order;
        double volumeMb;
        double ms;
    };
    std::vector<Row> rows;
    std::vector<double> volumes;
    std::vector<double> times;

    plan::PlannerOptions options;
    options.memCapacityBytes = kCpuCapacityBytes;
    options.constraints = exec::cpuChainConstraints(chain, hostKernel());

    const auto reorderable = chain.reorderableAxes();
    for (const auto &idx :
         allPermutations(static_cast<int>(reorderable.size()))) {
        std::vector<ir::AxisId> perm;
        for (int i : idx) {
            perm.push_back(reorderable[static_cast<std::size_t>(i)]);
        }
        if (!model::isExecutableOrder(chain, perm)) {
            continue;
        }
        plan::ExecutionPlan plan;
        try {
            plan = plan::planFixedOrder(chain, perm, options);
        } catch (const Error &) {
            continue;
        }
        const double ms =
            timeFusedGemmChain(cfg, plan, engine, data, 2) * 1e3;
        rows.push_back({plan::orderString(chain, perm),
                        plan.predictedVolumeBytes / 1e6, ms});
        volumes.push_back(plan.predictedVolumeBytes);
        times.push_back(ms);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.ms < b.ms; });
    AsciiTable table({"Order (measured-fastest first)", "DV (MB)",
                      "time (ms)"});
    for (const Row &row : rows) {
        table.addRow({row.order, AsciiTable::num(row.volumeMb, 2),
                      AsciiTable::num(row.ms, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    // Does the min-DV order land near the measured minimum?
    std::size_t bestDv = 0;
    for (std::size_t i = 1; i < volumes.size(); ++i) {
        if (volumes[i] < volumes[bestDv]) {
            bestDv = i;
        }
    }
    double bestTime = *std::min_element(times.begin(), times.end());
    std::printf("orders evaluated: %zu; min-DV order runs within %.1f%% "
                "of the measured-fastest order.\n",
                rows.size(),
                100.0 * (times[bestDv] / bestTime - 1.0));
    return 0;
}
