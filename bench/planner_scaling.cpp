/**
 * @file
 * Planner scaling versus chain length: wall-clock planning time and
 * tile solves under each pruning mode, against exhaustive enumeration.
 *
 * The order-search space is factorial in the reorderable axes — 4! for
 * a two-GEMM chain but 6! = 720 for a batched three-GEMM chain — so
 * chain-N planning lives or dies on how many of those orders actually
 * reach the tile solver. This bench plans chains of fused length 2
 * (two-GEMM), 3 (three-GEMM + ReLU) and 4 (the attention pattern
 * QK^T -> softmax -> .V -> proj) under every pruning mode and reports,
 * per mode, the planning wall clock and the candidates-solved count
 * next to the exhaustive baseline. Exact modes (symmetry, dominance)
 * must reproduce the exhaustive argmin bitwise — the bench exits 1 if
 * they do not, so CI gets a pruning-soundness gate for free.
 *
 * Writes BENCH_planner.json (run from the repo root in CI). --quick
 * shrinks the shapes; --threads N sets the planner thread count.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "exec/gemm_chain3_exec.hpp"

namespace {

using namespace chimera;
using namespace chimera::bench;

struct ModeResult
{
    analysis::PruneMode mode = analysis::PruneMode::None;
    double planSeconds = 0.0;
    analysis::SearchStats stats;
    bool argminMatch = true; // vs the exhaustive plan (exact modes)
};

struct ChainResult
{
    std::string name;
    std::size_t ops = 0; // fused length (epilogue counts as one op)
    int axes = 0;
    std::vector<ModeResult> modes; // [0] is always exhaustive
};

/** Best-of-kRepeats planning run under @p mode; cache bypassed. */
ModeResult
planUnderMode(const ir::Chain &chain,
              const solver::TileConstraints &constraints, int threads,
              analysis::PruneMode mode)
{
    ModeResult result;
    result.mode = mode;
    result.planSeconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < kRepeats; ++r) {
        plan::PlannerOptions po;
        po.memCapacityBytes = kCpuCapacityBytes;
        po.constraints = constraints;
        po.threads = threads;
        po.prune = mode;
        const plan::ExecutionPlan plan = plan::planChain(chain, po);
        if (plan.planSeconds < result.planSeconds) {
            result.planSeconds = plan.planSeconds;
        }
        result.stats = plan.search;
    }
    return result;
}

ChainResult
benchChain(const ir::Chain &chain,
           const solver::TileConstraints &constraints, int threads,
           std::size_t fusedOps)
{
    ChainResult result;
    result.name = chain.name();
    result.ops = fusedOps;
    result.axes = chain.numAxes();

    plan::PlannerOptions po;
    po.memCapacityBytes = kCpuCapacityBytes;
    po.constraints = constraints;
    po.threads = threads;
    po.prune = analysis::PruneMode::None;
    const plan::ExecutionPlan exhaustive = plan::planChain(chain, po);

    for (const analysis::PruneMode mode :
         {analysis::PruneMode::None, analysis::PruneMode::Symmetry,
          analysis::PruneMode::Dominance, analysis::PruneMode::Beam}) {
        ModeResult mr = planUnderMode(chain, constraints, threads, mode);
        if (mode == analysis::PruneMode::Symmetry ||
            mode == analysis::PruneMode::Dominance) {
            plan::PlannerOptions check = po;
            check.prune = mode;
            const plan::ExecutionPlan pruned =
                plan::planChain(chain, check);
            mr.argminMatch = pruned.perm == exhaustive.perm &&
                             pruned.tiles == exhaustive.tiles;
        }
        result.modes.push_back(std::move(mr));
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = flagInArgs(argc, argv, "--quick");
    const int threads = threadsFromArgs(argc, argv);
    printHeader(
        "planner scaling — pruned order search vs chain length",
        "Chains of fused length 2/3/4; per pruning mode: planning wall "
        "clock (best of 3) and tile solves vs exhaustive enumeration. "
        "Exact modes must reproduce the exhaustive argmin bitwise.");

    const std::int64_t s = quick ? 64 : 256;

    ir::GemmChainConfig g2;
    g2.name = "chain2-gemm";
    g2.batch = 1;
    g2.m = s;
    g2.n = s;
    g2.k = s;
    g2.l = s;

    ir::GemmChain3Config g3;
    g3.name = "chain3-gemm";
    g3.batch = 2;
    g3.m = s;
    g3.n = s;
    g3.k = s;
    g3.l = s;
    g3.p = quick ? 32 : 64;

    ir::GemmChain3Config g4 = g3;
    g4.name = "chain4-attention";
    g4.epilogue = ir::Epilogue::Softmax;
    g4.softmaxScale = 1.0f / std::sqrt(static_cast<float>(g4.k));

    const auto &kernel = hostKernel();
    std::vector<ChainResult> results;
    {
        const ir::Chain chain = ir::makeGemmChain(g2);
        results.push_back(benchChain(
            chain, exec::cpuChainConstraints(chain, kernel), threads, 2));
    }
    for (const ir::GemmChain3Config &cfg : {g3, g4}) {
        const ir::Chain chain = ir::makeGemmChain3(cfg);
        const std::size_t fusedOps =
            cfg.epilogue == ir::Epilogue::None ? 3 : 4;
        results.push_back(
            benchChain(chain, exec::gemmChain3Constraints(chain, kernel),
                       threads, fusedOps));
    }

    AsciiTable table({"Chain", "ops", "mode", "plan (ms)", "solved",
                      "enumerated", "solve reduction", "argmin"});
    bool sound = true;
    for (const ChainResult &cr : results) {
        const double exhaustiveSolved =
            static_cast<double>(cr.modes.front().stats.solved);
        for (const ModeResult &mr : cr.modes) {
            const double reduction =
                mr.stats.solved > 0
                    ? exhaustiveSolved /
                          static_cast<double>(mr.stats.solved)
                    : 0.0;
            sound = sound && mr.argminMatch;
            table.addRow(
                {cr.name, std::to_string(cr.ops),
                 analysis::pruneModeName(mr.mode),
                 AsciiTable::num(mr.planSeconds * 1e3, 2),
                 std::to_string(mr.stats.solved),
                 std::to_string(mr.stats.enumerated),
                 AsciiTable::num(reduction, 1) + "x",
                 mr.argminMatch ? "match" : "MISMATCH"});
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::ofstream json("BENCH_planner.json");
    json << "{\n  \"bench\": \"planner_scaling\",\n  \"quick\": "
         << (quick ? "true" : "false") << ",\n  \"chains\": [\n";
    for (std::size_t ci = 0; ci < results.size(); ++ci) {
        const ChainResult &cr = results[ci];
        json << "    {\n      \"name\": \"" << cr.name
             << "\",\n      \"ops\": " << cr.ops
             << ",\n      \"axes\": " << cr.axes
             << ",\n      \"modes\": [\n";
        for (std::size_t mi = 0; mi < cr.modes.size(); ++mi) {
            const ModeResult &mr = cr.modes[mi];
            json << "        {\"mode\": \""
                 << analysis::pruneModeName(mr.mode)
                 << "\", \"plan_seconds\": " << mr.planSeconds
                 << ", \"solved\": " << mr.stats.solved
                 << ", \"enumerated\": " << mr.stats.enumerated
                 << ", \"filtered\": " << mr.stats.filtered
                 << ", \"symmetry_pruned\": " << mr.stats.symmetryPruned
                 << ", \"dominance_pruned\": " << mr.stats.dominancePruned
                 << ", \"beam_pruned\": " << mr.stats.beamPruned
                 << ", \"gap_bytes\": " << mr.stats.gapBoundBytes
                 << ", \"argmin_match\": "
                 << (mr.argminMatch ? "true" : "false") << "}"
                 << (mi + 1 < cr.modes.size() ? "," : "") << "\n";
        }
        json << "      ]\n    }"
             << (ci + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    std::printf("wrote BENCH_planner.json\n");

    if (!sound) {
        std::fprintf(stderr, "FATAL: an exact pruning mode changed the "
                             "planner argmin\n");
        return 1;
    }
    return 0;
}
