/**
 * @file
 * Figure 6 reproduction (simulated A100): batch GEMM chains (6a/6b) and
 * convolution chains (6c/6d) on the GPU machine model.
 *
 * The GPU is simulated (DESIGN.md §2): schedules are planned per memory
 * level and timed with the paper's pipeline cost (Eq. 3). Columns:
 *  - "Unfused"    -> per-op planned kernels, intermediate in HBM
 *                    (PyTorch / TensorRT / TVM+Cutlass proxy — the
 *                    paper found TVM+Cutlass does not fuse this chain);
 *  - "FixedOrder" -> fused with a pinned canonical order (BOLT-style
 *                    template, no order search);
 *  - "Chimera"    -> fused, planner-chosen order and tiles.
 * The softmax variant (6b) and the ReLU variant (6d) cost the same data
 * movement in this model; the measured CPU counterparts are in fig5.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "hw/accelerator_sim.hpp"
#include "support/mathutil.hpp"

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 6 — simulated A100 Tensor Core GPU",
        "Times from the multi-level analytical pipeline model (Eq. 3), "
        "fp16.");

    const model::MachineModel gpu = hw::a100Gpu();

    AsciiTable gemms({"Chain", "Unfused (us)", "FixedOrder (us)",
                      "Chimera (us)", "order", "speedup",
                      "DRAM saved"});
    std::vector<double> gains;
    std::vector<double> dramSavings;
    for (const auto &load : ir::tableIvWorkloads()) {
        const hw::AcceleratorComparison sim =
            hw::simulateGemmChain(load.config, gpu);
        gains.push_back(sim.unfusedSeconds / sim.chimeraSeconds);
        const double saved =
            100.0 * (1.0 - sim.chimeraDramBytes / sim.unfusedDramBytes);
        dramSavings.push_back(saved);
        gemms.addRow(
            {load.config.name, AsciiTable::num(sim.unfusedSeconds * 1e6, 2),
             AsciiTable::num(sim.fixedOrderSeconds * 1e6, 2),
             AsciiTable::num(sim.chimeraSeconds * 1e6, 2), sim.chimeraOrder,
             AsciiTable::num(sim.unfusedSeconds / sim.chimeraSeconds, 2) +
                 "x",
             AsciiTable::num(saved, 1) + "%"});
    }
    std::printf("--- Figure 6a/6b: batch GEMM chains ---\n%s",
                gemms.render().c_str());
    std::printf("geomean speedup %.2fx; DRAM reduction %.1f%%-%.1f%% "
                "(paper: 9.86%%-59.54%%)\n\n",
                geometricMean(gains),
                *std::min_element(dramSavings.begin(), dramSavings.end()),
                *std::max_element(dramSavings.begin(), dramSavings.end()));

    AsciiTable convs({"Chain", "Unfused (us)", "FixedOrder (us)",
                      "Chimera (us)", "order", "speedup"});
    std::vector<double> convGains;
    for (const auto &load : ir::tableVWorkloads()) {
        const hw::AcceleratorComparison sim =
            hw::simulateConvChain(load.config, gpu);
        convGains.push_back(sim.unfusedSeconds / sim.chimeraSeconds);
        convs.addRow(
            {load.config.name, AsciiTable::num(sim.unfusedSeconds * 1e6, 2),
             AsciiTable::num(sim.fixedOrderSeconds * 1e6, 2),
             AsciiTable::num(sim.chimeraSeconds * 1e6, 2), sim.chimeraOrder,
             AsciiTable::num(sim.unfusedSeconds / sim.chimeraSeconds, 2) +
                 "x"});
    }
    std::printf("--- Figure 6c/6d: convolution chains ---\n%s",
                convs.render().c_str());
    std::printf("geomean speedup %.2fx; note C6 (compute-bound 3x3 "
                "consumer) gains least, the paper's crossover case.\n",
                geometricMean(convGains));
    return 0;
}
