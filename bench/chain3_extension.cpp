/**
 * @file
 * Extension experiment (beyond the paper's evaluation): fusing chains
 * of THREE batch GEMMs, the "more compute-intensive operators"
 * generalization §IV-B claims. Both intermediates stay on chip (the
 * middle one as a panel pinned by the planner's cycle analysis).
 * Measured wall-clock fused vs unfused, plus the model's DRAM-volume
 * comparison.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "exec/gemm_chain3_exec.hpp"
#include "model/data_movement.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"

int
main()
{
    using namespace chimera;
    using namespace chimera::bench;
    bench::printHeader(
        "Extension — three-GEMM chain fusion (measured, CPU)",
        "E = ((A x B) x D) x F with both intermediates on chip; MLP-"
        "Mixer-style shapes.");

    struct Shape
    {
        const char *name;
        std::int64_t batch, m, n, k, l, p;
    };
    const Shape shapes[] = {
        {"T1", 1, 512, 64, 64, 256, 64},
        {"T2", 1, 768, 64, 64, 384, 96},
        {"T3", 4, 256, 64, 64, 256, 64},
        {"T4", 8, 512, 64, 64, 512, 64},
    };

    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    AsciiTable table({"Chain", "Unfused (ms)", "Chimera (ms)", "speedup",
                      "order", "DV fused", "DV unfused"});
    std::vector<double> speedups;
    for (const Shape &shape : shapes) {
        ir::GemmChain3Config cfg;
        cfg.name = shape.name;
        cfg.batch = shape.batch;
        cfg.m = shape.m;
        cfg.n = shape.n;
        cfg.k = shape.k;
        cfg.l = shape.l;
        cfg.p = shape.p;

        const ir::Chain chain = ir::makeGemmChain3(cfg);
        plan::PlannerOptions options;
        options.memCapacityBytes = kCpuCapacityBytes;
        options.constraints =
            exec::gemmChain3Constraints(chain, hostKernel());
        const plan::ExecutionPlan plan = plan::planChain(chain, options);

        Tensor a(exec::gemmChain3ShapeA(cfg));
        Tensor b(exec::gemmChain3ShapeB(cfg));
        Tensor d(exec::gemmChain3ShapeD(cfg));
        Tensor f(exec::gemmChain3ShapeF(cfg));
        Tensor e(exec::gemmChain3ShapeE(cfg));
        Tensor c1(cfg.batch > 1
                      ? Tensor({cfg.batch, cfg.m, cfg.l})
                      : Tensor({cfg.m, cfg.l}));
        Tensor c2(cfg.batch > 1
                      ? Tensor({cfg.batch, cfg.m, cfg.p})
                      : Tensor({cfg.m, cfg.p}));
        Rng rng(1);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);
        fillUniform(f, rng);

        // Validate before timing.
        Tensor expected(exec::gemmChain3ShapeE(cfg));
        exec::referenceGemmChain3(cfg, a, b, d, f, expected);
        exec::runFusedGemmChain3(cfg, plan, engine, a, b, d, f, e);
        if (!allClose(e, expected, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return 1;
        }

        const double tFused = bestOfSeconds(
            [&] {
                exec::runFusedGemmChain3(cfg, plan, engine, a, b, d, f,
                                         e);
            },
            kRepeats);
        const double tUnfused = bestOfSeconds(
            [&] {
                exec::runUnfusedGemmChain3(cfg, engine, a, b, d, f, c1,
                                           c2, e, {64, 64, 64});
            },
            kRepeats);

        const auto dvFused =
            model::computeDataMovement(chain, plan.perm, plan.tiles);
        model::ModelOptions spilled;
        spilled.intermediatesAreIO = true;
        const auto dvUnfused = model::computeDataMovement(
            chain, plan.perm, plan.tiles, spilled);

        speedups.push_back(tUnfused / tFused);
        table.addRow({cfg.name, AsciiTable::num(tUnfused * 1e3, 2),
                      AsciiTable::num(tFused * 1e3, 2),
                      AsciiTable::num(tUnfused / tFused, 2) + "x",
                      plan::orderString(chain, plan.perm),
                      formatBytes(dvFused.volumeBytes),
                      formatBytes(dvUnfused.volumeBytes)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean speedup %.2fx; both intermediates avoid DRAM "
                "round-trips entirely.\n",
                geometricMean(speedups));
    return 0;
}
