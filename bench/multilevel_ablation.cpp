/**
 * @file
 * Ablation of the multi-level extension (§IV-C) on the Xeon-like
 * hierarchy. Single-level planning must pick one capacity to respect:
 * planning for L1 keeps the near traffic low but floods DRAM (small
 * blocks reload inputs), planning for L3 minimizes DRAM but floods L1
 * (blocks far larger than the near cache). Nested per-level planning
 * (Eq. 3) satisfies every capacity at once and its pipeline bound
 * dominates both single-level choices.
 *
 * Model bounds come from Eq. 3; the traffic columns replay each
 * single-level schedule's block walk in the LRU cache simulator.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "cachesim/gemm_trace.hpp"
#include "hw/machines.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"

namespace chimera::bench {
namespace {

/** Eq.-3 cost of one tile vector replicated across all levels. */
model::MultiLevelCost
flatCost(const ir::Chain &chain, const model::MachineModel &machine,
         const plan::ExecutionPlan &plan)
{
    std::vector<model::LevelSchedule> schedules(machine.levels.size());
    for (auto &schedule : schedules) {
        schedule.perm = plan.perm;
        schedule.tiles = plan.tiles;
    }
    return model::evaluateMultiLevel(chain, machine, schedules);
}

} // namespace
} // namespace chimera::bench

int
main()
{
    using namespace chimera;
    using namespace chimera::bench;
    bench::printHeader(
        "§IV-C ablation — single-level vs nested multi-level planning",
        "Machine: Xeon-like L1/L2/L3. 'for-L1'/'for-L3' are single-level "
        "plans solved at that capacity and used everywhere; bounds from "
        "Eq. 3 (infeasible levels make a bound fictitious and are "
        "flagged); traffic from the LRU simulator.");

    model::MachineModel machine = hw::cascadeLakeCpu();
    const auto caches = cachesim::xeonLikeCaches();

    AsciiTable table({"Chain", "for-L1 bound (us)", "for-L3 bound (us)",
                      "for-L3 fits L1?", "nested bound (us)",
                      "for-L1 DRAM", "nested-inner DRAM"});
    std::vector<double> gainsVsL1;
    for (std::size_t i : {0u, 3u, 6u, 9u, 11u}) {
        const ir::GemmChainConfig cfg = ir::tableIvWorkloads()[i].config;
        const ir::Chain chain = ir::makeGemmChain(cfg);

        plan::PlannerOptions options;
        options.constraints = plan::alphaConstraints(chain, 16);

        options.memCapacityBytes =
            0.75 * machine.levels.front().capacityBytes;
        const plan::ExecutionPlan forL1 = plan::planChain(chain, options);
        options.memCapacityBytes = machine.levels.back().capacityBytes;
        const plan::ExecutionPlan forL3 = plan::planChain(chain, options);
        const plan::MultiLevelPlan nested =
            plan::planChainMultiLevel(chain, machine, options);

        const model::MultiLevelCost costL1 =
            flatCost(chain, machine, forL1);
        const model::MultiLevelCost costL3 =
            flatCost(chain, machine, forL3);

        plan::ExecutionPlan nestedInner;
        nestedInner.perm = nested.levels.front().perm;
        nestedInner.tiles = nested.levels.front().tiles;
        const auto traceL1 =
            cachesim::traceFusedGemmChain(cfg, forL1, caches);
        const auto traceNested =
            cachesim::traceFusedGemmChain(cfg, nestedInner, caches);

        gainsVsL1.push_back(costL1.boundSeconds /
                            nested.cost.boundSeconds);
        table.addRow(
            {cfg.name, AsciiTable::num(costL1.boundSeconds * 1e6, 2),
             AsciiTable::num(costL3.boundSeconds * 1e6, 2),
             costL3.feasible ? "yes" : "no (fictitious)",
             AsciiTable::num(nested.cost.boundSeconds * 1e6, 2),
             formatBytes(traceL1.dramBytes),
             formatBytes(traceNested.dramBytes)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "geomean: nested planning improves the honest (for-L1) bound "
        "%.2fx at equal simulated DRAM traffic; the for-L3 plan's lower "
        "bound is unachievable because it violates the L1/L2 "
        "capacities.\n",
        geometricMean(gainsVsL1));
    return 0;
}
