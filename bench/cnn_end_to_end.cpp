/**
 * @file
 * Companion to Figure 9 for CNNs: a SqueezeNet-like backbone (stages
 * are Table-V-style conv chains with ReLU) executed end to end with
 * Chimera-fused stages vs the unfused library path. Measured wall-clock
 * on the host CPU; outputs validated to agree first.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "graph/cnn.hpp"
#include "support/mathutil.hpp"

int
main()
{
    using namespace chimera;
    using namespace chimera::bench;
    bench::printHeader(
        "End-to-end CNN — conv-chain stages fused vs unfused (measured)",
        "SqueezeNet-like backbone variants; every stage is a conv chain "
        "with fused ReLU.");

    struct Variant
    {
        const char *name;
        std::int64_t ic, hw;
    };
    const Variant variants[] = {
        {"CNN-56", 8, 56},
        {"CNN-112", 8, 112},
        {"CNN-3ch-64", 3, 64},
    };

    AsciiTable table({"Network", "stages", "Unfused (ms)", "Chimera (ms)",
                      "speedup"});
    std::vector<double> speedups;
    for (const Variant &variant : variants) {
        graph::CnnConfig cfg = graph::squeezeNetLike();
        cfg.name = variant.name;
        cfg.inChannels = variant.ic;
        cfg.height = variant.hw;
        cfg.width = variant.hw;
        const graph::CnnBackbone cnn(cfg, kCpuCapacityBytes);

        Tensor input({cfg.batch, cfg.inChannels, cfg.height, cfg.width});
        Rng rng(12);
        fillUniform(input, rng);

        const Tensor fusedOut =
            cnn.forward(input, graph::ConvMode::FusedChimera);
        const Tensor unfusedOut =
            cnn.forward(input, graph::ConvMode::Unfused);
        if (!allClose(fusedOut, unfusedOut, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return 1;
        }

        const double tFused = bestOfSeconds(
            [&] {
                (void)cnn.forward(input, graph::ConvMode::FusedChimera);
            },
            kRepeats);
        const double tUnfused = bestOfSeconds(
            [&] { (void)cnn.forward(input, graph::ConvMode::Unfused); },
            kRepeats);
        speedups.push_back(tUnfused / tFused);
        table.addRow({cfg.name, std::to_string(cfg.stages.size()),
                      AsciiTable::num(tUnfused * 1e3, 2),
                      AsciiTable::num(tFused * 1e3, 2),
                      AsciiTable::num(tUnfused / tFused, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean end-to-end speedup %.2fx (single-core fp32 conv "
                "chains are compute-bound; see EXPERIMENTS.md).\n",
                geometricMean(speedups));
    return 0;
}
