/**
 * @file
 * Companion to Figure 9 for CNNs: a SqueezeNet-like backbone (stages
 * are Table-V-style conv chains with ReLU) executed end to end with
 * Chimera-fused stages vs the unfused library path. Measured wall-clock
 * on the host CPU; outputs validated to agree first.
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "graph/cnn.hpp"
#include "support/mathutil.hpp"
#include "support/thread_pool.hpp"

int
main(int argc, char **argv)
{
    using namespace chimera;
    using namespace chimera::bench;
    const int threads = threadsFromArgs(argc, argv);
    const exec::ExecOptions parOptions{threads, nullptr};
    const int workers = resolveThreadCount(threads);
    bench::printHeader(
        "End-to-end CNN — conv-chain stages fused vs unfused (measured)",
        "SqueezeNet-like backbone variants; every stage is a conv chain "
        "with fused ReLU. --threads N (or CHIMERA_THREADS) selects the "
        "worker count; the fused path is timed serial and parallel.");

    struct Variant
    {
        const char *name;
        std::int64_t ic, hw;
    };
    const Variant variants[] = {
        {"CNN-56", 8, 56},
        {"CNN-112", 8, 112},
        {"CNN-3ch-64", 3, 64},
    };

    AsciiTable table({"Network", "stages", "Unfused (ms)",
                      "Chimera 1T (ms)",
                      "Chimera " + std::to_string(workers) + "T (ms)",
                      "speedup", "scaling"});
    std::vector<double> speedups;
    std::vector<double> scalings;
    for (const Variant &variant : variants) {
        graph::CnnConfig cfg = graph::squeezeNetLike();
        cfg.name = variant.name;
        cfg.inChannels = variant.ic;
        cfg.height = variant.hw;
        cfg.width = variant.hw;
        const graph::CnnBackbone cnn(cfg, kCpuCapacityBytes);

        Tensor input({cfg.batch, cfg.inChannels, cfg.height, cfg.width});
        Rng rng(12);
        fillUniform(input, rng);

        const Tensor fusedOut =
            cnn.forward(input, graph::ConvMode::FusedChimera);
        const Tensor unfusedOut =
            cnn.forward(input, graph::ConvMode::Unfused);
        if (!allClose(fusedOut, unfusedOut, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return 1;
        }
        const Tensor fusedPar =
            cnn.forward(input, graph::ConvMode::FusedChimera, parOptions);
        if (std::memcmp(fusedOut.data(), fusedPar.data(),
                        static_cast<std::size_t>(fusedOut.numel()) *
                            sizeof(float)) != 0) {
            std::printf("PARALLEL DETERMINISM FAILED for %s\n",
                        cfg.name.c_str());
            return 1;
        }

        const double tFused = bestOfSeconds(
            [&] {
                (void)cnn.forward(input, graph::ConvMode::FusedChimera,
                                  exec::ExecOptions{1, nullptr});
            },
            kRepeats);
        const double tFusedPar = bestOfSeconds(
            [&] {
                (void)cnn.forward(input, graph::ConvMode::FusedChimera,
                                  parOptions);
            },
            kRepeats);
        const double tUnfused = bestOfSeconds(
            [&] { (void)cnn.forward(input, graph::ConvMode::Unfused); },
            kRepeats);
        speedups.push_back(tUnfused / tFusedPar);
        scalings.push_back(tFused / tFusedPar);
        table.addRow({cfg.name, std::to_string(cfg.stages.size()),
                      AsciiTable::num(tUnfused * 1e3, 2),
                      AsciiTable::num(tFused * 1e3, 2),
                      AsciiTable::num(tFusedPar * 1e3, 2),
                      AsciiTable::num(tUnfused / tFusedPar, 2) + "x",
                      AsciiTable::num(tFused / tFusedPar, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("serial->%dT geomean scaling %.2fx\n", workers,
                geometricMean(scalings));
    std::printf("geomean end-to-end speedup %.2fx (single-core fp32 conv "
                "chains are compute-bound; see EXPERIMENTS.md).\n",
                geometricMean(speedups));
    return 0;
}
