/**
 * @file
 * Observability overhead: the cost of the instrumentation added across
 * plan/exec/serve, in both states.
 *
 *  - Disabled (CHIMERA_TRACE unset — the shipping default): a span is
 *    one relaxed atomic load returning nullptr. Measured per-op below
 *    and end-to-end as untraced fused-chain runs; the acceptance bar
 *    is <1% regression against a build without any instrumentation,
 *    which at ~1 ns/span requires only that spans are not inside the
 *    innermost loops (they sit at chunk granularity and above).
 *  - Enabled: each chunk appends one event to a per-thread buffer.
 *    Measured as traced vs untraced fused-chain wall time.
 *
 * Also measures Counter::add and Histogram::record, which are always
 * on (the metrics registry has no disable switch — its record path is
 * the same relaxed fetch_add the old plain-int counters used).
 *
 * Writes BENCH_obs.json. The traced-vs-untraced comparison enables the
 * global recorder mid-process, so run order is fixed: untraced first.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace chimera;
using namespace chimera::bench;

/** Best-of-3 mean ns/op over @p iters calls of @p fn. */
template <typename Fn>
double
nanosPerOp(std::int64_t iters, Fn &&fn)
{
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
        WallTimer timer;
        for (std::int64_t i = 0; i < iters; ++i) {
            fn(i);
        }
        best = std::min(best,
                        timer.seconds() * 1e9 /
                            static_cast<double>(iters));
    }
    return best;
}

double
timeChain(const ir::GemmChainConfig &cfg, const plan::ExecutionPlan &plan,
          const exec::ComputeEngine &engine, GemmChainData &data,
          int repeats)
{
    double best = 1e30;
    for (int rep = 0; rep < repeats; ++rep) {
        WallTimer timer;
        exec::runFusedGemmChain(cfg, plan, engine, data.a, data.b,
                                data.d, data.e);
        best = std::min(best, timer.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = flagInArgs(argc, argv, "--quick");
    printHeader("observability overhead: spans, metrics, traced runs",
                "Disabled spans must be free enough to leave in "
                "release builds; enabled tracing pays per chunk, not "
                "per element.");

    if (std::getenv("CHIMERA_TRACE") != nullptr) {
        std::fprintf(stderr,
                     "error: unset CHIMERA_TRACE — this bench measures "
                     "the disabled path first\n");
        return 2;
    }

    const std::int64_t opIters = quick ? 2'000'000 : 20'000'000;

    // 1. The disabled-span path: trace() load + null-recorder Span.
    volatile std::int64_t sink = 0;
    const double disabledSpanNs = nanosPerOp(opIters, [&](std::int64_t) {
        obs::Span span(obs::trace(), "bench.noop", "bench");
        sink = sink + static_cast<std::int64_t>(span.enabled());
    });

    // 2. Always-on metrics primitives.
    obs::Counter counter;
    const double counterNs =
        nanosPerOp(opIters, [&](std::int64_t) { counter.add(); });
    obs::Histogram histogram;
    const double histogramNs = nanosPerOp(
        opIters, [&](std::int64_t i) { histogram.record(i & 0xffff); });

    // 3. End-to-end: a fused chain at chunk granularity, untraced then
    //    traced (order fixed: enableGlobal is one-way).
    ir::GemmChainConfig cfg;
    cfg.name = "obs-overhead-chain";
    cfg.batch = 1;
    cfg.m = quick ? 192 : 384;
    cfg.n = 128;
    cfg.k = 96;
    cfg.l = 160;
    cfg.epilogue = ir::Epilogue::Relu;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = planCpu(chain);
    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    GemmChainData data(cfg);
    const int repeats = quick ? 5 : 10;

    timeChain(cfg, plan, engine, data, 2); // warm caches + code
    const double untracedSeconds =
        timeChain(cfg, plan, engine, data, repeats);

    obs::TraceRecorder::enableGlobal();
    const double tracedSeconds =
        timeChain(cfg, plan, engine, data, repeats);
    const std::int64_t tracedEvents = obs::trace()->eventCount();

    const double tracedOverhead =
        untracedSeconds > 0.0
            ? (tracedSeconds - untracedSeconds) / untracedSeconds
            : 0.0;

    AsciiTable table({"path", "cost"});
    table.addRow({"span, tracing disabled",
                  AsciiTable::num(disabledSpanNs, 2) + " ns/op"});
    table.addRow(
        {"Counter::add", AsciiTable::num(counterNs, 2) + " ns/op"});
    table.addRow({"Histogram::record",
                  AsciiTable::num(histogramNs, 2) + " ns/op"});
    table.addRow({"fused chain, untraced",
                  AsciiTable::num(untracedSeconds * 1e3, 3) + " ms"});
    table.addRow({"fused chain, traced",
                  AsciiTable::num(tracedSeconds * 1e3, 3) + " ms (" +
                      AsciiTable::num(tracedOverhead * 100.0, 2) +
                      "% over untraced)"});
    std::printf("%s", table.render().c_str());
    std::printf("traced events recorded: %lld\n",
                static_cast<long long>(tracedEvents));

    std::ofstream json("BENCH_obs.json");
    json << "{\n"
         << "  \"bench\": \"obs_overhead\",\n"
         << "  \"disabled_span_ns\": " << disabledSpanNs << ",\n"
         << "  \"counter_add_ns\": " << counterNs << ",\n"
         << "  \"histogram_record_ns\": " << histogramNs << ",\n"
         << "  \"untraced_chain_seconds\": " << untracedSeconds << ",\n"
         << "  \"traced_chain_seconds\": " << tracedSeconds << ",\n"
         << "  \"traced_overhead_fraction\": " << tracedOverhead << ",\n"
         << "  \"traced_events\": " << tracedEvents << "\n"
         << "}\n";
    json.close();
    std::printf("wrote BENCH_obs.json\n");

    // The disabled path is the one that rides in every binary: hold it
    // to single-digit nanoseconds so chunk-granularity spans stay far
    // under the 1% end-to-end budget.
    if (disabledSpanNs > 50.0) {
        std::fprintf(stderr,
                     "FATAL: disabled span costs %.1f ns/op (budget 50)\n",
                     disabledSpanNs);
        return 1;
    }
    return 0;
}
