/**
 * @file
 * §VI-E "Optimization Overhead" reproduction: Chimera's analytical
 * planning time versus the profiling-driven random tuner (the Ansor
 * proxy), and the quality of the schedules each finds. The paper
 * reports Chimera optimizing 21.89x faster while achieving 1.39x better
 * performance.
 */

#include <cstdio>

#include "baselines/random_tuner.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"

int
main()
{
    using namespace chimera;
    using namespace chimera::bench;
    bench::printHeader(
        "§VI-E — optimization overhead: analytical planning vs tuning",
        "Random tuner measures 30 candidates on hardware per chain; "
        "Chimera's planner never executes a kernel. The warm column "
        "replans through the plan cache (the deployed steady state).");

    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    plan::PlanCache cache(""); // in-memory: isolates runs from ~/.cache
    AsciiTable table({"Chain", "plan cold (ms)", "plan warm (ms)",
                      "cold/warm", "tune (ms)", "tune/plan",
                      "Chimera run (ms)", "tuned run (ms)", "perf ratio"});
    std::vector<double> overheadRatios;
    std::vector<double> perfRatios;
    std::vector<double> warmSpeedups;
    for (std::size_t i : {1u, 4u, 7u, 9u, 11u}) {
        const ir::GemmChainConfig cfg = ir::tableIvWorkloads()[i].config;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        GemmChainData data(cfg);

        const plan::ExecutionPlan plan = planCpuCached(chain, cache);
        const plan::ExecutionPlan warm = planCpuCached(chain, cache);
        if (warm.perm != plan.perm || warm.tiles != plan.tiles) {
            std::fprintf(stderr,
                         "FATAL: warm cache plan differs from cold plan "
                         "for %s\n",
                         cfg.name.c_str());
            return 1;
        }
        warmSpeedups.push_back(plan.planSeconds / warm.planSeconds);
        const double tChimera = timeFusedGemmChain(cfg, plan, engine, data);

        baselines::TunerOptions tunerOptions;
        tunerOptions.memCapacityBytes = kCpuCapacityBytes;
        tunerOptions.trials = 30;
        tunerOptions.seed = 5;
        tunerOptions.constraints =
            exec::cpuChainConstraints(chain, hostKernel());
        const baselines::TunerResult tuned = baselines::randomSearchPlan(
            chain, tunerOptions, [&](const plan::ExecutionPlan &p) {
                return bestOfSeconds(
                    [&] {
                        exec::runFusedGemmChain(cfg, p, engine, data.a,
                                                data.b, data.d, data.e);
                    },
                    1, 0);
            });
        const double tTuned =
            timeFusedGemmChain(cfg, tuned.plan, engine, data);

        overheadRatios.push_back(tuned.tuneSeconds / plan.planSeconds);
        perfRatios.push_back(tTuned / tChimera);
        table.addRow(
            {cfg.name, AsciiTable::num(plan.planSeconds * 1e3, 2),
             AsciiTable::num(warm.planSeconds * 1e3, 4),
             AsciiTable::num(plan.planSeconds / warm.planSeconds, 0) +
                 "x",
             AsciiTable::num(tuned.tuneSeconds * 1e3, 1),
             AsciiTable::num(tuned.tuneSeconds / plan.planSeconds, 1) +
                 "x",
             AsciiTable::num(tChimera * 1e3, 2),
             AsciiTable::num(tTuned * 1e3, 2),
             AsciiTable::num(tTuned / tChimera, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean: tuning costs %.1fx more time than planning; "
                "planned kernels run %.2fx faster than tuned ones "
                "(paper: 21.89x and 1.39x); a warm plan-cache hit is "
                "%.0fx faster than cold planning.\n",
                geometricMean(overheadRatios), geometricMean(perfRatios),
                geometricMean(warmSpeedups));
    return 0;
}
