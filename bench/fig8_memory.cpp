/**
 * @file
 * Figure 8a-c reproduction: cache behaviour of the fused kernels versus
 * the unfused library proxy, measured with the trace-driven cache
 * simulator on the Xeon-like hierarchy (DESIGN.md: the simulator stands
 * in for hardware performance counters).
 *
 * Reported per Table IV chain: L2/L3 hit rates for both systems, the
 * change in L1<->L2 traffic (the paper observes an *increase* — the
 * fused kernel moves its reuse into near caches), the L2<->L3 traffic
 * reduction, and the DRAM access reduction.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "cachesim/conv_trace.hpp"
#include "cachesim/gemm_trace.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 8a-c — cache simulation of fused vs unfused GEMM chains",
        "Set-associative LRU hierarchy: 32 KiB L1d / 1 MiB L2 / "
        "24.75 MiB L3, 64 B lines.");

    const auto levels = cachesim::xeonLikeCaches();
    AsciiTable table({"Chain", "L2 hit (Chimera)", "L2 hit (PyTorch)",
                      "L3 hit (Chimera)", "L3 hit (PyTorch)",
                      "L1<->L2 delta", "L2<->L3 saved", "DRAM saved"});
    std::vector<double> l23Saved;
    std::vector<double> dramSaved;
    for (const auto &load : ir::tableIvWorkloads()) {
        const ir::GemmChainConfig &cfg = load.config;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = bench::planCpu(chain);

        const cachesim::TraceResult fused =
            cachesim::traceFusedGemmChain(cfg, plan, levels);
        const cachesim::TraceResult unfused =
            cachesim::traceUnfusedGemmChain(cfg, exec::GemmTiles{64, 64, 64},
                                            exec::GemmTiles{64, 64, 64},
                                            levels);

        const double l12Delta = 100.0 * (fused.trafficIntoLevelBytes[0] /
                                             unfused.trafficIntoLevelBytes
                                                 [0] -
                                         1.0);
        const double l23 = 100.0 * (1.0 - fused.trafficIntoLevelBytes[1] /
                                              unfused.trafficIntoLevelBytes
                                                  [1]);
        const double dram =
            100.0 * (1.0 - fused.dramBytes / unfused.dramBytes);
        l23Saved.push_back(l23);
        dramSaved.push_back(dram);
        table.addRow(
            {cfg.name, AsciiTable::num(100.0 * fused.hitRates[1], 1) + "%",
             AsciiTable::num(100.0 * unfused.hitRates[1], 1) + "%",
             AsciiTable::num(100.0 * fused.hitRates[2], 1) + "%",
             AsciiTable::num(100.0 * unfused.hitRates[2], 1) + "%",
             AsciiTable::num(l12Delta, 1) + "%",
             AsciiTable::num(l23, 1) + "%",
             AsciiTable::num(dram, 1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());

    double l23Mean = 0.0;
    double dramMean = 0.0;
    for (std::size_t i = 0; i < l23Saved.size(); ++i) {
        l23Mean += l23Saved[i];
        dramMean += dramSaved[i];
    }
    l23Mean /= static_cast<double>(l23Saved.size());
    dramMean /= static_cast<double>(dramSaved.size());
    std::printf("average L2<->L3 traffic reduction: %.1f%% (paper: 59.75%%"
                " avg); average DRAM access reduction: %.1f%% (paper: "
                "75.17%% avg).\n\n",
                l23Mean, dramMean);

    // Companion table (beyond the paper's Figure 8, which covers GEMM
    // chains only): the same measurement for the Table V conv chains —
    // the locality picture behind Figure 5c/5d.
    AsciiTable convTable({"Chain", "DRAM (Chimera)", "DRAM (PyTorch)",
                          "DRAM saved", "L2<->L3 saved"});
    for (const auto &load : ir::tableVWorkloads()) {
        const ir::ConvChainConfig &cfg = load.config;
        const ir::Chain chain = ir::makeConvChain(cfg);
        const plan::ExecutionPlan plan = bench::planCpu(chain);
        const cachesim::TraceResult fused =
            cachesim::traceFusedConvChain(cfg, plan, levels);
        const cachesim::TraceResult unfused =
            cachesim::traceUnfusedConvChain(cfg, exec::ConvTiles{64, 64},
                                            exec::ConvTiles{64, 64},
                                            levels);
        convTable.addRow(
            {cfg.name, formatBytes(fused.dramBytes),
             formatBytes(unfused.dramBytes),
             AsciiTable::num(
                 100.0 * (1.0 - fused.dramBytes / unfused.dramBytes), 1) +
                 "%",
             AsciiTable::num(100.0 * (1.0 -
                                      fused.trafficIntoLevelBytes[1] /
                                          unfused.trafficIntoLevelBytes
                                              [1]),
                             1) +
                 "%"});
    }
    std::printf("--- convolution chains (companion measurement) ---\n%s",
                convTable.render().c_str());
    return 0;
}
