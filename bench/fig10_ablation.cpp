/**
 * @file
 * Figure 10 reproduction: ablation of Chimera's three ingredients —
 * analytical cost model (C), fusion (F), micro kernel (M) — on batch
 * GEMM chains.
 *
 * Mapping of the paper's five versions:
 *  - baseline: unfused, default-codegen kernel, tiles picked by
 *    measuring 20 random candidates (the paper's "cost model disabled"
 *    protocol);
 *  - v-C: unfused, default-codegen kernel, analytically solved tiles;
 *  - v-F: fused, default-codegen kernel, random-searched order+tiles;
 *  - v-M: unfused, AVX-512 micro kernel, random tiles;
 *  - v-CFM: full Chimera (fused, planned, AVX-512 micro kernel).
 * "Default codegen" is the AVX2 tier: what generic LLVM instruction
 * selection reaches without the hand-scheduled AVX-512 outer-product
 * pipeline (§II-B2).
 * Reported numbers are speedups over baseline (higher is better).
 */

#include <cstdio>

#include "baselines/random_tuner.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"

namespace chimera::bench {
namespace {

/** Random GemmTiles search measured on hardware (C disabled, unfused). */
exec::GemmTiles
randomGemmTiles(const ir::GemmChainConfig &cfg,
                const exec::ComputeEngine &engine, GemmChainData &data,
                std::uint64_t seed, int trials)
{
    Rng rng(seed);
    const std::int64_t sizes[] = {16, 32, 48, 64, 96, 128, 192, 256};
    auto pick = [&] {
        return sizes[rng.below(sizeof(sizes) / sizeof(sizes[0]))];
    };
    exec::GemmTiles best;
    double bestSeconds = 1e300;
    for (int t = 0; t < trials; ++t) {
        const exec::GemmTiles cand{pick(), pick(), pick()};
        const double s = bestOfSeconds(
            [&] {
                exec::runUnfusedGemmChain(cfg, engine, data.a, data.b,
                                          data.d, data.scratchC, data.e,
                                          cand, cand);
            },
            1, 0);
        if (s < bestSeconds) {
            bestSeconds = s;
            best = cand;
        }
    }
    return best;
}

} // namespace
} // namespace chimera::bench

int
main()
{
    using namespace chimera;
    using namespace chimera::bench;
    bench::printHeader(
        "Figure 10 — ablation: cost model (C), fusion (F), micro kernel "
        "(M)",
        "Normalized speedup over the all-disabled baseline. Paper "
        "averages: C 2.37x, F 1.89x, M 1.61x.");

    const exec::ComputeEngine bestEngine = exec::ComputeEngine::best();
    // Default-codegen proxy: AVX2 tier when available, scalar otherwise.
    const SimdTier defaultTier =
        detectSimdTier() == SimdTier::Scalar ? SimdTier::Scalar
                                             : SimdTier::Avx2Fma;
    const exec::ComputeEngine scalarEngine(
        kernels::MicroKernelRegistry::instance().select(defaultTier));
    constexpr int kTrials = 20;

    AsciiTable table(
        {"Chain", "baseline", "v-C", "v-F", "v-M", "v-CFM"});
    std::vector<double> gC, gF, gM, gAll;
    for (std::size_t i : {3u, 6u, 9u}) { // G4, G7, G10
        const ir::GemmChainConfig cfg = ir::tableIvWorkloads()[i].config;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        GemmChainData data(cfg);

        // baseline: random tiles, unfused, scalar kernel.
        const exec::GemmTiles randTiles =
            randomGemmTiles(cfg, scalarEngine, data, 1, kTrials);
        const double tBaseline =
            timeUnfusedGemmChain(cfg, scalarEngine, data, randTiles,
                                 randTiles);

        // v-C: solved tiles, unfused, scalar kernel.
        const exec::GemmTiles tuned1 =
            solvedGemmTiles(cfg.batch, cfg.m, cfg.l, cfg.k);
        const exec::GemmTiles tuned2 =
            solvedGemmTiles(cfg.batch, cfg.m, cfg.n, cfg.l);
        const double tC =
            timeUnfusedGemmChain(cfg, scalarEngine, data, tuned1, tuned2);

        // v-F: fused, random-searched schedule, scalar kernel.
        baselines::TunerOptions tunerOptions;
        tunerOptions.memCapacityBytes = kCpuCapacityBytes;
        tunerOptions.trials = kTrials;
        tunerOptions.seed = 2;
        // The tuner samples executor-friendly tiles; with the cost model
        // off, *selection* among them is purely by measurement.
        tunerOptions.constraints =
            exec::cpuChainConstraints(chain, hostKernel());
        const baselines::TunerResult tuned = baselines::randomSearchPlan(
            chain, tunerOptions, [&](const plan::ExecutionPlan &p) {
                return bestOfSeconds(
                    [&] {
                        exec::runFusedGemmChain(cfg, p, scalarEngine,
                                                data.a, data.b, data.d,
                                                data.e);
                    },
                    1, 0);
            });
        const double tF =
            timeFusedGemmChain(cfg, tuned.plan, scalarEngine, data);

        // v-M: random tiles, unfused, wide kernel.
        const exec::GemmTiles randTilesM =
            randomGemmTiles(cfg, bestEngine, data, 3, kTrials);
        const double tM = timeUnfusedGemmChain(cfg, bestEngine, data,
                                               randTilesM, randTilesM);

        // v-CFM: full Chimera.
        const plan::ExecutionPlan plan = planCpu(chain);
        const double tAll = timeFusedGemmChain(cfg, plan, bestEngine, data);

        gC.push_back(tBaseline / tC);
        gF.push_back(tBaseline / tF);
        gM.push_back(tBaseline / tM);
        gAll.push_back(tBaseline / tAll);
        table.addRow({cfg.name, "1.00x",
                      AsciiTable::num(tBaseline / tC, 2) + "x",
                      AsciiTable::num(tBaseline / tF, 2) + "x",
                      AsciiTable::num(tBaseline / tM, 2) + "x",
                      AsciiTable::num(tBaseline / tAll, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomeans: v-C %.2fx, v-F %.2fx, v-M %.2fx, v-CFM %.2fx\n",
                geometricMean(gC), geometricMean(gF), geometricMean(gM),
                geometricMean(gAll));
    return 0;
}
