/**
 * @file
 * Figure 2 + Table III reproduction: for the two-GEMM chain, prints
 * (a) the per-tensor reuse dimensions and total data movement volume of
 * every one of the 24 block execution orders (the Figure 2 table), and
 * (b) the symbolic Table III data-movement/footprint entries evaluated
 * under order mlkn, alongside the closed-form optimum of §IV-B.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "model/data_movement.hpp"
#include "model/symbolic.hpp"
#include "solver/closed_form.hpp"
#include "support/mathutil.hpp"
#include "support/str.hpp"

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 2 / Table III — block orders, reuse and data movement",
        "GEMM chain C = A x B, E = C x D with M = N = K = L = 2048, "
        "tiles (T_M, T_N, T_K, T_L) = (128, 64, 64, 128).");

    ir::GemmChainConfig cfg;
    cfg.m = 2048;
    cfg.n = 2048;
    cfg.k = 2048;
    cfg.l = 2048;
    cfg.name = "fig2";
    const ir::Chain chain = ir::makeGemmChain(cfg);

    std::vector<std::int64_t> tiles = chain.fullExtents();
    auto setTile = [&](const char *name, std::int64_t v) {
        tiles[static_cast<std::size_t>(ir::axisIdByName(chain, name))] = v;
    };
    setTile("m", 128);
    setTile("n", 64);
    setTile("k", 64);
    setTile("l", 128);

    AsciiTable orders({"Order", "reuse A", "reuse B", "reuse D", "reuse E",
                       "DV (MB)", "executable"});
    for (const auto &idx : allPermutations(4)) {
        const std::vector<ir::AxisId> perm(idx.begin(), idx.end());
        const auto reuse = model::reuseAxesPerTensor(chain, perm, tiles);
        const auto dm = model::computeDataMovement(chain, perm, tiles);
        auto cell = [&](int t) {
            return reuse[static_cast<std::size_t>(t)].empty()
                       ? std::string("-")
                       : joinStrings(reuse[static_cast<std::size_t>(t)],
                                     ",");
        };
        orders.addRow({plan::orderString(chain, perm), cell(0), cell(1),
                       cell(3), cell(4),
                       AsciiTable::num(dm.volumeBytes / 1e6, 1),
                       model::isExecutableOrder(chain, perm) ? "yes"
                                                             : "no"});
    }
    std::printf("%s\n", orders.render().c_str());

    // Table III under mlkn, with the mechanically derived symbolic
    // expressions (they match the paper's column verbatim).
    const auto perm = plan::permFromOrderString(chain, "m,l,k,n");
    const auto dm = model::computeDataMovement(chain, perm, tiles);
    const auto symbolic = model::symbolicMovement(chain, perm);
    AsciiTable t3({"Tensor", "DM (symbolic)", "DM (model, MB)",
                   "DM (formula, MB)", "DF (elements)"});
    const double M = 2048, N = 2048, K = 2048, L = 2048;
    const double cm = ceilDiv(2048, 128), cl = ceilDiv(2048, 128);
    const double formula[5] = {M * K * cl * 4, K * L * cm * 4, 0.0,
                               N * L * cm * 4, M * N * cl * 4};
    const char *names[5] = {"A", "B", "C", "D", "E"};
    const std::int64_t fp[5] = {128 * 64, 64 * 128, 128 * 128, 128 * 64,
                                128 * 64};
    for (int t = 0; t < 5; ++t) {
        t3.addRow({names[t], symbolic[static_cast<std::size_t>(t)],
                   AsciiTable::num(dm.perTensorBytes[static_cast<std::size_t>(
                                       t)] / 1e6, 1),
                   AsciiTable::num(formula[t] / 1e6, 1),
                   std::to_string(fp[t])});
    }
    std::printf("%s\n", t3.render().c_str());

    // Closed form of §IV-B at 256 KiB of on-chip memory.
    const auto closed = solver::solveGemmChainClosedForm(
        2048, 2048, 2048, 2048, 256.0 * 1024 / 4, 8);
    std::printf("Closed form (MC = 256 KiB): T_M* = T_L* = %.1f, "
                "integer tiles (T_M, T_N, T_K, T_L) = (%ld, %ld, %ld, %ld),"
                " DV* = %.1f MB, rounding bound %.3fx\n",
                closed.tmStar, static_cast<long>(closed.tm),
                static_cast<long>(closed.tn), static_cast<long>(closed.tk),
                static_cast<long>(closed.tl),
                closed.dvStarElems * 4 / 1e6, closed.approximationBound);
    return 0;
}
