/**
 * @file
 * Figure 5a/5b reproduction (CPU): batch GEMM chain fusion, without and
 * with the softmax intermediate, on the Table IV workloads G1-G12.
 *
 * Baseline mapping (DESIGN.md §2):
 *  - "Relay"   -> unfused, scalar micro kernel, fixed tiles
 *                 (template-grade per-op kernels, no tuning);
 *  - "PyTorch" -> unfused, best micro kernel, fixed 64^3 tiles
 *                 (library-grade per-op kernels, no chain fusion);
 *  - "Ansor"   -> unfused, best micro kernel, analytically solved
 *                 per-GEMM tiles (well-tuned per-op schedules);
 *  - "Chimera" -> fused, planner-chosen order and tiles.
 *
 * Every row is validated against the naive oracle before timing.
 * Speedups are normalized to the PyTorch proxy as in the paper.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "support/mathutil.hpp"

namespace chimera::bench {
namespace {

void
runFamily(ir::Epilogue epilogue, const char *title)
{
    const exec::ComputeEngine best = exec::ComputeEngine::best();
    const exec::ComputeEngine scalar = exec::ComputeEngine::scalar();

    AsciiTable table({"Chain", "Relay (ms)", "PyTorch (ms)", "Ansor (ms)",
                      "Chimera (ms)", "order", "vs PyTorch", "vs Ansor"});
    std::vector<double> speedupsPt;
    std::vector<double> speedupsAnsor;
    for (const auto &load : ir::tableIvWorkloads()) {
        ir::GemmChainConfig cfg = load.config;
        cfg.epilogue = epilogue;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = planCpu(chain);
        GemmChainData data(cfg);

        // Correctness gate: fused output must match the oracle.
        Tensor expected(exec::gemmChainShapeE(cfg));
        exec::referenceGemmChain(cfg, data.a, data.b, data.d, expected);
        exec::runFusedGemmChain(cfg, plan, best, data.a, data.b, data.d,
                                data.e);
        if (!allClose(data.e, expected, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return;
        }

        const exec::GemmTiles fixed{64, 64, 64};
        const exec::GemmTiles tuned1 =
            solvedGemmTiles(cfg.batch, cfg.m, cfg.l, cfg.k);
        const exec::GemmTiles tuned2 =
            solvedGemmTiles(cfg.batch, cfg.m, cfg.n, cfg.l);

        const double tRelay =
            timeUnfusedGemmChain(cfg, scalar, data, fixed, fixed);
        const double tPytorch =
            timeUnfusedGemmChain(cfg, best, data, fixed, fixed);
        const double tAnsor =
            timeUnfusedGemmChain(cfg, best, data, tuned1, tuned2);
        const double tChimera =
            timeFusedGemmChain(cfg, plan, best, data);

        speedupsPt.push_back(tPytorch / tChimera);
        speedupsAnsor.push_back(tAnsor / tChimera);
        table.addRow({cfg.name, AsciiTable::num(tRelay * 1e3, 2),
                      AsciiTable::num(tPytorch * 1e3, 2),
                      AsciiTable::num(tAnsor * 1e3, 2),
                      AsciiTable::num(tChimera * 1e3, 2),
                      plan::orderString(chain, plan.perm),
                      AsciiTable::num(tPytorch / tChimera, 2) + "x",
                      AsciiTable::num(tAnsor / tChimera, 2) + "x"});
    }
    std::printf("--- %s ---\n%s", title, table.render().c_str());
    std::printf("geomean speedup vs PyTorch proxy: %.2fx, vs Ansor proxy:"
                " %.2fx\n\n",
                geometricMean(speedupsPt), geometricMean(speedupsAnsor));
}

} // namespace
} // namespace chimera::bench

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 5a/5b — CPU batch GEMM chain fusion (measured)",
        "Single-core AVX-512 fp32; note the substrate's compute/bandwidth"
        " balance (~6 Flop/byte) is far below the paper's 18-core fp16"
        " Xeon (92 Flop/byte), which compresses memory-bound gaps"
        " (see EXPERIMENTS.md).");
    bench::runFamily(ir::Epilogue::None,
                     "Figure 5a: BGEMM + BGEMM");
    bench::runFamily(ir::Epilogue::Softmax,
                     "Figure 5b: BGEMM + softmax + BGEMM");
    return 0;
}
