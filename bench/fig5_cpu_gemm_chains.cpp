/**
 * @file
 * Figure 5a/5b reproduction (CPU): batch GEMM chain fusion, without and
 * with the softmax intermediate, on the Table IV workloads G1-G12.
 *
 * Baseline mapping (DESIGN.md §2):
 *  - "Relay"   -> unfused, scalar micro kernel, fixed tiles
 *                 (template-grade per-op kernels, no tuning);
 *  - "PyTorch" -> unfused, best micro kernel, fixed 64^3 tiles
 *                 (library-grade per-op kernels, no chain fusion);
 *  - "Ansor"   -> unfused, best micro kernel, analytically solved
 *                 per-GEMM tiles (well-tuned per-op schedules);
 *  - "Chimera" -> fused, planner-chosen order and tiles.
 *
 * Every row is validated against the naive oracle before timing.
 * Speedups are normalized to the PyTorch proxy as in the paper.
 */

#include <cstdio>
#include <cstring>

#include <algorithm>

#include "analysis/dependence.hpp"
#include "analysis/static_safety.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"
#include "support/thread_pool.hpp"

namespace chimera::bench {
namespace {

/** Bench knobs shared by the two figure families. */
struct RunOptions
{
    int threads = 0;  ///< --threads N (0 = CHIMERA_THREADS / hardware)
    bool sim = false; ///< --sim: simulated-critical-path Chimera timing
    bool quick = false; ///< --quick: first four Table IV workloads only
};

void
runFamily(ir::Epilogue epilogue, const char *title, const RunOptions &run)
{
    const exec::ComputeEngine best = exec::ComputeEngine::best();
    const exec::ComputeEngine scalar = exec::ComputeEngine::scalar();
    const exec::ExecOptions parOptions{run.threads, nullptr};
    const int workers = resolveThreadCount(run.threads);

    AsciiTable table({"Chain", "Relay (ms)", "PyTorch (ms)", "Ansor (ms)",
                      "Chimera 1T (ms)",
                      "Chimera " + std::to_string(workers) + "T (ms)",
                      "order", "vs PyTorch", "vs Ansor", "scaling"});
    std::vector<double> speedupsPt;
    std::vector<double> speedupsAnsor;
    std::vector<double> scalings;
    const auto &loads = ir::tableIvWorkloads();
    const std::size_t count =
        run.quick ? std::min<std::size_t>(4, loads.size()) : loads.size();
    for (std::size_t w = 0; w < count; ++w) {
        ir::GemmChainConfig cfg = loads[w].config;
        cfg.epilogue = epilogue;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = planCpu(chain);
        // The thread-aware plan the parallel/simulated columns run:
        // per-worker LLC budgets plus the parallel-axis chunking.
        const plan::ExecutionPlan planPar =
            workers > 1 ? planCpuThreaded(chain, workers) : plan;
        GemmChainData data(cfg);

        // Correctness gate: fused output must match the oracle, and the
        // parallel fused run of the thread-aware plan must match its
        // serial run bitwise.
        Tensor expected(exec::gemmChainShapeE(cfg));
        exec::referenceGemmChain(cfg, data.a, data.b, data.d, expected);
        exec::runFusedGemmChain(cfg, planPar, best, data.a, data.b,
                                data.d, data.e);
        if (!allClose(data.e, expected, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return;
        }
        Tensor serialOut = data.e;
        exec::runFusedGemmChain(cfg, planPar, best, data.a, data.b,
                                data.d, data.e, parOptions);
        if (std::memcmp(serialOut.data(), data.e.data(),
                        static_cast<std::size_t>(serialOut.numel()) *
                            sizeof(float)) != 0) {
            std::printf("PARALLEL DETERMINISM FAILED for %s\n",
                        cfg.name.c_str());
            return;
        }

        const exec::GemmTiles fixed{64, 64, 64};
        const exec::GemmTiles tuned1 =
            solvedGemmTiles(cfg.batch, cfg.m, cfg.l, cfg.k);
        const exec::GemmTiles tuned2 =
            solvedGemmTiles(cfg.batch, cfg.m, cfg.n, cfg.l);

        const double tRelay =
            timeUnfusedGemmChain(cfg, scalar, data, fixed, fixed);
        const double tPytorch =
            timeUnfusedGemmChain(cfg, best, data, fixed, fixed);
        const double tAnsor =
            timeUnfusedGemmChain(cfg, best, data, tuned1, tuned2);
        double tChimera = 0.0;
        double tChimeraPar = 0.0;
        if (run.sim) {
            // Simulated critical path (see DESIGN.md): both runs
            // execute serially; each chunk's time is charged to its
            // static owner, T_par = sum over phases of max-busy worker.
            tChimera = bestOfSimulatedSeconds(1, [&](auto &profile) {
                exec::ExecOptions o{1, nullptr, nullptr, &profile};
                exec::runFusedGemmChain(cfg, plan, best, data.a, data.b,
                                        data.d, data.e, o);
            });
            tChimeraPar =
                bestOfSimulatedSeconds(workers, [&](auto &profile) {
                    exec::ExecOptions o{1, nullptr, nullptr, &profile};
                    exec::runFusedGemmChain(cfg, planPar, best, data.a,
                                            data.b, data.d, data.e, o);
                });
        } else {
            tChimera =
                timeFusedGemmChain(cfg, plan, best, data, kRepeats,
                                   exec::ExecOptions{1, nullptr});
            tChimeraPar = timeFusedGemmChain(cfg, planPar, best, data,
                                             kRepeats, parOptions);
        }

        speedupsPt.push_back(tPytorch / tChimeraPar);
        speedupsAnsor.push_back(tAnsor / tChimeraPar);
        scalings.push_back(tChimera / tChimeraPar);
        table.addRow({cfg.name, AsciiTable::num(tRelay * 1e3, 2),
                      AsciiTable::num(tPytorch * 1e3, 2),
                      AsciiTable::num(tAnsor * 1e3, 2),
                      AsciiTable::num(tChimera * 1e3, 2),
                      AsciiTable::num(tChimeraPar * 1e3, 2),
                      plan::orderString(chain, planPar.perm),
                      AsciiTable::num(tPytorch / tChimeraPar, 2) + "x",
                      AsciiTable::num(tAnsor / tChimeraPar, 2) + "x",
                      AsciiTable::num(tChimera / tChimeraPar, 2) + "x"});
    }
    std::printf("--- %s ---\n%s", title, table.render().c_str());
    std::printf("geomean speedup vs PyTorch proxy: %.2fx, vs Ansor proxy:"
                " %.2fx, serial->%dT scaling: %.2fx\n\n",
                geometricMean(speedupsPt), geometricMean(speedupsAnsor),
                workers, geometricMean(scalings));
}

/**
 * Planner-cost split over the Table IV workloads: time of the
 * dependence analysis (which the planner runs once per finished plan to
 * attach the axis-concurrency table) and of the static safety analyzer
 * (which certifies the winner's SB01-SB04 rules) against the full
 * planning cost. The lines are machine-parseable;
 * scripts/bench_scaling.sh lifts them into BENCH_scaling.json.
 */
void
reportAnalysisOverhead()
{
    double planMs = 0.0;
    double analysisMs = 0.0;
    double safetyMs = 0.0;
    for (const auto &load : ir::tableIvWorkloads()) {
        const ir::Chain chain = ir::makeGemmChain(load.config);
        const WallTimer planTimer;
        const plan::ExecutionPlan plan = planCpu(chain);
        planMs += planTimer.milliseconds();
        const WallTimer analysisTimer;
        (void)analysis::analyzeConcurrency(chain, plan.tiles);
        analysisMs += analysisTimer.milliseconds();
        analysis::SafetyOptions so;
        so.memCapacityBytes = kCpuCapacityBytes;
        const analysis::SafetyAnalysis sa = analysis::analyzeSafety(
            chain, plan.perm, plan.tiles,
            plan::effectiveConcurrency(chain, plan),
            std::max(1, plan.plannedThreads), plan.parallelGrain,
            analysis::ShapeDomain::concrete(chain), so);
        safetyMs += sa.totalSeconds * 1e3;
    }
    std::printf("analysis overhead: dependence analysis %.3f ms vs"
                " planning %.3f ms (%.2f%% of planning)\n",
                analysisMs, planMs,
                planMs > 0.0 ? 100.0 * analysisMs / planMs : 0.0);
    std::printf("analysis overhead: static safety %.3f ms vs"
                " planning %.3f ms (%.2f%% of planning)\n\n",
                safetyMs, planMs,
                planMs > 0.0 ? 100.0 * safetyMs / planMs : 0.0);
}

} // namespace
} // namespace chimera::bench

int
main(int argc, char **argv)
{
    using namespace chimera;
    bench::RunOptions run;
    run.threads = bench::threadsFromArgs(argc, argv);
    run.sim = bench::flagInArgs(argc, argv, "--sim");
    run.quick = bench::flagInArgs(argc, argv, "--quick");
    bench::printHeader(
        "Figure 5a/5b — CPU batch GEMM chain fusion (measured)",
        "AVX-512 fp32 (--threads N or CHIMERA_THREADS selects the worker"
        " count; Chimera timed serial and parallel); note the substrate's"
        " compute/bandwidth balance (~6 Flop/byte) is far below the"
        " paper's 18-core fp16 Xeon (92 Flop/byte), which compresses"
        " memory-bound gaps (see EXPERIMENTS.md).");
    std::printf("scaling mode: %s\n\n",
                run.sim ? "simulated-critical-path" : "wall-clock");
    bench::runFamily(ir::Epilogue::None, "Figure 5a: BGEMM + BGEMM", run);
    bench::runFamily(ir::Epilogue::Softmax,
                     "Figure 5b: BGEMM + softmax + BGEMM", run);
    bench::reportAnalysisOverhead();
    return 0;
}
