/**
 * @file
 * Figure 9 reproduction: end-to-end encoder networks with the attention
 * batch GEMM chain executed by Chimera's fused kernel versus the
 * unfused library path. All surrounding operators are identical, so the
 * delta isolates the chain-fusion contribution (the paper's
 * Relay+Chimera vs Relay+CuDNN/Ansor comparison). Wall-clock, measured
 * on the host CPU.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "graph/transformer.hpp"
#include "support/mathutil.hpp"

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 9 — end-to-end encoder stacks (measured, CPU)",
        "Attention chain fused by Chimera vs unfused; other operators "
        "shared. One encoder stack per model configuration.");

    const graph::EncoderConfig configs[] = {
        graph::transformerSmall(), graph::transformerBase(),
        graph::transformerLarge(), graph::bertBase(),
        graph::bertLarge(),        graph::vitBase(),
        graph::vitLarge(),
    };

    AsciiTable table({"Model", "layers", "Unfused (ms)", "Chimera (ms)",
                      "speedup", "attn unfused (ms)", "attn fused (ms)",
                      "attn speedup"});
    std::vector<double> speedups;
    for (const auto &cfg : configs) {
        const graph::TransformerEncoder encoder(cfg,
                                                bench::kCpuCapacityBytes);
        Tensor input({cfg.seqLen, cfg.modelDim()});
        Rng rng(17);
        fillUniform(input, rng);

        // Validate once: both paths agree end to end.
        const Tensor fusedOut =
            encoder.forward(input, graph::AttentionMode::FusedChimera);
        const Tensor unfusedOut =
            encoder.forward(input, graph::AttentionMode::Unfused);
        if (!allClose(fusedOut, unfusedOut, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return 1;
        }

        const double tFused = bestOfSeconds(
            [&] {
                (void)encoder.forward(
                    input, graph::AttentionMode::FusedChimera);
            },
            3, 1);
        const double tUnfused = bestOfSeconds(
            [&] {
                (void)encoder.forward(input,
                                      graph::AttentionMode::Unfused);
            },
            3, 1);
        speedups.push_back(tUnfused / tFused);

        // Attention chain standalone (the Figure 5b measurement for
        // this model's shape): shows how much of the chain-level gain
        // survives to the end-to-end number.
        const ir::GemmChainConfig chainCfg = encoder.attentionChain();
        bench::GemmChainData data(chainCfg);
        const exec::ComputeEngine engine = exec::ComputeEngine::best();
        const double tAttnFused = bench::timeFusedGemmChain(
            chainCfg, encoder.attentionPlan(), engine, data);
        const double tAttnUnfused = bench::timeUnfusedGemmChain(
            chainCfg, engine, data, {64, 64, 64}, {64, 64, 64});

        table.addRow({cfg.name, std::to_string(cfg.layers),
                      AsciiTable::num(tUnfused * 1e3, 1),
                      AsciiTable::num(tFused * 1e3, 1),
                      AsciiTable::num(tUnfused / tFused, 2) + "x",
                      AsciiTable::num(tAttnUnfused * 1e3, 2),
                      AsciiTable::num(tAttnFused * 1e3, 2),
                      AsciiTable::num(tAttnUnfused / tAttnFused, 2) +
                          "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean end-to-end speedup: %.2fx (paper: 1.22x-1.42x "
                "over tuned baselines on A100).\n",
                geometricMean(speedups));
    return 0;
}
