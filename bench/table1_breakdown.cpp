/**
 * @file
 * Table I reproduction: (a) execution-time breakdown of Transformer /
 * Bert-Base / ViT into memory-intensive ops (%MI), compute-intensive
 * ops excluding attention batch GEMMs (%CI), and the memory-bound
 * attention batch GEMMs (%BMM); (b) the compute/memory characteristics
 * of the three accelerators.
 *
 * The breakdown is derived analytically: each operator of the encoder
 * stack is costed with the roofline of the A100-like machine model
 * (max of compute time and DRAM time at fp16), which is exactly the
 * regime the paper measures.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "graph/transformer.hpp"
#include "hw/machines.hpp"
#include "support/str.hpp"

namespace chimera {
namespace {

struct OpCost
{
    double miSeconds = 0.0; ///< memory-intensive operators
    double ciSeconds = 0.0; ///< compute-intensive ops except BMM
    double bmmSeconds = 0.0; ///< attention batch GEMMs
};

/** Roofline time for an operator: max(compute, DRAM traffic). */
double
opSeconds(const model::MachineModel &machine, double flops, double bytes)
{
    const double compute =
        flops / (machine.peakFlops * machine.computeEfficiency);
    const double memory =
        bytes / machine.levels.back().bandwidthBytesPerSec;
    return std::max(compute, memory);
}

OpCost
encoderCost(const graph::EncoderConfig &cfg,
            const model::MachineModel &machine)
{
    const double seq = static_cast<double>(cfg.seqLen);
    const double d = static_cast<double>(cfg.modelDim());
    const double ff = static_cast<double>(cfg.ffDim);
    const double heads = static_cast<double>(cfg.heads);
    const double hd = static_cast<double>(cfg.headDim);
    constexpr double e = 2.0; // fp16 bytes

    OpCost cost;
    // Dense projections Q, K, V, O: compute-intensive.
    cost.ciSeconds +=
        4.0 * opSeconds(machine, 2.0 * seq * d * d,
                        e * (seq * d + d * d + seq * d));
    // Feed-forward GEMMs.
    cost.ciSeconds += opSeconds(machine, 2.0 * seq * d * ff,
                                e * (seq * d + d * ff + seq * ff));
    cost.ciSeconds += opSeconds(machine, 2.0 * seq * ff * d,
                                e * (seq * ff + ff * d + seq * d));
    // Attention batch GEMMs (QK^T and PV): memory-bound BMM.
    cost.bmmSeconds += opSeconds(
        machine, 2.0 * heads * seq * seq * hd,
        e * heads * (seq * hd + hd * seq + seq * seq));
    cost.bmmSeconds += opSeconds(
        machine, 2.0 * heads * seq * seq * hd,
        e * heads * (seq * seq + seq * hd + seq * hd));
    // Memory-intensive: softmax, 2x layernorm, GELU, 2x residual add,
    // bias adds — costed by bytes touched (read+write).
    const double miBytes =
        e * (3.0 * heads * seq * seq // softmax (exp, sum, div passes)
             + 2.0 * 2.0 * seq * d // layer norms
             + 2.0 * seq * ff // GELU
             + 2.0 * 2.0 * seq * d // residuals
             + seq * ff + seq * d); // bias adds
    cost.miSeconds +=
        miBytes / machine.levels.back().bandwidthBytesPerSec;
    return cost;
}

} // namespace
} // namespace chimera

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Table I — ML model breakdown and accelerator balance",
        "Breakdown from the roofline-costed encoder stack on the "
        "A100-like machine model (fp16, sequence length 512).");

    AsciiTable breakdown({"Model", "%MI", "%CI", "%BMM"});
    const graph::EncoderConfig models[] = {
        graph::transformerSmall(),
        graph::bertBase(),
        // ViT-Huge: 16 heads x 80 head dim, 256 tokens (patch 14).
        [] {
            graph::EncoderConfig cfg;
            cfg.name = "ViT-Huge";
            cfg.seqLen = 256;
            cfg.heads = 16;
            cfg.headDim = 80;
            cfg.ffDim = 4 * 16 * 80;
            return cfg;
        }(),
    };
    const model::MachineModel gpu = hw::a100Gpu();
    for (const auto &cfg : models) {
        const auto cost = encoderCost(cfg, gpu);
        const double total =
            cost.miSeconds + cost.ciSeconds + cost.bmmSeconds;
        breakdown.addRow({cfg.name,
                          AsciiTable::num(100.0 * cost.miSeconds / total,
                                          2) + "%",
                          AsciiTable::num(100.0 * cost.ciSeconds / total,
                                          2) + "%",
                          AsciiTable::num(100.0 * cost.bmmSeconds / total,
                                          2) + "%"});
    }
    std::printf("%s\n", breakdown.render().c_str());

    AsciiTable machines(
        {"Device", "Peak Perf.", "Memory BW.", "Peak Perf/BW"});
    for (const auto &machine :
         {hw::cascadeLakeCpu(), hw::a100Gpu(), hw::ascend910Npu()}) {
        machines.addRow(
            {machine.name,
             AsciiTable::num(machine.peakFlops / 1e12, 0) + " TFlops",
             AsciiTable::num(
                 machine.levels.back().bandwidthBytesPerSec / 1e9, 0) +
                 " GB/s",
             AsciiTable::num(hw::machineBalance(machine), 0) +
                 " Flop/byte"});
    }
    std::printf("%s\n", machines.render().c_str());
    std::printf("Paper reference: %%BMM 26.65%%-40.04%%; balances 92 / 200"
                " / 267 Flop/byte.\n");
    return 0;
}
