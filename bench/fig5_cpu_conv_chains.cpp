/**
 * @file
 * Figure 5c/5d reproduction (CPU): convolution chain fusion on the
 * Table V workloads C1-C8, without and with the ReLU intermediate.
 *
 * Baseline mapping as in fig5_cpu_gemm_chains: Relay proxy (scalar
 * kernels, unfused), PyTorch proxy (best kernel, unfused), Chimera
 * (fused planned). Outputs are validated against the naive oracle
 * before timing. On this single-core substrate the conv chains are
 * compute-bound, so per the paper's own criterion ("fusion pays only
 * when the second convolution is memory-bound") the Chimera-vs-tuned
 * gap is small; the DRAM-traffic picture is in bench/fig8_memory.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "support/mathutil.hpp"

namespace chimera::bench {
namespace {

void
runFamily(ir::Epilogue epilogue, const char *title)
{
    const exec::ComputeEngine best = exec::ComputeEngine::best();
    const exec::ComputeEngine scalar = exec::ComputeEngine::scalar();

    AsciiTable table({"Chain", "Relay (ms)", "PyTorch (ms)",
                      "Chimera (ms)", "order", "vs Relay", "vs PyTorch"});
    std::vector<double> vsRelay;
    std::vector<double> vsPytorch;
    for (const auto &load : ir::tableVWorkloads()) {
        ir::ConvChainConfig cfg = load.config;
        cfg.epilogue = epilogue;
        const ir::Chain chain = ir::makeConvChain(cfg);
        const plan::ExecutionPlan plan = planCpu(chain);
        ConvChainData data(cfg);

        Tensor expected(exec::convChainShapeO(cfg));
        exec::referenceConvChain(cfg, data.input, data.w1, data.w2,
                                 expected);
        exec::runFusedConvChain(cfg, plan, best, data.input, data.w1,
                                data.w2, data.output);
        if (!allClose(data.output, expected, 5e-3f, 5e-3f)) {
            std::printf("VALIDATION FAILED for %s\n", cfg.name.c_str());
            return;
        }

        const exec::ConvTiles tiles{64, 64};
        const double tRelay = bestOfSeconds(
            [&] {
                exec::runUnfusedConvChain(cfg, scalar, data.input, data.w1,
                                          data.w2, data.scratchT,
                                          data.output, tiles, tiles);
            },
            kRepeats);
        const double tPytorch = bestOfSeconds(
            [&] {
                exec::runUnfusedConvChain(cfg, best, data.input, data.w1,
                                          data.w2, data.scratchT,
                                          data.output, tiles, tiles);
            },
            kRepeats);
        const double tChimera = bestOfSeconds(
            [&] {
                exec::runFusedConvChain(cfg, plan, best, data.input,
                                        data.w1, data.w2, data.output);
            },
            kRepeats);

        vsRelay.push_back(tRelay / tChimera);
        vsPytorch.push_back(tPytorch / tChimera);
        table.addRow({cfg.name, AsciiTable::num(tRelay * 1e3, 2),
                      AsciiTable::num(tPytorch * 1e3, 2),
                      AsciiTable::num(tChimera * 1e3, 2),
                      plan::orderString(chain, plan.perm),
                      AsciiTable::num(tRelay / tChimera, 2) + "x",
                      AsciiTable::num(tPytorch / tChimera, 2) + "x"});
    }
    std::printf("--- %s ---\n%s", title, table.render().c_str());
    std::printf("geomean speedup vs Relay proxy: %.2fx, vs PyTorch proxy:"
                " %.2fx\n\n",
                geometricMean(vsRelay), geometricMean(vsPytorch));
}

} // namespace
} // namespace chimera::bench

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 5c/5d — CPU convolution chain fusion (measured)",
        "Single-core AVX-512 fp32 implicit-GEMM convolutions.");
    bench::runFamily(ir::Epilogue::None, "Figure 5c: conv + conv");
    bench::runFamily(ir::Epilogue::Relu, "Figure 5d: conv + ReLU + conv");
    return 0;
}
