/**
 * @file
 * serve_loadgen: open-loop traffic generator for chimera-serve.
 *
 * Offers requests at a fixed rate R on an open-loop schedule: request i
 * is *due* at start + i/R regardless of how fast the daemon answers, and
 * its reported latency runs from that due time to response receipt — so
 * queueing delay from an overloaded daemon shows up in the tail instead
 * of silently throttling the offered load (closed-loop coordinated
 * omission). A sender thread walks the schedule while the main thread
 * collects responses, which may arrive out of order; they are matched
 * by request id.
 *
 * The workload cycles through a fixed set of small GEMM-chain classes
 * (the same shapes as `chimera-serve --check`), so consecutive requests
 * of one class are batchable and the daemon's coalescing shows up in
 * the measured batch-group sizes.
 *
 * Results go to stdout (human-readable) and --out (default
 * BENCH_serving.json): offered rate, achieved throughput, latency
 * p50/p90/p99/mean/max, error counters, and the daemon's own stats
 * document captured after the run. Stats-version-2 daemons also expose
 * their server-side HDR latency histogram (`latency-*` keys); those
 * surface as a dedicated `server_latency_seconds` block so client-
 * observed and server-measured percentiles sit side by side — the gap
 * between them is socket + queueing time.
 *
 * Usage:
 *   serve_loadgen --socket <path> [--rate R] [--requests N]
 *                 [--classes C] [--out file.json] [--quick]
 *
 * Exit status is non-zero on any connection failure, protocol error,
 * or error response.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "exec/gemm_chain_exec.hpp"
#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace {

using namespace chimera;
using Clock = std::chrono::steady_clock;

struct Options
{
    std::string socketPath;
    double rate = 200.0; // requests per second
    int requests = 512;
    int classes = 3;
    std::string outPath = "BENCH_serving.json";
};

/** The request classes offered, cycled round-robin. */
std::vector<ir::GemmChainConfig>
workloadClasses(int count)
{
    std::vector<ir::GemmChainConfig> classes;
    ir::GemmChainConfig relu;
    relu.m = 96;
    relu.n = 64;
    relu.k = 48;
    relu.l = 80;
    relu.epilogue = ir::Epilogue::Relu;
    classes.push_back(relu);

    ir::GemmChainConfig attention;
    attention.m = 64;
    attention.n = 64;
    attention.k = 64;
    attention.l = 64;
    attention.epilogue = ir::Epilogue::Softmax;
    attention.softmaxScale = 0.125f;
    attention.causalMask = true;
    classes.push_back(attention);

    ir::GemmChainConfig plain;
    plain.m = 80;
    plain.n = 48;
    plain.k = 32;
    plain.l = 56;
    plain.epilogue = ir::Epilogue::None;
    classes.push_back(plain);

    classes.resize(static_cast<std::size_t>(
        std::clamp(count, 1, static_cast<int>(classes.size()))));
    return classes;
}

#ifdef __unix__

int
connectSocket(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CHIMERA_CHECK(fd >= 0,
                  std::string("socket() failed: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CHIMERA_CHECK(path.size() < sizeof(addr.sun_path),
                  "socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    // The daemon may still be binding when we launch right after it;
    // retry briefly before giving up.
    for (int attempt = 0; attempt < 100; ++attempt) {
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::close(fd);
    CHIMERA_CHECK(false, "cannot connect to " + path);
    return -1;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty()) {
        return 0.0;
    }
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
}

int
run(const Options &options)
{
    const std::vector<ir::GemmChainConfig> classes =
        workloadClasses(options.classes);

    // Pre-encode one payload per class; per-request we only patch the
    // id field (offset 8 in the header) so the send path is allocation-
    // and encode-free.
    std::vector<std::string> templates;
    for (const ir::GemmChainConfig &config : classes) {
        serve::ExecuteRequest request;
        request.config = config;
        request.a = Tensor(exec::gemmChainShapeA(config));
        request.b = Tensor(exec::gemmChainShapeB(config));
        request.d = Tensor(exec::gemmChainShapeD(config));
        fillPattern(request.a);
        fillPattern(request.b);
        fillPattern(request.d);
        templates.push_back(serve::encodeExecuteRequest(request));
    }

    const int fd = connectSocket(options.socketPath);
    const int total = options.requests;
    const auto start = Clock::now();
    const auto secondsSince = [&](Clock::time_point t) {
        return std::chrono::duration<double>(t - start).count();
    };

    std::atomic<bool> sendFailed{false};
    std::thread sender([&] {
        try {
            std::string payload;
            for (int i = 0; i < total; ++i) {
                const auto due =
                    start + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    static_cast<double>(i) / options.rate));
                std::this_thread::sleep_until(due);
                payload = templates[static_cast<std::size_t>(i) %
                                    templates.size()];
                const auto id = static_cast<std::uint64_t>(i) + 1;
                for (int byte = 0; byte < 8; ++byte) {
                    payload[8 + byte] = static_cast<char>(
                        (id >> (8 * byte)) & 0xffu);
                }
                serve::writeFrame(fd, payload);
            }
        } catch (const Error &e) {
            std::fprintf(stderr, "send failed: %s\n", e.what());
            sendFailed.store(true);
        }
    });

    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(total));
    double sumBatchGroup = 0.0;
    double sumServerSeconds = 0.0;
    std::int64_t responseErrors = 0;
    std::int64_t protocolErrors = 0;
    double lastCompletion = 0.0;
    for (int received = 0; received < total; ++received) {
        std::optional<std::string> payload;
        try {
            payload = serve::readFrame(fd);
        } catch (const Error &e) {
            std::fprintf(stderr, "read failed: %s\n", e.what());
            ++protocolErrors;
            break;
        }
        if (!payload) {
            std::fprintf(stderr, "daemon closed the connection early\n");
            ++protocolErrors;
            break;
        }
        serve::Response response;
        try {
            response = serve::decodeResponse(*payload);
        } catch (const Error &e) {
            std::fprintf(stderr, "bad response: %s\n", e.what());
            ++protocolErrors;
            continue;
        }
        const double completion = secondsSince(Clock::now());
        lastCompletion = completion;
        if (response.status != serve::Status::Ok) {
            ++responseErrors;
            continue;
        }
        // Open-loop latency: from the request's *scheduled* send time,
        // so daemon-side queueing is charged to the tail.
        const double due =
            static_cast<double>(response.id - 1) / options.rate;
        latencies.push_back(completion - due);
        sumBatchGroup += response.execute.batchGroupSize;
        sumServerSeconds += response.execute.serverSeconds;
    }
    sender.join();

    // Fetch the daemon's own counters; ours is the only connection
    // with traffic left, so the next frame is the stats response.
    std::map<std::string, std::string> serverStats;
    try {
        serve::writeFrame(fd, serve::encodeStatsRequest(0));
        if (std::optional<std::string> payload = serve::readFrame(fd)) {
            const serve::Response response =
                serve::decodeResponse(*payload);
            std::istringstream lines(response.statsText);
            std::string line;
            while (std::getline(lines, line)) {
                const std::size_t colon = line.find(": ");
                if (colon != std::string::npos) {
                    serverStats[line.substr(0, colon)] =
                        line.substr(colon + 2);
                }
            }
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "stats fetch failed: %s\n", e.what());
        ++protocolErrors;
    }
    ::close(fd);

    const auto completed = static_cast<std::int64_t>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p90 = percentile(latencies, 0.90);
    const double p99 = percentile(latencies, 0.99);
    const double maxLatency = latencies.empty() ? 0.0 : latencies.back();
    double mean = 0.0;
    for (const double l : latencies) {
        mean += l;
    }
    mean = completed > 0 ? mean / static_cast<double>(completed) : 0.0;
    const double throughput =
        lastCompletion > 0.0 ? static_cast<double>(completed) / lastCompletion
                             : 0.0;
    const double meanBatchGroup =
        completed > 0 ? sumBatchGroup / static_cast<double>(completed) : 0.0;
    const double meanServerSeconds =
        completed > 0 ? sumServerSeconds / static_cast<double>(completed)
                      : 0.0;

    std::printf("serve_loadgen: %lld/%d responses ok\n",
                static_cast<long long>(completed), total);
    std::printf("offered rate:      %.1f req/s\n", options.rate);
    std::printf("throughput:        %.1f req/s\n", throughput);
    std::printf("latency p50:       %.3f ms\n", p50 * 1e3);
    std::printf("latency p90:       %.3f ms\n", p90 * 1e3);
    std::printf("latency p99:       %.3f ms\n", p99 * 1e3);
    std::printf("latency mean:      %.3f ms\n", mean * 1e3);
    std::printf("mean batch group:  %.2f\n", meanBatchGroup);
    std::printf("protocol errors:   %lld\n",
                static_cast<long long>(protocolErrors));
    std::printf("response errors:   %lld\n",
                static_cast<long long>(responseErrors));

    std::ofstream json(options.outPath);
    json << "{\n"
         << "  \"bench\": \"serving\",\n"
         << "  \"requests\": " << total << ",\n"
         << "  \"completed\": " << completed << ",\n"
         << "  \"classes\": " << classes.size() << ",\n"
         << "  \"offered_rate_rps\": " << options.rate << ",\n"
         << "  \"achieved_throughput_rps\": " << throughput << ",\n"
         << "  \"latency_seconds\": {\n"
         << "    \"p50\": " << p50 << ",\n"
         << "    \"p90\": " << p90 << ",\n"
         << "    \"p99\": " << p99 << ",\n"
         << "    \"mean\": " << mean << ",\n"
         << "    \"max\": " << maxLatency << "\n"
         << "  },\n"
         << "  \"mean_batch_group_size\": " << meanBatchGroup << ",\n"
         << "  \"mean_server_seconds\": " << meanServerSeconds << ",\n"
         << "  \"protocol_errors\": " << protocolErrors << ",\n"
         << "  \"response_errors\": " << responseErrors << ",\n";

    // stats-version >= 2: the daemon's own HDR latency histogram gets a
    // dedicated block mirroring latency_seconds above, so one file
    // answers "where does client p99 exceed server p99" directly.
    const auto statValue = [&](const std::string &key) {
        const auto it = serverStats.find(key);
        return it != serverStats.end() ? it->second : std::string("0");
    };
    const int statsVersion = std::atoi(statValue("stats-version").c_str());
    json << "  \"server_stats_version\": " << statsVersion << ",\n";
    if (statsVersion >= 2) {
        json << "  \"server_latency_seconds\": {\n"
             << "    \"count\": " << statValue("latency-count") << ",\n"
             << "    \"p50\": " << statValue("latency-p50-seconds")
             << ",\n"
             << "    \"p90\": " << statValue("latency-p90-seconds")
             << ",\n"
             << "    \"p99\": " << statValue("latency-p99-seconds")
             << ",\n"
             << "    \"p999\": " << statValue("latency-p999-seconds")
             << ",\n"
             << "    \"mean\": " << statValue("latency-mean-seconds")
             << ",\n"
             << "    \"max\": " << statValue("latency-max-seconds")
             << "\n  },\n";
    }
    json << "  \"server\": {";
    bool first = true;
    for (const auto &[key, value] : serverStats) {
        if (key == "server" || key == "stats-version" ||
            key.rfind("latency-", 0) == 0) {
            continue; // banner / version / dedicated-block lines
        }
        json << (first ? "\n" : ",\n") << "    \"" << key << "\": " << value;
        first = false;
    }
    json << "\n  }\n}\n";
    json.close();
    std::printf("wrote %s\n", options.outPath.c_str());

    const bool ok = completed == static_cast<std::int64_t>(total) &&
                    protocolErrors == 0 && responseErrors == 0 &&
                    !sendFailed.load();
    return ok ? 0 : 1;
}

#else // !__unix__

int
run(const Options &)
{
    std::fprintf(stderr,
                 "serve_loadgen requires a Unix-domain socket platform\n");
    return 1;
}

#endif // __unix__

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--rate") {
            options.rate = std::atof(value());
        } else if (arg == "--requests") {
            options.requests = std::atoi(value());
        } else if (arg == "--classes") {
            options.classes = std::atoi(value());
        } else if (arg == "--out") {
            options.outPath = value();
        } else if (arg == "--quick") {
            options.requests = 64;
            options.rate = 400.0;
        } else {
            std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
            return 2;
        }
    }
    if (options.socketPath.empty() || options.rate <= 0.0 ||
        options.requests <= 0) {
        std::fprintf(stderr,
                     "usage: serve_loadgen --socket <path> [--rate R] "
                     "[--requests N] [--classes C] [--out file] "
                     "[--quick]\n");
        return 2;
    }
    try {
        return run(options);
    } catch (const chimera::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
