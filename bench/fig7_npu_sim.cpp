/**
 * @file
 * Figure 7 reproduction (simulated Ascend 910): GEMM chains at batch 1
 * on the NPU machine model with the Unified Buffer stage.
 *
 * Columns: "TBE" -> per-op planned kernels, intermediate in HBM (the
 * CANN library proxy); "Chimera" -> fused plan with the UB crossing
 * charged per intermediate element. The UB-bound column shows when the
 * Unified Buffer (not HBM) limits the fused kernel — the paper's
 * explanation for the cases where Chimera does not beat AKG.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "hw/accelerator_sim.hpp"
#include "support/mathutil.hpp"

int
main()
{
    using namespace chimera;
    bench::printHeader(
        "Figure 7 — simulated Ascend 910 NPU (batch 1 GEMM chains)",
        "Multi-level pipeline model plus the Unified Buffer stage "
        "(fp16).");

    const model::MachineModel npu = hw::ascend910Npu();
    const hw::UnifiedBufferSpec ub = hw::ascend910UnifiedBuffer();

    AsciiTable table({"Chain", "TBE (us)", "Chimera (us)", "UB stage (us)",
                      "UB-bound", "speedup"});
    std::vector<double> gains;
    int ubBound = 0;
    for (const auto &load : ir::tableIvWorkloads()) {
        ir::GemmChainConfig cfg = load.config;
        cfg.batch = 1; // the paper's NPU evaluation uses batch 1
        const hw::AcceleratorComparison sim =
            hw::simulateGemmChain(cfg, npu, ub);
        gains.push_back(sim.unfusedSeconds / sim.chimeraSeconds);
        const bool bound =
            sim.unifiedBufferSeconds >= sim.chimeraSeconds - 1e-12;
        ubBound += bound ? 1 : 0;
        table.addRow(
            {cfg.name, AsciiTable::num(sim.unfusedSeconds * 1e6, 2),
             AsciiTable::num(sim.chimeraSeconds * 1e6, 2),
             AsciiTable::num(sim.unifiedBufferSeconds * 1e6, 2),
             bound ? "yes" : "no",
             AsciiTable::num(sim.unfusedSeconds / sim.chimeraSeconds, 2) +
                 "x"});
    }

    // A deliberately large chain demonstrating the UB bottleneck the
    // paper reports for big GEMMs.
    ir::GemmChainConfig big;
    big.name = "G-big";
    big.m = 4096;
    big.n = 64;
    big.k = 64;
    big.l = 4096;
    const hw::AcceleratorComparison bigSim =
        hw::simulateGemmChain(big, npu, ub);
    table.addRow(
        {big.name, AsciiTable::num(bigSim.unfusedSeconds * 1e6, 2),
         AsciiTable::num(bigSim.chimeraSeconds * 1e6, 2),
         AsciiTable::num(bigSim.unifiedBufferSeconds * 1e6, 2),
         bigSim.unifiedBufferSeconds >= bigSim.chimeraSeconds - 1e-12
             ? "yes"
             : "no",
         AsciiTable::num(bigSim.unfusedSeconds / bigSim.chimeraSeconds,
                         2) +
             "x"});

    std::printf("%s\n", table.render().c_str());
    std::printf("geomean speedup over the TBE proxy: %.2fx (paper: 2.39x "
                "avg); %d/12 Table IV chains UB-bound.\n",
                geometricMean(gains), ubBound);
    return 0;
}
