# Empty dependencies file for cnn_inference.
# This may be replaced when dependencies are built.
