file(REMOVE_RECURSE
  "CMakeFiles/cnn_inference.dir/cnn_inference.cpp.o"
  "CMakeFiles/cnn_inference.dir/cnn_inference.cpp.o.d"
  "cnn_inference"
  "cnn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
