file(REMOVE_RECURSE
  "CMakeFiles/conv_chain_fusion.dir/conv_chain_fusion.cpp.o"
  "CMakeFiles/conv_chain_fusion.dir/conv_chain_fusion.cpp.o.d"
  "conv_chain_fusion"
  "conv_chain_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_chain_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
