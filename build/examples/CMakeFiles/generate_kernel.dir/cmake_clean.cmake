file(REMOVE_RECURSE
  "CMakeFiles/generate_kernel.dir/generate_kernel.cpp.o"
  "CMakeFiles/generate_kernel.dir/generate_kernel.cpp.o.d"
  "generate_kernel"
  "generate_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
