# Empty dependencies file for generate_kernel.
# This may be replaced when dependencies are built.
