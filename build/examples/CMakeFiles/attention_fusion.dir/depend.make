# Empty dependencies file for attention_fusion.
# This may be replaced when dependencies are built.
