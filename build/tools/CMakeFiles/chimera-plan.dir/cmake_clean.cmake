file(REMOVE_RECURSE
  "CMakeFiles/chimera-plan.dir/chimera_plan.cpp.o"
  "CMakeFiles/chimera-plan.dir/chimera_plan.cpp.o.d"
  "chimera-plan"
  "chimera-plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chimera-plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
