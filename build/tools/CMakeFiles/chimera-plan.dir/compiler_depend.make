# Empty compiler generated dependencies file for chimera-plan.
# This may be replaced when dependencies are built.
