file(REMOVE_RECURSE
  "CMakeFiles/overhead_optimization.dir/overhead_optimization.cpp.o"
  "CMakeFiles/overhead_optimization.dir/overhead_optimization.cpp.o.d"
  "overhead_optimization"
  "overhead_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
