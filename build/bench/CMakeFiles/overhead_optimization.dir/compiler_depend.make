# Empty compiler generated dependencies file for overhead_optimization.
# This may be replaced when dependencies are built.
