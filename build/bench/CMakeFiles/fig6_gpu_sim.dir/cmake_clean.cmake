file(REMOVE_RECURSE
  "CMakeFiles/fig6_gpu_sim.dir/fig6_gpu_sim.cpp.o"
  "CMakeFiles/fig6_gpu_sim.dir/fig6_gpu_sim.cpp.o.d"
  "fig6_gpu_sim"
  "fig6_gpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
