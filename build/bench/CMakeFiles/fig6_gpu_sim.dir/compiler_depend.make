# Empty compiler generated dependencies file for fig6_gpu_sim.
# This may be replaced when dependencies are built.
