file(REMOVE_RECURSE
  "CMakeFiles/table3_dv_orders.dir/table3_dv_orders.cpp.o"
  "CMakeFiles/table3_dv_orders.dir/table3_dv_orders.cpp.o.d"
  "table3_dv_orders"
  "table3_dv_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dv_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
