# Empty compiler generated dependencies file for table3_dv_orders.
# This may be replaced when dependencies are built.
