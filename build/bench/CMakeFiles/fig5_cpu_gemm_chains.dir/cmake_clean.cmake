file(REMOVE_RECURSE
  "CMakeFiles/fig5_cpu_gemm_chains.dir/fig5_cpu_gemm_chains.cpp.o"
  "CMakeFiles/fig5_cpu_gemm_chains.dir/fig5_cpu_gemm_chains.cpp.o.d"
  "fig5_cpu_gemm_chains"
  "fig5_cpu_gemm_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cpu_gemm_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
