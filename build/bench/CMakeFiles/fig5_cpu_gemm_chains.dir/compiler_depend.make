# Empty compiler generated dependencies file for fig5_cpu_gemm_chains.
# This may be replaced when dependencies are built.
