# Empty compiler generated dependencies file for fig7_npu_sim.
# This may be replaced when dependencies are built.
