file(REMOVE_RECURSE
  "CMakeFiles/fig7_npu_sim.dir/fig7_npu_sim.cpp.o"
  "CMakeFiles/fig7_npu_sim.dir/fig7_npu_sim.cpp.o.d"
  "fig7_npu_sim"
  "fig7_npu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_npu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
