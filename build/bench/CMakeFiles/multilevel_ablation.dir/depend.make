# Empty dependencies file for multilevel_ablation.
# This may be replaced when dependencies are built.
