file(REMOVE_RECURSE
  "CMakeFiles/multilevel_ablation.dir/multilevel_ablation.cpp.o"
  "CMakeFiles/multilevel_ablation.dir/multilevel_ablation.cpp.o.d"
  "multilevel_ablation"
  "multilevel_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
