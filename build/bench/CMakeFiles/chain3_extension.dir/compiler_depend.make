# Empty compiler generated dependencies file for chain3_extension.
# This may be replaced when dependencies are built.
