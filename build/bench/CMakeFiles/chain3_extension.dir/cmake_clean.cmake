file(REMOVE_RECURSE
  "CMakeFiles/chain3_extension.dir/chain3_extension.cpp.o"
  "CMakeFiles/chain3_extension.dir/chain3_extension.cpp.o.d"
  "chain3_extension"
  "chain3_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain3_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
