file(REMOVE_RECURSE
  "CMakeFiles/fig8_model_validation.dir/fig8_model_validation.cpp.o"
  "CMakeFiles/fig8_model_validation.dir/fig8_model_validation.cpp.o.d"
  "fig8_model_validation"
  "fig8_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
