# Empty dependencies file for fig9_end_to_end.
# This may be replaced when dependencies are built.
