file(REMOVE_RECURSE
  "CMakeFiles/cnn_end_to_end.dir/cnn_end_to_end.cpp.o"
  "CMakeFiles/cnn_end_to_end.dir/cnn_end_to_end.cpp.o.d"
  "cnn_end_to_end"
  "cnn_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
