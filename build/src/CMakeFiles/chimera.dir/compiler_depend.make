# Empty compiler generated dependencies file for chimera.
# This may be replaced when dependencies are built.
