# Empty dependencies file for chimera.
# This may be replaced when dependencies are built.
