
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/random_tuner.cpp" "src/CMakeFiles/chimera.dir/baselines/random_tuner.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/baselines/random_tuner.cpp.o.d"
  "/root/repo/src/cachesim/cache.cpp" "src/CMakeFiles/chimera.dir/cachesim/cache.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/cachesim/cache.cpp.o.d"
  "/root/repo/src/cachesim/conv_trace.cpp" "src/CMakeFiles/chimera.dir/cachesim/conv_trace.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/cachesim/conv_trace.cpp.o.d"
  "/root/repo/src/cachesim/gemm_trace.cpp" "src/CMakeFiles/chimera.dir/cachesim/gemm_trace.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/cachesim/gemm_trace.cpp.o.d"
  "/root/repo/src/codegen/c_emitter.cpp" "src/CMakeFiles/chimera.dir/codegen/c_emitter.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/codegen/c_emitter.cpp.o.d"
  "/root/repo/src/codegen/conv_emitter.cpp" "src/CMakeFiles/chimera.dir/codegen/conv_emitter.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/codegen/conv_emitter.cpp.o.d"
  "/root/repo/src/exec/compute_engine.cpp" "src/CMakeFiles/chimera.dir/exec/compute_engine.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/exec/compute_engine.cpp.o.d"
  "/root/repo/src/exec/constraints.cpp" "src/CMakeFiles/chimera.dir/exec/constraints.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/exec/constraints.cpp.o.d"
  "/root/repo/src/exec/conv_chain_exec.cpp" "src/CMakeFiles/chimera.dir/exec/conv_chain_exec.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/exec/conv_chain_exec.cpp.o.d"
  "/root/repo/src/exec/gemm_chain3_exec.cpp" "src/CMakeFiles/chimera.dir/exec/gemm_chain3_exec.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/exec/gemm_chain3_exec.cpp.o.d"
  "/root/repo/src/exec/gemm_chain_exec.cpp" "src/CMakeFiles/chimera.dir/exec/gemm_chain_exec.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/exec/gemm_chain_exec.cpp.o.d"
  "/root/repo/src/graph/cnn.cpp" "src/CMakeFiles/chimera.dir/graph/cnn.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/graph/cnn.cpp.o.d"
  "/root/repo/src/graph/transformer.cpp" "src/CMakeFiles/chimera.dir/graph/transformer.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/graph/transformer.cpp.o.d"
  "/root/repo/src/hw/accelerator_sim.cpp" "src/CMakeFiles/chimera.dir/hw/accelerator_sim.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/hw/accelerator_sim.cpp.o.d"
  "/root/repo/src/hw/machines.cpp" "src/CMakeFiles/chimera.dir/hw/machines.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/hw/machines.cpp.o.d"
  "/root/repo/src/ir/axis.cpp" "src/CMakeFiles/chimera.dir/ir/axis.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/ir/axis.cpp.o.d"
  "/root/repo/src/ir/builders.cpp" "src/CMakeFiles/chimera.dir/ir/builders.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/ir/builders.cpp.o.d"
  "/root/repo/src/ir/chain.cpp" "src/CMakeFiles/chimera.dir/ir/chain.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/ir/chain.cpp.o.d"
  "/root/repo/src/ir/dsl.cpp" "src/CMakeFiles/chimera.dir/ir/dsl.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/ir/dsl.cpp.o.d"
  "/root/repo/src/ir/workloads.cpp" "src/CMakeFiles/chimera.dir/ir/workloads.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/ir/workloads.cpp.o.d"
  "/root/repo/src/kernels/block_matmul.cpp" "src/CMakeFiles/chimera.dir/kernels/block_matmul.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/kernels/block_matmul.cpp.o.d"
  "/root/repo/src/kernels/kernel_params.cpp" "src/CMakeFiles/chimera.dir/kernels/kernel_params.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/kernels/kernel_params.cpp.o.d"
  "/root/repo/src/kernels/micro_kernel.cpp" "src/CMakeFiles/chimera.dir/kernels/micro_kernel.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/kernels/micro_kernel.cpp.o.d"
  "/root/repo/src/kernels/mma_tile.cpp" "src/CMakeFiles/chimera.dir/kernels/mma_tile.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/kernels/mma_tile.cpp.o.d"
  "/root/repo/src/kernels/npu_mad.cpp" "src/CMakeFiles/chimera.dir/kernels/npu_mad.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/kernels/npu_mad.cpp.o.d"
  "/root/repo/src/model/data_movement.cpp" "src/CMakeFiles/chimera.dir/model/data_movement.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/model/data_movement.cpp.o.d"
  "/root/repo/src/model/multilevel.cpp" "src/CMakeFiles/chimera.dir/model/multilevel.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/model/multilevel.cpp.o.d"
  "/root/repo/src/model/symbolic.cpp" "src/CMakeFiles/chimera.dir/model/symbolic.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/model/symbolic.cpp.o.d"
  "/root/repo/src/plan/plan_io.cpp" "src/CMakeFiles/chimera.dir/plan/plan_io.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/plan/plan_io.cpp.o.d"
  "/root/repo/src/plan/planner.cpp" "src/CMakeFiles/chimera.dir/plan/planner.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/plan/planner.cpp.o.d"
  "/root/repo/src/solver/closed_form.cpp" "src/CMakeFiles/chimera.dir/solver/closed_form.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/solver/closed_form.cpp.o.d"
  "/root/repo/src/solver/tile_solver.cpp" "src/CMakeFiles/chimera.dir/solver/tile_solver.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/solver/tile_solver.cpp.o.d"
  "/root/repo/src/support/aligned.cpp" "src/CMakeFiles/chimera.dir/support/aligned.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/aligned.cpp.o.d"
  "/root/repo/src/support/cpu_features.cpp" "src/CMakeFiles/chimera.dir/support/cpu_features.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/cpu_features.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/chimera.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/error.cpp.o.d"
  "/root/repo/src/support/logging.cpp" "src/CMakeFiles/chimera.dir/support/logging.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/logging.cpp.o.d"
  "/root/repo/src/support/mathutil.cpp" "src/CMakeFiles/chimera.dir/support/mathutil.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/mathutil.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/CMakeFiles/chimera.dir/support/str.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/str.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/chimera.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/support/table.cpp.o.d"
  "/root/repo/src/tensor/reference.cpp" "src/CMakeFiles/chimera.dir/tensor/reference.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/tensor/reference.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/chimera.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/chimera.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
