file(REMOVE_RECURSE
  "libchimera.a"
)
