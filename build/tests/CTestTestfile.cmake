# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_graph_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_chain3[1]_include.cmake")
include("/root/repo/build/tests/test_backend_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_conv_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_cnn[1]_include.cmake")
include("/root/repo/build/tests/test_plan_io[1]_include.cmake")
include("/root/repo/build/tests/test_dsl[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_integration[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
