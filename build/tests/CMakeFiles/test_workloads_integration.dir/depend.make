# Empty dependencies file for test_workloads_integration.
# This may be replaced when dependencies are built.
