file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_integration.dir/test_workloads_integration.cpp.o"
  "CMakeFiles/test_workloads_integration.dir/test_workloads_integration.cpp.o.d"
  "test_workloads_integration"
  "test_workloads_integration.pdb"
  "test_workloads_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
