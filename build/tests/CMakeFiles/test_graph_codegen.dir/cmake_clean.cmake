file(REMOVE_RECURSE
  "CMakeFiles/test_graph_codegen.dir/test_graph_codegen.cpp.o"
  "CMakeFiles/test_graph_codegen.dir/test_graph_codegen.cpp.o.d"
  "test_graph_codegen"
  "test_graph_codegen.pdb"
  "test_graph_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
