file(REMOVE_RECURSE
  "CMakeFiles/test_backend_kernels.dir/test_backend_kernels.cpp.o"
  "CMakeFiles/test_backend_kernels.dir/test_backend_kernels.cpp.o.d"
  "test_backend_kernels"
  "test_backend_kernels.pdb"
  "test_backend_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
