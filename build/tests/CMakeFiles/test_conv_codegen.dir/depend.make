# Empty dependencies file for test_conv_codegen.
# This may be replaced when dependencies are built.
