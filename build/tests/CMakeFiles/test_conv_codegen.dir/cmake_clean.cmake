file(REMOVE_RECURSE
  "CMakeFiles/test_conv_codegen.dir/test_conv_codegen.cpp.o"
  "CMakeFiles/test_conv_codegen.dir/test_conv_codegen.cpp.o.d"
  "test_conv_codegen"
  "test_conv_codegen.pdb"
  "test_conv_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
