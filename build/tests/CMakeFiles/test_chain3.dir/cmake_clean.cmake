file(REMOVE_RECURSE
  "CMakeFiles/test_chain3.dir/test_chain3.cpp.o"
  "CMakeFiles/test_chain3.dir/test_chain3.cpp.o.d"
  "test_chain3"
  "test_chain3.pdb"
  "test_chain3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
