# Empty compiler generated dependencies file for test_chain3.
# This may be replaced when dependencies are built.
