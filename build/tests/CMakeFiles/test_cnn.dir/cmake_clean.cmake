file(REMOVE_RECURSE
  "CMakeFiles/test_cnn.dir/test_cnn.cpp.o"
  "CMakeFiles/test_cnn.dir/test_cnn.cpp.o.d"
  "test_cnn"
  "test_cnn.pdb"
  "test_cnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
