/**
 * @file
 * Code-generation example: plan a fused GEMM chain and emit the
 * standalone C kernel Chimera's code generator produces (Figure 3's
 * final stage, with the replaceable micro kernel lowered per Figure 4).
 *
 *   ./build/examples/generate_kernel > fused_kernel.c
 *   cc -O2 -march=native fused_kernel.c -lm && ./a.out
 */

#include <cstdio>

#include "codegen/c_emitter.hpp"
#include "exec/constraints.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"

int
main()
{
    using namespace chimera;

    ir::GemmChainConfig config;
    config.name = "generated";
    config.batch = 4;
    config.m = 128;
    config.n = 64;
    config.k = 64;
    config.l = 128;
    config.epilogue = ir::Epilogue::Softmax;
    config.softmaxScale = 0.125f;

    const ir::Chain chain = ir::makeGemmChain(config);
    plan::PlannerOptions options;
    options.memCapacityBytes = 256.0 * 1024;
    options.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);

    const std::string source = codegen::emitGemmChainC(config, plan);
    std::fputs(source.c_str(), stdout);
    std::fprintf(stderr,
                 "emitted %zu bytes of C for order %s; expected self-test"
                 " checksum %.6e\n",
                 source.size(),
                 plan::orderString(chain, plan.perm).c_str(),
                 codegen::selfTestChecksum(config));
    return 0;
}
