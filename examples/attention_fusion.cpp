/**
 * @file
 * Domain example: the self-attention batch GEMM chain of a Bert-Base
 * encoder (Table IV, G2), fused with its softmax per §VI-B. Shows the
 * softmax decomposition (exp on chip, sum merged into the second GEMM,
 * division deferred) and compares fused vs unfused wall time.
 *
 *   ./build/examples/attention_fusion
 */

#include <cstdio>

#include "exec/constraints.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/workloads.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int
main()
{
    using namespace chimera;

    // Bert-Base attention: 12 heads, 512 tokens, 64-dim heads.
    ir::GemmChainConfig config = ir::tableIvWorkloads()[1].config;
    config.epilogue = ir::Epilogue::Softmax;
    std::printf("attention chain %s: batch %ld, %ldx%ld scores, head dim"
                " %ld, softmax scale %.4f\n",
                config.name.c_str(), static_cast<long>(config.batch),
                static_cast<long>(config.m), static_cast<long>(config.l),
                static_cast<long>(config.n),
                static_cast<double>(config.softmaxScale));

    const ir::Chain chain = ir::makeGemmChain(config);
    plan::PlannerOptions options;
    options.memCapacityBytes = 768.0 * 1024;
    options.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    std::printf("fused plan: order %s, predicted DRAM traffic %.2f MB\n",
                plan::orderString(chain, plan.perm).c_str(),
                plan.predictedVolumeBytes / 1e6);

    Tensor q(exec::gemmChainShapeA(config));
    Tensor kT(exec::gemmChainShapeB(config));
    Tensor v(exec::gemmChainShapeD(config));
    Tensor out(exec::gemmChainShapeE(config));
    Tensor scratch(exec::gemmChainShapeC(config));
    Rng rng(7);
    fillUniform(q, rng);
    fillUniform(kT, rng);
    fillUniform(v, rng);

    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    const double fused = bestOfSeconds(
        [&] {
            exec::runFusedGemmChain(config, plan, engine, q, kT, v, out);
        },
        5);
    const double unfused = bestOfSeconds(
        [&] {
            exec::runUnfusedGemmChain(config, engine, q, kT, v, scratch,
                                      out, {64, 64, 64}, {64, 64, 64});
        },
        5);
    std::printf("fused softmax-attention: %.2f ms\n", fused * 1e3);
    std::printf("unfused (GEMM, softmax pass, GEMM): %.2f ms\n",
                unfused * 1e3);
    std::printf("speedup %.2fx\n", unfused / fused);

    // Sanity: rows of softmax(QK^T) sum to 1, so each output row of E
    // is a convex combination of V rows; check against the oracle.
    Tensor expected(exec::gemmChainShapeE(config));
    exec::referenceGemmChain(config, q, kT, v, expected);
    std::printf("max |fused - reference| = %.2e\n",
                static_cast<double>(maxAbsDiff(out, expected)));
    return 0;
}
