/**
 * @file
 * End-to-end example: a SqueezeNet-like CNN whose conv-chain stages run
 * fused by Chimera vs unfused, with identical weights. Prints per-stage
 * chain plans and the end-to-end timing comparison.
 *
 *   ./build/examples/cnn_inference
 */

#include <cstdio>

#include "graph/cnn.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int
main()
{
    using namespace chimera;

    const graph::CnnConfig config = graph::squeezeNetLike();
    const graph::CnnBackbone cnn(config, 768.0 * 1024);

    std::printf("%s: input %ldx%ldx%ld, %zu conv-chain stages\n",
                config.name.c_str(), static_cast<long>(config.inChannels),
                static_cast<long>(config.height),
                static_cast<long>(config.width), config.stages.size());
    for (std::size_t s = 0; s < cnn.stageChains().size(); ++s) {
        const ir::ConvChainConfig &chain = cnn.stageChains()[s];
        std::printf("  stage %zu: %ldch %ldx%ld -> %dx%d s%d -> %ldch -> "
                    "ReLU -> %dx%d -> %ldch\n",
                    s, static_cast<long>(chain.ic),
                    static_cast<long>(chain.h), static_cast<long>(chain.w),
                    chain.k1, chain.k1, chain.stride1,
                    static_cast<long>(chain.oc1), chain.k2, chain.k2,
                    static_cast<long>(chain.oc2));
    }

    Tensor input({config.batch, config.inChannels, config.height,
                  config.width});
    Rng rng(8);
    fillUniform(input, rng);

    const Tensor fusedLogits =
        cnn.forward(input, graph::ConvMode::FusedChimera);
    const Tensor unfusedLogits =
        cnn.forward(input, graph::ConvMode::Unfused);
    std::printf("outputs agree: %s (max diff %.2e)\n",
                allClose(fusedLogits, unfusedLogits, 5e-3f, 5e-3f)
                    ? "yes"
                    : "NO",
                static_cast<double>(
                    maxAbsDiff(fusedLogits, unfusedLogits)));

    const double fused = bestOfSeconds(
        [&] { (void)cnn.forward(input, graph::ConvMode::FusedChimera); },
        3);
    const double unfused = bestOfSeconds(
        [&] { (void)cnn.forward(input, graph::ConvMode::Unfused); }, 3);
    std::printf("end-to-end: fused %.2f ms, unfused %.2f ms (%.2fx)\n",
                fused * 1e3, unfused * 1e3, unfused / fused);

    int best = 0;
    for (std::int64_t i = 1; i < fusedLogits.numel(); ++i) {
        if (fusedLogits[i] > fusedLogits[best]) {
            best = static_cast<int>(i);
        }
    }
    std::printf("predicted class (random weights, illustrative): %d\n",
                best);
    return 0;
}
