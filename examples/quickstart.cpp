/**
 * @file
 * Quickstart: describe a batch GEMM chain, let Chimera plan the fused
 * schedule, execute it, and check the result against the naive oracle.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "exec/constraints.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

int
main()
{
    using namespace chimera;

    // 1. Describe the operator chain: E = (A x B) x D, batch 4.
    ir::GemmChainConfig config;
    config.name = "quickstart";
    config.batch = 4;
    config.m = 256;
    config.n = 64;
    config.k = 64;
    config.l = 256;

    const ir::Chain chain = ir::makeGemmChain(config);
    std::printf("chain '%s': %d independent axes, %.1f MFLOP, IO %s\n",
                chain.name().c_str(), chain.numAxes(),
                chain.totalFlops() / 1e6,
                formatBytes(static_cast<double>(chain.ioBytes())).c_str());

    // 2. Plan: enumerate block orders, solve tiles analytically.
    plan::PlannerOptions options;
    options.memCapacityBytes = 768.0 * 1024; // fit blocks in L2
    options.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    std::printf("planned order %s, tiles %s\n",
                plan::orderString(chain, plan.perm).c_str(),
                formatVector(plan.tiles).c_str());
    std::printf("predicted data movement %s, on-chip footprint %s, "
                "%d candidates in %.1f ms\n",
                formatBytes(plan.predictedVolumeBytes).c_str(),
                formatBytes(static_cast<double>(plan.memUsageBytes))
                    .c_str(),
                plan.candidatesExamined, plan.planSeconds * 1e3);

    // 3. Execute the fused kernel with the widest micro kernel.
    Tensor a(exec::gemmChainShapeA(config));
    Tensor b(exec::gemmChainShapeB(config));
    Tensor d(exec::gemmChainShapeD(config));
    Tensor e(exec::gemmChainShapeE(config));
    Rng rng(1);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);

    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    std::printf("micro kernel: %s\n", engine.name());
    exec::runFusedGemmChain(config, plan, engine, a, b, d, e);

    // 4. Validate against the naive oracle.
    Tensor expected(exec::gemmChainShapeE(config));
    exec::referenceGemmChain(config, a, b, d, expected);
    std::printf("max |fused - reference| = %.2e -> %s\n",
                static_cast<double>(maxAbsDiff(e, expected)),
                allClose(e, expected, 2e-3f, 2e-3f) ? "OK" : "MISMATCH");
    return 0;
}
