/**
 * @file
 * Domain example: fusing a SqueezeNet-style convolution chain (Table V
 * C2: 3x3 stride-2 conv into a pointwise conv with ReLU). Shows halo
 * footprints in the access maps, the planned region schedule, and the
 * DRAM-traffic comparison from the analytical model.
 *
 *   ./build/examples/conv_chain_fusion
 */

#include <cstdio>

#include "exec/constraints.hpp"
#include "exec/conv_chain_exec.hpp"
#include "ir/workloads.hpp"
#include "model/data_movement.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int
main()
{
    using namespace chimera;

    ir::ConvChainConfig config = ir::tableVWorkloads()[1].config; // C2
    config.epilogue = ir::Epilogue::Relu;
    std::printf("conv chain %s: %ldx%ldx%ld -> 3x3 s%d -> %ld ch -> ReLU"
                " -> 1x1 -> %ld ch\n",
                config.name.c_str(), static_cast<long>(config.ic),
                static_cast<long>(config.h), static_cast<long>(config.w),
                config.stride1, static_cast<long>(config.oc1),
                static_cast<long>(config.oc2));

    const ir::Chain chain = ir::makeConvChain(config);
    std::printf("independent axes (%d):", chain.numAxes());
    for (const ir::Axis &axis : chain.axes()) {
        std::printf(" %s=%ld%s", axis.name.c_str(),
                    static_cast<long>(axis.extent),
                    axis.reorderable ? "" : "*");
    }
    std::printf("  (* pinned kernel axes)\n");

    plan::PlannerOptions options;
    options.memCapacityBytes = 768.0 * 1024;
    options.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    std::printf("planned order %s (%d candidates, %.1f ms)\n",
                plan::orderString(chain, plan.perm).c_str(),
                plan.candidatesExamined, plan.planSeconds * 1e3);

    // Analytical comparison: fused vs spilled intermediate.
    const model::DataMovement fusedDv =
        model::computeDataMovement(chain, plan.perm, plan.tiles);
    model::ModelOptions spilled;
    spilled.intermediatesAreIO = true;
    const model::DataMovement unfusedDv =
        model::computeDataMovement(chain, plan.perm, plan.tiles, spilled);
    std::printf("model: fused DRAM traffic %.2f MB vs %.2f MB with the "
                "intermediate spilled (%.1f%% saved)\n",
                fusedDv.volumeBytes / 1e6, unfusedDv.volumeBytes / 1e6,
                100.0 * (1.0 - fusedDv.volumeBytes /
                                   unfusedDv.volumeBytes));

    // Execute and validate.
    Tensor input(exec::convChainShapeI(config));
    Tensor w1(exec::convChainShapeW1(config));
    Tensor w2(exec::convChainShapeW2(config));
    Tensor output(exec::convChainShapeO(config));
    Tensor scratch(exec::convChainShapeT(config));
    Rng rng(3);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    const double fused = bestOfSeconds(
        [&] {
            exec::runFusedConvChain(config, plan, engine, input, w1, w2,
                                    output);
        },
        3);
    const double unfused = bestOfSeconds(
        [&] {
            exec::runUnfusedConvChain(config, engine, input, w1, w2,
                                      scratch, output, {64, 64}, {64, 64});
        },
        3);
    std::printf("measured: fused %.2f ms, unfused %.2f ms (%.2fx)\n",
                fused * 1e3, unfused * 1e3, unfused / fused);

    Tensor expected(exec::convChainShapeO(config));
    exec::referenceConvChain(config, input, w1, w2, expected);
    std::printf("max |fused - reference| = %.2e\n",
                static_cast<double>(maxAbsDiff(output, expected)));
    return 0;
}
