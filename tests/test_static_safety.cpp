/**
 * @file
 * Tests for the symbolic plan-safety analyzer (SB01-SB04), the
 * certificate lifecycle (planner attach -> serialize -> deserialize ->
 * PL14 validation), the plan cache's rejection of tampered
 * certificates, and the serve gate's certified-only policy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "analysis/static_safety.hpp"
#include "ir/builders.hpp"
#include "plan/plan_cache.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "serve/planner_gate.hpp"
#include "support/error.hpp"
#include "verify/plan_verifier.hpp"
#include "verify/safety_verifier.hpp"

namespace chimera {
namespace {

namespace fs = std::filesystem;

ir::Chain
chainUnderTest()
{
    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "safety-test";
    return ir::makeGemmChain(cfg);
}

plan::PlannerOptions
optionsUnderTest()
{
    plan::PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    return options;
}

/** Analyzer inputs derived from a plan (the planner's own call shape). */
analysis::SafetyAnalysis
analyzePlan(const ir::Chain &chain, const plan::ExecutionPlan &plan,
            const analysis::ShapeDomain &domain,
            double capacityBytes = 32.0 * 1024)
{
    analysis::SafetyOptions so;
    so.memCapacityBytes = capacityBytes;
    return analysis::analyzeSafety(
        chain, plan.perm, plan.tiles,
        plan::effectiveConcurrency(chain, plan),
        std::max(1, plan.plannedThreads), plan.parallelGrain, domain, so);
}

TEST(SymRange, MultiplicationOverflowSaturatesAndFlags)
{
    const analysis::SymRange big =
        analysis::SymRange::point(std::int64_t{1} << 62);
    const analysis::SymRange four = analysis::SymRange::point(4);
    const analysis::SymRange product = analysis::mulRanges(big, four);
    EXPECT_TRUE(product.overflow);
    const analysis::SymRange sum = analysis::addRanges(
        analysis::SymRange::point(std::numeric_limits<std::int64_t>::max()),
        analysis::SymRange::point(1));
    EXPECT_TRUE(sum.overflow);
    const analysis::SymRange fine = analysis::mulRanges(
        analysis::SymRange::point(1 << 20), analysis::SymRange::point(64));
    EXPECT_FALSE(fine.overflow);
    EXPECT_EQ(fine.lo, (std::int64_t{1} << 20) * 64);
}

TEST(ShapeDomain, ConcreteSummaryAndWidening)
{
    const ir::Chain chain = chainUnderTest();
    analysis::ShapeDomain domain = analysis::ShapeDomain::concrete(chain);
    EXPECT_TRUE(domain.isConcrete(chain));
    EXPECT_EQ(domain.summary(chain), "concrete");

    domain.widen(chain, "b", 4096);
    EXPECT_FALSE(domain.isConcrete(chain));
    EXPECT_EQ(domain.summary(chain), "b:1..4096");

    // Widening must keep the chain's own extent admissible.
    EXPECT_THROW(domain.widen(chain, "m", 8), Error);
    EXPECT_THROW(domain.widen(chain, "nonexistent", 128), Error);
}

TEST(ShapeDomain, ParseRoundTripsAndRejectsMalformed)
{
    const ir::Chain chain = chainUnderTest();
    analysis::ShapeDomain domain = analysis::ShapeDomain::concrete(chain);
    domain.widen(chain, "b", 4096);
    const analysis::ShapeDomain parsed = analysis::parseShapeDomain(
        chain, domain.summary(chain), "test");
    EXPECT_EQ(parsed.summary(chain), domain.summary(chain));

    EXPECT_EQ(analysis::parseShapeDomain(chain, "concrete", "test")
                  .summary(chain),
              "concrete");
    EXPECT_THROW(analysis::parseShapeDomain(chain, "zz:1..4", "test"),
                 Error);
    EXPECT_THROW(analysis::parseShapeDomain(chain, "b:nonsense", "test"),
                 Error);
    // Domain must contain the concrete extent (b = 4 here).
    EXPECT_THROW(analysis::parseShapeDomain(chain, "b:1..2", "test"),
                 Error);
}

TEST(StaticSafety, PlannerCertifiesItsOwnPlans)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    ASSERT_TRUE(plan.safety.certified);
    EXPECT_EQ(plan.safety.domain, "concrete");
    EXPECT_EQ(plan.safety.rules, "sb01,sb02,sb03,sb04");
    EXPECT_EQ(plan.safety.digest.size(), 16u);

    // The certificate survives the legality verifier (PL14 clean).
    verify::PlanVerifyOptions vo =
        verify::planVerifyOptions(optionsUnderTest());
    const verify::Report report =
        verify::verifyExecutionPlan(chain, plan, vo);
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(StaticSafety, CertificateSurvivesSerializationRoundTrip)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    ASSERT_TRUE(plan.safety.certified);
    const std::string text = plan::serializePlan(chain, plan);
    EXPECT_NE(text.find("safety: domain=concrete"), std::string::npos);

    const plan::ExecutionPlan loaded = plan::deserializePlan(chain, text);
    EXPECT_TRUE(loaded.safety.certified);
    EXPECT_EQ(loaded.safety.digest, plan.safety.digest);
    EXPECT_EQ(loaded.safety.domain, plan.safety.domain);
    EXPECT_EQ(loaded.safety.rules, plan.safety.rules);
}

TEST(StaticSafety, UncertifiedPlanSerializesWithoutSafetyLine)
{
    const ir::Chain chain = chainUnderTest();
    plan::ExecutionPlan plan = plan::planChain(chain, optionsUnderTest());
    plan.safety = analysis::SafetyCertificate{};
    const std::string text = plan::serializePlan(chain, plan);
    EXPECT_EQ(text.find("safety:"), std::string::npos);
}

TEST(StaticSafety, TamperedDigestIsPL14ViaExecutionPlanVerifier)
{
    const ir::Chain chain = chainUnderTest();
    plan::ExecutionPlan plan = plan::planChain(chain, optionsUnderTest());
    ASSERT_TRUE(plan.safety.certified);
    plan.safety.digest = "0000000000000000";
    const verify::Report report = verify::verifyExecutionPlan(
        chain, plan, verify::planVerifyOptions(optionsUnderTest()));
    EXPECT_TRUE(report.hasRule("PL14")) << report.render();
}

TEST(StaticSafety, TamperedDocumentIsPL14ViaDocumentVerifier)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    ASSERT_TRUE(plan.safety.certified);
    std::string text = plan::serializePlan(chain, plan);
    const std::size_t pos = text.find("digest=");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos + 7, 16, "ffffffffffffffff");

    const plan::ParsedPlanDoc doc = plan::parsePlanDocument(text);
    ASSERT_TRUE(doc.haveSafety);
    const verify::Report report = verify::verifyPlanDocument(
        chain, doc, "", verify::planVerifyOptions(optionsUnderTest()));
    EXPECT_TRUE(report.hasRule("PL14")) << report.render();
}

TEST(StaticSafety, MalformedSafetyLineRejectsOnDeserialize)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    std::string text = plan::serializePlan(chain, plan);
    const std::size_t pos = text.find("digest=");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos + 7, 16, "not-a-hex-digest");
    EXPECT_THROW((void)plan::deserializePlan(chain, text), Error);
}

TEST(StaticSafety, Sb01FiresWhenTileExceedsDomainMinimum)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    analysis::ShapeDomain domain = analysis::ShapeDomain::concrete(chain);
    domain.widen(chain, "m", 128); // m tiles > 1 now escape small shapes
    const analysis::SafetyAnalysis sa = analyzePlan(chain, plan, domain);
    ASSERT_FALSE(sa.certificate.certified);
    EXPECT_TRUE(std::any_of(sa.violations.begin(), sa.violations.end(),
                            [](const analysis::SafetyViolation &v) {
                                return v.rule == analysis::SafetyRule::SB01;
                            }))
        << sa.renderViolations();
}

TEST(StaticSafety, Sb02FiresWhenBudgetShrinksBelowLiveWindow)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    const analysis::SafetyAnalysis sa =
        analyzePlan(chain, plan, analysis::ShapeDomain::concrete(chain),
                    /*capacityBytes=*/1024.0);
    ASSERT_FALSE(sa.certificate.certified);
    EXPECT_TRUE(std::any_of(sa.violations.begin(), sa.violations.end(),
                            [](const analysis::SafetyViolation &v) {
                                return v.rule == analysis::SafetyRule::SB02;
                            }))
        << sa.renderViolations();
}

TEST(StaticSafety, Sb03FiresWhenOffsetsOverflowInt64)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 1;
    cfg.m = 4300000000;
    cfg.n = 4300000000;
    cfg.k = 64;
    cfg.l = 64;
    cfg.name = "overflow-test";
    const ir::Chain chain = ir::makeGemmChain(cfg);
    std::vector<ir::AxisId> perm;
    std::vector<std::int64_t> tiles;
    for (int a = 0; a < chain.numAxes(); ++a) {
        perm.push_back(a);
        tiles.push_back(64);
    }
    analysis::SafetyOptions so;
    const analysis::SafetyAnalysis sa = analysis::analyzeSafety(
        chain, perm, tiles,
        analysis::analyzeConcurrency(chain, tiles).kinds(), 1, {},
        analysis::ShapeDomain::concrete(chain), so);
    ASSERT_FALSE(sa.certificate.certified);
    EXPECT_TRUE(std::any_of(sa.violations.begin(), sa.violations.end(),
                            [](const analysis::SafetyViolation &v) {
                                return v.rule == analysis::SafetyRule::SB03;
                            }))
        << sa.renderViolations();
}

TEST(StaticSafety, Sb04FiresOnMisdeclaredParallelReduction)
{
    const ir::Chain chain = chainUnderTest();
    const plan::ExecutionPlan plan =
        plan::planChain(chain, optionsUnderTest());
    std::vector<analysis::AxisConcurrency> kinds =
        plan::effectiveConcurrency(chain, plan);
    const ir::AxisId l = ir::axisIdByName(chain, "l");
    kinds[static_cast<std::size_t>(l)] =
        analysis::AxisConcurrency::Parallel; // l reduces into E: a lie
    analysis::SafetyOptions so;
    so.memCapacityBytes = 32.0 * 1024;
    const analysis::SafetyAnalysis sa = analysis::analyzeSafety(
        chain, plan.perm, plan.tiles, kinds, 1, plan.parallelGrain,
        analysis::ShapeDomain::concrete(chain), so);
    ASSERT_FALSE(sa.certificate.certified);
    EXPECT_TRUE(std::any_of(sa.violations.begin(), sa.violations.end(),
                            [](const analysis::SafetyViolation &v) {
                                return v.rule == analysis::SafetyRule::SB04;
                            }))
        << sa.renderViolations();
}

TEST(StaticSafety, WidenedBatchDomainCertifiesBatchOneTiles)
{
    // The serve batcher's derived plans pin the b tile at 1; such a
    // plan certifies over b in [1, 4096] — one certificate for the
    // whole batch family.
    const ir::Chain chain = chainUnderTest();
    plan::PlannerOptions po = optionsUnderTest();
    po.constraints.fixed[ir::axisIdByName(chain, "b")] = 1;
    po.safetyDomain["b"] = 4096;
    const plan::ExecutionPlan plan = plan::planChain(chain, po);
    ASSERT_TRUE(plan.safety.certified) << plan.safety.domain;
    EXPECT_EQ(plan.safety.domain, "b:1..4096");
}

TEST(StaticSafety, PlanCacheRejectsTamperedCertificateEntry)
{
    const ir::Chain chain = chainUnderTest();
    const plan::PlannerOptions options = optionsUnderTest();
    const fs::path dir = fs::path(::testing::TempDir()) /
                         "chimera-safety-cache-tamper";
    fs::remove_all(dir);
    {
        plan::PlanCache cache(dir.string());
        cache.store(chain, options,
                    plan::planChain(chain, options));
    }
    // Tamper with the digest on disk: flip it to a wrong-but-well-formed
    // value so the document still parses and binds.
    fs::path entry;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".plan") {
            entry = e.path();
        }
    }
    ASSERT_FALSE(entry.empty());
    std::string text;
    {
        std::ifstream in(entry);
        text.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    const std::size_t pos = text.find("digest=");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos + 7, 16, "0123456789abcdef");
    {
        std::ofstream out(entry, std::ios::trunc);
        out << text;
    }

    plan::PlanCache reopened(dir.string());
    EXPECT_FALSE(reopened.lookup(chain, options).has_value());
    EXPECT_EQ(reopened.stats().rejectedPlans, 1);
}

TEST(StaticSafety, PlannerGateServesOnlyCertifiedPlans)
{
    serve::PlannerGateOptions options;
    options.cacheDir = "-"; // memory-only
    serve::PlannerGate gate(options);
    ir::GemmChainConfig cfg;
    cfg.batch = 1;
    cfg.m = 64;
    cfg.n = 64;
    cfg.k = 64;
    cfg.l = 64;
    const plan::ExecutionPlan plan = gate.canonicalPlan(cfg);
    EXPECT_TRUE(plan.safety.certified);
    EXPECT_GE(gate.stats().certifiedPlans, 1);

    const plan::ExecutionPlan batched = gate.batchedPlan(cfg, 8);
    EXPECT_TRUE(batched.safety.certified);
    EXPECT_GE(gate.stats().certifiedPlans, 2);
}

TEST(StaticSafety, VerifierChecksRequestedDomainOnUncertifiedPlan)
{
    const ir::Chain chain = chainUnderTest();
    plan::PlannerOptions po = optionsUnderTest();
    po.staticSafety = false;
    const plan::ExecutionPlan plan = plan::planChain(chain, po);
    EXPECT_FALSE(plan.safety.certified);

    verify::SafetyVerifyOptions so;
    so.memCapacityBytes = po.memCapacityBytes;
    analysis::SafetyAnalysis analysis;
    const verify::Report report =
        verify::verifyPlanSafety(chain, plan, so, &analysis);
    EXPECT_FALSE(report.hasErrors()) << report.render();
    EXPECT_TRUE(analysis.certificate.certified);

    so.domainSpec = "zz:1..4"; // unknown axis: caller defect, throws
    EXPECT_THROW((void)verify::verifyPlanSafety(chain, plan, so), Error);
}

} // namespace
} // namespace chimera
