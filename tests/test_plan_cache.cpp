/**
 * @file
 * Tests for the persistent plan cache: cold misses plan and store, warm
 * hits (memory and disk) return the identical schedule without
 * enumeration, and corrupt or mismatched entries silently fall back to
 * replanning.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hw/machines.hpp"
#include "ir/builders.hpp"
#include "plan/plan_cache.hpp"
#include "plan/plan_io.hpp"
#include "support/error.hpp"

namespace chimera::plan {
namespace {

namespace fs = std::filesystem;

ir::Chain
chainUnderTest()
{
    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "cache-test";
    return ir::makeGemmChain(cfg);
}

PlannerOptions
optionsUnderTest()
{
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    return options;
}

/** Fresh, empty cache directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("chimera-plan-cache-" + name);
    fs::remove_all(dir);
    return dir.string();
}

/** The single *.plan entry file inside @p dir. */
fs::path
onlyEntry(const std::string &dir)
{
    fs::path found;
    int count = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".plan") {
            found = entry.path();
            ++count;
        }
    }
    EXPECT_EQ(count, 1);
    return found;
}

TEST(PlanCache, ColdMissThenWarmMemoryHit)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    PlanCache cache(freshDir("memory"));
    options.cache = &cache;

    const ExecutionPlan cold = planChain(chain, options);
    EXPECT_GT(cold.candidatesExamined, 0);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().stores, 1);

    const ExecutionPlan warm = planChain(chain, options);
    EXPECT_EQ(warm.candidatesExamined, 0);
    EXPECT_EQ(cache.stats().memoryHits, 1);
    EXPECT_EQ(warm.perm, cold.perm);
    EXPECT_EQ(warm.tiles, cold.tiles);
    EXPECT_DOUBLE_EQ(warm.predictedVolumeBytes, cold.predictedVolumeBytes);
    EXPECT_EQ(warm.memUsageBytes, cold.memUsageBytes);
}

TEST(PlanCache, WarmDiskHitAcrossInstances)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    const std::string dir = freshDir("disk");

    ExecutionPlan cold;
    {
        PlanCache writer(dir);
        options.cache = &writer;
        cold = planChain(chain, options);
        EXPECT_GT(cold.candidatesExamined, 0);
    }
    ASSERT_TRUE(fs::exists(onlyEntry(dir)));

    // A new instance (a new process, in deployment) hits the disk tier.
    PlanCache reader(dir);
    options.cache = &reader;
    const ExecutionPlan warm = planChain(chain, options);
    EXPECT_EQ(warm.candidatesExamined, 0);
    EXPECT_EQ(reader.stats().diskHits, 1);
    EXPECT_EQ(reader.stats().misses, 0);
    EXPECT_EQ(warm.perm, cold.perm);
    EXPECT_EQ(warm.tiles, cold.tiles);
    EXPECT_DOUBLE_EQ(warm.predictedVolumeBytes, cold.predictedVolumeBytes);
}

TEST(PlanCache, CorruptEntryFallsBackToReplanning)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    const std::string dir = freshDir("corrupt");

    ExecutionPlan cold;
    {
        PlanCache writer(dir);
        options.cache = &writer;
        cold = planChain(chain, options);
    }
    {
        std::ofstream out(onlyEntry(dir), std::ios::trunc);
        out << "chimera-plan v2\ntiles: m=64abc\n";
    }

    PlanCache reader(dir);
    options.cache = &reader;
    const ExecutionPlan replanned = planChain(chain, options);
    EXPECT_GT(replanned.candidatesExamined, 0); // not served from cache
    EXPECT_EQ(reader.stats().corruptEntries, 1);
    EXPECT_EQ(replanned.perm, cold.perm);
    EXPECT_EQ(replanned.tiles, cold.tiles);

    // The replan's store healed the entry: the next instance hits disk.
    PlanCache healed(dir);
    options.cache = &healed;
    EXPECT_EQ(planChain(chain, options).candidatesExamined, 0);
    EXPECT_EQ(healed.stats().diskHits, 1);
}

TEST(PlanCache, FingerprintMismatchTriggersReplan)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    const std::string dir = freshDir("mismatch");

    {
        PlanCache writer(dir);
        options.cache = &writer;
        planChain(chain, options);
    }
    // Tamper with the embedded fingerprint: the entry self-identifies as
    // belonging to a different (chain, options) key.
    const fs::path entry = onlyEntry(dir);
    std::string text;
    {
        std::ifstream in(entry);
        std::ostringstream contents;
        contents << in.rdbuf();
        text = contents.str();
    }
    const std::size_t pos = text.find("fingerprint: ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("fingerprint: ").size() + 16,
                 "fingerprint: 0000000000000000");
    {
        std::ofstream out(entry, std::ios::trunc);
        out << text;
    }

    PlanCache reader(dir);
    options.cache = &reader;
    const ExecutionPlan replanned = planChain(chain, options);
    EXPECT_GT(replanned.candidatesExamined, 0);
    EXPECT_EQ(reader.stats().corruptEntries, 1);
}

TEST(PlanCache, KeyCoversChainAndOptions)
{
    const ir::Chain chain = chainUnderTest();
    const PlannerOptions options = optionsUnderTest();

    PlannerOptions bigger = options;
    bigger.memCapacityBytes = 64.0 * 1024;
    EXPECT_NE(planFingerprint(chain, options),
              planFingerprint(chain, bigger));

    PlannerOptions unfiltered = options;
    unfiltered.onlyExecutableOrders = false;
    EXPECT_NE(planFingerprint(chain, options),
              planFingerprint(chain, unfiltered));

    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 128; // different extent
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "cache-test";
    EXPECT_NE(planFingerprint(ir::makeGemmChain(cfg), options),
              planFingerprint(chain, options));

    // Thread count must NOT change the key: plans are deterministic.
    PlannerOptions threaded = options;
    threaded.threads = 7;
    EXPECT_EQ(planFingerprint(chain, options),
              planFingerprint(chain, threaded));

    // Nor does the display name: structure decides plan validity.
    cfg.m = 64;
    cfg.name = "same-structure-other-name";
    EXPECT_EQ(planFingerprint(ir::makeGemmChain(cfg), options),
              planFingerprint(chain, options));
}

TEST(PlanCache, KeyCoversExecThreadsAndTopology)
{
    const ir::Chain chain = chainUnderTest();
    const PlannerOptions options = optionsUnderTest();

    // The targeted worker count changes the plan (per-worker budgets,
    // chunking), so it must change the key — unlike the search-loop
    // thread count above.
    PlannerOptions eight = options;
    eight.execThreads = 8;
    EXPECT_NE(planFingerprint(chain, options),
              planFingerprint(chain, eight));

    PlannerOptions topo = eight;
    topo.topology = hw::multicoreCpuTopology();
    EXPECT_NE(planFingerprint(chain, eight),
              planFingerprint(chain, topo));

    // A different shared-cache size is a different machine.
    PlannerOptions smallerLlc = topo;
    for (auto &level : smallerLlc.topology.levels) {
        if (level.scope == model::LevelScope::Shared) {
            level.capacityBytes /= 2.0;
            break;
        }
    }
    EXPECT_NE(planFingerprint(chain, topo),
              planFingerprint(chain, smallerLlc));

    // Chunk targeting only matters once several workers are planned.
    PlannerOptions grainier = eight;
    grainier.chunksPerWorker = 2;
    EXPECT_NE(planFingerprint(chain, eight),
              planFingerprint(chain, grainier));
    PlannerOptions serialGrain = options;
    serialGrain.chunksPerWorker = 2;
    EXPECT_EQ(planFingerprint(chain, options),
              planFingerprint(chain, serialGrain));
}

TEST(PlanCache, ThreadAwarePlansCacheSeparately)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    PlanCache cache(freshDir("threads"));
    options.cache = &cache;

    const ExecutionPlan serial = planChain(chain, options);
    EXPECT_EQ(cache.stats().misses, 1);

    options.execThreads = 8;
    options.topology = hw::multicoreCpuTopology();
    const ExecutionPlan threaded = planChain(chain, options);
    EXPECT_EQ(cache.stats().misses, 2);
    EXPECT_EQ(threaded.plannedThreads, 8);

    // Warm hit restores the chunking decision too.
    const ExecutionPlan warm = planChain(chain, options);
    EXPECT_EQ(warm.candidatesExamined, 0);
    EXPECT_EQ(warm.plannedThreads, threaded.plannedThreads);
    EXPECT_EQ(warm.parallelGrain, threaded.parallelGrain);
    EXPECT_EQ(warm.tiles, threaded.tiles);
    EXPECT_EQ(serial.plannedThreads, 1);
}

TEST(PlanCache, MemoryOnlyWithoutDirectory)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    PlanCache cache("");
    options.cache = &cache;

    const ExecutionPlan cold = planChain(chain, options);
    EXPECT_GT(cold.candidatesExamined, 0);
    const ExecutionPlan warm = planChain(chain, options);
    EXPECT_EQ(warm.candidatesExamined, 0);
    EXPECT_EQ(warm.perm, cold.perm);
    EXPECT_EQ(warm.tiles, cold.tiles);
    EXPECT_EQ(cache.stats().memoryHits, 1);
}

TEST(PlanCache, MultiLevelPlanningUsesTheCache)
{
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    PlanCache cache(freshDir("multilevel"));
    options.cache = &cache;

    model::MachineModel machine;
    machine.levels.push_back({"L1", 8.0 * 1024, 1e12});
    machine.levels.push_back({"L2", 32.0 * 1024, 1e11});
    machine.peakFlops = 1e12;

    const MultiLevelPlan cold =
        planChainMultiLevel(chain, machine, options);
    const int coldMisses = cache.stats().misses;
    EXPECT_EQ(coldMisses, 2); // one plan per level, each its own key

    const MultiLevelPlan warm =
        planChainMultiLevel(chain, machine, options);
    EXPECT_EQ(cache.stats().misses, coldMisses); // all levels warm
    EXPECT_EQ(cache.stats().hits(), 2);
    for (std::size_t d = 0; d < cold.levels.size(); ++d) {
        EXPECT_EQ(warm.levels[d].perm, cold.levels[d].perm);
        EXPECT_EQ(warm.levels[d].tiles, cold.levels[d].tiles);
    }
}

TEST(PlanCache, ConcurrentLookupsKeepExactCounters)
{
    // Counters are lock-free atomics on the lookup fast path; hammer
    // lookup/store/stats from many threads (TSan covers this test in
    // CI) and check the totals are exact afterwards.
    const ir::Chain chain = chainUnderTest();
    PlannerOptions options = optionsUnderTest();
    PlanCache cache(""); // memory-only keeps the filesystem out of it
    options.cache = &cache;

    const ExecutionPlan seeded = planChain(chain, options);
    EXPECT_EQ(cache.stats().stores, 1);

    constexpr int kWorkers = 8;
    constexpr int kLookupsPerWorker = 200;
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int t = 0; t < kWorkers; ++t) {
        workers.emplace_back([&chain, &options, &cache, &seeded] {
            for (int i = 0; i < kLookupsPerWorker; ++i) {
                const std::optional<ExecutionPlan> hit =
                    cache.lookup(chain, options);
                ASSERT_TRUE(hit.has_value());
                EXPECT_EQ(hit->tiles, seeded.tiles);
                (void)cache.stats(); // snapshots race with increments
            }
        });
    }
    for (std::thread &worker : workers) {
        worker.join();
    }

    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.memoryHits, kWorkers * kLookupsPerWorker);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.stores, 1);
    EXPECT_EQ(stats.diskHits, 0);
}

} // namespace
} // namespace chimera::plan
