/**
 * @file
 * Unit tests for src/support: math utilities, RNG, aligned allocation,
 * error macros, tables, and string helpers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "support/aligned.hpp"
#include "support/cpu_features.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace chimera {
namespace {

TEST(MathUtil, CeilDivBasics)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 1), 1);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1000000007LL, 2), 500000004LL);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(7, 8), 8);
    EXPECT_EQ(roundUp(8, 8), 8);
    EXPECT_EQ(roundUp(9, 8), 16);
}

TEST(MathUtil, ClampI64)
{
    EXPECT_EQ(clampI64(5, 1, 10), 5);
    EXPECT_EQ(clampI64(-5, 1, 10), 1);
    EXPECT_EQ(clampI64(50, 1, 10), 10);
}

TEST(MathUtil, DivisorsOfTwelve)
{
    const std::vector<std::int64_t> expected = {1, 2, 3, 4, 6, 12};
    EXPECT_EQ(divisorsOf(12), expected);
}

TEST(MathUtil, DivisorsOfPrime)
{
    const std::vector<std::int64_t> expected = {1, 13};
    EXPECT_EQ(divisorsOf(13), expected);
}

TEST(MathUtil, DivisorsRejectsNonPositive)
{
    EXPECT_THROW(divisorsOf(0), Error);
    EXPECT_THROW(divisorsOf(-4), Error);
}

TEST(MathUtil, TileCandidatesSortedUniqueBounded)
{
    const auto cands = tileCandidates(48);
    EXPECT_FALSE(cands.empty());
    EXPECT_EQ(cands.front(), 1);
    EXPECT_EQ(cands.back(), 48);
    for (std::size_t i = 1; i < cands.size(); ++i) {
        EXPECT_LT(cands[i - 1], cands[i]);
        EXPECT_LE(cands[i], 48);
        EXPECT_GE(cands[i], 1);
    }
}

TEST(MathUtil, TileCandidatesContainDivisorsAndPowersOfTwo)
{
    const auto cands = tileCandidates(24);
    const std::set<std::int64_t> s(cands.begin(), cands.end());
    for (std::int64_t d : {1, 2, 3, 4, 6, 8, 12, 16, 24}) {
        EXPECT_TRUE(s.count(d)) << "missing candidate " << d;
    }
}

TEST(MathUtil, Factorial)
{
    EXPECT_EQ(factorial(0), 1);
    EXPECT_EQ(factorial(4), 24);
    EXPECT_EQ(factorial(6), 720);
    EXPECT_THROW(factorial(25), Error);
}

TEST(MathUtil, AllPermutationsCountsAndUniqueness)
{
    const auto perms = allPermutations(4);
    EXPECT_EQ(perms.size(), 24u);
    std::set<std::vector<int>> unique(perms.begin(), perms.end());
    EXPECT_EQ(unique.size(), 24u);
    for (const auto &p : perms) {
        std::set<int> axes(p.begin(), p.end());
        EXPECT_EQ(axes.size(), 4u);
    }
}

TEST(MathUtil, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geometricMean({8.0}), 8.0);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_THROW(geometricMean({1.0, -2.0}), Error);
}

TEST(MathUtil, RSquaredPerfectFit)
{
    EXPECT_DOUBLE_EQ(rSquared({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(MathUtil, RSquaredWorseThanMean)
{
    // Predicting far off yields a low (possibly negative) R^2.
    EXPECT_LT(rSquared({10, 20, 30}, {3, 2, 1}), 0.0);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const float f = rng.uniform(-2.0f, 3.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Rng, BelowBound)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Aligned, PointerAlignment)
{
    auto buf = allocateAligned<float>(33);
    ASSERT_NE(buf.get(), nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.get()) %
                  kBufferAlignment,
              0u);
}

TEST(Aligned, ZeroElementsStillValid)
{
    auto buf = allocateAligned<double>(0);
    EXPECT_NE(buf.get(), nullptr);
}

TEST(ErrorMacros, CheckThrowsWithContext)
{
    try {
        CHIMERA_CHECK(1 == 2, "one is not two");
        FAIL() << "expected Error";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("one is not two"), std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
    }
}

TEST(ErrorMacros, CheckPassesSilently)
{
    EXPECT_NO_THROW(CHIMERA_CHECK(true, "never shown"));
}

TEST(CpuFeatures, TierIsConsistentWithLanes)
{
    const SimdTier tier = detectSimdTier();
    EXPECT_GE(simdLanes(tier), 1);
    EXPECT_FALSE(simdTierName(tier).empty());
    if (tier == SimdTier::Avx512) {
        EXPECT_EQ(simdLanes(tier), 16);
    }
}

TEST(Table, RendersAlignedColumns)
{
    AsciiTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    const std::string out = table.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // header + rule + 2 rows
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RowArityChecked)
{
    AsciiTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), Error);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(AsciiTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

TEST(Str, JoinStrings)
{
    EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(joinStrings({}, ", "), "");
    EXPECT_EQ(joinStrings({"x"}, "-"), "x");
}

TEST(Str, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(Str, FormatVector)
{
    EXPECT_EQ(formatVector({1, 2, 3}), "(1, 2, 3)");
    EXPECT_EQ(formatVector({}), "()");
}

TEST(Timer, MeasuresElapsedTime)
{
    WallTimer t;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + static_cast<double>(i);
    }
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_GE(t.microseconds(), t.seconds());
}

TEST(Timer, BestOfSecondsRunsAllRepeats)
{
    int calls = 0;
    const double best = bestOfSeconds([&] { ++calls; }, 3, 2);
    EXPECT_EQ(calls, 5);
    EXPECT_GE(best, 0.0);
}

} // namespace
} // namespace chimera
