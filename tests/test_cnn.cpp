/**
 * @file
 * Tests for the CNN backbone substrate: fused and unfused stage
 * execution must agree end to end, shapes must thread correctly, and
 * the stage chains must match the Table V archetypes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/cnn.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace chimera::graph {
namespace {

CnnConfig
tinyCnn()
{
    CnnConfig cfg = squeezeNetLike();
    cfg.name = "tiny";
    cfg.inChannels = 4;
    cfg.height = 24;
    cfg.width = 24;
    cfg.stages = {
        {6, 8, 3, 1, 2, 1},
        {6, 10, 1, 3, 1, 1},
    };
    return cfg;
}

TEST(Cnn, StageChainsThreadShapes)
{
    const CnnBackbone cnn(tinyCnn(), 64.0 * 1024);
    const auto &chains = cnn.stageChains();
    ASSERT_EQ(chains.size(), 2u);
    EXPECT_EQ(chains[0].ic, 4);
    EXPECT_EQ(chains[0].oh2(), 12); // 24 / stride 2
    EXPECT_EQ(chains[1].ic, chains[0].oc2);
    EXPECT_EQ(chains[1].h, chains[0].oh2());
}

TEST(Cnn, FusedAndUnfusedAgree)
{
    const CnnBackbone cnn(tinyCnn(), 64.0 * 1024);
    Tensor input({1, 4, 24, 24});
    Rng rng(2);
    fillUniform(input, rng);
    const Tensor fused = cnn.forward(input, ConvMode::FusedChimera);
    const Tensor unfused = cnn.forward(input, ConvMode::Unfused);
    ASSERT_EQ(fused.shape(), unfused.shape());
    EXPECT_TRUE(allClose(fused, unfused, 5e-3f, 5e-3f))
        << "maxdiff " << maxAbsDiff(fused, unfused);
}

TEST(Cnn, LogitsShapeAndFiniteness)
{
    const CnnBackbone cnn(tinyCnn(), 64.0 * 1024);
    Tensor input({1, 4, 24, 24});
    Rng rng(3);
    fillUniform(input, rng);
    const Tensor logits = cnn.forward(input, ConvMode::FusedChimera);
    const std::vector<std::int64_t> expected = {1, 10};
    EXPECT_EQ(logits.shape(), expected);
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(logits[i]));
    }
}

TEST(Cnn, DeterministicAcrossConstructions)
{
    const CnnBackbone a(tinyCnn(), 64.0 * 1024, 9);
    const CnnBackbone b(tinyCnn(), 64.0 * 1024, 9);
    Tensor input({1, 4, 24, 24});
    Rng rng(4);
    fillUniform(input, rng);
    EXPECT_TRUE(allClose(a.forward(input, ConvMode::FusedChimera),
                         b.forward(input, ConvMode::FusedChimera), 0.0f,
                         0.0f));
}

TEST(Cnn, SqueezeNetLikeBuildsAndRuns)
{
    const CnnConfig cfg = squeezeNetLike();
    const CnnBackbone cnn(cfg, 256.0 * 1024);
    Tensor input({cfg.batch, cfg.inChannels, cfg.height, cfg.width});
    Rng rng(5);
    fillUniform(input, rng);
    const Tensor fused = cnn.forward(input, ConvMode::FusedChimera);
    const Tensor unfused = cnn.forward(input, ConvMode::Unfused);
    EXPECT_TRUE(allClose(fused, unfused, 5e-3f, 5e-3f));
}

TEST(Cnn, RejectsWrongInput)
{
    const CnnBackbone cnn(tinyCnn(), 64.0 * 1024);
    Tensor bad({1, 4, 16, 24});
    EXPECT_THROW(cnn.forward(bad, ConvMode::FusedChimera), Error);
}

} // namespace
} // namespace chimera::graph
