/**
 * @file
 * Tests for the chimera-check verifier subsystem: the chain IR rules
 * (CH*), the plan legality rules (PL*) including the brute-force
 * Algorithm-1 recount, the kernel-parameter rules (KP*), and the plan
 * cache's rejection of syntactically valid but illegal entries.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hw/machines.hpp"
#include "ir/builders.hpp"
#include "ir/workloads.hpp"
#include "kernels/kernel_params.hpp"
#include "model/data_movement.hpp"
#include "plan/plan_cache.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "verify/chain_verifier.hpp"
#include "verify/plan_verifier.hpp"

namespace chimera::verify {
namespace {

namespace fs = std::filesystem;

ir::Chain
gemmChainUnderTest()
{
    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "verify-test";
    return ir::makeGemmChain(cfg);
}

/** Minimal single-GEMM chain with a deliberate defect knob. */
ir::Chain
handBuiltGemm(bool dropReductionLoop)
{
    ir::Chain chain("hand-built");
    const ir::AxisId m = chain.addAxis("m", 8);
    const ir::AxisId n = chain.addAxis("n", 8);
    const ir::AxisId k = chain.addAxis("k", 8);

    ir::TensorDecl a;
    a.name = "A";
    a.kind = ir::TensorKind::Input;
    a.dims = {{{{m, 1}}}, {{{k, 1}}}};
    ir::TensorDecl b;
    b.name = "B";
    b.kind = ir::TensorKind::Input;
    b.dims = {{{{k, 1}}}, {{{n, 1}}}};
    ir::TensorDecl c;
    c.name = "C";
    c.kind = ir::TensorKind::Output;
    c.dims = {{{{m, 1}}}, {{{n, 1}}}};
    const int ta = chain.addTensor(a);
    const int tb = chain.addTensor(b);
    const int tc = chain.addTensor(c);

    ir::OpDecl op;
    op.name = "mm";
    op.loops = dropReductionLoop ? std::vector<ir::AxisId>{m, n}
                                 : std::vector<ir::AxisId>{m, n, k};
    op.tensorIds = {ta, tb, tc};
    op.outputTensorId = tc;
    op.iterDims = {{{{m, 1}}}, {{{n, 1}}}, {{{k, 1}}}};
    chain.addOp(op);
    return chain;
}

std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("chimera-verify-" + name);
    fs::remove_all(dir);
    return dir.string();
}

fs::path
onlyEntry(const std::string &dir)
{
    fs::path found;
    int count = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".plan") {
            found = entry.path();
            ++count;
        }
    }
    EXPECT_EQ(count, 1);
    return found;
}

TEST(Diagnostics, ReportCollectsAndRenders)
{
    Report report;
    EXPECT_TRUE(report.empty());
    EXPECT_EQ(report.render(), "");

    report.error("PL04", "tiles.m", "tile 0 is outside [1, 64]");
    report.warning("CH06", "tensor X", "tensor is untouched");
    report.note("PL09", "volume-bytes", "recount skipped");

    EXPECT_EQ(report.errorCount(), 1);
    EXPECT_EQ(report.warningCount(), 1);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.hasRule("PL04"));
    EXPECT_TRUE(report.hasRule("PL09"));
    EXPECT_FALSE(report.hasRule("PL07"));

    const std::string rendered = report.render();
    EXPECT_NE(rendered.find("error: [PL04] tiles.m:"), std::string::npos);
    EXPECT_NE(rendered.find("warning: [CH06]"), std::string::npos);
    EXPECT_NE(rendered.find("note: [PL09]"), std::string::npos);

    Report other;
    other.error("PL07", "mem-bytes", "over capacity");
    report.merge(other);
    EXPECT_EQ(report.errorCount(), 2);
    EXPECT_TRUE(report.hasRule("PL07"));
}

TEST(ChainVerifier, PaperWorkloadsAreClean)
{
    for (const auto &load : ir::tableIvWorkloads()) {
        const Report report =
            verifyChain(ir::makeGemmChain(load.config));
        EXPECT_FALSE(report.hasErrors())
            << load.config.name << ":\n" << report.render();
    }
    for (const auto &load : ir::tableVWorkloads()) {
        const Report report =
            verifyChain(ir::makeConvChain(load.config));
        EXPECT_FALSE(report.hasErrors())
            << load.config.name << ":\n" << report.render();
    }
}

TEST(ChainVerifier, FlagsEmptyChain)
{
    const Report report = verifyChain(ir::Chain("empty"));
    EXPECT_TRUE(report.hasRule("CH01"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(ChainVerifier, FlagsShapeMismatch)
{
    // The operator's nest lost its reduction loop: A and B are indexed
    // by k, which the operator cannot iterate.
    const Report report = verifyChain(handBuiltGemm(true));
    EXPECT_TRUE(report.hasRule("CH05")) << report.render();
    // ...and k is now in no operator's loops at all.
    EXPECT_TRUE(report.hasRule("CH07")) << report.render();

    EXPECT_FALSE(verifyChain(handBuiltGemm(false)).hasErrors());
}

TEST(ChainVerifier, FlagsDanglingReferences)
{
    ir::Chain chain = handBuiltGemm(false);
    ir::OpDecl ghost;
    ghost.name = "ghost";
    ghost.loops = {99};
    ghost.tensorIds = {42};
    ghost.outputTensorId = 42;
    chain.addOp(ghost);
    const Report report = verifyChain(chain);
    EXPECT_TRUE(report.hasRule("CH03")) << report.render();
}

TEST(ChainVerifier, FlagsDataflowDefects)
{
    // An intermediate that no operator produces, consumed by the only op.
    ir::Chain chain("broken-dataflow");
    const ir::AxisId m = chain.addAxis("m", 4);
    ir::TensorDecl phantom;
    phantom.name = "P";
    phantom.kind = ir::TensorKind::Intermediate;
    phantom.dims = {{{{m, 1}}}};
    ir::TensorDecl out;
    out.name = "O";
    out.kind = ir::TensorKind::Input; // wrong: last op must emit Output
    out.dims = {{{{m, 1}}}};
    const int tp = chain.addTensor(phantom);
    const int to = chain.addTensor(out);
    ir::OpDecl op;
    op.name = "use";
    op.loops = {m};
    op.tensorIds = {tp, to};
    op.outputTensorId = to;
    op.iterDims = {{{{m, 1}}}};
    chain.addOp(op);

    const Report report = verifyChain(chain);
    EXPECT_TRUE(report.hasRule("CH06")) << report.render();
    // Consumed-before-produced, never-produced, input-written and
    // non-Output-final are all CH06 findings; expect several.
    EXPECT_GE(report.errorCount(), 3) << report.render();
}

TEST(PlanVerifier, PlannerWinnersVerifyClean)
{
    for (const auto &load : ir::smallGemmWorkloads()) {
        const ir::Chain chain = ir::makeGemmChain(load.config);
        plan::PlannerOptions options;
        options.memCapacityBytes = 16.0 * 1024;
        const plan::ExecutionPlan plan = plan::planChain(chain, options);
        const Report report = verifyExecutionPlan(
            chain, plan, planVerifyOptions(options));
        EXPECT_FALSE(report.hasErrors())
            << load.config.name << ":\n" << report.render();
    }
}

TEST(PlanVerifier, FlagsZeroAndOversizedTiles)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    const plan::ExecutionPlan good = plan::planChain(chain, po);

    std::vector<std::int64_t> tiles = good.tiles;
    tiles[0] = 0;
    Report report =
        verifyPlan(chain, good.perm, tiles, planVerifyOptions(po));
    EXPECT_TRUE(report.hasRule("PL04")) << report.render();

    tiles = good.tiles;
    tiles[1] = chain.axes()[1].extent + 1;
    report = verifyPlan(chain, good.perm, tiles, planVerifyOptions(po));
    EXPECT_TRUE(report.hasRule("PL04")) << report.render();
}

TEST(PlanVerifier, FlagsStructuralDefects)
{
    const ir::Chain chain = gemmChainUnderTest();
    const PlanVerifyOptions vo;
    const std::vector<std::int64_t> tiles(
        static_cast<std::size_t>(chain.numAxes()), 1);

    // Truncated permutation.
    std::vector<ir::AxisId> shortPerm = {0, 1};
    Report report = verifyPlan(chain, shortPerm, tiles, vo);
    EXPECT_TRUE(report.hasRule("PL03")) << report.render();

    // Repeated axis.
    std::vector<ir::AxisId> dupPerm(
        static_cast<std::size_t>(chain.numAxes()), 0);
    report = verifyPlan(chain, dupPerm, tiles, vo);
    EXPECT_TRUE(report.hasRule("PL03")) << report.render();

    // Wrong tile arity.
    const std::vector<ir::AxisId> perm =
        plan::permFromOrderString(chain, "b,m,l,k,n");
    report = verifyPlan(chain, perm, {1, 1}, vo);
    EXPECT_TRUE(report.hasRule("PL05")) << report.render();
}

TEST(PlanVerifier, FlagsOverCapacity)
{
    const ir::Chain chain = gemmChainUnderTest();
    PlanVerifyOptions vo;
    vo.memCapacityBytes = 1024.0; // far below any full-extent footprint
    const std::vector<ir::AxisId> perm =
        plan::permFromOrderString(chain, "b,m,l,k,n");
    const Report report =
        verifyPlan(chain, perm, chain.fullExtents(), vo);
    EXPECT_TRUE(report.hasRule("PL07")) << report.render();
}

TEST(PlanVerifier, FlagsNonExecutableOrder)
{
    const ir::Chain chain = gemmChainUnderTest();
    // k (gemm1's reduction) outermost revisits the intermediate C's
    // regions after eviction; with every axis blocked this is the
    // canonical non-executable order.
    const std::vector<ir::AxisId> perm =
        plan::permFromOrderString(chain, "k,n,b,m,l");
    std::vector<std::int64_t> tiles(
        static_cast<std::size_t>(chain.numAxes()), 2);
    ASSERT_FALSE(model::isExecutableOrder(chain, perm, tiles));

    PlanVerifyOptions vo;
    Report report = verifyPlan(chain, perm, tiles, vo);
    EXPECT_TRUE(report.hasRule("PL06")) << report.render();

    // Baseline mode: the same schedule passes with the check off.
    vo.requireExecutableOrder = false;
    report = verifyPlan(chain, perm, tiles, vo);
    EXPECT_FALSE(report.hasRule("PL06")) << report.render();
}

TEST(PlanVerifier, RecountMatchesAlgorithmOne)
{
    const ir::Chain chain = gemmChainUnderTest();
    const std::vector<std::string> orders = {
        "b,m,l,k,n", "b,m,l,n,k", "m,b,l,k,n", "b,l,m,n,k",
        "k,n,b,m,l", // non-executable orders still obey Algorithm 1
    };
    const std::vector<std::int64_t> tileChoices = {1, 2, 3, 8};
    for (const std::string &order : orders) {
        const std::vector<ir::AxisId> perm =
            plan::permFromOrderString(chain, order);
        for (std::int64_t choice : tileChoices) {
            std::vector<std::int64_t> tiles;
            for (const ir::Axis &axis : chain.axes()) {
                tiles.push_back(std::min(choice, axis.extent));
            }
            const model::DataMovement algo =
                model::computeDataMovement(chain, perm, tiles);
            const auto brute = bruteForceDataMovement(
                chain, perm, tiles, model::ModelOptions{}, 1 << 20);
            ASSERT_TRUE(brute.has_value()) << order;
            EXPECT_EQ(brute->memUsageBytes, algo.memUsageBytes) << order;
            for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
                EXPECT_NEAR(brute->perTensorBytes[t],
                            algo.perTensorBytes[t], 0.5)
                    << order << " tile " << choice << " tensor "
                    << chain.tensors()[t].name;
            }
        }
    }
}

TEST(PlanVerifier, RecountSkipsHugeGrids)
{
    const ir::Chain chain = gemmChainUnderTest();
    const std::vector<ir::AxisId> perm =
        plan::permFromOrderString(chain, "b,m,l,k,n");
    const std::vector<std::int64_t> ones(
        static_cast<std::size_t>(chain.numAxes()), 1);
    EXPECT_FALSE(bruteForceDataMovement(chain, perm, ones,
                                        model::ModelOptions{}, 64)
                     .has_value());

    PlanVerifyOptions vo;
    vo.recountMaxBlocks = 64;
    const Report report = verifyPlan(chain, perm, ones, vo);
    EXPECT_FALSE(report.hasErrors()) << report.render();
    EXPECT_TRUE(report.hasRule("PL09")); // the "skipped" note
}

TEST(PlanVerifier, FlagsStalePredictions)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    plan::ExecutionPlan plan = plan::planChain(chain, po);

    plan.predictedVolumeBytes = 1.0;
    Report report =
        verifyExecutionPlan(chain, plan, planVerifyOptions(po));
    EXPECT_TRUE(report.hasRule("PL08")) << report.render();

    plan = plan::planChain(chain, po);
    plan.memUsageBytes += 4096;
    report = verifyExecutionPlan(chain, plan, planVerifyOptions(po));
    EXPECT_TRUE(report.hasRule("PL08")) << report.render();
}

TEST(PlanVerifier, FlagsTamperedDocument)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, po);
    std::string text = plan::serializePlan(chain, plan, "aaaabbbbccccdddd");

    // Tamper the declared volume.
    const std::size_t pos = text.find("volume-bytes: ");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t eol = text.find('\n', pos);
    text.replace(pos, eol - pos, "volume-bytes: 7");

    const plan::ParsedPlanDoc doc = plan::parsePlanDocument(text);
    PlanVerifyOptions vo = planVerifyOptions(po);
    Report report = verifyPlanDocument(chain, doc, "aaaabbbbccccdddd", vo);
    EXPECT_TRUE(report.hasRule("PL08")) << report.render();
    EXPECT_FALSE(report.hasRule("PL10")) << report.render();

    // A fingerprint that does not match the expected key.
    report = verifyPlanDocument(chain, doc, "ffffffffffffffff", vo);
    EXPECT_TRUE(report.hasRule("PL10")) << report.render();
}

TEST(PlanVerifier, ThreadAwareWinnersVerifyClean)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    po.execThreads = 8;
    po.topology = hw::multicoreCpuTopology();
    const plan::ExecutionPlan plan = plan::planChain(chain, po);
    EXPECT_EQ(plan.plannedThreads, 8);
    const Report report =
        verifyExecutionPlan(chain, plan, planVerifyOptions(po));
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(PlanVerifier, FlagsChunkingDefects)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    const plan::ExecutionPlan good = plan::planChain(chain, po);
    const PlanVerifyOptions vo = planVerifyOptions(po);

    // Grain > 1 on the contracted axis k regroups a serial reduction.
    plan::ExecutionPlan bad = good;
    bad.plannedThreads = 4;
    bad.parallelGrain.assign(
        static_cast<std::size_t>(chain.numAxes()), 1);
    bad.parallelGrain[static_cast<std::size_t>(
        ir::axisIdByName(chain, "k"))] = 2;
    Report report = verifyExecutionPlan(chain, bad, vo);
    EXPECT_TRUE(report.hasRule("PL13")) << report.render();

    // Non-positive planned thread count.
    bad = good;
    bad.plannedThreads = 0;
    report = verifyExecutionPlan(chain, bad, vo);
    EXPECT_TRUE(report.hasRule("PL13")) << report.render();

    // Grain arity mismatch.
    bad = good;
    bad.plannedThreads = 4;
    bad.parallelGrain = {2, 2};
    report = verifyExecutionPlan(chain, bad, vo);
    EXPECT_TRUE(report.hasRule("PL13")) << report.render();
}

TEST(PlanVerifier, FlagsFootprintOverPerWorkerShare)
{
    // A serially-planned footprint that eight workers cannot all keep
    // resident in a small shared cache.
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, po);

    plan::PlannerOptions threaded = po;
    threaded.execThreads = 8;
    threaded.topology.name = "tiny";
    threaded.topology.cores = 8;
    threaded.topology.levels = {
        {"LLC", 64.0 * 1024, 1e11, model::LevelScope::Shared}};
    const Report report = verifyExecutionPlan(
        chain, plan, planVerifyOptions(threaded));
    EXPECT_TRUE(report.hasRule("PL13")) << report.render();
}

TEST(PlanVerifier, FlagsGrainWithoutThreadsDocument)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions po;
    po.memCapacityBytes = 32.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, po);
    const std::string text =
        plan::serializePlan(chain, plan) + "grain: m=2\n";
    const plan::ParsedPlanDoc doc = plan::parsePlanDocument(text);
    const Report report =
        verifyPlanDocument(chain, doc, "", planVerifyOptions(po));
    EXPECT_TRUE(report.hasRule("PL13")) << report.render();
}

TEST(PlanVerifier, FlagsBrokenMultiLevelNesting)
{
    const ir::Chain chain = gemmChainUnderTest();
    model::MachineModel machine;
    machine.name = "toy";
    machine.levels.push_back({"L1", 8.0 * 1024, 1e12});
    machine.levels.push_back({"L2", 64.0 * 1024, 1e11});
    machine.peakFlops = 1e12;

    plan::PlannerOptions po;
    po.memCapacityBytes = 8.0 * 1024;
    const plan::MultiLevelPlan good =
        plan::planChainMultiLevel(chain, machine, po);
    PlanVerifyOptions vo;
    vo.recount = false;
    Report report =
        verifyMultiLevelPlan(chain, machine, good.levels, vo);
    EXPECT_FALSE(report.hasErrors()) << report.render();

    // Wrong level count.
    std::vector<model::LevelSchedule> truncated = {good.levels[0]};
    report = verifyMultiLevelPlan(chain, machine, truncated, vo);
    EXPECT_TRUE(report.hasRule("PL11")) << report.render();

    // Inner tiles poking out of the enclosing level's tiles.
    std::vector<model::LevelSchedule> inverted = good.levels;
    std::swap(inverted[0].tiles, inverted[1].tiles);
    const bool nested = inverted[0].tiles == inverted[1].tiles;
    if (!nested) {
        report = verifyMultiLevelPlan(chain, machine, inverted, vo);
        EXPECT_TRUE(report.hasErrors()) << report.render();
    }
}

TEST(KernelParams, SelectedParamsSatisfyTheBudget)
{
    for (int registers : {16, 32}) {
        const Report report = verifyKernelParams(
            kernels::selectCpuKernelParams(registers), registers);
        EXPECT_FALSE(report.hasErrors())
            << registers << " registers:\n" << report.render();
    }
}

TEST(KernelParams, FlagsBudgetAndStructureViolations)
{
    kernels::CpuKernelParams params;
    params.mi = 8;
    params.ni = 8;
    params.mii = 2;
    Report report = verifyKernelParams(params, 16); // 8*8+8+2 = 74 > 16
    EXPECT_TRUE(report.hasRule("KP01")) << report.render();

    params.mi = 6;
    params.ni = 4;
    params.mii = 4; // does not divide 6
    report = verifyKernelParams(params, 32);
    EXPECT_TRUE(report.hasRule("KP02")) << report.render();

    params.mii = 1; // cannot hide the broadcast latency
    report = verifyKernelParams(params, 32);
    EXPECT_TRUE(report.hasRule("KP02")) << report.render();

    params.mi = 0;
    report = verifyKernelParams(params, 32);
    EXPECT_TRUE(report.hasRule("KP03")) << report.render();
}

TEST(PlanCacheVerify, RejectsLegalLookingButIllegalEntry)
{
    const ir::Chain chain = gemmChainUnderTest();
    plan::PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    const std::string dir = freshDir("reject");

    {
        plan::PlanCache writer(dir);
        options.cache = &writer;
        plan::planChain(chain, options);
    }

    // Replace the tiles with full extents, keeping the valid fingerprint:
    // the document still parses, binds and fingerprint-matches, but its
    // footprint blows the 32 KiB capacity — only the verifier catches it.
    const fs::path entry = onlyEntry(dir);
    std::string text;
    {
        std::ifstream in(entry);
        std::ostringstream contents;
        contents << in.rdbuf();
        text = contents.str();
    }
    const std::size_t pos = text.find("tiles: ");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t eol = text.find('\n', pos);
    text.replace(pos, eol - pos, "tiles: b=4 m=64 n=32 k=16 l=48");
    {
        std::ofstream out(entry, std::ios::trunc);
        out << text;
    }

    plan::PlanCache reader(dir);
    options.cache = &reader;
    const plan::ExecutionPlan replanned = plan::planChain(chain, options);
    EXPECT_GT(replanned.candidatesExamined, 0); // not served from cache
    EXPECT_EQ(reader.stats().rejectedPlans, 1);
    EXPECT_EQ(reader.stats().diskHits, 0);
    EXPECT_LE(static_cast<double>(replanned.memUsageBytes),
              options.memCapacityBytes);

    // The store after replanning healed the entry.
    plan::PlanCache healed(dir);
    options.cache = &healed;
    EXPECT_EQ(plan::planChain(chain, options).candidatesExamined, 0);
    EXPECT_EQ(healed.stats().diskHits, 1);
    EXPECT_EQ(healed.stats().rejectedPlans, 0);
}

} // namespace
} // namespace chimera::verify
