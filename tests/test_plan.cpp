/**
 * @file
 * Unit tests for the inter-block planner: permutation enumeration, order
 * strings, single-level and multi-level planning.
 */

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "hw/machines.hpp"
#include "ir/builders.hpp"
#include "ir/workloads.hpp"
#include "model/data_movement.hpp"
#include "model/multilevel.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::plan {
namespace {

using ir::Chain;
using ir::GemmChainConfig;
using ir::makeGemmChain;

GemmChainConfig
squareChain(std::int64_t size)
{
    GemmChainConfig cfg;
    cfg.m = size;
    cfg.n = size;
    cfg.k = size;
    cfg.l = size;
    cfg.name = "square";
    return cfg;
}

TEST(OrderString, RoundTrips)
{
    const Chain chain = makeGemmChain(squareChain(64));
    const std::vector<ir::AxisId> perm =
        permFromOrderString(chain, "m,l,k,n");
    EXPECT_EQ(orderString(chain, perm), "m,l,k,n");
}

TEST(OrderString, AppendsOmittedAxesInnermost)
{
    ir::ConvChainConfig cfg;
    cfg.ic = 8;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 8;
    cfg.oc2 = 8;
    cfg.k1 = 3;
    cfg.k2 = 1;
    const Chain chain = ir::makeConvChain(cfg);
    const auto perm = permFromOrderString(chain, "oc2,oh,ow,oc1,ic");
    EXPECT_EQ(static_cast<int>(perm.size()), chain.numAxes());
    // The pinned kernel axes land innermost.
    const auto pinned = chain.pinnedAxes();
    for (std::size_t i = 0; i < pinned.size(); ++i) {
        EXPECT_EQ(perm[perm.size() - pinned.size() + i], pinned[i]);
    }
}

TEST(OrderString, RejectsUnknownAxis)
{
    const Chain chain = makeGemmChain(squareChain(64));
    EXPECT_THROW(permFromOrderString(chain, "m,zz"), Error);
}

TEST(Planner, ExaminesAllTwentyFourOrders)
{
    const Chain chain = makeGemmChain(squareChain(128));
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    // Without the executability filter every enumerated order is solved.
    options.onlyExecutableOrders = false;
    options.prune = analysis::PruneMode::None; // this test is about exhaustion
    const ExecutionPlan plan = planChain(chain, options);
    EXPECT_EQ(plan.candidatesExamined, 24);
    EXPECT_GT(plan.planSeconds, 0.0);
}

TEST(Planner, CandidatesExaminedCountsOnlySolvedOrders)
{
    const Chain chain = makeGemmChain(squareChain(128));
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    const ExecutionPlan plan = planChain(chain, options);
    // The executable-order filter skips some of the 4! = 24 orders
    // before the solver runs; those are no longer reported as examined.
    EXPECT_GT(plan.candidatesExamined, 0);
    EXPECT_LT(plan.candidatesExamined, 24);
}

TEST(Planner, PlanBeatsEveryOtherOrderItExamined)
{
    const Chain chain = makeGemmChain(squareChain(128));
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    const ExecutionPlan plan = planChain(chain, options);

    // Re-solve every permutation and confirm none beats the plan.
    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = options.memCapacityBytes;
    for (const auto &orderIdx : allPermutations(4)) {
        std::vector<ir::AxisId> perm(orderIdx.begin(), orderIdx.end());
        if (!model::isExecutableOrder(chain, perm)) {
            continue;
        }
        const auto sol =
            solver::solveTiles(chain, perm, {}, solverOptions);
        if (sol.feasible) {
            EXPECT_GE(sol.volumeBytes, plan.predictedVolumeBytes - 0.5);
        }
    }
}

TEST(ExecutableOrders, GemmChainHasTwelveOfTwentyFour)
{
    // Valid orders: {m, l} in either order with {k, n} inside in either
    // order and interleavings where both k and n stay inner to both m
    // and l.
    const Chain chain = makeGemmChain(squareChain(64));
    int executable = 0;
    for (const auto &orderIdx : allPermutations(4)) {
        std::vector<ir::AxisId> perm(orderIdx.begin(), orderIdx.end());
        if (model::isExecutableOrder(chain, perm)) {
            ++executable;
        }
    }
    // m and l must both precede k and n: choose 2 of 4 positions for
    // {m,l} as the first two slots -> 2! * 2! = 4 orders.
    EXPECT_EQ(executable, 4);
    EXPECT_TRUE(model::isExecutableOrder(
        chain, permFromOrderString(chain, "m,l,k,n")));
    EXPECT_TRUE(model::isExecutableOrder(
        chain, permFromOrderString(chain, "l,m,n,k")));
    EXPECT_FALSE(model::isExecutableOrder(
        chain, permFromOrderString(chain, "m,k,l,n")));
    EXPECT_FALSE(model::isExecutableOrder(
        chain, permFromOrderString(chain, "m,n,k,l")));
}

TEST(ExecutableOrders, SingleOpChainAlwaysExecutable)
{
    const Chain chain = ir::makeSingleGemm(1, 16, 16, 16);
    for (const auto &orderIdx : allPermutations(3)) {
        std::vector<ir::AxisId> perm(orderIdx.begin(), orderIdx.end());
        EXPECT_TRUE(model::isExecutableOrder(chain, perm));
    }
}

TEST(ExecutableOrders, PlannerSelectsExecutableOrder)
{
    const Chain chain = makeGemmChain(squareChain(128));
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    const ExecutionPlan plan = planChain(chain, options);
    EXPECT_TRUE(model::isExecutableOrder(chain, plan.perm));
}

TEST(Planner, PredictionsSatisfyCapacity)
{
    for (const auto &load : ir::smallGemmWorkloads()) {
        const Chain chain = makeGemmChain(load.config);
        PlannerOptions options;
        options.memCapacityBytes = 16.0 * 1024;
        const ExecutionPlan plan = planChain(chain, options);
        EXPECT_LE(static_cast<double>(plan.memUsageBytes),
                  options.memCapacityBytes)
            << load.config.name;
        const auto dm =
            model::computeDataMovement(chain, plan.perm, plan.tiles);
        EXPECT_DOUBLE_EQ(dm.volumeBytes, plan.predictedVolumeBytes);
    }
}

TEST(Planner, FusedPlanBeatsUnfusedVolumeOnMemoryBoundChain)
{
    // The headline claim: planning the fused chain yields less DRAM
    // traffic than executing the two GEMMs separately (intermediate
    // spilled). Use a Bert-like shape (memory-bound batch GEMMs).
    GemmChainConfig cfg;
    cfg.m = 512;
    cfg.n = 64;
    cfg.k = 64;
    cfg.l = 512;
    const Chain chain = makeGemmChain(cfg);

    PlannerOptions options;
    options.memCapacityBytes = 512.0 * 1024;
    const ExecutionPlan fused = planChain(chain, options);

    PlannerOptions unfusedOptions = options;
    unfusedOptions.model.intermediatesAreIO = true;
    const ExecutionPlan unfused = planChain(chain, unfusedOptions);

    EXPECT_LT(fused.predictedVolumeBytes, unfused.predictedVolumeBytes);
}

TEST(Planner, ConvChainPlansWithinCapacity)
{
    ir::ConvChainConfig cfg;
    cfg.ic = 32;
    cfg.h = 56;
    cfg.w = 56;
    cfg.oc1 = 32;
    cfg.oc2 = 32;
    cfg.k1 = 3;
    cfg.k2 = 1;
    const Chain chain = ir::makeConvChain(cfg);
    PlannerOptions options;
    options.memCapacityBytes = 256.0 * 1024;
    const ExecutionPlan plan = planChain(chain, options);
    EXPECT_LE(static_cast<double>(plan.memUsageBytes),
              options.memCapacityBytes);
    EXPECT_EQ(static_cast<int>(plan.perm.size()), chain.numAxes());
}

TEST(Planner, ThrowsWhenNothingFits)
{
    const Chain chain = makeGemmChain(squareChain(64));
    PlannerOptions options;
    options.memCapacityBytes = 4.0;
    EXPECT_THROW(planChain(chain, options), Error);
}

TEST(Planner, RespectsPermutationCap)
{
    const Chain chain = makeGemmChain(squareChain(64));
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    options.maxPermutations = 5;
    options.onlyExecutableOrders = false; // solve all capped candidates
    options.prune = analysis::PruneMode::None; // cap semantics, not pruning
    const ExecutionPlan plan = planChain(chain, options);
    EXPECT_EQ(plan.candidatesExamined, 5);
}

TEST(Planner, ParallelPlanningMatchesSerialOnGemmChain)
{
    const Chain chain = makeGemmChain(squareChain(128));
    PlannerOptions serialOptions;
    serialOptions.memCapacityBytes = 32.0 * 1024;
    serialOptions.threads = 1;
    const ExecutionPlan serial = planChain(chain, serialOptions);

    for (int threads : {2, 4, 8}) {
        PlannerOptions options = serialOptions;
        options.threads = threads;
        const ExecutionPlan parallel = planChain(chain, options);
        EXPECT_EQ(parallel.perm, serial.perm) << "threads " << threads;
        EXPECT_EQ(parallel.tiles, serial.tiles) << "threads " << threads;
        EXPECT_DOUBLE_EQ(parallel.predictedVolumeBytes,
                         serial.predictedVolumeBytes)
            << "threads " << threads;
        EXPECT_EQ(parallel.memUsageBytes, serial.memUsageBytes)
            << "threads " << threads;
        EXPECT_EQ(parallel.candidatesExamined, serial.candidatesExamined)
            << "threads " << threads;
    }
}

TEST(Planner, ParallelPlanningMatchesSerialOnConvChain)
{
    ir::ConvChainConfig cfg;
    cfg.ic = 32;
    cfg.h = 56;
    cfg.w = 56;
    cfg.oc1 = 32;
    cfg.oc2 = 32;
    cfg.k1 = 3;
    cfg.k2 = 1;
    const Chain chain = ir::makeConvChain(cfg);
    PlannerOptions serialOptions;
    serialOptions.memCapacityBytes = 256.0 * 1024;
    serialOptions.threads = 1;
    const ExecutionPlan serial = planChain(chain, serialOptions);

    PlannerOptions options = serialOptions;
    options.threads = 4;
    const ExecutionPlan parallel = planChain(chain, options);
    EXPECT_EQ(parallel.perm, serial.perm);
    EXPECT_EQ(parallel.tiles, serial.tiles);
    EXPECT_DOUBLE_EQ(parallel.predictedVolumeBytes,
                     serial.predictedVolumeBytes);
    EXPECT_EQ(parallel.memUsageBytes, serial.memUsageBytes);
    EXPECT_EQ(parallel.candidatesExamined, serial.candidatesExamined);
}

TEST(Planner, ParallelPlanningRespectsPermutationCap)
{
    const Chain chain = makeGemmChain(squareChain(64));
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    options.maxPermutations = 5;
    options.onlyExecutableOrders = false; // solve all capped candidates
    options.prune = analysis::PruneMode::None; // cap semantics, not pruning
    options.threads = 4;
    const ExecutionPlan plan = planChain(chain, options);
    EXPECT_EQ(plan.candidatesExamined, 5);
}

TEST(MultiLevelPlanner, TilesNestAcrossLevels)
{
    const Chain chain = makeGemmChain(squareChain(256));
    model::MachineModel machine;
    machine.name = "toy";
    machine.levels = {
        {"L1", 16.0 * 1024, 400e9},
        {"L2", 256.0 * 1024, 100e9},
    };
    machine.peakFlops = 1e12;

    PlannerOptions options;
    const MultiLevelPlan plan = planChainMultiLevel(chain, machine, options);
    ASSERT_EQ(plan.levels.size(), 2u);
    for (int a = 0; a < chain.numAxes(); ++a) {
        EXPECT_LE(plan.levels[0].tiles[static_cast<std::size_t>(a)],
                  plan.levels[1].tiles[static_cast<std::size_t>(a)])
            << "axis " << a;
    }
    EXPECT_TRUE(plan.cost.feasible);
    // Inner level traffic must be at least the outer level traffic.
    EXPECT_GE(plan.cost.volumeBytes[0], plan.cost.volumeBytes[1] - 0.5);
}

TEST(MultiLevelPlanner, BoundIsMaxOfStages)
{
    const Chain chain = makeGemmChain(squareChain(128));
    model::MachineModel machine;
    machine.levels = {{"L1", 32.0 * 1024, 1e12}};
    machine.peakFlops = 2e12;
    const MultiLevelPlan plan = planChainMultiLevel(chain, machine, {});
    double maxStage = plan.cost.computeSeconds;
    for (double s : plan.cost.stageSeconds) {
        maxStage = std::max(maxStage, s);
    }
    EXPECT_DOUBLE_EQ(plan.cost.boundSeconds, maxStage);
}

TEST(ThreadAwarePlanner, SingleThreadReproducesSerialPlanExactly)
{
    const Chain chain = makeGemmChain(squareChain(256));
    PlannerOptions serial;
    serial.memCapacityBytes = 512.0 * 1024;
    const ExecutionPlan base = planChain(chain, serial);

    PlannerOptions one = serial;
    one.execThreads = 1;
    one.topology = hw::multicoreCpuTopology();
    const ExecutionPlan same = planChain(chain, one);
    EXPECT_EQ(same.perm, base.perm);
    EXPECT_EQ(same.tiles, base.tiles);
    EXPECT_EQ(same.plannedThreads, 1);
    EXPECT_TRUE(same.parallelGrain.empty());
    // And the serial document stays byte-identical: no chunking lines.
    EXPECT_EQ(serializePlan(chain, same), serializePlan(chain, base));
}

TEST(ThreadAwarePlanner, SharedCachePressureShrinksTiles)
{
    // A working set that fits the serial budget but not a twelfth of
    // the multicore LLC: the 12-thread plan must re-solve with strictly
    // smaller tiles so twelve concurrent working sets coexist.
    const Chain chain = makeGemmChain(squareChain(512));
    const model::MachineModel topo = hw::multicoreCpuTopology();

    PlannerOptions serial;
    serial.memCapacityBytes = 8.0 * 1024 * 1024;
    const ExecutionPlan base = planChain(chain, serial);
    const double share = model::minSharedPerWorkerCapacityBytes(topo, 12);
    ASSERT_GT(static_cast<double>(base.memUsageBytes), share)
        << "fixture too small to pressure the shared cache";

    PlannerOptions par = serial;
    par.execThreads = 12;
    par.topology = topo;
    const ExecutionPlan plan8 = planChain(chain, par);
    EXPECT_LE(static_cast<double>(plan8.memUsageBytes), share);
    EXPECT_EQ(plan8.plannedThreads, 12);
    ASSERT_EQ(plan8.parallelGrain.size(),
              static_cast<std::size_t>(chain.numAxes()));
    bool strictlySmaller = false;
    for (int a = 0; a < chain.numAxes(); ++a) {
        const auto idx = static_cast<std::size_t>(a);
        EXPECT_LE(plan8.tiles[idx], base.tiles[idx]) << "axis " << a;
        strictlySmaller |= plan8.tiles[idx] < base.tiles[idx];
    }
    EXPECT_TRUE(strictlySmaller);
}

TEST(ThreadAwarePlanner, ChunkingCoversEveryWorker)
{
    // Enough parallel blocks must exist for the planned worker count,
    // and the grain must only coarsen axes that are proven Parallel.
    GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 96;
    cfg.n = 48;
    cfg.k = 32;
    cfg.l = 64;
    cfg.name = "chunk-cover";
    const Chain chain = makeGemmChain(cfg);
    PlannerOptions options;
    options.memCapacityBytes = 64.0 * 1024;
    options.execThreads = 8;
    options.topology = hw::multicoreCpuTopology();
    const ExecutionPlan plan = planChain(chain, options);
    ASSERT_EQ(plan.parallelGrain.size(),
              static_cast<std::size_t>(chain.numAxes()));

    std::int64_t chunks = 1;
    for (int a = 0; a < chain.numAxes(); ++a) {
        const auto idx = static_cast<std::size_t>(a);
        ASSERT_GE(plan.parallelGrain[idx], 1);
        if (plan.parallelGrain[idx] > 1) {
            EXPECT_EQ(plan.concurrency[idx],
                      analysis::AxisConcurrency::Parallel)
                << "axis " << a;
        }
        if (plan.concurrency[idx] ==
                analysis::AxisConcurrency::Parallel &&
            chain.axes()[idx].extent > 1) {
            const std::int64_t blocks =
                ceilDiv(chain.axes()[idx].extent, plan.tiles[idx]);
            chunks *= ceilDiv(blocks, plan.parallelGrain[idx]);
        }
    }
    EXPECT_GE(chunks, 8);
}

} // namespace
} // namespace chimera::plan
