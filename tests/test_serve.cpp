/**
 * @file
 * Tests for the chimera-serve stack: wire protocol strictness, batch
 * grouping, single-flight planning, the bitwise batched == individual
 * execution contract, and an end-to-end daemon round trip over a real
 * Unix-domain socket.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "exec/gemm_chain_exec.hpp"
#include "serve/batcher.hpp"
#include "serve/planner_gate.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"

namespace chimera::serve {
namespace {

ir::GemmChainConfig
smallConfig(std::int64_t batch = 1,
            ir::Epilogue epilogue = ir::Epilogue::Relu)
{
    ir::GemmChainConfig cfg;
    cfg.batch = batch;
    cfg.m = 32;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 20;
    cfg.epilogue = epilogue;
    return cfg;
}

ExecuteRequest
makeRequest(std::uint64_t id, const ir::GemmChainConfig &config)
{
    ExecuteRequest request;
    request.id = id;
    request.config = config;
    request.a = Tensor(exec::gemmChainShapeA(config));
    request.b = Tensor(exec::gemmChainShapeB(config));
    request.d = Tensor(exec::gemmChainShapeD(config));
    fillPattern(request.a);
    fillPattern(request.b);
    fillPattern(request.d);
    return request;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ExecuteRequestRoundTrip)
{
    ir::GemmChainConfig cfg = smallConfig(3, ir::Epilogue::Softmax);
    cfg.l = cfg.m; // causal needs m == l
    cfg.softmaxScale = 0.125f;
    cfg.causalMask = true;
    const ExecuteRequest request = makeRequest(42, cfg);

    const Request decoded = decodeRequest(encodeExecuteRequest(request));
    EXPECT_EQ(decoded.type, MessageType::Execute);
    EXPECT_EQ(decoded.id, 42u);
    const ExecuteRequest &e = decoded.execute;
    EXPECT_EQ(e.config.batch, cfg.batch);
    EXPECT_EQ(e.config.m, cfg.m);
    EXPECT_EQ(e.config.n, cfg.n);
    EXPECT_EQ(e.config.k, cfg.k);
    EXPECT_EQ(e.config.l, cfg.l);
    EXPECT_EQ(e.config.epilogue, cfg.epilogue);
    EXPECT_EQ(e.config.softmaxScale, cfg.softmaxScale);
    EXPECT_TRUE(e.config.causalMask);
    ASSERT_EQ(e.a.numel(), request.a.numel());
    EXPECT_EQ(std::memcmp(e.a.data(), request.a.data(),
                          static_cast<std::size_t>(request.a.bytes())),
              0);
    EXPECT_EQ(std::memcmp(e.d.data(), request.d.data(),
                          static_cast<std::size_t>(request.d.bytes())),
              0);
}

TEST(ServeProtocol, ResponseRoundTrips)
{
    ExecuteResponse ok;
    ok.id = 7;
    ok.batchGroupSize = 3;
    ok.serverSeconds = 0.25;
    ok.e = Tensor({4, 5});
    fillPattern(ok.e);
    const Response decodedOk = decodeResponse(encodeExecuteResponse(ok));
    EXPECT_EQ(decodedOk.type, MessageType::Execute);
    EXPECT_EQ(decodedOk.id, 7u);
    EXPECT_EQ(decodedOk.status, Status::Ok);
    EXPECT_EQ(decodedOk.execute.batchGroupSize, 3u);
    EXPECT_EQ(decodedOk.execute.serverSeconds, 0.25);
    EXPECT_EQ(std::memcmp(decodedOk.execute.e.data(), ok.e.data(),
                          static_cast<std::size_t>(ok.e.bytes())),
              0);

    const Response decodedErr = decodeResponse(
        encodeErrorResponse(MessageType::Execute, 9, "no feasible plan"));
    EXPECT_EQ(decodedErr.status, Status::Error);
    EXPECT_EQ(decodedErr.id, 9u);
    EXPECT_EQ(decodedErr.error, "no feasible plan");

    const Response stats =
        decodeResponse(encodeStatsResponse(3, "requests: 5\n"));
    EXPECT_EQ(stats.type, MessageType::Stats);
    EXPECT_EQ(stats.statsText, "requests: 5\n");

    const Response bye = decodeResponse(encodeShutdownResponse(4));
    EXPECT_EQ(bye.type, MessageType::Shutdown);
    EXPECT_EQ(bye.id, 4u);

    EXPECT_EQ(decodeRequest(encodeStatsRequest(11)).type,
              MessageType::Stats);
    EXPECT_EQ(decodeRequest(encodeShutdownRequest(12)).type,
              MessageType::Shutdown);
}

TEST(ServeProtocol, EveryTruncationIsRejected)
{
    const std::string payload =
        encodeExecuteRequest(makeRequest(1, smallConfig()));
    for (std::size_t len = 0; len < payload.size(); ++len) {
        EXPECT_THROW((void)decodeRequest(payload.substr(0, len)), Error)
            << "prefix of length " << len << " decoded";
    }
    EXPECT_THROW((void)decodeRequest(payload + '\0'), Error)
        << "trailing byte accepted";
}

TEST(ServeProtocol, BadHeaderFieldsRejected)
{
    const std::string good =
        encodeExecuteRequest(makeRequest(1, smallConfig()));

    std::string badMagic = good;
    badMagic[0] = 'X';
    EXPECT_THROW((void)decodeRequest(badMagic), Error);

    // A response magic on the request path is equally dead.
    EXPECT_THROW((void)decodeRequest(encodeShutdownResponse(1)), Error);
    EXPECT_THROW((void)decodeResponse(encodeShutdownRequest(1)), Error);

    std::string badVersion = good;
    badVersion[4] = 0x7f;
    EXPECT_THROW((void)decodeRequest(badVersion), Error);

    std::string badType = good;
    badType[6] = 0x7f;
    EXPECT_THROW((void)decodeRequest(badType), Error);
}

TEST(ServeProtocol, PeekRequestHeaderBestEffort)
{
    const std::string good =
        encodeExecuteRequest(makeRequest(77, smallConfig()));
    MessageType type = MessageType::Shutdown;
    std::uint64_t id = 0;
    EXPECT_TRUE(peekRequestHeader(good, type, id));
    EXPECT_EQ(type, MessageType::Execute);
    EXPECT_EQ(id, 77u);

    // A corrupt body does not stop the header from peeking: this is
    // what lets the daemon echo the request id on decode errors.
    std::string badBody = good;
    badBody[56] = 9; // unknown epilogue code
    EXPECT_THROW((void)decodeRequest(badBody), Error);
    MessageType bodyType = MessageType::Shutdown;
    std::uint64_t bodyId = 0;
    EXPECT_TRUE(peekRequestHeader(badBody, bodyType, bodyId));
    EXPECT_EQ(bodyType, MessageType::Execute);
    EXPECT_EQ(bodyId, 77u);

    std::string badMagic = good;
    badMagic[0] = 'X';
    EXPECT_FALSE(peekRequestHeader(badMagic, type, id));
    std::string badVersion = good;
    badVersion[4] = 0x7f;
    EXPECT_FALSE(peekRequestHeader(badVersion, type, id));
    std::string badType = good;
    badType[6] = 0x7f;
    EXPECT_FALSE(peekRequestHeader(badType, type, id));
    EXPECT_FALSE(peekRequestHeader("short", type, id));
}

#ifdef __unix__

TEST(ServeProtocol, FramePrefixIsLittleEndianOnTheWire)
{
    // A pipe, not a socket: also exercises the write() fallback behind
    // writeFrame's MSG_NOSIGNAL send path.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string payload = encodeStatsRequest(5);
    writeFrame(fds[1], payload);

    unsigned char prefix[4];
    ASSERT_EQ(::read(fds[0], prefix, sizeof prefix),
              static_cast<ssize_t>(sizeof prefix));
    const std::uint32_t length =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    EXPECT_EQ(length, payload.size())
        << "length prefix must be little-endian like the payload";

    std::string body(payload.size(), '\0');
    ASSERT_EQ(::read(fds[0], body.data(), body.size()),
              static_cast<ssize_t>(body.size()));
    EXPECT_EQ(body, payload);
    ::close(fds[1]);
    EXPECT_FALSE(readFrame(fds[0]).has_value());
    ::close(fds[0]);
}

#endif // __unix__

TEST(ServeProtocol, InvalidConfigRejected)
{
    const std::string good =
        encodeExecuteRequest(makeRequest(1, smallConfig()));

    std::string zeroM = good;
    std::memset(&zeroM[24], 0, 8); // m is the second i64 after the header
    EXPECT_THROW((void)decodeRequest(zeroM), Error);

    std::string badEpilogue = good;
    badEpilogue[56] = 9;
    EXPECT_THROW((void)decodeRequest(badEpilogue), Error);

    std::string causalNoSoftmax = good; // epilogue stays Relu
    causalNoSoftmax[57] = 1;
    EXPECT_THROW((void)decodeRequest(causalNoSoftmax), Error);

    ir::GemmChainConfig oversized = smallConfig();
    oversized.k = kMaxExtent + 1;
    EXPECT_THROW(validateExecuteConfig(oversized), Error);
    ir::GemmChainConfig negative = smallConfig();
    negative.batch = 0;
    EXPECT_THROW(validateExecuteConfig(negative), Error);
}

// ----------------------------------------------------------------- batcher

ServeJob
jobOf(std::uint64_t id, const ir::GemmChainConfig &config)
{
    ServeJob job;
    job.request = makeRequest(id, config);
    job.complete = [](ExecuteResponse &&) {};
    return job;
}

std::vector<std::vector<std::uint64_t>>
idsOf(const std::vector<std::vector<ServeJob>> &groups)
{
    std::vector<std::vector<std::uint64_t>> ids;
    for (const auto &group : groups) {
        ids.emplace_back();
        for (const ServeJob &job : group) {
            ids.back().push_back(job.request.id);
        }
    }
    return ids;
}

TEST(ServeBatcher, KeyIgnoresBatchCountOnly)
{
    const ir::GemmChainConfig one = smallConfig(1);
    const ir::GemmChainConfig many = smallConfig(5);
    EXPECT_EQ(compatibilityKey(one), compatibilityKey(many));

    ir::GemmChainConfig scaled = smallConfig(1, ir::Epilogue::Softmax);
    ir::GemmChainConfig rescaled = scaled;
    rescaled.softmaxScale = scaled.softmaxScale + 1e-7f;
    EXPECT_NE(compatibilityKey(scaled), compatibilityKey(rescaled))
        << "softmax scale must compare by bit pattern";

    ir::GemmChainConfig otherShape = smallConfig(1);
    otherShape.n += 8;
    EXPECT_NE(compatibilityKey(one), compatibilityKey(otherShape));
}

TEST(ServeBatcher, GroupsByClassInArrivalOrder)
{
    const ir::GemmChainConfig classA = smallConfig();
    ir::GemmChainConfig classB = smallConfig();
    classB.n += 8;

    std::deque<ServeJob> jobs;
    jobs.push_back(jobOf(1, classA));
    jobs.push_back(jobOf(2, classA));
    jobs.push_back(jobOf(3, classB));
    jobs.push_back(jobOf(4, classA));
    jobs.push_back(jobOf(5, classB));
    jobs.push_back(jobOf(6, classA));

    const auto ids = idsOf(groupCompatible(std::move(jobs), 2));
    const std::vector<std::vector<std::uint64_t>> expected = {
        {1, 2}, {3, 5}, {4, 6}};
    EXPECT_EQ(ids, expected)
        << "classes coalesce across interleaving, close at the cap";
}

TEST(ServeBatcher, MultiSliceAndOversizedRequests)
{
    const ir::GemmChainConfig classA = smallConfig();

    std::deque<ServeJob> jobs;
    jobs.push_back(jobOf(1, smallConfig(3))); // 3 slices
    jobs.push_back(jobOf(2, classA)); // +1 -> 4, group full
    jobs.push_back(jobOf(3, classA));
    const auto ids = idsOf(groupCompatible(std::move(jobs), 4));
    const std::vector<std::vector<std::uint64_t>> expected = {{1, 2}, {3}};
    EXPECT_EQ(ids, expected);

    // A single request larger than the cap still executes, alone.
    std::deque<ServeJob> big;
    big.push_back(jobOf(7, smallConfig(9)));
    big.push_back(jobOf(8, classA));
    const auto bigIds = idsOf(groupCompatible(std::move(big), 4));
    const std::vector<std::vector<std::uint64_t>> bigExpected = {{7}, {8}};
    EXPECT_EQ(bigIds, bigExpected);
}

TEST(ServeBatcher, NoBatchingMeansSingletons)
{
    std::deque<ServeJob> jobs;
    jobs.push_back(jobOf(1, smallConfig()));
    jobs.push_back(jobOf(2, smallConfig()));
    const auto ids = idsOf(groupCompatible(std::move(jobs), 1));
    const std::vector<std::vector<std::uint64_t>> expected = {{1}, {2}};
    EXPECT_EQ(ids, expected);
}

TEST(ServeBatcher, ThrowingCompleteMidScatterFailsOnlySuffix)
{
    PlannerGateOptions gateOptions;
    gateOptions.cacheDir = "-";
    PlannerGate gate(gateOptions);
    const exec::ComputeEngine engine = exec::ComputeEngine::best();

    // Three compatible jobs execute as one batched group; the middle
    // one's complete callback throws (a stand-in for any mid-scatter
    // failure). The contract: every complete runs exactly once — the
    // already-delivered prefix must not be re-completed as an error.
    std::vector<ServeJob> group;
    group.push_back(jobOf(1, smallConfig()));
    group.push_back(jobOf(2, smallConfig()));
    group.push_back(jobOf(3, smallConfig()));
    int calls1 = 0;
    int calls2 = 0;
    int calls3 = 0;
    Status status1 = Status::Error;
    Status status3 = Status::Ok;
    group[0].complete = [&](ExecuteResponse &&response) {
        ++calls1;
        status1 = response.status;
    };
    group[1].complete = [&](ExecuteResponse &&) {
        ++calls2;
        throw std::runtime_error("client vanished");
    };
    group[2].complete = [&](ExecuteResponse &&response) {
        ++calls3;
        status3 = response.status;
    };

    const GroupResult result = executeGroup(
        group, gate, engine, exec::ExecOptions{}, [] { return 0.0; });
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(calls1, 1) << "delivered job must not be completed again";
    EXPECT_EQ(status1, Status::Ok);
    EXPECT_EQ(calls2, 1) << "throwing complete must not be retried";
    EXPECT_EQ(calls3, 1);
    EXPECT_EQ(status3, Status::Error)
        << "jobs after the failure point get the group error";
}

TEST(ServeBatcher, BatchedExecutionBitwiseMatchesIndividual)
{
    const CheckResult first = runCheckReplay(builtinCheckWorkload(), 4);
    EXPECT_TRUE(first.identical);
    EXPECT_GT(first.requests, 0);
    EXPECT_LT(first.groups, first.requests) << "nothing coalesced";

    // Same workload, same grouping, same bits: the digest is stable.
    const CheckResult second = runCheckReplay(builtinCheckWorkload(), 4);
    EXPECT_EQ(first.digest, second.digest);

    // A different cap changes grouping but must not change outputs.
    const CheckResult unbatched = runCheckReplay(builtinCheckWorkload(), 1);
    EXPECT_TRUE(unbatched.identical);
}

// -------------------------------------------------------------------- gate

TEST(ServeGate, ColdStampedePlansOnce)
{
    PlannerGateOptions options;
    options.cacheDir = "-";
    PlannerGate gate(options);
    const ir::GemmChainConfig cfg = smallConfig();

    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::vector<plan::ExecutionPlan> plans(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            }
            plans[static_cast<std::size_t>(t)] = gate.canonicalPlan(cfg);
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }

    const PlannerGateStats stats = gate.stats();
    EXPECT_EQ(stats.flightsLed, 1) << "the planner must run exactly once";
    EXPECT_EQ(stats.cache.stores, 1);
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(plans[static_cast<std::size_t>(t)].perm, plans[0].perm);
        EXPECT_EQ(plans[static_cast<std::size_t>(t)].tiles,
                  plans[0].tiles);
    }
}

TEST(ServeGate, BatchedPlanPinsCanonicalSchedule)
{
    PlannerGateOptions options;
    options.cacheDir = "-";
    PlannerGate gate(options);
    const ir::GemmChainConfig cfg = smallConfig();

    const plan::ExecutionPlan canonical = gate.canonicalPlan(cfg);
    ir::GemmChainConfig batchedCfg = canonicalSlice(cfg);
    batchedCfg.batch = 4;
    const plan::ExecutionPlan batched = gate.batchedPlan(batchedCfg, 4);

    const ir::Chain sliceChain = ir::makeGemmChain(canonicalSlice(cfg));
    ir::GemmChainConfig named = canonicalSlice(cfg);
    named.batch = 4;
    named.name = "serve-batched";
    const ir::Chain batchedChain = ir::makeGemmChain(named);

    // b leads the order with tile 1...
    const ir::AxisId b = ir::axisIdByName(batchedChain, "b");
    ASSERT_FALSE(batched.perm.empty());
    EXPECT_EQ(batched.perm.front(), b);
    EXPECT_EQ(batched.tiles[static_cast<std::size_t>(b)], 1);

    // ...and every slice axis keeps its canonical tile and position.
    for (ir::AxisId axis = 0; axis < sliceChain.numAxes(); ++axis) {
        const std::string &name =
            sliceChain.axes()[static_cast<std::size_t>(axis)].name;
        const ir::AxisId mapped = ir::axisIdByName(batchedChain, name);
        EXPECT_EQ(batched.tiles[static_cast<std::size_t>(mapped)],
                  canonical.tiles[static_cast<std::size_t>(axis)])
            << "tile of axis " << name;
    }
    for (std::size_t i = 0; i < canonical.perm.size(); ++i) {
        const std::string &name =
            sliceChain
                .axes()[static_cast<std::size_t>(canonical.perm[i])]
                .name;
        EXPECT_EQ(batched.perm[i + 1],
                  ir::axisIdByName(batchedChain, name))
            << "order position " << i;
    }
    EXPECT_EQ(gate.stats().derivedPlans, 1);
}

TEST(ServeGate, InfeasibleCapacityThrows)
{
    PlannerGateOptions options;
    options.cacheDir = "-";
    options.capacityBytes = 1.0; // nothing fits
    PlannerGate gate(options);
    EXPECT_THROW((void)gate.canonicalPlan(smallConfig()), Error);
}

// ------------------------------------------------------------------ daemon

#ifdef __unix__

int
connectTo(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << "connect to " << path << ": " << std::strerror(errno);
    return fd;
}

std::string
socketPathFor(const std::string &name)
{
    // Short absolute path: sun_path caps at ~108 bytes.
    return "/tmp/chimera-test-" + name + "-" +
           std::to_string(::getpid()) + ".sock";
}

std::string
statsValue(const std::string &text, const std::string &key)
{
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind(key + ": ", 0) == 0) {
            return line.substr(key.size() + 2);
        }
    }
    return "";
}

TEST(ServeDaemon, EndToEndExecuteStatsShutdown)
{
    ServerOptions options;
    options.socketPath = socketPathFor("e2e");
    options.cacheDir = "-";
    options.executors = 2;
    options.maxBatch = 4;
    options.batchWindowMicros = 500;
    Server server(options);
    server.start();

    const int fd = connectTo(options.socketPath);
    const ExecuteRequest r1 = makeRequest(1, smallConfig());
    const ExecuteRequest r2 = makeRequest(2, smallConfig());
    writeFrame(fd, encodeExecuteRequest(r1));
    writeFrame(fd, encodeExecuteRequest(r2));

    // What the daemon must return, bit for bit: the canonical-plan
    // execution of each request (computed locally through the same
    // serve stack).
    PlannerGateOptions gateOptions;
    gateOptions.cacheDir = "-";
    PlannerGate gate(gateOptions);
    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    Tensor expected1, expected2;
    for (const ExecuteRequest *request : {&r1, &r2}) {
        std::vector<ServeJob> group(1);
        group[0].request = *request;
        Tensor *out = request->id == 1 ? &expected1 : &expected2;
        group[0].complete = [out](ExecuteResponse &&response) {
            *out = std::move(response.e);
        };
        const GroupResult result = executeGroup(
            group, gate, engine, exec::ExecOptions{}, [] { return 0.0; });
        ASSERT_TRUE(result.ok) << result.error;
    }

    bool saw1 = false;
    bool saw2 = false;
    for (int i = 0; i < 2; ++i) {
        std::optional<std::string> payload = readFrame(fd);
        ASSERT_TRUE(payload.has_value());
        const Response response = decodeResponse(*payload);
        ASSERT_EQ(response.status, Status::Ok) << response.error;
        const Tensor &expected =
            response.id == 1 ? expected1 : expected2;
        (response.id == 1 ? saw1 : saw2) = true;
        ASSERT_EQ(response.execute.e.numel(), expected.numel());
        EXPECT_EQ(std::memcmp(response.execute.e.data(), expected.data(),
                              static_cast<std::size_t>(expected.bytes())),
                  0)
            << "daemon output differs from local canonical execution";
        EXPECT_GE(response.execute.batchGroupSize, 1u);
    }
    EXPECT_TRUE(saw1 && saw2);

    writeFrame(fd, encodeStatsRequest(50));
    std::optional<std::string> statsPayload = readFrame(fd);
    ASSERT_TRUE(statsPayload.has_value());
    const Response stats = decodeResponse(*statsPayload);
    ASSERT_EQ(stats.type, MessageType::Stats);
    EXPECT_EQ(statsValue(stats.statsText, "requests"), "2");
    EXPECT_EQ(statsValue(stats.statsText, "protocol-errors"), "0");

    writeFrame(fd, encodeShutdownRequest(51));
    std::optional<std::string> ack = readFrame(fd);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(decodeResponse(*ack).type, MessageType::Shutdown);
    server.wait();
    server.stop();
    ::close(fd);
    EXPECT_FALSE(std::ifstream(options.socketPath).good())
        << "socket file must be unlinked on shutdown";
}

TEST(ServeDaemon, MalformedPayloadRejectedConnectionSurvives)
{
    ServerOptions options;
    options.socketPath = socketPathFor("malformed");
    options.cacheDir = "-";
    Server server(options);
    server.start();

    const int fd = connectTo(options.socketPath);
    std::string bad = encodeExecuteRequest(makeRequest(1, smallConfig()));
    bad[56] = 9; // unknown epilogue code
    writeFrame(fd, bad);

    std::optional<std::string> payload = readFrame(fd);
    ASSERT_TRUE(payload.has_value());
    const Response rejection = decodeResponse(*payload);
    EXPECT_EQ(rejection.status, Status::Error);
    EXPECT_FALSE(rejection.error.empty());
    EXPECT_EQ(rejection.type, MessageType::Execute);
    EXPECT_EQ(rejection.id, 1u)
        << "the error must echo the request id from the parsed header";

    // The same connection still serves well-formed traffic.
    writeFrame(fd, encodeExecuteRequest(makeRequest(2, smallConfig())));
    payload = readFrame(fd);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(decodeResponse(*payload).status, Status::Ok);

    writeFrame(fd, encodeStatsRequest(3));
    payload = readFrame(fd);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(statsValue(decodeResponse(*payload).statsText,
                         "protocol-errors"),
              "1");
    ::close(fd);
    server.stop();
}

TEST(ServeDaemon, HalfClosedClientStillGetsItsResponses)
{
    ServerOptions options;
    options.socketPath = socketPathFor("halfclose");
    options.cacheDir = "-";
    options.executors = 2;
    Server server(options);
    server.start();

    // The batch-client pattern: send everything, close the send side,
    // then collect. The daemon must keep the connection alive until
    // every in-flight response has been written, even though its
    // reader sees EOF immediately.
    const int fd = connectTo(options.socketPath);
    constexpr int kRequests = 3;
    for (std::uint64_t i = 1; i <= kRequests; ++i) {
        writeFrame(fd, encodeExecuteRequest(makeRequest(i, smallConfig())));
    }
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

    std::set<std::uint64_t> ids;
    for (int i = 0; i < kRequests; ++i) {
        std::optional<std::string> payload = readFrame(fd);
        ASSERT_TRUE(payload.has_value())
            << "response " << i << " lost after client half-close";
        const Response response = decodeResponse(*payload);
        EXPECT_EQ(response.status, Status::Ok) << response.error;
        ids.insert(response.id);
    }
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));
    EXPECT_FALSE(readFrame(fd).has_value())
        << "the daemon should close the drained connection cleanly";
    ::close(fd);
    server.stop();
}

TEST(ServeDaemon, ColdStampedePlansOnceAcrossConnections)
{
    ServerOptions options;
    options.socketPath = socketPathFor("stampede");
    options.cacheDir = "-";
    options.batching = false; // one group per request: max planner load
    options.executors = 4;
    Server server(options);
    server.start();

    // Eight connections fire one identical cold request each, as close
    // to simultaneously as threads allow.
    constexpr int kClients = 8;
    std::atomic<int> ready{0};
    std::vector<std::thread> clients;
    std::atomic<int> okResponses{0};
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            const int fd = connectTo(options.socketPath);
            const std::string payload = encodeExecuteRequest(
                makeRequest(static_cast<std::uint64_t>(c) + 1,
                            smallConfig()));
            ready.fetch_add(1);
            while (ready.load() < kClients) {
            }
            writeFrame(fd, payload);
            if (std::optional<std::string> response = readFrame(fd)) {
                if (decodeResponse(*response).status == Status::Ok) {
                    okResponses.fetch_add(1);
                }
            }
            ::close(fd);
        });
    }
    for (std::thread &t : clients) {
        t.join();
    }
    EXPECT_EQ(okResponses.load(), kClients);

    const int fd = connectTo(options.socketPath);
    writeFrame(fd, encodeStatsRequest(99));
    std::optional<std::string> payload = readFrame(fd);
    ASSERT_TRUE(payload.has_value());
    const std::string text = decodeResponse(*payload).statsText;
    EXPECT_EQ(statsValue(text, "plans-led"), "1")
        << "eight concurrent cold requests must plan exactly once:\n"
        << text;
    EXPECT_EQ(statsValue(text, "requests"), "8");
    ::close(fd);
    server.stop();
}

TEST(ServeDaemon, StatsTextHammeredUnderTraffic)
{
    // The stats path (statsText/stats/metricsJson) runs concurrently
    // with readers, executors, and planning flights. Every counter it
    // reads — including the gate's flightsLed/flightsJoined, which
    // used to be plain ints — must be an atomic, or TSan flags this
    // test. Hammer the snapshots from several threads while clients
    // drive real traffic.
    ServerOptions options;
    options.socketPath = socketPathFor("statshammer");
    options.cacheDir = "-";
    options.executors = 2;
    Server server(options);
    server.start();

    std::atomic<bool> stop{false};
    constexpr int kHammerThreads = 3;
    std::vector<std::thread> hammers;
    std::atomic<std::int64_t> snapshots{0};
    for (int t = 0; t < kHammerThreads; ++t) {
        hammers.emplace_back([&] {
            while (!stop.load()) {
                const std::string text = server.statsText();
                EXPECT_FALSE(statsValue(text, "stats-version").empty());
                (void)server.stats();
                (void)server.metricsJson();
                snapshots.fetch_add(1);
            }
        });
    }

    constexpr int kClients = 4;
    constexpr int kPerClient = 6;
    std::atomic<int> okResponses{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            const int fd = connectTo(options.socketPath);
            for (int i = 0; i < kPerClient; ++i) {
                const auto id = static_cast<std::uint64_t>(
                    c * kPerClient + i + 1);
                writeFrame(fd,
                           encodeExecuteRequest(
                               makeRequest(id, smallConfig())));
                if (std::optional<std::string> response = readFrame(fd)) {
                    if (decodeResponse(*response).status == Status::Ok) {
                        okResponses.fetch_add(1);
                    }
                }
            }
            ::close(fd);
        });
    }
    for (std::thread &t : clients) {
        t.join();
    }
    stop.store(true);
    for (std::thread &t : hammers) {
        t.join();
    }
    EXPECT_EQ(okResponses.load(), kClients * kPerClient);
    EXPECT_GT(snapshots.load(), 0);

    const std::string text = server.statsText();
    EXPECT_EQ(statsValue(text, "requests"),
              std::to_string(kClients * kPerClient));
    server.stop();
}

TEST(ServeDaemon, StatsVersionTwoExposesLatencyHistogram)
{
    ServerOptions options;
    options.socketPath = socketPathFor("statsv2");
    options.cacheDir = "-";
    Server server(options);
    server.start();

    const int fd = connectTo(options.socketPath);
    constexpr int kRequests = 5;
    for (std::uint64_t i = 1; i <= kRequests; ++i) {
        writeFrame(fd, encodeExecuteRequest(makeRequest(i, smallConfig())));
        std::optional<std::string> payload = readFrame(fd);
        ASSERT_TRUE(payload.has_value());
        ASSERT_EQ(decodeResponse(*payload).status, Status::Ok);
    }

    writeFrame(fd, encodeStatsRequest(77));
    std::optional<std::string> payload = readFrame(fd);
    ASSERT_TRUE(payload.has_value());
    const std::string text = decodeResponse(*payload).statsText;
    ::close(fd);
    server.stop();

    EXPECT_EQ(statsValue(text, "stats-version"), "2");
    EXPECT_EQ(statsValue(text, "latency-count"),
              std::to_string(kRequests));
    // Every percentile key must be present and ordered: p50 <= p99 <=
    // max, all positive once requests have completed.
    const auto seconds = [&](const char *key) {
        const std::string value = statsValue(text, key);
        EXPECT_FALSE(value.empty()) << key << " missing from:\n" << text;
        return std::atof(value.c_str());
    };
    const double p50 = seconds("latency-p50-seconds");
    const double p90 = seconds("latency-p90-seconds");
    const double p99 = seconds("latency-p99-seconds");
    const double p999 = seconds("latency-p999-seconds");
    const double mean = seconds("latency-mean-seconds");
    const double max = seconds("latency-max-seconds");
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(p999, max * (1.0 + 1.0 / 32.0) + 1e-9);
    EXPECT_GT(mean, 0.0);
    EXPECT_LE(mean, max + 1e-9);

    // The batch-size histogram rides along, in raw slices.
    EXPECT_EQ(statsValue(text, "batch-slices-count"),
              std::to_string(kRequests));
    EXPECT_FALSE(statsValue(text, "batch-slices-p50").empty());
    EXPECT_FALSE(statsValue(text, "batch-slices-max").empty());

    // metricsJson merges the per-server registry with the global one:
    // the serve histogram and the planner counters share one document.
    const std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"chimera.serve.latency_seconds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"chimera.serve.requests\": 5"),
              std::string::npos);
    EXPECT_NE(json.find("\"chimera.plan.planned\""), std::string::npos);
}

#endif // __unix__

} // namespace
} // namespace chimera::serve
