/**
 * @file
 * Tests for the order-equivalence analyzer and the certified search
 * pipeline: exact pruning must be bitwise-indistinguishable from
 * exhaustive enumeration (the property sweep runs randomized chains at
 * 1/2/8 planner threads), the incremental prefix bound must equal the
 * from-scratch bound, the `search:` line must round-trip and resist
 * tampering (PL15), beam mode must honor its optimality-gap bound, and
 * the plan cache must treat beam as a different planning contract
 * while the exact modes share fingerprints.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/order_equivalence.hpp"
#include "exec/constraints.hpp"
#include "exec/gemm_chain3_exec.hpp"
#include "ir/builders.hpp"
#include "kernels/micro_kernel.hpp"
#include "plan/plan_cache.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "verify/plan_verifier.hpp"
#include "verify/search_verifier.hpp"

namespace chimera {
namespace {

namespace fs = std::filesystem;

const kernels::MicroKernel &
testKernel()
{
    return kernels::MicroKernelRegistry::instance().select(
        detectSimdTier());
}

/** A random two-GEMM chain (fused length 2, with softmax 3). */
ir::Chain
randomGemmChain(Rng &rng, bool softmax)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 1 + static_cast<std::int64_t>(rng.below(2));
    cfg.m = 16 + static_cast<std::int64_t>(rng.below(6)) * 16;
    cfg.n = 16 + static_cast<std::int64_t>(rng.below(6)) * 16;
    cfg.k = 8 + static_cast<std::int64_t>(rng.below(6)) * 8;
    cfg.l = 16 + static_cast<std::int64_t>(rng.below(6)) * 16;
    cfg.epilogue = softmax ? ir::Epilogue::Softmax : ir::Epilogue::None;
    cfg.name = "sweep-gemm2";
    return ir::makeGemmChain(cfg);
}

/** A random three-GEMM chain (fused length 3, with softmax 4). */
ir::Chain
randomGemmChain3(Rng &rng, bool softmax)
{
    ir::GemmChain3Config cfg;
    cfg.batch = 1 + static_cast<std::int64_t>(rng.below(2));
    cfg.m = 16 + static_cast<std::int64_t>(rng.below(4)) * 16;
    cfg.n = 16 + static_cast<std::int64_t>(rng.below(4)) * 16;
    cfg.k = 8 + static_cast<std::int64_t>(rng.below(4)) * 8;
    cfg.l = 16 + static_cast<std::int64_t>(rng.below(4)) * 8;
    cfg.p = 8 + static_cast<std::int64_t>(rng.below(3)) * 4;
    cfg.epilogue = softmax ? ir::Epilogue::Softmax : ir::Epilogue::None;
    cfg.name = "sweep-gemm3";
    return ir::makeGemmChain3(cfg);
}

plan::PlannerOptions
sweepOptions(const ir::Chain &chain, bool chain3)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = 96.0 * 1024;
    options.constraints =
        chain3 ? exec::gemmChain3Constraints(chain, testKernel())
               : exec::cpuChainConstraints(chain, testKernel());
    return options;
}

/** Bitwise plan equality: the exact-pruning contract. */
void
expectSamePlan(const plan::ExecutionPlan &a, const plan::ExecutionPlan &b,
               const std::string &what)
{
    EXPECT_EQ(a.perm, b.perm) << what;
    EXPECT_EQ(a.tiles, b.tiles) << what;
    EXPECT_DOUBLE_EQ(a.predictedVolumeBytes, b.predictedVolumeBytes)
        << what;
    EXPECT_EQ(a.memUsageBytes, b.memUsageBytes) << what;
}

TEST(PropertySweep, ExactPruningMatchesExhaustiveAtEveryThreadCount)
{
    Rng rng(2026);
    for (int round = 0; round < 6; ++round) {
        const bool chain3 = round >= 2;
        const bool softmax = (round & 1) != 0;
        const ir::Chain chain = chain3 ? randomGemmChain3(rng, softmax)
                                       : randomGemmChain(rng, softmax);
        plan::PlannerOptions options = sweepOptions(chain, chain3);

        options.prune = analysis::PruneMode::None;
        options.threads = 1;
        const plan::ExecutionPlan exhaustive =
            plan::planChain(chain, options);

        for (const analysis::PruneMode mode :
             {analysis::PruneMode::Symmetry,
              analysis::PruneMode::Dominance}) {
            for (const int threads : {1, 2, 8}) {
                options.prune = mode;
                options.threads = threads;
                const plan::ExecutionPlan pruned =
                    plan::planChain(chain, options);
                expectSamePlan(
                    pruned, exhaustive,
                    std::string("round ") + std::to_string(round) +
                        " mode " + analysis::pruneModeName(mode) +
                        " threads " + std::to_string(threads));
                EXPECT_LE(pruned.search.solved, exhaustive.search.solved);
                EXPECT_EQ(pruned.search.enumerated +
                              (pruned.search.truncated ? 0 : 0),
                          exhaustive.search.enumerated);
            }
        }
    }
}

TEST(OrderAnalyzer, IncrementalBoundEqualsScratchBound)
{
    ir::GemmChain3Config cfg;
    cfg.batch = 2;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    cfg.p = 20;
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    plan::PlannerOptions options = sweepOptions(chain, true);
    const solver::TileConstraints constraints =
        plan::searchConstraints(chain, options);
    analysis::OrderAnalyzer analyzer(
        chain, constraints, options.memCapacityBytes, options.model);
    const std::vector<std::vector<ir::AxisId>> candidates =
        plan::enumerateCandidateOrders(chain, options);
    ASSERT_GT(candidates.size(), 100u); // 5! reorderable axes and up
    for (const std::vector<ir::AxisId> &perm : candidates) {
        EXPECT_DOUBLE_EQ(analyzer.lowerBoundIncremental(perm),
                         analyzer.lowerBound(perm));
    }
}

TEST(OrderAnalyzer, SearchStatsCountsAreConsistent)
{
    Rng rng(7);
    const ir::Chain chain = randomGemmChain(rng, false);
    plan::PlannerOptions options = sweepOptions(chain, false);
    for (const analysis::PruneMode mode :
         {analysis::PruneMode::None, analysis::PruneMode::Symmetry,
          analysis::PruneMode::Dominance, analysis::PruneMode::Beam}) {
        options.prune = mode;
        const plan::ExecutionPlan plan = plan::planChain(chain, options);
        const analysis::SearchStats &s = plan.search;
        ASSERT_TRUE(s.present);
        EXPECT_EQ(s.mode, mode);
        EXPECT_EQ(s.enumerated, s.filtered + s.symmetryPruned +
                                    s.dominancePruned + s.beamPruned +
                                    s.solved);
        EXPECT_GE(s.solved, 1);
        const verify::Report report =
            verify::verifySearchStats(chain, plan);
        EXPECT_FALSE(report.hasErrors()) << report.render();
    }
}

TEST(SearchReplay, CleanOnFixtureChains)
{
    // replaySearch runs the OE01-OE04 battery: class members solve
    // like their representatives, bounds hold on solved orders, the
    // incremental bound matches, and exact argmin is preserved.
    Rng rng(11);
    for (const bool chain3 : {false, true}) {
        const ir::Chain chain = chain3 ? randomGemmChain3(rng, true)
                                       : randomGemmChain(rng, false);
        plan::PlannerOptions options = sweepOptions(chain, chain3);
        options.prune = analysis::PruneMode::Dominance;
        const verify::SearchReplay replay =
            verify::replaySearch(chain, options);
        EXPECT_FALSE(replay.report.hasErrors())
            << replay.report.render();
        expectSamePlan(replay.pruned, replay.exhaustive, "replay");
    }
}

TEST(BeamSearch, GapBoundCoversTheExhaustiveOptimum)
{
    Rng rng(13);
    const ir::Chain chain = randomGemmChain3(rng, false);
    plan::PlannerOptions options = sweepOptions(chain, true);
    options.prune = analysis::PruneMode::Beam;
    options.beamWidth = 2;
    const verify::SearchReplay replay =
        verify::replaySearch(chain, options);
    EXPECT_FALSE(replay.report.hasErrors()) << replay.report.render();
    EXPECT_GE(replay.pruned.search.gapBoundBytes, 0);
    // The certificate: exhaustive optimum >= beam volume - gap.
    EXPECT_GE(replay.exhaustive.predictedVolumeBytes,
              replay.pruned.predictedVolumeBytes -
                  static_cast<double>(replay.pruned.search.gapBoundBytes) -
                  0.5);
}

TEST(SearchSerialization, RoundTripPreservesStats)
{
    Rng rng(17);
    const ir::Chain chain = randomGemmChain(rng, false);
    plan::PlannerOptions options = sweepOptions(chain, false);
    options.prune = analysis::PruneMode::Dominance;
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    ASSERT_TRUE(plan.search.present);

    const std::string text = plan::serializePlan(chain, plan);
    EXPECT_NE(text.find("search: mode=dominance"), std::string::npos);

    const plan::ParsedPlanDoc doc = plan::parsePlanDocument(text);
    ASSERT_TRUE(doc.haveSearch);
    const analysis::SearchStats bound = plan::bindSearch(doc.search);
    EXPECT_EQ(bound.mode, plan.search.mode);
    EXPECT_EQ(bound.enumerated, plan.search.enumerated);
    EXPECT_EQ(bound.truncated, plan.search.truncated);
    EXPECT_EQ(bound.filtered, plan.search.filtered);
    EXPECT_EQ(bound.symmetryPruned, plan.search.symmetryPruned);
    EXPECT_EQ(bound.dominancePruned, plan.search.dominancePruned);
    EXPECT_EQ(bound.beamPruned, plan.search.beamPruned);
    EXPECT_EQ(bound.solved, plan.search.solved);
    EXPECT_EQ(bound.gapBoundBytes, plan.search.gapBoundBytes);
    EXPECT_EQ(bound.digest, plan.search.digest);

    const plan::ExecutionPlan loaded = plan::deserializePlan(chain, text);
    ASSERT_TRUE(loaded.search.present);
    const verify::Report report =
        verify::verifySearchStats(chain, loaded);
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

/** Replaces the digest on the `search:` line of @p text. */
std::string
tamperSearchDigest(std::string text)
{
    const std::size_t line = text.find("search: mode=");
    EXPECT_NE(line, std::string::npos);
    const std::size_t pos = text.find("digest=", line);
    EXPECT_NE(pos, std::string::npos);
    text.replace(pos + 7, 16, "deadbeefdeadbeef");
    return text;
}

TEST(SearchSerialization, TamperedDigestIsReportedAsPL15)
{
    Rng rng(19);
    const ir::Chain chain = randomGemmChain(rng, false);
    plan::PlannerOptions options = sweepOptions(chain, false);
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    const std::string text =
        tamperSearchDigest(plan::serializePlan(chain, plan));

    const plan::ParsedPlanDoc doc = plan::parsePlanDocument(text);
    const verify::Report report =
        verify::verifyPlanDocument(chain, doc, "", {});
    bool sawPl15 = false;
    for (const verify::Finding &finding : report.findings()) {
        sawPl15 = sawPl15 || finding.ruleId == "PL15";
    }
    EXPECT_TRUE(sawPl15) << report.render();
}

TEST(SearchSerialization, InconsistentCountsAreReportedAsPL15)
{
    Rng rng(23);
    const ir::Chain chain = randomGemmChain(rng, false);
    plan::PlannerOptions options = sweepOptions(chain, false);
    plan::ExecutionPlan plan = plan::planChain(chain, options);
    ASSERT_TRUE(plan.search.present);
    plan.search.solved += 1; // breaks the counts identity + digest
    const verify::Report report = verify::verifySearchStats(chain, plan);
    EXPECT_TRUE(report.hasErrors());
}

TEST(PlanCache, RejectsTamperedSearchLineAndReplans)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "search-tamper";
    const ir::Chain chain = ir::makeGemmChain(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;

    const fs::path dir =
        fs::path(::testing::TempDir()) / "chimera-search-cache-tamper";
    fs::remove_all(dir);
    {
        plan::PlanCache cache(dir.string());
        cache.store(chain, options, plan::planChain(chain, options));
    }
    fs::path entry;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".plan") {
            entry = e.path();
        }
    }
    ASSERT_FALSE(entry.empty());
    std::string text;
    {
        std::ifstream in(entry);
        text.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    text = tamperSearchDigest(text);
    {
        std::ofstream out(entry, std::ios::trunc);
        out << text;
    }

    plan::PlanCache reopened(dir.string());
    EXPECT_FALSE(reopened.lookup(chain, options).has_value());
    EXPECT_EQ(reopened.stats().rejectedPlans, 1);

    // The deployment path: a fresh planChain through the poisoned cache
    // silently replans and re-stores a valid entry.
    options.cache = &reopened;
    const plan::ExecutionPlan replanned = plan::planChain(chain, options);
    EXPECT_GT(replanned.candidatesExamined, 0);
    EXPECT_TRUE(replanned.search.present);
    EXPECT_TRUE(plan::planChain(chain, options).search.present);
    EXPECT_GE(reopened.stats().memoryHits + reopened.stats().diskHits, 1);
}

TEST(PlanCache, ExactModesShareFingerprintsBeamDoesNot)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 1;
    cfg.m = 64;
    cfg.n = 64;
    cfg.k = 32;
    cfg.l = 48;
    cfg.name = "search-fingerprint";
    const ir::Chain chain = ir::makeGemmChain(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 48.0 * 1024;
    plan::PlanCache cache(""); // memory-only
    options.cache = &cache;

    options.prune = analysis::PruneMode::Dominance;
    const plan::ExecutionPlan stored = plan::planChain(chain, options);
    EXPECT_GT(stored.candidatesExamined, 0);

    // Exact modes are excluded from the fingerprint: an exhaustive
    // lookup reuses the dominance-planned entry (they are provably the
    // same plan).
    options.prune = analysis::PruneMode::None;
    const plan::ExecutionPlan sharedHit = plan::planChain(chain, options);
    EXPECT_EQ(sharedHit.candidatesExamined, 0);
    expectSamePlan(sharedHit, stored, "exact-mode cache share");

    // Beam is a different planning contract (possibly suboptimal) and
    // must miss.
    options.prune = analysis::PruneMode::Beam;
    const plan::ExecutionPlan beamPlan = plan::planChain(chain, options);
    EXPECT_GT(beamPlan.candidatesExamined, 0);
}

TEST(SearchDigest, BindsModeAndCounts)
{
    Rng rng(29);
    const ir::Chain chain = randomGemmChain(rng, false);
    plan::PlannerOptions options = sweepOptions(chain, false);
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    analysis::SearchStats stats = plan.search;
    const std::string original =
        analysis::searchDigest(chain, plan.perm, plan.tiles, stats);
    EXPECT_EQ(original, stats.digest);
    stats.mode = analysis::PruneMode::None;
    EXPECT_NE(analysis::searchDigest(chain, plan.perm, plan.tiles, stats),
              original);
    stats = plan.search;
    stats.dominancePruned += 1;
    EXPECT_NE(analysis::searchDigest(chain, plan.perm, plan.tiles, stats),
              original);
}

} // namespace
} // namespace chimera
