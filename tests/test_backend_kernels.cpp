/**
 * @file
 * Tests for the emulated accelerator micro kernels of §V-B: the NPU
 * cube-unit mad semantics (fractal packing + six-loop compute) and the
 * GPU Tensor-Core mma tile kernel (2x2 fragment reuse).
 */

#include <gtest/gtest.h>

#include "kernels/mma_tile.hpp"
#include "kernels/npu_mad.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tensor/reference.hpp"

namespace chimera::kernels {
namespace {

TEST(NpuMad, PackUnpackRoundTrip)
{
    MadShape shape;
    shape.m1 = 2;
    shape.n1 = 2;
    shape.k1 = 1;
    shape.m2 = 4;
    shape.n2 = 4;
    shape.k2 = 4;

    Tensor a({8, 4});
    fillPattern(a);
    std::vector<float> packed(static_cast<std::size_t>(
        shape.m1 * shape.k1 * shape.m2 * shape.k2));
    packMadA(a.data(), 4, 8, 4, shape, packed.data());
    // Row r, depth d lives at [r/m2][d/k2][r%m2][d%k2].
    EXPECT_FLOAT_EQ(packed[0], a.at({0, 0}));
    EXPECT_FLOAT_EQ(
        packed[static_cast<std::size_t>((1 * shape.k1 + 0) * shape.m2 *
                                        shape.k2) +
               2 * static_cast<std::size_t>(shape.k2) + 3],
        a.at({4 + 2, 3}));
}

TEST(NpuMad, MadMatmulMatchesReference)
{
    for (auto [m, n, k] : {std::tuple<int, int, int>{32, 32, 32},
                           {24, 20, 12},
                           {7, 5, 3},
                           {33, 17, 9}}) {
        Tensor a({m, k}), b({k, n}), c({m, n}), expected({m, n});
        Rng rng(11);
        fillUniform(a, rng);
        fillUniform(b, rng);
        ref::gemm(a, b, expected);
        MadShape shape;
        shape.m1 = 2;
        shape.n1 = 2;
        shape.k1 = 2;
        shape.m2 = 8;
        shape.n2 = 8;
        shape.k2 = 8;
        madMatmul(a, b, c, shape);
        EXPECT_TRUE(allClose(c, expected, 1e-4f, 1e-4f))
            << m << "x" << n << "x" << k << " maxdiff "
            << maxAbsDiff(c, expected);
    }
}

TEST(NpuMad, ArithmeticIntensityFormula)
{
    // AI = M1*M2*N1*N2 / (M1*M2 + N1*N2), §V-B.
    MadShape shape;
    shape.m1 = 4;
    shape.n1 = 4;
    shape.m2 = 16;
    shape.n2 = 16;
    EXPECT_DOUBLE_EQ(madArithmeticIntensity(shape),
                     (4.0 * 16 * 4 * 16) / (4.0 * 16 + 4.0 * 16));
}

TEST(NpuMad, SelectShapeUsesLanesAndL0)
{
    // Ascend 910: 16 lanes, 64 KiB L0A/L0B.
    const MadShape shape = selectMadShape(16, 64 * 1024, 64 * 1024);
    EXPECT_EQ(shape.m2, 16);
    EXPECT_EQ(shape.n2, 16);
    EXPECT_EQ(shape.m1, shape.n1);
    // Packed A bytes must fit L0A; the next size up must not.
    const std::int64_t bytes = std::int64_t{4} * shape.m1 * shape.k1 *
                               shape.m2 * shape.k2;
    EXPECT_LE(bytes, 64 * 1024);
    EXPECT_GT(bytes + std::int64_t{4} * shape.k1 * shape.m2 * shape.k2,
              64 * 1024);
    // Larger M1 (with fixed lanes) raises AI toward M2 lanes' bound.
    MadShape small = shape;
    small.m1 = 1;
    small.n1 = 1;
    EXPECT_GT(madArithmeticIntensity(shape),
              madArithmeticIntensity(small));
}

TEST(NpuMad, RejectsBadParameters)
{
    EXPECT_THROW(selectMadShape(0, 1024, 1024), Error);
    EXPECT_THROW(selectMadShape(16, 0, 1024), Error);
}

TEST(MmaTile, SingleFragmentMatchesReference)
{
    Tensor a({16, 16}), b({16, 16}), c({16, 16}), expected({16, 16});
    Rng rng(5);
    fillUniform(a, rng);
    fillUniform(b, rng);
    c.zero();
    ref::gemm(a, b, expected);
    mmaSync(a.data(), b.data(), c.data());
    EXPECT_TRUE(allClose(c, expected, 1e-4f, 1e-4f));
}

TEST(MmaTile, NaiveAndTiledMatchReference)
{
    Tensor a({64, 32}), b({32, 64}), cNaive({64, 64}), cTiled({64, 64});
    Tensor expected({64, 64});
    Rng rng(6);
    fillUniform(a, rng);
    fillUniform(b, rng);
    ref::gemm(a, b, expected);
    mmaMatmulNaive(a, b, cNaive);
    mmaMatmulTiled(a, b, cTiled);
    EXPECT_TRUE(allClose(cNaive, expected, 1e-4f, 1e-4f));
    EXPECT_TRUE(allClose(cTiled, expected, 1e-4f, 1e-4f));
}

TEST(MmaTile, TilingDoublesFragmentReuse)
{
    // The §V-B point: the naive schedule issues 0.5 mma per fragment
    // load; the 2x2 tile doubles reuse to 1.0.
    Tensor a({64, 64}), b({64, 64}), c({64, 64});
    Rng rng(7);
    fillUniform(a, rng);
    fillUniform(b, rng);
    const MmaStats naive = mmaMatmulNaive(a, b, c);
    const MmaStats tiled = mmaMatmulTiled(a, b, c);
    EXPECT_DOUBLE_EQ(naive.opsPerLoad(), 0.5);
    EXPECT_DOUBLE_EQ(tiled.opsPerLoad(), 1.0);
    EXPECT_EQ(naive.mmaOps, tiled.mmaOps); // same math, fewer loads
}

TEST(MmaTile, AlignmentChecked)
{
    Tensor a({24, 16}), b({16, 16}), c({24, 16});
    EXPECT_THROW(mmaMatmulNaive(a, b, c), Error);
    Tensor a2({32, 16}), b2({16, 32}), c2({32, 32});
    EXPECT_THROW(mmaMatmulTiled(a2, b2, c2), Error); // needs 32-multiples
}

} // namespace
} // namespace chimera::kernels
