/**
 * @file
 * Concurrency and failure-mode stress tests for the persistent plan
 * cache.
 *
 * The headline regression: concurrent writers of the *same* fingerprint
 * used to share a single "<entry>.tmp" staging name, so writer 2 could
 * O_TRUNC the temp while writer 1 renamed it into place — after which
 * writer 2 kept writing into the already-published inode and readers
 * observed torn documents through the supposedly atomic
 * write-then-rename. With unique per-writer temp names the invariant
 * these tests enforce holds: a reader sees either no entry or one
 * complete, parseable v2 document, never a torn one.
 *
 * The threaded and forked stressors both store two *different-length*
 * legal plans under one fingerprint, because same-length contents make
 * the torn state unobservable (the final write pattern coincides).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "ir/builders.hpp"
#include "plan/plan_cache.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"

namespace chimera::plan {
namespace {

namespace fs = std::filesystem;

ir::Chain
chainUnderTest()
{
    ir::GemmChainConfig cfg;
    cfg.batch = 2;
    cfg.m = 64;
    cfg.n = 48;
    cfg.k = 32;
    cfg.l = 40;
    cfg.name = "stress-test";
    return ir::makeGemmChain(cfg);
}

PlannerOptions
optionsUnderTest()
{
    PlannerOptions options;
    options.memCapacityBytes = 64.0 * 1024;
    return options;
}

std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("chimera-cache-stress-" + name);
    fs::remove_all(dir);
    return dir.string();
}

/**
 * Two legal plans for the same (chain, options) key whose serialized
 * documents have different lengths: the planner's winner, and the same
 * (executable) order re-solved under a much tighter capacity — smaller
 * tiles, fewer digits, still legal under the roomier real options, so
 * a fresh cache's lookup-side audit serves either one. Both get stored
 * under the *same* fingerprint; the length difference is what makes a
 * torn write observable.
 */
std::pair<ExecutionPlan, ExecutionPlan>
twoPlanVariants(const ir::Chain &chain, const PlannerOptions &options)
{
    const ExecutionPlan best = planChain(chain, options);
    PlannerOptions tight = options;
    tight.memCapacityBytes = 8.0 * 1024;
    const ExecutionPlan alt = planFixedOrder(chain, best.perm, tight);
    return {best, alt};
}

std::string
rawFileContents(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The single entry file for @p fingerprint inside @p dir. */
fs::path
entryFile(const std::string &dir, const std::string &fingerprint)
{
    return fs::path(dir) / (fingerprint + ".plan");
}

TEST(PlanCacheStress, ConcurrentSameFingerprintWritersNeverTearTheEntry)
{
    const ir::Chain chain = chainUnderTest();
    const PlannerOptions options = optionsUnderTest();
    const std::string dir = freshDir("threads");
    const std::string fingerprint = planFingerprint(chain, options);
    const auto [planA, planB] = twoPlanVariants(chain, options);

    // Different serialized lengths are what make a torn write visible;
    // without this the stressor has no teeth.
    ASSERT_NE(serializePlan(chain, planA, fingerprint).size(),
              serializePlan(chain, planB, fingerprint).size());

    constexpr int kWriters = 4;
    constexpr int kIterations = 60;
    std::atomic<bool> start{false};
    std::atomic<int> tornReads{0};
    std::atomic<bool> done{false};

    // Each writer gets its own PlanCache (the daemon + CLI scenario:
    // several actors, one directory), all hammering one fingerprint.
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            PlanCache cache(dir);
            while (!start.load()) {
            }
            for (int i = 0; i < kIterations; ++i) {
                cache.store(chain, options,
                            ((w + i) % 2 == 0) ? planA : planB);
            }
        });
    }

    // Readers poll the raw entry file: any visible content must be a
    // complete v2 document for the fingerprint.
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            const fs::path path = entryFile(dir, fingerprint);
            while (!done.load()) {
                const std::string text = rawFileContents(path);
                if (text.empty()) {
                    continue; // not yet published (or mid-replace)
                }
                try {
                    (void)deserializePlan(chain, text, fingerprint);
                } catch (const Error &) {
                    tornReads.fetch_add(1);
                }
            }
        });
    }

    start.store(true);
    for (std::thread &t : writers) {
        t.join();
    }
    done.store(true);
    for (std::thread &t : readers) {
        t.join();
    }

    EXPECT_EQ(tornReads.load(), 0);

    // The settled entry parses clean and a fresh cache serves it.
    const std::string text =
        rawFileContents(entryFile(dir, fingerprint));
    ASSERT_FALSE(text.empty());
    EXPECT_NO_THROW((void)deserializePlan(chain, text, fingerprint));
    PlanCache fresh(dir);
    EXPECT_TRUE(fresh.lookup(chain, optionsUnderTest()).has_value());
    EXPECT_EQ(fresh.stats().corruptEntries, 0);
}

#ifdef __unix__
TEST(PlanCacheStress, ForkedWritersSameFingerprintLeaveParseableEntry)
{
    const ir::Chain chain = chainUnderTest();
    const PlannerOptions options = optionsUnderTest();
    const std::string dir = freshDir("forked");
    const std::string fingerprint = planFingerprint(chain, options);
    const auto [planA, planB] = twoPlanVariants(chain, options);

    constexpr int kProcesses = 4;
    constexpr int kIterations = 40;
    std::vector<pid_t> children;
    for (int p = 0; p < kProcesses; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: its own process, its own PlanCache, the shared
            // directory. Plans were built pre-fork; no planning here.
            PlanCache cache(dir);
            for (int i = 0; i < kIterations; ++i) {
                cache.store(chain, options,
                            ((p + i) % 2 == 0) ? planA : planB);
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    const std::string text =
        rawFileContents(entryFile(dir, fingerprint));
    ASSERT_FALSE(text.empty());
    EXPECT_NO_THROW((void)deserializePlan(chain, text, fingerprint));
    PlanCache fresh(dir);
    EXPECT_TRUE(fresh.lookup(chain, optionsUnderTest()).has_value());
    const PlanCacheStats stats = fresh.stats();
    EXPECT_EQ(stats.corruptEntries, 0);
    EXPECT_EQ(stats.diskHits, 1);
}
#endif // __unix__

TEST(PlanCacheStress, OpenSweepsStaleTempFilesKeepsFreshOnes)
{
    const std::string dir = freshDir("orphans");
    fs::create_directories(dir);

    const fs::path stale = fs::path(dir) / "abc123.plan.tmp.999.0";
    const fs::path fresh = fs::path(dir) / "def456.plan.tmp.1000.1";
    const fs::path entry = fs::path(dir) / "abc123.plan";
    std::ofstream(stale) << "half-written garbage";
    std::ofstream(fresh) << "possibly mid-write";
    std::ofstream(entry) << "chimera-plan v2\n";
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));

    PlanCache cache(dir);
    EXPECT_FALSE(fs::exists(stale)) << "stale temp must be swept";
    EXPECT_TRUE(fs::exists(fresh)) << "fresh temp may be a live writer";
    EXPECT_TRUE(fs::exists(entry)) << "entries are never swept";
}

TEST(PlanCacheStress, UnwritableDirectoryFailsOverToMemoryOnly)
{
    // A cache path whose parent is a regular file: create_directories
    // fails no matter the user's privileges (chmod tricks don't bind
    // as root, which is what CI containers run as).
    const std::string base = freshDir("unwritable");
    fs::create_directories(base);
    const fs::path blocker = fs::path(base) / "blocker";
    std::ofstream(blocker) << "not a directory";
    const std::string dir = (blocker / "cache").string();

    const ir::Chain chain = chainUnderTest();
    const PlannerOptions options = optionsUnderTest();
    const ExecutionPlan plan = planChain(chain, options);

    PlanCache cache(dir);
    // Both stores must survive; the warning fires once, inside the
    // first one (disableDisk latches).
    cache.store(chain, options, plan);
    cache.store(chain, options, plan);
    EXPECT_TRUE(cache.stats().diskDisabled);
    EXPECT_EQ(cache.stats().stores, 2);

    // The memory tier still serves the plan.
    const auto hit = cache.lookup(chain, optionsUnderTest());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->perm, plan.perm);
    EXPECT_EQ(cache.stats().memoryHits, 1);
}

TEST(PlanCacheStress, EmptyEnvVarMeansMemoryOnly)
{
    const char *old = std::getenv("CHIMERA_PLAN_CACHE");
    const std::string saved = old != nullptr ? old : "";
    const bool hadOld = old != nullptr;

    ::setenv("CHIMERA_PLAN_CACHE", "", 1);
    EXPECT_EQ(PlanCache::defaultDirectory(), "");

    PlanCache cache(PlanCache::defaultDirectory());
    const ir::Chain chain = chainUnderTest();
    const PlannerOptions options = optionsUnderTest();
    cache.store(chain, options, planChain(chain, options));
    EXPECT_FALSE(cache.stats().diskDisabled) << "memory-only is not a "
                                                "failure mode";
    EXPECT_TRUE(cache.lookup(chain, optionsUnderTest()).has_value());

    if (hadOld) {
        ::setenv("CHIMERA_PLAN_CACHE", saved.c_str(), 1);
    } else {
        ::unsetenv("CHIMERA_PLAN_CACHE");
    }
}

} // namespace
} // namespace chimera::plan
