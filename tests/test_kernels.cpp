/**
 * @file
 * Unit tests for the replaceable micro kernels: registry behaviour,
 * parameter selection (§V-B), packing, and block matmul correctness for
 * every registered implementation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "kernels/block_matmul.hpp"
#include "kernels/kernel_params.hpp"
#include "kernels/micro_kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tensor/reference.hpp"
#include "tensor/tensor.hpp"

namespace chimera::kernels {
namespace {

TEST(KernelParams, CascadeLakeChoiceMatchesPaper)
{
    // 32 ZMM registers -> (MI, NI, MII) = (6, 4, 2), 30 registers used.
    const CpuKernelParams params = selectCpuKernelParams(32);
    EXPECT_EQ(params.mi, 6);
    EXPECT_EQ(params.ni, 4);
    EXPECT_EQ(params.mii, 2);
    EXPECT_EQ(params.registersUsed, 30);
    EXPECT_NEAR(params.arithmeticIntensity, 2.4, 1e-9);
}

TEST(KernelParams, Avx2Choice)
{
    // 16 YMM registers -> (6, 2, 2): the classic 6x16 fp32 AVX2 tile.
    const CpuKernelParams params = selectCpuKernelParams(16);
    EXPECT_EQ(params.mi, 6);
    EXPECT_EQ(params.ni, 2);
    EXPECT_EQ(params.mii, 2);
    EXPECT_LE(params.registersUsed, 16);
}

TEST(KernelParams, AiFormula)
{
    // AI = MI*NI*KI / (KI*(MI+NI) + 2*MI*NI).
    EXPECT_DOUBLE_EQ(kernelArithmeticIntensity(6, 4, 24),
                     6.0 * 4 * 24 / (24.0 * 10 + 2 * 24));
    EXPECT_THROW(kernelArithmeticIntensity(0, 4, 24), Error);
}

TEST(KernelParams, BudgetAlwaysRespected)
{
    for (int regs : {8, 12, 16, 24, 32, 64}) {
        const CpuKernelParams params = selectCpuKernelParams(regs);
        EXPECT_LE(params.registersUsed, regs) << "regs " << regs;
        EXPECT_EQ(params.mi % params.mii, 0);
        EXPECT_GE(params.mii, 2);
    }
}

TEST(Registry, ScalarAlwaysPresent)
{
    const MicroKernelRegistry &registry = MicroKernelRegistry::instance();
    const MicroKernel &scalar = registry.select(SimdTier::Scalar);
    EXPECT_EQ(scalar.tier, SimdTier::Scalar);
    EXPECT_EQ(scalar.mr, kScalarMr);
    EXPECT_EQ(scalar.nr, kScalarNr);
}

TEST(Registry, SelectPicksWidestAvailable)
{
    const MicroKernelRegistry &registry = MicroKernelRegistry::instance();
    const MicroKernel &best = registry.select(SimdTier::Avx512);
    // On this build host AVX-512 is compiled in.
    for (const MicroKernel &kernel : registry.kernels()) {
        EXPECT_LE(static_cast<int>(kernel.tier),
                  static_cast<int>(best.tier));
    }
}

TEST(Registry, ByNameLookup)
{
    const MicroKernelRegistry &registry = MicroKernelRegistry::instance();
    EXPECT_EQ(registry.byName("scalar_6x16").mr, 6);
    EXPECT_THROW(registry.byName("nope"), Error);
}

TEST(Registry, AddRejectsMalformed)
{
    MicroKernelRegistry registry;
    EXPECT_THROW(registry.add(MicroKernel{"bad", SimdTier::Scalar, 0, 8,
                                          &scalarMicroKernel}),
                 Error);
}

TEST(Packing, APanelTransposesAndPads)
{
    // A is 2 rows x 3 cols; pack into mr=4 panels of kc=3.
    const float a[6] = {1, 2, 3, 4, 5, 6};
    float dst[12];
    packAPanel(a, 3, 2, 3, 4, dst);
    // dst[k*mr + m] = a[m*lda + k]
    EXPECT_FLOAT_EQ(dst[0], 1.0f); // k0 m0
    EXPECT_FLOAT_EQ(dst[1], 4.0f); // k0 m1
    EXPECT_FLOAT_EQ(dst[2], 0.0f); // pad
    EXPECT_FLOAT_EQ(dst[4], 2.0f); // k1 m0
    EXPECT_FLOAT_EQ(dst[5], 5.0f); // k1 m1
    EXPECT_FLOAT_EQ(dst[8], 3.0f); // k2 m0
}

TEST(Packing, BPanelCopiesAndPads)
{
    const float b[6] = {1, 2, 3, 4, 5, 6}; // 2 rows x 3 cols, ldb=3
    float dst[8];
    packBPanel(b, 3, 2, 3, 4, dst);
    EXPECT_FLOAT_EQ(dst[0], 1.0f);
    EXPECT_FLOAT_EQ(dst[2], 3.0f);
    EXPECT_FLOAT_EQ(dst[3], 0.0f); // pad
    EXPECT_FLOAT_EQ(dst[4], 4.0f);
    EXPECT_FLOAT_EQ(dst[7], 0.0f);
}

/** Parameterized over every registered micro kernel. */
class MicroKernelCorrectness
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MicroKernelCorrectness, ExactTileMatchesReference)
{
    const MicroKernel &kernel =
        MicroKernelRegistry::instance().byName(GetParam());
    const int kc = 37;
    Tensor a({kernel.mr, kc});
    Tensor b({kc, kernel.nr});
    Tensor c({kernel.mr, kernel.nr});
    Tensor expected({kernel.mr, kernel.nr});
    Rng rng(99);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(c, rng);
    expected = c;

    // Reference: expected += a * b.
    Tensor prod({kernel.mr, kernel.nr});
    ref::gemm(a, b, prod);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        expected[i] += prod[i];
    }

    std::vector<float> aPack(static_cast<std::size_t>(kc) *
                             static_cast<std::size_t>(kernel.mr));
    std::vector<float> bPack(static_cast<std::size_t>(kc) *
                             static_cast<std::size_t>(kernel.nr));
    packAPanel(a.data(), kc, kernel.mr, kc, kernel.mr, aPack.data());
    packBPanel(b.data(), kernel.nr, kc, kernel.nr, kernel.nr, bPack.data());
    kernel.fn(aPack.data(), bPack.data(), c.data(), kernel.nr, kc);

    EXPECT_TRUE(allClose(c, expected, 1e-4f, 1e-4f))
        << "kernel " << kernel.name
        << " maxdiff=" << maxAbsDiff(c, expected);
}

TEST_P(MicroKernelCorrectness, KcOneWorks)
{
    const MicroKernel &kernel =
        MicroKernelRegistry::instance().byName(GetParam());
    Tensor a({kernel.mr, 1});
    Tensor b({1, kernel.nr});
    Tensor c({kernel.mr, kernel.nr});
    fillPattern(a);
    fillPattern(b);
    c.zero();
    Tensor expected({kernel.mr, kernel.nr});
    ref::gemm(a, b, expected);

    std::vector<float> aPack(static_cast<std::size_t>(kernel.mr));
    std::vector<float> bPack(static_cast<std::size_t>(kernel.nr));
    packAPanel(a.data(), 1, kernel.mr, 1, kernel.mr, aPack.data());
    packBPanel(b.data(), kernel.nr, 1, kernel.nr, kernel.nr, bPack.data());
    kernel.fn(aPack.data(), bPack.data(), c.data(), kernel.nr, 1);
    EXPECT_TRUE(allClose(c, expected, 1e-5f, 1e-6f));
}

std::vector<std::string>
registeredKernelNames()
{
    std::vector<std::string> names;
    for (const MicroKernel &kernel :
         MicroKernelRegistry::instance().kernels()) {
        names.push_back(kernel.name);
    }
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, MicroKernelCorrectness,
                         ::testing::ValuesIn(registeredKernelNames()));

/** Block matmul across odd shapes, every kernel. */
class BlockMatmulCorrectness
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::tuple<int, int, int>>>
{
};

TEST_P(BlockMatmulCorrectness, MatchesReference)
{
    const MicroKernel &kernel = MicroKernelRegistry::instance().byName(
        std::get<0>(GetParam()));
    const auto [m, n, k] = std::get<1>(GetParam());

    Tensor a({m, k});
    Tensor b({k, n});
    Tensor c({m, n});
    Tensor expected({m, n});
    Rng rng(7);
    fillUniform(a, rng);
    fillUniform(b, rng);
    c.zero();
    ref::gemm(a, b, expected);

    Workspace workspace;
    blockMatmul(kernel, a.data(), k, b.data(), n, c.data(), n, m, n, k,
                workspace);
    EXPECT_TRUE(allClose(c, expected, 1e-4f, 1e-4f))
        << "kernel " << kernel.name << " shape " << m << "x" << n << "x"
        << k << " maxdiff " << maxAbsDiff(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockMatmulCorrectness,
    ::testing::Combine(::testing::ValuesIn(registeredKernelNames()),
                       ::testing::Values(std::make_tuple(1, 1, 1),
                                         std::make_tuple(6, 64, 16),
                                         std::make_tuple(7, 65, 3),
                                         std::make_tuple(13, 17, 19),
                                         std::make_tuple(48, 96, 32),
                                         std::make_tuple(5, 200, 1),
                                         std::make_tuple(64, 64, 64))));

TEST(BlockMatmul, AccumulatesIntoExistingC)
{
    const MicroKernel &kernel =
        MicroKernelRegistry::instance().select(detectSimdTier());
    Tensor a({8, 4});
    Tensor b({4, 8});
    Tensor c({8, 8});
    Rng rng(3);
    fillUniform(a, rng);
    fillUniform(b, rng);
    c.fill(2.0f);

    Tensor expected({8, 8});
    ref::gemm(a, b, expected);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        expected[i] += 2.0f;
    }
    Workspace workspace;
    blockMatmul(kernel, a.data(), 4, b.data(), 8, c.data(), 8, 8, 8, 4,
                workspace);
    EXPECT_TRUE(allClose(c, expected, 1e-4f, 1e-4f));
}

TEST(BlockMatmul, StridedViews)
{
    // Operate on the top-left 5x6x7 sub-blocks of larger tensors.
    const MicroKernel &kernel =
        MicroKernelRegistry::instance().select(detectSimdTier());
    Tensor a({10, 20});
    Tensor b({20, 30});
    Tensor c({10, 30});
    Rng rng(5);
    fillUniform(a, rng);
    fillUniform(b, rng);
    c.zero();

    Workspace workspace;
    blockMatmul(kernel, a.data(), 20, b.data(), 30, c.data(), 30, 5, 6, 7,
                workspace);

    for (int i = 0; i < 5; ++i) {
        for (int j = 0; j < 6; ++j) {
            float acc = 0.0f;
            for (int p = 0; p < 7; ++p) {
                acc += a.at({i, p}) * b.at({p, j});
            }
            EXPECT_NEAR(c.at({i, j}), acc, 1e-4f);
        }
    }
    // Outside the sub-block C stays zero.
    EXPECT_FLOAT_EQ(c.at({6, 0}), 0.0f);
    EXPECT_FLOAT_EQ(c.at({0, 7}), 0.0f);
}

TEST(NaiveBlockMatmul, MatchesReference)
{
    Tensor a({9, 11});
    Tensor b({11, 13});
    Tensor c({9, 13});
    Tensor expected({9, 13});
    Rng rng(13);
    fillUniform(a, rng);
    fillUniform(b, rng);
    c.zero();
    ref::gemm(a, b, expected);
    naiveBlockMatmul(a.data(), 11, b.data(), 13, c.data(), 13, 9, 13, 11);
    EXPECT_TRUE(allClose(c, expected, 1e-4f, 1e-4f));
}

} // namespace
} // namespace chimera::kernels
