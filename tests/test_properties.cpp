/**
 * @file
 * Property-based tests: randomized sweeps asserting the structural
 * invariants of the analytical model, the solver, the executors, and
 * the cache simulator. Each property runs across a parameterized set of
 * seeds/shapes so regressions surface on inputs nobody hand-picked.
 */

#include <gtest/gtest.h>

#include "baselines/random_tuner.hpp"
#include "cachesim/gemm_trace.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "model/data_movement.hpp"
#include "plan/planner.hpp"
#include "solver/tile_solver.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace chimera {
namespace {

/** Random GEMM-chain config with extents in [4, 96]. */
ir::GemmChainConfig
randomChainConfig(Rng &rng)
{
    auto dim = [&] {
        return static_cast<std::int64_t>(4 + rng.below(93));
    };
    ir::GemmChainConfig cfg;
    cfg.batch = static_cast<std::int64_t>(1 + rng.below(3));
    cfg.m = dim();
    cfg.n = dim();
    cfg.k = dim();
    cfg.l = dim();
    cfg.name = "prop";
    return cfg;
}

/** Random permutation of all chain axes. */
std::vector<ir::AxisId>
randomPerm(const ir::Chain &chain, Rng &rng)
{
    std::vector<ir::AxisId> perm;
    for (int a = 0; a < chain.numAxes(); ++a) {
        perm.push_back(a);
    }
    for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[static_cast<std::size_t>(rng.below(i))]);
    }
    return perm;
}

/** Random tile vector of divisors (so block grids have no ragged tails). */
std::vector<std::int64_t>
randomDivisorTiles(const ir::Chain &chain, Rng &rng)
{
    std::vector<std::int64_t> tiles;
    for (const ir::Axis &axis : chain.axes()) {
        const auto divs = divisorsOf(axis.extent);
        tiles.push_back(divs[static_cast<std::size_t>(
            rng.below(divs.size()))]);
    }
    return tiles;
}

class ModelProperties : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModelProperties, VolumeNeverBelowCompulsoryIo)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
        const auto perm = randomPerm(chain, rng);
        const auto tiles = randomDivisorTiles(chain, rng);
        const auto dm = model::computeDataMovement(chain, perm, tiles);
        EXPECT_GE(dm.volumeBytes,
                  static_cast<double>(chain.ioBytes()) - 0.5);
    }
}

TEST_P(ModelProperties, GrowingADividingTileNeverIncreasesVolume)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
        const auto perm = randomPerm(chain, rng);
        auto tiles = randomDivisorTiles(chain, rng);
        const auto before = model::computeDataMovement(chain, perm, tiles);

        // Grow one random axis to a larger divisor.
        const int axis = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(chain.numAxes())));
        const auto divs = divisorsOf(
            chain.axes()[static_cast<std::size_t>(axis)].extent);
        std::vector<std::int64_t> larger;
        for (std::int64_t d : divs) {
            if (d > tiles[static_cast<std::size_t>(axis)]) {
                larger.push_back(d);
            }
        }
        if (larger.empty()) {
            continue;
        }
        tiles[static_cast<std::size_t>(axis)] =
            larger[static_cast<std::size_t>(rng.below(larger.size()))];
        const auto after = model::computeDataMovement(chain, perm, tiles);
        EXPECT_LE(after.volumeBytes, before.volumeBytes + 0.5);
        EXPECT_GE(after.memUsageBytes, before.memUsageBytes);
    }
}

TEST_P(ModelProperties, SpilledIntermediatesNeverCheaper)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
        const auto perm = randomPerm(chain, rng);
        const auto tiles = randomDivisorTiles(chain, rng);
        const auto fused = model::computeDataMovement(chain, perm, tiles);
        model::ModelOptions spilled;
        spilled.intermediatesAreIO = true;
        const auto unfused =
            model::computeDataMovement(chain, perm, tiles, spilled);
        EXPECT_GE(unfused.volumeBytes, fused.volumeBytes - 0.5);
        EXPECT_EQ(unfused.memUsageBytes, fused.memUsageBytes);
    }
}

TEST_P(ModelProperties, ReuseAxesNeverAccessTheTensor)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 10; ++trial) {
        const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
        const auto perm = randomPerm(chain, rng);
        const auto tiles = randomDivisorTiles(chain, rng);
        const auto reuse = model::reuseAxesPerTensor(chain, perm, tiles);
        for (std::size_t t = 0; t < reuse.size(); ++t) {
            for (const std::string &axisName : reuse[t]) {
                const ir::AxisId axis = ir::axisIdByName(chain, axisName);
                EXPECT_FALSE(chain.tensors()[t].usesAxis(axis))
                    << chain.tensors()[t].name << " reused along "
                    << axisName;
            }
        }
    }
}

TEST_P(ModelProperties, DeterministicEvaluation)
{
    Rng rng(GetParam());
    const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
    const auto perm = randomPerm(chain, rng);
    const auto tiles = randomDivisorTiles(chain, rng);
    const auto a = model::computeDataMovement(chain, perm, tiles);
    const auto b = model::computeDataMovement(chain, perm, tiles);
    EXPECT_DOUBLE_EQ(a.volumeBytes, b.volumeBytes);
    EXPECT_EQ(a.memUsageBytes, b.memUsageBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

class SolverProperties : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SolverProperties, SolutionFeasibleAndNoWorseThanMinimalTiles)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 5; ++trial) {
        const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
        const auto perm = randomPerm(chain, rng);
        solver::TileSolverOptions options;
        options.memCapacityBytes = 16.0 * 1024;
        const auto sol = solver::solveTiles(chain, perm, {}, options);
        ASSERT_TRUE(sol.feasible);
        EXPECT_LE(static_cast<double>(sol.memUsageBytes),
                  options.memCapacityBytes);

        std::vector<std::int64_t> ones(
            static_cast<std::size_t>(chain.numAxes()), 1);
        const auto minimal = model::computeDataMovement(chain, perm, ones);
        EXPECT_LE(sol.volumeBytes, minimal.volumeBytes + 0.5);
    }
}

TEST_P(SolverProperties, PlannerBeatsRandomSearchOnPredictedVolume)
{
    // The planner's analytical optimum must dominate what the tuner
    // finds when both optimize the same objective (predicted volume).
    Rng rng(GetParam());
    const ir::Chain chain = ir::makeGemmChain(randomChainConfig(rng));
    plan::PlannerOptions options;
    options.memCapacityBytes = 24.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, options);

    baselines::TunerOptions tunerOptions;
    tunerOptions.memCapacityBytes = options.memCapacityBytes;
    tunerOptions.trials = 50;
    tunerOptions.seed = GetParam() * 17 + 1;
    const baselines::TunerResult tuned = baselines::randomSearchPlan(
        chain, tunerOptions, [](const plan::ExecutionPlan &p) {
            return p.predictedVolumeBytes;
        });
    EXPECT_LE(plan.predictedVolumeBytes,
              tuned.plan.predictedVolumeBytes + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperties,
                         ::testing::Values(21u, 34u, 55u));

class ExecutorProperties : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ExecutorProperties, RandomPlansAllProduceTheOracleResult)
{
    Rng rng(GetParam());
    const ir::GemmChainConfig cfg = randomChainConfig(rng);
    const ir::Chain chain = ir::makeGemmChain(cfg);

    Tensor a(exec::gemmChainShapeA(cfg));
    Tensor b(exec::gemmChainShapeB(cfg));
    Tensor d(exec::gemmChainShapeD(cfg));
    Tensor expected(exec::gemmChainShapeE(cfg));
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    exec::referenceGemmChain(cfg, a, b, d, expected);

    baselines::TunerOptions tunerOptions;
    tunerOptions.memCapacityBytes = 64.0 * 1024;
    tunerOptions.trials = 12;
    tunerOptions.seed = GetParam();
    const exec::ComputeEngine engine = exec::ComputeEngine::best();
    int validated = 0;
    (void)baselines::randomSearchPlan(
        chain, tunerOptions, [&](const plan::ExecutionPlan &p) {
            Tensor e(exec::gemmChainShapeE(cfg));
            exec::runFusedGemmChain(cfg, p, engine, a, b, d, e);
            EXPECT_TRUE(allClose(e, expected, 5e-3f, 5e-3f))
                << "order " << plan::orderString(chain, p.perm);
            ++validated;
            return 1.0;
        });
    EXPECT_GT(validated, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperties,
                         ::testing::Values(3u, 7u, 11u, 19u));

TEST(CacheProperties, InclusiveHierarchyTrafficIsMonotone)
{
    // Inclusive fills: a miss at level d+1 implies a miss at level d,
    // so traffic into inner levels dominates traffic into outer ones.
    Rng rng(23);
    const ir::GemmChainConfig cfg = randomChainConfig(rng);
    const ir::Chain chain = ir::makeGemmChain(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 16.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    const auto trace = cachesim::traceFusedGemmChain(
        cfg, plan, cachesim::xeonLikeCaches());
    for (std::size_t d = 1; d < trace.trafficIntoLevelBytes.size(); ++d) {
        EXPECT_GE(trace.trafficIntoLevelBytes[d - 1],
                  trace.trafficIntoLevelBytes[d] - 0.5);
    }
}

TEST(CacheProperties, BiggerCacheNeverMissesMore)
{
    Rng rng(29);
    const ir::GemmChainConfig cfg = randomChainConfig(rng);
    const ir::Chain chain = ir::makeGemmChain(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 16.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, options);

    double previous = 1e300;
    for (std::int64_t kib : {16, 64, 256, 1024}) {
        const std::vector<cachesim::CacheConfig> levels = {
            {"L", kib * 1024, 16, 64}};
        const auto trace =
            cachesim::traceFusedGemmChain(cfg, plan, levels);
        EXPECT_LE(trace.trafficIntoLevelBytes[0], previous + 0.5)
            << kib << " KiB";
        previous = trace.trafficIntoLevelBytes[0];
    }
}

} // namespace
} // namespace chimera
