/**
 * @file
 * Unit tests for the cache simulator and the GEMM-chain trace walkers,
 * including the model-vs-measurement consistency property behind the
 * Figure 8 validation.
 */

#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "cachesim/conv_trace.hpp"
#include "cachesim/gemm_trace.hpp"
#include "exec/constraints.hpp"
#include "model/data_movement.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"

namespace chimera::cachesim {
namespace {

TEST(Cache, HitsAfterFill)
{
    Cache cache({"L1", 1024, 2, 64}); // 16 lines, 8 sets x 2 ways
    EXPECT_FALSE(cache.accessLine(0));
    EXPECT_TRUE(cache.accessLine(0));
    EXPECT_EQ(cache.stats().accesses, 2);
    EXPECT_EQ(cache.stats().misses, 1);
}

TEST(Cache, LruEvictsOldest)
{
    // 1 set x 2 ways: lines mapping to the same set compete.
    Cache cache({"tiny", 128, 2, 64}); // 2 lines total, 1 set
    EXPECT_FALSE(cache.accessLine(0));
    EXPECT_FALSE(cache.accessLine(1));
    EXPECT_TRUE(cache.accessLine(0)); // still resident
    EXPECT_FALSE(cache.accessLine(2)); // evicts 1 (LRU)
    EXPECT_TRUE(cache.accessLine(0));
    EXPECT_FALSE(cache.accessLine(1)); // was evicted
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({"x", 0, 2, 64}), Error);
    EXPECT_THROW(Cache({"x", 64, 2, 64}), Error); // one line, 2 ways
}

TEST(Hierarchy, MissFillsAllLevels)
{
    CacheHierarchy caches({{"L1", 1024, 2, 64}, {"L2", 4096, 4, 64}});
    caches.access(0, 64);
    EXPECT_EQ(caches.stats(0).misses, 1);
    EXPECT_EQ(caches.stats(1).misses, 1);
    caches.access(0, 64); // L1 hit: L2 not probed
    EXPECT_EQ(caches.stats(0).accesses, 2);
    EXPECT_EQ(caches.stats(1).accesses, 1);
    EXPECT_DOUBLE_EQ(caches.dramTrafficBytes(), 64.0);
}

TEST(Hierarchy, MultiLineAccessTouchesEveryLine)
{
    CacheHierarchy caches({{"L1", 4096, 4, 64}});
    caches.access(10, 200); // spans lines 0..3
    EXPECT_EQ(caches.stats(0).accesses, 4);
    EXPECT_EQ(caches.stats(0).misses, 4);
}

TEST(Hierarchy, WorkingSetLargerThanL1HitsInL2)
{
    CacheHierarchy caches({{"L1", 1024, 2, 64}, {"L2", 64 * 1024, 8, 64}});
    // Stream 8 KiB twice: first pass misses everywhere, second pass
    // misses L1 (too small) but hits L2 entirely.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::int64_t addr = 0; addr < 8192; addr += 64) {
            caches.access(addr, 64);
        }
    }
    EXPECT_EQ(caches.stats(0).misses, 256);
    EXPECT_EQ(caches.stats(1).misses, 128);
    EXPECT_NEAR(caches.stats(1).hitRate(), 0.5, 1e-9);
}

TEST(Hierarchy, XeonLikeShape)
{
    const auto levels = xeonLikeCaches();
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0].name, "L1d");
    EXPECT_LT(levels[0].sizeBytes, levels[1].sizeBytes);
    EXPECT_LT(levels[1].sizeBytes, levels[2].sizeBytes);
}

class GemmTraceTest : public ::testing::Test
{
  protected:
    GemmTraceTest()
    {
        cfg_.m = 256;
        cfg_.n = 64;
        cfg_.k = 64;
        cfg_.l = 256;
        chain_ = std::make_unique<ir::Chain>(ir::makeGemmChain(cfg_));
        plan::PlannerOptions options;
        // Tiles sized for L1 with headroom; the paper's alpha keeps the
        // free tiles cache-line wide so line-granularity waste is small.
        options.memCapacityBytes = 20.0 * 1024;
        options.constraints = plan::alphaConstraints(*chain_, 16);
        plan_ = plan::planChain(*chain_, options);
    }

    ir::GemmChainConfig cfg_;
    std::unique_ptr<ir::Chain> chain_;
    plan::ExecutionPlan plan_;
};

TEST_F(GemmTraceTest, FusedMeasurementTracksModelPrediction)
{
    // The core of Figure 8d: the LRU-measured traffic into L1 should be
    // close to Algorithm 1's prediction when the tiles fit L1.
    const auto levels = xeonLikeCaches();
    const TraceResult trace = traceFusedGemmChain(cfg_, plan_, levels);
    const model::DataMovement dm =
        model::computeDataMovement(*chain_, plan_.perm, plan_.tiles);
    // Within 35% (line granularity, scratch traffic, LRU conflicts).
    EXPECT_GT(trace.trafficIntoLevelBytes[0], dm.volumeBytes * 0.65);
    EXPECT_LT(trace.trafficIntoLevelBytes[0], dm.volumeBytes * 1.35);
}

TEST_F(GemmTraceTest, FusedBeatsUnfusedOnDramTraffic)
{
    const auto levels = xeonLikeCaches();
    const TraceResult fused = traceFusedGemmChain(cfg_, plan_, levels);
    const TraceResult unfused = traceUnfusedGemmChain(
        cfg_, exec::GemmTiles{64, 64, 64}, exec::GemmTiles{64, 64, 64},
        levels);
    // The unfused path spills and re-reads the intermediate.
    EXPECT_LT(fused.dramBytes, unfused.dramBytes);
}

TEST_F(GemmTraceTest, NoReuseVariantMovesMore)
{
    // Figure 8f: disabling intermediate reuse increases traffic.
    const auto levels = xeonLikeCaches();
    TraceOptions reuse;
    TraceOptions noReuse;
    noReuse.reuseIntermediate = false;
    const TraceResult with = traceFusedGemmChain(cfg_, plan_, levels, reuse);
    const TraceResult without =
        traceFusedGemmChain(cfg_, plan_, levels, noReuse);
    EXPECT_GT(without.trafficIntoLevelBytes[0],
              with.trafficIntoLevelBytes[0]);
}

TEST_F(GemmTraceTest, TrafficDecreasesGoingOutward)
{
    const auto levels = xeonLikeCaches();
    const TraceResult trace = traceFusedGemmChain(cfg_, plan_, levels);
    ASSERT_EQ(trace.trafficIntoLevelBytes.size(), 3u);
    EXPECT_GE(trace.trafficIntoLevelBytes[0],
              trace.trafficIntoLevelBytes[1]);
    EXPECT_GE(trace.trafficIntoLevelBytes[1],
              trace.trafficIntoLevelBytes[2]);
    // DRAM traffic can never undercut compulsory IO bytes.
    EXPECT_GE(trace.dramBytes, static_cast<double>(chain_->ioBytes()));
}

TEST_F(GemmTraceTest, BatchedTraceScalesTraffic)
{
    ir::GemmChainConfig batched = cfg_;
    batched.batch = 2;
    const ir::Chain chain = ir::makeGemmChain(batched);
    plan::PlannerOptions options;
    options.memCapacityBytes = 24.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    const auto levels = xeonLikeCaches();
    const TraceResult one = traceFusedGemmChain(cfg_, plan_, levels);
    const TraceResult two = traceFusedGemmChain(batched, plan, levels);
    EXPECT_GT(two.dramBytes, one.dramBytes * 1.5);
}

class ConvTraceTest : public ::testing::Test
{
  protected:
    ConvTraceTest()
    {
        cfg_.name = "trace";
        cfg_.batch = 1;
        cfg_.ic = 32;
        cfg_.h = 56;
        cfg_.w = 56;
        cfg_.oc1 = 48;
        cfg_.oc2 = 32;
        cfg_.k1 = 3;
        cfg_.k2 = 1;
        cfg_.stride1 = 1;
        const ir::Chain chain = ir::makeConvChain(cfg_);
        plan::PlannerOptions options;
        options.memCapacityBytes = 512.0 * 1024;
        options.constraints = exec::cpuChainConstraints(
            chain, kernels::MicroKernelRegistry::instance().select(
                       detectSimdTier()));
        plan_ = plan::planChain(chain, options);
    }

    ir::ConvChainConfig cfg_;
    plan::ExecutionPlan plan_;
};

TEST_F(ConvTraceTest, FusedBeatsUnfusedOnDramTraffic)
{
    const auto levels = xeonLikeCaches();
    const TraceResult fused = traceFusedConvChain(cfg_, plan_, levels);
    const TraceResult unfused = traceUnfusedConvChain(
        cfg_, exec::ConvTiles{64, 64}, exec::ConvTiles{64, 64}, levels);
    EXPECT_LT(fused.dramBytes, unfused.dramBytes);
}

TEST_F(ConvTraceTest, DramAtLeastCompulsoryIo)
{
    const auto levels = xeonLikeCaches();
    const TraceResult fused = traceFusedConvChain(cfg_, plan_, levels);
    const ir::Chain chain = ir::makeConvChain(cfg_);
    EXPECT_GE(fused.dramBytes, static_cast<double>(chain.ioBytes()) * 0.9);
}

TEST_F(ConvTraceTest, TrafficMonotoneAcrossLevels)
{
    const auto levels = xeonLikeCaches();
    const TraceResult fused = traceFusedConvChain(cfg_, plan_, levels);
    for (std::size_t d = 1; d < fused.trafficIntoLevelBytes.size(); ++d) {
        EXPECT_GE(fused.trafficIntoLevelBytes[d - 1],
                  fused.trafficIntoLevelBytes[d] - 0.5);
    }
}

TEST_F(ConvTraceTest, SmallerSpatialTilesIncreaseHaloTraffic)
{
    // With a 3x3 producer consumed at stride 1, shrinking the oh tile
    // increases overlapping input rows re-read per region.
    ir::ConvChainConfig cfg = cfg_;
    cfg.k1 = 1;
    cfg.k2 = 3; // halo now on the intermediate/first input
    const ir::Chain chain = ir::makeConvChain(cfg);
    auto mkPlan = [&](std::int64_t ohTile) {
        plan::ExecutionPlan p;
        p.perm = plan::permFromOrderString(chain, "oh,ow,oc1,oc2,ic");
        p.tiles = chain.fullExtents();
        p.tiles[static_cast<std::size_t>(ir::axisIdByName(chain, "oh"))] =
            ohTile;
        return p;
    };
    const auto levels = xeonLikeCaches();
    const TraceResult coarse =
        traceFusedConvChain(cfg, mkPlan(28), levels);
    const TraceResult fine = traceFusedConvChain(cfg, mkPlan(2), levels);
    EXPECT_GT(fine.trafficIntoLevelBytes[0],
              coarse.trafficIntoLevelBytes[0]);
}

} // namespace
} // namespace chimera::cachesim
