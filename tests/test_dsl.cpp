/**
 * @file
 * Tests for the einsum-style DSL front-end: parsing, axis unification,
 * tensor-kind inference, equivalence to the structured builders, and
 * planning of parsed chains.
 */

#include <gtest/gtest.h>

#include "ir/builders.hpp"
#include "ir/dsl.hpp"
#include "model/data_movement.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"

namespace chimera::ir {
namespace {

const std::map<std::string, std::int64_t> kExtents = {
    {"b", 4}, {"m", 64}, {"n", 32}, {"k", 16}, {"l", 48}, {"p", 24}};

TEST(Dsl, ParsesTheFigureTwoChain)
{
    const Chain chain = parseEinsumChain(
        "C[b,m,l] = A[b,m,k] * B[b,k,l];"
        "E[b,m,n] = C[b,m,l] * D[b,l,n];",
        kExtents);
    EXPECT_EQ(chain.numAxes(), 5);
    EXPECT_EQ(chain.ops().size(), 2u);
    ASSERT_EQ(chain.tensors().size(), 5u);
    // Declaration order: A, B, C (statement 1), D, E (statement 2).
    EXPECT_EQ(chain.tensors()[0].name, "A");
    EXPECT_EQ(chain.tensors()[0].kind, TensorKind::Input);
    EXPECT_EQ(chain.tensors()[2].name, "C");
    EXPECT_EQ(chain.tensors()[2].kind, TensorKind::Intermediate);
    EXPECT_EQ(chain.tensors()[4].name, "E");
    EXPECT_EQ(chain.tensors()[4].kind, TensorKind::Output);
}

TEST(Dsl, AxisUnificationMatchesStructuredBuilder)
{
    // The parsed chain and makeGemmChain must agree on Algorithm 1.
    const Chain parsed = parseEinsumChain(
        "C[b,m,l] = A[b,m,k] * B[b,k,l];"
        "E[b,m,n] = C[b,m,l] * D[b,l,n];",
        kExtents);
    GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    const Chain built = makeGemmChain(cfg);

    EXPECT_EQ(parsed.numAxes(), built.numAxes());
    EXPECT_DOUBLE_EQ(parsed.totalFlops(), built.totalFlops());
    EXPECT_EQ(parsed.ioBytes(), built.ioBytes());

    // Same DV under the same order and tiles (axis ids may differ, so
    // go through names).
    auto tilesFor = [](const Chain &chain) {
        std::vector<std::int64_t> tiles = chain.fullExtents();
        for (int a = 0; a < chain.numAxes(); ++a) {
            const std::string &name =
                chain.axes()[static_cast<std::size_t>(a)].name;
            if (name == "m" || name == "l") {
                tiles[static_cast<std::size_t>(a)] = 16;
            } else if (name == "k" || name == "n") {
                tiles[static_cast<std::size_t>(a)] = 8;
            } else {
                tiles[static_cast<std::size_t>(a)] = 1;
            }
        }
        return tiles;
    };
    const auto dvParsed = model::computeDataMovement(
        parsed, plan::permFromOrderString(parsed, "b,m,l,k,n"),
        tilesFor(parsed));
    const auto dvBuilt = model::computeDataMovement(
        built, plan::permFromOrderString(built, "b,m,l,k,n"),
        tilesFor(built));
    EXPECT_DOUBLE_EQ(dvParsed.volumeBytes, dvBuilt.volumeBytes);
    EXPECT_EQ(dvParsed.memUsageBytes, dvBuilt.memUsageBytes);
}

TEST(Dsl, ThreeOperatorChainParses)
{
    const Chain chain = parseEinsumChain(
        "C1[m,l] = A[m,k] * B[k,l];"
        "C2[m,p] = C1[m,l] * D[l,p];"
        "E[m,n]  = C2[m,p] * F[p,n];",
        kExtents, "dsl3");
    EXPECT_EQ(chain.ops().size(), 3u);
    EXPECT_EQ(chain.numAxes(), 5); // m,k,l,p,n
    int intermediates = 0;
    for (const TensorDecl &t : chain.tensors()) {
        intermediates += t.kind == TensorKind::Intermediate ? 1 : 0;
    }
    EXPECT_EQ(intermediates, 2);
}

TEST(Dsl, ParsedChainIsPlannable)
{
    const Chain chain = parseEinsumChain(
        "C[m,l] = A[m,k] * B[k,l];"
        "E[m,n] = C[m,l] * D[l,n];",
        kExtents);
    plan::PlannerOptions options;
    options.memCapacityBytes = 16.0 * 1024;
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    EXPECT_TRUE(model::isExecutableOrder(chain, plan.perm));
    EXPECT_LE(static_cast<double>(plan.memUsageBytes),
              options.memCapacityBytes);
}

TEST(Dsl, SingleStatementIsASingleGemm)
{
    const Chain chain =
        parseEinsumChain("C[m,n] = A[m,k] * B[k,n];", kExtents);
    EXPECT_EQ(chain.ops().size(), 1u);
    EXPECT_EQ(chain.ioTensorIds().size(), 3u);
    EXPECT_DOUBLE_EQ(chain.totalFlops(), 2.0 * 64 * 32 * 16);
}

TEST(Dsl, WhitespaceAndNewlinesAreTolerated)
{
    const Chain chain = parseEinsumChain(
        "  C[ m , l ] = A[m, k] * B[k, l] ;\n"
        "  E[m, n]    = C[m, l] * D[l, n] ;\n",
        kExtents);
    EXPECT_EQ(chain.ops().size(), 2u);
}

TEST(Dsl, RejectsSyntaxErrors)
{
    EXPECT_THROW(parseEinsumChain("C[m,l] := A[m,k] * B[k,l];", kExtents),
                 Error);
    EXPECT_THROW(parseEinsumChain("C[m,l] = A[m,k] + B[k,l];", kExtents),
                 Error);
    EXPECT_THROW(parseEinsumChain("Cml = A[m,k] * B[k,l];", kExtents),
                 Error);
    EXPECT_THROW(parseEinsumChain("C[] = A[m,k] * B[k,l];", kExtents),
                 Error);
    EXPECT_THROW(parseEinsumChain("", kExtents), Error);
}

TEST(Dsl, RejectsSemanticErrors)
{
    // Unknown extent.
    EXPECT_THROW(parseEinsumChain("C[m,z] = A[m,k] * B[k,z];", kExtents),
                 Error);
    // Output index absent from the inputs.
    EXPECT_THROW(parseEinsumChain("C[m,n] = A[m,k] * B[k,l];", kExtents),
                 Error);
    // Inconsistent index lists for one tensor.
    EXPECT_THROW(parseEinsumChain("C[m,l] = A[m,k] * B[k,l];"
                                  "E[m,n] = C[l,m] * D[l,n];",
                                  kExtents),
                 Error);
    // Produced twice.
    EXPECT_THROW(parseEinsumChain("C[m,l] = A[m,k] * B[k,l];"
                                  "C[m,l] = A[m,k] * B[k,l];",
                                  kExtents),
                 Error);
    // Consumed before produced (non-topological order).
    EXPECT_THROW(parseEinsumChain("E[m,n] = C[m,l] * D[l,n];"
                                  "C[m,l] = A[m,k] * B[k,l];",
                                  kExtents),
                 Error);
}

} // namespace
} // namespace chimera::ir
