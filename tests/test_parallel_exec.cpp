/**
 * @file
 * Determinism tests for the parallel executors: every fused/tiled
 * executor must produce bitwise-identical outputs at 1, 2, and 8
 * threads, because only dependence-free block loops are distributed and
 * every floating-point reduction keeps its serial ascending order.
 */

#include <gtest/gtest.h>

#include <cstring>

#include <algorithm>

#include "analysis/dependence.hpp"
#include "analysis/race_checker.hpp"
#include "exec/chunk_profile.hpp"
#include "exec/conv_chain_exec.hpp"
#include "exec/gemm_chain3_exec.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "hw/machines.hpp"
#include "graph/cnn.hpp"
#include "graph/transformer.hpp"
#include "ir/builders.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace chimera::exec {
namespace {

using ir::ConvChainConfig;
using ir::Epilogue;
using ir::GemmChainConfig;

constexpr int kThreadCounts[] = {1, 2, 8};

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

plan::ExecutionPlan
planFor(const ir::Chain &chain, double capacityBytes)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    return plan::planChain(chain, options);
}

TEST(ParallelExec, FusedGemmChainBitwiseIdenticalAcrossThreadCounts)
{
    for (Epilogue epi :
         {Epilogue::None, Epilogue::Relu, Epilogue::Softmax}) {
        GemmChainConfig cfg;
        cfg.batch = 3;
        cfg.m = 48;
        cfg.n = 24;
        cfg.k = 16;
        cfg.l = 40;
        cfg.epilogue = epi;
        cfg.softmaxScale = 0.25f;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 16.0 * 1024);
        const ComputeEngine engine = ComputeEngine::best();

        Tensor a(gemmChainShapeA(cfg));
        Tensor b(gemmChainShapeB(cfg));
        Tensor d(gemmChainShapeD(cfg));
        Rng rng(42);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);

        Tensor serial(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, serial);
        for (int threads : kThreadCounts) {
            Tensor e(gemmChainShapeE(cfg));
            runFusedGemmChain(cfg, plan, engine, a, b, d, e,
                              ExecOptions{threads, nullptr});
            EXPECT_TRUE(bitwiseEqual(e, serial))
                << "epilogue " << static_cast<int>(epi) << " threads "
                << threads;
        }
    }
}

TEST(ParallelExec, TiledBatchGemmBitwiseIdenticalAcrossThreadCounts)
{
    Tensor a({3, 37, 29});
    Tensor b({3, 29, 23});
    Rng rng(7);
    fillUniform(a, rng);
    fillUniform(b, rng);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor serial({3, 37, 23});
    runTiledBatchGemm(engine, a, b, serial, GemmTiles{16, 8, 8});
    for (int threads : kThreadCounts) {
        Tensor c({3, 37, 23});
        runTiledBatchGemm(engine, a, b, c, GemmTiles{16, 8, 8},
                          ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(c, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, FusedGemmChain3BitwiseIdenticalAcrossThreadCounts)
{
    ir::GemmChain3Config cfg;
    cfg.batch = 2;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    cfg.p = 20;
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 48.0 * 1024;
    options.constraints = gemmChain3Constraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor a(gemmChain3ShapeA(cfg));
    Tensor b(gemmChain3ShapeB(cfg));
    Tensor d(gemmChain3ShapeD(cfg));
    Tensor f(gemmChain3ShapeF(cfg));
    Rng rng(5);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    fillUniform(f, rng);

    Tensor serial(gemmChain3ShapeE(cfg));
    runFusedGemmChain3(cfg, plan, engine, a, b, d, f, serial);
    for (int threads : kThreadCounts) {
        Tensor e(gemmChain3ShapeE(cfg));
        runFusedGemmChain3(cfg, plan, engine, a, b, d, f, e,
                           ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(e, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, FusedConvChainBitwiseIdenticalAcrossThreadCounts)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 6;
    cfg.h = 17;
    cfg.w = 17;
    cfg.oc1 = 9;
    cfg.oc2 = 7;
    cfg.k1 = 3;
    cfg.k2 = 3;
    cfg.stride1 = 1;
    cfg.stride2 = 2;
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 24.0 * 1024);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Rng rng(31);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    Tensor serial(convChainShapeO(cfg));
    runFusedConvChain(cfg, plan, engine, input, w1, w2, serial);
    for (int threads : kThreadCounts) {
        Tensor output(convChainShapeO(cfg));
        runFusedConvChain(cfg, plan, engine, input, w1, w2, output,
                          ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(output, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, UnfusedConvChainBitwiseIdenticalAcrossThreadCounts)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 5;
    cfg.h = 13;
    cfg.w = 13;
    cfg.oc1 = 8;
    cfg.oc2 = 6;
    cfg.k1 = 3;
    cfg.k2 = 1;
    cfg.epilogue = Epilogue::Relu;
    const ComputeEngine engine = ComputeEngine::best();

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Rng rng(17);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    Tensor serialScratch(convChainShapeT(cfg));
    Tensor serial(convChainShapeO(cfg));
    runUnfusedConvChain(cfg, engine, input, w1, w2, serialScratch, serial,
                        {4, 4}, {4, 4});
    for (int threads : kThreadCounts) {
        Tensor scratch(convChainShapeT(cfg));
        Tensor output(convChainShapeO(cfg));
        runUnfusedConvChain(cfg, engine, input, w1, w2, scratch, output,
                            {4, 4}, {4, 4},
                            ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(output, serial)) << "threads " << threads;
    }
}

plan::ExecutionPlan
threadAwarePlanFor(const ir::Chain &chain, double capacityBytes,
                   int execThreads)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    options.execThreads = execThreads;
    options.topology = hw::multicoreCpuTopology();
    return plan::planChain(chain, options);
}

TEST(ParallelExec, ThreadAwareGemmPlanBitwiseIdenticalAcrossThreadCounts)
{
    // The fig5 workload family under a thread-aware plan: the chunked
    // dispatch (grain > 1 groups consecutive blocks) must stay
    // bitwise-identical at every thread count and race-clean.
    for (Epilogue epi : {Epilogue::None, Epilogue::Softmax}) {
        GemmChainConfig cfg;
        cfg.batch = 3;
        cfg.m = 48;
        cfg.n = 24;
        cfg.k = 16;
        cfg.l = 40;
        cfg.epilogue = epi;
        cfg.softmaxScale = 0.25f;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan =
            threadAwarePlanFor(chain, 16.0 * 1024, 8);
        EXPECT_EQ(plan.plannedThreads, 8);
        const ComputeEngine engine = ComputeEngine::best();

        Tensor a(gemmChainShapeA(cfg));
        Tensor b(gemmChainShapeB(cfg));
        Tensor d(gemmChainShapeD(cfg));
        Rng rng(42);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);

        Tensor serial(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, serial);
        for (int threads : kThreadCounts) {
            analysis::RaceChecker checker(serial.numel());
            Tensor e(gemmChainShapeE(cfg));
            runFusedGemmChain(cfg, plan, engine, a, b, d, e,
                              ExecOptions{threads, nullptr, &checker});
            EXPECT_FALSE(checker.hasConflicts())
                << "threads " << threads << "\n" << checker.report();
            EXPECT_TRUE(bitwiseEqual(e, serial))
                << "epilogue " << static_cast<int>(epi) << " threads "
                << threads;
        }
    }
}

TEST(ParallelExec, ThreadAwareConvPlanBitwiseIdenticalAcrossThreadCounts)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 6;
    cfg.h = 17;
    cfg.w = 17;
    cfg.oc1 = 9;
    cfg.oc2 = 7;
    cfg.k1 = 3;
    cfg.k2 = 3;
    cfg.stride1 = 1;
    cfg.stride2 = 2;
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const plan::ExecutionPlan plan =
        threadAwarePlanFor(chain, 24.0 * 1024, 8);
    EXPECT_EQ(plan.plannedThreads, 8);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Rng rng(31);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    Tensor serial(convChainShapeO(cfg));
    runFusedConvChain(cfg, plan, engine, input, w1, w2, serial);
    for (int threads : kThreadCounts) {
        analysis::RaceChecker checker(serial.numel());
        Tensor output(convChainShapeO(cfg));
        runFusedConvChain(cfg, plan, engine, input, w1, w2, output,
                          ExecOptions{threads, nullptr, &checker});
        EXPECT_FALSE(checker.hasConflicts())
            << "threads " << threads << "\n" << checker.report();
        EXPECT_TRUE(bitwiseEqual(output, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, ChunkedRunMatchesPlanWithoutChunking)
{
    // Chunking is purely a dispatch regrouping: stripping the grain
    // and thread count from the plan must not change a single bit.
    GemmChainConfig cfg;
    cfg.batch = 3;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan chunked =
        threadAwarePlanFor(chain, 16.0 * 1024, 8);
    plan::ExecutionPlan flat = chunked;
    flat.plannedThreads = 1;
    flat.parallelGrain.clear();
    const ComputeEngine engine = ComputeEngine::best();

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Rng rng(9);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);

    Tensor eChunked(gemmChainShapeE(cfg));
    Tensor eFlat(gemmChainShapeE(cfg));
    runFusedGemmChain(cfg, chunked, engine, a, b, d, eChunked,
                      ExecOptions{2, nullptr});
    runFusedGemmChain(cfg, flat, engine, a, b, d, eFlat,
                      ExecOptions{2, nullptr});
    EXPECT_TRUE(bitwiseEqual(eChunked, eFlat));
}

TEST(ChunkProfile, CriticalPathSumsPhaseMaxima)
{
    ChunkProfile profile(2);
    EXPECT_EQ(profile.workers(), 2);
    // Four chunks over two workers: 0,1 -> worker 0 and 2,3 -> worker 1.
    profile.beginPhase(4);
    profile.recordChunk(0, 1.0);
    profile.recordChunk(1, 1.0);
    profile.recordChunk(2, 0.5);
    profile.recordChunk(3, 0.25);
    EXPECT_NEAR(profile.criticalPathSeconds(), 2.0, 1e-9);
    // A second phase folds the first and accumulates its own maximum.
    profile.beginPhase(2);
    profile.recordChunk(1, 0.75);
    EXPECT_NEAR(profile.criticalPathSeconds(), 2.75, 1e-9);
    EXPECT_NEAR(profile.totalBusySeconds(), 3.5, 1e-9);
}

TEST(ChunkProfile, FusedRunProducesBalancedCriticalPath)
{
    // A profiled fused run: the simulated critical path must lie
    // between total-busy / workers (perfect balance) and total busy
    // (fully serial), and a 1-worker profile must equal its own total.
    GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan =
        threadAwarePlanFor(chain, 16.0 * 1024, 4);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Rng rng(13);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    Tensor e(gemmChainShapeE(cfg));

    ChunkProfile quad(4);
    {
        ExecOptions options;
        options.threads = 1;
        options.profile = &quad;
        runFusedGemmChain(cfg, plan, engine, a, b, d, e, options);
    }
    EXPECT_GT(quad.totalBusySeconds(), 0.0);
    EXPECT_GE(quad.criticalPathSeconds(),
              quad.totalBusySeconds() / 4.0 - 1e-12);
    EXPECT_LE(quad.criticalPathSeconds(),
              quad.totalBusySeconds() + 1e-12);

    ChunkProfile solo(1);
    {
        ExecOptions options;
        options.threads = 1;
        options.profile = &solo;
        runFusedGemmChain(cfg, plan, engine, a, b, d, e, options);
    }
    EXPECT_NEAR(solo.criticalPathSeconds(), solo.totalBusySeconds(),
                1e-12);
}

TEST(ParallelExec, ExplicitPoolOverrideIsUsed)
{
    // Passing a pool directly (ignoring the thread count) must work and
    // stay bitwise-deterministic.
    Tensor a({2, 33, 21});
    Tensor b({2, 21, 19});
    Rng rng(3);
    fillUniform(a, rng);
    fillUniform(b, rng);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor serial({2, 33, 19});
    runTiledBatchGemm(engine, a, b, serial, GemmTiles{8, 8, 8});

    ThreadPool pool(3);
    ExecOptions options;
    options.pool = &pool;
    Tensor c({2, 33, 19});
    runTiledBatchGemm(engine, a, b, c, GemmTiles{8, 8, 8}, options);
    EXPECT_TRUE(bitwiseEqual(c, serial));
}

TEST(ParallelExec, RaceCheckCleanOnTransformerAttentionChain)
{
    // The shipped transformer workload's own attention chain and plan
    // (scaled down for test time): with the race checker armed, every
    // thread count must claim conflict-free and stay bitwise-identical.
    graph::EncoderConfig enc;
    enc.seqLen = 64;
    enc.heads = 4;
    enc.headDim = 16;
    enc.ffDim = 64;
    const graph::TransformerEncoder encoder(enc, 24.0 * 1024);
    const GemmChainConfig &cfg = encoder.attentionChain();
    const plan::ExecutionPlan &plan = encoder.attentionPlan();
    const ComputeEngine engine = ComputeEngine::best();

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Rng rng(11);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);

    Tensor serial(gemmChainShapeE(cfg));
    runFusedGemmChain(cfg, plan, engine, a, b, d, serial);
    for (int threads : kThreadCounts) {
        analysis::RaceChecker checker(serial.numel());
        Tensor e(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, e,
                          ExecOptions{threads, nullptr, &checker});
        EXPECT_FALSE(checker.hasConflicts())
            << "threads " << threads << "\n" << checker.report();
        EXPECT_TRUE(bitwiseEqual(e, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, RaceCheckCleanOnCnnStageChains)
{
    // Every stage chain of the shipped CNN workload (spatially scaled
    // down), fused, race checker armed, at every thread count.
    graph::CnnConfig cnn = graph::squeezeNetLike();
    cnn.height = 20;
    cnn.width = 20;
    const graph::CnnBackbone backbone(cnn, 256.0 * 1024);
    const ComputeEngine engine = ComputeEngine::best();

    for (const ir::ConvChainConfig &cfg : backbone.stageChains()) {
        const ir::Chain chain = ir::makeConvChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 256.0 * 1024);

        Tensor input(convChainShapeI(cfg));
        Tensor w1(convChainShapeW1(cfg));
        Tensor w2(convChainShapeW2(cfg));
        Rng rng(23);
        fillUniform(input, rng);
        fillUniform(w1, rng);
        fillUniform(w2, rng);

        Tensor serial(convChainShapeO(cfg));
        runFusedConvChain(cfg, plan, engine, input, w1, w2, serial);
        for (int threads : kThreadCounts) {
            analysis::RaceChecker checker(serial.numel());
            Tensor output(convChainShapeO(cfg));
            runFusedConvChain(cfg, plan, engine, input, w1, w2, output,
                              ExecOptions{threads, nullptr, &checker});
            EXPECT_FALSE(checker.hasConflicts())
                << cfg.name << " threads " << threads << "\n"
                << checker.report();
            EXPECT_TRUE(bitwiseEqual(output, serial))
                << cfg.name << " threads " << threads;
        }
    }
}

TEST(ParallelExec, SeededRaceInGemmPlanDetectedSerially)
{
    // A plan document mis-declaring the contracted axis l as parallel:
    // the executor honors the declared table, and the task-keyed shadow
    // memory must observe the conflicting writers even in a fully
    // serial run (a genuinely racy schedule is never executed
    // multithreaded just to prove it races).
    GemmChainConfig cfg;
    cfg.name = "check-gemm-chain";
    cfg.m = 64;
    cfg.n = 64;
    cfg.k = 64;
    cfg.l = 64;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = plan::deserializePlan(
        chain,
        "chimera-plan v2\n"
        "chain: check-gemm-chain\n"
        "order: m,l,k,n\n"
        "tiles: m=16 n=16 k=16 l=16\n"
        "concurrency: m=parallel n=parallel k=reduction l=parallel\n");

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Rng rng(42);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);

    Tensor e(gemmChainShapeE(cfg));
    analysis::RaceChecker checker(e.numel());
    runFusedGemmChain(cfg, plan, ComputeEngine::best(), a, b, d, e,
                      ExecOptions{1, nullptr, &checker});
    EXPECT_TRUE(checker.hasConflicts());
}

TEST(ParallelExec, SeededRaceInConvPlanDetectedSerially)
{
    ir::ConvChainConfig cfg;
    cfg.name = "check-conv-chain";
    cfg.batch = 1;
    cfg.ic = 16;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 16;
    cfg.oc2 = 16;
    cfg.k1 = 3;
    cfg.k2 = 3;
    const ir::Chain chain = ir::makeConvChain(cfg);
    // oc1 is contracted by the second convolution; declaring it
    // parallel (with two oc1 blocks) makes distinct tasks accumulate
    // into the same output elements.
    const plan::ExecutionPlan plan = plan::deserializePlan(
        chain,
        "chimera-plan v2\n"
        "chain: check-conv-chain\n"
        "order: oh,ow,oc1,oc2,ic,kh2,kw2,kh1,kw1\n"
        "tiles: oc2=16 oh=16 ow=16 oc1=8 ic=16 kh2=3 kw2=3 kh1=3 "
        "kw1=3\n"
        "concurrency: oc2=parallel oh=parallel ow=parallel oc1=parallel "
        "ic=reduction kh2=reduction kw2=reduction kh1=reduction "
        "kw1=reduction\n");

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Rng rng(42);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    Tensor output(convChainShapeO(cfg));
    analysis::RaceChecker checker(output.numel());
    runFusedConvChain(cfg, plan, ComputeEngine::best(), input, w1, w2,
                      output, ExecOptions{1, nullptr, &checker});
    EXPECT_TRUE(checker.hasConflicts());
}

/** The blessed axes must all be proven Parallel by the analysis. */
void
expectBlessedSubsetOfProven(const ir::Chain &chain,
                            const plan::ExecutionPlan &plan,
                            const std::vector<std::string> &blessed,
                            const std::vector<std::string> &expected)
{
    const analysis::ConcurrencyTable table =
        analysis::analyzeConcurrency(chain, plan.tiles);
    for (const std::string &name : blessed) {
        EXPECT_TRUE(table.isParallel(ir::axisIdByName(chain, name)))
            << chain.name() << " parallelizes unproven axis " << name;
    }
    std::vector<std::string> sortedBlessed = blessed;
    std::vector<std::string> sortedExpected = expected;
    std::sort(sortedBlessed.begin(), sortedBlessed.end());
    std::sort(sortedExpected.begin(), sortedExpected.end());
    EXPECT_EQ(sortedBlessed, sortedExpected) << chain.name();
}

TEST(ParallelExec, ExecutorParallelAxesMatchAnalysisExactly)
{
    // Cross-check per shipped workload: the axes each fused executor
    // distributes are exactly the region-loop axes the dependence
    // analysis classifies Parallel.
    {
        GemmChainConfig cfg;
        cfg.batch = 3;
        cfg.m = 48;
        cfg.n = 24;
        cfg.k = 16;
        cfg.l = 40;
        cfg.epilogue = Epilogue::Softmax;
        cfg.softmaxScale = 0.25f;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 16.0 * 1024);
        expectBlessedSubsetOfProven(
            chain, plan, fusedGemmChainParallelAxes(cfg, plan),
            {"b", "m"});
    }
    {
        ir::GemmChain3Config cfg;
        cfg.batch = 2;
        cfg.m = 48;
        cfg.n = 24;
        cfg.k = 16;
        cfg.l = 40;
        cfg.p = 20;
        const ir::Chain chain = ir::makeGemmChain3(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 48.0 * 1024);
        expectBlessedSubsetOfProven(
            chain, plan, fusedGemmChain3ParallelAxes(cfg, plan),
            {"b", "m"});
    }
    {
        ConvChainConfig cfg;
        cfg.batch = 2;
        cfg.ic = 6;
        cfg.h = 17;
        cfg.w = 17;
        cfg.oc1 = 9;
        cfg.oc2 = 7;
        cfg.k1 = 3;
        cfg.k2 = 3;
        cfg.epilogue = Epilogue::Relu;
        const ir::Chain chain = ir::makeConvChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 24.0 * 1024);
        expectBlessedSubsetOfProven(
            chain, plan, fusedConvChainParallelAxes(cfg, plan),
            {"b", "oh", "ow"});
    }
}

} // namespace
} // namespace chimera::exec
