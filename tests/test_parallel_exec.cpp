/**
 * @file
 * Determinism tests for the parallel executors: every fused/tiled
 * executor must produce bitwise-identical outputs at 1, 2, and 8
 * threads, because only dependence-free block loops are distributed and
 * every floating-point reduction keeps its serial ascending order.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "exec/conv_chain_exec.hpp"
#include "exec/gemm_chain3_exec.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "plan/planner.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace chimera::exec {
namespace {

using ir::ConvChainConfig;
using ir::Epilogue;
using ir::GemmChainConfig;

constexpr int kThreadCounts[] = {1, 2, 8};

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

plan::ExecutionPlan
planFor(const ir::Chain &chain, double capacityBytes)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    return plan::planChain(chain, options);
}

TEST(ParallelExec, FusedGemmChainBitwiseIdenticalAcrossThreadCounts)
{
    for (Epilogue epi :
         {Epilogue::None, Epilogue::Relu, Epilogue::Softmax}) {
        GemmChainConfig cfg;
        cfg.batch = 3;
        cfg.m = 48;
        cfg.n = 24;
        cfg.k = 16;
        cfg.l = 40;
        cfg.epilogue = epi;
        cfg.softmaxScale = 0.25f;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 16.0 * 1024);
        const ComputeEngine engine = ComputeEngine::best();

        Tensor a(gemmChainShapeA(cfg));
        Tensor b(gemmChainShapeB(cfg));
        Tensor d(gemmChainShapeD(cfg));
        Rng rng(42);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);

        Tensor serial(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, serial);
        for (int threads : kThreadCounts) {
            Tensor e(gemmChainShapeE(cfg));
            runFusedGemmChain(cfg, plan, engine, a, b, d, e,
                              ExecOptions{threads, nullptr});
            EXPECT_TRUE(bitwiseEqual(e, serial))
                << "epilogue " << static_cast<int>(epi) << " threads "
                << threads;
        }
    }
}

TEST(ParallelExec, TiledBatchGemmBitwiseIdenticalAcrossThreadCounts)
{
    Tensor a({3, 37, 29});
    Tensor b({3, 29, 23});
    Rng rng(7);
    fillUniform(a, rng);
    fillUniform(b, rng);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor serial({3, 37, 23});
    runTiledBatchGemm(engine, a, b, serial, GemmTiles{16, 8, 8});
    for (int threads : kThreadCounts) {
        Tensor c({3, 37, 23});
        runTiledBatchGemm(engine, a, b, c, GemmTiles{16, 8, 8},
                          ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(c, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, FusedGemmChain3BitwiseIdenticalAcrossThreadCounts)
{
    ir::GemmChain3Config cfg;
    cfg.batch = 2;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    cfg.p = 20;
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 48.0 * 1024;
    options.constraints = gemmChain3Constraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor a(gemmChain3ShapeA(cfg));
    Tensor b(gemmChain3ShapeB(cfg));
    Tensor d(gemmChain3ShapeD(cfg));
    Tensor f(gemmChain3ShapeF(cfg));
    Rng rng(5);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    fillUniform(f, rng);

    Tensor serial(gemmChain3ShapeE(cfg));
    runFusedGemmChain3(cfg, plan, engine, a, b, d, f, serial);
    for (int threads : kThreadCounts) {
        Tensor e(gemmChain3ShapeE(cfg));
        runFusedGemmChain3(cfg, plan, engine, a, b, d, f, e,
                           ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(e, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, FusedConvChainBitwiseIdenticalAcrossThreadCounts)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 6;
    cfg.h = 17;
    cfg.w = 17;
    cfg.oc1 = 9;
    cfg.oc2 = 7;
    cfg.k1 = 3;
    cfg.k2 = 3;
    cfg.stride1 = 1;
    cfg.stride2 = 2;
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 24.0 * 1024);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Rng rng(31);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    Tensor serial(convChainShapeO(cfg));
    runFusedConvChain(cfg, plan, engine, input, w1, w2, serial);
    for (int threads : kThreadCounts) {
        Tensor output(convChainShapeO(cfg));
        runFusedConvChain(cfg, plan, engine, input, w1, w2, output,
                          ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(output, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, UnfusedConvChainBitwiseIdenticalAcrossThreadCounts)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 5;
    cfg.h = 13;
    cfg.w = 13;
    cfg.oc1 = 8;
    cfg.oc2 = 6;
    cfg.k1 = 3;
    cfg.k2 = 1;
    cfg.epilogue = Epilogue::Relu;
    const ComputeEngine engine = ComputeEngine::best();

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Rng rng(17);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    Tensor serialScratch(convChainShapeT(cfg));
    Tensor serial(convChainShapeO(cfg));
    runUnfusedConvChain(cfg, engine, input, w1, w2, serialScratch, serial,
                        {4, 4}, {4, 4});
    for (int threads : kThreadCounts) {
        Tensor scratch(convChainShapeT(cfg));
        Tensor output(convChainShapeO(cfg));
        runUnfusedConvChain(cfg, engine, input, w1, w2, scratch, output,
                            {4, 4}, {4, 4},
                            ExecOptions{threads, nullptr});
        EXPECT_TRUE(bitwiseEqual(output, serial)) << "threads " << threads;
    }
}

TEST(ParallelExec, ExplicitPoolOverrideIsUsed)
{
    // Passing a pool directly (ignoring the thread count) must work and
    // stay bitwise-deterministic.
    Tensor a({2, 33, 21});
    Tensor b({2, 21, 19});
    Rng rng(3);
    fillUniform(a, rng);
    fillUniform(b, rng);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor serial({2, 33, 19});
    runTiledBatchGemm(engine, a, b, serial, GemmTiles{8, 8, 8});

    ThreadPool pool(3);
    ExecOptions options;
    options.pool = &pool;
    Tensor c({2, 33, 19});
    runTiledBatchGemm(engine, a, b, c, GemmTiles{8, 8, 8}, options);
    EXPECT_TRUE(bitwiseEqual(c, serial));
}

} // namespace
} // namespace chimera::exec
