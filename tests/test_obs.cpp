/**
 * @file
 * Unit tests for src/obs: the HDR histogram (bucket boundaries, merge
 * associativity, bounded percentile error), the metrics registry, and
 * the trace recorder (multi-threaded recording, JSON export, the
 * disabled fast path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace chimera::obs {
namespace {

// --- HistogramLayout -------------------------------------------------

TEST(ObsHistogram, BucketBoundariesRoundTrip)
{
    // Every value must land in a bucket whose [lower, upper] range
    // contains it. Sweep the interesting values: the exact unit range,
    // powers of two and their neighbours across the full int64 span.
    std::vector<std::int64_t> values;
    for (std::int64_t v = 0; v < 256; ++v) {
        values.push_back(v);
    }
    for (int k = 5; k < 63; ++k) {
        const std::int64_t p = std::int64_t{1} << k;
        values.push_back(p - 1);
        values.push_back(p);
        values.push_back(p + 1);
        if (k < 62) {
            values.push_back(p + p / 2); // mid-octave
        }
    }
    for (const std::int64_t v : values) {
        const int index = HistogramLayout::bucketIndex(v);
        ASSERT_GE(index, 0) << "value " << v;
        ASSERT_LT(index, HistogramLayout::kBucketCount) << "value " << v;
        EXPECT_LE(HistogramLayout::lowerBound(index), v)
            << "value " << v << " bucket " << index;
        EXPECT_GE(HistogramLayout::upperBound(index), v)
            << "value " << v << " bucket " << index;
    }
}

TEST(ObsHistogram, BucketIndicesAreMonotonic)
{
    // Indices never decrease as values grow (spot-check across scales).
    int last = -1;
    for (std::int64_t v = 0; v < 4096; ++v) {
        const int index = HistogramLayout::bucketIndex(v);
        EXPECT_GE(index, last) << "value " << v;
        last = index;
    }
    for (int k = 12; k < 62; ++k) {
        const int index =
            HistogramLayout::bucketIndex(std::int64_t{1} << k);
        EXPECT_GT(index, last) << "octave " << k;
        last = index;
    }
}

TEST(ObsHistogram, BucketWidthBoundsRelativeError)
{
    // Width <= value / 32 for v >= 32: the 1/32 relative error bound.
    for (const std::int64_t v :
         {std::int64_t{32}, std::int64_t{100}, std::int64_t{4097},
          std::int64_t{1} << 30, (std::int64_t{1} << 40) + 12345}) {
        const int index = HistogramLayout::bucketIndex(v);
        const std::int64_t width = HistogramLayout::upperBound(index) -
                                   HistogramLayout::lowerBound(index) + 1;
        EXPECT_LE(width, std::max<std::int64_t>(1, v / 32))
            << "value " << v;
    }
}

TEST(ObsHistogram, ExactBelowThirtyTwo)
{
    // The unit range is exact: one value per bucket.
    for (std::int64_t v = 0; v < 32; ++v) {
        const int index = HistogramLayout::bucketIndex(v);
        EXPECT_EQ(HistogramLayout::lowerBound(index), v);
        EXPECT_EQ(HistogramLayout::upperBound(index), v);
    }
}

// --- Histogram recording and snapshots -------------------------------

TEST(ObsHistogram, CountSumMinMax)
{
    Histogram h;
    h.record(10);
    h.record(500);
    h.record(3);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count(), 3);
    EXPECT_EQ(snap.sum(), 513);
    EXPECT_EQ(snap.min(), 3);
    EXPECT_EQ(snap.max(), 500);
    EXPECT_DOUBLE_EQ(snap.mean(), 171.0);
}

TEST(ObsHistogram, EmptySnapshotIsZero)
{
    const HistogramSnapshot snap = Histogram().snapshot();
    EXPECT_EQ(snap.count(), 0);
    EXPECT_EQ(snap.min(), 0);
    EXPECT_EQ(snap.max(), 0);
    EXPECT_EQ(snap.percentile(0.5), 0);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogram, NegativeValuesClampToZero)
{
    Histogram h;
    h.record(-100);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count(), 1);
    EXPECT_EQ(snap.min(), 0);
    EXPECT_EQ(snap.percentile(1.0), 0);
}

TEST(ObsHistogram, PercentileWithinOneBucketWidth)
{
    // 1e6 samples from a deterministic skewed distribution: every
    // reported percentile must sit within one bucket width (relative
    // error 1/32) of the exact order statistic.
    Histogram h;
    std::vector<std::int64_t> exact;
    exact.reserve(1000000);
    Rng rng(42);
    for (int i = 0; i < 1000000; ++i) {
        // Log-uniform-ish: spread over [1, ~1e9] so many octaves fill.
        const double u = rng.uniform();
        const auto v = static_cast<std::int64_t>(
            std::pow(10.0, 1.0 + 8.0 * u));
        h.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    const HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count(), 1000000);
    for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
        const std::int64_t reported = snap.percentile(q);
        const auto rank = static_cast<std::size_t>(std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::ceil(q * static_cast<double>(exact.size())))));
        const std::int64_t truth = exact[rank - 1];
        // One bucket width at this magnitude.
        const std::int64_t slack =
            std::max<std::int64_t>(1, truth / 32 + 1);
        EXPECT_GE(reported, truth - slack) << "q=" << q;
        EXPECT_LE(reported, truth + slack) << "q=" << q;
    }
    EXPECT_EQ(snap.percentile(1.0), snap.max());
}

TEST(ObsHistogram, MergeMatchesCombinedRecording)
{
    // Merging shard snapshots must equal one histogram fed everything.
    Histogram a;
    Histogram b;
    Histogram combined;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const auto v =
            static_cast<std::int64_t>(rng.uniform() * 1e7);
        (i % 2 == 0 ? a : b).record(v);
        combined.record(v);
    }
    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const HistogramSnapshot reference = combined.snapshot();
    EXPECT_EQ(merged.count(), reference.count());
    EXPECT_EQ(merged.sum(), reference.sum());
    EXPECT_EQ(merged.min(), reference.min());
    EXPECT_EQ(merged.max(), reference.max());
    for (int i = 0; i < HistogramLayout::kBucketCount; ++i) {
        ASSERT_EQ(merged.bucketCount(i), reference.bucketCount(i))
            << "bucket " << i;
    }
}

TEST(ObsHistogram, MergeIsAssociative)
{
    Histogram ha;
    Histogram hb;
    Histogram hc;
    Rng rng(11);
    for (int i = 0; i < 3000; ++i) {
        ha.record(static_cast<std::int64_t>(rng.uniform() * 1e4));
        hb.record(static_cast<std::int64_t>(rng.uniform() * 1e6));
        hc.record(static_cast<std::int64_t>(rng.uniform() * 1e8));
    }
    // (a + b) + c
    HistogramSnapshot left = ha.snapshot();
    left.merge(hb.snapshot());
    left.merge(hc.snapshot());
    // a + (b + c)
    HistogramSnapshot bc = hb.snapshot();
    bc.merge(hc.snapshot());
    HistogramSnapshot right = ha.snapshot();
    right.merge(bc);
    EXPECT_EQ(left.count(), right.count());
    EXPECT_EQ(left.sum(), right.sum());
    EXPECT_EQ(left.min(), right.min());
    EXPECT_EQ(left.max(), right.max());
    for (int i = 0; i < HistogramLayout::kBucketCount; ++i) {
        ASSERT_EQ(left.bucketCount(i), right.bucketCount(i))
            << "bucket " << i;
    }
    for (const double q : {0.5, 0.99}) {
        EXPECT_EQ(left.percentile(q), right.percentile(q));
    }
}

TEST(ObsHistogram, RecordSecondsRoundsToNanos)
{
    Histogram h;
    h.recordSeconds(0.001); // 1 ms = 1e6 ns
    h.recordSeconds(-5.0); // clamps to 0
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count(), 2);
    EXPECT_EQ(snap.min(), 0);
    // Within one bucket width of 1e6 ns.
    EXPECT_NEAR(static_cast<double>(snap.max()), 1e6, 1e6 / 32.0);
    EXPECT_NEAR(snap.maxSeconds(), 1e-3, 1e-3 / 32.0);
}

TEST(ObsHistogram, ConcurrentRecordLosesNothing)
{
    Histogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i) {
                h.record(t * 1000 + (i % 97));
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_EQ(h.snapshot().count(), kThreads * kPerThread);
}

// --- Registry --------------------------------------------------------

TEST(ObsRegistry, ReturnsStableReferences)
{
    Registry registry;
    Counter &c1 = registry.counter("chimera.test.counter");
    Counter &c2 = registry.counter("chimera.test.counter");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    EXPECT_EQ(c2.value(), 3);
    Histogram &h1 = registry.histogram("chimera.test.h_seconds");
    Histogram &h2 = registry.histogram("chimera.test.h_seconds");
    EXPECT_EQ(&h1, &h2);
    Gauge &g = registry.gauge("chimera.test.gauge");
    g.set(7);
    g.add(-2);
    EXPECT_EQ(g.value(), 5);
}

TEST(ObsRegistry, RenderTextSecondsVsRawHistograms)
{
    Registry registry;
    registry.counter("chimera.test.hits").add(2);
    registry.histogram("chimera.test.lat_seconds").recordSeconds(0.5);
    registry.histogram("chimera.test.sizes").record(4);
    const std::string text = registry.renderText();
    EXPECT_NE(text.find("chimera.test.hits: 2"), std::string::npos);
    // *_seconds histograms render in the seconds domain...
    EXPECT_NE(text.find("chimera.test.lat_seconds-p99-seconds: "),
              std::string::npos);
    // ...anything else renders raw integer percentiles.
    EXPECT_NE(text.find("chimera.test.sizes-p99: 4"), std::string::npos);
    EXPECT_EQ(text.find("chimera.test.sizes-p99-seconds"),
              std::string::npos);
}

TEST(ObsRegistry, RenderJsonMergesRegistries)
{
    Registry a;
    Registry b;
    a.counter("chimera.test.only_a").add(1);
    b.counter("chimera.test.only_b").add(2);
    b.histogram("chimera.test.lat_seconds").recordSeconds(0.125);
    const std::string json = renderJson({&a, &b, nullptr});
    EXPECT_NE(json.find("\"chimera.test.only_a\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"chimera.test.only_b\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"chimera.test.lat_seconds\": {\"count\": 1"),
              std::string::npos);
}

TEST(ObsRegistry, GlobalIsSingleton)
{
    EXPECT_EQ(&Registry::global(), &Registry::global());
}

// --- TraceRecorder ---------------------------------------------------

TEST(ObsTrace, RecordsCompleteEventsWithArgs)
{
    TraceRecorder recorder;
    {
        Span span(&recorder, "test.span", "test");
        span.arg("i", std::int64_t{42})
            .arg("f", 2.5)
            .arg("s", std::string("hello \"quoted\"\n"));
    }
    recorder.instant("test.marker", "test", {{"k", std::int64_t{1}}});
    EXPECT_EQ(recorder.eventCount(), 2);
    const std::string json = recorder.toJson();
    EXPECT_NE(json.find("\"name\": \"test.span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"i\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"f\": 2.5"), std::string::npos);
    // The string arg must be escaped, not raw.
    EXPECT_NE(json.find("hello \\\"quoted\\\"\\n"), std::string::npos);
    EXPECT_EQ(json.find('\r'), std::string::npos);
}

TEST(ObsTrace, SpanEndIsIdempotent)
{
    TraceRecorder recorder;
    Span span(&recorder, "test.span", "test");
    span.end();
    span.end(); // second end records nothing
    span.arg("late", std::int64_t{1}); // args after end are dropped
    EXPECT_EQ(recorder.eventCount(), 1);
}

TEST(ObsTrace, NullRecorderSpanIsNoop)
{
    Span span(nullptr, "test.span", "test");
    span.arg("k", std::int64_t{1});
    EXPECT_FALSE(span.enabled());
    span.end(); // must not crash
}

TEST(ObsTrace, MultiThreadedRecordingKeepsEveryEvent)
{
    TraceRecorder recorder;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            recorder.nameThread("worker." + std::to_string(t));
            for (int i = 0; i < kPerThread; ++i) {
                Span span(&recorder, "test.op", "test");
                span.arg("t", std::int64_t{t}).arg("i", std::int64_t{i});
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    // + kThreads: nameThread records one metadata event per track.
    EXPECT_EQ(recorder.eventCount(), kThreads * (kPerThread + 1));
    EXPECT_EQ(recorder.droppedCount(), 0);
    const std::string json = recorder.toJson();
    // Thread-name metadata events for every worker track.
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_NE(json.find("worker." + std::to_string(t)),
                  std::string::npos);
    }
}

TEST(ObsTrace, ReadersSeeConsistentStateDuringRecording)
{
    // toJson while writers append: the snapshot must always be valid
    // JSON-shaped output over a prefix of the events, never a torn
    // read. (TSan runs this test too; see the CI filter.)
    TraceRecorder recorder;
    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> written{0};
    std::thread writer([&] {
        while (!stop.load()) {
            // Cap the volume: each toJson below is O(events), and an
            // unthrottled writer would make the reader loop quadratic.
            if (written.load() < 20000) {
                Span span(&recorder, "test.op", "test");
                span.arg("x", std::int64_t{1});
                written.fetch_add(1);
            } else {
                std::this_thread::yield();
            }
        }
    });
    while (written.load() == 0) {
        std::this_thread::yield();
    }
    for (int i = 0; i < 50; ++i) {
        const std::string json = recorder.toJson();
        EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    }
    stop.store(true);
    writer.join();
    EXPECT_GT(recorder.eventCount(), 0);
}

TEST(ObsTrace, SharedClockWithNowNanos)
{
    const std::int64_t before = nowNanos();
    TraceRecorder recorder;
    {
        Span span(&recorder, "test.span", "test");
    }
    const std::int64_t after = nowNanos();
    EXPECT_LE(before, after);
    // Timestamps in the export are microseconds on the same epoch.
    const std::string json = recorder.toJson();
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
}

} // namespace
} // namespace chimera::obs
