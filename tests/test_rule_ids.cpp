/**
 * @file
 * Golden-list test of the published rule-id registry: the complete,
 * ordered id set every verifier pass draws from. A rename, a dropped
 * rule, or an id added without registry coverage fails here before any
 * grep in CI or the docs drifts.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "verify/diagnostics.hpp"

namespace chimera {
namespace {

TEST(RuleIds, GoldenListInFamilyOrder)
{
    const std::vector<std::string> expected = {
        // Chain well-formedness.
        "CH01", "CH02", "CH03", "CH04", "CH05", "CH06", "CH07",
        // Plan legality and document binding.
        "PL01", "PL02", "PL03", "PL04", "PL05", "PL06", "PL07", "PL08",
        "PL09", "PL10", "PL11", "PL12", "PL13", "PL14", "PL15",
        // Micro-kernel parameters.
        "KP01", "KP02", "KP03",
        // Declared-concurrency vs dependence analysis.
        "DP01", "DP02", "DP03", "DP04", "DP05", "DP06",
        // Dynamic race detection.
        "RC01",
        // Symbolic static safety.
        "SB01", "SB02", "SB03", "SB04",
        // Order-equivalence / search pruning soundness.
        "OE01", "OE02", "OE03", "OE04"};
    ASSERT_EQ(expected.size(), 40u);

    const std::vector<verify::RuleInfo> &rules = verify::publishedRules();
    ASSERT_EQ(rules.size(), expected.size());
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(rules[i].id, expected[i]) << "registry position " << i;
    }
}

TEST(RuleIds, EntriesAreInternallyConsistent)
{
    std::set<std::string> seen;
    for (const verify::RuleInfo &rule : verify::publishedRules()) {
        EXPECT_TRUE(seen.insert(rule.id).second)
            << rule.id << " registered twice";
        // The id is its family prefix plus a two-digit ordinal.
        ASSERT_GE(rule.id.size(), 4u);
        EXPECT_EQ(rule.id.substr(0, rule.family.size()), rule.family);
        EXPECT_FALSE(rule.meaning.empty()) << rule.id;
        const std::string ordinal = rule.id.substr(rule.family.size());
        EXPECT_EQ(ordinal.size(), 2u) << rule.id;
        EXPECT_NE(ordinal.find_first_of("0123456789"), std::string::npos)
            << rule.id;
    }
}

TEST(RuleIds, OnlyTheRaceScanIsDynamic)
{
    for (const verify::RuleInfo &rule : verify::publishedRules()) {
        if (rule.id == "RC01") {
            EXPECT_FALSE(rule.staticRule);
        } else {
            EXPECT_TRUE(rule.staticRule) << rule.id;
        }
    }
}

TEST(RuleIds, EveryIdRendersThroughDiagnostics)
{
    // Every published id must flow through the Report rendering the
    // tools print: "error: [ID] location: message".
    verify::Report report;
    for (const verify::RuleInfo &rule : verify::publishedRules()) {
        report.error(rule.id, "registry-test", rule.meaning);
    }
    EXPECT_EQ(report.errorCount(),
              static_cast<int>(verify::publishedRules().size()));
    const std::string rendered = report.render();
    for (const verify::RuleInfo &rule : verify::publishedRules()) {
        EXPECT_NE(rendered.find("[" + rule.id + "] registry-test:"),
                  std::string::npos)
            << rule.id;
        EXPECT_TRUE(report.hasRule(rule.id));
    }
}

} // namespace
} // namespace chimera
