/**
 * @file
 * Unit tests for the worker-thread pool: exact range coverage, worker
 * indices, exception propagation, the serial degenerate cases, and the
 * CHIMERA_THREADS / explicit-count resolution policy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace chimera {
namespace {

/** Scoped CHIMERA_THREADS override; restores the prior value on exit. */
class ScopedThreadsEnv
{
  public:
    explicit ScopedThreadsEnv(const char *value)
    {
        const char *prev = std::getenv("CHIMERA_THREADS");
        hadPrev_ = prev != nullptr;
        if (hadPrev_) {
            prev_ = prev;
        }
        if (value == nullptr) {
            ::unsetenv("CHIMERA_THREADS");
        } else {
            ::setenv("CHIMERA_THREADS", value, 1);
        }
    }

    ~ScopedThreadsEnv()
    {
        if (hadPrev_) {
            ::setenv("CHIMERA_THREADS", prev_.c_str(), 1);
        } else {
            ::unsetenv("CHIMERA_THREADS");
        }
    }

  private:
    bool hadPrev_ = false;
    std::string prev_;
};

TEST(ThreadPool, CoversFullRangeExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    // 103 is deliberately not a multiple of 4 to exercise the remainder
    // distribution. Each index is visited by exactly one worker, so the
    // per-index slots need no synchronization.
    const std::int64_t n = 103;
    std::vector<int> visits(static_cast<std::size_t>(n), 0);
    std::vector<int> workerOf(static_cast<std::size_t>(n), -1);
    pool.parallelFor(0, n, [&](std::int64_t i, int worker) {
        visits[static_cast<std::size_t>(i)] += 1;
        workerOf[static_cast<std::size_t>(i)] = worker;
    });
    for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[static_cast<std::size_t>(i)], 1) << "index " << i;
        EXPECT_GE(workerOf[static_cast<std::size_t>(i)], 0);
        EXPECT_LT(workerOf[static_cast<std::size_t>(i)], pool.size());
    }
}

TEST(ThreadPool, ChunksAreContiguousPerWorker)
{
    ThreadPool pool(3);
    const std::int64_t n = 10;
    std::vector<int> workerOf(static_cast<std::size_t>(n), -1);
    pool.parallelFor(0, n, [&](std::int64_t i, int worker) {
        workerOf[static_cast<std::size_t>(i)] = worker;
    });
    // Static chunking: worker ids are non-decreasing over the range and
    // the calling thread owns chunk 0.
    EXPECT_EQ(workerOf.front(), 0);
    for (std::int64_t i = 1; i < n; ++i) {
        EXPECT_GE(workerOf[static_cast<std::size_t>(i)],
                  workerOf[static_cast<std::size_t>(i - 1)]);
    }
}

TEST(ThreadPool, EmptyAndNegativeRangesRunNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](std::int64_t, int) { ++calls; });
    pool.parallelFor(7, 2, [&](std::int64_t, int) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, PropagatesWorkerException)
{
    ThreadPool pool(4);
    // Thrown from a non-caller chunk: index near the end of the range.
    EXPECT_THROW(pool.parallelFor(0, 64,
                                  [&](std::int64_t i, int) {
                                      if (i == 63) {
                                          throw std::runtime_error("boom");
                                      }
                                  }),
                 std::runtime_error);
    // The pool survives a throwing job and runs the next one cleanly.
    std::atomic<int> calls{0};
    pool.parallelFor(0, 16, [&](std::int64_t, int) { ++calls; });
    EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, PropagatesCallerChunkException)
{
    ThreadPool pool(2);
    // Index 0 always belongs to the calling thread's chunk.
    EXPECT_THROW(pool.parallelFor(0, 8,
                                  [&](std::int64_t i, int) {
                                      if (i == 0) {
                                          throw std::runtime_error("boom");
                                      }
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, PoolOfOneRunsSeriallyOnCallingThread)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::int64_t next = 0;
    pool.parallelFor(0, 20, [&](std::int64_t i, int worker) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(worker, 0);
        EXPECT_EQ(i, next); // strictly in order: plain serial loop
        ++next;
    });
    EXPECT_EQ(next, 20);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.parallelFor(0, 4, [&](std::int64_t, int) {
        // A nested call must not deadlock on the same pool; it runs
        // serially on the current worker.
        pool.parallelFor(0, 8, [&](std::int64_t, int worker) {
            EXPECT_EQ(worker, 0);
            ++inner;
        });
    });
    EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, NullPoolHelperRunsSerially)
{
    std::int64_t next = 3;
    parallelFor(nullptr, 3, 9, [&](std::int64_t i, int worker) {
        EXPECT_EQ(worker, 0);
        EXPECT_EQ(i, next);
        ++next;
    });
    EXPECT_EQ(next, 9);
}

TEST(ThreadCount, ExplicitRequestWinsOverEnvironment)
{
    ScopedThreadsEnv env("7");
    EXPECT_EQ(resolveThreadCount(3), 3);
    EXPECT_EQ(resolveThreadCount(1), 1);
    EXPECT_EQ(resolveThreadCount(0), 7);
    EXPECT_EQ(resolveThreadCount(-2), 7);
}

TEST(ThreadCount, EnvForcesSerialExecution)
{
    ScopedThreadsEnv env("1");
    EXPECT_EQ(defaultThreadCount(), 1);
    // Serial resolution yields no pool at all: the executors fall back
    // to the plain in-thread loop.
    EXPECT_EQ(poolForThreads(0), nullptr);
    EXPECT_EQ(poolForThreads(1), nullptr);
}

TEST(ThreadCount, MalformedEnvFallsBackToHardware)
{
    ScopedThreadsEnv env("bananas");
    EXPECT_EQ(defaultThreadCount(), hardwareThreadCount());
}

TEST(ThreadCount, PartiallyNumericEnvIsRejectedWhole)
{
    // "4abc" used to be silently truncated to 4 threads by strtol; the
    // whole token must now be rejected, like any other malformed value.
    ScopedThreadsEnv env("4abc");
    EXPECT_EQ(defaultThreadCount(), hardwareThreadCount());
}

TEST(ThreadCount, NonPositiveEnvIsRejected)
{
    {
        ScopedThreadsEnv env("0");
        EXPECT_EQ(defaultThreadCount(), hardwareThreadCount());
    }
    {
        ScopedThreadsEnv env("-3");
        EXPECT_EQ(defaultThreadCount(), hardwareThreadCount());
    }
}

TEST(ThreadCount, SharedPoolsArePersistentPerSize)
{
    ThreadPool *a = poolForThreads(2);
    ThreadPool *b = poolForThreads(2);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a->size(), 2);
    ThreadPool *c = poolForThreads(3);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(a, c);
    EXPECT_EQ(c->size(), 3);
}

TEST(StaticChunk, RangesPartitionTheTotalInOrder)
{
    for (std::int64_t total : {1, 3, 7, 8, 9, 64, 103}) {
        for (int workers : {1, 2, 3, 4, 8, 16}) {
            std::int64_t next = 0;
            for (int w = 0; w < workers; ++w) {
                const ChunkRange range =
                    staticChunkRange(total, workers, w);
                EXPECT_EQ(range.begin, next)
                    << "total " << total << " workers " << workers
                    << " worker " << w;
                EXPECT_GE(range.end, range.begin);
                next = range.end;
                // The remainder goes to the first workers: sizes never
                // differ by more than one and never increase.
                const std::int64_t size = range.end - range.begin;
                EXPECT_LE(size, total / workers + 1);
            }
            EXPECT_EQ(next, total)
                << "total " << total << " workers " << workers;
        }
    }
}

TEST(StaticChunk, OwnerAgreesWithRanges)
{
    for (std::int64_t total : {1, 5, 8, 24, 103}) {
        for (int workers : {1, 2, 4, 8, 16}) {
            for (std::int64_t i = 0; i < total; ++i) {
                const int owner = staticChunkOwner(i, total, workers);
                const ChunkRange range =
                    staticChunkRange(total, workers, owner);
                EXPECT_TRUE(i >= range.begin && i < range.end)
                    << "total " << total << " workers " << workers
                    << " index " << i << " owner " << owner;
            }
        }
    }
}

TEST(StaticChunk, DegenerateInputsAreEmptyOrClamped)
{
    const ChunkRange empty = staticChunkRange(0, 4, 0);
    EXPECT_EQ(empty.begin, empty.end);
    const ChunkRange outside = staticChunkRange(8, 4, 7);
    EXPECT_EQ(outside.begin, outside.end);
    EXPECT_EQ(staticChunkOwner(0, 0, 4), 0);
    EXPECT_EQ(staticChunkOwner(5, 8, 0), 0);
}

TEST(StaticChunk, ExhaustivePropertySweepIncludingMoreWorkersThanWork)
{
    // Exhaustive over the regime the dispatchers actually hit, with
    // the edge cases that used to misbehave deliberately inside the
    // sweep: total == 0 (everything empty, owner 0) and
    // workers > total (the trailing workers own empty ranges, and the
    // owner of any index — in range or clamped — must still be a
    // worker with work, never one of the empty tails).
    for (std::int64_t total = 0; total <= 40; ++total) {
        for (int workers = 1; workers <= 48; ++workers) {
            std::int64_t next = 0;
            std::int64_t previousSize = total + 1;
            for (int w = 0; w < workers; ++w) {
                const ChunkRange range =
                    staticChunkRange(total, workers, w);
                ASSERT_EQ(range.begin, next)
                    << "gap/overlap at total " << total << " workers "
                    << workers << " worker " << w;
                ASSERT_GE(range.end, range.begin);
                const std::int64_t size = range.end - range.begin;
                ASSERT_LE(size, previousSize)
                    << "sizes must be non-increasing";
                previousSize = size;
                next = range.end;
            }
            ASSERT_EQ(next, total);

            for (std::int64_t index = -3; index <= total + 3; ++index) {
                const int owner =
                    staticChunkOwner(index, total, workers);
                ASSERT_GE(owner, 0);
                ASSERT_LT(owner, workers);
                const ChunkRange range =
                    staticChunkRange(total, workers, owner);
                if (index >= 0 && index < total) {
                    ASSERT_TRUE(index >= range.begin &&
                                index < range.end)
                        << "total " << total << " workers " << workers
                        << " index " << index << " owner " << owner;
                } else if (total > 0) {
                    // Clamped: still a worker that owns real work.
                    ASSERT_LT(range.begin, range.end)
                        << "owner of a clamped index must be non-empty:"
                        << " total " << total << " workers " << workers
                        << " index " << index << " owner " << owner;
                } else {
                    ASSERT_EQ(owner, 0);
                }
            }
        }
    }
}

} // namespace
} // namespace chimera
