/**
 * @file
 * Dependence-analysis tests: the per-axis concurrency tables derived
 * from the chain access maps must match the hand-proved classification
 * for every shipped workload form, and the write-write conflict test
 * must catch overlapping-output axes that neither a disjointness nor an
 * accumulation-order argument can save.
 */

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "analysis/race_checker.hpp"
#include "ir/builders.hpp"
#include "support/error.hpp"

namespace chimera::analysis {
namespace {

using ir::AxisId;
using ir::Epilogue;

AxisConcurrency
kindOf(const ConcurrencyTable &table, const ir::Chain &chain,
       const std::string &axis)
{
    return table.kindOf(ir::axisIdByName(chain, axis));
}

std::vector<std::int64_t>
halvedTiles(const ir::Chain &chain)
{
    std::vector<std::int64_t> tiles = chain.fullExtents();
    for (std::int64_t &t : tiles) {
        t = std::max<std::int64_t>(1, t / 2);
    }
    return tiles;
}

TEST(Dependence, GemmChainTableMatchesHandProof)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 2;
    cfg.m = 32;
    cfg.n = 32;
    cfg.k = 32;
    cfg.l = 32;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const ConcurrencyTable table =
        analyzeConcurrency(chain, halvedTiles(chain));

    EXPECT_EQ(kindOf(table, chain, "b"), AxisConcurrency::Parallel);
    EXPECT_EQ(kindOf(table, chain, "m"), AxisConcurrency::Parallel);
    EXPECT_EQ(kindOf(table, chain, "n"), AxisConcurrency::Parallel);
    EXPECT_EQ(kindOf(table, chain, "k"), AxisConcurrency::Reduction);
    EXPECT_EQ(kindOf(table, chain, "l"), AxisConcurrency::Reduction);
    for (const AxisClassification &cls : table.axes) {
        EXPECT_FALSE(cls.epilogueInduced);
        EXPECT_FALSE(cls.reason.empty());
    }
}

TEST(Dependence, SoftmaxEpilogueFlagsTheRowAxis)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 2;
    cfg.m = 32;
    cfg.n = 32;
    cfg.k = 32;
    cfg.l = 32;
    cfg.epilogue = Epilogue::Softmax;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const ConcurrencyTable table =
        analyzeConcurrency(chain, halvedTiles(chain));

    // The row sum accumulates across l blocks of the intermediate; l was
    // already a reduction axis (gemm2 contracts it), but the flag must
    // record the epilogue coupling so the verifier can refuse a parallel
    // re-declaration with the sharper DP05 diagnosis.
    const AxisId l = ir::axisIdByName(chain, "l");
    EXPECT_EQ(table.kindOf(l), AxisConcurrency::Reduction);
    EXPECT_TRUE(table.axes[static_cast<std::size_t>(l)].epilogueInduced);
    EXPECT_FALSE(table.axes[static_cast<std::size_t>(
        ir::axisIdByName(chain, "m"))].epilogueInduced);
}

TEST(Dependence, ConvChainTableMatchesHandProof)
{
    ir::ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 8;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 8;
    cfg.oc2 = 8;
    cfg.k1 = 3;
    cfg.k2 = 3;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const ConcurrencyTable table =
        analyzeConcurrency(chain, halvedTiles(chain));

    for (const char *axis : {"b", "oc2", "oh", "ow"}) {
        EXPECT_EQ(kindOf(table, chain, axis), AxisConcurrency::Parallel)
            << axis;
    }
    for (const char *axis : {"oc1", "ic", "kh2", "kw2", "kh1", "kw1"}) {
        EXPECT_EQ(kindOf(table, chain, axis), AxisConcurrency::Reduction)
            << axis;
    }
}

TEST(Dependence, GemmChain3TableMatchesHandProof)
{
    ir::GemmChain3Config cfg;
    cfg.batch = 2;
    cfg.m = 32;
    cfg.n = 16;
    cfg.k = 16;
    cfg.l = 24;
    cfg.p = 12;
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    const ConcurrencyTable table =
        analyzeConcurrency(chain, halvedTiles(chain));

    for (const char *axis : {"b", "m", "n"}) {
        EXPECT_EQ(kindOf(table, chain, axis), AxisConcurrency::Parallel)
            << axis;
    }
    for (const char *axis : {"k", "l", "p"}) {
        EXPECT_EQ(kindOf(table, chain, axis), AxisConcurrency::Reduction)
            << axis;
    }
}

TEST(Dependence, FullExtentTilesKeepOutputAxesParallel)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 1;
    cfg.m = 32;
    cfg.n = 32;
    cfg.k = 32;
    cfg.l = 32;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const ConcurrencyTable table =
        analyzeConcurrency(chain, chain.fullExtents());

    // One block per axis: the output axes are trivially parallel. The
    // contracted axes still classify Reduction — the accumulation is a
    // property of the access maps, not of the block count, and a
    // one-block reduction loop runs identically either way.
    EXPECT_EQ(kindOf(table, chain, "m"), AxisConcurrency::Parallel);
    EXPECT_EQ(kindOf(table, chain, "n"), AxisConcurrency::Parallel);
    EXPECT_EQ(kindOf(table, chain, "k"), AxisConcurrency::Reduction);
    EXPECT_EQ(kindOf(table, chain, "l"), AxisConcurrency::Reduction);
}

TEST(Dependence, OverlappingOutputWindowClassifiesSequential)
{
    // A smear operator whose *chain output* is indexed oh + kh: with
    // tiles T_oh = 2, T_kh = 3 a block's window along the dimension has
    // width 1 + 1*(2-1) + 1*(3-1) = 4 while advancing the oh block only
    // shifts it by T_oh = 2. Adjacent blocks overwrite each other and
    // the output is not an intermediate, so no halo-recompute exemption
    // applies: both axes must serialize, in order.
    ir::Chain chain("smear");
    const AxisId oh = chain.addAxis("oh", 8);
    const AxisId kh = chain.addAxis("kh", 3, /*reorderable=*/false);

    ir::TensorDecl in;
    in.name = "I";
    in.kind = ir::TensorKind::Input;
    in.dims = {ir::AccessDim{{{oh, 1}, {kh, 1}}}};
    const int inId = chain.addTensor(in);

    ir::TensorDecl out;
    out.name = "O";
    out.kind = ir::TensorKind::Output;
    out.dims = {ir::AccessDim{{{oh, 1}, {kh, 1}}}};
    const int outId = chain.addTensor(out);

    ir::OpDecl op;
    op.name = "smear";
    op.kind = ir::OpKind::Conv2d;
    op.loops = {oh, kh};
    op.tensorIds = {inId, outId};
    op.outputTensorId = outId;
    op.iterDims = {ir::AccessDim{{{oh, 1}}}, ir::AccessDim{{{kh, 1}}}};
    chain.addOp(op);

    std::vector<std::int64_t> tiles(2);
    tiles[static_cast<std::size_t>(oh)] = 2;
    tiles[static_cast<std::size_t>(kh)] = 3;
    const ConcurrencyTable table = analyzeConcurrency(chain, tiles);
    EXPECT_EQ(table.kindOf(oh), AxisConcurrency::Sequential);

    // But an *intermediate* written with the same overlap is exempt:
    // the fused executors privatize it per worker and recompute halos.
    ir::Chain priv("smear-private");
    const AxisId poh = priv.addAxis("oh", 8);
    const AxisId pkh = priv.addAxis("kh", 3, /*reorderable=*/false);
    ir::TensorDecl pin = in;
    pin.dims = {ir::AccessDim{{{poh, 1}, {pkh, 1}}}};
    const int pinId = priv.addTensor(pin);
    ir::TensorDecl mid = out;
    mid.name = "T";
    mid.kind = ir::TensorKind::Intermediate;
    mid.dims = {ir::AccessDim{{{poh, 1}, {pkh, 1}}}};
    const int midId = priv.addTensor(mid);
    ir::OpDecl pop = op;
    pop.loops = {poh, pkh};
    pop.tensorIds = {pinId, midId};
    pop.outputTensorId = midId;
    pop.iterDims = {ir::AccessDim{{{poh, 1}}}, ir::AccessDim{{{pkh, 1}}}};
    priv.addOp(pop);
    const ConcurrencyTable privTable = analyzeConcurrency(priv, tiles);
    EXPECT_EQ(privTable.kindOf(poh), AxisConcurrency::Parallel);
}

TEST(Dependence, NamesRoundTripAndRejectUnknownKinds)
{
    EXPECT_STREQ(concurrencyName(AxisConcurrency::Parallel), "parallel");
    EXPECT_STREQ(concurrencyName(AxisConcurrency::Reduction), "reduction");
    EXPECT_STREQ(concurrencyName(AxisConcurrency::Sequential),
                 "sequential");
    for (AxisConcurrency kind :
         {AxisConcurrency::Parallel, AxisConcurrency::Reduction,
          AxisConcurrency::Sequential}) {
        EXPECT_EQ(concurrencyFromName(concurrencyName(kind), "test"),
                  kind);
    }
    EXPECT_THROW(concurrencyFromName("concurrent", "test"), Error);
}

TEST(Dependence, SummaryListsEveryAxisInOrder)
{
    ir::GemmChainConfig cfg;
    cfg.batch = 1;
    cfg.m = 32;
    cfg.n = 32;
    cfg.k = 32;
    cfg.l = 32;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const ConcurrencyTable table =
        analyzeConcurrency(chain, halvedTiles(chain));
    EXPECT_EQ(table.summary(chain),
              "m=parallel n=parallel k=reduction l=reduction");
}

TEST(RaceChecker, DisjointClaimsAreClean)
{
    RaceChecker checker(100);
    checker.beginPhase("blocks");
    checker.claimRange(0, 0, 50);
    checker.claimRange(1, 50, 100);
    checker.claimRange(0, 10, 20); // same task may rewrite its range
    EXPECT_FALSE(checker.hasConflicts());
    EXPECT_EQ(checker.report(), "");
}

TEST(RaceChecker, OverlappingClaimsByDistinctTasksConflict)
{
    RaceChecker checker(100);
    checker.beginPhase("blocks");
    checker.claimRange(0, 0, 60);
    checker.claimRange(1, 40, 80);
    EXPECT_EQ(checker.conflictCount(), 20);
    const std::vector<RaceConflict> details = checker.conflicts();
    ASSERT_FALSE(details.empty());
    EXPECT_EQ(details.front().phase, "blocks");
    EXPECT_EQ(details.front().element, 40);
    EXPECT_EQ(details.front().firstTask, 0);
    EXPECT_EQ(details.front().secondTask, 1);
    EXPECT_LE(details.size(), RaceChecker::kMaxRecorded);
}

TEST(RaceChecker, PhasesResetOwnershipButKeepTheCount)
{
    RaceChecker checker(10);
    checker.beginPhase("first");
    checker.claimRange(0, 0, 10);
    checker.claimRange(1, 0, 5);
    EXPECT_EQ(checker.conflictCount(), 5);

    // The barrier between phases orders cross-phase writes: a different
    // task may rewrite the same elements without a new conflict.
    checker.beginPhase("second");
    checker.claimRange(2, 0, 10);
    EXPECT_EQ(checker.conflictCount(), 5);
}

} // namespace
} // namespace chimera::analysis
