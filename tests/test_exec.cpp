/**
 * @file
 * Integration tests for the fused/unfused executors against the naive
 * reference oracle, across epilogues, block orders, tile shapes, and
 * engines.
 */

#include <gtest/gtest.h>

#include "exec/conv_chain_exec.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/workloads.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tensor/reference.hpp"

namespace chimera::exec {
namespace {

using ir::ConvChainConfig;
using ir::Epilogue;
using ir::GemmChainConfig;

plan::ExecutionPlan
planFor(const ir::Chain &chain, double capacityBytes)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = capacityBytes;
    return plan::planChain(chain, options);
}

/** Hand-built plan pinning a specific order and tiles. */
plan::ExecutionPlan
manualPlan(const ir::Chain &chain, const std::string &order,
           const std::vector<std::pair<std::string, std::int64_t>> &tiles)
{
    plan::ExecutionPlan plan;
    plan.perm = plan::permFromOrderString(chain, order);
    plan.tiles = chain.fullExtents();
    for (const auto &[name, size] : tiles) {
        plan.tiles[static_cast<std::size_t>(ir::axisIdByName(chain, name))] =
            size;
    }
    return plan;
}

class GemmChainExec
    : public ::testing::TestWithParam<std::tuple<Epilogue, std::int64_t>>
{
};

TEST_P(GemmChainExec, FusedMatchesReferenceAcrossWorkloads)
{
    const auto [epilogue, batch] = GetParam();
    const ComputeEngine engine = ComputeEngine::best();
    for (auto load : ir::smallGemmWorkloads()) {
        GemmChainConfig cfg = load.config;
        cfg.batch = batch;
        cfg.epilogue = epilogue;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 16.0 * 1024);

        Tensor a(gemmChainShapeA(cfg));
        Tensor b(gemmChainShapeB(cfg));
        Tensor d(gemmChainShapeD(cfg));
        Tensor e(gemmChainShapeE(cfg));
        Tensor expected(gemmChainShapeE(cfg));
        Rng rng(42);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);

        referenceGemmChain(cfg, a, b, d, expected);
        runFusedGemmChain(cfg, plan, engine, a, b, d, e);
        EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f))
            << cfg.name << " epi " << static_cast<int>(epilogue)
            << " batch " << batch << " maxdiff "
            << maxAbsDiff(e, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GemmChainExec,
    ::testing::Combine(::testing::Values(Epilogue::None, Epilogue::Relu,
                                         Epilogue::Softmax),
                       ::testing::Values<std::int64_t>(1, 3)));

TEST(GemmChainExecOrders, AllExecutableOrdersProduceSameResult)
{
    GemmChainConfig cfg;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    cfg.epilogue = Epilogue::Softmax;
    cfg.softmaxScale = 0.25f;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const ComputeEngine engine = ComputeEngine::best();

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor expected(gemmChainShapeE(cfg));
    Rng rng(11);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    referenceGemmChain(cfg, a, b, d, expected);

    for (const char *order :
         {"m,l,k,n", "m,l,n,k", "l,m,k,n", "l,m,n,k"}) {
        const plan::ExecutionPlan plan = manualPlan(
            chain, order, {{"m", 16}, {"l", 8}, {"k", 8}, {"n", 8}});
        Tensor e(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, e);
        EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f))
            << "order " << order << " maxdiff "
            << maxAbsDiff(e, expected);
    }
}

TEST(GemmChainExecOrders, TailTilesHandled)
{
    GemmChainConfig cfg;
    cfg.m = 37;
    cfg.n = 29;
    cfg.k = 13;
    cfg.l = 31;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = manualPlan(
        chain, "m,l,k,n", {{"m", 16}, {"l", 7}, {"k", 5}, {"n", 9}});

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor e(gemmChainShapeE(cfg));
    Tensor expected(gemmChainShapeE(cfg));
    Rng rng(17);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    referenceGemmChain(cfg, a, b, d, expected);
    runFusedGemmChain(cfg, plan, ComputeEngine::best(), a, b, d, e);
    EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f))
        << maxAbsDiff(e, expected);
}

TEST(GemmChainExecEngines, ScalarAndNaiveAgree)
{
    GemmChainConfig cfg;
    cfg.m = 32;
    cfg.n = 16;
    cfg.k = 8;
    cfg.l = 24;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 8.0 * 1024);

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor expected(gemmChainShapeE(cfg));
    Rng rng(5);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    referenceGemmChain(cfg, a, b, d, expected);

    for (const ComputeEngine &engine :
         {ComputeEngine::scalar(), ComputeEngine::naive()}) {
        Tensor e(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, e);
        EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f)) << engine.name();
    }
}

TEST(GemmChainExecEngines, EmulatedAcceleratorBackendsAgree)
{
    // The replaceable-micro-kernel claim end to end: the identical fused
    // executor and plan run on the emulated NPU mad backend and the
    // emulated GPU mma backend and produce the oracle result.
    GemmChainConfig cfg;
    cfg.batch = 2;
    cfg.m = 40;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 36;
    cfg.epilogue = Epilogue::Softmax;
    cfg.softmaxScale = 0.25f;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 16.0 * 1024);

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor expected(gemmChainShapeE(cfg));
    Rng rng(8);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    referenceGemmChain(cfg, a, b, d, expected);

    for (const ComputeEngine &engine :
         {ComputeEngine::emulatedNpu(), ComputeEngine::emulatedGpu()}) {
        Tensor e(gemmChainShapeE(cfg));
        runFusedGemmChain(cfg, plan, engine, a, b, d, e);
        EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f))
            << engine.name() << " maxdiff " << maxAbsDiff(e, expected);
    }
}


TEST(TiledBatchGemm, MatchesReference)
{
    Tensor a({3, 33, 21});
    Tensor b({3, 21, 27});
    Tensor c({3, 33, 27});
    Tensor expected({3, 33, 27});
    Rng rng(3);
    fillUniform(a, rng);
    fillUniform(b, rng);
    ref::batchGemm(a, b, expected);
    runTiledBatchGemm(ComputeEngine::best(), a, b, c,
                      GemmTiles{16, 8, 8});
    EXPECT_TRUE(allClose(c, expected, 1e-3f, 1e-3f));
}

TEST(TiledBatchGemm, Rank2Works)
{
    Tensor a({19, 23});
    Tensor b({23, 17});
    Tensor c({19, 17});
    Tensor expected({19, 17});
    Rng rng(4);
    fillUniform(a, rng);
    fillUniform(b, rng);
    ref::gemm(a, b, expected);
    runTiledBatchGemm(ComputeEngine::best(), a, b, c, GemmTiles{8, 8, 8});
    EXPECT_TRUE(allClose(c, expected, 1e-3f, 1e-3f));
}

TEST(UnfusedGemmChain, MatchesReference)
{
    for (Epilogue epi :
         {Epilogue::None, Epilogue::Relu, Epilogue::Softmax}) {
        GemmChainConfig cfg;
        cfg.batch = 2;
        cfg.m = 40;
        cfg.n = 24;
        cfg.k = 16;
        cfg.l = 32;
        cfg.epilogue = epi;
        cfg.softmaxScale = 0.25f;
        Tensor a(gemmChainShapeA(cfg));
        Tensor b(gemmChainShapeB(cfg));
        Tensor d(gemmChainShapeD(cfg));
        Tensor e(gemmChainShapeE(cfg));
        Tensor scratch(gemmChainShapeC(cfg));
        Tensor expected(gemmChainShapeE(cfg));
        Rng rng(9);
        fillUniform(a, rng);
        fillUniform(b, rng);
        fillUniform(d, rng);
        referenceGemmChain(cfg, a, b, d, expected);
        runUnfusedGemmChain(cfg, ComputeEngine::best(), a, b, d, scratch, e,
                            GemmTiles{16, 16, 8}, GemmTiles{8, 8, 16});
        EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f))
            << "epi " << static_cast<int>(epi);
    }
}

// ---------------------------------------------------------------------
// Convolution chains.
// ---------------------------------------------------------------------

ConvChainConfig
smallConv(std::int64_t ic, std::int64_t h, std::int64_t oc1,
          std::int64_t oc2, int st1, int st2, int k1, int k2)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = ic;
    cfg.h = h;
    cfg.w = h;
    cfg.oc1 = oc1;
    cfg.oc2 = oc2;
    cfg.stride1 = st1;
    cfg.stride2 = st2;
    cfg.k1 = k1;
    cfg.k2 = k2;
    return cfg;
}

class ConvChainExec
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, bool>>
{
};

TEST_P(ConvChainExec, FusedMatchesReference)
{
    const auto [k1, k2, st1, st2, relu] = GetParam();
    ConvChainConfig cfg = smallConv(6, 17, 9, 7, st1, st2, k1, k2);
    cfg.epilogue = relu ? Epilogue::Relu : Epilogue::None;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 24.0 * 1024);

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Tensor output(convChainShapeO(cfg));
    Tensor expected(convChainShapeO(cfg));
    Rng rng(31);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);

    referenceConvChain(cfg, input, w1, w2, expected);
    runFusedConvChain(cfg, plan, ComputeEngine::best(), input, w1, w2,
                      output);
    EXPECT_TRUE(allClose(output, expected, 2e-3f, 2e-3f))
        << "k1=" << k1 << " k2=" << k2 << " st1=" << st1 << " st2=" << st2
        << " maxdiff " << maxAbsDiff(output, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ConvChainExec,
    ::testing::Values(std::make_tuple(3, 1, 1, 1, false),
                      std::make_tuple(3, 1, 2, 1, true),
                      std::make_tuple(1, 3, 1, 1, false),
                      std::make_tuple(1, 1, 1, 1, true),
                      std::make_tuple(3, 3, 1, 1, false),
                      std::make_tuple(3, 1, 2, 2, true),
                      std::make_tuple(3, 3, 2, 1, true)));

TEST(ConvChainManualOrders, SpatialTilingHandlesHalos)
{
    ConvChainConfig cfg = smallConv(4, 15, 6, 5, 1, 1, 3, 3);
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeConvChain(cfg);

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Tensor expected(convChainShapeO(cfg));
    Rng rng(7);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);
    referenceConvChain(cfg, input, w1, w2, expected);

    for (const char *order :
         {"b,oc1,oh,ow,oc2,ic", "oh,ow,b,oc1,ic,oc2",
          "b,oh,ow,oc1,oc2,ic"}) {
        const plan::ExecutionPlan plan =
            manualPlan(chain, order,
                       {{"oh", 4}, {"ow", 5}, {"oc1", 3}, {"ic", 2},
                        {"oc2", 2}, {"b", 1}});
        Tensor output(convChainShapeO(cfg));
        runFusedConvChain(cfg, plan, ComputeEngine::best(), input, w1, w2,
                          output);
        EXPECT_TRUE(allClose(output, expected, 2e-3f, 2e-3f))
            << "order " << order << " maxdiff "
            << maxAbsDiff(output, expected);
    }
}

TEST(TiledConv2d, MatchesReferenceAcrossStrides)
{
    for (int stride : {1, 2, 4}) {
        for (int kernel : {1, 3}) {
            Tensor input({2, 5, 19, 19});
            Tensor weight({7, 5, kernel, kernel});
            const int pad = (kernel - 1) / 2;
            const std::int64_t out =
                ref::convOutDim(19, kernel, stride, pad);
            Tensor output({2, 7, out, out});
            Tensor expected({2, 7, out, out});
            Rng rng(23);
            fillUniform(input, rng);
            fillUniform(weight, rng);
            ref::conv2d(input, weight, expected, stride, pad);
            runTiledConv2d(ComputeEngine::best(), input, weight, output,
                           stride, pad, ConvTiles{4, 3});
            EXPECT_TRUE(allClose(output, expected, 2e-3f, 2e-3f))
                << "stride " << stride << " kernel " << kernel;
        }
    }
}

TEST(UnfusedConvChain, MatchesReference)
{
    ConvChainConfig cfg = smallConv(5, 13, 7, 6, 2, 1, 3, 1);
    cfg.epilogue = Epilogue::Relu;
    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Tensor scratch(convChainShapeT(cfg));
    Tensor output(convChainShapeO(cfg));
    Tensor expected(convChainShapeO(cfg));
    Rng rng(29);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);
    referenceConvChain(cfg, input, w1, w2, expected);
    runUnfusedConvChain(cfg, ComputeEngine::best(), input, w1, w2, scratch,
                        output, ConvTiles{4, 4}, ConvTiles{4, 4});
    EXPECT_TRUE(allClose(output, expected, 2e-3f, 2e-3f));
}

TEST(GemmChainCausal, FusedMaskedSoftmaxMatchesReference)
{
    GemmChainConfig cfg;
    cfg.batch = 3;
    cfg.m = 48;
    cfg.n = 16;
    cfg.k = 16;
    cfg.l = 48;
    cfg.epilogue = Epilogue::Softmax;
    cfg.softmaxScale = 0.25f;
    cfg.causalMask = true;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 12.0 * 1024);

    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor e(gemmChainShapeE(cfg));
    Tensor expected(gemmChainShapeE(cfg));
    Rng rng(33);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    referenceGemmChain(cfg, a, b, d, expected);
    runFusedGemmChain(cfg, plan, ComputeEngine::best(), a, b, d, e);
    EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f))
        << "maxdiff " << maxAbsDiff(e, expected);
}

TEST(GemmChainCausal, UnfusedMaskedSoftmaxMatchesReference)
{
    GemmChainConfig cfg;
    cfg.batch = 2;
    cfg.m = 32;
    cfg.n = 8;
    cfg.k = 8;
    cfg.l = 32;
    cfg.epilogue = Epilogue::Softmax;
    cfg.softmaxScale = 0.3f;
    cfg.causalMask = true;
    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor e(gemmChainShapeE(cfg));
    Tensor scratch(gemmChainShapeC(cfg));
    Tensor expected(gemmChainShapeE(cfg));
    Rng rng(34);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    referenceGemmChain(cfg, a, b, d, expected);
    runUnfusedGemmChain(cfg, ComputeEngine::best(), a, b, d, scratch, e,
                        {16, 8, 8}, {8, 8, 16});
    EXPECT_TRUE(allClose(e, expected, 2e-3f, 2e-3f));
}

TEST(GemmChainCausal, FirstRowAttendsOnlyToFirstKey)
{
    // Row 0 of a causal softmax is one-hot on position 0, so output row
    // 0 must equal row 0 of V exactly.
    GemmChainConfig cfg;
    cfg.m = 16;
    cfg.n = 8;
    cfg.k = 8;
    cfg.l = 16;
    cfg.epilogue = Epilogue::Softmax;
    cfg.causalMask = true;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 8.0 * 1024);
    Tensor a(gemmChainShapeA(cfg));
    Tensor b(gemmChainShapeB(cfg));
    Tensor d(gemmChainShapeD(cfg));
    Tensor e(gemmChainShapeE(cfg));
    Rng rng(35);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    runFusedGemmChain(cfg, plan, ComputeEngine::best(), a, b, d, e);
    for (std::int64_t j = 0; j < cfg.n; ++j) {
        EXPECT_NEAR(e[j], d[j], 1e-4f);
    }
}

TEST(GemmChainCausal, RequiresSoftmaxAndSquareScores)
{
    GemmChainConfig cfg;
    cfg.m = 16;
    cfg.n = 8;
    cfg.k = 8;
    cfg.l = 16;
    cfg.causalMask = true; // epilogue None
    EXPECT_THROW(ir::makeGemmChain(cfg), Error);
    cfg.epilogue = Epilogue::Softmax;
    cfg.l = 8; // not square
    EXPECT_THROW(ir::makeGemmChain(cfg), Error);
}

TEST(ConvChainExecEngines, EmulatedNpuBackendRunsConvChains)
{
    ConvChainConfig cfg = smallConv(5, 13, 7, 6, 2, 1, 3, 1);
    cfg.epilogue = Epilogue::Relu;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const plan::ExecutionPlan plan = planFor(chain, 24.0 * 1024);

    Tensor input(convChainShapeI(cfg));
    Tensor w1(convChainShapeW1(cfg));
    Tensor w2(convChainShapeW2(cfg));
    Tensor output(convChainShapeO(cfg));
    Tensor expected(convChainShapeO(cfg));
    Rng rng(15);
    fillUniform(input, rng);
    fillUniform(w1, rng);
    fillUniform(w2, rng);
    referenceConvChain(cfg, input, w1, w2, expected);
    runFusedConvChain(cfg, plan, ComputeEngine::emulatedNpu(), input, w1,
                      w2, output);
    EXPECT_TRUE(allClose(output, expected, 2e-3f, 2e-3f))
        << maxAbsDiff(output, expected);
}

TEST(ConvChainTableV, PlannedSmallVariantsMatchReference)
{
    // Scaled-down versions of the Table V chain archetypes.
    for (const auto &load : ir::tableVWorkloads()) {
        ConvChainConfig cfg = load.config;
        cfg.ic = std::min<std::int64_t>(cfg.ic, 6);
        cfg.oc1 = std::min<std::int64_t>(cfg.oc1, 8);
        cfg.oc2 = std::min<std::int64_t>(cfg.oc2, 5);
        cfg.h = std::min<std::int64_t>(cfg.h, 21);
        cfg.w = std::min<std::int64_t>(cfg.w, 21);
        const ir::Chain chain = ir::makeConvChain(cfg);
        const plan::ExecutionPlan plan = planFor(chain, 16.0 * 1024);

        Tensor input(convChainShapeI(cfg));
        Tensor w1(convChainShapeW1(cfg));
        Tensor w2(convChainShapeW2(cfg));
        Tensor output(convChainShapeO(cfg));
        Tensor expected(convChainShapeO(cfg));
        Rng rng(101);
        fillUniform(input, rng);
        fillUniform(w1, rng);
        fillUniform(w2, rng);
        referenceConvChain(cfg, input, w1, w2, expected);
        runFusedConvChain(cfg, plan, ComputeEngine::best(), input, w1, w2,
                          output);
        EXPECT_TRUE(allClose(output, expected, 2e-3f, 2e-3f))
            << cfg.name << " maxdiff " << maxAbsDiff(output, expected);
    }
}

} // namespace
} // namespace chimera::exec
