/**
 * @file
 * Unit tests for the closed-form GEMM-chain solution and the general
 * tile solver, including the cross-check that coordinate descent
 * reproduces the paper's Lagrange-multiplier optimum.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/builders.hpp"
#include "solver/closed_form.hpp"
#include "solver/tile_solver.hpp"
#include "support/error.hpp"

namespace chimera::solver {
namespace {

using ir::Chain;
using ir::GemmChainConfig;
using ir::axisIdByName;
using ir::makeGemmChain;

GemmChainConfig
cfgOf(std::int64_t batch, std::int64_t m, std::int64_t n, std::int64_t k,
      std::int64_t l)
{
    GemmChainConfig cfg;
    cfg.batch = batch;
    cfg.m = m;
    cfg.n = n;
    cfg.k = k;
    cfg.l = l;
    cfg.name = "t";
    return cfg;
}

TEST(ClosedForm, MatchesPaperFormulas)
{
    // T* = -alpha + sqrt(alpha^2 + MC); DV* = 2*M*L*(K+N)/T*.
    const std::int64_t m = 2048, n = 2048, k = 2048, l = 2048;
    const double mc = 256.0 * 1024; // elements
    const std::int64_t alpha = 8;
    const GemmChainClosedForm sol =
        solveGemmChainClosedForm(m, n, k, l, mc, alpha);

    const double expectedT = -8.0 + std::sqrt(64.0 + mc);
    EXPECT_DOUBLE_EQ(sol.tmStar, expectedT);
    EXPECT_DOUBLE_EQ(sol.tlStar, expectedT);
    EXPECT_DOUBLE_EQ(sol.dvStarElems,
                     2.0 * 2048.0 * 2048.0 * (2048.0 + 2048.0) / expectedT);
    EXPECT_EQ(sol.tm, static_cast<std::int64_t>(std::floor(expectedT)));
    EXPECT_EQ(sol.tn, alpha);
    EXPECT_EQ(sol.tk, alpha);
}

TEST(ClosedForm, TilesClampToExtents)
{
    // Tiny problem: rounded tiles cannot exceed the extents.
    const GemmChainClosedForm sol =
        solveGemmChainClosedForm(16, 4, 4, 16, 1e6, 8);
    EXPECT_EQ(sol.tm, 16);
    EXPECT_EQ(sol.tl, 16);
    EXPECT_EQ(sol.tn, 4);
    EXPECT_EQ(sol.tk, 4);
}

TEST(ClosedForm, RoundedWithinApproximationBound)
{
    for (std::int64_t size : {256, 512, 1024, 2048}) {
        const GemmChainClosedForm sol = solveGemmChainClosedForm(
            size, size, size, size, 128.0 * 1024, 8);
        EXPECT_LE(sol.dvRoundedElems,
                  sol.dvStarElems * sol.approximationBound * 1.01)
            << "size " << size;
        EXPECT_GE(sol.dvRoundedElems, sol.dvStarElems * 0.99);
    }
}

TEST(ClosedForm, RejectsBadInput)
{
    EXPECT_THROW(solveGemmChainClosedForm(0, 1, 1, 1, 10.0), Error);
    EXPECT_THROW(solveGemmChainClosedForm(1, 1, 1, 1, -1.0), Error);
    EXPECT_THROW(solveGemmChainClosedForm(1, 1, 1, 1, 10.0, 0), Error);
}

TEST(AxisCandidates, HonorFixedAndMultiples)
{
    const Chain chain = makeGemmChain(cfgOf(1, 64, 32, 16, 48));
    const ir::AxisId n = axisIdByName(chain, "n");

    TileConstraints c;
    c.fixed[n] = 16;
    auto cands = axisTileCandidates(chain, n, c);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], 16);

    TileConstraints c2;
    c2.multipleOf[n] = 16;
    cands = axisTileCandidates(chain, n, c2);
    for (std::int64_t v : cands) {
        EXPECT_TRUE(v % 16 == 0 || v == 32);
    }
    EXPECT_EQ(cands.back(), 32);
}

TEST(AxisCandidates, MaxTileCapsCandidates)
{
    const Chain chain = makeGemmChain(cfgOf(1, 64, 32, 16, 48));
    const ir::AxisId m = axisIdByName(chain, "m");
    TileConstraints c;
    c.maxTile[m] = 10;
    const auto cands = axisTileCandidates(chain, m, c);
    for (std::int64_t v : cands) {
        EXPECT_LE(v, 10);
    }
    EXPECT_EQ(cands.back(), 10);
}

TEST(TileSolver, FindsFeasibleMinimum)
{
    const Chain chain = makeGemmChain(cfgOf(1, 256, 64, 64, 256));
    const std::vector<ir::AxisId> perm = {
        axisIdByName(chain, "m"), axisIdByName(chain, "l"),
        axisIdByName(chain, "k"), axisIdByName(chain, "n")};

    TileSolverOptions options;
    options.memCapacityBytes = 64.0 * 1024;
    const TileSolution sol = solveTiles(chain, perm, {}, options);
    ASSERT_TRUE(sol.feasible);
    EXPECT_LE(static_cast<double>(sol.memUsageBytes),
              options.memCapacityBytes);
    // The solve must beat the all-ones starting point substantially.
    TileSolution ones;
    const model::DataMovement onesDm = model::computeDataMovement(
        chain, perm,
        std::vector<std::int64_t>(static_cast<std::size_t>(chain.numAxes()),
                                  1));
    EXPECT_LT(sol.volumeBytes, onesDm.volumeBytes / 4.0);
}

TEST(TileSolver, MatchesClosedFormOnGemmChain)
{
    // On the square GEMM chain under order mlkn, coordinate descent must
    // land within a small factor of the paper's closed-form optimum.
    const std::int64_t size = 512;
    const double capBytes = 128.0 * 1024;
    const Chain chain = makeGemmChain(cfgOf(1, size, size, size, size));
    const std::vector<ir::AxisId> perm = {
        axisIdByName(chain, "m"), axisIdByName(chain, "l"),
        axisIdByName(chain, "k"), axisIdByName(chain, "n")};

    TileSolverOptions options;
    options.memCapacityBytes = capBytes;
    const TileSolution sol = solveTiles(chain, perm, {}, options);
    ASSERT_TRUE(sol.feasible);

    const GemmChainClosedForm closed = solveGemmChainClosedForm(
        size, size, size, size, capBytes / 4.0, 1);
    // Closed form reports elements; solver reports bytes.
    const double closedBytes = closed.dvStarElems * 4.0;
    EXPECT_LE(sol.volumeBytes, closedBytes * 1.30);
    EXPECT_GE(sol.volumeBytes, closedBytes * 0.95);
}

TEST(TileSolver, InfeasibleWhenCapacityTiny)
{
    const Chain chain = makeGemmChain(cfgOf(1, 64, 64, 64, 64));
    const std::vector<ir::AxisId> perm = {0, 1, 2, 3};
    TileSolverOptions options;
    options.memCapacityBytes = 8.0; // two floats: nothing fits
    const TileSolution sol = solveTiles(chain, perm, {}, options);
    EXPECT_FALSE(sol.feasible);
}

TEST(TileSolver, RespectsFixedTiles)
{
    const Chain chain = makeGemmChain(cfgOf(1, 64, 32, 16, 48));
    const ir::AxisId k = axisIdByName(chain, "k");
    TileConstraints constraints;
    constraints.fixed[k] = 16;
    TileSolverOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    const std::vector<ir::AxisId> perm = {0, 1, 2, 3};
    const TileSolution sol = solveTiles(chain, perm, constraints, options);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.tiles[static_cast<std::size_t>(k)], 16);
}

TEST(TileSolver, RequiresPositiveCapacity)
{
    const Chain chain = ir::makeSingleGemm(1, 8, 8, 8);
    TileSolverOptions options;
    options.memCapacityBytes = 0.0;
    EXPECT_THROW(solveTiles(chain, {0, 1, 2}, {}, options), Error);
}

} // namespace
} // namespace chimera::solver
