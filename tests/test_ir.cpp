/**
 * @file
 * Unit tests for the Chain IR, the builders, and the workload tables.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ir/builders.hpp"
#include "ir/workloads.hpp"
#include "support/error.hpp"

namespace chimera::ir {
namespace {

GemmChainConfig
smallGemmChain()
{
    GemmChainConfig cfg;
    cfg.batch = 1;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    return cfg;
}

TEST(AccessDim, FootprintSingleAxis)
{
    AccessDim dim{{AccessTerm{0, 1}}};
    EXPECT_EQ(dim.footprint({8}), 8);
    EXPECT_EQ(dim.footprint({1}), 1);
}

TEST(AccessDim, FootprintHalo)
{
    // h = oh*2 + kh: footprint = 2*(T_oh-1) + T_kh.
    AccessDim dim{{AccessTerm{0, 2}, AccessTerm{1, 1}}};
    EXPECT_EQ(dim.footprint({4, 3}), 2 * 3 + 3);
    EXPECT_EQ(dim.footprint({1, 1}), 1);
}

TEST(AccessDim, FootprintConstant)
{
    AccessDim dim{};
    EXPECT_EQ(dim.footprint({5, 5}), 1);
}

TEST(AccessDim, UsesAxis)
{
    AccessDim dim{{AccessTerm{2, 1}}};
    EXPECT_TRUE(dim.usesAxis(2));
    EXPECT_FALSE(dim.usesAxis(0));
}

TEST(GemmChain, FourIndependentAxesWithoutBatch)
{
    const Chain chain = makeGemmChain(smallGemmChain());
    EXPECT_EQ(chain.numAxes(), 4);
    std::set<std::string> names;
    for (const Axis &axis : chain.axes()) {
        names.insert(axis.name);
    }
    const std::set<std::string> expected = {"m", "n", "k", "l"};
    EXPECT_EQ(names, expected);
    EXPECT_EQ(chain.reorderableAxes().size(), 4u);
}

TEST(GemmChain, BatchAddsOneAxis)
{
    GemmChainConfig cfg = smallGemmChain();
    cfg.batch = 8;
    const Chain chain = makeGemmChain(cfg);
    EXPECT_EQ(chain.numAxes(), 5);
    EXPECT_EQ(chain.axes()[0].name, "b");
    EXPECT_EQ(chain.axes()[0].extent, 8);
}

TEST(GemmChain, TensorsAndKinds)
{
    const Chain chain = makeGemmChain(smallGemmChain());
    ASSERT_EQ(chain.tensors().size(), 5u);
    EXPECT_EQ(chain.tensors()[0].name, "A");
    EXPECT_EQ(chain.tensors()[2].name, "C");
    EXPECT_EQ(chain.tensors()[2].kind, TensorKind::Intermediate);
    EXPECT_EQ(chain.tensors()[4].kind, TensorKind::Output);
    EXPECT_EQ(chain.ioTensorIds().size(), 4u);
}

TEST(GemmChain, PrivateAxes)
{
    const Chain chain = makeGemmChain(smallGemmChain());
    const AxisId k = axisIdByName(chain, "k");
    const AxisId n = axisIdByName(chain, "n");
    // k is private to gemm1; everything else of gemm1 is shared.
    const auto privGemm1 = chain.privateAxesOf(0);
    ASSERT_EQ(privGemm1.size(), 1u);
    EXPECT_EQ(privGemm1[0], k);
    // gemm2 is last: all its loops are private.
    const auto privGemm2 = chain.privateAxesOf(1);
    EXPECT_EQ(privGemm2.size(), 3u);
    EXPECT_TRUE(std::count(privGemm2.begin(), privGemm2.end(), n));
}

TEST(GemmChain, FootprintsMatchTileProducts)
{
    const Chain chain = makeGemmChain(smallGemmChain());
    std::vector<std::int64_t> tiles(4, 1);
    tiles[static_cast<std::size_t>(axisIdByName(chain, "m"))] = 8;
    tiles[static_cast<std::size_t>(axisIdByName(chain, "k"))] = 4;
    tiles[static_cast<std::size_t>(axisIdByName(chain, "l"))] = 6;
    tiles[static_cast<std::size_t>(axisIdByName(chain, "n"))] = 5;
    EXPECT_EQ(chain.tensors()[0].footprintElems(tiles), 8 * 4); // A
    EXPECT_EQ(chain.tensors()[1].footprintElems(tiles), 4 * 6); // B
    EXPECT_EQ(chain.tensors()[2].footprintElems(tiles), 8 * 6); // C
    EXPECT_EQ(chain.tensors()[3].footprintElems(tiles), 6 * 5); // D
    EXPECT_EQ(chain.tensors()[4].footprintElems(tiles), 8 * 5); // E
}

TEST(GemmChain, IoBytesAndFlops)
{
    const Chain chain = makeGemmChain(smallGemmChain());
    // A: 64x16, B: 16x48, D: 48x32, E: 64x32 -> fp32 bytes.
    const std::int64_t elems = 64 * 16 + 16 * 48 + 48 * 32 + 64 * 32;
    EXPECT_EQ(chain.ioBytes(), elems * 4);
    const double flops = 2.0 * 64 * 16 * 48 + 2.0 * 64 * 48 * 32;
    EXPECT_DOUBLE_EQ(chain.totalFlops(), flops);
}

TEST(GemmChain, RejectsBadExtents)
{
    GemmChainConfig cfg = smallGemmChain();
    cfg.m = 0;
    EXPECT_THROW(makeGemmChain(cfg), Error);
}

TEST(ConvChain, TenAxesFor3x3Then3x3)
{
    ConvChainConfig cfg;
    cfg.batch = 2;
    cfg.ic = 8;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 8;
    cfg.oc2 = 8;
    cfg.k1 = 3;
    cfg.k2 = 3;
    const Chain chain = makeConvChain(cfg);
    // b, oc2, oh, ow, oc1, ic + kh2, kw2, kh1, kw1.
    EXPECT_EQ(chain.numAxes(), 10);
    EXPECT_EQ(chain.pinnedAxes().size(), 4u);
    EXPECT_EQ(chain.reorderableAxes().size(), 6u);
}

TEST(ConvChain, PointwiseSkipsKernelAxes)
{
    ConvChainConfig cfg;
    cfg.ic = 8;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 8;
    cfg.oc2 = 8;
    cfg.k1 = 1;
    cfg.k2 = 1;
    const Chain chain = makeConvChain(cfg);
    EXPECT_EQ(chain.numAxes(), 5); // oc2, oh, ow, oc1, ic
    EXPECT_TRUE(chain.pinnedAxes().empty());
}

TEST(ConvChain, OutputDims)
{
    ConvChainConfig cfg;
    cfg.ic = 64;
    cfg.h = 112;
    cfg.w = 112;
    cfg.oc1 = 192;
    cfg.oc2 = 128;
    cfg.stride1 = 2;
    cfg.k1 = 3;
    cfg.k2 = 1;
    EXPECT_EQ(cfg.effectivePad1(), 1);
    EXPECT_EQ(cfg.effectivePad2(), 0);
    EXPECT_EQ(cfg.oh1(), 56);
    EXPECT_EQ(cfg.oh2(), 56);
}

TEST(ConvChain, InputHaloFootprint)
{
    // 3x3 s1 conv then 1x1: input h footprint for T_oh rows is T_oh + 2.
    ConvChainConfig cfg;
    cfg.ic = 4;
    cfg.h = 32;
    cfg.w = 32;
    cfg.oc1 = 4;
    cfg.oc2 = 4;
    cfg.k1 = 3;
    cfg.k2 = 1;
    const Chain chain = makeConvChain(cfg);
    std::vector<std::int64_t> tiles(static_cast<std::size_t>(chain.numAxes()),
                                    1);
    for (int a = 0; a < chain.numAxes(); ++a) {
        tiles[static_cast<std::size_t>(a)] =
            chain.axes()[static_cast<std::size_t>(a)].extent;
    }
    tiles[static_cast<std::size_t>(axisIdByName(chain, "oh"))] = 8;
    const TensorDecl &input = chain.tensors()[0];
    // dims: ic, h, w -> 4 * (8 + 2) * (32 + 2).
    EXPECT_EQ(input.footprintElems(tiles), 4 * 10 * 34);
}

TEST(ConvChain, EffectiveItersIncludesHaloRecompute)
{
    // conv1 of a 1x1 -> 3x3 chain: consumer windows overlap, so small
    // spatial tiles inflate the producer's iteration count.
    ConvChainConfig cfg;
    cfg.ic = 4;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 4;
    cfg.oc2 = 4;
    cfg.k1 = 1;
    cfg.k2 = 3;
    const Chain chain = makeConvChain(cfg);
    const auto extents = chain.fullExtents();
    const OpDecl &conv1 = chain.ops()[0];

    const double fullTileIters = conv1.effectiveIters(extents, extents);
    std::vector<std::int64_t> smallTiles = extents;
    smallTiles[static_cast<std::size_t>(axisIdByName(chain, "oh"))] = 4;
    smallTiles[static_cast<std::size_t>(axisIdByName(chain, "ow"))] = 4;
    const double tiledIters = conv1.effectiveIters(extents, smallTiles);
    EXPECT_GT(tiledIters, fullTileIters);
}

TEST(ConvChain, ValidateRejectsCollapsedOutput)
{
    ConvChainConfig cfg;
    cfg.ic = 4;
    cfg.h = 2;
    cfg.w = 2;
    cfg.oc1 = 4;
    cfg.oc2 = 4;
    cfg.k1 = 3;
    cfg.k2 = 3;
    cfg.pad1 = 0;
    cfg.pad2 = 0;
    EXPECT_THROW(makeConvChain(cfg), Error);
}

TEST(SingleGemm, Structure)
{
    const Chain chain = makeSingleGemm(1, 32, 16, 8);
    EXPECT_EQ(chain.numAxes(), 3);
    EXPECT_EQ(chain.ops().size(), 1u);
    EXPECT_EQ(chain.ioTensorIds().size(), 3u);
    EXPECT_DOUBLE_EQ(chain.totalFlops(), 2.0 * 32 * 16 * 8);
}

TEST(AxisLookup, ThrowsOnUnknownName)
{
    const Chain chain = makeSingleGemm(1, 4, 4, 4);
    EXPECT_THROW(axisIdByName(chain, "zz"), Error);
}

TEST(Workloads, TableIvHasTwelveEntries)
{
    const auto &loads = tableIvWorkloads();
    ASSERT_EQ(loads.size(), 12u);
    EXPECT_EQ(loads[0].config.name, "G1");
    EXPECT_EQ(loads[0].config.batch, 8);
    EXPECT_EQ(loads[11].config.name, "G12");
    EXPECT_EQ(loads[11].config.m, 1024);
    for (const auto &load : loads) {
        const Chain chain = makeGemmChain(load.config);
        EXPECT_NO_THROW(chain.validate());
    }
}

TEST(Workloads, TableVHasEightEntries)
{
    const auto &loads = tableVWorkloads();
    ASSERT_EQ(loads.size(), 8u);
    EXPECT_EQ(loads[0].config.name, "C1");
    EXPECT_EQ(loads[4].config.stride1, 4);
    for (const auto &load : loads) {
        const Chain chain = makeConvChain(load.config);
        EXPECT_NO_THROW(chain.validate());
    }
}

TEST(Workloads, SmallWorkloadsBuild)
{
    for (const auto &load : smallGemmWorkloads()) {
        EXPECT_NO_THROW(makeGemmChain(load.config));
    }
}

} // namespace
} // namespace chimera::ir
