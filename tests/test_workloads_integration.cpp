/**
 * @file
 * Integration tests over the full published workload tables: every
 * Table IV / Table V entry must plan feasibly under the CPU budget,
 * choose an executable order, and beat the spilled-intermediate volume.
 * Also covers Chain::validate's rejection of malformed IR.
 */

#include <gtest/gtest.h>

#include "exec/constraints.hpp"
#include "ir/workloads.hpp"
#include "model/data_movement.hpp"
#include "plan/planner.hpp"
#include "support/error.hpp"

namespace chimera {
namespace {

constexpr double kCapacity = 768.0 * 1024;

plan::PlannerOptions
cpuOptions(const ir::Chain &chain)
{
    plan::PlannerOptions options;
    options.memCapacityBytes = kCapacity;
    options.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    return options;
}

class TableIvPlanning : public ::testing::TestWithParam<int>
{
};

TEST_P(TableIvPlanning, PlansFeasiblyAndBeatsSpilledVolume)
{
    const auto &load =
        ir::tableIvWorkloads()[static_cast<std::size_t>(GetParam())];
    for (ir::Epilogue epi : {ir::Epilogue::None, ir::Epilogue::Softmax}) {
        ir::GemmChainConfig cfg = load.config;
        cfg.epilogue = epi;
        const ir::Chain chain = ir::makeGemmChain(cfg);
        const plan::ExecutionPlan plan =
            plan::planChain(chain, cpuOptions(chain));

        EXPECT_LE(static_cast<double>(plan.memUsageBytes), kCapacity);
        EXPECT_TRUE(model::isExecutableOrder(chain, plan.perm));

        model::ModelOptions spilled;
        spilled.intermediatesAreIO = true;
        const auto unfused = model::computeDataMovement(
            chain, plan.perm, plan.tiles, spilled);
        EXPECT_LT(plan.predictedVolumeBytes, unfused.volumeBytes)
            << cfg.name;
        // The chain volume can never undercut compulsory IO.
        EXPECT_GE(plan.predictedVolumeBytes,
                  static_cast<double>(chain.ioBytes()) - 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(AllRows, TableIvPlanning,
                         ::testing::Range(0, 12));

class TableVPlanning : public ::testing::TestWithParam<int>
{
};

TEST_P(TableVPlanning, PlansFeasiblyAndBeatsSpilledVolume)
{
    ir::ConvChainConfig cfg =
        ir::tableVWorkloads()[static_cast<std::size_t>(GetParam())].config;
    cfg.epilogue = ir::Epilogue::Relu;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const plan::ExecutionPlan plan =
        plan::planChain(chain, cpuOptions(chain));

    EXPECT_LE(static_cast<double>(plan.memUsageBytes), kCapacity);
    EXPECT_TRUE(model::isExecutableOrder(chain, plan.perm));

    model::ModelOptions spilled;
    spilled.intermediatesAreIO = true;
    const auto unfused =
        model::computeDataMovement(chain, plan.perm, plan.tiles, spilled);
    EXPECT_LT(plan.predictedVolumeBytes, unfused.volumeBytes) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, TableVPlanning, ::testing::Range(0, 8));

TEST(ChainValidation, RejectsMalformedIr)
{
    // No operators.
    {
        ir::Chain chain("bad");
        chain.addAxis("m", 4);
        EXPECT_THROW(chain.validate(), Error);
    }
    // Operator with no loops.
    {
        ir::Chain chain("bad");
        chain.addAxis("m", 4);
        const int t = chain.addTensor(ir::TensorDecl{
            "T", ir::TensorKind::Output,
            {ir::AccessDim{{ir::AccessTerm{0, 1}}}}, 4});
        chain.addOp(ir::OpDecl{"op", ir::OpKind::Gemm, {}, {t}, t, {}});
        EXPECT_THROW(chain.validate(), Error);
    }
    // Access term referencing an unknown axis.
    {
        ir::Chain chain("bad");
        chain.addAxis("m", 4);
        const int t = chain.addTensor(ir::TensorDecl{
            "T", ir::TensorKind::Output,
            {ir::AccessDim{{ir::AccessTerm{7, 1}}}}, 4});
        chain.addOp(ir::OpDecl{"op", ir::OpKind::Gemm, {0}, {t}, t, {}});
        EXPECT_THROW(chain.validate(), Error);
    }
    // Last operator does not produce the chain output.
    {
        ir::Chain chain("bad");
        chain.addAxis("m", 4);
        const int tIn = chain.addTensor(ir::TensorDecl{
            "I", ir::TensorKind::Input,
            {ir::AccessDim{{ir::AccessTerm{0, 1}}}}, 4});
        const int tMid = chain.addTensor(ir::TensorDecl{
            "M", ir::TensorKind::Intermediate,
            {ir::AccessDim{{ir::AccessTerm{0, 1}}}}, 4});
        chain.addOp(ir::OpDecl{"op", ir::OpKind::Gemm, {0}, {tIn, tMid},
                               tMid, {}});
        EXPECT_THROW(chain.validate(), Error);
    }
    // Non-positive axis extent is rejected at creation.
    {
        ir::Chain chain("bad");
        EXPECT_THROW(chain.addAxis("m", 0), Error);
    }
}

TEST(ChainValidation, SetElementSizeChecksValue)
{
    ir::Chain chain = ir::makeSingleGemm(1, 4, 4, 4);
    EXPECT_THROW(chain.setElementSize(3), Error);
    chain.setElementSize(2);
    for (const auto &tensor : chain.tensors()) {
        EXPECT_EQ(tensor.elementSize, 2);
    }
}

} // namespace
} // namespace chimera
