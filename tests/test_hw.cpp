/**
 * @file
 * Unit tests for the machine models, the simulated accelerator
 * backends, and the random-search tuner baseline.
 */

#include <gtest/gtest.h>

#include "baselines/random_tuner.hpp"
#include "hw/accelerator_sim.hpp"
#include "hw/machines.hpp"
#include "ir/workloads.hpp"
#include "support/error.hpp"

namespace chimera::hw {
namespace {

TEST(Machines, TableOneBalances)
{
    // Table I: peak/bandwidth = 92, 200, 267 FLOP/byte.
    EXPECT_NEAR(machineBalance(cascadeLakeCpu()), 92.0, 1.0);
    EXPECT_NEAR(machineBalance(a100Gpu()), 200.0, 1.0);
    EXPECT_NEAR(machineBalance(ascend910Npu()), 267.0, 1.0);
}

TEST(Machines, RooflineClampsAtPeak)
{
    const auto gpu = a100Gpu();
    EXPECT_DOUBLE_EQ(rooflineFlops(gpu, 1e9), gpu.peakFlops);
    EXPECT_LT(rooflineFlops(gpu, 1.0), gpu.peakFlops);
    EXPECT_DOUBLE_EQ(rooflineFlops(gpu, 1.0),
                     gpu.levels.back().bandwidthBytesPerSec);
}

TEST(Machines, LevelsOrderedInnermostFirst)
{
    for (const auto &machine :
         {cascadeLakeCpu(), a100Gpu(), ascend910Npu()}) {
        for (std::size_t d = 1; d < machine.levels.size(); ++d) {
            EXPECT_LE(machine.levels[d - 1].capacityBytes,
                      machine.levels[d].capacityBytes)
                << machine.name;
            EXPECT_GE(machine.levels[d - 1].bandwidthBytesPerSec,
                      machine.levels[d].bandwidthBytesPerSec)
                << machine.name;
        }
    }
}

TEST(GpuSim, FusionWinsOnMemoryBoundGemmChain)
{
    // G2 (Bert-Base): memory-bound batch GEMMs, the headline case.
    const auto &load = ir::tableIvWorkloads()[1];
    const AcceleratorComparison sim =
        simulateGemmChain(load.config, a100Gpu());
    EXPECT_LT(sim.chimeraSeconds, sim.unfusedSeconds);
    EXPECT_LT(sim.chimeraDramBytes, sim.unfusedDramBytes);
    EXPECT_LE(sim.chimeraSeconds, sim.fixedOrderSeconds + 1e-12);
}

TEST(GpuSim, DramReductionInPaperRange)
{
    // Paper: DRAM access reduced by 9.86%-59.54% vs the unfused path.
    for (const auto &load : ir::tableIvWorkloads()) {
        const AcceleratorComparison sim =
            simulateGemmChain(load.config, a100Gpu());
        // The model is an idealized cache (perfect reuse), so it sits at
        // the optimistic end of the paper's measured range.
        const double reduction =
            1.0 - sim.chimeraDramBytes / sim.unfusedDramBytes;
        EXPECT_GT(reduction, 0.05) << load.config.name;
        EXPECT_LT(reduction, 0.9) << load.config.name;
    }
}

TEST(GpuSim, ComputeBoundC6GainsLessThanMemoryBoundC1)
{
    // Paper's crossover: C6 (1x1 then compute-bound 3x3) gains little
    // from fusion while C1 (3x3 s2 then memory-bound 1x1) gains a lot.
    const auto &c6 = ir::tableVWorkloads()[5];
    const auto &c7 = ir::tableVWorkloads()[6];
    ASSERT_EQ(c6.config.name, "C6");
    ASSERT_EQ(c7.config.name, "C7");
    const AcceleratorComparison simC6 =
        simulateConvChain(c6.config, a100Gpu());
    const AcceleratorComparison simC7 =
        simulateConvChain(c7.config, a100Gpu());
    const double gainC6 = simC6.unfusedSeconds / simC6.chimeraSeconds;
    const double gainC7 = simC7.unfusedSeconds / simC7.chimeraSeconds;
    // C7's consumer is a memory-bound pointwise conv: fusion pays off.
    EXPECT_GT(gainC7, 1.5);
    // C6's consumer is compute-bound: little to gain.
    EXPECT_LT(gainC6, 1.35);
    EXPECT_GT(gainC7, gainC6 + 0.3);
}

TEST(GpuSim, EveryConvChainAtLeastBreaksEven)
{
    for (const auto &load : ir::tableVWorkloads()) {
        const AcceleratorComparison sim =
            simulateConvChain(load.config, a100Gpu());
        EXPECT_GE(sim.unfusedSeconds / sim.chimeraSeconds, 0.99)
            << load.config.name;
        EXPECT_LT(sim.chimeraDramBytes, sim.unfusedDramBytes)
            << load.config.name;
    }
}

TEST(NpuSim, UnifiedBufferBoundsLargeChains)
{
    ir::GemmChainConfig big;
    big.m = 4096;
    big.n = 64;
    big.k = 64;
    big.l = 4096;
    big.name = "big";
    const AcceleratorComparison sim = simulateGemmChain(
        big, ascend910Npu(), ascend910UnifiedBuffer());
    EXPECT_GT(sim.unifiedBufferSeconds, 0.0);
    EXPECT_GE(sim.chimeraSeconds, sim.unifiedBufferSeconds);
}

TEST(NpuSim, FusionStillWinsOnTableIvShapes)
{
    for (std::size_t i : {0u, 3u, 9u}) {
        ir::GemmChainConfig cfg = ir::tableIvWorkloads()[i].config;
        cfg.batch = 1; // paper: NPU evaluation uses batch 1
        const AcceleratorComparison sim = simulateGemmChain(
            cfg, ascend910Npu(), ascend910UnifiedBuffer());
        EXPECT_LT(sim.chimeraSeconds, sim.unfusedSeconds)
            << cfg.name;
    }
}

} // namespace

namespace tuner {

using baselines::randomSearchPlan;
using baselines::TunerOptions;
using baselines::TunerResult;

TEST(RandomTuner, FindsFeasiblePlanAndMeasuresIt)
{
    ir::GemmChainConfig cfg;
    cfg.m = 128;
    cfg.n = 32;
    cfg.k = 32;
    cfg.l = 128;
    const ir::Chain chain = ir::makeGemmChain(cfg);

    TunerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    options.trials = 60;
    int calls = 0;
    const TunerResult result = randomSearchPlan(
        chain, options, [&](const plan::ExecutionPlan &p) {
            ++calls;
            return p.predictedVolumeBytes; // deterministic proxy metric
        });
    EXPECT_EQ(result.measuredTrials, calls);
    EXPECT_GT(calls, 0);
    EXPECT_LE(static_cast<double>(result.plan.memUsageBytes),
              options.memCapacityBytes);
    EXPECT_TRUE(model::isExecutableOrder(chain, result.plan.perm));
}

TEST(RandomTuner, BestNeverWorseThanAnyMeasured)
{
    ir::GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 16;
    cfg.k = 16;
    cfg.l = 64;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    TunerOptions options;
    options.memCapacityBytes = 16.0 * 1024;
    options.trials = 40;
    std::vector<double> seen;
    const TunerResult result = randomSearchPlan(
        chain, options, [&](const plan::ExecutionPlan &p) {
            seen.push_back(p.predictedVolumeBytes);
            return p.predictedVolumeBytes;
        });
    for (double s : seen) {
        EXPECT_GE(s, result.bestSeconds);
    }
}

TEST(RandomTuner, DeterministicUnderSeed)
{
    ir::GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 16;
    cfg.k = 16;
    cfg.l = 64;
    const ir::Chain chain = ir::makeGemmChain(cfg);
    TunerOptions options;
    options.memCapacityBytes = 16.0 * 1024;
    options.trials = 30;
    options.seed = 99;
    auto metric = [](const plan::ExecutionPlan &p) {
        return p.predictedVolumeBytes;
    };
    const TunerResult a = randomSearchPlan(chain, options, metric);
    const TunerResult b = randomSearchPlan(chain, options, metric);
    EXPECT_EQ(a.plan.perm, b.plan.perm);
    EXPECT_EQ(a.plan.tiles, b.plan.tiles);
}

TEST(RandomTuner, ThrowsWhenNothingFits)
{
    const ir::Chain chain = ir::makeSingleGemm(1, 64, 64, 64);
    TunerOptions options;
    options.memCapacityBytes = 4.0;
    options.trials = 10;
    EXPECT_THROW(randomSearchPlan(
                     chain, options,
                     [](const plan::ExecutionPlan &) { return 1.0; }),
                 Error);
}

} // namespace tuner
} // namespace chimera::hw
