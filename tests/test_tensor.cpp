/**
 * @file
 * Unit tests for the Tensor container and the reference operators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "tensor/reference.hpp"
#include "tensor/tensor.hpp"

namespace chimera {
namespace {

TEST(Tensor, ShapeStridesNumel)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.bytes(), 24 * 4);
    const std::vector<std::int64_t> strides = {12, 4, 1};
    EXPECT_EQ(t.strides(), strides);
    EXPECT_EQ(t.shapeString(), "2x3x4");
}

TEST(Tensor, DataIsAligned)
{
    Tensor t({5, 7});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % 64, 0u);
}

TEST(Tensor, AtRoundTripsAndBoundsChecks)
{
    Tensor t({2, 3});
    t.zero();
    t.at({1, 2}) = 5.0f;
    EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0f);
    EXPECT_FLOAT_EQ(t[1 * 3 + 2], 5.0f);
    EXPECT_THROW(t.at({2, 0}), Error);
    EXPECT_THROW(t.at({0, 0, 0}), Error);
}

TEST(Tensor, CopySemanticsAreDeep)
{
    Tensor a({4});
    a.fill(1.0f);
    Tensor b = a;
    b[0] = 9.0f;
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    a = b;
    EXPECT_FLOAT_EQ(a[0], 9.0f);
    b[1] = 3.0f;
    EXPECT_FLOAT_EQ(a[1], 1.0f);
}

TEST(Tensor, RejectsNonPositiveDims)
{
    EXPECT_THROW(Tensor({0, 3}), Error);
    EXPECT_THROW(Tensor({2, -1}), Error);
}

TEST(Tensor, FillUniformIsDeterministic)
{
    Tensor a({100});
    Tensor b({100});
    Rng r1(5);
    Rng r2(5);
    fillUniform(a, r1);
    fillUniform(b, r2);
    EXPECT_TRUE(allClose(a, b, 0.0f, 0.0f));
}

TEST(Tensor, AllCloseToleratesSmallError)
{
    Tensor a({3});
    Tensor b({3});
    a.fill(1.0f);
    b.fill(1.0f + 1e-6f);
    EXPECT_TRUE(allClose(a, b));
    b.fill(1.1f);
    EXPECT_FALSE(allClose(a, b));
    EXPECT_NEAR(maxAbsDiff(a, b), 0.1f, 1e-6f);
}

TEST(Tensor, AllCloseRejectsShapeMismatch)
{
    Tensor a({3});
    Tensor b({4});
    EXPECT_FALSE(allClose(a, b));
}

TEST(Reference, GemmIdentity)
{
    Tensor a({3, 3});
    Tensor eye({3, 3});
    Tensor c({3, 3});
    fillPattern(a);
    eye.zero();
    for (int i = 0; i < 3; ++i) {
        eye.at({i, i}) = 1.0f;
    }
    ref::gemm(a, eye, c);
    EXPECT_TRUE(allClose(a, c));
}

TEST(Reference, GemmKnownValues)
{
    Tensor a({2, 2});
    Tensor b({2, 2});
    Tensor c({2, 2});
    a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
    b[0] = 5; b[1] = 6; b[2] = 7; b[3] = 8;
    ref::gemm(a, b, c);
    EXPECT_FLOAT_EQ(c[0], 19.0f);
    EXPECT_FLOAT_EQ(c[1], 22.0f);
    EXPECT_FLOAT_EQ(c[2], 43.0f);
    EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Reference, GemmShapeMismatchThrows)
{
    Tensor a({2, 3});
    Tensor b({4, 2});
    Tensor c({2, 2});
    EXPECT_THROW(ref::gemm(a, b, c), Error);
}

TEST(Reference, BatchGemmMatchesPerBatchGemm)
{
    const std::int64_t batch = 3, m = 4, k = 5, n = 6;
    Tensor a({batch, m, k});
    Tensor b({batch, k, n});
    Tensor c({batch, m, n});
    Rng rng(1);
    fillUniform(a, rng);
    fillUniform(b, rng);
    ref::batchGemm(a, b, c);

    for (std::int64_t bi = 0; bi < batch; ++bi) {
        Tensor sa({m, k}), sb({k, n}), sc({m, n});
        for (std::int64_t i = 0; i < m * k; ++i) {
            sa[i] = a[bi * m * k + i];
        }
        for (std::int64_t i = 0; i < k * n; ++i) {
            sb[i] = b[bi * k * n + i];
        }
        ref::gemm(sa, sb, sc);
        for (std::int64_t i = 0; i < m * n; ++i) {
            EXPECT_FLOAT_EQ(sc[i], c[bi * m * n + i]);
        }
    }
}

TEST(Reference, ConvOutDim)
{
    EXPECT_EQ(ref::convOutDim(56, 3, 1, 1), 56);
    EXPECT_EQ(ref::convOutDim(112, 3, 2, 1), 56);
    EXPECT_EQ(ref::convOutDim(227, 3, 4, 1), 57);
    EXPECT_EQ(ref::convOutDim(5, 1, 1, 0), 5);
}

TEST(Reference, ConvIdentityKernel)
{
    // A 1x1 kernel with weight 1 copies the input channel.
    Tensor input({1, 1, 4, 4});
    Tensor weight({1, 1, 1, 1});
    Tensor output({1, 1, 4, 4});
    fillPattern(input);
    weight[0] = 1.0f;
    ref::conv2d(input, weight, output, 1, 0);
    EXPECT_TRUE(allClose(input, output));
}

TEST(Reference, ConvAveragingKernelInterior)
{
    // 3x3 all-ones kernel on constant input: interior outputs are 9.
    Tensor input({1, 1, 5, 5});
    Tensor weight({1, 1, 3, 3});
    Tensor output({1, 1, 5, 5});
    input.fill(1.0f);
    weight.fill(1.0f);
    ref::conv2d(input, weight, output, 1, 1);
    EXPECT_FLOAT_EQ(output.at({0, 0, 2, 2}), 9.0f);
    // Corners see only a 2x2 window because of zero padding.
    EXPECT_FLOAT_EQ(output.at({0, 0, 0, 0}), 4.0f);
}

TEST(Reference, ConvStrideTwo)
{
    Tensor input({1, 1, 4, 4});
    Tensor weight({1, 1, 1, 1});
    Tensor output({1, 1, 2, 2});
    fillPattern(input);
    weight[0] = 2.0f;
    ref::conv2d(input, weight, output, 2, 0);
    EXPECT_FLOAT_EQ(output.at({0, 0, 0, 0}), 2.0f * input.at({0, 0, 0, 0}));
    EXPECT_FLOAT_EQ(output.at({0, 0, 1, 1}), 2.0f * input.at({0, 0, 2, 2}));
}

TEST(Reference, ReluClampsNegatives)
{
    Tensor t({4});
    t[0] = -1.0f; t[1] = 0.0f; t[2] = 2.0f; t[3] = -0.5f;
    ref::reluInPlace(t);
    EXPECT_FLOAT_EQ(t[0], 0.0f);
    EXPECT_FLOAT_EQ(t[1], 0.0f);
    EXPECT_FLOAT_EQ(t[2], 2.0f);
    EXPECT_FLOAT_EQ(t[3], 0.0f);
}

TEST(Reference, SoftmaxRowsSumToOne)
{
    Tensor t({3, 5});
    Rng rng(2);
    fillUniform(t, rng, -3.0f, 3.0f);
    ref::softmaxLastDim(t);
    for (int r = 0; r < 3; ++r) {
        float sum = 0.0f;
        for (int c = 0; c < 5; ++c) {
            const float v = t.at({r, c});
            EXPECT_GT(v, 0.0f);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Reference, SoftmaxIsShiftInvariant)
{
    Tensor a({1, 4});
    Tensor b({1, 4});
    for (int i = 0; i < 4; ++i) {
        a[i] = static_cast<float>(i);
        b[i] = static_cast<float>(i) + 100.0f;
    }
    ref::softmaxLastDim(a);
    ref::softmaxLastDim(b);
    EXPECT_TRUE(allClose(a, b, 1e-4f, 1e-5f));
}

TEST(Reference, AddAndBias)
{
    Tensor a({2, 3});
    Tensor b({2, 3});
    Tensor out({2, 3});
    a.fill(1.0f);
    b.fill(2.0f);
    ref::add(a, b, out);
    EXPECT_FLOAT_EQ(out[0], 3.0f);

    Tensor bias({3});
    bias[0] = 1; bias[1] = 2; bias[2] = 3;
    ref::addBiasLastDim(out, bias);
    EXPECT_FLOAT_EQ(out.at({0, 0}), 4.0f);
    EXPECT_FLOAT_EQ(out.at({1, 2}), 6.0f);
}

TEST(Reference, GeluMatchesTanhFormula)
{
    Tensor t({1});
    t[0] = 1.0f;
    ref::geluInPlace(t);
    // gelu(1) ~ 0.8412 for the tanh approximation.
    EXPECT_NEAR(t[0], 0.8412f, 1e-3f);
    Tensor z({1});
    z[0] = 0.0f;
    ref::geluInPlace(z);
    EXPECT_FLOAT_EQ(z[0], 0.0f);
}

TEST(Reference, LayerNormNormalizesRows)
{
    Tensor t({2, 8});
    Rng rng(3);
    fillUniform(t, rng, -2.0f, 5.0f);
    Tensor gamma({8});
    Tensor beta({8});
    gamma.fill(1.0f);
    beta.zero();
    ref::layerNormLastDim(t, gamma, beta);
    for (int r = 0; r < 2; ++r) {
        float mean = 0.0f;
        for (int c = 0; c < 8; ++c) {
            mean += t.at({r, c});
        }
        mean /= 8.0f;
        EXPECT_NEAR(mean, 0.0f, 1e-5f);
        float var = 0.0f;
        for (int c = 0; c < 8; ++c) {
            var += (t.at({r, c}) - mean) * (t.at({r, c}) - mean);
        }
        EXPECT_NEAR(var / 8.0f, 1.0f, 1e-3f);
    }
}

} // namespace
} // namespace chimera
