/**
 * @file
 * Tests for the conv-chain C emitter: structure checks plus compiling
 * and running the generated kernel against the oracle checksum.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unistd.h>

#include "codegen/conv_emitter.hpp"
#include "exec/constraints.hpp"
#include "plan/planner.hpp"

namespace chimera {
namespace {

ir::ConvChainConfig
smallConvConfig(int k1, int k2, int st1, bool relu)
{
    ir::ConvChainConfig cfg;
    cfg.name = "gen";
    cfg.batch = 2;
    cfg.ic = 5;
    cfg.h = 15;
    cfg.w = 15;
    cfg.oc1 = 7;
    cfg.oc2 = 6;
    cfg.k1 = k1;
    cfg.k2 = k2;
    cfg.stride1 = st1;
    cfg.epilogue = relu ? ir::Epilogue::Relu : ir::Epilogue::None;
    return cfg;
}

plan::ExecutionPlan
planFor(const ir::ConvChainConfig &cfg)
{
    const ir::Chain chain = ir::makeConvChain(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 16.0 * 1024;
    return plan::planChain(chain, options);
}

TEST(ConvCodegen, EmitsStructuredSource)
{
    const auto cfg = smallConvConfig(3, 1, 2, true);
    const std::string source =
        codegen::emitConvChainC(cfg, planFor(cfg));
    EXPECT_NE(source.find("chimera_fused_conv_chain"), std::string::npos);
    EXPECT_NE(source.find("g_treg"), std::string::npos);
    EXPECT_NE(source.find("fused ReLU"), std::string::npos);
    EXPECT_NE(source.find("#define MIDH"), std::string::npos);
}

TEST(ConvCodegen, NoReluVariantOmitsClamp)
{
    const auto cfg = smallConvConfig(3, 1, 1, false);
    const std::string source =
        codegen::emitConvChainC(cfg, planFor(cfg));
    EXPECT_EQ(source.find("fused ReLU"), std::string::npos);
}

void
compileAndCheck(const ir::ConvChainConfig &cfg)
{
    const std::string source =
        codegen::emitConvChainC(cfg, planFor(cfg));
    // Unique per process: ctest runs test binaries concurrently and
    // TempDir() is shared, so fixed names race across processes.
    const std::string dir = ::testing::TempDir();
    const std::string stem =
        dir + "/chimera_conv_gen_" + std::to_string(::getpid());
    const std::string cPath = stem + ".c";
    const std::string binPath = stem + "_bin";
    {
        std::ofstream out(cPath);
        out << source;
    }
    const std::string cmd =
        "cc -O2 -std=c99 -o " + binPath + " " + cPath + " -lm";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "compile failed";
    FILE *pipe = popen(binPath.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    double printed = 0.0;
    ASSERT_EQ(fscanf(pipe, "checksum %lf", &printed), 1);
    pclose(pipe);
    const double expected = codegen::convSelfTestChecksum(cfg);
    EXPECT_NEAR(printed, expected, std::abs(expected) * 1e-3 + 1e-3);
}

TEST(ConvCodegen, GeneratedKernel3x3Then1x1)
{
    compileAndCheck(smallConvConfig(3, 1, 2, true));
}

TEST(ConvCodegen, GeneratedKernel1x1Then3x3)
{
    compileAndCheck(smallConvConfig(1, 3, 1, false));
}

TEST(ConvCodegen, GeneratedKernel3x3Then3x3)
{
    compileAndCheck(smallConvConfig(3, 3, 1, true));
}

TEST(ConvCodegen, ChecksumOracleDeterministic)
{
    const auto cfg = smallConvConfig(3, 1, 1, true);
    EXPECT_DOUBLE_EQ(codegen::convSelfTestChecksum(cfg),
                     codegen::convSelfTestChecksum(cfg));
}

} // namespace
} // namespace chimera
