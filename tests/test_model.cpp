/**
 * @file
 * Unit tests for the analytical data-movement model (Algorithm 1) and
 * the multi-level cost model. The central fixtures assert the paper's
 * Table III symbolic values for the GEMM chain under order mlkn.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ir/builders.hpp"
#include "model/data_movement.hpp"
#include "model/multilevel.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::model {
namespace {

using ir::AxisId;
using ir::Chain;
using ir::GemmChainConfig;
using ir::axisIdByName;
using ir::makeGemmChain;

/** Permutation from axis names, outermost first. */
std::vector<AxisId>
permOf(const Chain &chain, const std::vector<std::string> &names)
{
    std::vector<AxisId> perm;
    for (const auto &name : names) {
        perm.push_back(axisIdByName(chain, name));
    }
    return perm;
}

/** Tile vector from name->size pairs; all other axes get full extent. */
std::vector<std::int64_t>
tilesOf(const Chain &chain,
        const std::vector<std::pair<std::string, std::int64_t>> &sizes)
{
    std::vector<std::int64_t> tiles = chain.fullExtents();
    for (const auto &[name, size] : sizes) {
        tiles[static_cast<std::size_t>(axisIdByName(chain, name))] = size;
    }
    return tiles;
}

class GemmChainModel : public ::testing::Test
{
  protected:
    GemmChainModel()
    {
        GemmChainConfig cfg;
        cfg.batch = 1;
        cfg.m = 64;
        cfg.n = 32;
        cfg.k = 16;
        cfg.l = 48;
        chain_ = std::make_unique<Chain>(makeGemmChain(cfg));
    }

    const Chain &chain() const { return *chain_; }

    std::unique_ptr<Chain> chain_;
};

TEST_F(GemmChainModel, TableThreeDataMovementUnderMlkn)
{
    // Paper Table III: order mlkn with tiles (T_M, T_N, T_K, T_L).
    //   DM_A = M*K*ceil(L/T_L), DM_B = K*L*ceil(M/T_M), DM_C = 0,
    //   DM_D = N*L*ceil(M/T_M), DM_E = M*N*ceil(L/T_L).
    const auto perm = permOf(chain(), {"m", "l", "k", "n"});
    const auto tiles =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    const DataMovement dm = computeDataMovement(chain(), perm, tiles);

    const double M = 64, N = 32, K = 16, L = 48;
    const double cm = 64.0 / 8.0; // ceil(M/T_M)
    const double cl = 48.0 / 6.0; // ceil(L/T_L)
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[0], M * K * cl * 4); // A
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[1], K * L * cm * 4); // B
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[2], 0.0); // C on chip
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[3], N * L * cm * 4); // D
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[4], M * N * cl * 4); // E
    EXPECT_DOUBLE_EQ(dm.volumeBytes,
                     (M * K * cl + K * L * cm + N * L * cm + M * N * cl) * 4);
}

TEST_F(GemmChainModel, TableThreeMemoryUsageUnderMlkn)
{
    // GEMM1_MU = T_M*T_K + T_K*T_L + T_M*T_L,
    // GEMM2_MU = T_M*T_L + T_L*T_N + T_M*T_N; MU = max of the two.
    const auto perm = permOf(chain(), {"m", "l", "k", "n"});
    const auto tiles =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    const DataMovement dm = computeDataMovement(chain(), perm, tiles);
    const std::int64_t mu1 = (8 * 4 + 4 * 6 + 8 * 6) * 4;
    const std::int64_t mu2 = (8 * 6 + 6 * 8 + 8 * 8) * 4;
    EXPECT_EQ(dm.memUsageBytes, std::max(mu1, mu2));
}

TEST_F(GemmChainModel, InnermostReuseUnderMknl)
{
    // Under m,k,n,l... use m,n,k,l from Figure 2: A is reused along l
    // (the innermost loop does not touch A), so A moves only M*K once
    // per ceil(M/T_M)*ceil(K/T_K) block walk: DM_A = M*K.
    const auto perm = permOf(chain(), {"m", "n", "k", "l"});
    const auto tiles =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    const DataMovement dm = computeDataMovement(chain(), perm, tiles);
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[0], 64.0 * 16.0 * 4); // A reused on l
    // B is touched by l innermost: every block loop of gemm1 multiplies.
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[1],
                     16.0 * 48.0 * (64.0 / 8.0) * 4); // K*L*ceil(M/T_M)
}

TEST_F(GemmChainModel, PrivateLoopDoesNotMoveConsumerTensors)
{
    // k is private to gemm1: D and E movement must be independent of T_K.
    const auto perm = permOf(chain(), {"k", "m", "l", "n"});
    const auto tilesA =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 2}, {"l", 6}});
    const auto tilesB =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 8}, {"l", 6}});
    const DataMovement dmA = computeDataMovement(chain(), perm, tilesA);
    const DataMovement dmB = computeDataMovement(chain(), perm, tilesB);
    EXPECT_DOUBLE_EQ(dmA.perTensorBytes[3], dmB.perTensorBytes[3]);
    EXPECT_DOUBLE_EQ(dmA.perTensorBytes[4], dmB.perTensorBytes[4]);
}

TEST_F(GemmChainModel, FullExtentTilesMoveEachTensorOnce)
{
    const auto perm = permOf(chain(), {"m", "l", "k", "n"});
    const auto tiles = chain().fullExtents();
    const DataMovement dm = computeDataMovement(chain(), perm, tiles);
    EXPECT_DOUBLE_EQ(dm.volumeBytes,
                     static_cast<double>(chain().ioBytes()));
}

TEST_F(GemmChainModel, IntermediatesAsIOAddsProducerAndConsumerTraffic)
{
    const auto perm = permOf(chain(), {"m", "l", "k", "n"});
    const auto tiles =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    ModelOptions opts;
    opts.intermediatesAreIO = true;
    const DataMovement dm = computeDataMovement(chain(), perm, tiles, opts);
    const DataMovement base = computeDataMovement(chain(), perm, tiles);
    EXPECT_GT(dm.perTensorBytes[2], 0.0);
    EXPECT_GT(dm.volumeBytes, base.volumeBytes);
    // Non-intermediate tensors are unaffected by the flag.
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[0], base.perTensorBytes[0]);
}

TEST_F(GemmChainModel, DataVolumeLowerBoundIsIoBytes)
{
    // No permutation/tiling can move less than each IO tensor once.
    const auto perms = allPermutations(4);
    const auto tiles =
        tilesOf(chain(), {{"m", 16}, {"n", 16}, {"k", 8}, {"l", 12}});
    for (const auto &p : perms) {
        std::vector<AxisId> perm(p.begin(), p.end());
        const DataMovement dm = computeDataMovement(chain(), perm, tiles);
        EXPECT_GE(dm.volumeBytes,
                  static_cast<double>(chain().ioBytes()) - 0.5);
    }
}

TEST_F(GemmChainModel, LargerTilesNeverIncreaseVolume)
{
    // Property: growing one tile (with the rest fixed) cannot increase
    // DV under the same order, since every ceil factor is non-increasing.
    const auto perm = permOf(chain(), {"m", "l", "k", "n"});
    for (std::int64_t tm : {2, 4, 8, 16, 32, 64}) {
        const auto small =
            tilesOf(chain(), {{"m", tm}, {"n", 8}, {"k", 4}, {"l", 6}});
        const auto large =
            tilesOf(chain(), {{"m", tm * 1}, {"n", 8}, {"k", 4}, {"l", 12}});
        const DataMovement a = computeDataMovement(chain(), perm, small);
        const DataMovement b = computeDataMovement(chain(), perm, large);
        EXPECT_LE(b.volumeBytes, a.volumeBytes + 0.5);
    }
}

TEST_F(GemmChainModel, ReuseAxesMatchFigureTwo)
{
    // Order mnkl (Figure 2 row 1): A reused along l, B not reused,
    // D and E reused along the producer-private k.
    const auto perm = permOf(chain(), {"m", "n", "k", "l"});
    const auto tiles =
        tilesOf(chain(), {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    const auto reuse = reuseAxesPerTensor(chain(), perm, tiles);
    ASSERT_EQ(reuse.size(), 5u);
    EXPECT_EQ(reuse[0], std::vector<std::string>{"l"}); // A
    EXPECT_TRUE(reuse[1].empty()); // B
    EXPECT_TRUE(reuse[2].empty()); // C intermediate: not reported
    ASSERT_FALSE(reuse[3].empty()); // D
    EXPECT_EQ(reuse[3][0], "k");
    EXPECT_EQ(std::count(reuse[4].begin(), reuse[4].end(), "k"), 1); // E
}

TEST_F(GemmChainModel, PermutationValidationRejectsBadInput)
{
    const auto tiles = chain().fullExtents();
    EXPECT_THROW(computeDataMovement(chain(), {0, 1, 2}, tiles), Error);
    EXPECT_THROW(computeDataMovement(chain(), {0, 1, 2, 2}, tiles), Error);
    EXPECT_THROW(computeDataMovement(chain(), {0, 1, 2, 9}, tiles), Error);
}

TEST_F(GemmChainModel, TileValidationRejectsBadInput)
{
    const auto perm = permOf(chain(), {"m", "l", "k", "n"});
    auto tiles = chain().fullExtents();
    tiles[0] = 0;
    EXPECT_THROW(computeDataMovement(chain(), perm, tiles), Error);
    tiles = chain().fullExtents();
    tiles[1] += 1;
    EXPECT_THROW(computeDataMovement(chain(), perm, tiles), Error);
}

TEST(GemmChainModelBatch, BatchAxisScalesVolume)
{
    GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 32;
    cfg.n = 16;
    cfg.k = 8;
    cfg.l = 24;
    const Chain chain = makeGemmChain(cfg);
    // Batch outermost with tile 1: whole-chain volume = 4x the b=1 case.
    std::vector<AxisId> perm = permOf(
        chain, {"b", "m", "l", "k", "n"});
    auto tiles = tilesOf(chain, {{"b", 1},
                                 {"m", 8},
                                 {"n", 8},
                                 {"k", 4},
                                 {"l", 6}});
    const DataMovement dm = computeDataMovement(chain, perm, tiles);

    GemmChainConfig single = cfg;
    single.batch = 1;
    const Chain chain1 = makeGemmChain(single);
    const DataMovement dm1 = computeDataMovement(
        chain1, permOf(chain1, {"m", "l", "k", "n"}),
        tilesOf(chain1, {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}}));
    EXPECT_DOUBLE_EQ(dm.volumeBytes, 4.0 * dm1.volumeBytes);
}

TEST(MultiLevel, CostsAndFeasibility)
{
    GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    const Chain chain = makeGemmChain(cfg);

    MachineModel machine;
    machine.name = "toy";
    machine.levels = {
        {"L1", 16.0 * 1024, 100e9},
        {"L2", 512.0 * 1024, 50e9},
    };
    machine.peakFlops = 1e12;

    LevelSchedule inner;
    inner.perm = permOf(chain, {"m", "l", "k", "n"});
    inner.tiles = tilesOf(chain, {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    LevelSchedule outer;
    outer.perm = inner.perm;
    outer.tiles = tilesOf(chain, {{"m", 32}, {"n", 32}, {"k", 16}, {"l", 24}});

    const MultiLevelCost cost =
        evaluateMultiLevel(chain, machine, {inner, outer});
    ASSERT_EQ(cost.stageSeconds.size(), 2u);
    EXPECT_TRUE(cost.feasible);
    EXPECT_GT(cost.volumeBytes[0], cost.volumeBytes[1]);
    EXPECT_GT(cost.computeSeconds, 0.0);
    EXPECT_GE(cost.boundSeconds, cost.computeSeconds);
    for (double stage : cost.stageSeconds) {
        EXPECT_LE(stage, cost.boundSeconds);
    }
    EXPECT_GT(arithmeticIntensity(chain, cost), 0.0);
}

TEST(MultiLevel, InfeasibleWhenTilesExceedCapacity)
{
    GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 64;
    cfg.k = 64;
    cfg.l = 64;
    const Chain chain = makeGemmChain(cfg);
    MachineModel machine;
    machine.levels = {{"L1", 64.0, 100e9}}; // 64 bytes: nothing fits
    machine.peakFlops = 1e12;
    LevelSchedule sched;
    sched.perm = permOf(chain, {"m", "l", "k", "n"});
    sched.tiles = chain.fullExtents();
    const MultiLevelCost cost = evaluateMultiLevel(chain, machine, {sched});
    EXPECT_FALSE(cost.feasible);
}

TEST(MultiLevel, MoreCoresReduceStageTime)
{
    GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    const Chain chain = makeGemmChain(cfg);
    MachineModel machine;
    machine.levels = {{"L1", 1e9, 100e9}};
    machine.peakFlops = 1e12;
    LevelSchedule sched;
    sched.perm = permOf(chain, {"m", "l", "k", "n"});
    sched.tiles = tilesOf(chain, {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    machine.cores = 1;
    const double t1 =
        evaluateMultiLevel(chain, machine, {sched}).stageSeconds[0];
    machine.cores = 4;
    const double t4 =
        evaluateMultiLevel(chain, machine, {sched}).stageSeconds[0];
    EXPECT_NEAR(t4, t1 / 4.0, 1e-12);
}

TEST(MultiLevel, SharedBandwidthDoesNotScaleWithWorkers)
{
    GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    const Chain chain = makeGemmChain(cfg);
    MachineModel machine;
    machine.levels = {{"L2", 1e9, 200e9, LevelScope::PerCore},
                      {"LLC", 4e9, 100e9, LevelScope::Shared}};
    machine.peakFlops = 1e12;
    machine.cores = 8;
    LevelSchedule sched;
    sched.perm = permOf(chain, {"m", "l", "k", "n"});
    sched.tiles = tilesOf(chain, {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});

    const MultiLevelCost one =
        evaluateMultiLevel(chain, machine, {sched, sched}, {}, 1);
    const MultiLevelCost eight =
        evaluateMultiLevel(chain, machine, {sched, sched}, {}, 8);
    // The per-core link replicates with the workers; the shared link is
    // one contended resource whose stage time stays put.
    EXPECT_NEAR(eight.stageSeconds[0], one.stageSeconds[0] / 8.0, 1e-15);
    EXPECT_DOUBLE_EQ(eight.stageSeconds[1], one.stageSeconds[1]);
    // Compute scales with the active share of the machine peak.
    EXPECT_NEAR(eight.computeSeconds, one.computeSeconds / 8.0, 1e-15);
}

TEST(MultiLevel, SharedCapacityIsSplitAcrossWorkers)
{
    MachineModel machine;
    machine.levels = {{"L2", 1024.0, 1e9, LevelScope::PerCore},
                      {"LLC", 8192.0, 1e9, LevelScope::Shared}};
    machine.cores = 8;
    EXPECT_DOUBLE_EQ(
        perWorkerCapacityBytes(machine.levels[0], machine, 8), 1024.0);
    EXPECT_DOUBLE_EQ(
        perWorkerCapacityBytes(machine.levels[1], machine, 8), 1024.0);
    EXPECT_DOUBLE_EQ(
        perWorkerCapacityBytes(machine.levels[1], machine, 2), 4096.0);
    EXPECT_DOUBLE_EQ(minSharedPerWorkerCapacityBytes(machine, 4), 2048.0);
    // Threads beyond the core count cannot all be concurrent.
    EXPECT_EQ(activeWorkers(machine, 64), 8);
    EXPECT_EQ(activeWorkers(machine, 0), 8); // default: all cores
    // No shared level -> no shared budget to split.
    MachineModel priv = machine;
    priv.levels[1].scope = LevelScope::PerCore;
    EXPECT_TRUE(std::isinf(minSharedPerWorkerCapacityBytes(priv, 8)));
}

TEST(MultiLevel, ExplicitSingleWorkerKeepsOneCoresShare)
{
    GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    const Chain chain = makeGemmChain(cfg);
    MachineModel machine;
    machine.levels = {{"L1", 1e9, 100e9}};
    machine.peakFlops = 1e12;
    machine.cores = 4;
    LevelSchedule sched;
    sched.perm = permOf(chain, {"m", "l", "k", "n"});
    sched.tiles = tilesOf(chain, {{"m", 8}, {"n", 8}, {"k", 4}, {"l", 6}});
    const MultiLevelCost pinned =
        evaluateMultiLevel(chain, machine, {sched}, {}, 1);
    machine.cores = 1;
    const MultiLevelCost serial =
        evaluateMultiLevel(chain, machine, {sched}, {}, 1);
    // One explicit worker on a 4-core machine moves data at one link's
    // rate, exactly like the 1-core machine...
    EXPECT_DOUBLE_EQ(pinned.stageSeconds[0], serial.stageSeconds[0]);
    // ...but sustains only a quarter of the aggregate peak.
    EXPECT_NEAR(pinned.computeSeconds, serial.computeSeconds * 4.0,
                1e-15);
}

TEST(MultiLevel, SchedulesMustMatchLevels)
{
    const Chain chain = ir::makeSingleGemm(1, 8, 8, 8);
    MachineModel machine;
    machine.levels = {{"L1", 1e6, 1e9}, {"L2", 1e7, 1e9}};
    machine.peakFlops = 1e12;
    LevelSchedule sched;
    sched.perm = {0, 1, 2};
    sched.tiles = chain.fullExtents();
    EXPECT_THROW(evaluateMultiLevel(chain, machine, {sched}), Error);
}

} // namespace
} // namespace chimera::model
