/**
 * @file
 * Tests for the three-GEMM chain extension: IR structure, Algorithm-1
 * behaviour with two intermediates, panel-aware executable orders,
 * planning, and fused-executor correctness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exec/gemm_chain3_exec.hpp"
#include "model/data_movement.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace chimera {
namespace {

ir::GemmChain3Config
smallChain3()
{
    ir::GemmChain3Config cfg;
    cfg.batch = 2;
    cfg.m = 48;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 40;
    cfg.p = 20;
    return cfg;
}

plan::ExecutionPlan
planChain3(const ir::GemmChain3Config &cfg, double capacity)
{
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = capacity;
    options.constraints = exec::gemmChain3Constraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    return plan::planChain(chain, options);
}

TEST(Chain3Ir, SixIndependentAxesWithBatch)
{
    const ir::Chain chain = ir::makeGemmChain3(smallChain3());
    EXPECT_EQ(chain.numAxes(), 6);
    EXPECT_EQ(chain.ops().size(), 3u);
    EXPECT_EQ(chain.tensors().size(), 7u);
    // A, B, D, F inputs + E output are IO; C1, C2 stay on chip.
    EXPECT_EQ(chain.ioTensorIds().size(), 5u);
}

TEST(Chain3Ir, PrivateAxesFlowThroughOps)
{
    const ir::Chain chain = ir::makeGemmChain3(smallChain3());
    const auto priv1 = chain.privateAxesOf(0);
    ASSERT_EQ(priv1.size(), 1u);
    EXPECT_EQ(chain.axes()[static_cast<std::size_t>(priv1[0])].name, "k");
    const auto priv2 = chain.privateAxesOf(1);
    ASSERT_EQ(priv2.size(), 1u);
    EXPECT_EQ(chain.axes()[static_cast<std::size_t>(priv2[0])].name, "l");
}

TEST(Chain3Ir, SoftmaxBuildsTheAttentionChain)
{
    // QK^T -> softmax -> .V -> proj: same IR skeleton, the softmax
    // rides as the first intermediate's epilogue.
    ir::GemmChain3Config cfg = smallChain3();
    cfg.epilogue = ir::Epilogue::Softmax;
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    EXPECT_EQ(chain.ops().size(), 3u);
    EXPECT_EQ(chain.intermediateEpilogue(), ir::Epilogue::Softmax);
}

TEST(Chain3Planner, SoftmaxPinsTheFullScoreRow)
{
    // Softmax normalizes a whole l row, so the constraints pin T_L = L
    // (next to the usual T_P = P panel pin).
    ir::GemmChain3Config cfg = smallChain3();
    cfg.epilogue = ir::Epilogue::Softmax;
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 64.0 * 1024;
    options.constraints = exec::gemmChain3Constraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    const plan::ExecutionPlan plan = plan::planChain(chain, options);
    const ir::AxisId l = ir::axisIdByName(chain, "l");
    const ir::AxisId p = ir::axisIdByName(chain, "p");
    EXPECT_EQ(plan.tiles[static_cast<std::size_t>(l)], cfg.l);
    EXPECT_EQ(plan.tiles[static_cast<std::size_t>(p)], cfg.p);
}

TEST(Chain3Model, IntermediatesMoveNothing)
{
    const ir::Chain chain = ir::makeGemmChain3(smallChain3());
    const auto perm = plan::permFromOrderString(chain, "b,m,l,k,p,n");
    const auto tiles = chain.fullExtents();
    const auto dm = model::computeDataMovement(chain, perm, tiles);
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[2], 0.0); // C1
    EXPECT_DOUBLE_EQ(dm.perTensorBytes[4], 0.0); // C2
    EXPECT_DOUBLE_EQ(dm.volumeBytes,
                     static_cast<double>(chain.ioBytes()));
}

TEST(Chain3Model, NoFullyBlockedOrderIsExecutable)
{
    // With every axis blocked, the two intermediates impose conflicting
    // orderings (p inner to l and l inner to p): nothing is executable.
    const ir::Chain chain = ir::makeGemmChain3(smallChain3());
    int executable = 0;
    for (const auto &idx : allPermutations(5)) {
        std::vector<ir::AxisId> perm;
        perm.push_back(ir::axisIdByName(chain, "b"));
        for (int i : idx) {
            perm.push_back(i + 1); // axes m, n, k, l, p follow b
        }
        if (model::isExecutableOrder(chain, perm)) {
            ++executable;
        }
    }
    EXPECT_EQ(executable, 0);
}

TEST(Chain3Model, PanelTilesUnlockExecutableOrders)
{
    const ir::Chain chain = ir::makeGemmChain3(smallChain3());
    auto tiles = chain.fullExtents();
    // Block everything except p (held as a full panel).
    for (const char *name : {"m", "n", "k", "l"}) {
        tiles[static_cast<std::size_t>(ir::axisIdByName(chain, name))] = 8;
    }
    tiles[static_cast<std::size_t>(ir::axisIdByName(chain, "b"))] = 1;
    const auto perm = plan::permFromOrderString(chain, "b,m,l,k,p,n");
    EXPECT_FALSE(model::isExecutableOrder(chain, perm));
    EXPECT_TRUE(model::isExecutableOrder(chain, perm, tiles));
}

TEST(Chain3Planner, PlansWithPanelConstraint)
{
    const plan::ExecutionPlan plan = planChain3(smallChain3(), 64.0 * 1024);
    const ir::Chain chain = ir::makeGemmChain3(smallChain3());
    const ir::AxisId p = ir::axisIdByName(chain, "p");
    EXPECT_EQ(plan.tiles[static_cast<std::size_t>(p)], 20);
    EXPECT_LE(static_cast<double>(plan.memUsageBytes), 64.0 * 1024);
}

class Chain3Exec : public ::testing::TestWithParam<ir::Epilogue>
{
};

TEST_P(Chain3Exec, FusedMatchesReference)
{
    ir::GemmChain3Config cfg = smallChain3();
    cfg.epilogue = GetParam();
    const plan::ExecutionPlan plan = planChain3(cfg, 48.0 * 1024);

    Tensor a(exec::gemmChain3ShapeA(cfg));
    Tensor b(exec::gemmChain3ShapeB(cfg));
    Tensor d(exec::gemmChain3ShapeD(cfg));
    Tensor f(exec::gemmChain3ShapeF(cfg));
    Tensor e(exec::gemmChain3ShapeE(cfg));
    Tensor expected(exec::gemmChain3ShapeE(cfg));
    Rng rng(9);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    fillUniform(f, rng);

    exec::referenceGemmChain3(cfg, a, b, d, f, expected);
    exec::runFusedGemmChain3(cfg, plan, exec::ComputeEngine::best(), a, b,
                             d, f, e);
    EXPECT_TRUE(allClose(e, expected, 5e-3f, 5e-3f))
        << "maxdiff " << maxAbsDiff(e, expected);
}

INSTANTIATE_TEST_SUITE_P(Epilogues, Chain3Exec,
                         ::testing::Values(ir::Epilogue::None,
                                           ir::Epilogue::Relu,
                                           ir::Epilogue::Softmax));

TEST(Chain3Exec, SoftmaxAttentionWithScaleMatchesReference)
{
    // The 4-op attention pattern with the 1/sqrt(d_k) score scaling:
    // fused (on-chip row softmax) vs the max-subtracting reference.
    ir::GemmChain3Config cfg = smallChain3();
    cfg.epilogue = ir::Epilogue::Softmax;
    cfg.softmaxScale = 1.0f / std::sqrt(static_cast<float>(cfg.k));
    const plan::ExecutionPlan plan = planChain3(cfg, 48.0 * 1024);

    Tensor a(exec::gemmChain3ShapeA(cfg));
    Tensor b(exec::gemmChain3ShapeB(cfg));
    Tensor d(exec::gemmChain3ShapeD(cfg));
    Tensor f(exec::gemmChain3ShapeF(cfg));
    Tensor e(exec::gemmChain3ShapeE(cfg));
    Tensor fused(exec::gemmChain3ShapeE(cfg));
    Tensor expected(exec::gemmChain3ShapeE(cfg));
    Rng rng(31);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    fillUniform(f, rng);

    exec::referenceGemmChain3(cfg, a, b, d, f, expected);
    exec::runFusedGemmChain3(cfg, plan, exec::ComputeEngine::best(), a, b,
                             d, f, fused);
    EXPECT_TRUE(allClose(fused, expected, 5e-3f, 5e-3f))
        << "maxdiff " << maxAbsDiff(fused, expected);

    Tensor c1({cfg.batch, cfg.m, cfg.l});
    Tensor c2({cfg.batch, cfg.m, cfg.p});
    exec::runUnfusedGemmChain3(cfg, exec::ComputeEngine::best(), a, b, d,
                               f, c1, c2, e, {16, 16, 16});
    EXPECT_TRUE(allClose(e, expected, 5e-3f, 5e-3f))
        << "maxdiff " << maxAbsDiff(e, expected);
}

TEST(Chain3Exec, OddShapesAndBatchOne)
{
    ir::GemmChain3Config cfg;
    cfg.batch = 1;
    cfg.m = 37;
    cfg.n = 19;
    cfg.k = 11;
    cfg.l = 23;
    cfg.p = 13;
    const plan::ExecutionPlan plan = planChain3(cfg, 32.0 * 1024);

    Tensor a(exec::gemmChain3ShapeA(cfg));
    Tensor b(exec::gemmChain3ShapeB(cfg));
    Tensor d(exec::gemmChain3ShapeD(cfg));
    Tensor f(exec::gemmChain3ShapeF(cfg));
    Tensor e(exec::gemmChain3ShapeE(cfg));
    Tensor expected(exec::gemmChain3ShapeE(cfg));
    Rng rng(21);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    fillUniform(f, rng);
    exec::referenceGemmChain3(cfg, a, b, d, f, expected);
    exec::runFusedGemmChain3(cfg, plan, exec::ComputeEngine::best(), a, b,
                             d, f, e);
    EXPECT_TRUE(allClose(e, expected, 5e-3f, 5e-3f));
}

TEST(Chain3Exec, UnfusedMatchesReference)
{
    const ir::GemmChain3Config cfg = smallChain3();
    Tensor a(exec::gemmChain3ShapeA(cfg));
    Tensor b(exec::gemmChain3ShapeB(cfg));
    Tensor d(exec::gemmChain3ShapeD(cfg));
    Tensor f(exec::gemmChain3ShapeF(cfg));
    Tensor e(exec::gemmChain3ShapeE(cfg));
    Tensor c1({cfg.batch, cfg.m, cfg.l});
    Tensor c2({cfg.batch, cfg.m, cfg.p});
    Tensor expected(exec::gemmChain3ShapeE(cfg));
    Rng rng(4);
    fillUniform(a, rng);
    fillUniform(b, rng);
    fillUniform(d, rng);
    fillUniform(f, rng);
    exec::referenceGemmChain3(cfg, a, b, d, f, expected);
    exec::runUnfusedGemmChain3(cfg, exec::ComputeEngine::best(), a, b, d,
                               f, c1, c2, e, {16, 16, 16});
    EXPECT_TRUE(allClose(e, expected, 5e-3f, 5e-3f));
}

TEST(Chain3Exec, RequiresPanelTileForP)
{
    const ir::GemmChain3Config cfg = smallChain3();
    const ir::Chain chain = ir::makeGemmChain3(cfg);
    plan::ExecutionPlan plan;
    plan.perm = plan::permFromOrderString(chain, "b,m,l,k,p,n");
    plan.tiles = chain.fullExtents();
    plan.tiles[static_cast<std::size_t>(ir::axisIdByName(chain, "p"))] = 4;

    Tensor a(exec::gemmChain3ShapeA(cfg));
    Tensor b(exec::gemmChain3ShapeB(cfg));
    Tensor d(exec::gemmChain3ShapeD(cfg));
    Tensor f(exec::gemmChain3ShapeF(cfg));
    Tensor e(exec::gemmChain3ShapeE(cfg));
    EXPECT_THROW(runFusedGemmChain3(cfg, plan, exec::ComputeEngine::best(),
                                    a, b, d, f, e),
                 Error);
}

} // namespace
} // namespace chimera
