/**
 * @file
 * Tests for the symbolic data-movement formulas: they must reproduce
 * the paper's Table III expressions verbatim for the GEMM chain and
 * stay numerically consistent with Algorithm 1.
 */

#include <gtest/gtest.h>

#include "ir/builders.hpp"
#include "model/data_movement.hpp"
#include "model/symbolic.hpp"
#include "plan/planner.hpp"

namespace chimera::model {
namespace {

ir::Chain
paperChain()
{
    ir::GemmChainConfig cfg;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "sym";
    return ir::makeGemmChain(cfg);
}

TEST(Symbolic, TableThreeUnderMlkn)
{
    // Paper Table III: DM_A = M*K*ceil(L/T_L), DM_B = K*L*ceil(M/T_M),
    // DM_C = 0, DM_D = N*L*ceil(M/T_M), DM_E = M*N*ceil(L/T_L).
    const ir::Chain chain = paperChain();
    const auto perm = plan::permFromOrderString(chain, "m,l,k,n");
    const auto formulas = symbolicMovement(chain, perm);
    ASSERT_EQ(formulas.size(), 5u);
    EXPECT_EQ(formulas[0], "M*K*ceil(L/T_l)"); // A
    EXPECT_EQ(formulas[1], "K*L*ceil(M/T_m)"); // B
    EXPECT_EQ(formulas[2], "0 (on-chip)"); // C
    EXPECT_EQ(formulas[3], "L*N*ceil(M/T_m)"); // D
    EXPECT_EQ(formulas[4], "M*N*ceil(L/T_l)"); // E
}

TEST(Symbolic, InnermostReuseDropsTheCeil)
{
    // Under mnkl, A is reused along l: DM_A = M*K exactly.
    const ir::Chain chain = paperChain();
    const auto perm = plan::permFromOrderString(chain, "m,n,k,l");
    const auto formulas = symbolicMovement(chain, perm);
    EXPECT_EQ(formulas[0], "M*K");
    // B is touched innermost: every gemm1 block loop multiplies.
    EXPECT_EQ(formulas[1], "K*L*ceil(M/T_m)");
}

TEST(Symbolic, FootprintStrings)
{
    const ir::Chain chain = paperChain();
    EXPECT_EQ(symbolicFootprint(chain, 0), "T_m*T_k"); // A
    EXPECT_EQ(symbolicFootprint(chain, 2), "T_m*T_l"); // C
}

TEST(Symbolic, HaloDimensionsRenderAffine)
{
    ir::ConvChainConfig cfg;
    cfg.ic = 8;
    cfg.h = 16;
    cfg.w = 16;
    cfg.oc1 = 8;
    cfg.oc2 = 8;
    cfg.k1 = 3;
    cfg.k2 = 1;
    cfg.stride1 = 2;
    const ir::Chain chain = ir::makeConvChain(cfg);
    const std::string fp = symbolicFootprint(chain, 0); // input I
    EXPECT_NE(fp.find("T_ic"), std::string::npos);
    EXPECT_NE(fp.find("2*(T_oh-1)"), std::string::npos);
    EXPECT_NE(fp.find("KH1-1"), std::string::npos); // pinned kernel axis
}

TEST(Symbolic, ConsistentWithAlgorithmOneOnDivisibleTiles)
{
    // Evaluate the symbolic expressions by substitution and compare to
    // Algorithm 1 for divisible tiles (where the cancellation is exact).
    const ir::Chain chain = paperChain();
    const auto perm = plan::permFromOrderString(chain, "l,m,n,k");
    const auto formulas = symbolicMovement(chain, perm);

    std::vector<std::int64_t> tiles = chain.fullExtents();
    auto set = [&](const char *name, std::int64_t v) {
        tiles[static_cast<std::size_t>(ir::axisIdByName(chain, name))] = v;
    };
    set("m", 16);
    set("n", 8);
    set("k", 4);
    set("l", 12);
    const auto dm = computeDataMovement(chain, perm, tiles);

    // Hand-evaluate the expected symbolic values (elements).
    const double M = 64, K = 16, L = 48;
    const double cm = M / 16, cl = L / 12;
    struct Case
    {
        std::size_t tensor;
        double expected;
    };
    // Under l,m,n,k: A moved per (k trigger) -> M*K*ceil(L/T_l);
    // B: K*L*ceil(M/T_m); D: L*N (n innermost of op2 after k removed?);
    // verify against Algorithm 1 rather than hand algebra:
    for (std::size_t t = 0; t < formulas.size(); ++t) {
        if (formulas[t] == "0 (on-chip)") {
            EXPECT_DOUBLE_EQ(dm.perTensorBytes[t], 0.0);
        }
    }
    // Spot-check A's formula value.
    double expectA = 0.0;
    if (formulas[0] == "M*K*ceil(L/T_l)") {
        expectA = M * K * cl * 4;
    } else if (formulas[0] == "M*K") {
        expectA = M * K * 4;
    } else if (formulas[0] == "M*K*ceil(L/T_l)*ceil(M/T_m)") {
        expectA = M * K * cl * cm * 4;
    }
    if (expectA != 0.0) {
        EXPECT_DOUBLE_EQ(dm.perTensorBytes[0], expectA);
    }
}

} // namespace
} // namespace chimera::model
