/**
 * @file
 * Tests for the end-to-end Transformer encoder substrate and the C
 * code emitter, including compiling and running a generated kernel.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unistd.h>

#include "codegen/c_emitter.hpp"
#include "graph/transformer.hpp"
#include "support/cpu_features.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace chimera {
namespace {

graph::EncoderConfig
tinyEncoder()
{
    graph::EncoderConfig cfg;
    cfg.name = "tiny";
    cfg.seqLen = 48;
    cfg.heads = 2;
    cfg.headDim = 16;
    cfg.ffDim = 64;
    cfg.layers = 2;
    return cfg;
}

TEST(Transformer, NamedConfigsMatchPaperShapes)
{
    EXPECT_EQ(graph::transformerSmall().heads, 8);
    EXPECT_EQ(graph::bertBase().modelDim(), 768);
    EXPECT_EQ(graph::bertLarge().modelDim(), 1024);
    EXPECT_EQ(graph::vitBase().seqLen, 256);
    EXPECT_EQ(graph::transformerLarge().seqLen, 512);
}

TEST(Transformer, FusedAndUnfusedAttentionAgree)
{
    const graph::TransformerEncoder encoder(tinyEncoder(), 16.0 * 1024);
    Tensor input({48, 32});
    Rng rng(3);
    fillUniform(input, rng);

    const Tensor fused =
        encoder.forward(input, graph::AttentionMode::FusedChimera);
    const Tensor unfused =
        encoder.forward(input, graph::AttentionMode::Unfused);
    EXPECT_TRUE(allClose(fused, unfused, 5e-3f, 5e-3f))
        << "maxdiff " << maxAbsDiff(fused, unfused);
}

TEST(Transformer, CausalAttentionModesAgree)
{
    graph::EncoderConfig cfg = tinyEncoder();
    cfg.causal = true;
    const graph::TransformerEncoder encoder(cfg, 16.0 * 1024);
    Tensor input({48, 32});
    Rng rng(6);
    fillUniform(input, rng);
    const Tensor fused =
        encoder.forward(input, graph::AttentionMode::FusedChimera);
    const Tensor unfused =
        encoder.forward(input, graph::AttentionMode::Unfused);
    EXPECT_TRUE(allClose(fused, unfused, 5e-3f, 5e-3f))
        << "maxdiff " << maxAbsDiff(fused, unfused);
}

TEST(Transformer, CausalAndBidirectionalDiffer)
{
    graph::EncoderConfig cfg = tinyEncoder();
    const graph::TransformerEncoder bidir(cfg, 16.0 * 1024);
    cfg.causal = true;
    const graph::TransformerEncoder causal(cfg, 16.0 * 1024);
    Tensor input({48, 32});
    Rng rng(7);
    fillUniform(input, rng);
    const Tensor a =
        bidir.forward(input, graph::AttentionMode::FusedChimera);
    const Tensor b =
        causal.forward(input, graph::AttentionMode::FusedChimera);
    EXPECT_GT(maxAbsDiff(a, b), 1e-3f);
}

TEST(Transformer, OutputIsLayerNormalized)
{
    const graph::TransformerEncoder encoder(tinyEncoder(), 16.0 * 1024);
    Tensor input({48, 32});
    Rng rng(5);
    fillUniform(input, rng);
    const Tensor out =
        encoder.forward(input, graph::AttentionMode::FusedChimera);
    // Every row has ~zero mean and ~unit variance after the final norm.
    for (std::int64_t r = 0; r < 48; ++r) {
        float mean = 0.0f;
        for (std::int64_t c = 0; c < 32; ++c) {
            mean += out[r * 32 + c];
        }
        mean /= 32.0f;
        EXPECT_NEAR(mean, 0.0f, 1e-4f);
    }
}

TEST(Transformer, AttentionChainMatchesConfig)
{
    const graph::TransformerEncoder encoder(tinyEncoder(), 16.0 * 1024);
    const ir::GemmChainConfig &chain = encoder.attentionChain();
    EXPECT_EQ(chain.batch, 2);
    EXPECT_EQ(chain.m, 48);
    EXPECT_EQ(chain.l, 48);
    EXPECT_EQ(chain.k, 16);
    EXPECT_EQ(chain.epilogue, ir::Epilogue::Softmax);
    EXPECT_FALSE(encoder.attentionPlan().perm.empty());
}

TEST(Transformer, RejectsWrongInputShape)
{
    const graph::TransformerEncoder encoder(tinyEncoder(), 16.0 * 1024);
    Tensor bad({10, 32});
    EXPECT_THROW(
        encoder.forward(bad, graph::AttentionMode::FusedChimera), Error);
}

// ---------------------------------------------------------------------
// Codegen.
// ---------------------------------------------------------------------

ir::GemmChainConfig
codegenConfig(ir::Epilogue epilogue)
{
    ir::GemmChainConfig cfg;
    cfg.name = "codegen";
    cfg.batch = 2;
    cfg.m = 40;
    cfg.n = 24;
    cfg.k = 16;
    cfg.l = 32;
    cfg.epilogue = epilogue;
    cfg.softmaxScale = 0.25f;
    return cfg;
}

plan::ExecutionPlan
codegenPlan(const ir::GemmChainConfig &cfg)
{
    const ir::Chain chain = ir::makeGemmChain(cfg);
    plan::PlannerOptions options;
    options.memCapacityBytes = 8.0 * 1024;
    return plan::planChain(chain, options);
}

TEST(Codegen, EmitsStructuredSource)
{
    const auto cfg = codegenConfig(ir::Epilogue::Softmax);
    const std::string source =
        codegen::emitGemmChainC(cfg, codegenPlan(cfg));
    EXPECT_NE(source.find("micro_kernel_ref"), std::string::npos);
    EXPECT_NE(source.find("micro_kernel_avx512"), std::string::npos);
    EXPECT_NE(source.find("chimera_fused_gemm_chain"), std::string::npos);
    EXPECT_NE(source.find("g_rowsum"), std::string::npos);
    EXPECT_NE(source.find("#define TM"), std::string::npos);
    EXPECT_NE(source.find("Block order:"), std::string::npos);
}

TEST(Codegen, ReluVariantOmitsSoftmaxState)
{
    const auto cfg = codegenConfig(ir::Epilogue::Relu);
    const std::string source =
        codegen::emitGemmChainC(cfg, codegenPlan(cfg));
    EXPECT_EQ(source.find("g_rowsum"), std::string::npos);
    EXPECT_NE(source.find("> 0.0f"), std::string::npos);
}

/** Compiles and runs the generated kernel; compares checksums. */
void
compileAndCheck(const ir::GemmChainConfig &cfg, const char *extraFlags)
{
    const std::string source =
        codegen::emitGemmChainC(cfg, codegenPlan(cfg));
    // Unique per process: ctest runs test binaries concurrently and
    // TempDir() is shared, so fixed names race across processes.
    const std::string dir = ::testing::TempDir();
    const std::string stem =
        dir + "/chimera_gen_" + std::to_string(::getpid());
    const std::string cPath = stem + ".c";
    const std::string binPath = stem + "_bin";
    {
        std::ofstream out(cPath);
        out << source;
    }
    const std::string cmd = std::string("cc -O2 -std=c99 ") + extraFlags +
                            " -o " + binPath + " " + cPath + " -lm";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "compile failed: " << cmd;

    FILE *pipe = popen(binPath.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    double printed = 0.0;
    ASSERT_EQ(fscanf(pipe, "checksum %lf", &printed), 1);
    pclose(pipe);

    const double expected = codegen::selfTestChecksum(cfg);
    EXPECT_NEAR(printed, expected,
                std::abs(expected) * 1e-3 + 1e-3)
        << "flags: " << extraFlags;
}

TEST(Codegen, GeneratedKernelComputesCorrectResultScalar)
{
    compileAndCheck(codegenConfig(ir::Epilogue::None), "");
    compileAndCheck(codegenConfig(ir::Epilogue::Softmax), "");
}

TEST(Codegen, GeneratedKernelComputesCorrectResultAvx512)
{
    if (detectSimdTier() != SimdTier::Avx512) {
        GTEST_SKIP() << "host lacks AVX-512";
    }
    compileAndCheck(codegenConfig(ir::Epilogue::None), "-march=native");
    compileAndCheck(codegenConfig(ir::Epilogue::Relu), "-march=native");
}

TEST(Codegen, ChecksumOracleIsDeterministic)
{
    const auto cfg = codegenConfig(ir::Epilogue::None);
    EXPECT_DOUBLE_EQ(codegen::selfTestChecksum(cfg),
                     codegen::selfTestChecksum(cfg));
}

} // namespace
} // namespace chimera
