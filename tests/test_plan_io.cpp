/**
 * @file
 * Tests for plan serialization: round trips, validation against the
 * binding chain, and rejection of malformed/stale documents.
 */

#include <gtest/gtest.h>

#include "ir/builders.hpp"
#include "plan/plan_io.hpp"
#include "support/error.hpp"

namespace chimera::plan {
namespace {

ir::Chain
chainUnderTest()
{
    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "io-test";
    return ir::makeGemmChain(cfg);
}

ExecutionPlan
planUnderTest(const ir::Chain &chain)
{
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    return planChain(chain, options);
}

TEST(PlanIo, RoundTripPreservesScheduleExactly)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const std::string text = serializePlan(chain, plan);
    const ExecutionPlan restored = deserializePlan(chain, text);
    EXPECT_EQ(restored.perm, plan.perm);
    EXPECT_EQ(restored.tiles, plan.tiles);
    EXPECT_DOUBLE_EQ(restored.predictedVolumeBytes,
                     plan.predictedVolumeBytes);
    EXPECT_EQ(restored.memUsageBytes, plan.memUsageBytes);
}

TEST(PlanIo, DocumentIsHumanReadable)
{
    const ir::Chain chain = chainUnderTest();
    const std::string text = serializePlan(chain, planUnderTest(chain));
    EXPECT_NE(text.find("chimera-plan v1"), std::string::npos);
    EXPECT_NE(text.find("order:"), std::string::npos);
    EXPECT_NE(text.find("tiles:"), std::string::npos);
    EXPECT_NE(text.find("io-test"), std::string::npos);
}

TEST(PlanIo, StalePredictionsAreRecomputed)
{
    // Tamper with the volume field: deserialization must not trust it.
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    std::string text = serializePlan(chain, plan);
    const std::size_t pos = text.find("volume-bytes:");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, text.find('\n', pos) - pos, "volume-bytes: 1");
    const ExecutionPlan restored = deserializePlan(chain, text);
    EXPECT_DOUBLE_EQ(restored.predictedVolumeBytes,
                     plan.predictedVolumeBytes);
}

TEST(PlanIo, RejectsWrongHeader)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(chain, "not-a-plan\norder: m"), Error);
}

TEST(PlanIo, RejectsMissingFields)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(chain, "chimera-plan v1\norder: "
                                        "b,m,l,k,n\n"),
                 Error);
    EXPECT_THROW(
        deserializePlan(chain,
                        "chimera-plan v1\ntiles: b=1 m=8 n=8 k=8 l=8\n"),
        Error);
}

TEST(PlanIo, RejectsForeignAxes)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(chain,
                                 "chimera-plan v1\norder: x,y\ntiles: "
                                 "x=1 y=1\n"),
                 Error);
}

TEST(PlanIo, RejectsOutOfRangeTiles)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    std::string text = serializePlan(chain, plan);
    const std::size_t pos = text.find("m=");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 4, "m=9999");
    EXPECT_THROW(deserializePlan(chain, text), Error);
}

TEST(PlanIo, RejectsUnknownKeys)
{
    const ir::Chain chain = chainUnderTest();
    std::string text = serializePlan(chain, planUnderTest(chain));
    text += "mystery: 1\n";
    EXPECT_THROW(deserializePlan(chain, text), Error);
}

} // namespace
} // namespace chimera::plan
