/**
 * @file
 * Tests for plan serialization: round trips, validation against the
 * binding chain, v1 compatibility, and rejection of malformed,
 * truncated, duplicated or stale documents — always as chimera::Error,
 * never as a raw std:: exception.
 */

#include <gtest/gtest.h>

#include "ir/builders.hpp"
#include "plan/plan_io.hpp"
#include "support/error.hpp"

namespace chimera::plan {
namespace {

ir::Chain
chainUnderTest()
{
    ir::GemmChainConfig cfg;
    cfg.batch = 4;
    cfg.m = 64;
    cfg.n = 32;
    cfg.k = 16;
    cfg.l = 48;
    cfg.name = "io-test";
    return ir::makeGemmChain(cfg);
}

ExecutionPlan
planUnderTest(const ir::Chain &chain)
{
    PlannerOptions options;
    options.memCapacityBytes = 32.0 * 1024;
    return planChain(chain, options);
}

/** Serialized document with the "tiles:" line's value replaced. */
std::string
documentWithTiles(const ir::Chain &chain, const std::string &tilesValue)
{
    std::string text = serializePlan(chain, planUnderTest(chain));
    const std::size_t pos = text.find("tiles:");
    const std::size_t eol = text.find('\n', pos);
    text.replace(pos, eol - pos, "tiles: " + tilesValue);
    return text;
}

TEST(PlanIo, RoundTripPreservesScheduleExactly)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const std::string text = serializePlan(chain, plan);
    const ExecutionPlan restored = deserializePlan(chain, text);
    EXPECT_EQ(restored.perm, plan.perm);
    EXPECT_EQ(restored.tiles, plan.tiles);
    EXPECT_DOUBLE_EQ(restored.predictedVolumeBytes,
                     plan.predictedVolumeBytes);
    EXPECT_EQ(restored.memUsageBytes, plan.memUsageBytes);
}

TEST(PlanIo, DocumentIsHumanReadable)
{
    const ir::Chain chain = chainUnderTest();
    const std::string text = serializePlan(chain, planUnderTest(chain));
    EXPECT_NE(text.find("chimera-plan v2"), std::string::npos);
    EXPECT_NE(text.find("order:"), std::string::npos);
    EXPECT_NE(text.find("tiles:"), std::string::npos);
    EXPECT_NE(text.find("io-test"), std::string::npos);
}

TEST(PlanIo, ReadsV1Documents)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    // Rebuild the plan as a seed-era v1 document (no fingerprint key,
    // no volume/mem lines — both were always recomputed).
    std::string v1 = "chimera-plan v1\nchain: io-test\norder: " +
                     orderString(chain, plan.perm) + "\ntiles:";
    for (int a = 0; a < chain.numAxes(); ++a) {
        v1 += " " + chain.axes()[static_cast<std::size_t>(a)].name + "=" +
              std::to_string(plan.tiles[static_cast<std::size_t>(a)]);
    }
    v1 += "\n";
    const ExecutionPlan restored = deserializePlan(chain, v1);
    EXPECT_EQ(restored.perm, plan.perm);
    EXPECT_EQ(restored.tiles, plan.tiles);
    EXPECT_DOUBLE_EQ(restored.predictedVolumeBytes,
                     plan.predictedVolumeBytes);
}

TEST(PlanIo, FingerprintRoundTripAndMismatch)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const std::string text = serializePlan(chain, plan, "deadbeef01234567");
    EXPECT_NE(text.find("fingerprint: deadbeef01234567"),
              std::string::npos);
    // Matching expectation parses; a different or absent fingerprint
    // must throw so the cache replans instead of trusting the entry.
    EXPECT_NO_THROW(deserializePlan(chain, text, "deadbeef01234567"));
    EXPECT_THROW(deserializePlan(chain, text, "0000000000000000"), Error);
    const std::string noFp = serializePlan(chain, plan);
    EXPECT_THROW(deserializePlan(chain, noFp, "deadbeef01234567"), Error);
    // Without an expectation, any embedded fingerprint is accepted.
    EXPECT_NO_THROW(deserializePlan(chain, text));
}

TEST(PlanIo, StalePredictionsAreRecomputed)
{
    // Tamper with the volume field: deserialization must not trust it.
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    std::string text = serializePlan(chain, plan);
    const std::size_t pos = text.find("volume-bytes:");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, text.find('\n', pos) - pos, "volume-bytes: 1");
    const ExecutionPlan restored = deserializePlan(chain, text);
    EXPECT_DOUBLE_EQ(restored.predictedVolumeBytes,
                     plan.predictedVolumeBytes);
}

TEST(PlanIo, RejectsWrongHeader)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(chain, "not-a-plan\norder: m"), Error);
    EXPECT_THROW(deserializePlan(chain, "chimera-plan v3\norder: m"),
                 Error);
    EXPECT_THROW(deserializePlan(chain, ""), Error);
}

TEST(PlanIo, RejectsTruncatedDocuments)
{
    const ir::Chain chain = chainUnderTest();
    // Header only, then order without tiles, then a cut-off tile token.
    EXPECT_THROW(deserializePlan(chain, "chimera-plan v2\n"), Error);
    EXPECT_THROW(deserializePlan(chain, "chimera-plan v2\norder: "
                                        "b,m,l,k,n\n"),
                 Error);
    EXPECT_THROW(
        deserializePlan(chain,
                        "chimera-plan v2\ntiles: b=1 m=8 n=8 k=8 l=8\n"),
        Error);
    EXPECT_THROW(deserializePlan(
                     chain, "chimera-plan v2\norder: b,m,l,k,n\ntiles: m="),
                 Error);
}

TEST(PlanIo, RejectsMalformedNumericsAsChimeraError)
{
    const ir::Chain chain = chainUnderTest();
    // Each of these once escaped as std::invalid_argument from stoll, or
    // was silently truncated ("m=64abc" -> 64). All must throw Error.
    EXPECT_THROW(deserializePlan(chain, documentWithTiles(chain, "m=")),
                 Error);
    EXPECT_THROW(deserializePlan(chain, documentWithTiles(chain, "m=x")),
                 Error);
    EXPECT_THROW(
        deserializePlan(chain, documentWithTiles(chain, "m=64abc")),
        Error);
    EXPECT_THROW(deserializePlan(
                     chain, documentWithTiles(
                                chain, "m=99999999999999999999999999")),
                 Error);

    std::string text = serializePlan(chain, planUnderTest(chain));
    std::string bad = text;
    bad.replace(bad.find("volume-bytes:"),
                bad.find('\n', bad.find("volume-bytes:")) -
                    bad.find("volume-bytes:"),
                "volume-bytes: abc");
    EXPECT_THROW(deserializePlan(chain, bad), Error);
    bad = text;
    bad.replace(bad.find("mem-bytes:"),
                bad.find('\n', bad.find("mem-bytes:")) -
                    bad.find("mem-bytes:"),
                "mem-bytes: 64abc");
    EXPECT_THROW(deserializePlan(chain, bad), Error);
}

TEST(PlanIo, MalformedNumericErrorsNameTheLine)
{
    const ir::Chain chain = chainUnderTest();
    try {
        deserializePlan(chain, documentWithTiles(chain, "m=64abc"));
        FAIL() << "expected chimera::Error";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line"), std::string::npos) << what;
        EXPECT_NE(what.find("64abc"), std::string::npos) << what;
    }
}

TEST(PlanIo, RejectsDuplicateTileTokens)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(chain, documentWithTiles(
                                            chain, "b=1 m=8 m=8 n=8 "
                                                   "k=8 l=8")),
                 Error);
}

TEST(PlanIo, RejectsDuplicateKeys)
{
    const ir::Chain chain = chainUnderTest();
    std::string text = serializePlan(chain, planUnderTest(chain));
    text += "mem-bytes: 1\n";
    EXPECT_THROW(deserializePlan(chain, text), Error);
}

TEST(PlanIo, RejectsForeignAxes)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(chain,
                                 "chimera-plan v2\norder: x,y\ntiles: "
                                 "x=1 y=1\n"),
                 Error);
    EXPECT_THROW(
        deserializePlan(chain, documentWithTiles(chain, "q=4")),
        Error);
}

TEST(PlanIo, RejectsOutOfRangeTiles)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    std::string text = serializePlan(chain, plan);
    const std::size_t pos = text.find("m=");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 4, "m=9999");
    EXPECT_THROW(deserializePlan(chain, text), Error);
}

TEST(PlanIo, RejectsUnknownKeys)
{
    const ir::Chain chain = chainUnderTest();
    std::string text = serializePlan(chain, planUnderTest(chain));
    text += "mystery: 1\n";
    EXPECT_THROW(deserializePlan(chain, text), Error);
}

TEST(PlanIo, RejectsKeylessLines)
{
    const ir::Chain chain = chainUnderTest();
    std::string text = serializePlan(chain, planUnderTest(chain));
    text += "no colon here\n";
    EXPECT_THROW(deserializePlan(chain, text), Error);
}

/** Serialized document with the "concurrency:" line's value replaced. */
std::string
documentWithConcurrency(const ir::Chain &chain, const std::string &value)
{
    std::string text = serializePlan(chain, planUnderTest(chain));
    const std::size_t pos = text.find("concurrency:");
    EXPECT_NE(pos, std::string::npos);
    const std::size_t eol = text.find('\n', pos);
    if (value.empty()) {
        text.erase(pos, eol - pos + 1);
    } else {
        text.replace(pos, eol - pos, "concurrency: " + value);
    }
    return text;
}

TEST(PlanIo, ConcurrencyTableRoundTrips)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const std::string text = serializePlan(chain, plan);
    EXPECT_NE(text.find("concurrency:"), std::string::npos);
    const ExecutionPlan restored = deserializePlan(chain, text);
    EXPECT_EQ(restored.concurrency, plan.concurrency);
}

TEST(PlanIo, MissingConcurrencyFallsBackToFreshAnalysis)
{
    // v2 docs without the line (and every v1 doc) load with the table
    // re-derived from the chain, so older cache entries stay usable.
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const ExecutionPlan restored =
        deserializePlan(chain, documentWithConcurrency(chain, ""));
    EXPECT_EQ(restored.concurrency, plan.concurrency);
}

TEST(PlanIo, RejectsConcurrencyWithUnknownAxis)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(
                     chain, documentWithConcurrency(
                                chain,
                                "b=parallel m=parallel n=parallel "
                                "k=reduction l=reduction q=parallel")),
                 Error);
}

TEST(PlanIo, RejectsConcurrencyWithUnknownKind)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(
                     chain, documentWithConcurrency(
                                chain,
                                "b=parallel m=concurrent n=parallel "
                                "k=reduction l=reduction")),
                 Error);
}

TEST(PlanIo, RejectsDuplicateConcurrencyAxes)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(deserializePlan(
                     chain, documentWithConcurrency(
                                chain,
                                "b=parallel m=parallel m=parallel "
                                "k=reduction l=reduction")),
                 Error);
}

TEST(PlanIo, RejectsIncompleteConcurrency)
{
    const ir::Chain chain = chainUnderTest();
    EXPECT_THROW(
        deserializePlan(chain, documentWithConcurrency(
                                   chain, "b=parallel m=parallel")),
        Error);
}

TEST(PlanIo, RejectsMalformedConcurrencyTokens)
{
    const ir::Chain chain = chainUnderTest();
    for (const char *value : {"=parallel", "m=", "parallel"}) {
        EXPECT_THROW(deserializePlan(
                         chain, documentWithConcurrency(chain, value)),
                     Error)
            << value;
    }
}

TEST(PlanIo, SerialPlanDocumentOmitsChunkingLines)
{
    // Backward compatibility: a serial plan's document must stay
    // byte-identical to the pre-chunking format.
    const ir::Chain chain = chainUnderTest();
    const std::string text = serializePlan(chain, planUnderTest(chain));
    EXPECT_EQ(text.find("threads:"), std::string::npos);
    EXPECT_EQ(text.find("grain:"), std::string::npos);
}

TEST(PlanIo, RoundTripPreservesChunking)
{
    const ir::Chain chain = chainUnderTest();
    ExecutionPlan plan = planUnderTest(chain);
    plan.plannedThreads = 8;
    plan.parallelGrain.assign(
        static_cast<std::size_t>(chain.numAxes()), 1);
    plan.parallelGrain[static_cast<std::size_t>(
        ir::axisIdByName(chain, "m"))] = 2;

    const std::string text = serializePlan(chain, plan);
    EXPECT_NE(text.find("threads: 8"), std::string::npos);
    EXPECT_NE(text.find("grain: m=2"), std::string::npos);

    const ExecutionPlan restored = deserializePlan(chain, text);
    EXPECT_EQ(restored.plannedThreads, 8);
    EXPECT_EQ(restored.parallelGrain, plan.parallelGrain);
    EXPECT_EQ(restored.perm, plan.perm);
    EXPECT_EQ(restored.tiles, plan.tiles);
}

TEST(PlanIo, RejectsMalformedChunking)
{
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const std::string base = serializePlan(chain, plan);

    // Grain without a thread count is meaningless.
    EXPECT_THROW(deserializePlan(chain, base + "grain: m=2\n"), Error);
    // Non-positive grain.
    EXPECT_THROW(
        deserializePlan(chain, base + "threads: 4\ngrain: m=0\n"),
        Error);
    // Unknown axis.
    EXPECT_THROW(
        deserializePlan(chain, base + "threads: 4\ngrain: zz=2\n"),
        Error);
    // Duplicate axis.
    EXPECT_THROW(
        deserializePlan(chain, base + "threads: 4\ngrain: m=2 m=3\n"),
        Error);
    // Non-positive thread count.
    EXPECT_THROW(deserializePlan(chain, base + "threads: 0\n"), Error);
}

TEST(PlanIo, HonorsDeclaredConcurrencyOverDerived)
{
    // A deliberately mis-declared (but well-formed) table must survive
    // the load: the race checker exists to observe what a tampered
    // document actually does, so the loader binds it rather than
    // silently repairing it. chimera-check flags it via DP02.
    const ir::Chain chain = chainUnderTest();
    const ExecutionPlan plan = planUnderTest(chain);
    const ExecutionPlan restored = deserializePlan(
        chain, documentWithConcurrency(chain,
                                       "b=parallel m=parallel n=parallel "
                                       "k=reduction l=parallel"));
    EXPECT_NE(restored.concurrency, plan.concurrency);
    EXPECT_EQ(restored.concurrency[static_cast<std::size_t>(
                  ir::axisIdByName(chain, "l"))],
              analysis::AxisConcurrency::Parallel);
}

} // namespace
} // namespace chimera::plan
