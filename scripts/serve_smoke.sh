#!/usr/bin/env bash
# Serving smoke test: boots chimera-serve on a private socket, drives it
# with serve_loadgen, and gates on the things a broken daemon gets
# wrong — zero completed requests, protocol errors, or a dirty
# shutdown. The loadgen writes BENCH_serving.json (p50/p99 latency,
# achieved throughput, batching stats) for the CI artifact upload.
#
# Flags: --quick forwards the loadgen's reduced sweep (64 requests at
# 400 rps) for CI; the default is the full 512-request run.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVER=build/tools/chimera-serve
LOADGEN=build/bench/serve_loadgen
for bin in "$SERVER" "$LOADGEN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (run: cmake -B build && cmake --build build)" >&2
        exit 1
    fi
done

quick=()
for arg in "$@"; do
    case "$arg" in
        --quick) quick=(--quick) ;;
        *) echo "error: unknown flag $arg (supported: --quick)" >&2; exit 2 ;;
    esac
done

socket="/tmp/chimera-serve-smoke-$$.sock"
out="BENCH_serving.json"
trace="chimera-serve-trace.json"
metrics="chimera-serve-metrics.json"
rm -f "$socket" "$out" "$trace" "$metrics"

# The deterministic replay first: batched == individual, bitwise.
"$SERVER" --check

"$SERVER" --socket "$socket" --no-cache \
          --trace-out "$trace" --metrics-dump "$metrics" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true; rm -f "$socket"' EXIT

# The loadgen retries the connect internally; it exits non-zero on any
# incomplete request, protocol error, or error response.
"$LOADGEN" --socket "$socket" --out "$out" "${quick[@]}"

kill -TERM "$server_pid"
wait "$server_pid"
trap 'rm -f "$socket"' EXIT

if [ ! -s "$out" ]; then
    echo "error: loadgen did not write $out" >&2
    exit 1
fi
for artifact in "$trace" "$metrics"; do
    if [ ! -s "$artifact" ]; then
        echo "error: daemon did not write $artifact" >&2
        exit 1
    fi
done

# The trace must carry at least one span from each instrumented layer
# and a request id that links decode -> execute -> write.
python3 scripts/validate_trace.py "$trace" --require-request-linkage

python3 - "$out" "$metrics" <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
failures = []
if doc["achieved_throughput_rps"] <= 0:
    failures.append("throughput is zero")
if doc["protocol_errors"] != 0:
    failures.append(f"protocol errors: {doc['protocol_errors']}")
if doc["response_errors"] != 0:
    failures.append(f"response errors: {doc['response_errors']}")
if doc["completed"] != doc["requests"]:
    failures.append(f"completed {doc['completed']}/{doc['requests']}")

# Schema gate: a loadgen run against a stats-version-2 daemon must
# surface the server-side histogram block. A missing key here means
# the exposition or the loadgen parser regressed — fail loudly rather
# than silently dropping the server percentiles from the artifact.
if doc.get("server_stats_version", 0) < 2:
    failures.append(
        f"server_stats_version {doc.get('server_stats_version')} < 2")
server_lat = doc.get("server_latency_seconds")
if server_lat is None:
    failures.append("missing server_latency_seconds block")
else:
    for key in ("count", "p50", "p90", "p99", "p999", "mean", "max"):
        if key not in server_lat:
            failures.append(f"server_latency_seconds lacks '{key}'")
    if not failures:
        if server_lat["count"] != doc["completed"]:
            failures.append(
                f"server latency count {server_lat['count']} != "
                f"completed {doc['completed']}")
        if server_lat["p50"] > server_lat["p99"]:
            failures.append("server p50 > p99")
        # Client-observed latency includes the server span plus socket
        # and queueing time, so server p50 cannot exceed client max.
        if server_lat["p50"] > doc["latency_seconds"]["max"]:
            failures.append("server p50 exceeds client max latency")

with open(sys.argv[2]) as fh:
    metrics = json.load(fh)
lat = metrics.get("chimera.serve.latency_seconds")
if lat is None:
    failures.append("metrics dump lacks chimera.serve.latency_seconds")
elif lat["count"] != doc["completed"]:
    failures.append(f"metrics latency count {lat['count']} != "
                    f"completed {doc['completed']}")

for failure in failures:
    print(f"serve smoke: {failure}", file=sys.stderr)
if failures:
    sys.exit(1)
p50 = doc["latency_seconds"]["p50"] * 1e3
p99 = doc["latency_seconds"]["p99"] * 1e3
sp99 = server_lat["p99"] * 1e3
print(f"serve smoke: ok ({doc['completed']} requests, "
      f"{doc['achieved_throughput_rps']:.1f} rps, "
      f"p50 {p50:.3f} ms, p99 {p99:.3f} ms, server p99 {sp99:.3f} ms)")
EOF
