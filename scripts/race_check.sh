#!/usr/bin/env bash
# Safety sweep: dynamic and static.
#
# Dynamic: runs chimera-check --race (shadow-memory write tracking, see
# src/analysis/race_checker.hpp) over example-sized chain shapes — which
# must come back clean — and over the seeded-race fixtures, which
# mis-declare a reduction axis as parallel and must be flagged RC01.
#
# Static: runs chimera-check --static (symbolic safety analyzer, see
# src/analysis/static_safety.hpp) over the same clean shapes — every
# planner schedule must certify — and over the seeded SB fixtures, each
# of which must be refuted with its own rule id.
#
# Search: runs chimera-check --search (order-search replay, see
# src/verify/search_verifier.hpp) over the clean shapes — pruned search
# must replay against exhaustive enumeration without OE findings — and
# over the tampered-search fixture, which must be refused as PL15.
#
# Exit-code contract under test: rule violations exit 1, usage/IO
# failures exit 2, clean runs exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=build/tools/chimera-check
if [ ! -x "$CHECK" ]; then
    echo "error: $CHECK not built (run: cmake -B build && cmake --build build)" >&2
    exit 1
fi

# Asserts "$@" exits with status exactly $2 and prints a [$1] finding.
expect_rule() {
    local rule="$1" want_status="$2"
    shift 2
    local out status=0
    out="$("$@" 2>&1)" || status=$?
    if [ "$status" != "$want_status" ]; then
        echo "error: expected '$*' to exit $want_status, got $status" >&2
        echo "$out" >&2
        exit 1
    fi
    if ! grep -q "\[$rule\]" <<<"$out"; then
        echo "error: '$*' exited $status without a $rule finding:" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "flagged as expected ($rule): $*"
}

echo "== planner schedules must race-check clean =="
"$CHECK" gemm 1 64 64 64 64 --race
"$CHECK" gemm 1 64 64 64 64 --softmax --race
"$CHECK" gemm 4 128 64 64 128 --softmax --race # attention-shaped
"$CHECK" conv 1 16 16 16 16 16 3 3 1 1 --race
"$CHECK" conv 1 8 28 28 16 32 3 1 2 1 --race # squeezenet-stem-shaped

echo "== seeded-race fixtures must be flagged =="
expect_rule RC01 1 "$CHECK" gemm 1 64 64 64 64 --race \
    --plan tests/fixtures/race_parallel_l.plan
expect_rule RC01 1 "$CHECK" conv 1 16 16 16 16 16 3 3 1 1 --race \
    --plan tests/fixtures/race_parallel_oc1.plan

echo "== planner schedules must certify statically =="
static_clean() {
    local out
    out="$("$@" 2>&1)"
    if ! grep -q "static-safety: certified" <<<"$out"; then
        echo "error: '$*' did not certify:" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "certified: $*"
}
static_clean "$CHECK" gemm 1 64 64 64 64 --static
static_clean "$CHECK" gemm 4 128 64 64 128 --softmax --static
static_clean "$CHECK" conv 1 16 16 16 16 16 3 3 1 1 --static
static_clean "$CHECK" conv 1 8 28 28 16 32 3 1 2 1 --static

echo "== seeded SB fixtures must be refuted with their rule =="
# sb01: tile m=64 cannot cover every shape of a domain widened to
# m in [1, 128] — the first block's window escapes small shapes.
expect_rule SB01 1 "$CHECK" gemm 1 64 64 64 64 --static --domain m=128 \
    --plan tests/fixtures/sb01_window_escape.plan
# sb02: full-extent tiles against a deliberately tiny budget.
expect_rule SB02 1 "$CHECK" gemm 1 64 64 64 64 --capacity 32768 --static \
    --plan tests/fixtures/sb02_overbudget.plan
# sb03: m*n element offsets of the output exceed int64 at these extents.
expect_rule SB03 1 "$CHECK" gemm 1 4300000000 4300000000 64 64 \
    --no-recount --static --plan tests/fixtures/sb03_overflow.plan
# sb04: l is a reduction axis of the second gemm; marking it parallel
# has no shape-generic disjointness proof.
expect_rule SB04 1 "$CHECK" gemm 1 64 64 64 64 --static \
    --plan tests/fixtures/sb04_race_parallel_l.plan

echo "== pruned order search must replay exactly =="
search_clean() {
    local out
    out="$("$@" 2>&1)"
    if ! grep -q "search:" <<<"$out" || grep -q "\[OE0" <<<"$out"; then
        echo "error: '$*' search replay not clean:" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "search replay clean: $*"
}
search_clean "$CHECK" gemm 1 64 64 64 64 --search
search_clean "$CHECK" gemm 1 64 64 64 64 --search --prune symmetry
search_clean "$CHECK" gemm 4 128 64 64 128 --softmax --search
search_clean "$CHECK" gemm3 2 64 32 32 48 16 --search
search_clean "$CHECK" gemm3 1 64 64 64 64 32 --softmax --search # attention
search_clean "$CHECK" gemm 1 64 64 64 64 --search --prune beam --beam-width 4
search_clean "$CHECK" conv 1 16 16 16 16 16 3 3 1 1 --search

# pl15: self-consistent counts under a forged digest — the search line
# was tampered with (or replayed from another plan) and must be refused.
expect_rule PL15 1 "$CHECK" gemm 1 64 64 64 64 \
    --plan tests/fixtures/pl15_tampered_search.plan

echo "== usage/IO failures must exit 2, not 1 =="
probe_status() {
    local want="$1"
    shift
    local status=0
    "$@" >/dev/null 2>&1 || status=$?
    if [ "$status" != "$want" ]; then
        echo "error: expected '$*' to exit $want, got $status" >&2
        exit 1
    fi
    echo "exit $want as expected: $*"
}
probe_status 2 "$CHECK" gemm 1 64 64 64 64 \
    --plan tests/fixtures/does_not_exist.plan
probe_status 2 "$CHECK" gemm 1 64 64 64 64 --static --domain bogus=4096
probe_status 2 "$CHECK"

echo "== chimera-plan tracing obeys the same exit-code contract =="
PLAN=build/tools/chimera-plan
if [ ! -x "$PLAN" ]; then
    echo "error: $PLAN not built" >&2
    exit 1
fi
trace_tmp="$(mktemp -t chimera-plan-trace-XXXXXX.json)"
probe_status 0 "$PLAN" gemm 1 64 64 64 64 --no-cache \
    --trace-out "$trace_tmp"
if [ ! -s "$trace_tmp" ]; then
    echo "error: --trace-out wrote no trace to $trace_tmp" >&2
    exit 1
fi
python3 scripts/validate_trace.py "$trace_tmp" --require-layers=plan
rm -f "$trace_tmp"
# An unwritable trace path is a usage error: exit 2, never a crash.
probe_status 2 "$PLAN" gemm 1 64 64 64 64 --no-cache \
    --trace-out /nonexistent-dir/trace.json

echo "safety sweep: OK"
