#!/usr/bin/env bash
# Dynamic race sweep: runs chimera-check --race (shadow-memory write
# tracking, see src/analysis/race_checker.hpp) over example-sized chain
# shapes — which must come back clean — and over the seeded-race
# fixtures, which mis-declare a reduction axis as parallel and must be
# flagged with RC01.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=build/tools/chimera-check
if [ ! -x "$CHECK" ]; then
    echo "error: $CHECK not built (run: cmake -B build && cmake --build build)" >&2
    exit 1
fi

echo "== planner schedules must race-check clean =="
"$CHECK" gemm 1 64 64 64 64 --race
"$CHECK" gemm 1 64 64 64 64 --softmax --race
"$CHECK" gemm 4 128 64 64 128 --softmax --race # attention-shaped
"$CHECK" conv 1 16 16 16 16 16 3 3 1 1 --race
"$CHECK" conv 1 8 28 28 16 32 3 1 2 1 --race # squeezenet-stem-shaped

echo "== seeded-race fixtures must be flagged =="
expect_race() {
    local out
    if out="$("$@" 2>&1)"; then
        echo "error: expected '$*' to exit non-zero" >&2
        exit 1
    fi
    if ! grep -q "\[RC01\]" <<<"$out"; then
        echo "error: '$*' failed without an RC01 finding:" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "flagged as expected: $*"
}
expect_race "$CHECK" gemm 1 64 64 64 64 --race \
    --plan tests/fixtures/race_parallel_l.plan
expect_race "$CHECK" conv 1 16 16 16 16 16 3 3 1 1 --race \
    --plan tests/fixtures/race_parallel_oc1.plan

echo "race check sweep: OK"
