#!/usr/bin/env bash
# Reproduces the full evaluation: configure, build, run the test suite,
# then run every bench binary (one per paper table/figure) capturing the
# output next to the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "##### $b" | tee -a bench_output.txt
        "$b" 2>&1 | tee -a bench_output.txt
    fi
done

echo "Done: see test_output.txt and bench_output.txt"
