#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by the chimera obs layer.

Usage:
    validate_trace.py <trace.json> [--require-layers plan,exec,serve]
                      [--require-request-linkage]

Checks, in order:
  1. The file is valid JSON with a `traceEvents` list whose entries are
     well-formed trace events (name/ph/ts; complete events carry dur).
  2. Every required layer (by event category) contributed at least one
     span — a trace from a served request with a silent layer means
     instrumentation rotted.
  3. With --require-request-linkage: at least one request id flows
     decode -> execute -> write, i.e. a `serve.decode` span's `req` arg
     reappears in a `serve.execute` span's comma-joined `reqs` list and
     in a `serve.write` span's `req` arg. This is the property that
     makes the trace navigable per request.

Exit codes: 0 valid, 1 validation failure, 2 usage/IO error.
"""

import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str]) -> None:
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    require_layers = ["plan", "exec", "serve"]
    require_linkage = False
    for flag in flags:
        if flag.startswith("--require-layers="):
            require_layers = [
                l for l in flag.split("=", 1)[1].split(",") if l
            ]
        elif flag == "--require-request-linkage":
            require_linkage = True
        else:
            print(f"validate_trace: unknown flag {flag}", file=sys.stderr)
            sys.exit(2)

    try:
        with open(args[0]) as fh:
            doc = json.load(fh)
    except OSError as e:
        print(f"validate_trace: cannot read {args[0]}: {e}",
              file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"{args[0]} is not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if not events:
        fail("traceEvents is empty")

    spans = []  # complete ('X') events
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph"):
            if key not in event:
                fail(f"traceEvents[{i}] lacks '{key}'")
        if event["ph"] not in ("X", "i", "M"):
            fail(f"traceEvents[{i}] has unknown phase {event['ph']!r}")
        if event["ph"] == "M":
            continue
        if "ts" not in event:
            fail(f"traceEvents[{i}] lacks 'ts'")
        if event["ph"] == "X":
            if "dur" not in event:
                fail(f"traceEvents[{i}] is 'X' without 'dur'")
            if event["dur"] < 0:
                fail(f"traceEvents[{i}] has negative dur")
            spans.append(event)

    by_layer = {}
    for event in spans:
        by_layer.setdefault(event.get("cat", ""), []).append(event)
    for layer in require_layers:
        if not by_layer.get(layer):
            fail(f"no spans from layer '{layer}' "
                 f"(layers present: {sorted(by_layer) or 'none'})")

    if require_linkage:
        def arg(event, key):
            return event.get("args", {}).get(key)

        decoded = {str(arg(e, "req")) for e in spans
                   if e["name"] == "serve.decode"
                   and arg(e, "req") is not None}
        executed = set()
        for e in spans:
            if e["name"] == "serve.execute" and arg(e, "reqs"):
                executed.update(str(arg(e, "reqs")).split(","))
        written = {str(arg(e, "req")) for e in spans
                   if e["name"] == "serve.write"
                   and arg(e, "req") is not None}
        linked = decoded & executed & written
        if not linked:
            fail("no request id links decode -> execute -> write "
                 f"(decoded {len(decoded)}, executed {len(executed)}, "
                 f"written {len(written)})")
        execute_spans = [e for e in spans if e["name"] == "serve.execute"]
        missing_dv = [e for e in execute_spans
                      if arg(e, "predicted_dv_bytes") is None]
        if execute_spans and len(missing_dv) == len(execute_spans):
            fail("no serve.execute span carries predicted_dv_bytes")

    dropped = doc.get("chimeraDroppedEvents", 0)
    suffix = f", {dropped} dropped" if dropped else ""
    print(f"validate_trace: ok ({len(events)} events, {len(spans)} "
          f"spans, layers {sorted(by_layer)}{suffix})")


if __name__ == "__main__":
    main(sys.argv)
