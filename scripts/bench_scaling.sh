#!/usr/bin/env bash
# Thread-scaling sweep: runs the GEMM-chain bench (fig5) at 1/2/4/8
# worker threads and prints the per-count geomean lines as a speedup
# table. Output is also captured to scaling_output.txt, and the table —
# plus the bench's dependence-analysis overhead line — is emitted as
# machine-readable BENCH_scaling.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=build/bench/fig5_cpu_gemm_chains
if [ ! -x "$BENCH" ]; then
    echo "error: $BENCH not built (run: cmake -B build && cmake --build build)" >&2
    exit 1
fi

: > scaling_output.txt
declare -a counts=(1 2 4 8)
declare -a geomeans=()
overhead_pct="null"
for t in "${counts[@]}"; do
    echo "##### --threads $t" | tee -a scaling_output.txt
    out="$("$BENCH" --threads "$t")"
    echo "$out" >> scaling_output.txt
    # Average the per-family serial->NT scaling geomeans for this count.
    gm="$(echo "$out" |
        sed -n 's/.*scaling: \([0-9.]*\)x.*/\1/p' |
        awk '{ s += $1; n += 1 } END { if (n) printf "%.2f", s / n }')"
    geomeans+=("${gm:-n/a}")
    echo "  geomean serial->${t}T scaling: ${gm:-n/a}x"
    # The analysis-overhead split is thread-independent; keep the last.
    pct="$(echo "$out" |
        sed -n 's/.*analysis overhead.*(\([0-9.]*\)% of planning).*/\1/p' |
        tail -1)"
    [ -n "$pct" ] && overhead_pct="$pct"
done

echo
echo "Thread scaling (fused GEMM chains, geomean over Table IV, vs 1T):"
printf '%10s %10s\n' "threads" "speedup"
for i in "${!counts[@]}"; do
    printf '%10s %10s\n' "${counts[$i]}" "${geomeans[$i]}x"
done
echo "(full bench tables captured in scaling_output.txt)"

{
    echo '{'
    echo '  "bench": "fig5_cpu_gemm_chains",'
    echo '  "metric": "geomean serial->NT speedup over Table IV",'
    echo '  "scaling": ['
    for i in "${!counts[@]}"; do
        sep=','
        [ "$i" -eq $((${#counts[@]} - 1)) ] && sep=''
        gm="${geomeans[$i]}"
        [ "$gm" = "n/a" ] && gm="null"
        echo "    {\"threads\": ${counts[$i]}, \"speedup\": ${gm}}${sep}"
    done
    echo '  ],'
    echo "  \"analysis_overhead_pct_of_planning\": ${overhead_pct}"
    echo '}'
} > BENCH_scaling.json
echo "wrote BENCH_scaling.json"
