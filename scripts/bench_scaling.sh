#!/usr/bin/env bash
# Thread-scaling sweep: runs the GEMM-chain bench (fig5) at 1/2/4/8
# worker threads and prints the per-count geomean lines as a speedup
# table. Output is also captured to scaling_output.txt, and the table —
# plus the bench's dependence-analysis and static-safety overhead
# lines — is emitted as machine-readable BENCH_scaling.json.
#
# Modes (BENCH_SCALING_MODE=wall|sim|auto, default auto):
#   wall  times the parallel fused run with real worker threads;
#   sim   times a serial run under the simulated critical path (each
#         chunk charged to its static owner; see DESIGN.md
#         "Thread-aware planning") so the plan's scaling is measurable
#         on hosts with fewer cores than the sweep's thread counts;
#   auto  picks sim when nproc < 4, wall otherwise.
#
# Flags: --quick restricts the bench to the first four Table IV shapes
# (reduced CI sweep).
#
# Gate: exits non-zero when the final serial->NT geomean is below 1.0x —
# a thread-aware plan must never be slower than the serial one.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=build/bench/fig5_cpu_gemm_chains
if [ ! -x "$BENCH" ]; then
    echo "error: $BENCH not built (run: cmake -B build && cmake --build build)" >&2
    exit 1
fi

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "error: unknown flag $arg (supported: --quick)" >&2; exit 2 ;;
    esac
done

mode="${BENCH_SCALING_MODE:-auto}"
if [ "$mode" = "auto" ]; then
    cores="$(nproc 2>/dev/null || echo 1)"
    if [ "$cores" -lt 4 ]; then mode=sim; else mode=wall; fi
fi
case "$mode" in
    sim) mode_json="simulated-critical-path"; bench_flags=(--sim) ;;
    wall) mode_json="wall-clock"; bench_flags=() ;;
    *) echo "error: BENCH_SCALING_MODE must be wall, sim, or auto" >&2; exit 2 ;;
esac
[ "$quick" -eq 1 ] && bench_flags+=(--quick)
echo "mode: $mode_json (quick=$quick)"

: > scaling_output.txt
declare -a counts=(1 2 4 8)
declare -a geomeans=()
overhead_pct="null"
safety_pct="null"
for t in "${counts[@]}"; do
    echo "##### --threads $t" | tee -a scaling_output.txt
    out="$("$BENCH" --threads "$t" ${bench_flags[@]+"${bench_flags[@]}"})"
    echo "$out" >> scaling_output.txt
    # Average the per-family serial->NT scaling geomeans for this count.
    gm="$(echo "$out" |
        sed -n 's/.*scaling: \([0-9.]*\)x.*/\1/p' |
        awk '{ s += $1; n += 1 } END { if (n) printf "%.2f", s / n }')"
    geomeans+=("${gm:-n/a}")
    echo "  geomean serial->${t}T scaling: ${gm:-n/a}x"
    # The analysis-overhead splits are thread-independent; keep the
    # last observation of each line.
    pct="$(echo "$out" |
        sed -n 's/.*dependence analysis.*(\([0-9.]*\)% of planning).*/\1/p' |
        tail -1)"
    [ -n "$pct" ] && overhead_pct="$pct"
    pct="$(echo "$out" |
        sed -n 's/.*static safety.*(\([0-9.]*\)% of planning).*/\1/p' |
        tail -1)"
    [ -n "$pct" ] && safety_pct="$pct"
done

echo
echo "Thread scaling (fused GEMM chains, geomean over Table IV, vs 1T):"
printf '%10s %10s\n' "threads" "speedup"
for i in "${!counts[@]}"; do
    printf '%10s %10s\n' "${counts[$i]}" "${geomeans[$i]}x"
done
echo "(full bench tables captured in scaling_output.txt)"

{
    echo '{'
    echo '  "bench": "fig5_cpu_gemm_chains",'
    echo '  "metric": "geomean serial->NT speedup over Table IV",'
    echo "  \"mode\": \"${mode_json}\","
    echo "  \"quick\": $([ "$quick" -eq 1 ] && echo true || echo false),"
    echo '  "scaling": ['
    for i in "${!counts[@]}"; do
        sep=','
        [ "$i" -eq $((${#counts[@]} - 1)) ] && sep=''
        gm="${geomeans[$i]}"
        [ "$gm" = "n/a" ] && gm="null"
        echo "    {\"threads\": ${counts[$i]}, \"speedup\": ${gm}}${sep}"
    done
    echo '  ],'
    echo "  \"analysis_overhead_pct_of_planning\": ${overhead_pct},"
    echo "  \"static_safety_overhead_pct_of_planning\": ${safety_pct}"
    echo '}'
} > BENCH_scaling.json
echo "wrote BENCH_scaling.json"

final="${geomeans[$((${#counts[@]} - 1))]}"
if [ "$final" = "n/a" ]; then
    echo "error: could not parse a scaling geomean from the bench output" >&2
    exit 1
fi
if ! awk -v g="$final" 'BEGIN { exit !(g >= 1.0) }'; then
    echo "error: serial->${counts[-1]}T geomean ${final}x is below the 1.0x gate" >&2
    exit 1
fi
