#pragma once

/**
 * @file
 * The textual DSL front-end of Figure 3: an operator chain is written
 * as einsum-style contraction statements, one per compute-intensive
 * operator, with shared index names unifying axes across operators
 * (which is what shrinks the reorder space from (P+Q)! to I!, §IV-B).
 *
 *     C[b,m,l] = A[b,m,k] * B[b,k,l];
 *     E[b,m,n] = C[b,m,l] * D[b,l,n];
 *
 * Rules:
 *  - every statement is `OUT[i,j,..] = X[..] * Y[..]`;
 *  - index names are the chain's axes; extents come from the caller;
 *  - a tensor produced by one statement and consumed by a later one is
 *    an on-chip intermediate; produced-only tensors are outputs and
 *    consumed-only tensors are inputs;
 *  - statements must be in topological (producer-before-consumer)
 *    order, and the final statement produces the chain output.
 *
 * The parser covers projection-style contractions (each index plain,
 * no affine expressions), i.e. GEMM chains of any length; convolution
 * chains with halo indexing use the structured builders.
 */

#include <map>
#include <string>

#include "ir/chain.hpp"

namespace chimera::ir {

/**
 * Parses @p source into a Chain.
 *
 * @param source  One or more `;`-separated contraction statements.
 * @param extents Extent per index name; every used index must appear.
 * @param name    Chain display name.
 * @throws Error on syntax errors, unknown indices, inconsistent uses,
 *         or non-topological statement order.
 */
Chain parseEinsumChain(const std::string &source,
                       const std::map<std::string, std::int64_t> &extents,
                       const std::string &name = "dsl_chain");

} // namespace chimera::ir
