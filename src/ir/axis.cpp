#include "ir/axis.hpp"

#include "support/error.hpp"

namespace chimera::ir {

std::int64_t
AccessDim::footprint(const std::vector<std::int64_t> &tiles) const
{
    std::int64_t fp = 1;
    for (const AccessTerm &term : terms) {
        CHIMERA_ASSERT(term.axis >= 0 &&
                           term.axis < static_cast<int>(tiles.size()),
                       "access term references an unknown axis");
        fp += term.coeff * (tiles[static_cast<std::size_t>(term.axis)] - 1);
    }
    return fp;
}

bool
AccessDim::usesAxis(AxisId axis) const
{
    for (const AccessTerm &term : terms) {
        if (term.axis == axis) {
            return true;
        }
    }
    return false;
}

} // namespace chimera::ir
