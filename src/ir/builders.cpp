#include "ir/builders.hpp"

#include "support/error.hpp"
#include "tensor/reference.hpp"

namespace chimera::ir {

namespace {

/** Access dimension with a single unit-coefficient axis term. */
AccessDim
axisDim(AxisId axis)
{
    return AccessDim{{AccessTerm{axis, 1}}};
}

/** Access dimension with a constant (axis-free) extent of 1 per tile. */
AccessDim
constDim()
{
    return AccessDim{};
}

} // namespace

std::int64_t
ConvChainConfig::oh1() const
{
    return ref::convOutDim(h, k1, stride1, effectivePad1());
}

std::int64_t
ConvChainConfig::ow1() const
{
    return ref::convOutDim(w, k1, stride1, effectivePad1());
}

std::int64_t
ConvChainConfig::oh2() const
{
    return ref::convOutDim(oh1(), k2, stride2, effectivePad2());
}

std::int64_t
ConvChainConfig::ow2() const
{
    return ref::convOutDim(ow1(), k2, stride2, effectivePad2());
}

Chain
makeGemmChain(const GemmChainConfig &config)
{
    CHIMERA_CHECK(config.batch >= 1 && config.m >= 1 && config.n >= 1 &&
                      config.k >= 1 && config.l >= 1,
                  "GEMM chain extents must be positive");
    CHIMERA_CHECK(!config.causalMask ||
                      (config.epilogue == Epilogue::Softmax &&
                       config.m == config.l),
                  "causal masking requires softmax and square scores");
    Chain chain(config.name);

    const bool hasBatch = config.batch > 1;
    const AxisId b = hasBatch ? chain.addAxis("b", config.batch) : -1;
    const AxisId m = chain.addAxis("m", config.m);
    const AxisId n = chain.addAxis("n", config.n);
    const AxisId k = chain.addAxis("k", config.k);
    const AxisId l = chain.addAxis("l", config.l);

    auto withBatch = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(b));
        }
        return dims;
    };

    const int tA = chain.addTensor(TensorDecl{
        "A", TensorKind::Input, withBatch({axisDim(m), axisDim(k)}), 4});
    const int tB = chain.addTensor(TensorDecl{
        "B", TensorKind::Input, withBatch({axisDim(k), axisDim(l)}), 4});
    const int tC = chain.addTensor(
        TensorDecl{"C", TensorKind::Intermediate,
                   withBatch({axisDim(m), axisDim(l)}), 4});
    const int tD = chain.addTensor(TensorDecl{
        "D", TensorKind::Input, withBatch({axisDim(l), axisDim(n)}), 4});
    const int tE = chain.addTensor(TensorDecl{
        "E", TensorKind::Output, withBatch({axisDim(m), axisDim(n)}), 4});

    auto withBatchLoop = [&](std::vector<AxisId> loops) {
        if (hasBatch) {
            loops.insert(loops.begin(), b);
        }
        return loops;
    };

    auto withBatchDims = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(b));
        }
        return dims;
    };
    chain.addOp(OpDecl{"gemm1", OpKind::Gemm, withBatchLoop({m, k, l}),
                       {tA, tB, tC}, tC,
                       withBatchDims({axisDim(m), axisDim(k), axisDim(l)})});
    chain.addOp(OpDecl{"gemm2", OpKind::Gemm, withBatchLoop({m, l, n}),
                       {tC, tD, tE}, tE,
                       withBatchDims({axisDim(m), axisDim(l), axisDim(n)})});
    chain.setIntermediateEpilogue(config.epilogue);
    chain.validate();
    return chain;
}

Chain
makeConvChain(const ConvChainConfig &config)
{
    CHIMERA_CHECK(config.batch >= 1 && config.ic >= 1 && config.h >= 1 &&
                      config.w >= 1 && config.oc1 >= 1 && config.oc2 >= 1,
                  "conv chain extents must be positive");
    CHIMERA_CHECK(config.k1 >= 1 && config.k2 >= 1 && config.stride1 >= 1 &&
                      config.stride2 >= 1,
                  "conv chain kernel/stride must be positive");
    CHIMERA_CHECK(config.oh2() >= 1 && config.ow2() >= 1,
                  "conv chain output collapses to zero size");
    Chain chain(config.name);

    const bool hasBatch = config.batch > 1;
    const AxisId bAx = hasBatch ? chain.addAxis("b", config.batch) : -1;
    const AxisId oc2Ax = chain.addAxis("oc2", config.oc2);
    const AxisId ohAx = chain.addAxis("oh", config.oh2());
    const AxisId owAx = chain.addAxis("ow", config.ow2());
    const AxisId oc1Ax = chain.addAxis("oc1", config.oc1);
    const AxisId icAx = chain.addAxis("ic", config.ic);
    const AxisId kh2Ax =
        config.k2 > 1 ? chain.addAxis("kh2", config.k2, false) : -1;
    const AxisId kw2Ax =
        config.k2 > 1 ? chain.addAxis("kw2", config.k2, false) : -1;
    const AxisId kh1Ax =
        config.k1 > 1 ? chain.addAxis("kh1", config.k1, false) : -1;
    const AxisId kw1Ax =
        config.k1 > 1 ? chain.addAxis("kw1", config.k1, false) : -1;

    // Input spatial index: h = (oh*st2 + kh2)*st1 + kh1 (padding shifts
    // only the origin, not the footprint).
    auto inputSpatialDim = [&](AxisId outAx, AxisId kInnerAx,
                               AxisId kOuterAx) {
        AccessDim dim;
        dim.terms.push_back(AccessTerm{
            outAx,
            static_cast<std::int64_t>(config.stride1) * config.stride2});
        if (kOuterAx >= 0) {
            dim.terms.push_back(AccessTerm{kOuterAx, config.stride1});
        }
        if (kInnerAx >= 0) {
            dim.terms.push_back(AccessTerm{kInnerAx, 1});
        }
        return dim;
    };
    // Intermediate spatial index: oh1 = oh*st2 + kh2.
    auto midSpatialDim = [&](AxisId outAx, AxisId kOuterAx) {
        AccessDim dim;
        dim.terms.push_back(
            AccessTerm{outAx, static_cast<std::int64_t>(config.stride2)});
        if (kOuterAx >= 0) {
            dim.terms.push_back(AccessTerm{kOuterAx, 1});
        }
        return dim;
    };
    auto kernelDim = [&](AxisId kAx) {
        return kAx >= 0 ? axisDim(kAx) : constDim();
    };
    auto withBatch = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(bAx));
        }
        return dims;
    };

    const int tI = chain.addTensor(TensorDecl{
        "I", TensorKind::Input,
        withBatch({axisDim(icAx), inputSpatialDim(ohAx, kh1Ax, kh2Ax),
                   inputSpatialDim(owAx, kw1Ax, kw2Ax)}),
        4});
    const int tW1 = chain.addTensor(
        TensorDecl{"W1", TensorKind::Input,
                   {axisDim(oc1Ax), axisDim(icAx), kernelDim(kh1Ax),
                    kernelDim(kw1Ax)},
                   4});
    const int tT = chain.addTensor(TensorDecl{
        "T", TensorKind::Intermediate,
        withBatch({axisDim(oc1Ax), midSpatialDim(ohAx, kh2Ax),
                   midSpatialDim(owAx, kw2Ax)}),
        4});
    const int tW2 = chain.addTensor(
        TensorDecl{"W2", TensorKind::Input,
                   {axisDim(oc2Ax), axisDim(oc1Ax), kernelDim(kh2Ax),
                    kernelDim(kw2Ax)},
                   4});
    const int tO = chain.addTensor(
        TensorDecl{"O", TensorKind::Output,
                   withBatch({axisDim(oc2Ax), axisDim(ohAx), axisDim(owAx)}),
                   4});

    auto withBatchLoop = [&](std::vector<AxisId> loops) {
        if (hasBatch) {
            loops.insert(loops.begin(), bAx);
        }
        std::vector<AxisId> filtered;
        for (AxisId a : loops) {
            if (a >= 0) {
                filtered.push_back(a);
            }
        }
        return filtered;
    };

    auto withBatchDims = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(bAx));
        }
        return dims;
    };
    // conv1's per-block iteration space covers the halo-inflated region of
    // the intermediate demanded by the consumer block, so effectiveIters
    // accounts for sliding-window re-computation.
    chain.addOp(OpDecl{
        "conv1", OpKind::Conv2d,
        withBatchLoop({oc1Ax, ohAx, owAx, kh2Ax, kw2Ax, icAx, kh1Ax, kw1Ax}),
        {tI, tW1, tT}, tT,
        withBatchDims({axisDim(oc1Ax), midSpatialDim(ohAx, kh2Ax),
                       midSpatialDim(owAx, kw2Ax), axisDim(icAx),
                       kernelDim(kh1Ax), kernelDim(kw1Ax)})});
    chain.addOp(OpDecl{"conv2", OpKind::Conv2d,
                       withBatchLoop({oc2Ax, ohAx, owAx, oc1Ax, kh2Ax,
                                      kw2Ax}),
                       {tT, tW2, tO}, tO,
                       withBatchDims({axisDim(oc2Ax), axisDim(ohAx),
                                      axisDim(owAx), axisDim(oc1Ax),
                                      kernelDim(kh2Ax), kernelDim(kw2Ax)})});
    chain.setIntermediateEpilogue(config.epilogue);
    chain.validate();
    return chain;
}

Chain
makeGemmChain3(const GemmChain3Config &config)
{
    CHIMERA_CHECK(config.batch >= 1 && config.m >= 1 && config.n >= 1 &&
                      config.k >= 1 && config.l >= 1 && config.p >= 1,
                  "GEMM chain-3 extents must be positive");
    Chain chain(config.name);

    const bool hasBatch = config.batch > 1;
    const AxisId b = hasBatch ? chain.addAxis("b", config.batch) : -1;
    const AxisId m = chain.addAxis("m", config.m);
    const AxisId n = chain.addAxis("n", config.n);
    const AxisId k = chain.addAxis("k", config.k);
    const AxisId l = chain.addAxis("l", config.l);
    const AxisId p = chain.addAxis("p", config.p);

    auto withBatch = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(b));
        }
        return dims;
    };
    auto withBatchLoop = [&](std::vector<AxisId> loops) {
        if (hasBatch) {
            loops.insert(loops.begin(), b);
        }
        return loops;
    };
    auto withBatchDims = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(b));
        }
        return dims;
    };

    const int tA = chain.addTensor(TensorDecl{
        "A", TensorKind::Input, withBatch({axisDim(m), axisDim(k)}), 4});
    const int tB = chain.addTensor(TensorDecl{
        "B", TensorKind::Input, withBatch({axisDim(k), axisDim(l)}), 4});
    const int tC1 = chain.addTensor(
        TensorDecl{"C1", TensorKind::Intermediate,
                   withBatch({axisDim(m), axisDim(l)}), 4});
    const int tD = chain.addTensor(TensorDecl{
        "D", TensorKind::Input, withBatch({axisDim(l), axisDim(p)}), 4});
    const int tC2 = chain.addTensor(
        TensorDecl{"C2", TensorKind::Intermediate,
                   withBatch({axisDim(m), axisDim(p)}), 4});
    const int tF = chain.addTensor(TensorDecl{
        "F", TensorKind::Input, withBatch({axisDim(p), axisDim(n)}), 4});
    const int tE = chain.addTensor(TensorDecl{
        "E", TensorKind::Output, withBatch({axisDim(m), axisDim(n)}), 4});

    chain.addOp(OpDecl{"gemm1", OpKind::Gemm, withBatchLoop({m, k, l}),
                       {tA, tB, tC1}, tC1,
                       withBatchDims({axisDim(m), axisDim(k), axisDim(l)})});
    chain.addOp(OpDecl{"gemm2", OpKind::Gemm, withBatchLoop({m, l, p}),
                       {tC1, tD, tC2}, tC2,
                       withBatchDims({axisDim(m), axisDim(l), axisDim(p)})});
    chain.addOp(OpDecl{"gemm3", OpKind::Gemm, withBatchLoop({m, p, n}),
                       {tC2, tF, tE}, tE,
                       withBatchDims({axisDim(m), axisDim(p), axisDim(n)})});
    chain.setIntermediateEpilogue(config.epilogue);
    chain.validate();
    return chain;
}

Chain
makeSingleGemm(std::int64_t batch, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::string &name)
{
    CHIMERA_CHECK(batch >= 1 && m >= 1 && n >= 1 && k >= 1,
                  "GEMM extents must be positive");
    Chain chain(name);
    const bool hasBatch = batch > 1;
    const AxisId b = hasBatch ? chain.addAxis("b", batch) : -1;
    const AxisId mAx = chain.addAxis("m", m);
    const AxisId nAx = chain.addAxis("n", n);
    const AxisId kAx = chain.addAxis("k", k);

    auto withBatch = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), AccessDim{{AccessTerm{b, 1}}});
        }
        return dims;
    };
    const int tA = chain.addTensor(
        TensorDecl{"A", TensorKind::Input,
                   withBatch({AccessDim{{AccessTerm{mAx, 1}}},
                              AccessDim{{AccessTerm{kAx, 1}}}}),
                   4});
    const int tB = chain.addTensor(
        TensorDecl{"B", TensorKind::Input,
                   withBatch({AccessDim{{AccessTerm{kAx, 1}}},
                              AccessDim{{AccessTerm{nAx, 1}}}}),
                   4});
    const int tC = chain.addTensor(
        TensorDecl{"C", TensorKind::Output,
                   withBatch({AccessDim{{AccessTerm{mAx, 1}}},
                              AccessDim{{AccessTerm{nAx, 1}}}}),
                   4});
    std::vector<AxisId> loops = {mAx, kAx, nAx};
    std::vector<AccessDim> iterDims = {AccessDim{{AccessTerm{mAx, 1}}},
                                       AccessDim{{AccessTerm{kAx, 1}}},
                                       AccessDim{{AccessTerm{nAx, 1}}}};
    if (hasBatch) {
        loops.insert(loops.begin(), b);
        iterDims.insert(iterDims.begin(), AccessDim{{AccessTerm{b, 1}}});
    }
    chain.addOp(
        OpDecl{"gemm", OpKind::Gemm, loops, {tA, tB, tC}, tC, iterDims});
    chain.validate();
    return chain;
}

Chain
makeSingleConv(std::int64_t batch, std::int64_t ic, std::int64_t h,
               std::int64_t w, std::int64_t oc, int kernel, int stride,
               int pad, const std::string &name)
{
    CHIMERA_CHECK(batch >= 1 && ic >= 1 && h >= 1 && w >= 1 && oc >= 1 &&
                      kernel >= 1 && stride >= 1 && pad >= 0,
                  "conv extents must be positive");
    const std::int64_t oh = ref::convOutDim(h, kernel, stride, pad);
    const std::int64_t ow = ref::convOutDim(w, kernel, stride, pad);
    CHIMERA_CHECK(oh >= 1 && ow >= 1, "conv output collapses to zero");

    Chain chain(name);
    const bool hasBatch = batch > 1;
    const AxisId bAx = hasBatch ? chain.addAxis("b", batch) : -1;
    const AxisId ocAx = chain.addAxis("oc", oc);
    const AxisId ohAx = chain.addAxis("oh", oh);
    const AxisId owAx = chain.addAxis("ow", ow);
    const AxisId icAx = chain.addAxis("ic", ic);
    const AxisId khAx = kernel > 1 ? chain.addAxis("kh", kernel, false) : -1;
    const AxisId kwAx = kernel > 1 ? chain.addAxis("kw", kernel, false) : -1;

    auto spatial = [&](AxisId outAx, AxisId kAx) {
        AccessDim dim;
        dim.terms.push_back(
            AccessTerm{outAx, static_cast<std::int64_t>(stride)});
        if (kAx >= 0) {
            dim.terms.push_back(AccessTerm{kAx, 1});
        }
        return dim;
    };
    auto kDim = [&](AxisId kAx) {
        return kAx >= 0 ? axisDim(kAx) : constDim();
    };
    auto withBatch = [&](std::vector<AccessDim> dims) {
        if (hasBatch) {
            dims.insert(dims.begin(), axisDim(bAx));
        }
        return dims;
    };

    const int tI = chain.addTensor(
        TensorDecl{"I", TensorKind::Input,
                   withBatch({axisDim(icAx), spatial(ohAx, khAx),
                              spatial(owAx, kwAx)}),
                   4});
    const int tW = chain.addTensor(
        TensorDecl{"W", TensorKind::Input,
                   {axisDim(ocAx), axisDim(icAx), kDim(khAx), kDim(kwAx)},
                   4});
    const int tO = chain.addTensor(
        TensorDecl{"O", TensorKind::Output,
                   withBatch({axisDim(ocAx), axisDim(ohAx), axisDim(owAx)}),
                   4});

    std::vector<AxisId> loops = {ocAx, ohAx, owAx, icAx};
    std::vector<AccessDim> iterDims = {axisDim(ocAx), axisDim(ohAx),
                                       axisDim(owAx), axisDim(icAx),
                                       kDim(khAx), kDim(kwAx)};
    if (khAx >= 0) {
        loops.push_back(khAx);
        loops.push_back(kwAx);
    }
    if (hasBatch) {
        loops.insert(loops.begin(), bAx);
        iterDims.insert(iterDims.begin(), axisDim(bAx));
    }
    chain.addOp(
        OpDecl{"conv", OpKind::Conv2d, loops, {tI, tW, tO}, tO, iterDims});
    chain.validate();
    return chain;
}

AxisId
axisIdByName(const Chain &chain, const std::string &name)
{
    for (int i = 0; i < chain.numAxes(); ++i) {
        if (chain.axes()[static_cast<std::size_t>(i)].name == name) {
            return i;
        }
    }
    throw Error("unknown axis name: " + name);
}

} // namespace chimera::ir
