#pragma once

/**
 * @file
 * Builders that construct Chain IR for the operator chains the paper
 * evaluates, together with the concrete workload configuration the
 * executors need.
 */

#include <cstdint>
#include <string>

#include "ir/chain.hpp"

namespace chimera::ir {

/**
 * Batch GEMM chain from attention (Figure 1a / Figure 2):
 *   C[b,m,l] = A[b,m,k] * B[b,k,l]
 *   E[b,m,n] = C'[b,m,l] * D[b,l,n]
 * where C' is C after the optional intermediate epilogue
 * (softmax over l, fused per §VI-B, or none).
 */
struct GemmChainConfig
{
    std::int64_t batch = 1;
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;
    std::int64_t l = 0;
    Epilogue epilogue = Epilogue::None;

    /** Pre-exp scaling for softmax (attention's 1/sqrt(d_k)). */
    float softmaxScale = 1.0f;

    /**
     * Decoder-style causal masking (requires the softmax epilogue and
     * m == l): score (m, l) participates only when l <= m. The fused
     * executor masks on chip after exp; the probability rows stay
     * normalized because the row sums accumulate only unmasked entries.
     */
    bool causalMask = false;

    /** Display name, e.g. "G2". */
    std::string name = "gemm_chain";
};

/**
 * Convolution chain (Figure 1b):
 *   T = Conv(I[b,ic,h,w], W1[oc1,ic,k1,k1], stride1, pad1)
 *   O = Conv(T', W2[oc2,oc1,k2,k2], stride2, pad2)
 * with an optional ReLU epilogue on T.
 */
struct ConvChainConfig
{
    std::int64_t batch = 1;
    std::int64_t ic = 0;
    std::int64_t h = 0;
    std::int64_t w = 0;
    std::int64_t oc1 = 0;
    std::int64_t oc2 = 0;
    int stride1 = 1;
    int stride2 = 1;
    int k1 = 3;
    int k2 = 1;
    int pad1 = -1; ///< -1 means (k1-1)/2 ("same" for stride 1).
    int pad2 = -1; ///< -1 means (k2-1)/2.
    Epilogue epilogue = Epilogue::None;
    std::string name = "conv_chain";

    /** Effective paddings after resolving the -1 defaults. */
    int effectivePad1() const { return pad1 >= 0 ? pad1 : (k1 - 1) / 2; }
    int effectivePad2() const { return pad2 >= 0 ? pad2 : (k2 - 1) / 2; }

    /** Spatial extents of the intermediate and output tensors. */
    std::int64_t oh1() const;
    std::int64_t ow1() const;
    std::int64_t oh2() const;
    std::int64_t ow2() const;
};

/**
 * Builds the Chain IR of a batch GEMM chain. When batch == 1 the batch
 * axis is omitted so the independent axes are exactly (m, n, k, l) and
 * the reorder space is the paper's 4! = 24.
 */
Chain makeGemmChain(const GemmChainConfig &config);

/** Builds the Chain IR of a convolution chain (up to 10 axes, §IV-A). */
Chain makeConvChain(const ConvChainConfig &config);

/**
 * Three-GEMM chain (the paper's "more compute-intensive operators"
 * generalization, §IV-B):
 *   C1[b,m,l]  = A[b,m,k]  * B[b,k,l]
 *   C2[b,m,p]  = C1[b,m,l] * D[b,l,p]
 *   E [b,m,n]  = C2[b,m,p] * F[b,p,n]
 * Six independent axes (m, n, k, l, p, + batch); both intermediates stay
 * on chip. Optional epilogue applies to the first intermediate.
 */
struct GemmChain3Config
{
    std::int64_t batch = 1;
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;
    std::int64_t l = 0;
    std::int64_t p = 0;

    /**
     * Applied to C1. Softmax turns the chain into the fused 4-op
     * attention pattern QK^T -> softmax -> .V -> proj (gemm1 scores,
     * row softmax over l, gemm2 value mix, gemm3 projection).
     */
    Epilogue epilogue = Epilogue::None;

    /** Pre-exp scaling for softmax (attention's 1/sqrt(d_k)). */
    float softmaxScale = 1.0f;

    std::string name = "gemm_chain3";
};

Chain makeGemmChain3(const GemmChain3Config &config);

/** Single (batch) GEMM as a chain of one operator, for baselines. */
Chain makeSingleGemm(std::int64_t batch, std::int64_t m, std::int64_t n,
                     std::int64_t k, const std::string &name = "gemm");

/** Single NCHW convolution as a chain of one operator, for baselines. */
Chain makeSingleConv(std::int64_t batch, std::int64_t ic, std::int64_t h,
                     std::int64_t w, std::int64_t oc, int kernel, int stride,
                     int pad, const std::string &name = "conv");

/** Axis id lookup by name; throws Error when the name is unknown. */
AxisId axisIdByName(const Chain &chain, const std::string &name);

} // namespace chimera::ir
