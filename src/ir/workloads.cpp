#include "ir/workloads.hpp"

#include <cmath>

namespace chimera::ir {

namespace {

GemmChainConfig
gemmCfg(const char *name, std::int64_t batch, std::int64_t m, std::int64_t n,
        std::int64_t k, std::int64_t l)
{
    GemmChainConfig cfg;
    cfg.name = name;
    cfg.batch = batch;
    cfg.m = m;
    cfg.n = n;
    cfg.k = k;
    cfg.l = l;
    cfg.softmaxScale = 1.0f / std::sqrt(static_cast<float>(k));
    return cfg;
}

ConvChainConfig
convCfg(const char *name, std::int64_t ic, std::int64_t h, std::int64_t w,
        std::int64_t oc1, std::int64_t oc2, int st1, int st2, int k1, int k2)
{
    ConvChainConfig cfg;
    cfg.name = name;
    cfg.batch = 1;
    cfg.ic = ic;
    cfg.h = h;
    cfg.w = w;
    cfg.oc1 = oc1;
    cfg.oc2 = oc2;
    cfg.stride1 = st1;
    cfg.stride2 = st2;
    cfg.k1 = k1;
    cfg.k2 = k2;
    return cfg;
}

} // namespace

const std::vector<GemmChainWorkload> &
tableIvWorkloads()
{
    static const std::vector<GemmChainWorkload> workloads = {
        {gemmCfg("G1", 8, 512, 64, 64, 512), "Bert-Small"},
        {gemmCfg("G2", 12, 512, 64, 64, 512), "Bert-Base"},
        {gemmCfg("G3", 16, 512, 64, 64, 512), "Bert-Large"},
        {gemmCfg("G4", 12, 256, 64, 64, 256), "ViT-Base/14"},
        {gemmCfg("G5", 16, 256, 64, 64, 256), "ViT-Large/14"},
        {gemmCfg("G6", 16, 256, 80, 80, 256), "ViT-Huge/14"},
        {gemmCfg("G7", 12, 208, 64, 64, 208), "ViT-Base/16"},
        {gemmCfg("G8", 16, 208, 64, 64, 208), "ViT-Large/16"},
        {gemmCfg("G9", 16, 208, 80, 80, 208), "ViT-Huge/16"},
        {gemmCfg("G10", 1, 512, 64, 64, 256), "MLP-Mixer"},
        {gemmCfg("G11", 1, 768, 64, 64, 384), "MLP-Mixer"},
        {gemmCfg("G12", 1, 1024, 64, 64, 512), "MLP-Mixer"},
    };
    return workloads;
}

const std::vector<ConvChainWorkload> &
tableVWorkloads()
{
    static const std::vector<ConvChainWorkload> workloads = {
        {convCfg("C1", 64, 112, 112, 192, 128, 2, 1, 3, 1)},
        {convCfg("C2", 32, 147, 147, 64, 80, 2, 1, 3, 1)},
        {convCfg("C3", 64, 56, 56, 128, 64, 1, 1, 3, 1)},
        {convCfg("C4", 128, 28, 28, 256, 128, 1, 1, 3, 1)},
        {convCfg("C5", 16, 227, 227, 64, 16, 4, 1, 3, 1)},
        {convCfg("C6", 64, 56, 56, 64, 64, 1, 1, 1, 3)},
        {convCfg("C7", 64, 56, 56, 64, 64, 1, 1, 1, 1)},
        {convCfg("C8", 256, 56, 56, 256, 64, 1, 1, 1, 1)},
    };
    return workloads;
}

std::vector<GemmChainWorkload>
smallGemmWorkloads()
{
    return {
        {gemmCfg("S1", 2, 64, 16, 16, 64), "test"},
        {gemmCfg("S2", 1, 48, 32, 16, 40), "test"},
        {gemmCfg("S3", 3, 33, 17, 9, 29), "test"},
        {gemmCfg("S4", 1, 128, 64, 64, 128), "test"},
    };
}

} // namespace chimera::ir
