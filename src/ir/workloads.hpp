#pragma once

/**
 * @file
 * The paper's evaluation workloads: Table IV (batch GEMM chains G1-G12)
 * and Table V (convolution chains C1-C8). Benches and integration tests
 * iterate these so every figure uses exactly the published shapes.
 */

#include <vector>

#include "ir/builders.hpp"

namespace chimera::ir {

/** One row of Table IV with its source network. */
struct GemmChainWorkload
{
    GemmChainConfig config;
    const char *network;
};

/** One row of Table V with derived chain configuration. */
struct ConvChainWorkload
{
    ConvChainConfig config;
};

/** All twelve batch GEMM chains of Table IV (G1-G12). */
const std::vector<GemmChainWorkload> &tableIvWorkloads();

/** All eight convolution chains of Table V (C1-C8). */
const std::vector<ConvChainWorkload> &tableVWorkloads();

/**
 * A scaled-down variant of Table IV for unit/integration tests, keeping
 * the same aspect ratios but small enough for the naive reference oracle.
 */
std::vector<GemmChainWorkload> smallGemmWorkloads();

} // namespace chimera::ir
