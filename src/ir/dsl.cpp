#include "ir/dsl.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace chimera::ir {

namespace {

/** One parsed tensor reference: name + index list. */
struct TensorRef
{
    std::string name;
    std::vector<std::string> indices;
};

/** One parsed statement: out = lhs * rhs. */
struct Statement
{
    TensorRef out;
    TensorRef lhs;
    TensorRef rhs;
};

std::string
stripSpace(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
            out += c;
        }
    }
    return out;
}

bool
validIdentifier(const std::string &s)
{
    if (s.empty()) {
        return false;
    }
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
            return false;
        }
    }
    return !std::isdigit(static_cast<unsigned char>(s.front()));
}

/** Parses `Name[i,j,k]`; @p cursor advances past the reference. */
TensorRef
parseRef(const std::string &text, std::size_t &cursor)
{
    const std::size_t open = text.find('[', cursor);
    CHIMERA_CHECK(open != std::string::npos,
                  "expected '[' in tensor reference: " + text);
    const std::size_t close = text.find(']', open);
    CHIMERA_CHECK(close != std::string::npos,
                  "expected ']' in tensor reference: " + text);

    TensorRef ref;
    ref.name = text.substr(cursor, open - cursor);
    CHIMERA_CHECK(validIdentifier(ref.name),
                  "bad tensor name: '" + ref.name + "'");
    std::stringstream indices(text.substr(open + 1, close - open - 1));
    std::string index;
    while (std::getline(indices, index, ',')) {
        CHIMERA_CHECK(validIdentifier(index),
                      "bad index name: '" + index + "'");
        ref.indices.push_back(index);
    }
    CHIMERA_CHECK(!ref.indices.empty(),
                  "tensor " + ref.name + " has no indices");
    cursor = close + 1;
    return ref;
}

Statement
parseStatement(const std::string &raw)
{
    const std::string text = stripSpace(raw);
    Statement stmt;
    std::size_t cursor = 0;
    stmt.out = parseRef(text, cursor);
    CHIMERA_CHECK(cursor < text.size() && text[cursor] == '=',
                  "expected '=' in statement: " + raw);
    ++cursor;
    stmt.lhs = parseRef(text, cursor);
    CHIMERA_CHECK(cursor < text.size() && text[cursor] == '*',
                  "expected '*' in statement: " + raw);
    ++cursor;
    stmt.rhs = parseRef(text, cursor);
    CHIMERA_CHECK(cursor == text.size(),
                  "trailing characters in statement: " + raw);
    return stmt;
}

} // namespace

Chain
parseEinsumChain(const std::string &source,
                 const std::map<std::string, std::int64_t> &extents,
                 const std::string &name)
{
    // Split on ';' and parse each statement.
    std::vector<Statement> statements;
    std::stringstream ss(source);
    std::string piece;
    while (std::getline(ss, piece, ';')) {
        if (stripSpace(piece).empty()) {
            continue;
        }
        statements.push_back(parseStatement(piece));
    }
    CHIMERA_CHECK(!statements.empty(), "DSL source has no statements");

    Chain chain(name);

    // Axes in first-use order.
    std::map<std::string, AxisId> axisByName;
    auto axisOf = [&](const std::string &index) {
        auto it = axisByName.find(index);
        if (it != axisByName.end()) {
            return it->second;
        }
        const auto extent = extents.find(index);
        CHIMERA_CHECK(extent != extents.end(),
                      "no extent given for index '" + index + "'");
        const AxisId id = chain.addAxis(index, extent->second);
        axisByName.emplace(index, id);
        return id;
    };

    // Tensor bookkeeping: who produces, who consumes.
    struct TensorInfo
    {
        int id = -1;
        std::vector<std::string> indices;
        int producerStmt = -1;
        bool consumed = false;
    };
    std::map<std::string, TensorInfo> tensors;

    auto declareTensor = [&](const TensorRef &ref, bool isOutput,
                             int stmtIdx) -> TensorInfo & {
        auto it = tensors.find(ref.name);
        if (it != tensors.end()) {
            TensorInfo &info = it->second;
            CHIMERA_CHECK(info.indices == ref.indices,
                          "tensor " + ref.name +
                              " used with inconsistent indices");
            if (isOutput) {
                CHIMERA_CHECK(info.producerStmt < 0,
                              "tensor " + ref.name + " produced twice");
                CHIMERA_CHECK(!info.consumed,
                              "tensor " + ref.name +
                                  " consumed before it is produced");
                info.producerStmt = stmtIdx;
            } else {
                CHIMERA_CHECK(info.producerStmt < 0 ||
                                  info.producerStmt < stmtIdx,
                              "statements not in topological order");
                info.consumed = true;
            }
            return info;
        }
        TensorInfo info;
        info.indices = ref.indices;
        info.producerStmt = isOutput ? stmtIdx : -1;
        info.consumed = !isOutput;
        TensorDecl decl;
        decl.name = ref.name;
        decl.kind = TensorKind::Input; // refined after all statements
        for (const std::string &index : ref.indices) {
            decl.dims.push_back(AccessDim{{AccessTerm{axisOf(index), 1}}});
        }
        info.id = chain.addTensor(decl);
        return tensors.emplace(ref.name, info).first->second;
    };

    std::vector<OpDecl> ops;
    for (std::size_t s = 0; s < statements.size(); ++s) {
        const Statement &stmt = statements[s];
        TensorInfo &lhs =
            declareTensor(stmt.lhs, false, static_cast<int>(s));
        TensorInfo &rhs =
            declareTensor(stmt.rhs, false, static_cast<int>(s));
        TensorInfo &out =
            declareTensor(stmt.out, true, static_cast<int>(s));

        OpDecl op;
        op.name = "contract" + std::to_string(s);
        op.kind = OpKind::Gemm;
        for (const TensorRef *ref : {&stmt.out, &stmt.lhs, &stmt.rhs}) {
            for (const std::string &index : ref->indices) {
                const AxisId axis = axisOf(index);
                if (!op.usesLoop(axis)) {
                    op.loops.push_back(axis);
                    op.iterDims.push_back(
                        AccessDim{{AccessTerm{axis, 1}}});
                }
            }
        }
        // Every output index must appear on an input side (projection).
        for (const std::string &index : stmt.out.indices) {
            const AxisId axis = axisOf(index);
            bool onInput = false;
            for (const TensorRef *ref : {&stmt.lhs, &stmt.rhs}) {
                for (const std::string &in : ref->indices) {
                    onInput = onInput || axisOf(in) == axis;
                }
            }
            CHIMERA_CHECK(onInput, "output index '" + index +
                                       "' missing from the inputs");
        }
        op.tensorIds = {lhs.id, rhs.id, out.id};
        op.outputTensorId = out.id;
        ops.push_back(op);
    }

    // Refine tensor kinds now that all uses are known. Mutating the
    // declarations requires rebuilding the chain tensors in place via
    // element size setter-free approach: rebuild a fresh chain.
    Chain result(name);
    for (const auto &axis : chain.axes()) {
        result.addAxis(axis.name, axis.extent, axis.reorderable);
    }
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        TensorDecl decl = chain.tensors()[t];
        // Find the bookkeeping record by id.
        for (const auto &[tname, info] : tensors) {
            if (info.id != static_cast<int>(t)) {
                continue;
            }
            if (info.producerStmt >= 0 && info.consumed) {
                decl.kind = TensorKind::Intermediate;
            } else if (info.producerStmt >= 0) {
                decl.kind = TensorKind::Output;
            } else {
                decl.kind = TensorKind::Input;
            }
        }
        result.addTensor(decl);
    }
    for (const OpDecl &op : ops) {
        result.addOp(op);
    }
    result.validate();
    return result;
}

} // namespace chimera::ir
