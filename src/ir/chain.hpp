#pragma once

/**
 * @file
 * The Chain IR: a compute DAG of compute-intensive operators plus the
 * memory-intensive epilogues between them.
 *
 * This is the input to Chimera's optimizer (Figure 3 of the paper). A
 * Chain owns the independent axes, the tensor declarations with their
 * affine access maps, and the operators in topological order. The
 * analytical model (src/model) and the planner (src/plan) work purely on
 * this representation; the executors (src/exec) additionally use the
 * concrete workload configs carried by the builder functions.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/axis.hpp"

namespace chimera::ir {

/** Role of a tensor within the chain (Algorithm 1 line 7). */
enum class TensorKind
{
    Input, ///< Chain input: counted in the data movement volume.
    Intermediate, ///< Producer/consumer buffer kept on chip (DM = 0).
    Output, ///< Chain output: counted in the data movement volume.
};

/** Kind of compute-intensive operator (executor dispatch tag). */
enum class OpKind
{
    Gemm, ///< Plain or batched matrix multiplication.
    Conv2d, ///< NCHW direct convolution.
};

/** Memory-intensive operator fused between/after compute operators. */
enum class Epilogue
{
    None,
    Relu, ///< Elementwise max(x, 0).
    Softmax, ///< Row-wise softmax (exp/sum/div, fused per §VI-B).
};

/** A tensor referenced by the chain. */
struct TensorDecl
{
    std::string name;
    TensorKind kind = TensorKind::Input;

    /** Affine access expression per tensor dimension. */
    std::vector<AccessDim> dims;

    /** Element size in bytes (fp32 on the CPU substrate). */
    int elementSize = 4;

    /** Tile footprint in elements for a tile-size vector. */
    std::int64_t footprintElems(const std::vector<std::int64_t> &tiles) const;

    /** True when @p axis appears anywhere in the access map. */
    bool usesAxis(AxisId axis) const;
};

/** One compute-intensive operator of the chain. */
struct OpDecl
{
    std::string name;
    OpKind kind = OpKind::Gemm;

    /** All loop axes of this operator's nest (paper: op.allLoops()). */
    std::vector<AxisId> loops;

    /** Tensors touched by the operator (inputs first, output last). */
    std::vector<int> tensorIds;

    /** Index into tensorIds-referenced tensors of the produced tensor. */
    int outputTensorId = -1;

    /**
     * The operator's iteration space, one affine dimension per loop of
     * its nest. For fused convolution chains the producer's spatial dims
     * carry halo terms, so the per-block iteration count (and therefore
     * the effective FLOPs including sliding-window re-computation, §VI-B)
     * follows directly from the footprints.
     */
    std::vector<AccessDim> iterDims;

    /** True when @p axis is one of this operator's loops. */
    bool usesLoop(AxisId axis) const;

    /**
     * Total scalar multiply-accumulate iterations executed under tiling:
     * per dimension, (product of per-term block counts) * footprint.
     * With full-extent tiles this is the untiled iteration count; smaller
     * spatial tiles inflate it by the halo re-compute factor.
     */
    double effectiveIters(const std::vector<std::int64_t> &extents,
                          const std::vector<std::int64_t> &tiles) const;
};

/** Compute DAG for one fusible operator chain. */
class Chain
{
  public:
    /** Creates an empty chain with a display name. */
    explicit Chain(std::string name);

    /** Adds an axis and returns its id. */
    AxisId addAxis(std::string name, std::int64_t extent,
                   bool reorderable = true);

    /** Adds a tensor declaration and returns its id. */
    int addTensor(TensorDecl tensor);

    /** Appends an operator (ops must be added in topological order). */
    int addOp(OpDecl op);

    /** Sets the epilogue applied to the intermediate tensor. */
    void setIntermediateEpilogue(Epilogue e) { intermediateEpilogue_ = e; }

    const std::string &name() const { return name_; }
    const std::vector<Axis> &axes() const { return axes_; }
    const std::vector<TensorDecl> &tensors() const { return tensors_; }
    const std::vector<OpDecl> &ops() const { return ops_; }
    Epilogue intermediateEpilogue() const { return intermediateEpilogue_; }

    /** Number of independent axes I. */
    int numAxes() const { return static_cast<int>(axes_.size()); }

    /** Axis ids the planner may permute (Axis::reorderable). */
    std::vector<AxisId> reorderableAxes() const;

    /** Axis ids pinned innermost, in declaration order. */
    std::vector<AxisId> pinnedAxes() const;

    /** Tensor ids whose kind is Input or Output (Ops.IOTensors()). */
    std::vector<int> ioTensorIds() const;

    /**
     * Axes private to op @p opIndex: used by it and by no later operator
     * (Algorithm 1 lines 17-19 remove them before visiting consumers).
     */
    std::vector<AxisId> privateAxesOf(int opIndex) const;

    /** Full extents vector (the maximal tile sizes). */
    std::vector<std::int64_t> fullExtents() const;

    /** Total bytes of all Input/Output tensors (the DV lower bound). */
    std::int64_t ioBytes() const;

    /** Sum over ops of 2 * prod(loop extents): total chain FLOPs. */
    double totalFlops() const;

    /**
     * Overrides the element size of every tensor (bytes). The CPU
     * executors are fp32; the simulated GPU/NPU backends model fp16.
     */
    void setElementSize(int bytes);

    /** Validates internal consistency; throws Error on malformed IR. */
    void validate() const;

  private:
    std::string name_;
    std::vector<Axis> axes_;
    std::vector<TensorDecl> tensors_;
    std::vector<OpDecl> ops_;
    Epilogue intermediateEpilogue_ = Epilogue::None;
};

/**
 * Canonical textual signature of everything that affects planning:
 * axes (name, extent, reorderability), tensor declarations (kind,
 * element size, access maps), operators (kind, loops, operands,
 * iteration dims) and the epilogue. The display name is deliberately
 * excluded — two chains with identical structure share every valid
 * plan. The plan cache hashes this string into its lookup key.
 */
std::string chainSignature(const Chain &chain);

} // namespace chimera::ir
