#include "ir/chain.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace chimera::ir {

std::int64_t
TensorDecl::footprintElems(const std::vector<std::int64_t> &tiles) const
{
    std::int64_t fp = 1;
    for (const AccessDim &dim : dims) {
        fp *= dim.footprint(tiles);
    }
    return fp;
}

bool
TensorDecl::usesAxis(AxisId axis) const
{
    for (const AccessDim &dim : dims) {
        if (dim.usesAxis(axis)) {
            return true;
        }
    }
    return false;
}

bool
OpDecl::usesLoop(AxisId axis) const
{
    return std::find(loops.begin(), loops.end(), axis) != loops.end();
}

double
OpDecl::effectiveIters(const std::vector<std::int64_t> &extents,
                       const std::vector<std::int64_t> &tiles) const
{
    // Exact per-dimension iteration count over the block grid with tail
    // blocks truncated: for footprint 1 + sum_i c_i*(s_i - 1) summed over
    // all blocks,
    //   iters = N*(1 - sum_i c_i) + sum_i c_i * L_i * N / n_i
    // where n_i = ceil(L_i / T_i) and N = prod_i n_i. Single-axis dims
    // collapse to exactly L; halo dims to st*(L-1) + k per walk.
    double total = 1.0;
    for (const AccessDim &dim : iterDims) {
        double nProd = 1.0;
        for (const AccessTerm &term : dim.terms) {
            const auto axis = static_cast<std::size_t>(term.axis);
            nProd *= static_cast<double>(
                (extents[axis] + tiles[axis] - 1) / tiles[axis]);
        }
        double coeffSum = 0.0;
        double weighted = 0.0;
        for (const AccessTerm &term : dim.terms) {
            const auto axis = static_cast<std::size_t>(term.axis);
            const double blocks = static_cast<double>(
                (extents[axis] + tiles[axis] - 1) / tiles[axis]);
            coeffSum += static_cast<double>(term.coeff);
            weighted += static_cast<double>(term.coeff) *
                        static_cast<double>(extents[axis]) * nProd /
                        blocks;
        }
        total *= nProd * (1.0 - coeffSum) + weighted;
    }
    return total;
}

Chain::Chain(std::string name)
    : name_(std::move(name))
{
}

AxisId
Chain::addAxis(std::string name, std::int64_t extent, bool reorderable)
{
    CHIMERA_CHECK(extent >= 1, "axis extent must be positive");
    axes_.push_back(Axis{std::move(name), extent, reorderable});
    return static_cast<AxisId>(axes_.size()) - 1;
}

int
Chain::addTensor(TensorDecl tensor)
{
    tensors_.push_back(std::move(tensor));
    return static_cast<int>(tensors_.size()) - 1;
}

int
Chain::addOp(OpDecl op)
{
    ops_.push_back(std::move(op));
    return static_cast<int>(ops_.size()) - 1;
}

std::vector<AxisId>
Chain::reorderableAxes() const
{
    std::vector<AxisId> result;
    for (int i = 0; i < numAxes(); ++i) {
        if (axes_[static_cast<std::size_t>(i)].reorderable) {
            result.push_back(i);
        }
    }
    return result;
}

std::vector<AxisId>
Chain::pinnedAxes() const
{
    std::vector<AxisId> result;
    for (int i = 0; i < numAxes(); ++i) {
        if (!axes_[static_cast<std::size_t>(i)].reorderable) {
            result.push_back(i);
        }
    }
    return result;
}

std::vector<int>
Chain::ioTensorIds() const
{
    std::vector<int> result;
    for (std::size_t t = 0; t < tensors_.size(); ++t) {
        if (tensors_[t].kind != TensorKind::Intermediate) {
            result.push_back(static_cast<int>(t));
        }
    }
    return result;
}

std::vector<AxisId>
Chain::privateAxesOf(int opIndex) const
{
    CHIMERA_CHECK(opIndex >= 0 && opIndex < static_cast<int>(ops_.size()),
                  "op index out of range");
    std::vector<AxisId> result;
    const OpDecl &op = ops_[static_cast<std::size_t>(opIndex)];
    for (AxisId axis : op.loops) {
        bool usedLater = false;
        for (std::size_t later = static_cast<std::size_t>(opIndex) + 1;
             later < ops_.size(); ++later) {
            if (ops_[later].usesLoop(axis)) {
                usedLater = true;
                break;
            }
        }
        if (!usedLater) {
            result.push_back(axis);
        }
    }
    return result;
}

std::vector<std::int64_t>
Chain::fullExtents() const
{
    std::vector<std::int64_t> extents;
    extents.reserve(axes_.size());
    for (const Axis &axis : axes_) {
        extents.push_back(axis.extent);
    }
    return extents;
}

std::int64_t
Chain::ioBytes() const
{
    const std::vector<std::int64_t> full = fullExtents();
    std::int64_t total = 0;
    for (int t : ioTensorIds()) {
        const TensorDecl &decl = tensors_[static_cast<std::size_t>(t)];
        total += decl.footprintElems(full) * decl.elementSize;
    }
    return total;
}

double
Chain::totalFlops() const
{
    const std::vector<std::int64_t> full = fullExtents();
    double total = 0.0;
    for (const OpDecl &op : ops_) {
        if (!op.iterDims.empty()) {
            // multiply + add per innermost iteration
            total += 2.0 * op.effectiveIters(full, full);
            continue;
        }
        double opFlops = 2.0;
        for (AxisId axis : op.loops) {
            opFlops *=
                static_cast<double>(axes_[static_cast<std::size_t>(axis)]
                                        .extent);
        }
        total += opFlops;
    }
    return total;
}

void
Chain::setElementSize(int bytes)
{
    CHIMERA_CHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
                  "unsupported element size");
    for (TensorDecl &tensor : tensors_) {
        tensor.elementSize = bytes;
    }
}

void
Chain::validate() const
{
    CHIMERA_CHECK(!ops_.empty(), "chain has no operators");
    for (const OpDecl &op : ops_) {
        CHIMERA_CHECK(!op.loops.empty(), "operator has no loops");
        for (AxisId axis : op.loops) {
            CHIMERA_CHECK(axis >= 0 && axis < numAxes(),
                          "operator references unknown axis");
        }
        CHIMERA_CHECK(!op.tensorIds.empty(), "operator touches no tensors");
        for (int t : op.tensorIds) {
            CHIMERA_CHECK(t >= 0 && t < static_cast<int>(tensors_.size()),
                          "operator references unknown tensor");
        }
        CHIMERA_CHECK(op.outputTensorId >= 0 &&
                          op.outputTensorId <
                              static_cast<int>(tensors_.size()),
                      "operator output tensor out of range");
    }
    for (const TensorDecl &tensor : tensors_) {
        CHIMERA_CHECK(!tensor.dims.empty(), "tensor has no dimensions");
        for (const AccessDim &dim : tensor.dims) {
            for (const AccessTerm &term : dim.terms) {
                CHIMERA_CHECK(term.axis >= 0 && term.axis < numAxes(),
                              "access term references unknown axis");
                CHIMERA_CHECK(term.coeff >= 1,
                              "access coefficients must be positive");
            }
        }
    }
    // The last operator must produce the chain output.
    const OpDecl &last = ops_.back();
    CHIMERA_CHECK(tensors_[static_cast<std::size_t>(last.outputTensorId)]
                          .kind == TensorKind::Output,
                  "last operator must produce the chain output tensor");
}

std::string
chainSignature(const Chain &chain)
{
    // Plain string appends, no ostringstream: this sits on the plan
    // cache's warm lookup path, where the first stream construction in
    // a fresh process costs ~100us of locale initialization alone.
    std::string out;
    auto emitAccessDims = [&out](const std::vector<AccessDim> &dims) {
        for (const AccessDim &dim : dims) {
            out += "[";
            for (const AccessTerm &term : dim.terms) {
                out += std::to_string(term.coeff) + "*a" +
                       std::to_string(term.axis) + ";";
            }
            out += "]";
        }
    };
    out += "axes:";
    for (const Axis &axis : chain.axes()) {
        out += axis.name + "," + std::to_string(axis.extent) + "," +
               (axis.reorderable ? "1" : "0") + ";";
    }
    out += "|tensors:";
    for (const TensorDecl &tensor : chain.tensors()) {
        out += std::to_string(static_cast<int>(tensor.kind)) + "," +
               std::to_string(tensor.elementSize) + ",";
        emitAccessDims(tensor.dims);
        out += ";";
    }
    out += "|ops:";
    for (const OpDecl &op : chain.ops()) {
        out += std::to_string(static_cast<int>(op.kind)) + ",loops=";
        for (AxisId axis : op.loops) {
            out += std::to_string(axis) + ".";
        }
        out += ",tensors=";
        for (int t : op.tensorIds) {
            out += std::to_string(t) + ".";
        }
        out += ",out=" + std::to_string(op.outputTensorId) + ",iter=";
        emitAccessDims(op.iterDims);
        out += ";";
    }
    out += "|epilogue:" +
           std::to_string(static_cast<int>(chain.intermediateEpilogue()));
    return out;
}

} // namespace chimera::ir
