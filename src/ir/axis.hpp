#pragma once

/**
 * @file
 * Loop axes and affine tensor-access maps.
 *
 * A chain of compute-intensive operators is described by a set of
 * *independent* loop axes (the paper's l_1..l_I, §IV-B). Operators that
 * share a dimension (e.g. m and l in the GEMM chain of Figure 2) bind to
 * the same axis, which is what shrinks the reordering space from (P+Q)!
 * to I!.
 *
 * Each tensor dimension is accessed through an affine combination of
 * axes. For a tile vector S the footprint of a dimension is
 *     1 + sum_i coeff_i * (S_i - 1)
 * which covers plain indexing (coeff 1, one term) as well as convolution
 * sliding windows (h = oh*stride + kh gives terms {oh: stride, kh: 1} and
 * the familiar halo footprint stride*(T_oh-1) + T_kh).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace chimera::ir {

/** Index of an axis within its owning Chain. */
using AxisId = int;

/** One independent loop axis of a chain. */
struct Axis
{
    /** Short name used in permutation strings ("m", "l", "oh", ...). */
    std::string name;

    /** Full trip count L_i of the loop. */
    std::int64_t extent = 1;

    /**
     * Whether the planner may move this axis when enumerating block
     * execution orders. Small kernel axes (kh/kw) stay pinned innermost.
     */
    bool reorderable = true;
};

/** One affine term of an access expression: coeff * axis. */
struct AccessTerm
{
    AxisId axis = -1;
    std::int64_t coeff = 1;
};

/** Affine access expression for one tensor dimension. */
struct AccessDim
{
    std::vector<AccessTerm> terms;

    /** Tile footprint along this dimension given per-axis tile sizes. */
    std::int64_t footprint(const std::vector<std::int64_t> &tiles) const;

    /** True when @p axis appears in this dimension's expression. */
    bool usesAxis(AxisId axis) const;
};

} // namespace chimera::ir
