#pragma once

/**
 * @file
 * General tile-size optimizer: minimize Algorithm-1 data movement under
 * the memory-capacity constraint for a fixed block execution order.
 *
 * The paper solves the relaxed problem with Lagrange multipliers and
 * rounds; closed forms exist only per chain/order pair. This module
 * implements the general path as monotone coordinate descent on the
 * integer candidate lattice: DV is non-increasing and MU non-decreasing
 * in every tile size, so sweeping each axis over its candidate sizes and
 * keeping the best feasible point converges in a handful of passes. On
 * the GEMM chain this reproduces the paper's closed form (see tests).
 */

#include <cstdint>
#include <map>
#include <vector>

#include "ir/chain.hpp"
#include "model/data_movement.hpp"

namespace chimera::solver {

/** Per-axis restrictions imposed by the executor / micro kernel. */
struct TileConstraints
{
    /**
     * Tile sizes for an axis must be a multiple of this value or the
     * full extent (the executor peels remainder blocks elsewhere).
     */
    std::map<ir::AxisId, std::int64_t> multipleOf;

    /** Fixed tile size for an axis (pinned kernel axes use extent). */
    std::map<ir::AxisId, std::int64_t> fixed;

    /** Upper bound on the tile of an axis (e.g. nested level tiles). */
    std::map<ir::AxisId, std::int64_t> maxTile;

    /**
     * Lower bound on the tile of an axis (clamped to the extent): the
     * paper's alpha for free variables, which keeps tiles cache-line
     * friendly.
     */
    std::map<ir::AxisId, std::int64_t> minTile;
};

/** Result of one solve for a fixed permutation. */
struct TileSolution
{
    std::vector<std::int64_t> tiles;
    double volumeBytes = 0.0;
    std::int64_t memUsageBytes = 0;
    bool feasible = false;
};

/** Options for the solver. */
struct TileSolverOptions
{
    /** Capacity in bytes for the MU <= MC constraint. */
    double memCapacityBytes = 0.0;

    /** Maximum coordinate-descent sweeps. */
    int maxSweeps = 6;

    /** Model options forwarded to Algorithm 1. */
    model::ModelOptions model;
};

/**
 * Minimizes DV for a fixed permutation.
 *
 * @param chain       Operator chain.
 * @param perm        Block execution order (all axes, outermost first).
 * @param constraints Executor tile restrictions.
 * @param options     Capacity and solver parameters.
 */
TileSolution solveTiles(const ir::Chain &chain,
                        const std::vector<ir::AxisId> &perm,
                        const TileConstraints &constraints,
                        const TileSolverOptions &options);

/** Candidate tile sizes for @p axis honoring @p constraints. */
std::vector<std::int64_t> axisTileCandidates(const ir::Chain &chain,
                                             ir::AxisId axis,
                                             const TileConstraints &c);

} // namespace chimera::solver
