#pragma once

/**
 * @file
 * The paper's closed-form Lagrange-multiplier solution for the two-GEMM
 * chain under block order mlkn (§IV-B).
 *
 * Under that order the relaxed objective is
 *     DV(T_M, T_L) = M*L*(K+N) * (1/T_M + 1/T_L)
 * with the memory constraint (T_N and T_K pinned to the free-variable
 * lower bound alpha)
 *     T_M*T_L + alpha*(T_M + T_L) <= MC.
 * Symmetry gives T_M* = T_L* = -alpha + sqrt(alpha^2 + MC) and
 *     DV* = 2*M*L*(K+N) / T_M*.
 */

#include <cstdint>

namespace chimera::solver {

/** Result of the closed-form GEMM-chain solve. */
struct GemmChainClosedForm
{
    /** Real-valued extrema of the relaxed problem. */
    double tmStar = 0.0;
    double tlStar = 0.0;

    /** Integer tiles after T_X = min{floor(T_X*), X} rounding. */
    std::int64_t tm = 0;
    std::int64_t tl = 0;
    std::int64_t tn = 0;
    std::int64_t tk = 0;

    /** Relaxed optimum DV* in elements. */
    double dvStarElems = 0.0;

    /** DV of the rounded integer solution in elements (with ceils). */
    double dvRoundedElems = 0.0;

    /** Paper's a-priori bound on dvRounded/dvStar. */
    double approximationBound = 0.0;
};

/**
 * Solves the relaxed problem and rounds to integers.
 *
 * @param m, n, k, l       GEMM-chain extents.
 * @param memCapacityElems On-chip capacity in *elements*.
 * @param alpha            Lower bound for the free tiles T_N, T_K.
 */
GemmChainClosedForm solveGemmChainClosedForm(std::int64_t m, std::int64_t n,
                                             std::int64_t k, std::int64_t l,
                                             double memCapacityElems,
                                             std::int64_t alpha = 8);

} // namespace chimera::solver
