#include "solver/closed_form.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::solver {

GemmChainClosedForm
solveGemmChainClosedForm(std::int64_t m, std::int64_t n, std::int64_t k,
                         std::int64_t l, double memCapacityElems,
                         std::int64_t alpha)
{
    CHIMERA_CHECK(m >= 1 && n >= 1 && k >= 1 && l >= 1,
                  "extents must be positive");
    CHIMERA_CHECK(memCapacityElems > 0.0, "capacity must be positive");
    CHIMERA_CHECK(alpha >= 1, "alpha must be at least 1");

    GemmChainClosedForm result;
    const double a = static_cast<double>(alpha);
    const double mc = memCapacityElems;

    // T* = -alpha + sqrt(alpha^2 + MC); the free tiles sit at alpha.
    const double tStar = -a + std::sqrt(a * a + mc);
    result.tmStar = tStar;
    result.tlStar = tStar;

    result.tm = std::min<std::int64_t>(
        static_cast<std::int64_t>(std::floor(tStar)), m);
    result.tl = std::min<std::int64_t>(
        static_cast<std::int64_t>(std::floor(tStar)), l);
    result.tm = std::max<std::int64_t>(result.tm, 1);
    result.tl = std::max<std::int64_t>(result.tl, 1);
    result.tn = std::min<std::int64_t>(alpha, n);
    result.tk = std::min<std::int64_t>(alpha, k);

    const double mlkn = static_cast<double>(m) * static_cast<double>(l) *
                        static_cast<double>(k + n);
    result.dvStarElems = 2.0 * mlkn / tStar;

    // Integer DV with the real ceil factors of the mlkn-order formula:
    // DV = M*K*ceil(L/T_L) + (K+N)*L*ceil(M/T_M) ... regrouped per tensor.
    const double cm = static_cast<double>(ceilDiv(m, result.tm));
    const double cl = static_cast<double>(ceilDiv(l, result.tl));
    result.dvRoundedElems =
        static_cast<double>(m) * static_cast<double>(k) * cl +
        static_cast<double>(k) * static_cast<double>(l) * cm +
        static_cast<double>(n) * static_cast<double>(l) * cm +
        static_cast<double>(m) * static_cast<double>(n) * cl;

    // Paper bound: max over X in {M, L} of 1 + sqrt(MC)/X +
    // 1/min{X, sqrt(MC)} (valid for MC >> alpha).
    const double sqrtMc = std::sqrt(mc);
    const double boundM = 1.0 + sqrtMc / static_cast<double>(m) +
                          1.0 / std::min(static_cast<double>(m), sqrtMc);
    const double boundL = 1.0 + sqrtMc / static_cast<double>(l) +
                          1.0 / std::min(static_cast<double>(l), sqrtMc);
    result.approximationBound = std::max(boundM, boundL);
    return result;
}

} // namespace chimera::solver
