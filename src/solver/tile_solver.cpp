#include "solver/tile_solver.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::solver {

using ir::AxisId;
using ir::Chain;

std::vector<std::int64_t>
axisTileCandidates(const Chain &chain, AxisId axis, const TileConstraints &c)
{
    const std::int64_t extent =
        chain.axes()[static_cast<std::size_t>(axis)].extent;

    if (auto it = c.fixed.find(axis); it != c.fixed.end()) {
        return {std::min(it->second, extent)};
    }

    std::int64_t cap = extent;
    if (auto it = c.maxTile.find(axis); it != c.maxTile.end()) {
        cap = std::min(cap, std::max<std::int64_t>(1, it->second));
    }
    std::int64_t floor = 1;
    if (auto it = c.minTile.find(axis); it != c.minTile.end()) {
        floor = clampI64(it->second, 1, cap);
    }

    std::vector<std::int64_t> cands;
    const auto multIt = c.multipleOf.find(axis);
    if (multIt != c.multipleOf.end() && multIt->second > 1) {
        const std::int64_t step = multIt->second;
        for (std::int64_t v = step; v <= cap; v += step) {
            if (v >= floor) {
                cands.push_back(v);
            }
        }
        // The full extent is always legal: the executor peels the tail.
        if (cands.empty() || cands.back() != cap) {
            cands.push_back(cap);
        }
    } else {
        for (std::int64_t v : tileCandidates(extent)) {
            if (v <= cap && v >= floor) {
                cands.push_back(v);
            }
        }
        if (cands.empty()) {
            cands.push_back(cap);
        }
        if (cands.back() != cap) {
            cands.push_back(cap);
        }
    }
    return cands;
}

TileSolution
solveTiles(const Chain &chain, const std::vector<AxisId> &perm,
           const TileConstraints &constraints,
           const TileSolverOptions &options)
{
    model::validatePermutation(chain, perm);
    CHIMERA_CHECK(options.memCapacityBytes > 0.0,
                  "solver needs a positive memory capacity");

    const int numAxes = chain.numAxes();
    std::vector<std::vector<std::int64_t>> candidates;
    candidates.reserve(static_cast<std::size_t>(numAxes));
    for (AxisId a = 0; a < numAxes; ++a) {
        candidates.push_back(axisTileCandidates(chain, a, constraints));
    }

    // Start from the smallest candidate everywhere: always the least
    // memory usage, so feasibility (if attainable at all) holds from the
    // first point and descent only moves between feasible points.
    std::vector<std::int64_t> tiles(static_cast<std::size_t>(numAxes));
    std::vector<std::size_t> candIdx(static_cast<std::size_t>(numAxes), 0);
    for (AxisId a = 0; a < numAxes; ++a) {
        tiles[static_cast<std::size_t>(a)] =
            candidates[static_cast<std::size_t>(a)].front();
    }

    auto evaluate = [&](const std::vector<std::int64_t> &t) {
        return model::computeDataMovement(chain, perm, t, options.model);
    };

    model::DataMovement best = evaluate(tiles);
    TileSolution solution;
    solution.tiles = tiles;
    solution.volumeBytes = best.volumeBytes;
    solution.memUsageBytes = best.memUsageBytes;
    solution.feasible =
        static_cast<double>(best.memUsageBytes) <= options.memCapacityBytes;
    if (!solution.feasible) {
        return solution; // even the minimal tiles do not fit
    }

    // Phase 1 — marginal-gain growth (the discrete analogue of walking
    // the Lagrange trade-off curve): repeatedly take the single-axis
    // step up that buys the most volume reduction per byte of extra
    // footprint. Growing coupled axes (e.g. T_M and T_L of the GEMM
    // chain) in alternation avoids the local minimum where one axis
    // consumes the whole capacity first.
    while (true) {
        int bestAxis = -1;
        double bestRatio = 0.0;
        double bestVolume = 0.0;
        std::int64_t bestMu = 0;
        for (AxisId a = 0; a < numAxes; ++a) {
            const auto &cands = candidates[static_cast<std::size_t>(a)];
            const std::size_t next = candIdx[static_cast<std::size_t>(a)] + 1;
            if (next >= cands.size()) {
                continue;
            }
            const std::int64_t saved = tiles[static_cast<std::size_t>(a)];
            tiles[static_cast<std::size_t>(a)] = cands[next];
            const model::DataMovement dm = evaluate(tiles);
            tiles[static_cast<std::size_t>(a)] = saved;
            if (static_cast<double>(dm.memUsageBytes) >
                options.memCapacityBytes) {
                continue;
            }
            const double dVolume = solution.volumeBytes - dm.volumeBytes;
            const double dMu = static_cast<double>(dm.memUsageBytes -
                                                   solution.memUsageBytes);
            if (dVolume <= 0.0) {
                continue;
            }
            const double ratio = dVolume / (dMu > 0.0 ? dMu : 1.0);
            if (ratio > bestRatio) {
                bestRatio = ratio;
                bestAxis = a;
                bestVolume = dm.volumeBytes;
                bestMu = dm.memUsageBytes;
            }
        }
        if (bestAxis < 0) {
            break;
        }
        candIdx[static_cast<std::size_t>(bestAxis)] += 1;
        tiles[static_cast<std::size_t>(bestAxis)] =
            candidates[static_cast<std::size_t>(bestAxis)]
                      [candIdx[static_cast<std::size_t>(bestAxis)]];
        solution.volumeBytes = bestVolume;
        solution.memUsageBytes = bestMu;
    }

    for (int sweep = 0; sweep < options.maxSweeps; ++sweep) {
        bool improved = false;
        for (AxisId a = 0; a < numAxes; ++a) {
            const std::int64_t current = tiles[static_cast<std::size_t>(a)];
            std::int64_t bestTile = current;
            double bestVolume = solution.volumeBytes;
            std::int64_t bestMu = solution.memUsageBytes;
            for (std::int64_t cand :
                 candidates[static_cast<std::size_t>(a)]) {
                if (cand == current) {
                    continue;
                }
                tiles[static_cast<std::size_t>(a)] = cand;
                const model::DataMovement dm = evaluate(tiles);
                const bool fits = static_cast<double>(dm.memUsageBytes) <=
                                  options.memCapacityBytes;
                if (!fits) {
                    continue;
                }
                // Prefer lower volume; break ties toward lower memory
                // usage while the search is still trading capacity for
                // volume (the inflation pass below reclaims the slack).
                if (dm.volumeBytes < bestVolume - 0.5 ||
                    (dm.volumeBytes < bestVolume + 0.5 &&
                     dm.memUsageBytes < bestMu)) {
                    bestVolume = dm.volumeBytes;
                    bestMu = dm.memUsageBytes;
                    bestTile = cand;
                }
            }
            tiles[static_cast<std::size_t>(a)] = bestTile;
            if (bestTile != current) {
                improved = true;
                solution.volumeBytes = bestVolume;
                solution.memUsageBytes = bestMu;
            }
        }
        if (!improved) {
            break;
        }
    }

    // Phase 3 — inflation: grow any tile whose increase leaves the
    // volume unchanged and still fits. Free under the model, it cuts
    // block-dispatch overhead and gives nested inner-level schedules
    // (§IV-C) room to tile within this level.
    for (int round = 0; round < options.maxSweeps; ++round) {
        bool grew = false;
        for (AxisId a = 0; a < numAxes; ++a) {
            const auto &cands = candidates[static_cast<std::size_t>(a)];
            const std::int64_t current = tiles[static_cast<std::size_t>(a)];
            for (std::size_t ci = cands.size(); ci-- > 0;) {
                if (cands[ci] <= current) {
                    break;
                }
                tiles[static_cast<std::size_t>(a)] = cands[ci];
                const model::DataMovement dm = evaluate(tiles);
                if (static_cast<double>(dm.memUsageBytes) <=
                        options.memCapacityBytes &&
                    dm.volumeBytes < solution.volumeBytes + 0.5) {
                    solution.memUsageBytes = dm.memUsageBytes;
                    grew = true;
                    break;
                }
                tiles[static_cast<std::size_t>(a)] = current;
            }
        }
        if (!grew) {
            break;
        }
    }

    solution.tiles = tiles;
    const model::DataMovement finalDm = evaluate(tiles);
    solution.volumeBytes = finalDm.volumeBytes;
    solution.memUsageBytes = finalDm.memUsageBytes;
    solution.feasible = static_cast<double>(finalDm.memUsageBytes) <=
                        options.memCapacityBytes;
    return solution;
}

} // namespace chimera::solver
