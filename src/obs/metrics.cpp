#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace chimera::obs
{

namespace
{

/// Shift amount for a value's octave (0 for the unit range).
int layoutShift(std::int64_t value) noexcept
{
    if (value < HistogramLayout::kSubBuckets)
        return 0;
    const int k = 63 - std::countl_zero(static_cast<std::uint64_t>(value));
    return k - HistogramLayout::kSubBucketBits;
}

} // namespace

int HistogramLayout::bucketIndex(std::int64_t value) noexcept
{
    if (value <= 0)
        return 0;
    const int shift = layoutShift(value);
    return shift * static_cast<int>(kSubBuckets) + static_cast<int>(value >> shift);
}

std::int64_t HistogramLayout::lowerBound(int index) noexcept
{
    if (index <= 0)
        return 0;
    // Indices [0, 64) are the shift-0 range (unit buckets plus the
    // first octave); each later block of 32 indices raises shift by 1.
    const int shift = std::max(0, index / static_cast<int>(kSubBuckets) - 1);
    const std::int64_t base = index - static_cast<std::int64_t>(shift) * kSubBuckets;
    return base << shift;
}

std::int64_t HistogramLayout::upperBound(int index) noexcept
{
    const int shift = std::max(0, index / static_cast<int>(kSubBuckets) - 1);
    return lowerBound(index) + (std::int64_t{1} << shift) - 1;
}

HistogramSnapshot::HistogramSnapshot() = default;

void HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    if (other.count_ > 0)
    {
        min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
        max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

std::int64_t HistogramSnapshot::percentile(double q) const noexcept
{
    if (count_ <= 0)
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    const auto rank = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_))));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
    {
        seen += counts_[i];
        if (seen >= rank)
        {
            // Clamp to the observed max so p100 never exceeds it.
            return std::min(HistogramLayout::upperBound(static_cast<int>(i)), max_);
        }
    }
    return max_;
}

Histogram::Histogram() : min_(std::numeric_limits<std::int64_t>::max())
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

void Histogram::record(std::int64_t value) noexcept
{
    if (value < 0)
        value = 0;
    counts_[static_cast<std::size_t>(HistogramLayout::bucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // min/max via CAS loops; contention is rare (only on new extremes).
    std::int64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur && !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed))
    {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur && !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed))
    {
    }
}

HistogramSnapshot Histogram::snapshot() const
{
    HistogramSnapshot snap;
    std::int64_t total = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
    {
        const std::int64_t c = counts_[i].load(std::memory_order_relaxed);
        snap.counts_[i] = c;
        total += c;
    }
    // Derive count from the buckets actually copied so the snapshot is
    // internally consistent even if records land mid-copy.
    snap.count_ = total;
    snap.sum_ = sum_.load(std::memory_order_relaxed);
    snap.min_ = min_.load(std::memory_order_relaxed);
    snap.max_ = max_.load(std::memory_order_relaxed);
    if (snap.count_ > 0 && snap.max_ < 0)
        snap.max_ = snap.min_;
    return snap;
}

Counter &Registry::counter(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &Registry::gauge(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &Registry::histogram(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

namespace
{

std::string formatSeconds(double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9f", seconds);
    return buf;
}

/// Histograms named `*_seconds` hold nanosecond values and render in
/// the seconds domain; anything else (e.g. batch-size distributions)
/// renders its raw integer percentiles.
bool isSecondsHistogram(const std::string &name)
{
    static const std::string suffix = "_seconds";
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void appendHistogramText(std::ostringstream &out, const std::string &name,
                         const HistogramSnapshot &snap)
{
    out << name << "-count: " << snap.count() << '\n';
    if (isSecondsHistogram(name))
    {
        out << name << "-p50-seconds: " << formatSeconds(snap.percentileSeconds(0.50)) << '\n';
        out << name << "-p90-seconds: " << formatSeconds(snap.percentileSeconds(0.90)) << '\n';
        out << name << "-p99-seconds: " << formatSeconds(snap.percentileSeconds(0.99)) << '\n';
        out << name << "-p999-seconds: " << formatSeconds(snap.percentileSeconds(0.999)) << '\n';
        out << name << "-mean-seconds: " << formatSeconds(snap.meanSeconds()) << '\n';
        out << name << "-max-seconds: " << formatSeconds(snap.maxSeconds()) << '\n';
        return;
    }
    out << name << "-p50: " << snap.percentile(0.50) << '\n';
    out << name << "-p90: " << snap.percentile(0.90) << '\n';
    out << name << "-p99: " << snap.percentile(0.99) << '\n';
    out << name << "-p999: " << snap.percentile(0.999) << '\n';
    out << name << "-max: " << snap.max() << '\n';
}

void appendJsonEntry(std::ostringstream &out, bool &first, const std::string &name,
                     const std::string &rendered)
{
    if (!first)
        out << ",";
    first = false;
    out << "\n  \"" << name << "\": " << rendered;
}

std::string histogramJson(const std::string &name, const HistogramSnapshot &snap)
{
    std::ostringstream out;
    if (isSecondsHistogram(name))
    {
        out << "{\"count\": " << snap.count()
            << ", \"p50_seconds\": " << formatSeconds(snap.percentileSeconds(0.50))
            << ", \"p90_seconds\": " << formatSeconds(snap.percentileSeconds(0.90))
            << ", \"p99_seconds\": " << formatSeconds(snap.percentileSeconds(0.99))
            << ", \"p999_seconds\": " << formatSeconds(snap.percentileSeconds(0.999))
            << ", \"mean_seconds\": " << formatSeconds(snap.meanSeconds())
            << ", \"max_seconds\": " << formatSeconds(snap.maxSeconds()) << "}";
        return out.str();
    }
    out << "{\"count\": " << snap.count() << ", \"p50\": " << snap.percentile(0.50)
        << ", \"p90\": " << snap.percentile(0.90) << ", \"p99\": " << snap.percentile(0.99)
        << ", \"p999\": " << snap.percentile(0.999) << ", \"max\": " << snap.max() << "}";
    return out.str();
}

} // namespace

std::string Registry::renderText() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    for (const auto &[name, c] : counters_)
        out << name << ": " << c->value() << '\n';
    for (const auto &[name, g] : gauges_)
        out << name << ": " << g->value() << '\n';
    for (const auto &[name, h] : histograms_)
        appendHistogramText(out, name, h->snapshot());
    return out.str();
}

std::string Registry::renderJson() const
{
    return obs::renderJson({this});
}

std::string renderJson(const std::vector<const Registry *> &registries)
{
    std::ostringstream out;
    out << "{";
    bool first = true;
    for (const Registry *reg : registries)
    {
        if (reg == nullptr)
            continue;
        const std::lock_guard<std::mutex> lock(reg->mutex_);
        for (const auto &[name, c] : reg->counters_)
            appendJsonEntry(out, first, name, std::to_string(c->value()));
        for (const auto &[name, g] : reg->gauges_)
            appendJsonEntry(out, first, name, std::to_string(g->value()));
        for (const auto &[name, h] : reg->histograms_)
            appendJsonEntry(out, first, name, histogramJson(name, h->snapshot()));
    }
    out << "\n}\n";
    return out.str();
}

Registry &Registry::global()
{
    // Leaked on purpose: metric references cached in function-local
    // statics must stay valid through static destruction.
    static Registry *instance = new Registry();
    return *instance;
}

} // namespace chimera::obs
