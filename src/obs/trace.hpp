#pragma once

/**
 * @file
 * Structured tracing: monotonic-clock spans with typed key/value args,
 * collected in per-thread lock-free buffers and exported as Chrome
 * trace-event JSON (loadable in Perfetto or chrome://tracing).
 *
 * Cost model:
 *  - Disabled (the default): `obs::trace()` is a single relaxed atomic
 *    load returning nullptr; a `Span` constructed with nullptr does
 *    nothing — no clock read, no allocation. bench/obs_overhead
 *    measures this path at ~1 ns/span.
 *  - Enabled: each completed span appends one event to the calling
 *    thread's buffer. The append takes no lock in steady state
 *    (segmented storage: a mutex is touched only when a thread's
 *    buffer grows by another 512-event segment).
 *
 * Enabling:
 *  - `CHIMERA_TRACE=1` turns the global recorder on for the process;
 *    if the value contains '/' or ends in ".json" it is treated as an
 *    output path and the trace is written there at process exit.
 *  - Programmatic: `TraceRecorder::enableGlobal()` (used by the
 *    `--trace-out` CLI flags), then `writeJson(path)` when done.
 *
 * All spans share one clock — `obs::nowNanos()`, steady_clock
 * nanoseconds since a process-wide epoch — which is also what the
 * executors feed to `ChunkProfile`, so critical-path attribution and
 * trace timelines agree exactly.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chimera::obs
{

/** Steady-clock nanoseconds since a process-wide epoch (first call). */
std::int64_t nowNanos() noexcept;

/** One typed key/value span argument. Keys must be string literals. */
struct TraceArg
{
    enum class Kind : std::uint8_t
    {
        Int,
        Float,
        Str
    };

    TraceArg() = default;
    TraceArg(const char *k, std::int64_t v) : key(k), kind(Kind::Int), i(v) {}
    TraceArg(const char *k, double v) : key(k), kind(Kind::Float), f(v) {}
    TraceArg(const char *k, std::string v) : key(k), kind(Kind::Str), s(std::move(v)) {}

    const char *key = "";
    Kind kind = Kind::Int;
    std::int64_t i = 0;
    double f = 0.0;
    std::string s;
};

/**
 * Collects trace events from any number of threads. Event name and
 * category pointers must outlive the recorder (string literals).
 */
class TraceRecorder
{
public:
    TraceRecorder();
    ~TraceRecorder();
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /// Record a complete span ("ph":"X") on the calling thread's track.
    void complete(const char *name, const char *cat, std::int64_t startNanos,
                  std::int64_t durNanos, std::vector<TraceArg> args = {});

    /// Record an instant event ("ph":"i") at now.
    void instant(const char *name, const char *cat, std::vector<TraceArg> args = {});

    /// Label the calling thread's track in trace viewers.
    void nameThread(const std::string &name);

    /// Events recorded so far (drops excluded).
    std::int64_t eventCount() const;

    /// Events dropped after a thread hit its buffer cap.
    std::int64_t droppedCount() const;

    /// Serialize everything recorded so far as Chrome trace-event JSON.
    std::string toJson() const;

    /// toJson() to a file; throws chimera::Error on IO failure.
    void writeJson(const std::string &path) const;

    /**
     * The process-wide recorder, or nullptr when tracing is disabled.
     * First call consults CHIMERA_TRACE; afterwards this is one
     * relaxed atomic load.
     */
    static TraceRecorder *global() noexcept;

    /// Turn the global recorder on (idempotent); returns it.
    static TraceRecorder *enableGlobal();

    struct Event;
    struct Buffer; ///< opaque; public only for the internal TLS cache

private:
    Buffer &threadBuffer();
    void append(Event &&event);

    const std::uint64_t id_; ///< distinguishes recorders in the TLS cache
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<Buffer>> buffers_;
    std::atomic<std::int64_t> dropped_{0};
};

/** Shorthand for TraceRecorder::global(). */
inline TraceRecorder *trace() noexcept
{
    return TraceRecorder::global();
}

/**
 * RAII span: captures the start time on construction (when the
 * recorder is non-null) and records a complete event on destruction
 * or at end(). Args attach via the fluent arg() overloads; all are
 * no-ops when the span was constructed with a null recorder.
 */
class Span
{
public:
    Span(TraceRecorder *recorder, const char *name, const char *cat) noexcept
        : recorder_(recorder), name_(name), cat_(cat)
    {
        if (recorder_ != nullptr)
            start_ = nowNanos();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span() { end(); }

    Span &arg(const char *key, std::int64_t v)
    {
        if (recorder_ != nullptr)
            args_.emplace_back(key, v);
        return *this;
    }

    Span &arg(const char *key, int v) { return arg(key, static_cast<std::int64_t>(v)); }

    Span &arg(const char *key, double v)
    {
        if (recorder_ != nullptr)
            args_.emplace_back(key, v);
        return *this;
    }

    Span &arg(const char *key, std::string v)
    {
        if (recorder_ != nullptr)
            args_.emplace_back(key, std::move(v));
        return *this;
    }

    /// Close the span now (idempotent; the destructor calls this).
    void end()
    {
        if (recorder_ == nullptr)
            return;
        recorder_->complete(name_, cat_, start_, nowNanos() - start_, std::move(args_));
        recorder_ = nullptr;
    }

    bool enabled() const noexcept { return recorder_ != nullptr; }

private:
    TraceRecorder *recorder_;
    const char *name_;
    const char *cat_;
    std::int64_t start_ = 0;
    std::vector<TraceArg> args_;
};

} // namespace chimera::obs
