#include "obs/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace chimera::obs
{

std::int64_t nowNanos() noexcept
{
    // One epoch for the whole process so timestamps from different
    // threads and subsystems land on a single comparable timeline.
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

struct TraceRecorder::Event
{
    const char *name = "";
    const char *cat = "";
    char phase = 'X'; ///< 'X' complete, 'i' instant, 'M' metadata
    std::int64_t ts = 0;
    std::int64_t dur = 0;
    std::vector<TraceArg> args;
};

struct TraceRecorder::Buffer
{
    static constexpr std::size_t kSegmentEvents = 512;
    /// Per-thread cap; past this the recorder counts drops instead of
    /// growing without bound inside a long-lived daemon.
    static constexpr std::int64_t kMaxEvents = 1 << 20;

    using Segment = std::array<Event, kSegmentEvents>;

    explicit Buffer(int tidIn) : tid(tidIn) {}

    const int tid;
    /// Published event count: store-release by the owning thread after
    /// the slot is fully written; load-acquire by snapshotters.
    std::atomic<std::int64_t> count{0};
    /// Guards `segments` growth (owner) and pointer snapshot (reader).
    std::mutex segmentMutex;
    std::vector<std::unique_ptr<Segment>> segments;
};

namespace
{

std::atomic<std::uint64_t> gNextRecorderId{1};

/// Per-thread cache of (recorder id -> buffer) so the steady-state
/// append never touches the recorder mutex. shared_ptr keeps a cached
/// buffer harmlessly alive even if its recorder is destroyed first.
struct TlsEntry
{
    std::uint64_t recorderId = 0;
    std::shared_ptr<TraceRecorder::Buffer> buffer;
};

thread_local std::vector<TlsEntry> tTlsBuffers;

void appendJsonEscaped(std::string &out, const char *text)
{
    for (const char *p = text; *p != '\0'; ++p)
    {
        const char c = *p;
        switch (c)
        {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
            {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            }
            else
            {
                out += c;
            }
        }
    }
}

} // namespace

TraceRecorder::TraceRecorder() : id_(gNextRecorderId.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Buffer &TraceRecorder::threadBuffer()
{
    for (const TlsEntry &entry : tTlsBuffers)
    {
        if (entry.recorderId == id_)
            return *entry.buffer;
    }
    auto buffer = [this] {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto created = std::make_shared<Buffer>(static_cast<int>(buffers_.size()) + 1);
        buffers_.push_back(created);
        return created;
    }();
    tTlsBuffers.push_back(TlsEntry{id_, buffer});
    return *buffer;
}

void TraceRecorder::append(Event &&event)
{
    Buffer &buf = threadBuffer();
    const std::int64_t n = buf.count.load(std::memory_order_relaxed);
    if (n >= Buffer::kMaxEvents)
    {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const auto seg = static_cast<std::size_t>(n) / Buffer::kSegmentEvents;
    const auto off = static_cast<std::size_t>(n) % Buffer::kSegmentEvents;
    if (off == 0)
    {
        // Owner-only growth; the lock exists so snapshotting readers
        // can copy the segment pointer vector safely.
        const std::lock_guard<std::mutex> lock(buf.segmentMutex);
        buf.segments.push_back(std::make_unique<Buffer::Segment>());
    }
    (*buf.segments[seg])[off] = std::move(event);
    buf.count.store(n + 1, std::memory_order_release);
}

void TraceRecorder::complete(const char *name, const char *cat, std::int64_t startNanos,
                             std::int64_t durNanos, std::vector<TraceArg> args)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.phase = 'X';
    e.ts = startNanos;
    e.dur = durNanos < 0 ? 0 : durNanos;
    e.args = std::move(args);
    append(std::move(e));
}

void TraceRecorder::instant(const char *name, const char *cat, std::vector<TraceArg> args)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.phase = 'i';
    e.ts = nowNanos();
    e.args = std::move(args);
    append(std::move(e));
}

void TraceRecorder::nameThread(const std::string &name)
{
    Event e;
    e.name = "thread_name";
    e.cat = "__metadata";
    e.phase = 'M';
    e.ts = 0;
    e.args.emplace_back("name", name);
    append(std::move(e));
}

std::int64_t TraceRecorder::eventCount() const
{
    std::vector<std::shared_ptr<Buffer>> buffers;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::int64_t total = 0;
    for (const auto &buf : buffers)
        total += buf->count.load(std::memory_order_acquire);
    return total;
}

std::int64_t TraceRecorder::droppedCount() const
{
    return dropped_.load(std::memory_order_relaxed);
}

std::string TraceRecorder::toJson() const
{
    std::vector<std::shared_ptr<Buffer>> buffers;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }

    std::string out;
    out.reserve(1 << 16);
    out += "{\"traceEvents\": [";
    bool first = true;
    char num[64];
    for (const auto &buf : buffers)
    {
        const std::int64_t published = buf->count.load(std::memory_order_acquire);
        std::vector<Buffer::Segment *> segments;
        {
            const std::lock_guard<std::mutex> lock(buf->segmentMutex);
            segments.reserve(buf->segments.size());
            for (const auto &seg : buf->segments)
                segments.push_back(seg.get());
        }
        for (std::int64_t n = 0; n < published; ++n)
        {
            const auto seg = static_cast<std::size_t>(n) / Buffer::kSegmentEvents;
            const auto off = static_cast<std::size_t>(n) % Buffer::kSegmentEvents;
            if (seg >= segments.size())
                break;
            const Event &e = (*segments[seg])[off];
            if (!first)
                out += ",";
            first = false;
            out += "\n {\"name\": \"";
            appendJsonEscaped(out, e.name);
            out += "\", \"cat\": \"";
            appendJsonEscaped(out, e.cat);
            out += "\", \"ph\": \"";
            out += e.phase;
            out += "\", \"pid\": 1, \"tid\": ";
            std::snprintf(num, sizeof(num), "%d", buf->tid);
            out += num;
            if (e.phase != 'M')
            {
                // Chrome trace timestamps are microseconds (double).
                std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(e.ts) / 1e3);
                out += ", \"ts\": ";
                out += num;
                if (e.phase == 'X')
                {
                    std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(e.dur) / 1e3);
                    out += ", \"dur\": ";
                    out += num;
                }
                if (e.phase == 'i')
                    out += ", \"s\": \"t\"";
            }
            if (!e.args.empty())
            {
                out += ", \"args\": {";
                bool firstArg = true;
                for (const TraceArg &a : e.args)
                {
                    if (!firstArg)
                        out += ", ";
                    firstArg = false;
                    out += "\"";
                    appendJsonEscaped(out, a.key);
                    out += "\": ";
                    switch (a.kind)
                    {
                    case TraceArg::Kind::Int:
                        std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(a.i));
                        out += num;
                        break;
                    case TraceArg::Kind::Float:
                        std::snprintf(num, sizeof(num), "%.9g", a.f);
                        out += num;
                        break;
                    case TraceArg::Kind::Str:
                        out += "\"";
                        appendJsonEscaped(out, a.s.c_str());
                        out += "\"";
                        break;
                    }
                }
                out += "}";
            }
            out += "}";
        }
    }
    out += "\n], \"displayTimeUnit\": \"ms\"";
    const std::int64_t dropped = droppedCount();
    if (dropped > 0)
    {
        std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(dropped));
        out += ", \"chimeraDroppedEvents\": ";
        out += num;
    }
    out += "}\n";
    return out;
}

void TraceRecorder::writeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw Error("trace: cannot open '" + path + "' for writing");
    out << toJson();
    out.flush();
    if (!out)
        throw Error("trace: failed writing '" + path + "'");
}

namespace
{

std::atomic<TraceRecorder *> gGlobalRecorder{nullptr};
std::once_flag gGlobalInitFlag;
std::string gEnvTracePath; ///< set once under gGlobalInitFlag

void writeEnvTraceAtExit()
{
    TraceRecorder *rec = gGlobalRecorder.load(std::memory_order_acquire);
    if (rec == nullptr || gEnvTracePath.empty())
        return;
    try
    {
        rec->writeJson(gEnvTracePath);
    }
    catch (const std::exception &e)
    {
        std::fprintf(stderr, "chimera: %s\n", e.what());
    }
}

void initGlobalFromEnv()
{
    const char *env = std::getenv("CHIMERA_TRACE");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0)
        return;
    // Leaked on purpose: spans may complete during static destruction.
    gGlobalRecorder.store(new TraceRecorder(), std::memory_order_release);
    const bool looksLikePath =
        std::strchr(env, '/') != nullptr ||
        (std::strlen(env) > 5 && std::strcmp(env + std::strlen(env) - 5, ".json") == 0);
    if (looksLikePath)
    {
        gEnvTracePath = env;
        std::atexit(writeEnvTraceAtExit);
    }
}

} // namespace

TraceRecorder *TraceRecorder::global() noexcept
{
    TraceRecorder *rec = gGlobalRecorder.load(std::memory_order_relaxed);
    if (rec != nullptr)
        return rec;
    std::call_once(gGlobalInitFlag, initGlobalFromEnv);
    return gGlobalRecorder.load(std::memory_order_acquire);
}

TraceRecorder *TraceRecorder::enableGlobal()
{
    // Resolve any pending env decision first so the two paths agree.
    std::call_once(gGlobalInitFlag, initGlobalFromEnv);
    TraceRecorder *rec = gGlobalRecorder.load(std::memory_order_acquire);
    if (rec != nullptr)
        return rec;
    auto *created = new TraceRecorder();
    TraceRecorder *expected = nullptr;
    if (!gGlobalRecorder.compare_exchange_strong(expected, created, std::memory_order_acq_rel))
    {
        delete created;
        return expected;
    }
    return created;
}

} // namespace chimera::obs
