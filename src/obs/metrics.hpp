#pragma once

/**
 * @file
 * Process-wide metrics registry: named atomic counters, gauges, and
 * log-linear-bucket HDR latency histograms.
 *
 * Design goals, in order:
 *
 *  1. The *record* path (Counter::add, Histogram::record) is lock-free
 *     and wait-free — one relaxed fetch_add on a pre-resolved slot.
 *     Callers resolve the slot once (function-local static reference)
 *     and never pay the registry lookup again.
 *  2. Snapshots are *mergeable*: a HistogramSnapshot taken per shard /
 *     per server instance merges into an aggregate whose percentiles
 *     are exactly what a single combined histogram would have reported
 *     (merge is a bucket-wise integer add, hence associative and
 *     commutative — the unit suite proves it).
 *  3. Percentile error is bounded by construction: buckets are
 *     log-linear with 32 sub-buckets per power of two, so any reported
 *     quantile is within one bucket width — a relative error of at
 *     most 1/32 ≈ 3.2% — of the recorded value. This is the classic
 *     HdrHistogram layout, sized for int64 nanosecond values.
 *
 * Naming convention: `chimera.<layer>.<name>`, e.g.
 * `chimera.serve.latency_seconds`, `chimera.plan.cache.memory_hits`.
 * See docs/OBSERVABILITY.md for the full catalogue.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chimera::obs
{

/** Monotonically increasing event count. Record path: one relaxed add. */
class Counter
{
public:
    void add(std::int64_t delta = 1) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/** Last-write-wins instantaneous value (queue depths, config knobs). */
class Gauge
{
public:
    void set(std::int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void add(std::int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Log-linear HDR bucket layout shared by Histogram and its snapshots.
 *
 * Values are non-negative int64 (we record latencies as integer
 * nanoseconds). Layout: 32 sub-buckets per octave; values below 32
 * get exact unit buckets. For v >= 32 with k = floor(log2 v):
 *
 *     shift  = k - 5
 *     index  = shift * 32 + (v >> shift)       // in [32*(shift+1), ...)
 *
 * which is contiguous with the unit range (shift = 0 reproduces
 * index = v). Bucket `i` covers [lowerBound(i), upperBound(i)], a
 * width of 2^shift, i.e. at most value/32.
 */
struct HistogramLayout
{
    static constexpr int kSubBucketBits = 5;                ///< 32 sub-buckets/octave
    static constexpr std::int64_t kSubBuckets = std::int64_t{1} << kSubBucketBits;
    /// Highest index is for v = 2^62..2^63-1 (shift 57): 57*32 + 63.
    static constexpr int kBucketCount = 57 * 32 + 64;

    static int bucketIndex(std::int64_t value) noexcept;
    static std::int64_t lowerBound(int index) noexcept;
    static std::int64_t upperBound(int index) noexcept;
};

class Histogram;

/**
 * Immutable copy of a histogram's state. Cheap to merge; percentiles
 * are computed here (never on the live atomics) so a snapshot is a
 * consistent basis for p50/p99 lines even while recording continues.
 */
class HistogramSnapshot
{
public:
    HistogramSnapshot();

    /// Bucket-wise sum; associative and commutative.
    void merge(const HistogramSnapshot &other);

    std::int64_t count() const noexcept { return count_; }
    std::int64_t sum() const noexcept { return sum_; }
    std::int64_t min() const noexcept { return count_ > 0 ? min_ : 0; }
    std::int64_t max() const noexcept { return count_ > 0 ? max_ : 0; }
    double mean() const noexcept
    {
        return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
    }

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * holding the ceil(q * count)-th recorded value (0 when empty).
     * Guaranteed within one bucket width of the exact order statistic.
     */
    std::int64_t percentile(double q) const noexcept;

    /// Seconds-domain conveniences for nanosecond-valued histograms.
    double percentileSeconds(double q) const noexcept
    {
        return static_cast<double>(percentile(q)) * 1e-9;
    }
    double meanSeconds() const noexcept { return mean() * 1e-9; }
    double maxSeconds() const noexcept { return static_cast<double>(max()) * 1e-9; }

    std::int64_t bucketCount(int index) const noexcept { return counts_[static_cast<std::size_t>(index)]; }

private:
    friend class Histogram;

    std::array<std::int64_t, HistogramLayout::kBucketCount> counts_{};
    std::int64_t count_ = 0;
    std::int64_t sum_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
};

/**
 * Live HDR histogram. record() is lock-free: one bucket index
 * computation (a count-leading-zeros and a shift) plus four relaxed
 * atomic RMWs. Negative values clamp to 0; values are typically
 * integer nanoseconds (use recordSeconds for a double-seconds input).
 */
class Histogram
{
public:
    Histogram();

    void record(std::int64_t value) noexcept;

    void recordSeconds(double seconds) noexcept
    {
        record(seconds <= 0.0 ? 0 : static_cast<std::int64_t>(seconds * 1e9 + 0.5));
    }

    std::int64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }

    /// Consistent-enough copy of the live state (buckets read relaxed).
    HistogramSnapshot snapshot() const;

private:
    std::array<std::atomic<std::int64_t>, HistogramLayout::kBucketCount> counts_;
    std::atomic<std::int64_t> count_{0};
    std::atomic<std::int64_t> sum_{0};
    std::atomic<std::int64_t> min_;
    std::atomic<std::int64_t> max_{-1};
};

/**
 * Named metric registry. Lookup (counter/gauge/histogram) takes a
 * mutex and returns a reference that stays valid for the registry's
 * lifetime — resolve once, record forever. `global()` is the
 * process-wide instance (intentionally leaked: metrics must outlive
 * static destructors); subsystems that need isolation (e.g. one
 * serve::Server per test) own their own Registry.
 */
class Registry
{
public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Stable `name: value` lines sorted by name; histograms expand to
     * `<name>-count/-p50/-p90/-p99/-p999/-mean/-max` (seconds domain).
     */
    std::string renderText() const;

    /** JSON object keyed by metric name (histograms become objects). */
    std::string renderJson() const;

    static Registry &global();

private:
    friend std::string renderJson(const std::vector<const Registry *> &registries);

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Render several registries into one JSON object (later keys win). */
std::string renderJson(const std::vector<const Registry *> &registries);

} // namespace chimera::obs
