#include "exec/gemm_chain3_exec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "exec/chunk_profile.hpp"
#include "exec/constraints.hpp"
#include "exec/region_schedule.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/timer.hpp"
#include "tensor/reference.hpp"

namespace chimera::exec {

using ir::Epilogue;
using ir::GemmChain3Config;

namespace {

std::vector<std::int64_t>
shapeOf(const GemmChain3Config &c, std::int64_t rows, std::int64_t cols)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, rows, cols}
                       : std::vector<std::int64_t>{rows, cols};
}

std::int64_t
tileOf(const ir::Chain &chain, const plan::ExecutionPlan &plan,
       const std::string &name, std::int64_t fallback)
{
    for (int a = 0; a < chain.numAxes(); ++a) {
        if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
            return plan.tiles[static_cast<std::size_t>(a)];
        }
    }
    return fallback;
}

/**
 * Region loops of the three-GEMM walk: only b and m reach the region
 * level (l/k are reduction loops inside a region, p is pinned to its
 * full extent, n is consumed innermost). A unit batch loop (axis -1) is
 * synthesized when batch == 1.
 */
std::vector<RegionLoop>
chain3RegionLoops(const ir::Chain &chain, const GemmChain3Config &config,
                  const plan::ExecutionPlan &plan)
{
    const std::int64_t tb = tileOf(chain, plan, "b", 1);
    const std::int64_t tm = tileOf(chain, plan, "m", config.m);
    std::vector<RegionLoop> loops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            loops.push_back(RegionLoop{'b', config.batch, tb, axis});
        } else if (name == "m") {
            loops.push_back(RegionLoop{'m', config.m, tm, axis});
        }
    }
    if (config.batch == 1) {
        loops.insert(loops.begin(), RegionLoop{'b', 1, 1, -1});
    }
    CHIMERA_ASSERT(loops.size() == 2, "missing 3-chain region loop");
    return loops;
}

} // namespace

std::vector<std::int64_t>
gemmChain3ShapeA(const GemmChain3Config &c)
{
    return shapeOf(c, c.m, c.k);
}

std::vector<std::int64_t>
gemmChain3ShapeB(const GemmChain3Config &c)
{
    return shapeOf(c, c.k, c.l);
}

std::vector<std::int64_t>
gemmChain3ShapeD(const GemmChain3Config &c)
{
    return shapeOf(c, c.l, c.p);
}

std::vector<std::int64_t>
gemmChain3ShapeF(const GemmChain3Config &c)
{
    return shapeOf(c, c.p, c.n);
}

std::vector<std::int64_t>
gemmChain3ShapeE(const GemmChain3Config &c)
{
    return shapeOf(c, c.m, c.n);
}

solver::TileConstraints
gemmChain3Constraints(const ir::Chain &chain,
                      const kernels::MicroKernel &kernel)
{
    solver::TileConstraints constraints =
        cpuChainConstraints(chain, kernel);
    const ir::AxisId p = ir::axisIdByName(chain, "p");
    constraints.minTile.erase(p);
    constraints.multipleOf.erase(p);
    constraints.fixed[p] =
        chain.axes()[static_cast<std::size_t>(p)].extent;
    // Softmax (the fused 4-op attention pattern) normalizes C1 rows
    // over l, so the executor keeps a full scores row on chip: the
    // softmax completes on the region before GEMM2 consumes it, with
    // no deferred division or cross-block row sums.
    if (chain.intermediateEpilogue() == Epilogue::Softmax) {
        const ir::AxisId l = ir::axisIdByName(chain, "l");
        constraints.minTile.erase(l);
        constraints.multipleOf.erase(l);
        constraints.fixed[l] =
            chain.axes()[static_cast<std::size_t>(l)].extent;
    }
    return constraints;
}

void
runFusedGemmChain3(const GemmChain3Config &config,
                   const plan::ExecutionPlan &plan,
                   const ComputeEngine &engine, const Tensor &a,
                   const Tensor &b, const Tensor &d, const Tensor &f,
                   Tensor &e, const ExecOptions &options)
{
    CHIMERA_CHECK(a.shape() == gemmChain3ShapeA(config) &&
                      b.shape() == gemmChain3ShapeB(config) &&
                      d.shape() == gemmChain3ShapeD(config) &&
                      f.shape() == gemmChain3ShapeF(config) &&
                      e.shape() == gemmChain3ShapeE(config),
                  "three-GEMM chain tensor shape mismatch");

    const ir::Chain chain = ir::makeGemmChain3(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const std::int64_t tb = tileOf(chain, plan, "b", 1);
    const std::int64_t tm = tileOf(chain, plan, "m", config.m);
    const std::int64_t tn = tileOf(chain, plan, "n", config.n);
    const std::int64_t tk = tileOf(chain, plan, "k", config.k);
    const std::int64_t tl = tileOf(chain, plan, "l", config.l);
    CHIMERA_CHECK(tileOf(chain, plan, "p", config.p) == config.p,
                  "the fused 3-chain executor requires T_P = P");
    CHIMERA_CHECK(config.epilogue != Epilogue::Softmax || tl == config.l,
                  "the fused attention chain requires T_L = L (full"
                  " scores row on chip for the softmax)");

    const std::int64_t M = config.m, N = config.n, K = config.k,
                       L = config.l, P = config.p;

    // Split the b/m region loops by the plan's concurrency table
    // (dependence-analysis output). Under a sound table every (b, m)
    // region is independent — it owns its C1 tile and C2 panel and
    // writes disjoint E rows — and splits across workers; the l and k
    // reduction loops stay serial ascending inside a region, keeping
    // the output bits identical to the serial executor at every thread
    // count.
    const RegionSchedule sched =
        partitionRegionLoops(chain3RegionLoops(chain, config, plan),
                             plan::effectiveConcurrency(chain, plan),
                             plan.parallelGrain);

    ThreadPool *pool = execPool(options);
    const int workers = execWorkerCount(pool);
    ChunkProfile *profile = options.profile;

    analysis::RaceChecker *race = options.raceCheck;
    if (race != nullptr) {
        CHIMERA_CHECK(race->numElements() == e.numel(),
                      "race checker must be sized to the E output");
        race->beginPhase(chain.name() + " fused blocks");
    }
    std::vector<AlignedBuffer<float>> c1Tiles, c2Panels;
    c1Tiles.reserve(static_cast<std::size_t>(workers));
    c2Panels.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        c1Tiles.push_back(allocateAligned<float>(
            static_cast<std::size_t>(tb * tm * tl)));
        c2Panels.push_back(allocateAligned<float>(
            static_cast<std::size_t>(tb * tm * P)));
    }
    e.zero();

    const std::int64_t chunks = sched.chunkCount();
    if (profile != nullptr) {
        profile->beginPhase(chunks);
    }
    // Unified clock: ChunkProfile and the trace share obs::nowNanos.
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span execSpan(tracer, "exec.chain3", "exec");
    execSpan.arg("chunks", chunks).arg("workers", workers);
    parallelFor(pool, 0, chunks, [&](std::int64_t chunk, int worker) {
        const std::int64_t chunkStart = obs::nowNanos();
        std::int64_t taskLo = -1;
        std::int64_t taskHi = -1;
        float *c1Tile = c1Tiles[static_cast<std::size_t>(worker)].get();
        float *c2Panel = c2Panels[static_cast<std::size_t>(worker)].get();
        sched.forEachTaskInChunk(chunk, [&](std::int64_t task) {
        if (taskLo < 0) {
            taskLo = task;
        }
        taskHi = task;
        const std::vector<BlockRange> parBlocks =
            decodeBlocks(sched.parallel, task);

        const std::int64_t steps = sched.serialSteps();
        for (std::int64_t step = 0; step < steps; ++step) {
        const std::vector<BlockRange> serBlocks =
            decodeBlocks(sched.serial, step);
        const BlockRange bBlk =
            findBlock(parBlocks, serBlocks, 'b', config.batch);
        const BlockRange mBlk = findBlock(parBlocks, serBlocks, 'm', M);
        const std::int64_t b0 = bBlk.start, bb = bBlk.size;
        const std::int64_t m0 = mBlk.start, mm = mBlk.size;

        // Shadow-memory claim: this task owns the E rows of its region.
        if (race != nullptr) {
            for (std::int64_t bi = 0; bi < bb; ++bi) {
                race->claimRange(task, ((b0 + bi) * M + m0) * N,
                                 ((b0 + bi) * M + m0 + mm) * N);
            }
        }

        std::memset(c2Panel, 0,
                    static_cast<std::size_t>(bb * mm * P) * sizeof(float));
        for (std::int64_t l0 = 0; l0 < L; l0 += tl) {
            const std::int64_t ll = std::min<std::int64_t>(tl, L - l0);
            std::memset(c1Tile, 0,
                        static_cast<std::size_t>(bb * mm * ll) *
                            sizeof(float));
            for (std::int64_t k0 = 0; k0 < K; k0 += tk) {
                const std::int64_t kk = std::min<std::int64_t>(tk, K - k0);
                for (std::int64_t bi = 0; bi < bb; ++bi) {
                    engine.matmul(
                        a.data() + ((b0 + bi) * M + m0) * K + k0, K,
                        b.data() + ((b0 + bi) * K + k0) * L + l0, L,
                        c1Tile + bi * mm * ll, ll, mm, ll, kk);
                }
            }
            if (config.epilogue == Epilogue::Relu) {
                for (std::int64_t i = 0; i < bb * mm * ll; ++i) {
                    c1Tile[i] = std::max(c1Tile[i], 0.0f);
                }
            } else if (config.epilogue == Epilogue::Softmax) {
                // T_L = L (checked above): the whole scores row is on
                // chip, so the softmax completes here — exp, row sum
                // and division — before GEMM2 consumes the region.
                for (std::int64_t bi = 0; bi < bb; ++bi) {
                    for (std::int64_t r = 0; r < mm; ++r) {
                        float *row = c1Tile + (bi * mm + r) * ll;
                        float sum = 0.0f;
                        for (std::int64_t j = 0; j < ll; ++j) {
                            row[j] = std::exp(config.softmaxScale *
                                              row[j]);
                            sum += row[j];
                        }
                        const float inv = 1.0f / sum;
                        for (std::int64_t j = 0; j < ll; ++j) {
                            row[j] *= inv;
                        }
                    }
                }
            }
            for (std::int64_t bi = 0; bi < bb; ++bi) {
                engine.matmul(c1Tile + bi * mm * ll, ll,
                              d.data() + ((b0 + bi) * L + l0) * P, P,
                              c2Panel + bi * mm * P, P, mm, P, ll);
            }
        }
        for (std::int64_t n0 = 0; n0 < N; n0 += tn) {
            const std::int64_t nn = std::min<std::int64_t>(tn, N - n0);
            for (std::int64_t bi = 0; bi < bb; ++bi) {
                engine.matmul(c2Panel + bi * mm * P, P,
                              f.data() + (b0 + bi) * P * N + n0, N,
                              e.data() + ((b0 + bi) * M + m0) * N + n0, N,
                              mm, nn, P);
            }
        }
        }
        });
        const std::int64_t chunkNanos = obs::nowNanos() - chunkStart;
        if (profile != nullptr) {
            profile->recordChunk(
                chunk, static_cast<double>(chunkNanos) * 1e-9);
        }
        if (tracer != nullptr) {
            tracer->complete("exec.chunk", "exec", chunkStart, chunkNanos,
                             {{"chunk", chunk},
                              {"worker", static_cast<std::int64_t>(worker)},
                              {"task_lo", taskLo},
                              {"task_hi", taskHi}});
        }
    });
}

std::vector<std::string>
fusedGemmChain3ParallelAxes(const GemmChain3Config &config,
                            const plan::ExecutionPlan &plan)
{
    const ir::Chain chain = ir::makeGemmChain3(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const RegionSchedule sched =
        partitionRegionLoops(chain3RegionLoops(chain, config, plan),
                             plan::effectiveConcurrency(chain, plan));
    std::vector<std::string> names;
    for (const RegionLoop &loop : sched.parallel) {
        if (loop.axis >= 0) {
            names.push_back(
                chain.axes()[static_cast<std::size_t>(loop.axis)].name);
        }
    }
    return names;
}

void
runUnfusedGemmChain3(const GemmChain3Config &config,
                     const ComputeEngine &engine, const Tensor &a,
                     const Tensor &b, const Tensor &d, const Tensor &f,
                     Tensor &scratchC1, Tensor &scratchC2, Tensor &e,
                     const GemmTiles &tiles, const ExecOptions &options)
{
    CHIMERA_CHECK(scratchC1.shape() == shapeOf(config, config.m, config.l),
                  "C1 scratch shape mismatch");
    CHIMERA_CHECK(scratchC2.shape() == shapeOf(config, config.m, config.p),
                  "C2 scratch shape mismatch");
    // A race checker passed here is sized to the final E output; the
    // scratch-writing GEMMs run unchecked.
    ExecOptions scratchOptions = options;
    scratchOptions.raceCheck = nullptr;
    runTiledBatchGemm(engine, a, b, scratchC1, tiles, scratchOptions);
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(scratchC1);
    } else if (config.epilogue == Epilogue::Softmax) {
        float *p = scratchC1.data();
        for (std::int64_t i = 0; i < scratchC1.numel(); ++i) {
            p[i] *= config.softmaxScale;
        }
        ref::softmaxLastDim(scratchC1);
    }
    runTiledBatchGemm(engine, scratchC1, d, scratchC2, tiles,
                      scratchOptions);
    runTiledBatchGemm(engine, scratchC2, f, e, tiles, options);
}

void
referenceGemmChain3(const GemmChain3Config &config, const Tensor &a,
                    const Tensor &b, const Tensor &d, const Tensor &f,
                    Tensor &e)
{
    Tensor c1(shapeOf(config, config.m, config.l));
    Tensor c2(shapeOf(config, config.m, config.p));
    auto mm = [&](const Tensor &x, const Tensor &y, Tensor &z) {
        if (config.batch > 1) {
            ref::batchGemm(x, y, z);
        } else {
            ref::gemm(x, y, z);
        }
    };
    mm(a, b, c1);
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(c1);
    } else if (config.epilogue == Epilogue::Softmax) {
        float *p = c1.data();
        for (std::int64_t i = 0; i < c1.numel(); ++i) {
            p[i] *= config.softmaxScale;
        }
        ref::softmaxLastDim(c1);
    }
    mm(c1, d, c2);
    mm(c2, f, e);
}

} // namespace chimera::exec
