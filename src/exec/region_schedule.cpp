#include "exec/region_schedule.hpp"

#include <algorithm>

#include "support/mathutil.hpp"

namespace chimera::exec {

namespace {

std::int64_t
blockCount(const std::vector<RegionLoop> &loops)
{
    std::int64_t total = 1;
    for (const RegionLoop &loop : loops) {
        total *= ceilDiv(loop.extent, loop.tile);
    }
    return total;
}

} // namespace

std::int64_t
RegionSchedule::parallelTasks() const
{
    return blockCount(parallel);
}

std::int64_t
RegionSchedule::serialSteps() const
{
    return blockCount(serial);
}

std::int64_t
RegionSchedule::chunkCount() const
{
    if (grain.empty()) {
        return parallelTasks();
    }
    std::int64_t total = 1;
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        const std::int64_t blocks =
            ceilDiv(parallel[i].extent, parallel[i].tile);
        total *= ceilDiv(blocks, std::max<std::int64_t>(1, grain[i]));
    }
    return total;
}

void
RegionSchedule::forEachTaskInChunk(
    std::int64_t chunk, const std::function<void(std::int64_t)> &fn) const
{
    if (grain.empty()) {
        fn(chunk);
        return;
    }
    // Decode the chunk over the per-loop chunk grid (first loop
    // outermost, like decodeBlocks), yielding each loop's block
    // sub-range, then walk the Cartesian product of those sub-ranges
    // ascending and re-encode each point as a flat task index.
    const std::size_t n = parallel.size();
    std::vector<std::int64_t> blocks(n), lo(n), hi(n), idx(n), stride(n);
    for (std::size_t i = n; i-- > 0;) {
        blocks[i] = ceilDiv(parallel[i].extent, parallel[i].tile);
        const std::int64_t g = std::max<std::int64_t>(
            1, grain[i]);
        const std::int64_t chunks = ceilDiv(blocks[i], g);
        const std::int64_t c = chunk % chunks;
        chunk /= chunks;
        lo[i] = c * g;
        hi[i] = std::min(blocks[i], lo[i] + g);
        idx[i] = lo[i];
    }
    stride.assign(n, 1);
    for (std::size_t i = n; i-- > 1;) {
        stride[i - 1] = stride[i] * blocks[i];
    }
    for (;;) {
        std::int64_t flat = 0;
        for (std::size_t i = 0; i < n; ++i) {
            flat += idx[i] * stride[i];
        }
        fn(flat);
        // Odometer over the sub-ranges, innermost loop fastest.
        std::size_t d = n;
        while (d-- > 0) {
            if (++idx[d] < hi[d]) {
                break;
            }
            idx[d] = lo[d];
            if (d == 0) {
                return;
            }
        }
        if (d == static_cast<std::size_t>(-1)) {
            return;
        }
    }
}

RegionSchedule
partitionRegionLoops(const std::vector<RegionLoop> &loops,
                     const std::vector<analysis::AxisConcurrency> &table,
                     const std::vector<std::int64_t> &grainByAxis)
{
    RegionSchedule schedule;
    for (const RegionLoop &loop : loops) {
        const bool blessed =
            loop.axis < 0 ||
            (loop.axis < static_cast<ir::AxisId>(table.size()) &&
             table[static_cast<std::size_t>(loop.axis)] ==
                 analysis::AxisConcurrency::Parallel);
        if (blessed) {
            schedule.parallel.push_back(loop);
            const bool haveGrain =
                loop.axis >= 0 &&
                loop.axis < static_cast<ir::AxisId>(grainByAxis.size());
            schedule.grain.push_back(
                haveGrain ? std::max<std::int64_t>(
                                1, grainByAxis[static_cast<std::size_t>(
                                       loop.axis)])
                          : 1);
        } else {
            schedule.serial.push_back(loop);
        }
    }
    if (std::all_of(schedule.grain.begin(), schedule.grain.end(),
                    [](std::int64_t g) { return g == 1; })) {
        schedule.grain.clear(); // all-1 = identity; keep the fast path
    }
    return schedule;
}

std::vector<BlockRange>
decodeBlocks(const std::vector<RegionLoop> &loops, std::int64_t flat)
{
    std::vector<BlockRange> blocks(loops.size());
    for (std::size_t i = loops.size(); i-- > 0;) {
        const RegionLoop &loop = loops[i];
        const std::int64_t n = ceilDiv(loop.extent, loop.tile);
        const std::int64_t start = (flat % n) * loop.tile;
        flat /= n;
        blocks[i] = BlockRange{
            loop.tag, start,
            std::min<std::int64_t>(loop.tile, loop.extent - start)};
    }
    return blocks;
}

BlockRange
findBlock(const std::vector<BlockRange> &parallel,
          const std::vector<BlockRange> &serial, char tag,
          std::int64_t fullExtent)
{
    for (const BlockRange &block : parallel) {
        if (block.tag == tag) {
            return block;
        }
    }
    for (const BlockRange &block : serial) {
        if (block.tag == tag) {
            return block;
        }
    }
    return BlockRange{tag, 0, fullExtent};
}

} // namespace chimera::exec
