#include "exec/region_schedule.hpp"

#include <algorithm>

#include "support/mathutil.hpp"

namespace chimera::exec {

namespace {

std::int64_t
blockCount(const std::vector<RegionLoop> &loops)
{
    std::int64_t total = 1;
    for (const RegionLoop &loop : loops) {
        total *= ceilDiv(loop.extent, loop.tile);
    }
    return total;
}

} // namespace

std::int64_t
RegionSchedule::parallelTasks() const
{
    return blockCount(parallel);
}

std::int64_t
RegionSchedule::serialSteps() const
{
    return blockCount(serial);
}

RegionSchedule
partitionRegionLoops(const std::vector<RegionLoop> &loops,
                     const std::vector<analysis::AxisConcurrency> &table)
{
    RegionSchedule schedule;
    for (const RegionLoop &loop : loops) {
        const bool blessed =
            loop.axis < 0 ||
            (loop.axis < static_cast<ir::AxisId>(table.size()) &&
             table[static_cast<std::size_t>(loop.axis)] ==
                 analysis::AxisConcurrency::Parallel);
        (blessed ? schedule.parallel : schedule.serial).push_back(loop);
    }
    return schedule;
}

std::vector<BlockRange>
decodeBlocks(const std::vector<RegionLoop> &loops, std::int64_t flat)
{
    std::vector<BlockRange> blocks(loops.size());
    for (std::size_t i = loops.size(); i-- > 0;) {
        const RegionLoop &loop = loops[i];
        const std::int64_t n = ceilDiv(loop.extent, loop.tile);
        const std::int64_t start = (flat % n) * loop.tile;
        flat /= n;
        blocks[i] = BlockRange{
            loop.tag, start,
            std::min<std::int64_t>(loop.tile, loop.extent - start)};
    }
    return blocks;
}

BlockRange
findBlock(const std::vector<BlockRange> &parallel,
          const std::vector<BlockRange> &serial, char tag,
          std::int64_t fullExtent)
{
    for (const BlockRange &block : parallel) {
        if (block.tag == tag) {
            return block;
        }
    }
    for (const BlockRange &block : serial) {
        if (block.tag == tag) {
            return block;
        }
    }
    return BlockRange{tag, 0, fullExtent};
}

} // namespace chimera::exec
