#pragma once

/**
 * @file
 * The compute engine used inside one computation block: either the
 * replaceable micro kernel path (packed panels + register tiles) or the
 * naive strided loop nest. The ablation study's "micro kernel" knob
 * (Figure 10) toggles between the two.
 */

#include <cstdint>

#include "kernels/block_matmul.hpp"
#include "kernels/micro_kernel.hpp"

namespace chimera::exec {

/** Dispatches block matmuls to the selected implementation. */
class ComputeEngine
{
  public:
    /** Engine using the widest micro kernel for the running CPU. */
    static ComputeEngine best();

    /** Engine using the scalar reference micro kernel. */
    static ComputeEngine scalar();

    /** Engine bypassing micro kernels entirely (ablation v without M). */
    static ComputeEngine naive();

    /**
     * Engine backed by the emulated NPU cube-unit `mad` kernel (§V-B):
     * operands are packed into the fractal layout per block and the
     * six-loop mad computation runs on the host. Demonstrates the
     * replaceable-micro-kernel substitution at executor level — every
     * fused executor runs unchanged on this backend.
     */
    static ComputeEngine emulatedNpu();

    /** Engine backed by the emulated GPU mma 2x2-fragment kernel. */
    static ComputeEngine emulatedGpu();

    /** Engine pinned to a specific registered kernel. */
    explicit ComputeEngine(const kernels::MicroKernel &kernel);

    /**
     * C[m x n] += A[m x k] * B[k x n] on strided fp32 buffers.
     *
     * Thread-safe on a shared const engine: packing buffers come from a
     * per-thread workspace, so concurrent matmul calls from pool
     * workers never race (each worker reuses its own buffers).
     */
    void matmul(const float *a, std::int64_t lda, const float *b,
                std::int64_t ldb, float *c, std::int64_t ldc,
                std::int64_t m, std::int64_t n, std::int64_t k) const;

    /** Name for reports ("avx512_6x64", "naive", ...). */
    const char *name() const;

  private:
    enum class Backend
    {
        MicroKernel, ///< packed panels + registered CPU kernel
        Naive, ///< plain strided loops
        NpuMad, ///< emulated cube-unit mad (fractal packing)
        GpuMma, ///< emulated Tensor-Core fragments (2x2 tiles)
    };

    ComputeEngine() = default;

    Backend backend_ = Backend::Naive;
    const kernels::MicroKernel *kernel_ = nullptr;
};

} // namespace chimera::exec
