#include "exec/compute_engine.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "kernels/mma_tile.hpp"
#include "kernels/npu_mad.hpp"
#include "support/mathutil.hpp"

namespace chimera::exec {

namespace {

/**
 * Per-thread packing workspace. The engine used to hold one shared
 * `mutable Workspace`, which made even a `const ComputeEngine &` unsafe
 * to share across threads (concurrent matmul calls raced on the packing
 * buffers). Buffers grow monotonically and live for the thread's
 * lifetime, so pool workers pay the allocation once and reuse it across
 * every engine and every block.
 */
kernels::Workspace &
threadWorkspace()
{
    static thread_local kernels::Workspace workspace;
    return workspace;
}

/**
 * Strided, accumulating matmul through the emulated NPU mad kernel:
 * per (rows x cols x depth) block, operands are packed into the fractal
 * layout, the six-loop mad computation runs, and the packed result is
 * added back to C.
 */
void
madStridedMatmul(const float *a, std::int64_t lda, const float *b,
                 std::int64_t ldb, float *c, std::int64_t ldc,
                 std::int64_t m, std::int64_t n, std::int64_t k)
{
    kernels::MadShape shape;
    shape.m1 = 4;
    shape.n1 = 4;
    shape.k1 = 4;
    shape.m2 = 16;
    shape.n2 = 16;
    shape.k2 = 16;

    std::vector<float> aPack(static_cast<std::size_t>(shape.m1 * shape.k1 *
                                                      shape.m2 * shape.k2));
    std::vector<float> bPack(static_cast<std::size_t>(shape.k1 * shape.n1 *
                                                      shape.n2 * shape.k2));
    std::vector<float> cPack(static_cast<std::size_t>(shape.m1 * shape.n1 *
                                                      shape.m2 * shape.n2));
    for (std::int64_t m0 = 0; m0 < m; m0 += shape.rows()) {
        const std::int64_t rows =
            std::min<std::int64_t>(shape.rows(), m - m0);
        for (std::int64_t n0 = 0; n0 < n; n0 += shape.cols()) {
            const std::int64_t cols =
                std::min<std::int64_t>(shape.cols(), n - n0);
            std::fill(cPack.begin(), cPack.end(), 0.0f);
            for (std::int64_t k0 = 0; k0 < k; k0 += shape.depth()) {
                const std::int64_t depth =
                    std::min<std::int64_t>(shape.depth(), k - k0);
                kernels::packMadA(a + m0 * lda + k0, lda, rows, depth,
                                  shape, aPack.data());
                kernels::packMadB(b + k0 * ldb + n0, ldb, depth, cols,
                                  shape, bPack.data());
                kernels::madCompute(aPack.data(), bPack.data(),
                                    cPack.data(), shape);
            }
            kernels::unpackMadC(cPack.data(), shape, c + m0 * ldc + n0,
                                ldc, rows, cols);
        }
    }
}

/**
 * Strided, accumulating matmul through the emulated GPU mma kernel:
 * operands are zero-padded into fragment-aligned staging tensors, the
 * 2x2-tile mma schedule runs, and the valid region is added back.
 */
void
mmaStridedMatmul(const float *a, std::int64_t lda, const float *b,
                 std::int64_t ldb, float *c, std::int64_t ldc,
                 std::int64_t m, std::int64_t n, std::int64_t k)
{
    const std::int64_t step = 2 * kernels::kMmaDim;
    const std::int64_t mp = roundUp(m, step);
    const std::int64_t np = roundUp(n, step);
    const std::int64_t kp = roundUp(k, step);

    Tensor aPad({mp, kp});
    Tensor bPad({kp, np});
    Tensor cPad({mp, np});
    aPad.zero();
    bPad.zero();
    for (std::int64_t i = 0; i < m; ++i) {
        std::memcpy(aPad.data() + i * kp, a + i * lda,
                    static_cast<std::size_t>(k) * sizeof(float));
    }
    for (std::int64_t i = 0; i < k; ++i) {
        std::memcpy(bPad.data() + i * np, b + i * ldb,
                    static_cast<std::size_t>(n) * sizeof(float));
    }
    (void)kernels::mmaMatmulTiled(aPad, bPad, cPad);
    for (std::int64_t i = 0; i < m; ++i) {
        const float *src = cPad.data() + i * np;
        float *dst = c + i * ldc;
        for (std::int64_t j = 0; j < n; ++j) {
            dst[j] += src[j];
        }
    }
}

} // namespace

ComputeEngine::ComputeEngine(const kernels::MicroKernel &kernel)
    : backend_(Backend::MicroKernel), kernel_(&kernel)
{
}

ComputeEngine
ComputeEngine::best()
{
    return ComputeEngine(
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
}

ComputeEngine
ComputeEngine::scalar()
{
    return ComputeEngine(
        kernels::MicroKernelRegistry::instance().select(SimdTier::Scalar));
}

ComputeEngine
ComputeEngine::naive()
{
    ComputeEngine engine;
    engine.backend_ = Backend::Naive;
    return engine;
}

ComputeEngine
ComputeEngine::emulatedNpu()
{
    ComputeEngine engine;
    engine.backend_ = Backend::NpuMad;
    return engine;
}

ComputeEngine
ComputeEngine::emulatedGpu()
{
    ComputeEngine engine;
    engine.backend_ = Backend::GpuMma;
    return engine;
}

void
ComputeEngine::matmul(const float *a, std::int64_t lda, const float *b,
                      std::int64_t ldb, float *c, std::int64_t ldc,
                      std::int64_t m, std::int64_t n, std::int64_t k) const
{
    switch (backend_) {
      case Backend::MicroKernel:
        kernels::blockMatmul(*kernel_, a, lda, b, ldb, c, ldc, m, n, k,
                             threadWorkspace());
        return;
      case Backend::Naive:
        kernels::naiveBlockMatmul(a, lda, b, ldb, c, ldc, m, n, k);
        return;
      case Backend::NpuMad:
        madStridedMatmul(a, lda, b, ldb, c, ldc, m, n, k);
        return;
      case Backend::GpuMma:
        mmaStridedMatmul(a, lda, b, ldb, c, ldc, m, n, k);
        return;
    }
}

const char *
ComputeEngine::name() const
{
    switch (backend_) {
      case Backend::MicroKernel: return kernel_->name.c_str();
      case Backend::Naive: return "naive";
      case Backend::NpuMad: return "npu_mad_emulated";
      case Backend::GpuMma: return "gpu_mma_emulated";
    }
    return "?";
}

} // namespace chimera::exec
