#include "exec/constraints.hpp"

#include <algorithm>

namespace chimera::exec {

solver::TileConstraints
cpuChainConstraints(const ir::Chain &chain,
                    const kernels::MicroKernel &kernel)
{
    solver::TileConstraints constraints;
    for (ir::AxisId a = 0; a < chain.numAxes(); ++a) {
        const ir::Axis &axis = chain.axes()[static_cast<std::size_t>(a)];
        if (!axis.reorderable) {
            continue; // kernel axes are pinned by the planner
        }
        const std::string &name = axis.name;
        if (name == "b") {
            constraints.fixed[a] = 1;
        } else if (name == "n" || name == "l") {
            if (axis.extent >= kernel.nr) {
                constraints.multipleOf[a] = kernel.nr;
            }
        } else if (name == "m") {
            if (axis.extent >= kernel.mr) {
                constraints.multipleOf[a] = kernel.mr;
            }
        } else if (name == "k") {
            constraints.minTile[a] =
                std::min<std::int64_t>(axis.extent, 256);
        } else if (name == "oc1" || name == "oc2") {
            if (axis.extent >= kernel.mr) {
                constraints.multipleOf[a] = kernel.mr;
            }
            if (name == "oc1") {
                // oc1 is the consumer's reduction depth: keep it large
                // enough to amortize packing and accumulator traffic.
                constraints.minTile[a] =
                    std::min<std::int64_t>(axis.extent, 48);
            }
        } else if (name == "ow") {
            // The conv executors issue one matmul per output row with
            // N = the ow tile: keep it at least the micro-kernel width
            // (full extent when the image is narrower).
            constraints.multipleOf[a] = kernel.nr;
        } else if (name == "ic") {
            constraints.minTile[a] =
                std::min<std::int64_t>(axis.extent, 64);
        } else if (name == "oh") {
            // Row tiles can stay small: with a halo'd full-width input
            // slice the footprint grows quickly in oh.
            constraints.minTile[a] =
                std::min<std::int64_t>(axis.extent, 4);
        } else {
            constraints.minTile[a] =
                std::min<std::int64_t>(axis.extent, 16);
        }
    }
    return constraints;
}

} // namespace chimera::exec
