#pragma once

/**
 * @file
 * Table-driven region-loop scheduling for the fused executors.
 *
 * Every fused executor walks a handful of blocked "region" loops (the
 * chain axes its on-chip regions are blocked over, in plan order) and
 * distributes some of them across workers. Which ones used to be
 * hardcoded; now the split is decided by the plan's AxisConcurrency
 * table: a region loop joins the parallel task space iff its axis is
 * classified Parallel, every other loop runs serially ascending inside
 * each task. An executor therefore *refuses* to parallelize an axis
 * the dependence analysis (or the plan document) did not bless — and,
 * conversely, honors a plan that mis-declares a reduction axis as
 * parallel, which is exactly what lets the dynamic race checker catch
 * such plans (see analysis/race_checker.hpp).
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/dependence.hpp"
#include "ir/axis.hpp"

namespace chimera::exec {

/** One blocked region loop of a fused executor's outer walk. */
struct RegionLoop
{
    char tag = '?'; ///< executor-local label ('b', 'm', 'l', ...)
    std::int64_t extent = 1;
    std::int64_t tile = 1;
    ir::AxisId axis = -1; ///< -1 = synthesized (e.g. unit batch loop)
};

/** One decoded block of a region loop. */
struct BlockRange
{
    char tag = '?';
    std::int64_t start = 0;
    std::int64_t size = 1;
};

/** Region loops split into a parallel task space and serial loops. */
struct RegionSchedule
{
    /** Loops whose blocks split across workers, in plan order. */
    std::vector<RegionLoop> parallel;

    /** Loops run serially ascending inside each task, in plan order. */
    std::vector<RegionLoop> serial;

    /**
     * Blocks per dispatch chunk for each parallel loop (aligned with
     * @ref parallel; empty = all 1). Filled from the plan's
     * parallelGrain by partitionRegionLoops so one worker task covers
     * grain consecutive blocks of that loop, processed serially
     * ascending — chunking never changes what a block computes, only
     * how many ride in one dispatch.
     */
    std::vector<std::int64_t> grain;

    /** Flattened parallel task count (1 when nothing is parallel). */
    std::int64_t parallelTasks() const;

    /** Serial block combinations per task. */
    std::int64_t serialSteps() const;

    /** Dispatch chunks under @ref grain (== parallelTasks() when 1s). */
    std::int64_t chunkCount() const;

    /**
     * Calls @p fn once per flat parallel-task index covered by dispatch
     * chunk @p chunk, ascending. Flat indices are the same mixed-radix
     * encoding decodeBlocks expects, so per-task work (and race-checker
     * task ids) is identical at every grain.
     */
    void forEachTaskInChunk(
        std::int64_t chunk,
        const std::function<void(std::int64_t)> &fn) const;
};

/**
 * Splits @p loops by the per-axis concurrency @p table (indexed by
 * AxisId): Parallel axes and synthesized loops go to the task space,
 * everything else stays serial. Relative order is preserved.
 * @p grainByAxis is the plan's parallelGrain (indexed by AxisId; empty
 * = all 1): grains of parallel loops are carried into the schedule,
 * synthesized loops (axis < 0) always get grain 1.
 */
RegionSchedule
partitionRegionLoops(const std::vector<RegionLoop> &loops,
                     const std::vector<analysis::AxisConcurrency> &table,
                     const std::vector<std::int64_t> &grainByAxis = {});

/**
 * Decodes flat index @p flat over @p loops (mixed radix, first loop
 * outermost / slowest) into one block per loop. Iterating flat indices
 * ascending therefore reproduces the nested ascending loop order.
 */
std::vector<BlockRange>
decodeBlocks(const std::vector<RegionLoop> &loops, std::int64_t flat);

/**
 * Finds the block for @p tag in either decoded list; falls back to
 * [0, fullExtent) when the tag is not a region loop of this plan.
 */
BlockRange findBlock(const std::vector<BlockRange> &parallel,
                     const std::vector<BlockRange> &serial, char tag,
                     std::int64_t fullExtent);

} // namespace chimera::exec
