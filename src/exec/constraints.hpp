#pragma once

/**
 * @file
 * Executor-aware tile constraints for CPU planning.
 *
 * The analytical model is indifferent to several tile choices (free
 * variables sit at the paper's alpha bound), but the micro kernel is
 * not: matmul width should be a multiple of the kernel's NR, rows a
 * multiple of MR, and the reduction depth long enough to amortize the
 * accumulator load/store. These constraints feed the solver's candidate
 * lattice so planned tiles are efficient to execute — the intra-block
 * half of the paper's co-design.
 */

#include "ir/chain.hpp"
#include "kernels/micro_kernel.hpp"
#include "solver/tile_solver.hpp"

namespace chimera::exec {

/**
 * Constraints for a chain executed by the CPU executors with
 * @p kernel. Handles both GEMM chains and conv chains by axis name:
 *  - "b": fixed to 1 (batch elements are processed independently);
 *  - GEMM "n"/"l": multiples of NR (micro-kernel width);
 *  - GEMM "m": multiples of MR;
 *  - GEMM "k": at least min(extent, 256) so kc amortizes C traffic;
 *  - conv "oc1"/"oc2": multiples of MR (they are matmul row dims);
 *  - other axes: the paper's alpha lower bound (16).
 */
solver::TileConstraints cpuChainConstraints(
    const ir::Chain &chain, const kernels::MicroKernel &kernel);

} // namespace chimera::exec
