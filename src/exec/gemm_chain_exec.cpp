#include "exec/gemm_chain_exec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "exec/chunk_profile.hpp"
#include "exec/region_schedule.hpp"
#include "ir/builders.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/timer.hpp"
#include "tensor/reference.hpp"

namespace chimera::exec {

using ir::Epilogue;
using ir::GemmChainConfig;

namespace {

std::int64_t
tileOf(const ir::Chain &chain, const plan::ExecutionPlan &plan,
       const std::string &name, std::int64_t fallback)
{
    for (int a = 0; a < chain.numAxes(); ++a) {
        if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
            return plan.tiles[static_cast<std::size_t>(a)];
        }
    }
    return fallback;
}

void
checkShape(const Tensor &t, const std::vector<std::int64_t> &expected,
           const char *what)
{
    CHIMERA_CHECK(t.shape() == expected,
                  std::string("unexpected shape for ") + what + ": got " +
                      t.shapeString());
}

/**
 * Region loops of the fused gemm-chain walk — the b/m/l blocks the plan
 * decomposed the chain into, in plan order, each carrying its AxisId so
 * the concurrency table can bless or refuse it. A unit batch loop is
 * synthesized (axis -1, trivially parallel) when the chain has no b axis.
 */
std::vector<RegionLoop>
gemmRegionLoops(const ir::Chain &chain, const GemmChainConfig &config,
                const plan::ExecutionPlan &plan)
{
    const std::int64_t tb = tileOf(chain, plan, "b", 1);
    const std::int64_t tm = tileOf(chain, plan, "m", config.m);
    const std::int64_t tl = tileOf(chain, plan, "l", config.l);
    std::vector<RegionLoop> loops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            loops.push_back(RegionLoop{'b', config.batch, tb, axis});
        } else if (name == "m") {
            loops.push_back(RegionLoop{'m', config.m, tm, axis});
        } else if (name == "l") {
            loops.push_back(RegionLoop{'l', config.l, tl, axis});
        }
    }
    if (config.batch == 1) {
        loops.insert(loops.begin(), RegionLoop{'b', 1, 1, -1});
    }
    CHIMERA_ASSERT(loops.size() == 3, "missing region loop");
    return loops;
}

/** Sets future positions of the scores tensor to -inf before softmax. */
void
applyCausalMask(Tensor &scores, const GemmChainConfig &config)
{
    const std::int64_t rows = config.m;
    const std::int64_t cols = config.l;
    float *p = scores.data();
    for (std::int64_t b = 0; b < config.batch; ++b) {
        for (std::int64_t r = 0; r < rows; ++r) {
            float *row = p + (b * rows + r) * cols;
            for (std::int64_t j = r + 1; j < cols; ++j) {
                row[j] = -std::numeric_limits<float>::infinity();
            }
        }
    }
}

} // namespace

std::vector<std::int64_t>
gemmChainShapeA(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.m, c.k}
                       : std::vector<std::int64_t>{c.m, c.k};
}

std::vector<std::int64_t>
gemmChainShapeB(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.k, c.l}
                       : std::vector<std::int64_t>{c.k, c.l};
}

std::vector<std::int64_t>
gemmChainShapeD(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.l, c.n}
                       : std::vector<std::int64_t>{c.l, c.n};
}

std::vector<std::int64_t>
gemmChainShapeE(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.m, c.n}
                       : std::vector<std::int64_t>{c.m, c.n};
}

std::vector<std::int64_t>
gemmChainShapeC(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.m, c.l}
                       : std::vector<std::int64_t>{c.m, c.l};
}

void
runFusedGemmChain(const GemmChainConfig &config,
                  const plan::ExecutionPlan &plan,
                  const ComputeEngine &engine, const Tensor &a,
                  const Tensor &b, const Tensor &d, Tensor &e,
                  const ExecOptions &options)
{
    checkShape(a, gemmChainShapeA(config), "A");
    checkShape(b, gemmChainShapeB(config), "B");
    checkShape(d, gemmChainShapeD(config), "D");
    checkShape(e, gemmChainShapeE(config), "E");

    // Recover per-axis tiles by name from the plan (the chain that
    // produced the plan must match the config).
    const ir::Chain chain = ir::makeGemmChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const std::int64_t tb = tileOf(chain, plan, "b", 1);
    const std::int64_t tm = tileOf(chain, plan, "m", config.m);
    const std::int64_t tn = tileOf(chain, plan, "n", config.n);
    const std::int64_t tk = tileOf(chain, plan, "k", config.k);
    const std::int64_t tl = tileOf(chain, plan, "l", config.l);

    const std::int64_t bigM = config.m;
    const std::int64_t bigN = config.n;
    const std::int64_t bigK = config.k;
    const std::int64_t bigL = config.l;

    // Split the region loops into the parallel task space and the serial
    // nest by the plan's concurrency table (dependence analysis output —
    // this executor holds no axis-level opinion of its own). Under a
    // sound table b/m are parallel (distinct blocks write disjoint E
    // rows and softmax row sums) while l — which accumulates into E via
    // GEMM2 and into rowSum — stays serial ascending inside each task,
    // so the per-element accumulation order and the output bits match
    // the serial executor at every thread count.
    const RegionSchedule sched =
        partitionRegionLoops(gemmRegionLoops(chain, config, plan),
                             plan::effectiveConcurrency(chain, plan),
                             plan.parallelGrain);

    ThreadPool *pool = execPool(options);
    const int workers = execWorkerCount(pool);
    ChunkProfile *profile = options.profile;

    analysis::RaceChecker *race = options.raceCheck;
    if (race != nullptr) {
        CHIMERA_CHECK(race->numElements() == e.numel(),
                      "race checker must be sized to the E output");
        race->beginPhase(chain.name() + " fused blocks");
    }

    // On-chip region buffer for C (one per worker) and the softmax
    // row-sum side buffer (shared; blocks write disjoint rows).
    std::vector<AlignedBuffer<float>> cRegions;
    cRegions.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        cRegions.push_back(allocateAligned<float>(
            static_cast<std::size_t>(tb * tm * tl)));
    }
    std::vector<float> rowSum;
    if (config.epilogue == Epilogue::Softmax) {
        rowSum.assign(static_cast<std::size_t>(config.batch * bigM), 0.0f);
    }
    e.zero();

    const std::int64_t perBatchA = bigM * bigK;
    const std::int64_t perBatchB = bigK * bigL;
    const std::int64_t perBatchD = bigL * bigN;
    const std::int64_t perBatchE = bigM * bigN;

    // Dispatch over chunks (grain consecutive blocks per worker task);
    // each covered block executes exactly as it would at grain 1, so
    // outputs — and race-checker task ids — are grain-invariant.
    const std::int64_t chunks = sched.chunkCount();
    if (profile != nullptr) {
        profile->beginPhase(chunks);
    }
    // One clock (obs::nowNanos) feeds both the ChunkProfile critical
    // path and the trace spans, so their timelines agree exactly.
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span execSpan(tracer, "exec.gemm_chain", "exec");
    execSpan.arg("chunks", chunks).arg("workers", workers);
    parallelFor(pool, 0, chunks, [&](std::int64_t chunk, int worker) {
        const std::int64_t chunkStart = obs::nowNanos();
        std::int64_t taskLo = -1;
        std::int64_t taskHi = -1;
        float *cBase = cRegions[static_cast<std::size_t>(worker)].get();
        sched.forEachTaskInChunk(chunk, [&](std::int64_t task) {
        if (taskLo < 0) {
            taskLo = task;
        }
        taskHi = task;
        const std::vector<BlockRange> parBlocks =
            decodeBlocks(sched.parallel, task);

        const std::int64_t steps = sched.serialSteps();
        for (std::int64_t s = 0; s < steps; ++s) {
            const std::vector<BlockRange> serBlocks =
                decodeBlocks(sched.serial, s);
            const BlockRange bBlk =
                findBlock(parBlocks, serBlocks, 'b', config.batch);
            const BlockRange mBlk =
                findBlock(parBlocks, serBlocks, 'm', bigM);
            const BlockRange lBlk =
                findBlock(parBlocks, serBlocks, 'l', bigL);
            const std::int64_t b0 = bBlk.start, bb = bBlk.size;
            const std::int64_t m0 = mBlk.start, mm = mBlk.size;
            const std::int64_t l0 = lBlk.start, ll = lBlk.size;

            // Shadow-memory claim: this task owns the E rows the block
            // writes; two tasks claiming a row is a detected race.
            if (race != nullptr) {
                for (std::int64_t bi = 0; bi < bb; ++bi) {
                    race->claimRange(task,
                                     ((b0 + bi) * bigM + m0) * bigN,
                                     ((b0 + bi) * bigM + m0 + mm) * bigN);
                }
            }
            std::memset(cBase, 0,
                        static_cast<std::size_t>(bb * mm * ll) *
                            sizeof(float));

            // GEMM1: accumulate all k blocks into the region.
            for (std::int64_t k0 = 0; k0 < bigK; k0 += tk) {
                const std::int64_t kk =
                    std::min<std::int64_t>(tk, bigK - k0);
                for (std::int64_t bi = 0; bi < bb; ++bi) {
                    const float *aBlk = a.data() +
                                        (b0 + bi) * perBatchA +
                                        m0 * bigK + k0;
                    const float *bBlk = b.data() +
                                        (b0 + bi) * perBatchB +
                                        k0 * bigL + l0;
                    engine.matmul(aBlk, bigK, bBlk, bigL,
                                  cBase + bi * mm * ll, ll, mm, ll, kk);
                }
            }

            // Fused epilogue on the on-chip region.
            if (config.epilogue == Epilogue::Relu) {
                for (std::int64_t i = 0; i < bb * mm * ll; ++i) {
                    cBase[i] = std::max(cBase[i], 0.0f);
                }
            } else if (config.epilogue == Epilogue::Softmax) {
                // exp now; sum rides along; division deferred (§VI-B).
                // Causal masking zeroes future positions (global
                // column l0+j beyond global row m0+r) on chip, so
                // the deferred normalization stays exact.
                for (std::int64_t bi = 0; bi < bb; ++bi) {
                    for (std::int64_t r = 0; r < mm; ++r) {
                        float *row = cBase + (bi * mm + r) * ll;
                        float sum = 0.0f;
                        const std::int64_t lastValid =
                            config.causalMask ? (m0 + r) - l0
                                              : ll - 1;
                        for (std::int64_t j = 0; j < ll; ++j) {
                            if (j > lastValid) {
                                row[j] = 0.0f;
                                continue;
                            }
                            row[j] = std::exp(config.softmaxScale *
                                              row[j]);
                            sum += row[j];
                        }
                        rowSum[static_cast<std::size_t>(
                            (b0 + bi) * bigM + m0 + r)] += sum;
                    }
                }
            }

            // GEMM2: consume the region across all n blocks.
            for (std::int64_t n0 = 0; n0 < bigN; n0 += tn) {
                const std::int64_t nn =
                    std::min<std::int64_t>(tn, bigN - n0);
                for (std::int64_t bi = 0; bi < bb; ++bi) {
                    const float *dBlk = d.data() +
                                        (b0 + bi) * perBatchD +
                                        l0 * bigN + n0;
                    float *eBlk = e.data() + (b0 + bi) * perBatchE +
                                  m0 * bigN + n0;
                    engine.matmul(cBase + bi * mm * ll, ll, dBlk, bigN,
                                  eBlk, bigN, mm, nn, ll);
                }
            }
        }
        });
        const std::int64_t chunkNanos = obs::nowNanos() - chunkStart;
        if (profile != nullptr) {
            profile->recordChunk(
                chunk, static_cast<double>(chunkNanos) * 1e-9);
        }
        if (tracer != nullptr) {
            tracer->complete("exec.chunk", "exec", chunkStart, chunkNanos,
                             {{"chunk", chunk},
                              {"worker", static_cast<std::int64_t>(worker)},
                              {"task_lo", taskLo},
                              {"task_hi", taskHi}});
        }
    });

    // Deferred softmax division over the finished output; rows are
    // independent, so they split freely across workers. One span for
    // the whole phase — per-row events would swamp the trace.
    if (config.epilogue == Epilogue::Softmax) {
        if (race != nullptr) {
            race->beginPhase(chain.name() + " softmax normalize");
        }
        const std::int64_t rows = config.batch * bigM;
        obs::Span normSpan(tracer, "exec.softmax_norm", "exec");
        normSpan.arg("rows", rows);
        if (profile != nullptr) {
            profile->beginPhase(rows);
        }
        parallelFor(pool, 0, rows,
                    [&](std::int64_t row, int) {
                        const WallTimer rowTimer;
                        if (race != nullptr) {
                            race->claimRange(row, row * bigN,
                                             (row + 1) * bigN);
                        }
                        const float inv =
                            1.0f / rowSum[static_cast<std::size_t>(row)];
                        float *p = e.data() + row * bigN;
                        for (std::int64_t j = 0; j < bigN; ++j) {
                            p[j] *= inv;
                        }
                        if (profile != nullptr) {
                            profile->recordChunk(row,
                                                 rowTimer.seconds());
                        }
                    });
    }
}

std::vector<std::string>
fusedGemmChainParallelAxes(const GemmChainConfig &config,
                           const plan::ExecutionPlan &plan)
{
    const ir::Chain chain = ir::makeGemmChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const RegionSchedule sched =
        partitionRegionLoops(gemmRegionLoops(chain, config, plan),
                             plan::effectiveConcurrency(chain, plan));
    std::vector<std::string> names;
    for (const RegionLoop &loop : sched.parallel) {
        if (loop.axis >= 0) {
            names.push_back(
                chain.axes()[static_cast<std::size_t>(loop.axis)].name);
        }
    }
    return names;
}

void
runTiledBatchGemm(const ComputeEngine &engine, const Tensor &a,
                  const Tensor &b, Tensor &c, const GemmTiles &tiles,
                  const ExecOptions &options)
{
    const bool batched = a.rank() == 3;
    CHIMERA_CHECK(a.rank() == b.rank() && a.rank() == c.rank() &&
                      (a.rank() == 2 || a.rank() == 3),
                  "tiled GEMM expects rank 2 or 3 tensors");
    const std::int64_t batch = batched ? a.shape()[0] : 1;
    const std::int64_t m = a.shape()[batched ? 1 : 0];
    const std::int64_t k = a.shape()[batched ? 2 : 1];
    const std::int64_t n = b.shape()[batched ? 2 : 1];
    CHIMERA_CHECK(b.shape()[batched ? 1 : 0] == k &&
                      c.shape()[batched ? 1 : 0] == m &&
                      c.shape()[batched ? 2 : 1] == n,
                  "tiled GEMM shape mismatch");

    c.zero();
    analysis::RaceChecker *race = options.raceCheck;
    if (race != nullptr) {
        CHIMERA_CHECK(race->numElements() == c.numel(),
                      "race checker must be sized to the GEMM output");
        race->beginPhase("tiled batch gemm");
    }
    // (batch, m-tile) blocks own disjoint C rows; the k loop accumulates
    // and stays serial ascending inside each block (bitwise-reproducible
    // across thread counts).
    const std::int64_t mTiles = ceilDiv(m, tiles.tm);
    const std::int64_t tasks = batch * mTiles;
    ChunkProfile *profile = options.profile;
    if (profile != nullptr) {
        profile->beginPhase(tasks);
    }
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span execSpan(tracer, "exec.tiled_gemm", "exec");
    execSpan.arg("tasks", tasks);
    parallelFor(execPool(options), 0, tasks,
                [&](std::int64_t task, int worker) {
        const std::int64_t taskStart = obs::nowNanos();
        const std::int64_t bi = task / mTiles;
        const std::int64_t m0 = (task % mTiles) * tiles.tm;
        const float *aBase = a.data() + bi * m * k;
        const float *bBase = b.data() + bi * k * n;
        float *cBase = c.data() + bi * m * n;
        const std::int64_t mm = std::min<std::int64_t>(tiles.tm, m - m0);
        if (race != nullptr) {
            race->claimRange(task, bi * m * n + m0 * n,
                             bi * m * n + (m0 + mm) * n);
        }
        for (std::int64_t k0 = 0; k0 < k; k0 += tiles.tk) {
            const std::int64_t kk =
                std::min<std::int64_t>(tiles.tk, k - k0);
            for (std::int64_t n0 = 0; n0 < n; n0 += tiles.tn) {
                const std::int64_t nn =
                    std::min<std::int64_t>(tiles.tn, n - n0);
                engine.matmul(aBase + m0 * k + k0, k,
                              bBase + k0 * n + n0, n,
                              cBase + m0 * n + n0, n, mm, nn, kk);
            }
        }
        const std::int64_t taskNanos = obs::nowNanos() - taskStart;
        if (profile != nullptr) {
            profile->recordChunk(
                task, static_cast<double>(taskNanos) * 1e-9);
        }
        if (tracer != nullptr) {
            tracer->complete("exec.chunk", "exec", taskStart, taskNanos,
                             {{"chunk", task},
                              {"worker",
                               static_cast<std::int64_t>(worker)}});
        }
    });
}

void
runUnfusedGemmChain(const GemmChainConfig &config,
                    const ComputeEngine &engine, const Tensor &a,
                    const Tensor &b, const Tensor &d, Tensor &scratchC,
                    Tensor &e, const GemmTiles &tiles1,
                    const GemmTiles &tiles2, const ExecOptions &options)
{
    checkShape(scratchC, gemmChainShapeC(config), "C scratch");
    // A race checker passed here is sized to the final E output; the
    // first GEMM writes the differently-shaped scratch, so it runs
    // unchecked.
    ExecOptions firstOptions = options;
    firstOptions.raceCheck = nullptr;
    runTiledBatchGemm(engine, a, b, scratchC, tiles1, firstOptions);
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(scratchC);
    } else if (config.epilogue == Epilogue::Softmax) {
        float *p = scratchC.data();
        for (std::int64_t i = 0; i < scratchC.numel(); ++i) {
            p[i] *= config.softmaxScale;
        }
        if (config.causalMask) {
            applyCausalMask(scratchC, config);
        }
        ref::softmaxLastDim(scratchC);
    }
    runTiledBatchGemm(engine, scratchC, d, e, tiles2, options);
}

void
referenceGemmChain(const GemmChainConfig &config, const Tensor &a,
                   const Tensor &b, const Tensor &d, Tensor &e)
{
    Tensor c(gemmChainShapeC(config));
    if (config.batch > 1) {
        ref::batchGemm(a, b, c);
    } else {
        ref::gemm(a, b, c);
    }
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(c);
    } else if (config.epilogue == Epilogue::Softmax) {
        float *p = c.data();
        for (std::int64_t i = 0; i < c.numel(); ++i) {
            p[i] *= config.softmaxScale;
        }
        if (config.causalMask) {
            applyCausalMask(c, config);
        }
        ref::softmaxLastDim(c);
    }
    if (config.batch > 1) {
        ref::batchGemm(c, d, e);
    } else {
        ref::gemm(c, d, e);
    }
}

} // namespace chimera::exec
