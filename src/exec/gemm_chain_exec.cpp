#include "exec/gemm_chain_exec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "ir/builders.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "tensor/reference.hpp"

namespace chimera::exec {

using ir::Epilogue;
using ir::GemmChainConfig;

namespace {

/** One blocked loop of the region walk. */
struct BlockedAxis
{
    char name = '?'; ///< 'b', 'm' or 'l'.
    std::int64_t extent = 1;
    std::int64_t tile = 1;
};

std::int64_t
tileOf(const ir::Chain &chain, const plan::ExecutionPlan &plan,
       const std::string &name, std::int64_t fallback)
{
    for (int a = 0; a < chain.numAxes(); ++a) {
        if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
            return plan.tiles[static_cast<std::size_t>(a)];
        }
    }
    return fallback;
}

void
checkShape(const Tensor &t, const std::vector<std::int64_t> &expected,
           const char *what)
{
    CHIMERA_CHECK(t.shape() == expected,
                  std::string("unexpected shape for ") + what + ": got " +
                      t.shapeString());
}

/** Sets future positions of the scores tensor to -inf before softmax. */
void
applyCausalMask(Tensor &scores, const GemmChainConfig &config)
{
    const std::int64_t rows = config.m;
    const std::int64_t cols = config.l;
    float *p = scores.data();
    for (std::int64_t b = 0; b < config.batch; ++b) {
        for (std::int64_t r = 0; r < rows; ++r) {
            float *row = p + (b * rows + r) * cols;
            for (std::int64_t j = r + 1; j < cols; ++j) {
                row[j] = -std::numeric_limits<float>::infinity();
            }
        }
    }
}

} // namespace

std::vector<std::int64_t>
gemmChainShapeA(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.m, c.k}
                       : std::vector<std::int64_t>{c.m, c.k};
}

std::vector<std::int64_t>
gemmChainShapeB(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.k, c.l}
                       : std::vector<std::int64_t>{c.k, c.l};
}

std::vector<std::int64_t>
gemmChainShapeD(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.l, c.n}
                       : std::vector<std::int64_t>{c.l, c.n};
}

std::vector<std::int64_t>
gemmChainShapeE(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.m, c.n}
                       : std::vector<std::int64_t>{c.m, c.n};
}

std::vector<std::int64_t>
gemmChainShapeC(const GemmChainConfig &c)
{
    return c.batch > 1 ? std::vector<std::int64_t>{c.batch, c.m, c.l}
                       : std::vector<std::int64_t>{c.m, c.l};
}

void
runFusedGemmChain(const GemmChainConfig &config,
                  const plan::ExecutionPlan &plan,
                  const ComputeEngine &engine, const Tensor &a,
                  const Tensor &b, const Tensor &d, Tensor &e)
{
    checkShape(a, gemmChainShapeA(config), "A");
    checkShape(b, gemmChainShapeB(config), "B");
    checkShape(d, gemmChainShapeD(config), "D");
    checkShape(e, gemmChainShapeE(config), "E");

    // Recover per-axis tiles by name from the plan (the chain that
    // produced the plan must match the config).
    const ir::Chain chain = ir::makeGemmChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const std::int64_t tb = tileOf(chain, plan, "b", 1);
    const std::int64_t tm = tileOf(chain, plan, "m", config.m);
    const std::int64_t tn = tileOf(chain, plan, "n", config.n);
    const std::int64_t tk = tileOf(chain, plan, "k", config.k);
    const std::int64_t tl = tileOf(chain, plan, "l", config.l);

    // Region loops (b, m, l) ordered by their position in the plan.
    std::vector<BlockedAxis> regionLoops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            regionLoops.push_back({'b', config.batch, tb});
        } else if (name == "m") {
            regionLoops.push_back({'m', config.m, tm});
        } else if (name == "l") {
            regionLoops.push_back({'l', config.l, tl});
        }
    }
    if (config.batch == 1) {
        regionLoops.insert(regionLoops.begin(), {'b', 1, 1});
    }
    CHIMERA_ASSERT(regionLoops.size() == 3, "missing region loop");

    const std::int64_t bigM = config.m;
    const std::int64_t bigN = config.n;
    const std::int64_t bigK = config.k;
    const std::int64_t bigL = config.l;

    // On-chip region buffer for C and the softmax row-sum side buffer.
    auto cRegion = allocateAligned<float>(
        static_cast<std::size_t>(tb * tm * tl));
    std::vector<float> rowSum;
    if (config.epilogue == Epilogue::Softmax) {
        rowSum.assign(static_cast<std::size_t>(config.batch * bigM), 0.0f);
    }
    e.zero();

    const std::int64_t perBatchA = bigM * bigK;
    const std::int64_t perBatchB = bigK * bigL;
    const std::int64_t perBatchD = bigL * bigN;
    const std::int64_t perBatchE = bigM * bigN;

    // Walk regions in plan order (three nested blocked loops).
    for (std::int64_t i0 = 0; i0 < regionLoops[0].extent;
         i0 += regionLoops[0].tile) {
        for (std::int64_t i1 = 0; i1 < regionLoops[1].extent;
             i1 += regionLoops[1].tile) {
            for (std::int64_t i2 = 0; i2 < regionLoops[2].extent;
                 i2 += regionLoops[2].tile) {
                std::int64_t b0 = 0, m0 = 0, l0 = 0;
                std::int64_t bb = 1, mm = 1, ll = 1;
                const std::int64_t starts[3] = {i0, i1, i2};
                for (int i = 0; i < 3; ++i) {
                    const BlockedAxis &loop =
                        regionLoops[static_cast<std::size_t>(i)];
                    const std::int64_t start = starts[i];
                    const std::int64_t size = std::min<std::int64_t>(
                        loop.tile, loop.extent - start);
                    switch (loop.name) {
                      case 'b': b0 = start; bb = size; break;
                      case 'm': m0 = start; mm = size; break;
                      case 'l': l0 = start; ll = size; break;
                      default: break;
                    }
                }

                float *cBase = cRegion.get();
                std::memset(cBase, 0,
                            static_cast<std::size_t>(bb * mm * ll) *
                                sizeof(float));

                // GEMM1: accumulate all k blocks into the region.
                for (std::int64_t k0 = 0; k0 < bigK; k0 += tk) {
                    const std::int64_t kk =
                        std::min<std::int64_t>(tk, bigK - k0);
                    for (std::int64_t bi = 0; bi < bb; ++bi) {
                        const float *aBlk = a.data() +
                                            (b0 + bi) * perBatchA +
                                            m0 * bigK + k0;
                        const float *bBlk = b.data() +
                                            (b0 + bi) * perBatchB +
                                            k0 * bigL + l0;
                        engine.matmul(aBlk, bigK, bBlk, bigL,
                                      cBase + bi * mm * ll, ll, mm, ll, kk);
                    }
                }

                // Fused epilogue on the on-chip region.
                if (config.epilogue == Epilogue::Relu) {
                    for (std::int64_t i = 0; i < bb * mm * ll; ++i) {
                        cBase[i] = std::max(cBase[i], 0.0f);
                    }
                } else if (config.epilogue == Epilogue::Softmax) {
                    // exp now; sum rides along; division deferred (§VI-B).
                    // Causal masking zeroes future positions (global
                    // column l0+j beyond global row m0+r) on chip, so
                    // the deferred normalization stays exact.
                    for (std::int64_t bi = 0; bi < bb; ++bi) {
                        for (std::int64_t r = 0; r < mm; ++r) {
                            float *row = cBase + (bi * mm + r) * ll;
                            float sum = 0.0f;
                            const std::int64_t lastValid =
                                config.causalMask ? (m0 + r) - l0
                                                  : ll - 1;
                            for (std::int64_t j = 0; j < ll; ++j) {
                                if (j > lastValid) {
                                    row[j] = 0.0f;
                                    continue;
                                }
                                row[j] = std::exp(config.softmaxScale *
                                                  row[j]);
                                sum += row[j];
                            }
                            rowSum[static_cast<std::size_t>(
                                (b0 + bi) * bigM + m0 + r)] += sum;
                        }
                    }
                }

                // GEMM2: consume the region across all n blocks.
                for (std::int64_t n0 = 0; n0 < bigN; n0 += tn) {
                    const std::int64_t nn =
                        std::min<std::int64_t>(tn, bigN - n0);
                    for (std::int64_t bi = 0; bi < bb; ++bi) {
                        const float *dBlk = d.data() +
                                            (b0 + bi) * perBatchD +
                                            l0 * bigN + n0;
                        float *eBlk = e.data() + (b0 + bi) * perBatchE +
                                      m0 * bigN + n0;
                        engine.matmul(cBase + bi * mm * ll, ll, dBlk, bigN,
                                      eBlk, bigN, mm, nn, ll);
                    }
                }
            }
        }
    }

    // Deferred softmax division over the finished output.
    if (config.epilogue == Epilogue::Softmax) {
        for (std::int64_t bi = 0; bi < config.batch; ++bi) {
            for (std::int64_t r = 0; r < bigM; ++r) {
                const float inv =
                    1.0f /
                    rowSum[static_cast<std::size_t>(bi * bigM + r)];
                float *row = e.data() + (bi * bigM + r) * bigN;
                for (std::int64_t j = 0; j < bigN; ++j) {
                    row[j] *= inv;
                }
            }
        }
    }
}

void
runTiledBatchGemm(const ComputeEngine &engine, const Tensor &a,
                  const Tensor &b, Tensor &c, const GemmTiles &tiles)
{
    const bool batched = a.rank() == 3;
    CHIMERA_CHECK(a.rank() == b.rank() && a.rank() == c.rank() &&
                      (a.rank() == 2 || a.rank() == 3),
                  "tiled GEMM expects rank 2 or 3 tensors");
    const std::int64_t batch = batched ? a.shape()[0] : 1;
    const std::int64_t m = a.shape()[batched ? 1 : 0];
    const std::int64_t k = a.shape()[batched ? 2 : 1];
    const std::int64_t n = b.shape()[batched ? 2 : 1];
    CHIMERA_CHECK(b.shape()[batched ? 1 : 0] == k &&
                      c.shape()[batched ? 1 : 0] == m &&
                      c.shape()[batched ? 2 : 1] == n,
                  "tiled GEMM shape mismatch");

    c.zero();
    for (std::int64_t bi = 0; bi < batch; ++bi) {
        const float *aBase = a.data() + bi * m * k;
        const float *bBase = b.data() + bi * k * n;
        float *cBase = c.data() + bi * m * n;
        for (std::int64_t m0 = 0; m0 < m; m0 += tiles.tm) {
            const std::int64_t mm = std::min<std::int64_t>(tiles.tm, m - m0);
            for (std::int64_t k0 = 0; k0 < k; k0 += tiles.tk) {
                const std::int64_t kk =
                    std::min<std::int64_t>(tiles.tk, k - k0);
                for (std::int64_t n0 = 0; n0 < n; n0 += tiles.tn) {
                    const std::int64_t nn =
                        std::min<std::int64_t>(tiles.tn, n - n0);
                    engine.matmul(aBase + m0 * k + k0, k,
                                  bBase + k0 * n + n0, n,
                                  cBase + m0 * n + n0, n, mm, nn, kk);
                }
            }
        }
    }
}

void
runUnfusedGemmChain(const GemmChainConfig &config,
                    const ComputeEngine &engine, const Tensor &a,
                    const Tensor &b, const Tensor &d, Tensor &scratchC,
                    Tensor &e, const GemmTiles &tiles1,
                    const GemmTiles &tiles2)
{
    checkShape(scratchC, gemmChainShapeC(config), "C scratch");
    runTiledBatchGemm(engine, a, b, scratchC, tiles1);
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(scratchC);
    } else if (config.epilogue == Epilogue::Softmax) {
        float *p = scratchC.data();
        for (std::int64_t i = 0; i < scratchC.numel(); ++i) {
            p[i] *= config.softmaxScale;
        }
        if (config.causalMask) {
            applyCausalMask(scratchC, config);
        }
        ref::softmaxLastDim(scratchC);
    }
    runTiledBatchGemm(engine, scratchC, d, e, tiles2);
}

void
referenceGemmChain(const GemmChainConfig &config, const Tensor &a,
                   const Tensor &b, const Tensor &d, Tensor &e)
{
    Tensor c(gemmChainShapeC(config));
    if (config.batch > 1) {
        ref::batchGemm(a, b, c);
    } else {
        ref::gemm(a, b, c);
    }
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(c);
    } else if (config.epilogue == Epilogue::Softmax) {
        float *p = c.data();
        for (std::int64_t i = 0; i < c.numel(); ++i) {
            p[i] *= config.softmaxScale;
        }
        if (config.causalMask) {
            applyCausalMask(c, config);
        }
        ref::softmaxLastDim(c);
    }
    if (config.batch > 1) {
        ref::batchGemm(c, d, e);
    } else {
        ref::gemm(c, d, e);
    }
}

} // namespace chimera::exec
