#include "exec/chunk_profile.hpp"

#include <algorithm>

#include "support/thread_pool.hpp"

namespace chimera::exec {

namespace {

constexpr double kNanosPerSecond = 1e9;

} // namespace

ChunkProfile::ChunkProfile(int workers)
    : workers_(std::max(1, workers)),
      slots_(static_cast<std::size_t>(workers_))
{
}

double
ChunkProfile::phaseMaxSeconds() const
{
    std::int64_t worst = 0;
    for (const Slot &slot : slots_) {
        worst = std::max(worst,
                         slot.nanos.load(std::memory_order_relaxed));
    }
    return static_cast<double>(worst) / kNanosPerSecond;
}

void
ChunkProfile::beginPhase(std::int64_t chunkCount)
{
    closedCriticalSeconds_ += phaseMaxSeconds();
    closedTotalSeconds_ = totalBusySeconds();
    for (Slot &slot : slots_) {
        slot.nanos.store(0, std::memory_order_relaxed);
    }
    phaseChunks_ = std::max<std::int64_t>(0, chunkCount);
}

void
ChunkProfile::recordChunk(std::int64_t chunk, double seconds)
{
    const int owner =
        staticChunkOwner(chunk, std::max<std::int64_t>(1, phaseChunks_),
                         workers_);
    slots_[static_cast<std::size_t>(std::min(owner, workers_ - 1))]
        .nanos.fetch_add(
            static_cast<std::int64_t>(seconds * kNanosPerSecond),
            std::memory_order_relaxed);
}

double
ChunkProfile::criticalPathSeconds() const
{
    return closedCriticalSeconds_ + phaseMaxSeconds();
}

double
ChunkProfile::totalBusySeconds() const
{
    std::int64_t sum = 0;
    for (const Slot &slot : slots_) {
        sum += slot.nanos.load(std::memory_order_relaxed);
    }
    return closedTotalSeconds_ +
           static_cast<double>(sum) / kNanosPerSecond;
}

} // namespace chimera::exec
