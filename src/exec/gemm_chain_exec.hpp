#pragma once

/**
 * @file
 * Executors for batch GEMM chains (Figure 1a).
 *
 * The fused executor walks the planner's block schedule: regions of the
 * intermediate C (indexed by the b/m/l tiles) are produced fully
 * on-chip by GEMM1, transformed by the fused epilogue, and consumed by
 * GEMM2 before the region buffer is reused — exactly the contract the
 * analytical model assumes. Softmax is fused per §VI-B: exp is applied
 * to the on-chip region, the row sums accumulate alongside GEMM2, and
 * the division is swapped to a final pass over E.
 *
 * The unfused executor is the library-style baseline: GEMM1 to DRAM,
 * epilogue pass, GEMM2 from DRAM — same micro kernel, no cross-operator
 * locality.
 */

#include "exec/compute_engine.hpp"
#include "exec/exec_options.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"
#include "tensor/tensor.hpp"

namespace chimera::exec {

/**
 * Runs the fused chain E = epilogue(A x B) x D under @p plan.
 *
 * Which region loops are distributed across @p options threads is
 * decided by the plan's concurrency table (see analysis/dependence.hpp
 * and plan::effectiveConcurrency), not hardcoded here: under a sound
 * table the batch/m blocks are independent (disjoint E rows and softmax
 * row sums) and run in parallel, while the accumulating l loop runs
 * serially ascending inside each task, so the output is
 * bitwise-identical at every thread count. Axes the analysis does not
 * bless as parallel are refused (executed serially).
 *
 * @param config  Chain shapes and epilogue.
 * @param plan    Planner output for the chain built by makeGemmChain.
 * @param engine  Block compute engine.
 * @param a       [batch?, M, K] input (batch dim only when batch > 1).
 * @param b       [batch?, K, L] input.
 * @param d       [batch?, L, N] input.
 * @param e       [batch?, M, N] output (overwritten).
 * @param options Threading knobs (default: CHIMERA_THREADS/hardware).
 */
void runFusedGemmChain(const ir::GemmChainConfig &config,
                       const plan::ExecutionPlan &plan,
                       const ComputeEngine &engine, const Tensor &a,
                       const Tensor &b, const Tensor &d, Tensor &e,
                       const ExecOptions &options = {});

/**
 * Names of the chain axes runFusedGemmChain would distribute across
 * workers for @p plan — exactly the region loops the concurrency table
 * blesses as parallel (the synthesized unit batch loop is excluded).
 * Lets tests cross-check executor behavior against the analysis.
 */
std::vector<std::string>
fusedGemmChainParallelAxes(const ir::GemmChainConfig &config,
                           const plan::ExecutionPlan &plan);

/** Per-GEMM cache tiles for the unfused baseline. */
struct GemmTiles
{
    std::int64_t tm = 64;
    std::int64_t tn = 64;
    std::int64_t tk = 64;
};

/**
 * Tiled batch GEMM c = a x b (c overwritten), the building block of the
 * unfused baseline. Loops blocks in m-k-n order with the given tiles;
 * the independent (batch, m-tile) blocks are split across threads.
 */
void runTiledBatchGemm(const ComputeEngine &engine, const Tensor &a,
                       const Tensor &b, Tensor &c, const GemmTiles &tiles,
                       const ExecOptions &options = {});

/**
 * Unfused chain: GEMM1 -> DRAM intermediate -> epilogue -> GEMM2.
 *
 * @param scratchC [batch?, M, L] DRAM intermediate (overwritten).
 */
void runUnfusedGemmChain(const ir::GemmChainConfig &config,
                         const ComputeEngine &engine, const Tensor &a,
                         const Tensor &b, const Tensor &d, Tensor &scratchC,
                         Tensor &e, const GemmTiles &tiles1,
                         const GemmTiles &tiles2,
                         const ExecOptions &options = {});

/** Expected tensor shapes for a chain config (batch dim iff batch>1). */
std::vector<std::int64_t> gemmChainShapeA(const ir::GemmChainConfig &c);
std::vector<std::int64_t> gemmChainShapeB(const ir::GemmChainConfig &c);
std::vector<std::int64_t> gemmChainShapeD(const ir::GemmChainConfig &c);
std::vector<std::int64_t> gemmChainShapeE(const ir::GemmChainConfig &c);
std::vector<std::int64_t> gemmChainShapeC(const ir::GemmChainConfig &c);

/**
 * Reference result for the whole chain via the naive oracle (used by
 * tests and benches to validate both executors).
 */
void referenceGemmChain(const ir::GemmChainConfig &config, const Tensor &a,
                        const Tensor &b, const Tensor &d, Tensor &e);

} // namespace chimera::exec
