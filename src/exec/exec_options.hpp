#pragma once

/**
 * @file
 * Runtime knobs shared by the fused/unfused executors. Today that is
 * the worker-thread policy for the independent block loops; the plan
 * itself (order + tiles) stays a planner concern.
 */

#include "analysis/race_checker.hpp"
#include "support/thread_pool.hpp"

namespace chimera::exec {

class ChunkProfile;

/** Execution-time options accepted by every executor entry point. */
struct ExecOptions
{
    /**
     * Worker threads for the independent block loops: >= 1 is an exact
     * count (1 = serial), <= 0 defers to CHIMERA_THREADS and then
     * hardware_concurrency. Outputs are bitwise-identical at every
     * thread count: only dependence-free block loops are split across
     * workers and reduction loops keep their serial ascending order.
     */
    int threads = 0;

    /** Explicit pool override; wins over @ref threads when non-null. */
    ThreadPool *pool = nullptr;

    /**
     * Optional shadow-memory race checker (see analysis/race_checker.hpp).
     * When non-null every parallel task tags the output elements it
     * writes; two distinct tasks claiming the same element is recorded
     * as a conflict. The checker must be sized to the executor's output
     * element count. Detection is keyed on the deterministic block-task
     * index, so it works — and is typically run — with a serial
     * execution of the suspect plan.
     */
    analysis::RaceChecker *raceCheck = nullptr;

    /**
     * Optional per-worker busy-time profile (see exec/chunk_profile.hpp).
     * When non-null the fused executors time every dispatch chunk and
     * charge it to the chunk's static owner, giving the scaling bench
     * its simulated critical path. Appended last so existing aggregate
     * initializers ({threads, pool, raceCheck}) keep compiling.
     */
    ChunkProfile *profile = nullptr;
};

/** Pool an executor should run on; nullptr means run serially. */
inline ThreadPool *
execPool(const ExecOptions &options)
{
    return options.pool != nullptr ? options.pool
                                   : poolForThreads(options.threads);
}

/** Per-thread scratch-buffer count for a resolved pool. */
inline int
execWorkerCount(const ThreadPool *pool)
{
    return pool == nullptr ? 1 : pool->size();
}

} // namespace chimera::exec
