#include "exec/conv_chain_exec.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "tensor/reference.hpp"

namespace chimera::exec {

using ir::ConvChainConfig;
using ir::Epilogue;

namespace {

/**
 * Packs one im2col patch row: for output columns [col0, col0+cols) of
 * output row @p outRow, gathers the (channels x kh x kw) receptive
 * fields from a [C, H, W] source with implicit zero padding.
 *
 * dst layout: dst[(c*kh + i)*kw + j][x] with row stride @p cols.
 */
void
packPatchRow(const float *src, std::int64_t chanStride, std::int64_t h,
             std::int64_t w, std::int64_t chan0, std::int64_t chans,
             std::int64_t outRow, std::int64_t col0, std::int64_t cols,
             int kernel, int stride, int pad, float *dst)
{
    for (std::int64_t c = 0; c < chans; ++c) {
        const float *chanBase = src + (chan0 + c) * chanStride;
        for (int ki = 0; ki < kernel; ++ki) {
            const std::int64_t row = outRow * stride + ki - pad;
            for (int kj = 0; kj < kernel; ++kj) {
                float *out =
                    dst + ((c * kernel + ki) * kernel + kj) * cols;
                if (row < 0 || row >= h) {
                    std::memset(out, 0,
                                static_cast<std::size_t>(cols) *
                                    sizeof(float));
                    continue;
                }
                const float *rowBase = chanBase + row * w;
                for (std::int64_t x = 0; x < cols; ++x) {
                    const std::int64_t col =
                        (col0 + x) * stride + kj - pad;
                    out[x] = (col >= 0 && col < w) ? rowBase[col] : 0.0f;
                }
            }
        }
    }
}

void
checkShape(const Tensor &t, const std::vector<std::int64_t> &expected,
           const char *what)
{
    CHIMERA_CHECK(t.shape() == expected,
                  std::string("unexpected shape for ") + what + ": got " +
                      t.shapeString());
}

std::int64_t
tileByName(const ir::Chain &chain, const plan::ExecutionPlan &plan,
           const std::string &name, std::int64_t fallback)
{
    for (int a = 0; a < chain.numAxes(); ++a) {
        if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
            return plan.tiles[static_cast<std::size_t>(a)];
        }
    }
    return fallback;
}

/** One blocked region loop. */
struct RegionLoop
{
    char name = '?'; ///< 'b', 'c' (oc1), 'h' (oh), 'w' (ow).
    std::int64_t extent = 1;
    std::int64_t tile = 1;
};

} // namespace

std::vector<std::int64_t>
convChainShapeI(const ConvChainConfig &c)
{
    return {c.batch, c.ic, c.h, c.w};
}

std::vector<std::int64_t>
convChainShapeW1(const ConvChainConfig &c)
{
    return {c.oc1, c.ic, c.k1, c.k1};
}

std::vector<std::int64_t>
convChainShapeW2(const ConvChainConfig &c)
{
    return {c.oc2, c.oc1, c.k2, c.k2};
}

std::vector<std::int64_t>
convChainShapeT(const ConvChainConfig &c)
{
    return {c.batch, c.oc1, c.oh1(), c.ow1()};
}

std::vector<std::int64_t>
convChainShapeO(const ConvChainConfig &c)
{
    return {c.batch, c.oc2, c.oh2(), c.ow2()};
}

void
runFusedConvChain(const ConvChainConfig &config,
                  const plan::ExecutionPlan &plan,
                  const ComputeEngine &engine, const Tensor &input,
                  const Tensor &w1, const Tensor &w2, Tensor &output,
                  const ExecOptions &options)
{
    checkShape(input, convChainShapeI(config), "I");
    checkShape(w1, convChainShapeW1(config), "W1");
    checkShape(w2, convChainShapeW2(config), "W2");
    checkShape(output, convChainShapeO(config), "O");

    const ir::Chain chain = ir::makeConvChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const std::int64_t tb = tileByName(chain, plan, "b", 1);
    const std::int64_t toc2 = tileByName(chain, plan, "oc2", config.oc2);
    const std::int64_t toh = tileByName(chain, plan, "oh", config.oh2());
    const std::int64_t tow = tileByName(chain, plan, "ow", config.ow2());
    const std::int64_t toc1 = tileByName(chain, plan, "oc1", config.oc1);
    const std::int64_t tic = tileByName(chain, plan, "ic", config.ic);

    const std::int64_t oh1 = config.oh1();
    const std::int64_t ow1 = config.ow1();
    const std::int64_t oh2 = config.oh2();
    const std::int64_t ow2 = config.ow2();
    const int k1 = config.k1;
    const int k2 = config.k2;
    const int st1 = config.stride1;
    const int st2 = config.stride2;
    const int pad1 = config.effectivePad1();
    const int pad2 = config.effectivePad2();

    // Region loops ordered by the plan; kernel axes stay internal.
    std::vector<RegionLoop> loops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            loops.push_back({'b', config.batch, tb});
        } else if (name == "oc1") {
            loops.push_back({'c', config.oc1, toc1});
        } else if (name == "oh") {
            loops.push_back({'h', oh2, toh});
        } else if (name == "ow") {
            loops.push_back({'w', ow2, tow});
        }
    }
    if (config.batch == 1) {
        loops.insert(loops.begin(), {'b', 1, 1});
    }
    CHIMERA_ASSERT(loops.size() == 4, "missing conv region loop");

    // The b/oh/ow region loops are dependence-free (disjoint output
    // windows) and form the parallel space, kept in plan order. The oc1
    // block loop is the reduction dimension of conv2 — every oc1 block
    // accumulates into the same output elements — so it runs serially
    // ascending inside each region, which keeps the per-element
    // accumulation order (and the output bits) identical to the serial
    // executor at every thread count.
    std::vector<RegionLoop> par;
    RegionLoop cLoop{'c', config.oc1, toc1};
    for (const RegionLoop &loop : loops) {
        if (loop.name == 'c') {
            cLoop = loop;
        } else {
            par.push_back(loop);
        }
    }
    CHIMERA_ASSERT(par.size() == 3, "missing parallel conv region loop");
    const std::int64_t n0 = ceilDiv(par[0].extent, par[0].tile);
    const std::int64_t n1 = ceilDiv(par[1].extent, par[1].tile);
    const std::int64_t n2 = ceilDiv(par[2].extent, par[2].tile);

    ThreadPool *pool = execPool(options);
    const int workers = execWorkerCount(pool);

    // Per-worker on-chip intermediate region (maximal size over
    // regions) and im2col patch buffers for conv1 and conv2.
    const std::int64_t midHMax = st2 * (toh - 1) + k2;
    const std::int64_t midWMax = st2 * (tow - 1) + k2;
    std::vector<AlignedBuffer<float>> tRegions, patch1s, patch2s;
    tRegions.reserve(static_cast<std::size_t>(workers));
    patch1s.reserve(static_cast<std::size_t>(workers));
    patch2s.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        tRegions.push_back(allocateAligned<float>(static_cast<std::size_t>(
            tb * toc1 * midHMax * midWMax)));
        patch1s.push_back(allocateAligned<float>(static_cast<std::size_t>(
            tic * k1 * k1 * midWMax)));
        patch2s.push_back(allocateAligned<float>(static_cast<std::size_t>(
            toc1 * k2 * k2 * tow)));
    }

    output.zero();

    const std::int64_t w1Ld = config.ic * k1 * k1;
    const std::int64_t w2Ld = config.oc1 * k2 * k2;
    const std::int64_t inChanStride = config.h * config.w;
    const std::int64_t inBatchStride = config.ic * inChanStride;
    const std::int64_t outChanStride = oh2 * ow2;
    const std::int64_t outBatchStride = config.oc2 * outChanStride;

    // Parallel (b, oh, ow) region blocks; serial ascending oc1 loop
    // inside each.
    parallelFor(pool, 0, n0 * n1 * n2, [&](std::int64_t task,
                                           int worker) {
        std::int64_t b0 = 0, h0 = 0, w0 = 0;
        std::int64_t bb = 1, hh = 1, ww = 1;
        const std::int64_t starts[3] = {
            (task / (n1 * n2)) * par[0].tile,
            ((task / n2) % n1) * par[1].tile,
            (task % n2) * par[2].tile};
        for (int i = 0; i < 3; ++i) {
            const RegionLoop &loop = par[static_cast<std::size_t>(i)];
            const std::int64_t size =
                std::min<std::int64_t>(loop.tile, loop.extent - starts[i]);
            switch (loop.name) {
              case 'b': b0 = starts[i]; bb = size; break;
              case 'h': h0 = starts[i]; hh = size; break;
              case 'w': w0 = starts[i]; ww = size; break;
              default: break;
            }
        }
        float *tRegion = tRegions[static_cast<std::size_t>(worker)].get();
        float *patch1 = patch1s[static_cast<std::size_t>(worker)].get();
        float *patch2 = patch2s[static_cast<std::size_t>(worker)].get();

        for (std::int64_t c0 = 0; c0 < cLoop.extent; c0 += cLoop.tile) {
        const std::int64_t cc =
            std::min<std::int64_t>(cLoop.tile, cLoop.extent - c0);

        // Halo-inflated intermediate slice covered by this region.
        const std::int64_t midH = st2 * (hh - 1) + k2;
        const std::int64_t midW = st2 * (ww - 1) + k2;
        const std::int64_t tRowLo = h0 * st2 - pad2;
        const std::int64_t tColLo = w0 * st2 - pad2;
        const std::int64_t ldRow = midW;
        const std::int64_t ldChan = midH * midW;
        const std::int64_t ldBatch = cc * ldChan;
        std::memset(tRegion, 0,
                    static_cast<std::size_t>(bb * ldBatch) * sizeof(float));

        // conv1: fill the valid part of the region via implicit GEMM.
        for (std::int64_t bi = 0; bi < bb; ++bi) {
            const float *inBase =
                input.data() + (b0 + bi) * inBatchStride;
            for (std::int64_t r = 0; r < midH; ++r) {
                const std::int64_t tRow = tRowLo + r;
                if (tRow < 0 || tRow >= oh1) {
                    continue; // conv2 zero padding stays zero
                }
                const std::int64_t colLoValid = std::max<std::int64_t>(
                    0, -tColLo);
                const std::int64_t colHiValid = std::min<std::int64_t>(
                    midW, ow1 - tColLo);
                if (colHiValid <= colLoValid) {
                    continue;
                }
                const std::int64_t cols = colHiValid - colLoValid;
                float *cBase = tRegion + bi * ldBatch + r * ldRow +
                               colLoValid;
                for (std::int64_t ic0 = 0; ic0 < config.ic; ic0 += tic) {
                    const std::int64_t icc =
                        std::min<std::int64_t>(tic, config.ic - ic0);
                    packPatchRow(inBase, inChanStride, config.h, config.w,
                                 ic0, icc, tRow, tColLo + colLoValid, cols,
                                 k1, st1, pad1, patch1);
                    engine.matmul(w1.data() + c0 * w1Ld + ic0 * k1 * k1,
                                  w1Ld, patch1, cols, cBase, ldChan,
                                  cc, cols, icc * k1 * k1);
                }
            }
        }

        // Fused epilogue on the on-chip region (relu(0) == 0, so the
        // zero-padded border stays consistent with reference padding).
        if (config.epilogue == Epilogue::Relu) {
            for (std::int64_t i = 0; i < bb * ldBatch; ++i) {
                tRegion[i] = std::max(tRegion[i], 0.0f);
            }
        }

        // conv2: consume the region for every oc2 block.
        for (std::int64_t bi = 0; bi < bb; ++bi) {
            for (std::int64_t rr = 0; rr < hh; ++rr) {
                // Patch over the region buffer: padding is materialized,
                // so pad = 0 and coordinates are region-local.
                packPatchRow(tRegion + bi * ldBatch, ldChan, midH,
                             midW, 0, cc, rr, 0, ww, k2, st2, 0,
                             patch2);
                for (std::int64_t oc0 = 0; oc0 < config.oc2; oc0 += toc2) {
                    const std::int64_t occ =
                        std::min<std::int64_t>(toc2, config.oc2 - oc0);
                    float *oBase = output.data() +
                                   (b0 + bi) * outBatchStride +
                                   oc0 * outChanStride + (h0 + rr) * ow2 +
                                   w0;
                    engine.matmul(w2.data() + oc0 * w2Ld + c0 * k2 * k2,
                                  w2Ld, patch2, ww, oBase,
                                  outChanStride, occ, ww, cc * k2 * k2);
                }
            }
        }
        }
    });
}

void
runTiledConv2d(const ComputeEngine &engine, const Tensor &input,
               const Tensor &weight, Tensor &output, int stride, int pad,
               const ConvTiles &tiles, const ExecOptions &options)
{
    CHIMERA_CHECK(input.rank() == 4 && weight.rank() == 4 &&
                      output.rank() == 4,
                  "conv2d expects rank-4 tensors");
    const std::int64_t batch = input.shape()[0];
    const std::int64_t ic = input.shape()[1];
    const std::int64_t h = input.shape()[2];
    const std::int64_t w = input.shape()[3];
    const std::int64_t oc = weight.shape()[0];
    const int kernel = static_cast<int>(weight.shape()[2]);
    const std::int64_t oh = ref::convOutDim(h, kernel, stride, pad);
    const std::int64_t ow = ref::convOutDim(w, kernel, stride, pad);
    CHIMERA_CHECK(weight.shape()[1] == ic, "conv channel mismatch");
    checkShape(output, {batch, oc, oh, ow}, "conv output");

    output.zero();
    const std::int64_t wLd = ic * kernel * kernel;

    // Each (batch, output-row) pair writes a disjoint output row slice;
    // the ic reduction stays serial ascending inside it, so the output
    // is bitwise-identical at every thread count.
    ThreadPool *pool = execPool(options);
    const int workers = execWorkerCount(pool);
    std::vector<AlignedBuffer<float>> patches;
    patches.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        patches.push_back(allocateAligned<float>(static_cast<std::size_t>(
            std::min(tiles.tic, ic) * kernel * kernel * ow)));
    }

    parallelFor(pool, 0, batch * oh, [&](std::int64_t task, int worker) {
        const std::int64_t bi = task / oh;
        const std::int64_t r = task % oh;
        const float *inBase = input.data() + bi * ic * h * w;
        float *outBase = output.data() + bi * oc * oh * ow;
        float *patch = patches[static_cast<std::size_t>(worker)].get();
        for (std::int64_t ic0 = 0; ic0 < ic; ic0 += tiles.tic) {
            const std::int64_t icc =
                std::min<std::int64_t>(tiles.tic, ic - ic0);
            packPatchRow(inBase, h * w, h, w, ic0, icc, r, 0, ow,
                         kernel, stride, pad, patch);
            for (std::int64_t oc0 = 0; oc0 < oc; oc0 += tiles.toc) {
                const std::int64_t occ =
                    std::min<std::int64_t>(tiles.toc, oc - oc0);
                engine.matmul(
                    weight.data() + oc0 * wLd + ic0 * kernel * kernel,
                    wLd, patch, ow,
                    outBase + oc0 * oh * ow + r * ow, oh * ow, occ, ow,
                    icc * kernel * kernel);
            }
        }
    });
}

void
runUnfusedConvChain(const ConvChainConfig &config,
                    const ComputeEngine &engine, const Tensor &input,
                    const Tensor &w1, const Tensor &w2, Tensor &scratchT,
                    Tensor &output, const ConvTiles &tiles1,
                    const ConvTiles &tiles2, const ExecOptions &options)
{
    checkShape(scratchT, convChainShapeT(config), "T scratch");
    runTiledConv2d(engine, input, w1, scratchT, config.stride1,
                   config.effectivePad1(), tiles1, options);
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(scratchT);
    }
    runTiledConv2d(engine, scratchT, w2, output, config.stride2,
                   config.effectivePad2(), tiles2, options);
}

void
referenceConvChain(const ConvChainConfig &config, const Tensor &input,
                   const Tensor &w1, const Tensor &w2, Tensor &output)
{
    Tensor t(convChainShapeT(config));
    ref::conv2d(input, w1, t, config.stride1, config.effectivePad1());
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(t);
    }
    ref::conv2d(t, w2, output, config.stride2, config.effectivePad2());
}

} // namespace chimera::exec
