#include "exec/conv_chain_exec.hpp"

#include <algorithm>
#include <cstring>

#include "exec/chunk_profile.hpp"
#include "exec/region_schedule.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "support/timer.hpp"
#include "tensor/reference.hpp"

namespace chimera::exec {

using ir::ConvChainConfig;
using ir::Epilogue;

namespace {

/**
 * Packs one im2col patch row: for output columns [col0, col0+cols) of
 * output row @p outRow, gathers the (channels x kh x kw) receptive
 * fields from a [C, H, W] source with implicit zero padding.
 *
 * dst layout: dst[(c*kh + i)*kw + j][x] with row stride @p cols.
 */
void
packPatchRow(const float *src, std::int64_t chanStride, std::int64_t h,
             std::int64_t w, std::int64_t chan0, std::int64_t chans,
             std::int64_t outRow, std::int64_t col0, std::int64_t cols,
             int kernel, int stride, int pad, float *dst)
{
    for (std::int64_t c = 0; c < chans; ++c) {
        const float *chanBase = src + (chan0 + c) * chanStride;
        for (int ki = 0; ki < kernel; ++ki) {
            const std::int64_t row = outRow * stride + ki - pad;
            for (int kj = 0; kj < kernel; ++kj) {
                float *out =
                    dst + ((c * kernel + ki) * kernel + kj) * cols;
                if (row < 0 || row >= h) {
                    std::memset(out, 0,
                                static_cast<std::size_t>(cols) *
                                    sizeof(float));
                    continue;
                }
                const float *rowBase = chanBase + row * w;
                for (std::int64_t x = 0; x < cols; ++x) {
                    const std::int64_t col =
                        (col0 + x) * stride + kj - pad;
                    out[x] = (col >= 0 && col < w) ? rowBase[col] : 0.0f;
                }
            }
        }
    }
}

void
checkShape(const Tensor &t, const std::vector<std::int64_t> &expected,
           const char *what)
{
    CHIMERA_CHECK(t.shape() == expected,
                  std::string("unexpected shape for ") + what + ": got " +
                      t.shapeString());
}

std::int64_t
tileByName(const ir::Chain &chain, const plan::ExecutionPlan &plan,
           const std::string &name, std::int64_t fallback)
{
    for (int a = 0; a < chain.numAxes(); ++a) {
        if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
            return plan.tiles[static_cast<std::size_t>(a)];
        }
    }
    return fallback;
}

/**
 * Region loops of the fused conv-chain walk in plan order: 'b', 'c'
 * (the oc1 block loop), 'h' (oh) and 'w' (ow), each tagged with its
 * AxisId for the concurrency-table split. A unit batch loop (axis -1)
 * is synthesized when batch == 1.
 */
std::vector<RegionLoop>
convRegionLoops(const ir::Chain &chain, const ir::ConvChainConfig &config,
                const plan::ExecutionPlan &plan)
{
    const std::int64_t tb = tileByName(chain, plan, "b", 1);
    const std::int64_t toh = tileByName(chain, plan, "oh", config.oh2());
    const std::int64_t tow = tileByName(chain, plan, "ow", config.ow2());
    const std::int64_t toc1 = tileByName(chain, plan, "oc1", config.oc1);
    std::vector<RegionLoop> loops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            loops.push_back(RegionLoop{'b', config.batch, tb, axis});
        } else if (name == "oc1") {
            loops.push_back(RegionLoop{'c', config.oc1, toc1, axis});
        } else if (name == "oh") {
            loops.push_back(RegionLoop{'h', config.oh2(), toh, axis});
        } else if (name == "ow") {
            loops.push_back(RegionLoop{'w', config.ow2(), tow, axis});
        }
    }
    if (config.batch == 1) {
        loops.insert(loops.begin(), RegionLoop{'b', 1, 1, -1});
    }
    CHIMERA_ASSERT(loops.size() == 4, "missing conv region loop");
    return loops;
}

} // namespace

std::vector<std::int64_t>
convChainShapeI(const ConvChainConfig &c)
{
    return {c.batch, c.ic, c.h, c.w};
}

std::vector<std::int64_t>
convChainShapeW1(const ConvChainConfig &c)
{
    return {c.oc1, c.ic, c.k1, c.k1};
}

std::vector<std::int64_t>
convChainShapeW2(const ConvChainConfig &c)
{
    return {c.oc2, c.oc1, c.k2, c.k2};
}

std::vector<std::int64_t>
convChainShapeT(const ConvChainConfig &c)
{
    return {c.batch, c.oc1, c.oh1(), c.ow1()};
}

std::vector<std::int64_t>
convChainShapeO(const ConvChainConfig &c)
{
    return {c.batch, c.oc2, c.oh2(), c.ow2()};
}

void
runFusedConvChain(const ConvChainConfig &config,
                  const plan::ExecutionPlan &plan,
                  const ComputeEngine &engine, const Tensor &input,
                  const Tensor &w1, const Tensor &w2, Tensor &output,
                  const ExecOptions &options)
{
    checkShape(input, convChainShapeI(config), "I");
    checkShape(w1, convChainShapeW1(config), "W1");
    checkShape(w2, convChainShapeW2(config), "W2");
    checkShape(output, convChainShapeO(config), "O");

    const ir::Chain chain = ir::makeConvChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const std::int64_t tb = tileByName(chain, plan, "b", 1);
    const std::int64_t toc2 = tileByName(chain, plan, "oc2", config.oc2);
    const std::int64_t toh = tileByName(chain, plan, "oh", config.oh2());
    const std::int64_t tow = tileByName(chain, plan, "ow", config.ow2());
    const std::int64_t toc1 = tileByName(chain, plan, "oc1", config.oc1);
    const std::int64_t tic = tileByName(chain, plan, "ic", config.ic);

    const std::int64_t oh1 = config.oh1();
    const std::int64_t ow1 = config.ow1();
    const std::int64_t oh2 = config.oh2();
    const std::int64_t ow2 = config.ow2();
    const int k1 = config.k1;
    const int k2 = config.k2;
    const int st1 = config.stride1;
    const int st2 = config.stride2;
    const int pad1 = config.effectivePad1();
    const int pad2 = config.effectivePad2();

    // Split the region loops into the parallel task space and the serial
    // nest by the plan's concurrency table (dependence-analysis output;
    // kernel axes stay internal and never reach the region walk). Under
    // a sound table the b/oh/ow blocks are dependence-free (disjoint
    // output windows) and run in parallel, while the oc1 block loop —
    // the reduction dimension of conv2, every one of whose blocks
    // accumulates into the same output elements — runs serially
    // ascending inside each region, which keeps the per-element
    // accumulation order (and the output bits) identical to the serial
    // executor at every thread count.
    const RegionSchedule sched =
        partitionRegionLoops(convRegionLoops(chain, config, plan),
                             plan::effectiveConcurrency(chain, plan),
                             plan.parallelGrain);

    ThreadPool *pool = execPool(options);
    const int workers = execWorkerCount(pool);
    ChunkProfile *profile = options.profile;

    analysis::RaceChecker *race = options.raceCheck;
    if (race != nullptr) {
        CHIMERA_CHECK(race->numElements() == output.numel(),
                      "race checker must be sized to the conv output");
        race->beginPhase(chain.name() + " fused blocks");
    }

    // Per-worker on-chip intermediate region (maximal size over
    // regions) and im2col patch buffers for conv1 and conv2.
    const std::int64_t midHMax = st2 * (toh - 1) + k2;
    const std::int64_t midWMax = st2 * (tow - 1) + k2;
    std::vector<AlignedBuffer<float>> tRegions, patch1s, patch2s;
    tRegions.reserve(static_cast<std::size_t>(workers));
    patch1s.reserve(static_cast<std::size_t>(workers));
    patch2s.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        tRegions.push_back(allocateAligned<float>(static_cast<std::size_t>(
            tb * toc1 * midHMax * midWMax)));
        patch1s.push_back(allocateAligned<float>(static_cast<std::size_t>(
            tic * k1 * k1 * midWMax)));
        patch2s.push_back(allocateAligned<float>(static_cast<std::size_t>(
            toc1 * k2 * k2 * tow)));
    }

    output.zero();

    const std::int64_t w1Ld = config.ic * k1 * k1;
    const std::int64_t w2Ld = config.oc1 * k2 * k2;
    const std::int64_t inChanStride = config.h * config.w;
    const std::int64_t inBatchStride = config.ic * inChanStride;
    const std::int64_t outChanStride = oh2 * ow2;
    const std::int64_t outBatchStride = config.oc2 * outChanStride;

    // Parallel region blocks from the blessed loops; every unblessed
    // region loop (normally just oc1) runs serially ascending inside.
    // Dispatch is chunked by the plan's grain (grain-invariant outputs).
    const std::int64_t chunks = sched.chunkCount();
    if (profile != nullptr) {
        profile->beginPhase(chunks);
    }
    // Unified clock: ChunkProfile and the trace share obs::nowNanos.
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span execSpan(tracer, "exec.conv_chain", "exec");
    execSpan.arg("chunks", chunks).arg("workers", workers);
    parallelFor(pool, 0, chunks, [&](std::int64_t chunk, int worker) {
        const std::int64_t chunkStart = obs::nowNanos();
        std::int64_t taskLo = -1;
        std::int64_t taskHi = -1;
        float *tRegion = tRegions[static_cast<std::size_t>(worker)].get();
        float *patch1 = patch1s[static_cast<std::size_t>(worker)].get();
        float *patch2 = patch2s[static_cast<std::size_t>(worker)].get();
        sched.forEachTaskInChunk(chunk, [&](std::int64_t task) {
        if (taskLo < 0) {
            taskLo = task;
        }
        taskHi = task;
        const std::vector<BlockRange> parBlocks =
            decodeBlocks(sched.parallel, task);

        const std::int64_t steps = sched.serialSteps();
        for (std::int64_t s = 0; s < steps; ++s) {
        const std::vector<BlockRange> serBlocks =
            decodeBlocks(sched.serial, s);
        const BlockRange bBlk =
            findBlock(parBlocks, serBlocks, 'b', config.batch);
        const BlockRange hBlk = findBlock(parBlocks, serBlocks, 'h', oh2);
        const BlockRange wBlk = findBlock(parBlocks, serBlocks, 'w', ow2);
        const BlockRange cBlk =
            findBlock(parBlocks, serBlocks, 'c', config.oc1);
        const std::int64_t b0 = bBlk.start, bb = bBlk.size;
        const std::int64_t h0 = hBlk.start, hh = hBlk.size;
        const std::int64_t w0 = wBlk.start, ww = wBlk.size;
        const std::int64_t c0 = cBlk.start, cc = cBlk.size;

        // Shadow-memory claim: this task owns the output window
        // (all oc2 channels of rows h0..h0+hh, cols w0..w0+ww).
        if (race != nullptr) {
            for (std::int64_t bi = 0; bi < bb; ++bi) {
                for (std::int64_t oc = 0; oc < config.oc2; ++oc) {
                    for (std::int64_t rr = 0; rr < hh; ++rr) {
                        const std::int64_t at =
                            (b0 + bi) * outBatchStride +
                            oc * outChanStride + (h0 + rr) * ow2 + w0;
                        race->claimRange(task, at, at + ww);
                    }
                }
            }
        }

        // Halo-inflated intermediate slice covered by this region.
        const std::int64_t midH = st2 * (hh - 1) + k2;
        const std::int64_t midW = st2 * (ww - 1) + k2;
        const std::int64_t tRowLo = h0 * st2 - pad2;
        const std::int64_t tColLo = w0 * st2 - pad2;
        const std::int64_t ldRow = midW;
        const std::int64_t ldChan = midH * midW;
        const std::int64_t ldBatch = cc * ldChan;
        std::memset(tRegion, 0,
                    static_cast<std::size_t>(bb * ldBatch) * sizeof(float));

        // conv1: fill the valid part of the region via implicit GEMM.
        for (std::int64_t bi = 0; bi < bb; ++bi) {
            const float *inBase =
                input.data() + (b0 + bi) * inBatchStride;
            for (std::int64_t r = 0; r < midH; ++r) {
                const std::int64_t tRow = tRowLo + r;
                if (tRow < 0 || tRow >= oh1) {
                    continue; // conv2 zero padding stays zero
                }
                const std::int64_t colLoValid = std::max<std::int64_t>(
                    0, -tColLo);
                const std::int64_t colHiValid = std::min<std::int64_t>(
                    midW, ow1 - tColLo);
                if (colHiValid <= colLoValid) {
                    continue;
                }
                const std::int64_t cols = colHiValid - colLoValid;
                float *cBase = tRegion + bi * ldBatch + r * ldRow +
                               colLoValid;
                for (std::int64_t ic0 = 0; ic0 < config.ic; ic0 += tic) {
                    const std::int64_t icc =
                        std::min<std::int64_t>(tic, config.ic - ic0);
                    packPatchRow(inBase, inChanStride, config.h, config.w,
                                 ic0, icc, tRow, tColLo + colLoValid, cols,
                                 k1, st1, pad1, patch1);
                    engine.matmul(w1.data() + c0 * w1Ld + ic0 * k1 * k1,
                                  w1Ld, patch1, cols, cBase, ldChan,
                                  cc, cols, icc * k1 * k1);
                }
            }
        }

        // Fused epilogue on the on-chip region (relu(0) == 0, so the
        // zero-padded border stays consistent with reference padding).
        if (config.epilogue == Epilogue::Relu) {
            for (std::int64_t i = 0; i < bb * ldBatch; ++i) {
                tRegion[i] = std::max(tRegion[i], 0.0f);
            }
        }

        // conv2: consume the region for every oc2 block.
        for (std::int64_t bi = 0; bi < bb; ++bi) {
            for (std::int64_t rr = 0; rr < hh; ++rr) {
                // Patch over the region buffer: padding is materialized,
                // so pad = 0 and coordinates are region-local.
                packPatchRow(tRegion + bi * ldBatch, ldChan, midH,
                             midW, 0, cc, rr, 0, ww, k2, st2, 0,
                             patch2);
                for (std::int64_t oc0 = 0; oc0 < config.oc2; oc0 += toc2) {
                    const std::int64_t occ =
                        std::min<std::int64_t>(toc2, config.oc2 - oc0);
                    float *oBase = output.data() +
                                   (b0 + bi) * outBatchStride +
                                   oc0 * outChanStride + (h0 + rr) * ow2 +
                                   w0;
                    engine.matmul(w2.data() + oc0 * w2Ld + c0 * k2 * k2,
                                  w2Ld, patch2, ww, oBase,
                                  outChanStride, occ, ww, cc * k2 * k2);
                }
            }
        }
        }
        });
        const std::int64_t chunkNanos = obs::nowNanos() - chunkStart;
        if (profile != nullptr) {
            profile->recordChunk(
                chunk, static_cast<double>(chunkNanos) * 1e-9);
        }
        if (tracer != nullptr) {
            tracer->complete("exec.chunk", "exec", chunkStart, chunkNanos,
                             {{"chunk", chunk},
                              {"worker", static_cast<std::int64_t>(worker)},
                              {"task_lo", taskLo},
                              {"task_hi", taskHi}});
        }
    });
}

std::vector<std::string>
fusedConvChainParallelAxes(const ConvChainConfig &config,
                           const plan::ExecutionPlan &plan)
{
    const ir::Chain chain = ir::makeConvChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    const RegionSchedule sched =
        partitionRegionLoops(convRegionLoops(chain, config, plan),
                             plan::effectiveConcurrency(chain, plan));
    std::vector<std::string> names;
    for (const RegionLoop &loop : sched.parallel) {
        if (loop.axis >= 0) {
            names.push_back(
                chain.axes()[static_cast<std::size_t>(loop.axis)].name);
        }
    }
    return names;
}

void
runTiledConv2d(const ComputeEngine &engine, const Tensor &input,
               const Tensor &weight, Tensor &output, int stride, int pad,
               const ConvTiles &tiles, const ExecOptions &options)
{
    CHIMERA_CHECK(input.rank() == 4 && weight.rank() == 4 &&
                      output.rank() == 4,
                  "conv2d expects rank-4 tensors");
    const std::int64_t batch = input.shape()[0];
    const std::int64_t ic = input.shape()[1];
    const std::int64_t h = input.shape()[2];
    const std::int64_t w = input.shape()[3];
    const std::int64_t oc = weight.shape()[0];
    const int kernel = static_cast<int>(weight.shape()[2]);
    const std::int64_t oh = ref::convOutDim(h, kernel, stride, pad);
    const std::int64_t ow = ref::convOutDim(w, kernel, stride, pad);
    CHIMERA_CHECK(weight.shape()[1] == ic, "conv channel mismatch");
    checkShape(output, {batch, oc, oh, ow}, "conv output");

    output.zero();
    const std::int64_t wLd = ic * kernel * kernel;

    analysis::RaceChecker *race = options.raceCheck;
    if (race != nullptr) {
        CHIMERA_CHECK(race->numElements() == output.numel(),
                      "race checker must be sized to the conv output");
        race->beginPhase("tiled conv2d");
    }

    // Each (batch, output-row) pair writes a disjoint output row slice;
    // the ic reduction stays serial ascending inside it, so the output
    // is bitwise-identical at every thread count.
    ThreadPool *pool = execPool(options);
    const int workers = execWorkerCount(pool);
    std::vector<AlignedBuffer<float>> patches;
    patches.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        patches.push_back(allocateAligned<float>(static_cast<std::size_t>(
            std::min(tiles.tic, ic) * kernel * kernel * ow)));
    }

    ChunkProfile *profile = options.profile;
    if (profile != nullptr) {
        profile->beginPhase(batch * oh);
    }
    obs::TraceRecorder *const tracer = obs::trace();
    obs::Span execSpan(tracer, "exec.tiled_conv", "exec");
    execSpan.arg("tasks", batch * oh);
    parallelFor(pool, 0, batch * oh, [&](std::int64_t task, int worker) {
        const std::int64_t taskStart = obs::nowNanos();
        const std::int64_t bi = task / oh;
        const std::int64_t r = task % oh;
        const float *inBase = input.data() + bi * ic * h * w;
        float *outBase = output.data() + bi * oc * oh * ow;
        float *patch = patches[static_cast<std::size_t>(worker)].get();
        if (race != nullptr) {
            for (std::int64_t oc0 = 0; oc0 < oc; ++oc0) {
                const std::int64_t at =
                    bi * oc * oh * ow + oc0 * oh * ow + r * ow;
                race->claimRange(task, at, at + ow);
            }
        }
        for (std::int64_t ic0 = 0; ic0 < ic; ic0 += tiles.tic) {
            const std::int64_t icc =
                std::min<std::int64_t>(tiles.tic, ic - ic0);
            packPatchRow(inBase, h * w, h, w, ic0, icc, r, 0, ow,
                         kernel, stride, pad, patch);
            for (std::int64_t oc0 = 0; oc0 < oc; oc0 += tiles.toc) {
                const std::int64_t occ =
                    std::min<std::int64_t>(tiles.toc, oc - oc0);
                engine.matmul(
                    weight.data() + oc0 * wLd + ic0 * kernel * kernel,
                    wLd, patch, ow,
                    outBase + oc0 * oh * ow + r * ow, oh * ow, occ, ow,
                    icc * kernel * kernel);
            }
        }
        const std::int64_t taskNanos = obs::nowNanos() - taskStart;
        if (profile != nullptr) {
            profile->recordChunk(
                task, static_cast<double>(taskNanos) * 1e-9);
        }
        if (tracer != nullptr) {
            tracer->complete("exec.chunk", "exec", taskStart, taskNanos,
                             {{"chunk", task},
                              {"worker",
                               static_cast<std::int64_t>(worker)}});
        }
    });
}

void
runUnfusedConvChain(const ConvChainConfig &config,
                    const ComputeEngine &engine, const Tensor &input,
                    const Tensor &w1, const Tensor &w2, Tensor &scratchT,
                    Tensor &output, const ConvTiles &tiles1,
                    const ConvTiles &tiles2, const ExecOptions &options)
{
    checkShape(scratchT, convChainShapeT(config), "T scratch");
    // A race checker passed here is sized to the final output; the first
    // conv writes the differently-shaped scratch, so it runs unchecked.
    ExecOptions firstOptions = options;
    firstOptions.raceCheck = nullptr;
    runTiledConv2d(engine, input, w1, scratchT, config.stride1,
                   config.effectivePad1(), tiles1, firstOptions);
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(scratchT);
    }
    runTiledConv2d(engine, scratchT, w2, output, config.stride2,
                   config.effectivePad2(), tiles2, options);
}

void
referenceConvChain(const ConvChainConfig &config, const Tensor &input,
                   const Tensor &w1, const Tensor &w2, Tensor &output)
{
    Tensor t(convChainShapeT(config));
    ref::conv2d(input, w1, t, config.stride1, config.effectivePad1());
    if (config.epilogue == Epilogue::Relu) {
        ref::reluInPlace(t);
    }
    ref::conv2d(t, w2, output, config.stride2, config.effectivePad2());
}

} // namespace chimera::exec
