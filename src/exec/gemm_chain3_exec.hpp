#pragma once

/**
 * @file
 * Executor for three-GEMM chains: E = ((A x B) x D) x F — the paper's
 * "more compute-intensive operators" generalization of §IV-B.
 *
 * Both intermediates stay on chip: C1 as a (T_M x T_L) tile and C2 as a
 * (T_M x P) panel (the planner pins T_P = P so the middle output can be
 * fully accumulated before the third GEMM consumes it). Per (b, m)
 * region: for each l block, GEMM1 accumulates C1 over k, the epilogue
 * applies, and GEMM2 folds C1 into the C2 panel; after the l loop,
 * GEMM3 streams F and writes E.
 *
 * With the softmax epilogue the chain is the fused 4-op attention
 * pattern QK^T -> softmax -> .V -> proj. Softmax normalizes a full
 * score row, so the constraints additionally pin T_L = L: the single l
 * iteration materializes the whole row on chip, the softmax completes
 * (scale, exp, divide by the row sum) before GEMM2 consumes it, and no
 * cross-block rescaling is ever needed.
 */

#include "exec/compute_engine.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"
#include "tensor/tensor.hpp"

namespace chimera::exec {

/** Expected tensor shapes (batch dim only when batch > 1). */
std::vector<std::int64_t> gemmChain3ShapeA(const ir::GemmChain3Config &c);
std::vector<std::int64_t> gemmChain3ShapeB(const ir::GemmChain3Config &c);
std::vector<std::int64_t> gemmChain3ShapeD(const ir::GemmChain3Config &c);
std::vector<std::int64_t> gemmChain3ShapeF(const ir::GemmChain3Config &c);
std::vector<std::int64_t> gemmChain3ShapeE(const ir::GemmChain3Config &c);

/**
 * Tile constraints for planning a three-GEMM chain: the middle free
 * axis p is pinned to its extent (panel residency), plus the usual
 * CPU micro-kernel constraints on m/n/k/l.
 */
solver::TileConstraints
gemmChain3Constraints(const ir::Chain &chain,
                      const kernels::MicroKernel &kernel);

/**
 * Runs the fused chain under @p plan (plan must pin T_P = P).
 *
 * The region loops distributed across @p options threads are chosen by
 * the plan's concurrency table (see analysis/dependence.hpp), not
 * hardcoded: under a sound table the (b, m) regions are independent —
 * each owns its C1/C2 buffers and disjoint E rows — and run in
 * parallel, with bitwise-identical output at every thread count (the
 * l/k reductions stay serial ascending inside each region).
 */
void runFusedGemmChain3(const ir::GemmChain3Config &config,
                        const plan::ExecutionPlan &plan,
                        const ComputeEngine &engine, const Tensor &a,
                        const Tensor &b, const Tensor &d, const Tensor &f,
                        Tensor &e, const ExecOptions &options = {});

/**
 * Names of the chain axes runFusedGemmChain3 would distribute across
 * workers for @p plan (synthesized unit batch loop excluded). Lets
 * tests cross-check executor behavior against the analysis.
 */
std::vector<std::string>
fusedGemmChain3ParallelAxes(const ir::GemmChain3Config &config,
                            const plan::ExecutionPlan &plan);

/** Unfused baseline: three tiled batch GEMMs with DRAM intermediates. */
void runUnfusedGemmChain3(const ir::GemmChain3Config &config,
                          const ComputeEngine &engine, const Tensor &a,
                          const Tensor &b, const Tensor &d,
                          const Tensor &f, Tensor &scratchC1,
                          Tensor &scratchC2, Tensor &e,
                          const GemmTiles &tiles,
                          const ExecOptions &options = {});

/** Naive oracle for the whole chain. */
void referenceGemmChain3(const ir::GemmChain3Config &config,
                         const Tensor &a, const Tensor &b, const Tensor &d,
                         const Tensor &f, Tensor &e);

} // namespace chimera::exec
