#pragma once

/**
 * @file
 * Executors for convolution chains (Figure 1b).
 *
 * The fused executor materializes, per planned region (b/oc1/oh/ow
 * tiles), the halo-inflated slice of the intermediate feature map in an
 * on-chip buffer: conv1 produces it via implicit GEMM (per-row im2col
 * packing + the replaceable micro kernel), the optional ReLU is applied
 * in place, and conv2 consumes it for every oc2 block before the buffer
 * is reused. Overlapping halos between adjacent spatial regions are
 * recomputed, the re-computation cost the paper accepts for 3x3
 * producers (§VI-B).
 *
 * The unfused executor is the library-style baseline: conv1 writes the
 * full intermediate to DRAM, then conv2 reads it back.
 */

#include "exec/compute_engine.hpp"
#include "exec/exec_options.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"
#include "tensor/tensor.hpp"

namespace chimera::exec {

/** Expected tensor shapes for a conv chain config. */
std::vector<std::int64_t> convChainShapeI(const ir::ConvChainConfig &c);
std::vector<std::int64_t> convChainShapeW1(const ir::ConvChainConfig &c);
std::vector<std::int64_t> convChainShapeW2(const ir::ConvChainConfig &c);
std::vector<std::int64_t> convChainShapeT(const ir::ConvChainConfig &c);
std::vector<std::int64_t> convChainShapeO(const ir::ConvChainConfig &c);

/**
 * Runs the fused chain O = conv2(epilogue(conv1(I, W1)), W2) under
 * @p plan (produced for the chain built by makeConvChain).
 *
 * Which region blocks are distributed across @p options threads is
 * decided by the plan's concurrency table (see analysis/dependence.hpp
 * and plan::effectiveConcurrency), not hardcoded: under a sound table
 * the batch/oh/ow blocks write disjoint output windows and run in
 * parallel, while the oc1 block loop — conv2's reduction dimension —
 * runs serially ascending inside each region, so the output is
 * bitwise-identical at every thread count. Unblessed axes are refused
 * (executed serially).
 */
void runFusedConvChain(const ir::ConvChainConfig &config,
                       const plan::ExecutionPlan &plan,
                       const ComputeEngine &engine, const Tensor &input,
                       const Tensor &w1, const Tensor &w2, Tensor &output,
                       const ExecOptions &options = {});

/**
 * Names of the chain axes runFusedConvChain would distribute across
 * workers for @p plan — the region loops the concurrency table blesses
 * as parallel (the synthesized unit batch loop is excluded). Lets tests
 * cross-check executor behavior against the analysis.
 */
std::vector<std::string>
fusedConvChainParallelAxes(const ir::ConvChainConfig &config,
                           const plan::ExecutionPlan &plan);

/** Channel tiles for the unfused per-conv executor. */
struct ConvTiles
{
    std::int64_t toc = 64;
    std::int64_t tic = 64;
};

/**
 * Single tiled NCHW convolution via implicit GEMM (zero-pads like
 * ref::conv2d). Output is overwritten. Independent (batch, output-row)
 * pairs are split across threads.
 */
void runTiledConv2d(const ComputeEngine &engine, const Tensor &input,
                    const Tensor &weight, Tensor &output, int stride,
                    int pad, const ConvTiles &tiles,
                    const ExecOptions &options = {});

/**
 * Unfused chain: conv1 -> DRAM intermediate -> epilogue -> conv2.
 *
 * @param scratchT [batch, OC1, OH1, OW1] DRAM intermediate.
 */
void runUnfusedConvChain(const ir::ConvChainConfig &config,
                         const ComputeEngine &engine, const Tensor &input,
                         const Tensor &w1, const Tensor &w2,
                         Tensor &scratchT, Tensor &output,
                         const ConvTiles &tiles1, const ConvTiles &tiles2,
                         const ExecOptions &options = {});

/** Whole-chain oracle built on ref::conv2d. */
void referenceConvChain(const ir::ConvChainConfig &config,
                        const Tensor &input, const Tensor &w1,
                        const Tensor &w2, Tensor &output);

} // namespace chimera::exec
