#pragma once

/**
 * @file
 * Per-worker busy-time accounting for chunked dispatch.
 *
 * The scaling bench needs the critical path T_par = sum over phases of
 * max_w busy[w]: the time the slowest worker of each dispatch phase is
 * busy under the plan's static worker -> chunk assignment. Executors
 * time every chunk they run and attribute it to the chunk's *static
 * owner* (staticChunkOwner over the phase's chunk count), not the OS
 * thread that happened to execute it — so the accounting measures the
 * plan's load balance and is identical whether the run was actually
 * parallel or serialized onto fewer hardware threads (the bench host
 * may have a single core; DESIGN.md "Thread-aware planning" explains
 * the simulated-critical-path methodology).
 *
 * Accumulators are cache-line sized so concurrent workers recording
 * into adjacent slots never share a line.
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/aligned.hpp"

namespace chimera::exec {

/** Accumulates per-simulated-worker busy time across dispatch phases. */
class ChunkProfile
{
  public:
    /** @param workers Simulated worker count (>= 1). */
    explicit ChunkProfile(int workers);

    /** Simulated workers the profile was sized for. */
    int workers() const { return workers_; }

    /**
     * Opens a new dispatch phase of @p chunkCount chunks: the critical
     * path of the previous phase (max busy worker) is folded into the
     * running total and the per-worker accumulators reset. Executors
     * call this once before every parallelFor over chunks.
     */
    void beginPhase(std::int64_t chunkCount);

    /**
     * Charges @p seconds of chunk @p chunk to its static owner under
     * the current phase's assignment. Thread-safe: concurrent chunks
     * with different owners write disjoint cache lines; same-owner
     * chunks accumulate atomically.
     */
    void recordChunk(std::int64_t chunk, double seconds);

    /**
     * Critical path so far: sum over closed phases of the slowest
     * worker's busy time, plus the current phase's. With workers == 1
     * this equals totalBusySeconds() (serial execution).
     */
    double criticalPathSeconds() const;

    /** Total busy time across all workers and phases. */
    double totalBusySeconds() const;

  private:
    struct alignas(kBufferAlignment) Slot
    {
        // Nanoseconds, not double: C++17 has no atomic double add.
        std::atomic<std::int64_t> nanos{0};
    };

    double phaseMaxSeconds() const;

    int workers_ = 1;
    std::int64_t phaseChunks_ = 0;
    double closedCriticalSeconds_ = 0.0;
    double closedTotalSeconds_ = 0.0;
    std::vector<Slot> slots_;
};

} // namespace chimera::exec
