#pragma once

/**
 * @file
 * CNN backbone substrate: a stack of convolution chains (the Figure 1b
 * pattern from SqueezeNet/Yolo) ending in global average pooling and a
 * classifier. Each stage's two convolutions + ReLU execute either as a
 * Chimera-fused chain or as the unfused library path, with identical
 * weights, so end-to-end deltas isolate the chain fusion exactly as the
 * Transformer substrate does for attention.
 */

#include <string>
#include <vector>

#include "exec/compute_engine.hpp"
#include "exec/conv_chain_exec.hpp"
#include "plan/planner.hpp"
#include "tensor/tensor.hpp"

namespace chimera::graph {

/** How conv chains are executed (mirrors AttentionMode). */
enum class ConvMode
{
    FusedChimera,
    Unfused,
};

/** One conv-chain stage specification. */
struct CnnStageSpec
{
    std::int64_t oc1 = 0; ///< squeeze / first-conv channels
    std::int64_t oc2 = 0; ///< expand / second-conv channels
    int k1 = 3;
    int k2 = 1;
    int stride1 = 1;
    int stride2 = 1;
};

/** Backbone hyper-parameters. */
struct CnnConfig
{
    std::string name = "cnn";
    std::int64_t batch = 1;
    std::int64_t inChannels = 3;
    std::int64_t height = 64;
    std::int64_t width = 64;
    std::int64_t classes = 10;
    std::vector<CnnStageSpec> stages;
};

/** A scaled-down SqueezeNet-like backbone (3 stages). */
CnnConfig squeezeNetLike();

/** Weight-initialized CNN; both modes share weights. */
class CnnBackbone
{
  public:
    CnnBackbone(const CnnConfig &config, double cacheCapacityBytes,
                std::uint64_t seed = 5);

    /**
     * Runs the stack on [batch, C, H, W]; returns [batch, classes].
     * @p options distributes each stage's region blocks (and the
     * classifier GEMM) across threads; the output is bitwise-identical
     * at every thread count.
     */
    Tensor forward(const Tensor &input, ConvMode mode,
                   const exec::ExecOptions &options = {}) const;

    /** Resolved chain configs, one per stage. */
    const std::vector<ir::ConvChainConfig> &stageChains() const
    {
        return chains_;
    }

    const CnnConfig &config() const { return config_; }

  private:
    CnnConfig config_;
    std::vector<ir::ConvChainConfig> chains_;
    std::vector<plan::ExecutionPlan> plans_;
    std::vector<Tensor> w1_;
    std::vector<Tensor> w2_;
    Tensor classifier_; ///< [lastChannels, classes]
    exec::ComputeEngine engine_;
};

} // namespace chimera::graph
