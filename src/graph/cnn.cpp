#include "graph/cnn.hpp"

#include <cmath>

#include "exec/constraints.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace chimera::graph {

CnnConfig
squeezeNetLike()
{
    CnnConfig cfg;
    cfg.name = "SqueezeNet-like";
    cfg.batch = 1;
    cfg.inChannels = 8;
    cfg.height = 56;
    cfg.width = 56;
    cfg.classes = 10;
    cfg.stages = {
        {16, 32, 3, 1, 2, 1}, // stem-ish: 3x3 s2 then pointwise expand
        {24, 48, 1, 3, 1, 1}, // squeeze 1x1 then 3x3 expand
        {32, 64, 3, 1, 1, 1}, // 3x3 then pointwise
    };
    return cfg;
}

CnnBackbone::CnnBackbone(const CnnConfig &config, double cacheCapacityBytes,
                         std::uint64_t seed)
    : config_(config), engine_(exec::ComputeEngine::best())
{
    CHIMERA_CHECK(!config.stages.empty(), "CNN needs at least one stage");
    Rng rng(seed);

    std::int64_t ic = config.inChannels;
    std::int64_t h = config.height;
    std::int64_t w = config.width;
    const kernels::MicroKernel &kernel =
        kernels::MicroKernelRegistry::instance().select(detectSimdTier());
    for (std::size_t s = 0; s < config.stages.size(); ++s) {
        const CnnStageSpec &spec = config.stages[s];
        ir::ConvChainConfig chain;
        chain.name = config.name + "-stage" + std::to_string(s);
        chain.batch = config.batch;
        chain.ic = ic;
        chain.h = h;
        chain.w = w;
        chain.oc1 = spec.oc1;
        chain.oc2 = spec.oc2;
        chain.k1 = spec.k1;
        chain.k2 = spec.k2;
        chain.stride1 = spec.stride1;
        chain.stride2 = spec.stride2;
        chain.epilogue = ir::Epilogue::Relu;
        chains_.push_back(chain);

        const ir::Chain chainIr = ir::makeConvChain(chain);
        plan::PlannerOptions options;
        options.memCapacityBytes = cacheCapacityBytes;
        options.constraints = exec::cpuChainConstraints(chainIr, kernel);
        plans_.push_back(plan::planChain(chainIr, options));

        Tensor w1(exec::convChainShapeW1(chain));
        Tensor w2(exec::convChainShapeW2(chain));
        const float scale1 =
            1.0f / std::sqrt(static_cast<float>(ic * spec.k1 * spec.k1));
        const float scale2 = 1.0f / std::sqrt(static_cast<float>(
                                 spec.oc1 * spec.k2 * spec.k2));
        fillUniform(w1, rng, -scale1, scale1);
        fillUniform(w2, rng, -scale2, scale2);
        w1_.push_back(std::move(w1));
        w2_.push_back(std::move(w2));

        ic = spec.oc2;
        h = chain.oh2();
        w = chain.ow2();
    }

    classifier_ = Tensor({ic, config.classes});
    fillUniform(classifier_, rng, -0.1f, 0.1f);
}

Tensor
CnnBackbone::forward(const Tensor &input, ConvMode mode,
                     const exec::ExecOptions &options) const
{
    CHIMERA_CHECK(input.shape() ==
                      std::vector<std::int64_t>({config_.batch,
                                                 config_.inChannels,
                                                 config_.height,
                                                 config_.width}),
                  "CNN input must be [batch, C, H, W]");

    Tensor activation = input;
    for (std::size_t s = 0; s < chains_.size(); ++s) {
        const ir::ConvChainConfig &chain = chains_[s];
        Tensor next(exec::convChainShapeO(chain));
        if (mode == ConvMode::FusedChimera) {
            exec::runFusedConvChain(chain, plans_[s], engine_, activation,
                                    w1_[s], w2_[s], next, options);
        } else {
            Tensor scratch(exec::convChainShapeT(chain));
            exec::runUnfusedConvChain(chain, engine_, activation, w1_[s],
                                      w2_[s], scratch, next, {64, 64},
                                      {64, 64}, options);
        }
        // Inter-stage ReLU (the chains fuse only the internal one).
        float *p = next.data();
        for (std::int64_t i = 0; i < next.numel(); ++i) {
            p[i] = p[i] > 0.0f ? p[i] : 0.0f;
        }
        activation = std::move(next);
    }

    // Global average pooling to [batch, channels].
    const std::int64_t channels = activation.shape()[1];
    const std::int64_t pixels =
        activation.shape()[2] * activation.shape()[3];
    Tensor pooled({config_.batch, channels});
    for (std::int64_t b = 0; b < config_.batch; ++b) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float *base =
                activation.data() + (b * channels + c) * pixels;
            float sum = 0.0f;
            for (std::int64_t i = 0; i < pixels; ++i) {
                sum += base[i];
            }
            pooled[b * channels + c] = sum / static_cast<float>(pixels);
        }
    }

    Tensor logits({config_.batch, config_.classes});
    exec::runTiledBatchGemm(engine_, pooled, classifier_, logits,
                            {64, 64, 64}, options);
    return logits;
}

} // namespace chimera::graph
