#include "graph/transformer.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "tensor/reference.hpp"

namespace chimera::graph {

namespace {

EncoderConfig
named(const char *name, std::int64_t seq, std::int64_t heads,
      std::int64_t headDim, int layers)
{
    EncoderConfig cfg;
    cfg.name = name;
    cfg.seqLen = seq;
    cfg.heads = heads;
    cfg.headDim = headDim;
    cfg.ffDim = 4 * heads * headDim;
    cfg.layers = layers;
    return cfg;
}

} // namespace

EncoderConfig
transformerSmall()
{
    return named("TF-Small", 512, 8, 64, 1);
}

EncoderConfig
transformerBase()
{
    return named("TF-Base", 512, 12, 64, 1);
}

EncoderConfig
transformerLarge()
{
    return named("TF-Large", 512, 16, 64, 1);
}

EncoderConfig
bertBase()
{
    return named("Bert-Base", 512, 12, 64, 2);
}

EncoderConfig
bertLarge()
{
    return named("Bert-Large", 512, 16, 64, 2);
}

EncoderConfig
vitBase()
{
    return named("ViT-Base", 256, 12, 64, 2);
}

EncoderConfig
vitLarge()
{
    return named("ViT-Large", 256, 16, 64, 2);
}

TransformerEncoder::TransformerEncoder(const EncoderConfig &config,
                                       double cacheCapacityBytes,
                                       std::uint64_t seed)
    : config_(config), engine_(exec::ComputeEngine::best())
{
    CHIMERA_CHECK(config.seqLen >= 1 && config.heads >= 1 &&
                      config.headDim >= 1 && config.ffDim >= 1 &&
                      config.layers >= 1,
                  "bad encoder configuration");

    chainCfg_.name = config.name + "-attention";
    chainCfg_.batch = config.heads;
    chainCfg_.m = config.seqLen;
    chainCfg_.n = config.headDim;
    chainCfg_.k = config.headDim;
    chainCfg_.l = config.seqLen;
    chainCfg_.epilogue = ir::Epilogue::Softmax;
    chainCfg_.softmaxScale =
        1.0f / std::sqrt(static_cast<float>(config.headDim));
    chainCfg_.causalMask = config.causal;

    const ir::Chain chain = ir::makeGemmChain(chainCfg_);
    plan::PlannerOptions options;
    options.memCapacityBytes = cacheCapacityBytes;
    options.constraints = exec::cpuChainConstraints(
        chain,
        kernels::MicroKernelRegistry::instance().select(detectSimdTier()));
    plan_ = plan::planChain(chain, options);

    Rng rng(seed);
    const std::int64_t d = config.modelDim();
    weights_.resize(static_cast<std::size_t>(config.layers));
    for (LayerWeights &w : weights_) {
        w.wq = Tensor({d, d});
        w.wk = Tensor({d, d});
        w.wv = Tensor({d, d});
        w.wo = Tensor({d, d});
        w.ff1 = Tensor({d, config.ffDim});
        w.ff2 = Tensor({config.ffDim, d});
        w.bias1 = Tensor({config.ffDim});
        w.bias2 = Tensor({d});
        w.gamma1 = Tensor({d});
        w.beta1 = Tensor({d});
        w.gamma2 = Tensor({d});
        w.beta2 = Tensor({d});
        const float scale = 0.5f / std::sqrt(static_cast<float>(d));
        for (Tensor *t : {&w.wq, &w.wk, &w.wv, &w.wo, &w.ff1, &w.ff2}) {
            fillUniform(*t, rng, -scale, scale);
        }
        fillUniform(w.bias1, rng, -0.05f, 0.05f);
        fillUniform(w.bias2, rng, -0.05f, 0.05f);
        w.gamma1.fill(1.0f);
        w.gamma2.fill(1.0f);
        w.beta1.zero();
        w.beta2.zero();
    }
}

void
TransformerEncoder::runAttention(const Tensor &x, Tensor &out,
                                 AttentionMode mode,
                                 const LayerWeights &w) const
{
    const std::int64_t seq = config_.seqLen;
    const std::int64_t heads = config_.heads;
    const std::int64_t hd = config_.headDim;
    const std::int64_t d = config_.modelDim();
    const exec::GemmTiles denseTiles{64, 64, 64};

    Tensor q({seq, d}), k({seq, d}), v({seq, d});
    exec::runTiledBatchGemm(engine_, x, w.wq, q, denseTiles);
    exec::runTiledBatchGemm(engine_, x, w.wk, k, denseTiles);
    exec::runTiledBatchGemm(engine_, x, w.wv, v, denseTiles);

    // Head split: A [heads, seq, hd], B = K^T [heads, hd, seq],
    // D = V [heads, seq, hd].
    Tensor a({heads, seq, hd}), bT({heads, hd, seq}), dV({heads, seq, hd});
    for (std::int64_t h = 0; h < heads; ++h) {
        for (std::int64_t s = 0; s < seq; ++s) {
            for (std::int64_t e = 0; e < hd; ++e) {
                a[(h * seq + s) * hd + e] = q[s * d + h * hd + e];
                bT[(h * hd + e) * seq + s] = k[s * d + h * hd + e];
                dV[(h * seq + s) * hd + e] = v[s * d + h * hd + e];
            }
        }
    }

    Tensor headsOut({heads, seq, hd});
    if (mode == AttentionMode::FusedChimera) {
        exec::runFusedGemmChain(chainCfg_, plan_, engine_, a, bT, dV,
                                headsOut);
    } else {
        Tensor scratch({heads, seq, seq});
        exec::runUnfusedGemmChain(chainCfg_, engine_, a, bT, dV, scratch,
                                  headsOut, denseTiles, denseTiles);
    }

    // Concat heads and project.
    Tensor concat({seq, d});
    for (std::int64_t h = 0; h < heads; ++h) {
        for (std::int64_t s = 0; s < seq; ++s) {
            for (std::int64_t e = 0; e < hd; ++e) {
                concat[s * d + h * hd + e] =
                    headsOut[(h * seq + s) * hd + e];
            }
        }
    }
    exec::runTiledBatchGemm(engine_, concat, w.wo, out, denseTiles);
}

Tensor
TransformerEncoder::forward(const Tensor &input, AttentionMode mode) const
{
    const std::int64_t seq = config_.seqLen;
    const std::int64_t d = config_.modelDim();
    CHIMERA_CHECK(input.shape() == std::vector<std::int64_t>({seq, d}),
                  "encoder input must be [seqLen, modelDim]");
    const exec::GemmTiles denseTiles{64, 64, 64};

    Tensor x = input;
    for (const LayerWeights &w : weights_) {
        // Self-attention block with residual + layer norm.
        Tensor attn({seq, d});
        runAttention(x, attn, mode, w);
        Tensor res1({seq, d});
        ref::add(x, attn, res1);
        ref::layerNormLastDim(res1, w.gamma1, w.beta1);

        // Feed-forward block with residual + layer norm.
        Tensor h({seq, config_.ffDim});
        exec::runTiledBatchGemm(engine_, res1, w.ff1, h, denseTiles);
        ref::addBiasLastDim(h, w.bias1);
        ref::geluInPlace(h);
        Tensor y({seq, d});
        exec::runTiledBatchGemm(engine_, h, w.ff2, y, denseTiles);
        ref::addBiasLastDim(y, w.bias2);
        Tensor res2({seq, d});
        ref::add(res1, y, res2);
        ref::layerNormLastDim(res2, w.gamma2, w.beta2);
        x = std::move(res2);
    }
    return x;
}

} // namespace chimera::graph
