#pragma once

/**
 * @file
 * End-to-end network substrate for the Figure 9 experiment: a
 * Transformer encoder stack (the shared architecture of Transformer,
 * Bert, and ViT) whose multi-head self-attention dispatches its batch
 * GEMM chain either to Chimera's fused executor or to the unfused
 * library-style path. All other operators (dense projections, GELU,
 * layer norm, residual adds) run identically in both modes, so the
 * end-to-end delta isolates the chain-fusion contribution exactly as
 * the paper's Relay+Chimera vs Relay+CuDNN comparison does.
 */

#include <memory>
#include <string>
#include <vector>

#include "exec/compute_engine.hpp"
#include "exec/constraints.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "plan/planner.hpp"
#include "tensor/tensor.hpp"

namespace chimera::graph {

/** Encoder stack hyper-parameters. */
struct EncoderConfig
{
    std::string name = "encoder";
    std::int64_t seqLen = 512;
    std::int64_t heads = 8;
    std::int64_t headDim = 64;
    std::int64_t ffDim = 2048;
    int layers = 1;

    /** Decoder-style causal attention masking. */
    bool causal = false;

    std::int64_t modelDim() const { return heads * headDim; }
};

/** Named model configurations used by the paper's Figure 9. */
EncoderConfig transformerSmall();
EncoderConfig transformerBase();
EncoderConfig transformerLarge();
EncoderConfig bertBase();
EncoderConfig bertLarge();
EncoderConfig vitBase();
EncoderConfig vitLarge();

/** How the attention batch GEMM chain is executed. */
enum class AttentionMode
{
    FusedChimera, ///< Planned fused kernel (this paper).
    Unfused, ///< Library-style: two batch GEMMs + softmax pass.
};

/**
 * A weight-initialized encoder stack. Weights are deterministic from a
 * seed; both attention modes share identical weights so their outputs
 * must agree.
 */
class TransformerEncoder
{
  public:
    /**
     * Builds the encoder and plans the attention chain.
     *
     * @param config            Architecture.
     * @param cacheCapacityBytes Planner memory budget for the chain.
     * @param seed              Weight-init seed.
     */
    TransformerEncoder(const EncoderConfig &config,
                       double cacheCapacityBytes, std::uint64_t seed = 7);

    /**
     * Runs the full stack on input [seqLen, modelDim]; returns the
     * output activation.
     */
    Tensor forward(const Tensor &input, AttentionMode mode) const;

    /** The attention chain configuration (Table IV row equivalent). */
    const ir::GemmChainConfig &attentionChain() const { return chainCfg_; }

    /** The plan chosen for the fused attention chain. */
    const plan::ExecutionPlan &attentionPlan() const { return plan_; }

    const EncoderConfig &config() const { return config_; }

  private:
    struct LayerWeights
    {
        Tensor wq, wk, wv, wo; ///< [modelDim, modelDim]
        Tensor ff1, ff2; ///< [modelDim, ffDim], [ffDim, modelDim]
        Tensor bias1, bias2; ///< [ffDim], [modelDim]
        Tensor gamma1, beta1, gamma2, beta2; ///< layer-norm params
    };

    void runAttention(const Tensor &x, Tensor &out,
                      AttentionMode mode, const LayerWeights &w) const;

    EncoderConfig config_;
    ir::GemmChainConfig chainCfg_;
    plan::ExecutionPlan plan_;
    exec::ComputeEngine engine_;
    std::vector<LayerWeights> weights_;
};

} // namespace chimera::graph
