#pragma once

/**
 * @file
 * Static plan-safety legality analysis: the SB rule family plus the
 * PL14 certificate-binding rule.
 *
 * The analyzer itself lives in analysis/static_safety.hpp; this layer
 * turns its findings into verify::Report diagnostics and polices the
 * `safety:` plan-document line.
 *
 * Rules:
 *  - SB01  a block read/write window escapes its tensor's extents for
 *          some shape in the certified domain (error)
 *  - SB02  the maximum live window over the block grid exceeds the
 *          per-worker capacity budget (error)
 *  - SB03  index arithmetic in the lowered nests (linearized offsets,
 *          task counts, chunk strides, workspace totals) can overflow
 *          int64 (error)
 *  - SB04  a parallel-marked axis has no shape-generic disjointness
 *          proof for its output windows (error)
 *  - PL14  certificate binding defect: malformed `safety:` fields, a
 *          digest that does not match the bound chain + schedule, or
 *          claimed rules the re-run analyzer refutes (error). Extends
 *          the PL document-binding family the same way PL12 does for
 *          `concurrency:`.
 */

#include <string>

#include "analysis/static_safety.hpp"
#include "plan/plan_io.hpp"
#include "verify/diagnostics.hpp"

namespace chimera::verify {

/** Budget/domain context for the safety checks. */
struct SafetyVerifyOptions
{
    /** SB02 capacity (<= 0 skips), as PlannerOptions::memCapacityBytes. */
    double memCapacityBytes = 0.0;

    /** Topology for the per-worker budget clamp (may be empty). */
    model::MachineModel topology;

    /**
     * Worker count when the plan itself is serial-planned
     * (plannedThreads <= 1); a thread-aware plan's own count wins.
     */
    int workers = 1;

    /**
     * Shape-domain spec for verifyPlanSafety ("" or "concrete" pins
     * every axis; otherwise ShapeDomain::summary grammar, e.g.
     * "b:1..4096"). verifySafetyCertificate always uses the
     * certificate's own domain instead.
     */
    std::string domainSpec;
};

/**
 * Runs the static safety analyzer on (@p chain, @p plan) over
 * @p options.domainSpec and reports every violation as an SB error.
 * Throws chimera::Error on a malformed domainSpec (a caller/CLI input
 * defect, not a plan defect). @p out, when non-null, receives the full
 * analysis — certificate and per-rule timings — for `--static`
 * reporting. The plan's perm/tiles must be structurally valid (PL03/
 * PL04/PL05 pass first).
 */
Report verifyPlanSafety(const ir::Chain &chain,
                        const plan::ExecutionPlan &plan,
                        const SafetyVerifyOptions &options,
                        analysis::SafetyAnalysis *out = nullptr);

/**
 * PL14 validation of an attached certificate: recomputes the digest
 * from the bound schedule and re-runs the analyzer over the
 * certificate's own domain, so a `safety:` line can neither be forged
 * nor replayed onto a different schedule. Refuted claims additionally
 * carry their SB findings. No-op (empty report) on uncertified plans.
 */
Report verifySafetyCertificate(const ir::Chain &chain,
                               const plan::ExecutionPlan &plan,
                               const SafetyVerifyOptions &options);

} // namespace chimera::verify
