#pragma once

/**
 * @file
 * Concurrency-declaration legality analysis (the DP rule family).
 *
 * A plan's AxisConcurrency table decides which block loops the executors
 * distribute across worker threads, so a wrong table is not a
 * performance bug — it is a data race. This pass re-derives the table
 * with analysis::analyzeConcurrency and flags every disagreement
 * between what a plan *declares* and what the dependence analysis can
 * *prove*. Declaring an axis more permissive than the proof supports is
 * an error (the executor would parallelize a racy loop); declaring it
 * more restrictive is a warning (sound, but serializes work the
 * analysis proved independent).
 *
 * Rules:
 *  - DP01  table defect: the declared table's arity does not match the
 *          chain's axis count (error)
 *  - DP02  an axis declared parallel is a reduction axis under fresh
 *          analysis — distinct blocks accumulate into the same output
 *          elements (error)
 *  - DP03  an axis declared parallel or reduction is sequential under
 *          fresh analysis — blocks carry an output dependence that is
 *          not a pure reduction (error)
 *  - DP04  over-serialization: an axis the analysis proves parallel is
 *          declared reduction or sequential (warning)
 *  - DP05  an epilogue-induced axis (softmax row normalization couples
 *          blocks along it) is declared parallel (error; replaces the
 *          DP02 report for that axis)
 *  - DP06  a v2 plan document carries no concurrency table, so the
 *          loader falls back to fresh analysis (note)
 *
 * PL12 (unknown axis / unknown kind / duplicate / incomplete coverage
 * in a document's concurrency line) is reported by
 * verifyDocumentConcurrency via plan::bindConcurrency and extends the
 * PL document-binding family.
 */

#include <cstdint>
#include <vector>

#include "analysis/dependence.hpp"
#include "plan/plan_io.hpp"
#include "verify/diagnostics.hpp"

namespace chimera::verify {

/**
 * Compares @p declared against a fresh dependence analysis of
 * (@p chain, @p tiles): DP01 on arity mismatch, then DP02-DP05 per
 * axis. @p tiles must be a valid tile vector (callers run the PL04/PL05
 * checks first).
 */
Report verifyConcurrency(
    const ir::Chain &chain, const std::vector<std::int64_t> &tiles,
    const std::vector<analysis::AxisConcurrency> &declared);

/**
 * Document-level entry: binds @p doc's concurrency line to @p chain
 * (PL12 on unknown axes/kinds, duplicates, or incomplete coverage),
 * then runs verifyConcurrency against @p tiles when the binding
 * succeeds. A v2 document without a concurrency line yields the DP06
 * note. @p tiles is the document's tile vector after binding.
 */
Report verifyDocumentConcurrency(const ir::Chain &chain,
                                 const plan::ParsedPlanDoc &doc,
                                 const std::vector<std::int64_t> &tiles);

} // namespace chimera::verify
