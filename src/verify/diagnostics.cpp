#include "verify/diagnostics.hpp"

#include <algorithm>

namespace chimera::verify {

const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "unknown";
}

const std::vector<RuleInfo> &
publishedRules()
{
    static const std::vector<RuleInfo> rules = {
        {"CH01", "CH", "chain structure: no operators or no tensors", true},
        {"CH02", "CH", "axis declaration: empty/duplicate name, extent < 1",
         true},
        {"CH03", "CH", "dangling op->axis / op->tensor / output reference",
         true},
        {"CH04", "CH", "access map: tensor without dims, coefficient < 1",
         true},
        {"CH05", "CH", "producer/consumer access-shape disagreement", true},
        {"CH06", "CH", "dataflow: intermediate consumed before produced",
         true},
        {"CH07", "CH", "independent axis not derivable from any operator",
         true},
        {"PL01", "PL", "plan document syntax error", true},
        {"PL02", "PL", "order/tiles/grain name an unknown axis", true},
        {"PL03", "PL", "order is not a permutation of the chain's axes",
         true},
        {"PL04", "PL", "tile size outside [1, extent]", true},
        {"PL05", "PL", "plan incomplete: missing order/tiles entries",
         true},
        {"PL06", "PL", "block order not executable with single regions",
         true},
        {"PL07", "PL", "re-derived memory usage exceeds the capacity",
         true},
        {"PL08", "PL", "declared DV/MU predictions disagree with re-derived",
         true},
        {"PL09", "PL", "Algorithm 1 disagrees with brute-force recount",
         true},
        {"PL10", "PL", "document fingerprint mismatch", true},
        {"PL11", "PL", "multi-level schedule nesting defect", true},
        {"PL12", "PL", "concurrency line binding defect", true},
        {"PL13", "PL", "thread-aware chunking defect", true},
        {"PL14", "PL", "safety-certificate binding defect (forged/replayed"
                       " or refuted `safety:` line)",
         true},
        {"PL15", "PL", "search-stats binding defect (inconsistent counts"
                       " or forged/replayed `search:` line)",
         true},
        {"KP01", "KP", "micro-kernel register usage exceeds the budget",
         true},
        {"KP02", "KP", "micro-kernel structure: MII < 2 or MII !| MI",
         true},
        {"KP03", "KP", "micro-kernel parameter not positive", true},
        {"DP01", "DP", "concurrency table arity mismatch", true},
        {"DP02", "DP", "axis declared parallel is a reduction axis", true},
        {"DP03", "DP", "axis declared parallel/reduction is sequential",
         true},
        {"DP04", "DP", "over-serialization of a proven-parallel axis",
         true},
        {"DP05", "DP", "epilogue-coupled axis declared parallel", true},
        {"DP06", "DP", "v2 document carries no concurrency table", true},
        {"RC01", "RC", "shadow-memory write conflict observed at runtime",
         false},
        {"SB01", "SB", "block window escapes tensor extents for an"
                       " admissible shape",
         true},
        {"SB02", "SB", "maximum live window exceeds the per-worker budget",
         true},
        {"SB03", "SB", "index arithmetic can overflow int64", true},
        {"SB04", "SB", "parallel axis lacks a shape-generic disjointness"
                       " proof",
         true},
        {"OE01", "OE", "symmetry-class merge unsound: class members solve"
                       " differently",
         true},
        {"OE02", "OE", "dominance bound unsound: solved volume undercuts"
                       " the bound or exact pruning changed the argmin",
         true},
        {"OE03", "OE", "incremental prefix bound diverges from"
                       " from-scratch evaluation",
         true},
        {"OE04", "OE", "beam optimality-gap bound refuted by the"
                       " exhaustive optimum",
         true},
    };
    return rules;
}

void
Report::add(Finding finding)
{
    findings_.push_back(std::move(finding));
}

void
Report::error(std::string ruleId, std::string location, std::string message)
{
    add(Finding{std::move(ruleId), Severity::Error, std::move(location),
                std::move(message)});
}

void
Report::warning(std::string ruleId, std::string location,
                std::string message)
{
    add(Finding{std::move(ruleId), Severity::Warning, std::move(location),
                std::move(message)});
}

void
Report::note(std::string ruleId, std::string location, std::string message)
{
    add(Finding{std::move(ruleId), Severity::Note, std::move(location),
                std::move(message)});
}

void
Report::merge(const Report &other)
{
    findings_.insert(findings_.end(), other.findings_.begin(),
                     other.findings_.end());
}

int
Report::errorCount() const
{
    return static_cast<int>(
        std::count_if(findings_.begin(), findings_.end(),
                      [](const Finding &f) {
                          return f.severity == Severity::Error;
                      }));
}

int
Report::warningCount() const
{
    return static_cast<int>(
        std::count_if(findings_.begin(), findings_.end(),
                      [](const Finding &f) {
                          return f.severity == Severity::Warning;
                      }));
}

bool
Report::hasRule(const std::string &ruleId) const
{
    return std::any_of(findings_.begin(), findings_.end(),
                       [&ruleId](const Finding &f) {
                           return f.ruleId == ruleId;
                       });
}

std::string
Report::render() const
{
    std::string out;
    for (const Finding &finding : findings_) {
        if (!out.empty()) {
            out += "\n";
        }
        out += severityName(finding.severity);
        out += ": [";
        out += finding.ruleId;
        out += "] ";
        out += finding.location;
        out += ": ";
        out += finding.message;
    }
    return out;
}

} // namespace chimera::verify
