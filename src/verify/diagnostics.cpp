#include "verify/diagnostics.hpp"

#include <algorithm>

namespace chimera::verify {

const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "unknown";
}

void
Report::add(Finding finding)
{
    findings_.push_back(std::move(finding));
}

void
Report::error(std::string ruleId, std::string location, std::string message)
{
    add(Finding{std::move(ruleId), Severity::Error, std::move(location),
                std::move(message)});
}

void
Report::warning(std::string ruleId, std::string location,
                std::string message)
{
    add(Finding{std::move(ruleId), Severity::Warning, std::move(location),
                std::move(message)});
}

void
Report::note(std::string ruleId, std::string location, std::string message)
{
    add(Finding{std::move(ruleId), Severity::Note, std::move(location),
                std::move(message)});
}

void
Report::merge(const Report &other)
{
    findings_.insert(findings_.end(), other.findings_.begin(),
                     other.findings_.end());
}

int
Report::errorCount() const
{
    return static_cast<int>(
        std::count_if(findings_.begin(), findings_.end(),
                      [](const Finding &f) {
                          return f.severity == Severity::Error;
                      }));
}

int
Report::warningCount() const
{
    return static_cast<int>(
        std::count_if(findings_.begin(), findings_.end(),
                      [](const Finding &f) {
                          return f.severity == Severity::Warning;
                      }));
}

bool
Report::hasRule(const std::string &ruleId) const
{
    return std::any_of(findings_.begin(), findings_.end(),
                       [&ruleId](const Finding &f) {
                           return f.ruleId == ruleId;
                       });
}

std::string
Report::render() const
{
    std::string out;
    for (const Finding &finding : findings_) {
        if (!out.empty()) {
            out += "\n";
        }
        out += severityName(finding.severity);
        out += ": [";
        out += finding.ruleId;
        out += "] ";
        out += finding.location;
        out += ": ";
        out += finding.message;
    }
    return out;
}

} // namespace chimera::verify
