#include "verify/concurrency_verifier.hpp"

#include "support/error.hpp"

namespace chimera::verify {

using analysis::AxisConcurrency;

namespace {

std::string
axisName(const ir::Chain &chain, ir::AxisId axis)
{
    return chain.axes()[static_cast<std::size_t>(axis)].name;
}

/** Permissiveness rank: parallel allows most, sequential least. */
int
permissiveness(AxisConcurrency kind)
{
    switch (kind) {
      case AxisConcurrency::Parallel: return 2;
      case AxisConcurrency::Reduction: return 1;
      case AxisConcurrency::Sequential: return 0;
    }
    return 0;
}

} // namespace

Report
verifyConcurrency(const ir::Chain &chain,
                  const std::vector<std::int64_t> &tiles,
                  const std::vector<AxisConcurrency> &declared)
{
    Report report;
    if (static_cast<int>(declared.size()) != chain.numAxes()) {
        report.error("DP01", "concurrency",
                     "declared table covers " +
                         std::to_string(declared.size()) +
                         " axes but the chain has " +
                         std::to_string(chain.numAxes()));
        return report;
    }

    const analysis::ConcurrencyTable derived =
        analysis::analyzeConcurrency(chain, tiles);
    for (ir::AxisId a = 0; a < chain.numAxes(); ++a) {
        const auto slot = static_cast<std::size_t>(a);
        const AxisConcurrency want = declared[slot];
        const analysis::AxisClassification &have = derived.axes[slot];
        if (want == have.kind) {
            continue;
        }
        const std::string location = "concurrency." + axisName(chain, a);
        if (permissiveness(want) < permissiveness(have.kind)) {
            report.warning("DP04", location,
                           "axis " + axisName(chain, a) +
                               " is declared " +
                               analysis::concurrencyName(want) +
                               " but the analysis proves it " +
                               analysis::concurrencyName(have.kind) +
                               " — sound, but over-serialized (" +
                               have.reason + ")");
            continue;
        }
        if (want == AxisConcurrency::Parallel && have.epilogueInduced) {
            report.error("DP05", location,
                         "axis " + axisName(chain, a) +
                             " is declared parallel but the epilogue"
                             " couples blocks along it: " +
                             have.reason);
        } else if (want == AxisConcurrency::Parallel &&
                   have.kind == AxisConcurrency::Reduction) {
            report.error("DP02", location,
                         "axis " + axisName(chain, a) +
                             " is declared parallel but is a reduction"
                             " axis: " +
                             have.reason);
        } else {
            report.error("DP03", location,
                         "axis " + axisName(chain, a) + " is declared " +
                             analysis::concurrencyName(want) +
                             " but carries a block dependence: " +
                             have.reason);
        }
    }
    return report;
}

Report
verifyDocumentConcurrency(const ir::Chain &chain,
                          const plan::ParsedPlanDoc &doc,
                          const std::vector<std::int64_t> &tiles)
{
    Report report;
    if (!doc.haveConcurrency) {
        if (doc.version >= 2) {
            report.note("DP06", "concurrency",
                        "v2 document declares no concurrency table;"
                        " the loader falls back to fresh dependence"
                        " analysis");
        }
        return report;
    }
    std::vector<AxisConcurrency> declared;
    try {
        declared = plan::bindConcurrency(chain, doc.concurrency);
    } catch (const Error &e) {
        report.error("PL12", "concurrency", e.what());
        return report;
    }
    report.merge(verifyConcurrency(chain, tiles, declared));
    return report;
}

} // namespace chimera::verify
