#include "verify/search_verifier.hpp"

#include <cmath>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "solver/tile_solver.hpp"
#include "support/mathutil.hpp"

namespace chimera::verify {

namespace {

using analysis::PruneMode;

/** Exact equality of integral-valued doubles via the planner's band. */
bool
sameVolume(double a, double b)
{
    return std::abs(a - b) < 0.5;
}

std::string
describePlan(const ir::Chain &chain, const plan::ExecutionPlan &plan)
{
    return "order " + plan::orderString(chain, plan.perm) + " volume " +
           std::to_string(
               static_cast<std::int64_t>(plan.predictedVolumeBytes)) +
           "B mem " + std::to_string(plan.memUsageBytes) + "B";
}

/** Bitwise plan equality over everything the argmin decides. */
bool
samePlan(const plan::ExecutionPlan &a, const plan::ExecutionPlan &b)
{
    return a.perm == b.perm && a.tiles == b.tiles &&
           sameVolume(a.predictedVolumeBytes, b.predictedVolumeBytes) &&
           a.memUsageBytes == b.memUsageBytes;
}

} // namespace

Report
verifySearchStats(const ir::Chain &chain, const plan::ExecutionPlan &plan)
{
    Report report;
    const analysis::SearchStats &s = plan.search;
    if (!s.present) {
        return report;
    }
    const std::int64_t accounted = s.filtered + s.symmetryPruned +
                                   s.dominancePruned + s.beamPruned +
                                   s.solved;
    if (s.enumerated != accounted) {
        report.error(
            "PL15", "search.counts",
            "candidate accounting does not close: enumerated " +
                std::to_string(s.enumerated) + " but filtered + pruned" +
                " + solved is " + std::to_string(accounted));
    }
    if (s.solved < 1) {
        report.error("PL15", "search.solved",
                     "a winning plan implies at least one solved"
                     " candidate, line claims " +
                         std::to_string(s.solved));
    }
    const bool claimsSymmetry = s.symmetryPruned != 0;
    const bool claimsDominance = s.dominancePruned != 0;
    const bool claimsBeam = s.beamPruned != 0;
    switch (s.mode) {
    case PruneMode::None:
        if (claimsSymmetry || claimsDominance || claimsBeam) {
            report.error("PL15", "search.mode",
                         "mode=none (exhaustive) cannot claim pruned"
                         " candidates");
        }
        break;
    case PruneMode::Symmetry:
        if (claimsDominance || claimsBeam) {
            report.error("PL15", "search.mode",
                         "mode=symmetry cannot claim dominance- or"
                         " beam-pruned candidates");
        }
        break;
    case PruneMode::Dominance:
        if (claimsBeam) {
            report.error("PL15", "search.mode",
                         "mode=dominance cannot claim beam-pruned"
                         " candidates");
        }
        break;
    case PruneMode::Beam:
        if (claimsDominance) {
            report.error("PL15", "search.mode",
                         "mode=beam cannot claim dominance-pruned"
                         " candidates");
        }
        break;
    }
    if (s.mode != PruneMode::Beam && s.gapBoundBytes != 0) {
        report.error("PL15", "search.gap",
                     "exact mode " +
                         std::string(analysis::pruneModeName(s.mode)) +
                         " must record gap=0, line claims " +
                         std::to_string(s.gapBoundBytes));
    }
    if (s.mode == PruneMode::Beam && !claimsBeam && s.gapBoundBytes != 0) {
        report.error("PL15", "search.gap",
                     "beam search that solved every surviving order"
                     " must record gap=0, line claims " +
                         std::to_string(s.gapBoundBytes));
    }
    const int reorderable =
        static_cast<int>(chain.reorderableAxes().size());
    if (reorderable <= 20) {
        const std::int64_t full = factorial(reorderable);
        if (!s.truncated && s.enumerated != full) {
            report.error(
                "PL15", "search.enumerated",
                "untruncated search over " +
                    std::to_string(reorderable) +
                    " reorderable axes must enumerate " +
                    std::to_string(full) + " orders, line claims " +
                    std::to_string(s.enumerated));
        }
        if (s.truncated && s.enumerated >= full) {
            report.error(
                "PL15", "search.truncated",
                "search claims truncation but enumerated all " +
                    std::to_string(full) + " orders");
        }
    }
    const std::string expected =
        analysis::searchDigest(chain, plan.perm, plan.tiles, s);
    if (expected != s.digest) {
        report.error("PL15", "search.digest",
                     "search digest " + s.digest +
                         " does not match this chain + schedule +"
                         " claims (expected " +
                         expected +
                         "); the line was forged or replayed from"
                         " another plan");
    }
    return report;
}

SearchReplay
replaySearch(const ir::Chain &chain, const plan::PlannerOptions &options)
{
    SearchReplay out;

    // Fresh plans both times: the cache would hide the very search this
    // replay exists to check, and the planner's own self-check would
    // recurse into PL15.
    plan::PlannerOptions prunedOpts = options;
    prunedOpts.cache = nullptr;
    prunedOpts.verify = false;
    plan::PlannerOptions exhaustiveOpts = prunedOpts;
    exhaustiveOpts.prune = PruneMode::None;

    out.pruned = plan::planChain(chain, prunedOpts);
    out.exhaustive = plan::planChain(chain, exhaustiveOpts);
    out.report.merge(verifySearchStats(chain, out.pruned));

    if (options.prune == PruneMode::Beam) {
        // OE04: the gap bound must cover however much better the true
        // optimum is than the beam's pick.
        const double floor =
            out.pruned.predictedVolumeBytes -
            static_cast<double>(out.pruned.search.gapBoundBytes);
        if (out.exhaustive.predictedVolumeBytes < floor - 0.5) {
            out.report.error(
                "OE04", "search.gap",
                "beam plan (" + describePlan(chain, out.pruned) +
                    ", gap " +
                    std::to_string(out.pruned.search.gapBoundBytes) +
                    "B) is refuted by the exhaustive optimum (" +
                    describePlan(chain, out.exhaustive) + ")");
        }
    } else if (!samePlan(out.pruned, out.exhaustive)) {
        // Attribute the argmin divergence: if symmetry alone already
        // diverges the class merge is unsound (OE01), otherwise the
        // dominance bound pruned the winner (OE02).
        std::string rule = "OE01";
        if (options.prune == PruneMode::Dominance) {
            plan::PlannerOptions symOpts = prunedOpts;
            symOpts.prune = PruneMode::Symmetry;
            const plan::ExecutionPlan symOnly =
                plan::planChain(chain, symOpts);
            if (samePlan(symOnly, out.exhaustive)) {
                rule = "OE02";
            }
        }
        out.report.error(
            rule, "search.argmin",
            std::string(analysis::pruneModeName(options.prune)) +
                " pruning selected " + describePlan(chain, out.pruned) +
                " but exhaustive search selects " +
                describePlan(chain, out.exhaustive));
    }

    // Analyzer-level claims, checked against the solver over the exact
    // candidate space the planner searched.
    const solver::TileConstraints constraints =
        plan::searchConstraints(chain, prunedOpts);
    const double capacity = model::clampedPerWorkerBudgetBytes(
        prunedOpts.memCapacityBytes, prunedOpts.topology,
        prunedOpts.execThreads);
    analysis::OrderAnalyzer analyzer(chain, constraints, capacity,
                                     prunedOpts.model);
    const std::vector<std::vector<ir::AxisId>> candidates =
        plan::enumerateCandidateOrders(chain, prunedOpts);

    // OE03: the incremental prefix evaluation must agree with the
    // from-scratch bound on every candidate, in enumeration order.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double incremental =
            analyzer.lowerBoundIncremental(candidates[i]);
        const double scratch = analyzer.lowerBound(candidates[i]);
        if (!sameVolume(incremental, scratch)) {
            out.report.error(
                "OE03",
                "candidate #" + std::to_string(i) + " (" +
                    plan::orderString(chain, candidates[i]) + ")",
                "incremental lower bound " +
                    std::to_string(incremental) +
                    "B != from-scratch bound " +
                    std::to_string(scratch) + "B");
            break;
        }
    }

    solver::TileSolverOptions solverOptions;
    solverOptions.memCapacityBytes = capacity;
    solverOptions.maxSweeps = prunedOpts.solverSweeps;
    solverOptions.model = prunedOpts.model;

    // OE01 direct: members of a symmetry class must solve
    // bitwise-identically to their representative (sampled classes).
    std::unordered_map<std::string, std::size_t> representatives;
    std::set<std::string> checkedClasses;
    int classesChecked = 0;
    for (std::size_t i = 0;
         i < candidates.size() && classesChecked < 3; ++i) {
        const std::string key = analyzer.symmetryKey(candidates[i]);
        const auto [it, inserted] = representatives.emplace(key, i);
        if (inserted || !checkedClasses.insert(key).second) {
            continue;
        }
        const solver::TileSolution rep = solver::solveTiles(
            chain, candidates[it->second], constraints, solverOptions);
        const solver::TileSolution member = solver::solveTiles(
            chain, candidates[i], constraints, solverOptions);
        if (rep.feasible != member.feasible ||
            rep.tiles != member.tiles ||
            !sameVolume(rep.volumeBytes, member.volumeBytes) ||
            rep.memUsageBytes != member.memUsageBytes) {
            out.report.error(
                "OE01",
                "class of " +
                    plan::orderString(chain, candidates[it->second]),
                "member " + plan::orderString(chain, candidates[i]) +
                    " solves differently from its representative");
        }
        ++classesChecked;
    }

    // OE02 direct: no solved order may achieve a volume below its
    // certified lower bound (sampled candidates).
    std::set<std::size_t> samples;
    if (!candidates.empty()) {
        samples.insert(0);
        samples.insert(candidates.size() / 2);
        samples.insert(candidates.size() - 1);
    }
    for (const std::size_t i : samples) {
        const solver::TileSolution sol = solver::solveTiles(
            chain, candidates[i], constraints, solverOptions);
        if (!sol.feasible) {
            continue;
        }
        const double bound = analyzer.lowerBound(candidates[i]);
        if (sol.volumeBytes < bound - 0.5) {
            out.report.error(
                "OE02",
                "candidate #" + std::to_string(i) + " (" +
                    plan::orderString(chain, candidates[i]) + ")",
                "achieved volume " +
                    std::to_string(static_cast<std::int64_t>(
                        sol.volumeBytes)) +
                    "B undercuts the certified lower bound " +
                    std::to_string(
                        static_cast<std::int64_t>(bound)) +
                    "B");
        }
    }
    return out;
}

} // namespace chimera::verify
