#pragma once

/**
 * @file
 * Structured diagnostics for the chimera-check static analyses.
 *
 * Every verifier pass (chain well-formedness, plan legality) reports its
 * observations as Findings — (rule id, severity, location, message)
 * tuples collected in a Report — instead of throwing on the first
 * defect. A verifier must be able to describe *everything* wrong with an
 * adversarial input: a tampered cache document with three bad tiles
 * should yield three findings, not one exception. Rule ids are stable
 * strings (CH* chain rules, PL* plan rules, KP* kernel-parameter rules)
 * so tests, CI greps and downstream tooling can match on them.
 */

#include <string>
#include <vector>

namespace chimera::verify {

/** How bad a finding is. Only Error findings fail a verification. */
enum class Severity
{
    Note, ///< Informational (e.g. a check was skipped).
    Warning, ///< Suspicious but not illegal.
    Error, ///< The input is illegal; consumers must reject it.
};

/** Severity display name ("note", "warning", "error"). */
const char *severityName(Severity severity);

/** One diagnostic produced by a verifier pass. */
struct Finding
{
    /** Stable rule identifier, e.g. "PL04". */
    std::string ruleId;

    Severity severity = Severity::Error;

    /** What the finding is about, e.g. "tiles.m" or "op mm2 / tensor C". */
    std::string location;

    /** Human-readable explanation. */
    std::string message;
};

/** One entry of the published rule registry (see publishedRules). */
struct RuleInfo
{
    /** Stable rule identifier, e.g. "SB03". */
    std::string id;

    /** Family prefix: "CH", "PL", "KP", "DP", "RC", "SB" or "OE". */
    std::string family;

    /** One-line meaning (matches the README rule table). */
    std::string meaning;

    /**
     * True for rules proven without executing the plan (static
     * analysis); false for rules needing a run (RC01's shadow-memory
     * scan is the only dynamic rule).
     */
    bool staticRule = true;
};

/**
 * The complete published rule-id registry, in family order (CH01-07,
 * PL01-15, KP01-03, DP01-06, RC01, SB01-04, OE01-04). Tests golden-list this
 * set so renames and accidental drops become failures; tooling can use
 * it to validate grep patterns.
 */
const std::vector<RuleInfo> &publishedRules();

/** Ordered collection of findings from one or more verifier passes. */
class Report
{
  public:
    /** Appends a finding. */
    void add(Finding finding);

    /** Convenience appenders for the three severities. */
    void error(std::string ruleId, std::string location,
               std::string message);
    void warning(std::string ruleId, std::string location,
                 std::string message);
    void note(std::string ruleId, std::string location, std::string message);

    /** Appends every finding of @p other, in order. */
    void merge(const Report &other);

    const std::vector<Finding> &findings() const { return findings_; }

    bool empty() const { return findings_.empty(); }
    int errorCount() const;
    int warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }

    /** True when some finding carries @p ruleId. */
    bool hasRule(const std::string &ruleId) const;

    /**
     * Renders one "severity: [rule] location: message" line per finding
     * (no trailing newline on the last line when @p findings is empty the
     * result is ""). This is what chimera-check prints and what the
     * planner embeds in its self-check Error.
     */
    std::string render() const;

  private:
    std::vector<Finding> findings_;
};

} // namespace chimera::verify
