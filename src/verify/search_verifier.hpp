#pragma once

/**
 * @file
 * Search-certificate verification: the OE rule family plus the PL15
 * `search:` document rule.
 *
 * The analyzer whose claims are policed here lives in
 * analysis/order_equivalence.hpp; this layer (a) validates a plan's
 * attached search stats — count consistency and the tamper-evident
 * digest — and (b) replays a pruned search against exhaustive
 * enumeration so the exactness claims are checked against the real
 * solver, not trusted.
 *
 * Rules:
 *  - OE01  symmetry-class merge unsound: two orders in one class got
 *          different tile-solver results (error)
 *  - OE02  dominance bound unsound: a solved order achieved a volume
 *          below its certified lower bound, or exact pruning changed
 *          the argmin (error)
 *  - OE03  incremental prefix evaluation diverges from the
 *          from-scratch lower bound (error)
 *  - OE04  beam optimality-gap bound refuted: the exhaustive optimum
 *          undercuts the beam plan's volume minus its recorded gap
 *          (error)
 *  - PL15  search-line binding defect: inconsistent counts, a mode
 *          that contradicts the counts, or a digest that does not
 *          match the bound chain + schedule + claims (error). Extends
 *          the PL document-binding family the same way PL14 does for
 *          `safety:`.
 */

#include "plan/plan_io.hpp"
#include "verify/diagnostics.hpp"

namespace chimera::verify {

/**
 * PL15 validation of a plan's attached search stats: the counts
 * identity (enumerated == filtered + symmetry + dominance + beam +
 * solved), solved >= 1, per-mode zero rules (e.g. an exhaustive search
 * cannot claim pruned candidates, exact modes cannot claim a gap),
 * truncation consistency against the chain's reorderable-axis
 * factorial, and the digest recompute binding the claims to this exact
 * chain + schedule. No-op (empty report) when the plan carries no
 * search stats.
 */
Report verifySearchStats(const ir::Chain &chain,
                         const plan::ExecutionPlan &plan);

/** Outcome of replaying a pruned search against exhaustive search. */
struct SearchReplay
{
    /** OE findings (empty when every claim held). */
    Report report;

    /** The plan chosen under @p options' pruning mode. */
    plan::ExecutionPlan pruned;

    /** The plan chosen by exhaustive enumeration (PruneMode::None). */
    plan::ExecutionPlan exhaustive;
};

/**
 * Replays the order search for @p chain twice — once under
 * @p options.prune, once exhaustively — and checks the analyzer's
 * claims against the solver ground truth (OE01-OE04): exact modes must
 * select the bitwise-identical plan, sampled symmetry-class members
 * must solve identically to their representatives, every solved order
 * must respect its lower bound, the incremental bound must equal the
 * from-scratch bound on every candidate, and beam mode's gap bound
 * must cover the exhaustive optimum. The plan cache is bypassed; both
 * plans are returned for reporting. PL15 is also run on the pruned
 * plan's stats.
 */
SearchReplay replaySearch(const ir::Chain &chain,
                          const plan::PlannerOptions &options);

} // namespace chimera::verify
