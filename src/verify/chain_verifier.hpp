#pragma once

/**
 * @file
 * Chain IR well-formedness analysis.
 *
 * Chain::validate() throws on the first structural defect; this pass
 * instead audits the whole IR and reports every problem as a structured
 * finding, including legality conditions validate() does not cover:
 * producer/consumer shape compatibility (an operator must loop over
 * every axis its tensors are indexed by), dataflow order (intermediates
 * produced before consumed), and derivability of the independent-axis
 * set the planner enumerates block orders over.
 *
 * Rules:
 *  - CH01  chain structure: no operators / no tensors
 *  - CH02  axis declaration: empty or duplicate name, extent < 1
 *  - CH03  dangling reference: op -> axis, op -> tensor, output tensor
 *          id, access-term axis out of range
 *  - CH04  access map: tensor without dimensions, coefficient < 1
 *  - CH05  shape compatibility: a tensor accessed by an operator is
 *          indexed by an axis outside that operator's loop nest
 *          (producer and consumer disagree about the tensor's shape)
 *  - CH06  dataflow: intermediate consumed before produced or never
 *          produced, input tensors written, last operator's output not
 *          the chain output, tensors no operator touches (warning)
 *  - CH07  independent-axis derivability: an axis no operator loops
 *          over, an axis no tensor access can derive, or a reorderable
 *          set too large to enumerate (> 8, the planner's hard cap)
 *
 * Reference-validity (CH03) gates the later passes: a chain with
 * dangling ids is only reported at that level, since the deeper checks
 * could not index safely.
 */

#include "ir/chain.hpp"
#include "verify/diagnostics.hpp"

namespace chimera::verify {

/** Audits @p chain and returns every CH* finding. Never throws. */
Report verifyChain(const ir::Chain &chain);

} // namespace chimera::verify
