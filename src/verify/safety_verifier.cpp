#include "verify/safety_verifier.hpp"

#include <algorithm>
#include <cctype>

#include "support/error.hpp"

namespace chimera::verify {

namespace {

/** Workers the analysis should assume (plan's own count wins). */
int
effectiveWorkers(const plan::ExecutionPlan &plan,
                 const SafetyVerifyOptions &options)
{
    return plan.plannedThreads > 1 ? plan.plannedThreads
                                   : std::max(1, options.workers);
}

/** Runs the analyzer with the verify-side budget context. */
analysis::SafetyAnalysis
runAnalyzer(const ir::Chain &chain, const plan::ExecutionPlan &plan,
            const analysis::ShapeDomain &domain,
            const SafetyVerifyOptions &options)
{
    analysis::SafetyOptions so;
    so.memCapacityBytes = options.memCapacityBytes;
    so.topology = options.topology;
    return analysis::analyzeSafety(
        chain, plan.perm, plan.tiles,
        plan::effectiveConcurrency(chain, plan),
        effectiveWorkers(plan, options), plan.parallelGrain, domain, so);
}

void
reportViolations(const analysis::SafetyAnalysis &sa, Report &report)
{
    for (const analysis::SafetyViolation &v : sa.violations) {
        report.error(analysis::safetyRuleName(v.rule), v.location,
                     v.message);
    }
}

} // namespace

Report
verifyPlanSafety(const ir::Chain &chain, const plan::ExecutionPlan &plan,
                 const SafetyVerifyOptions &options,
                 analysis::SafetyAnalysis *out)
{
    const std::string spec =
        options.domainSpec.empty() ? "concrete" : options.domainSpec;
    const analysis::ShapeDomain domain =
        analysis::parseShapeDomain(chain, spec, "safety domain");
    const analysis::SafetyAnalysis sa =
        runAnalyzer(chain, plan, domain, options);
    Report report;
    reportViolations(sa, report);
    if (out != nullptr) {
        *out = sa;
    }
    return report;
}

Report
verifySafetyCertificate(const ir::Chain &chain,
                        const plan::ExecutionPlan &plan,
                        const SafetyVerifyOptions &options)
{
    Report report;
    const analysis::SafetyCertificate &cert = plan.safety;
    if (!cert.certified) {
        return report;
    }

    analysis::ShapeDomain domain = analysis::ShapeDomain::concrete(chain);
    try {
        domain =
            analysis::parseShapeDomain(chain, cert.domain, "safety domain");
    } catch (const Error &e) {
        report.error("PL14", "safety.domain", e.what());
        return report;
    }

    // The digest binds the certificate to this exact chain + schedule.
    // The analyzer normalizes an empty grain vector to all-1 before
    // hashing; mirror that here.
    const std::vector<std::int64_t> grain =
        plan.parallelGrain.empty()
            ? std::vector<std::int64_t>(
                  static_cast<std::size_t>(chain.numAxes()), 1)
            : plan.parallelGrain;
    const std::string expected = analysis::safetyDigest(
        chain, plan.perm, plan.tiles, std::max(1, plan.plannedThreads),
        grain, cert.domain, cert.rules);
    if (expected != cert.digest) {
        report.error("PL14", "safety.digest",
                     "certificate digest " + cert.digest +
                         " does not match this chain + schedule (expected " +
                         expected +
                         "); the certificate was forged or replayed from"
                         " another plan");
        return report;
    }

    // Re-prove the claimed rules; a certificate the analyzer refutes is
    // a binding defect (the SB findings say what actually fails).
    const analysis::SafetyAnalysis sa =
        runAnalyzer(chain, plan, domain, options);
    bool refuted = false;
    for (const analysis::SafetyViolation &v : sa.violations) {
        std::string id = analysis::safetyRuleName(v.rule);
        std::transform(id.begin(), id.end(), id.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        if (cert.rules.find(id) != std::string::npos) {
            refuted = true;
        }
        report.error(analysis::safetyRuleName(v.rule), v.location,
                     v.message);
    }
    if (refuted) {
        report.error("PL14", "safety",
                     "certificate claims rules " + cert.rules +
                         " over domain " + cert.domain +
                         " but the analyzer refutes it (see SB findings)");
    }
    return report;
}

} // namespace chimera::verify
