#include "verify/chain_verifier.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace chimera::verify {

using ir::AccessDim;
using ir::AccessTerm;
using ir::Axis;
using ir::AxisId;
using ir::Chain;
using ir::OpDecl;
using ir::TensorDecl;
using ir::TensorKind;

namespace {

std::string
opLabel(const Chain &chain, std::size_t opIdx)
{
    const std::string &name = chain.ops()[opIdx].name;
    std::string label = "op ";
    if (name.empty()) {
        label += "#";
        label += std::to_string(opIdx);
    } else {
        label += name;
    }
    return label;
}

std::string
tensorLabel(const Chain &chain, int tensorId)
{
    const std::string &name =
        chain.tensors()[static_cast<std::size_t>(tensorId)].name;
    std::string label = "tensor ";
    if (name.empty()) {
        label += "#";
        label += std::to_string(tensorId);
    } else {
        label += name;
    }
    return label;
}

std::string
axisLabel(const Chain &chain, AxisId axis)
{
    const std::string &name =
        chain.axes()[static_cast<std::size_t>(axis)].name;
    std::string label = "axis ";
    if (name.empty()) {
        label += "#";
        label += std::to_string(axis);
    } else {
        label += name;
    }
    return label;
}

bool
validAxis(const Chain &chain, AxisId axis)
{
    return axis >= 0 && axis < chain.numAxes();
}

bool
validTensor(const Chain &chain, int tensorId)
{
    return tensorId >= 0 &&
           tensorId < static_cast<int>(chain.tensors().size());
}

/** CH02: axis declarations. */
void
checkAxes(const Chain &chain, Report &report)
{
    std::set<std::string> seenNames;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const Axis &axis = chain.axes()[static_cast<std::size_t>(a)];
        const std::string where = "axis #" + std::to_string(a);
        if (axis.name.empty()) {
            report.error("CH02", where, "axis has an empty name");
        } else if (!seenNames.insert(axis.name).second) {
            report.error("CH02", where,
                         "duplicate axis name \"" + axis.name +
                             "\" (order strings would be ambiguous)");
        }
        if (axis.extent < 1) {
            report.error("CH02", where,
                         "axis extent " + std::to_string(axis.extent) +
                             " is not positive");
        }
    }
}

/**
 * CH03: every id the ops and tensors carry must resolve. Returns false
 * when a dangling reference was found (later passes are skipped).
 */
bool
checkReferences(const Chain &chain, Report &report)
{
    bool clean = true;
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const TensorDecl &tensor = chain.tensors()[t];
        for (const AccessDim &dim : tensor.dims) {
            for (const AccessTerm &term : dim.terms) {
                if (!validAxis(chain, term.axis)) {
                    report.error(
                        "CH03",
                        tensorLabel(chain, static_cast<int>(t)),
                        "access term references unknown axis id " +
                            std::to_string(term.axis));
                    clean = false;
                }
            }
        }
    }
    for (std::size_t o = 0; o < chain.ops().size(); ++o) {
        const OpDecl &op = chain.ops()[o];
        for (AxisId axis : op.loops) {
            if (!validAxis(chain, axis)) {
                report.error("CH03", opLabel(chain, o),
                             "loop references unknown axis id " +
                                 std::to_string(axis));
                clean = false;
            }
        }
        for (int t : op.tensorIds) {
            if (!validTensor(chain, t)) {
                report.error("CH03", opLabel(chain, o),
                             "operand references unknown tensor id " +
                                 std::to_string(t));
                clean = false;
            }
        }
        if (!validTensor(chain, op.outputTensorId)) {
            report.error("CH03", opLabel(chain, o),
                         "output tensor id " +
                             std::to_string(op.outputTensorId) +
                             " is out of range");
            clean = false;
        } else if (std::find(op.tensorIds.begin(), op.tensorIds.end(),
                             op.outputTensorId) == op.tensorIds.end()) {
            report.error("CH03", opLabel(chain, o),
                         "output " +
                             tensorLabel(chain, op.outputTensorId) +
                             " is not among the operator's operands");
            clean = false;
        }
        for (const AccessDim &dim : op.iterDims) {
            for (const AccessTerm &term : dim.terms) {
                if (!validAxis(chain, term.axis)) {
                    report.error(
                        "CH03", opLabel(chain, o),
                        "iteration dim references unknown axis id " +
                            std::to_string(term.axis));
                    clean = false;
                }
            }
        }
    }
    return clean;
}

/** CH04: access maps. */
void
checkAccessMaps(const Chain &chain, Report &report)
{
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const TensorDecl &tensor = chain.tensors()[t];
        const std::string where = tensorLabel(chain, static_cast<int>(t));
        if (tensor.dims.empty()) {
            report.error("CH04", where, "tensor has no dimensions");
        }
        if (tensor.elementSize < 1) {
            report.error("CH04", where,
                         "element size " +
                             std::to_string(tensor.elementSize) +
                             " is not positive");
        }
        for (const AccessDim &dim : tensor.dims) {
            for (const AccessTerm &term : dim.terms) {
                if (term.coeff < 1) {
                    report.error(
                        "CH04", where,
                        "access coefficient " +
                            std::to_string(term.coeff) + " on " +
                            axisLabel(chain, term.axis) +
                            " is not positive (footprints would shrink"
                            " below one element)");
                }
            }
        }
    }
}

/**
 * CH05: producer/consumer shape compatibility. Every axis a tensor is
 * indexed by must be a loop of every operator touching it — otherwise
 * the producer's written region and a consumer's read region disagree
 * (the operator could not even iterate that dimension). The footprint
 * and data-movement analyses silently mis-model such chains, which is
 * exactly why this is a verifier rule.
 */
void
checkShapeCompatibility(const Chain &chain, Report &report)
{
    for (std::size_t o = 0; o < chain.ops().size(); ++o) {
        const OpDecl &op = chain.ops()[o];
        for (int t : op.tensorIds) {
            const TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            for (AxisId a = 0; a < chain.numAxes(); ++a) {
                if (tensor.usesAxis(a) && !op.usesLoop(a)) {
                    report.error(
                        "CH05",
                        opLabel(chain, o) + " / " + tensorLabel(chain, t),
                        "tensor is indexed by " + axisLabel(chain, a) +
                            " which is not a loop of this operator"
                            " (producer/consumer shapes disagree)");
                }
            }
        }
    }
}

/** CH06: dataflow order and tensor roles. */
void
checkDataflow(const Chain &chain, Report &report)
{
    std::vector<int> producedAt(chain.tensors().size(), -1);
    for (std::size_t o = 0; o < chain.ops().size(); ++o) {
        const OpDecl &op = chain.ops()[o];
        const auto out = static_cast<std::size_t>(op.outputTensorId);
        if (producedAt[out] >= 0) {
            report.error("CH06", opLabel(chain, o),
                         tensorLabel(chain, op.outputTensorId) +
                             " is produced twice (first by " +
                             opLabel(chain,
                                     static_cast<std::size_t>(
                                         producedAt[out])) +
                             ")");
        } else {
            producedAt[out] = static_cast<int>(o);
        }
        if (chain.tensors()[out].kind == TensorKind::Input) {
            report.error("CH06", opLabel(chain, o),
                         "operator writes " +
                             tensorLabel(chain, op.outputTensorId) +
                             " which is declared as a chain input");
        }
        for (int t : op.tensorIds) {
            if (t == op.outputTensorId) {
                continue;
            }
            const TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            if (tensor.kind == TensorKind::Intermediate &&
                (producedAt[static_cast<std::size_t>(t)] < 0 ||
                 producedAt[static_cast<std::size_t>(t)] ==
                     static_cast<int>(o))) {
                report.error("CH06", opLabel(chain, o),
                             "intermediate " + tensorLabel(chain, t) +
                                 " is consumed before any earlier"
                                 " operator produced it");
            }
        }
    }
    if (!chain.ops().empty()) {
        const OpDecl &last = chain.ops().back();
        if (validTensor(chain, last.outputTensorId) &&
            chain.tensors()[static_cast<std::size_t>(last.outputTensorId)]
                    .kind != TensorKind::Output) {
            report.error("CH06", opLabel(chain, chain.ops().size() - 1),
                         "last operator must produce the chain output"
                         " tensor, but " +
                             tensorLabel(chain, last.outputTensorId) +
                             " is not declared Output");
        }
    }
    for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
        const TensorDecl &tensor = chain.tensors()[t];
        if (tensor.kind == TensorKind::Intermediate &&
            producedAt[t] < 0) {
            report.error("CH06", tensorLabel(chain, static_cast<int>(t)),
                         "intermediate tensor is never produced");
        }
        const bool touched = std::any_of(
            chain.ops().begin(), chain.ops().end(),
            [&t](const OpDecl &op) {
                return std::find(op.tensorIds.begin(), op.tensorIds.end(),
                                 static_cast<int>(t)) !=
                       op.tensorIds.end();
            });
        if (!touched) {
            report.warning("CH06",
                           tensorLabel(chain, static_cast<int>(t)),
                           "tensor is not touched by any operator");
        }
    }
}

/**
 * CH07: the independent-axis set the planner permutes must be derivable
 * from the chain: every axis has to appear in some operator's loop nest
 * and in some tensor's access map (an axis indexing nothing cannot be
 * recovered from the operators, so an enumerated order over it is
 * meaningless). The reorderable subset must also stay enumerable.
 */
void
checkAxisDerivability(const Chain &chain, Report &report)
{
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const bool inLoops = std::any_of(
            chain.ops().begin(), chain.ops().end(),
            [a](const OpDecl &op) { return op.usesLoop(a); });
        const bool inAccess = std::any_of(
            chain.tensors().begin(), chain.tensors().end(),
            [a](const TensorDecl &tensor) { return tensor.usesAxis(a); });
        if (!inLoops) {
            report.error("CH07", axisLabel(chain, a),
                         "axis is not a loop of any operator; the"
                         " independent-axis set is not derivable from"
                         " the chain");
        } else if (!inAccess) {
            report.error("CH07", axisLabel(chain, a),
                         "axis indexes no tensor; blocking it cannot"
                         " change any footprint or data movement");
        }
    }
    const std::size_t reorderable = chain.reorderableAxes().size();
    if (reorderable > 8) {
        report.error("CH07", "chain " + chain.name(),
                     std::to_string(reorderable) +
                         " reorderable axes exceed the planner's"
                         " enumeration cap of 8");
    }
}

} // namespace

Report
verifyChain(const Chain &chain)
{
    Report report;
    if (chain.ops().empty()) {
        report.error("CH01", "chain " + chain.name(),
                     "chain has no operators");
    }
    if (chain.tensors().empty()) {
        report.error("CH01", "chain " + chain.name(),
                     "chain has no tensors");
    }
    checkAxes(chain, report);
    if (chain.ops().empty() || chain.tensors().empty()) {
        return report;
    }
    if (!checkReferences(chain, report)) {
        // Dangling ids: the deeper passes cannot index safely.
        return report;
    }
    checkAccessMaps(chain, report);
    checkShapeCompatibility(chain, report);
    checkDataflow(chain, report);
    checkAxisDerivability(chain, report);
    return report;
}

} // namespace chimera::verify
