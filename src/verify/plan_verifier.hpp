#pragma once

/**
 * @file
 * Plan legality analysis.
 *
 * A Plan can reach an executor from three places — fresh from the
 * planner, deserialized from a hand-written document, or loaded from the
 * persistent plan cache — and in all three cases its claims are only as
 * good as the code (or file) that produced them. This pass re-derives
 * every claim instead of trusting it: tile ranges against the chain's
 * loop extents, executability of the block order, memory usage via a
 * fresh Algorithm-1 evaluation against the capacity, the §V-B register
 * budget for micro-kernel parameters, and — on small shapes — the
 * Algorithm-1 volume itself against an independent brute-force recount
 * that walks the block grid and simulates one resident tile per tensor.
 *
 * Rules:
 *  - PL01  document syntax error (reported by chimera-check when the
 *          parser rejects a plan file outright)
 *  - PL02  order/tiles reference an axis name the chain does not have
 *  - PL03  order is not a permutation of the chain's axes
 *  - PL04  tile size outside [1, extent]
 *  - PL05  plan incomplete: missing order, missing tile entries, or a
 *          tile vector of the wrong arity
 *  - PL06  block order not executable with single on-chip intermediate
 *          regions (model::isExecutableOrder)
 *  - PL07  re-derived memory usage exceeds the capacity
 *  - PL08  declared DV/MU predictions disagree with the re-derived
 *          Algorithm-1 values (stale or tampered document)
 *  - PL09  Algorithm-1 result disagrees with the brute-force recount
 *          (a model regression; reported as a note when the block grid
 *          is too large to recount)
 *  - PL10  document fingerprint does not match the expected cache key
 *  - PL11  multi-level schedule defect: wrong level count or inner
 *          tiles not nested inside the enclosing level's tiles
 *  - PL12  document concurrency binding defect: unknown axis, unknown
 *          kind, duplicate entry, or incomplete axis coverage (see
 *          concurrency_verifier.hpp; the DP01-DP06 rules comparing a
 *          bound table against fresh dependence analysis live there
 *          and run as part of verifyExecutionPlan /
 *          verifyPlanDocument)
 *  - PL13  thread-aware chunking defect: plannedThreads < 1, a grain
 *          vector of the wrong arity or with non-positive entries, a
 *          grain > 1 on an axis the dependence analysis did not prove
 *          Parallel, a document grain line without a threads line, or —
 *          when a topology is supplied — a per-worker footprint larger
 *          than one worker's share of the tightest shared level
 *          (capacity / workers), i.e. the plan would thrash the LLC
 *          at its own declared thread count
 *  - PL14  safety-certificate binding defect: a `safety:` line with
 *          malformed fields, a domain naming unknown axes, a digest
 *          that does not match the bound chain + schedule, or claimed
 *          SB rules the re-run analyzer refutes (see
 *          safety_verifier.hpp; the SB01-SB04 rules themselves live
 *          there and run as part of verifyExecutionPlan /
 *          verifyPlanDocument on certified plans)
 *  - KP01  micro-kernel register usage MI*NI + NI + MII exceeds the
 *          register budget
 *  - KP02  micro-kernel structure: MII < 2 or MII does not divide MI
 *  - KP03  micro-kernel parameter not positive
 *
 * All entry points collect findings and never throw.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "kernels/kernel_params.hpp"
#include "model/multilevel.hpp"
#include "plan/plan_io.hpp"
#include "plan/planner.hpp"
#include "verify/diagnostics.hpp"

namespace chimera::verify {

/** Knobs for the plan legality checks. */
struct PlanVerifyOptions
{
    /** Capacity for the PL07 check; <= 0 skips it. */
    double memCapacityBytes = 0.0;

    /** Enforce PL06. Off for deliberately fixed (baseline) orders. */
    bool requireExecutableOrder = true;

    /** Forwarded to Algorithm 1 for the re-derivation. */
    model::ModelOptions model;

    /** Run the PL09 brute-force recount when the grid is small enough. */
    bool recount = true;

    /**
     * Per-operator block-grid budget for the recount; grids larger than
     * this skip PL09 with a note.
     */
    std::int64_t recountMaxBlocks = 1 << 16;

    /**
     * Worker count for the PL13 per-worker capacity check; a plan's own
     * plannedThreads takes precedence when it declares one > 1. <= 1
     * with a serial plan skips the shared-share check.
     */
    int plannedThreads = 1;

    /**
     * Core/cache topology whose shared levels bound each worker's
     * capacity share (PL13). An empty topology skips that check; the
     * grain-structure checks still run.
     */
    model::MachineModel topology;
};

/** Derives verify options from the planner options that made a plan. */
PlanVerifyOptions planVerifyOptions(const plan::PlannerOptions &options);

/**
 * Independent Algorithm-1 cross-check: walks the block grid of every
 * operator in @p perm order simulating one resident tile per tensor and
 * counts actual tile (re)loads — no keep_reuse reasoning, no shared code
 * with model::computeDataMovement. Returns nullopt when some operator's
 * block grid exceeds @p maxBlocksPerOp. @p perm and @p tiles must be
 * valid (the verifier checks them first).
 */
std::optional<model::DataMovement>
bruteForceDataMovement(const ir::Chain &chain,
                       const std::vector<ir::AxisId> &perm,
                       const std::vector<std::int64_t> &tiles,
                       const model::ModelOptions &options,
                       std::int64_t maxBlocksPerOp);

/** Checks one (order, tiles) schedule: PL03-PL07, PL09. */
Report verifyPlan(const ir::Chain &chain,
                  const std::vector<ir::AxisId> &perm,
                  const std::vector<std::int64_t> &tiles,
                  const PlanVerifyOptions &options);

/** verifyPlan plus the PL08 check of the plan's embedded predictions. */
Report verifyExecutionPlan(const ir::Chain &chain,
                           const plan::ExecutionPlan &plan,
                           const PlanVerifyOptions &options);

/**
 * Checks a parsed plan document against @p chain: name binding (PL02,
 * PL03, PL05), the core schedule checks, declared-prediction drift
 * (PL08) and the fingerprint when @p expectedFingerprint is non-empty
 * (PL10).
 */
Report verifyPlanDocument(const ir::Chain &chain,
                          const plan::ParsedPlanDoc &doc,
                          const std::string &expectedFingerprint,
                          const PlanVerifyOptions &options);

/**
 * Checks every level of a multi-level schedule against its level's
 * capacity plus the PL11 nesting constraints (inner tiles elementwise
 * <= the enclosing level's tiles).
 */
Report verifyMultiLevelPlan(const ir::Chain &chain,
                            const model::MachineModel &machine,
                            const std::vector<model::LevelSchedule> &levels,
                            const PlanVerifyOptions &options);

/** §V-B register-budget checks (KP01-KP03) for micro-kernel params. */
Report verifyKernelParams(const kernels::CpuKernelParams &params,
                          int numRegisters);

} // namespace chimera::verify
