#include "verify/plan_verifier.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "model/data_movement.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "verify/concurrency_verifier.hpp"
#include "verify/safety_verifier.hpp"
#include "verify/search_verifier.hpp"

namespace chimera::verify {

using ir::AxisId;
using ir::Chain;
using ir::OpDecl;
using ir::TensorDecl;
using ir::TensorKind;

namespace {

std::string
axisName(const Chain &chain, AxisId axis)
{
    return chain.axes()[static_cast<std::size_t>(axis)].name;
}

std::string
formatDouble(double v)
{
    // Predictions are byte counts; print them integral when they are.
    if (v == std::floor(v) && std::abs(v) < 9e15) {
        return std::to_string(static_cast<std::int64_t>(v));
    }
    return std::to_string(v);
}

/**
 * Tolerance for comparing a declared prediction against the re-derived
 * value: serialization truncates doubles to whole bytes, so allow the
 * rounding slack plus a relative epsilon for large volumes.
 */
bool
predictionsDiffer(double declared, double rederived)
{
    const double tolerance =
        std::max(2.0, 1e-6 * std::abs(rederived));
    return std::abs(declared - rederived) > tolerance;
}

/**
 * PL03: @p perm must be a permutation of all chain axes. Returns true
 * when it is (the model evaluation below needs that to hold).
 */
bool
checkPermutation(const Chain &chain, const std::vector<AxisId> &perm,
                 Report &report)
{
    bool ok = true;
    if (static_cast<int>(perm.size()) != chain.numAxes()) {
        report.error("PL03", "order",
                     "order lists " + std::to_string(perm.size()) +
                         " axes but the chain has " +
                         std::to_string(chain.numAxes()));
        ok = false;
    }
    std::vector<int> seen(static_cast<std::size_t>(chain.numAxes()), 0);
    for (AxisId axis : perm) {
        if (axis < 0 || axis >= chain.numAxes()) {
            report.error("PL03", "order",
                         "order references unknown axis id " +
                             std::to_string(axis));
            ok = false;
            continue;
        }
        if (++seen[static_cast<std::size_t>(axis)] == 2) {
            report.error("PL03", "order",
                         "axis " + axisName(chain, axis) +
                             " appears more than once");
            ok = false;
        }
    }
    return ok;
}

/** PL04/PL05: tile vector arity and per-axis [1, extent] range. */
bool
checkTiles(const Chain &chain, const std::vector<std::int64_t> &tiles,
           Report &report)
{
    if (static_cast<int>(tiles.size()) != chain.numAxes()) {
        report.error("PL05", "tiles",
                     "tile vector has " + std::to_string(tiles.size()) +
                         " entries but the chain has " +
                         std::to_string(chain.numAxes()) + " axes");
        return false;
    }
    bool ok = true;
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const std::int64_t tile = tiles[static_cast<std::size_t>(a)];
        const std::int64_t extent =
            chain.axes()[static_cast<std::size_t>(a)].extent;
        if (tile < 1 || tile > extent) {
            report.error("PL04", "tiles." + axisName(chain, a),
                         "tile " + std::to_string(tile) +
                             " is outside [1, " + std::to_string(extent) +
                             "]");
            ok = false;
        }
    }
    return ok;
}

/**
 * PL06/PL07/PL09 once the schedule is structurally valid. Returns the
 * re-derived movement so callers can compare declared predictions.
 */
model::DataMovement
checkLegality(const Chain &chain, const std::vector<AxisId> &perm,
              const std::vector<std::int64_t> &tiles,
              const PlanVerifyOptions &options, Report &report)
{
    if (options.requireExecutableOrder &&
        !model::isExecutableOrder(chain, perm, tiles)) {
        report.error("PL06", "order",
                     "block order is not executable with single on-chip"
                     " intermediate regions (an outer loop revisits an"
                     " intermediate region after eviction)");
    }

    const model::DataMovement dm =
        model::computeDataMovement(chain, perm, tiles, options.model);
    if (options.memCapacityBytes > 0.0 &&
        static_cast<double>(dm.memUsageBytes) > options.memCapacityBytes) {
        report.error(
            "PL07", "mem-bytes",
            "re-derived memory usage " +
                std::to_string(dm.memUsageBytes) +
                " B exceeds the capacity " +
                formatDouble(options.memCapacityBytes) + " B");
    }

    if (options.recount) {
        const std::optional<model::DataMovement> recount =
            bruteForceDataMovement(chain, perm, tiles, options.model,
                                   options.recountMaxBlocks);
        if (!recount) {
            report.note("PL09", "volume-bytes",
                        "block grid too large for the brute-force"
                        " recount; skipped");
        } else {
            for (std::size_t t = 0; t < chain.tensors().size(); ++t) {
                const double algo = dm.perTensorBytes[t];
                const double brute = recount->perTensorBytes[t];
                if (std::abs(algo - brute) > 0.5) {
                    report.error(
                        "PL09",
                        "tensor " + chain.tensors()[t].name,
                        "Algorithm 1 predicts " + formatDouble(algo) +
                            " B moved but the brute-force recount"
                            " measures " +
                            formatDouble(brute) + " B");
                }
            }
            if (recount->memUsageBytes != dm.memUsageBytes) {
                report.error(
                    "PL09", "mem-bytes",
                    "Algorithm 1 predicts " +
                        std::to_string(dm.memUsageBytes) +
                        " B peak usage but the independent recount"
                        " measures " +
                        std::to_string(recount->memUsageBytes) + " B");
            }
        }
    }
    return dm;
}

/**
 * PL13 structural checks of a chunking declaration: grain arity,
 * positivity, and Parallel-only grains (> 1 on a reduction/sequential
 * axis would regroup its serial walk). @p kinds must have chain arity.
 */
void
checkChunking(const Chain &chain, int plannedThreads,
              const std::vector<std::int64_t> &grain,
              const std::vector<analysis::AxisConcurrency> &kinds,
              Report &report)
{
    if (plannedThreads < 1) {
        report.error("PL13", "threads",
                     "planned thread count " +
                         std::to_string(plannedThreads) + " must be >= 1");
    }
    if (grain.empty()) {
        return;
    }
    if (static_cast<int>(grain.size()) != chain.numAxes()) {
        report.error("PL13", "grain",
                     "grain vector has " + std::to_string(grain.size()) +
                         " entries but the chain has " +
                         std::to_string(chain.numAxes()) + " axes");
        return;
    }
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        const std::int64_t g = grain[static_cast<std::size_t>(a)];
        if (g < 1) {
            report.error("PL13", "grain." + axisName(chain, a),
                         "grain " + std::to_string(g) + " must be >= 1");
        } else if (g > 1 &&
                   kinds[static_cast<std::size_t>(a)] !=
                       analysis::AxisConcurrency::Parallel) {
            report.error(
                "PL13", "grain." + axisName(chain, a),
                "grain " + std::to_string(g) + " on axis " +
                    axisName(chain, a) +
                    " which is " +
                    analysis::concurrencyName(
                        kinds[static_cast<std::size_t>(a)]) +
                    ", not parallel — only proven-parallel axes may be"
                    " chunked");
        }
    }
}

/**
 * PL13 capacity check: every one of @p workers concurrent workers keeps
 * a full tile working set resident, so the footprint must fit one
 * worker's share of the topology's tightest shared level.
 */
void
checkPerWorkerShare(std::int64_t memUsageBytes, int workers,
                    const model::MachineModel &topology, Report &report)
{
    if (workers <= 1 || !topology.hasTopology()) {
        return;
    }
    const double share =
        model::minSharedPerWorkerCapacityBytes(topology, workers);
    if (static_cast<double>(memUsageBytes) > share) {
        report.error(
            "PL13", "mem-bytes",
            "per-worker footprint " + std::to_string(memUsageBytes) +
                " B exceeds one of " + std::to_string(workers) +
                " workers' share (" + formatDouble(share) +
                " B) of machine " + topology.name +
                "'s tightest shared level");
    }
}

/** PL08: declared predictions against the re-derived values. */
void
checkDeclaredPredictions(const model::DataMovement &dm,
                         double declaredVolume, bool haveVolume,
                         std::int64_t declaredMem, bool haveMem,
                         Report &report)
{
    if (haveVolume && predictionsDiffer(declaredVolume, dm.volumeBytes)) {
        report.error("PL08", "volume-bytes",
                     "declared volume " + formatDouble(declaredVolume) +
                         " B disagrees with the re-derived " +
                         formatDouble(dm.volumeBytes) + " B");
    }
    if (haveMem &&
        predictionsDiffer(static_cast<double>(declaredMem),
                          static_cast<double>(dm.memUsageBytes))) {
        report.error("PL08", "mem-bytes",
                     "declared memory usage " +
                         std::to_string(declaredMem) +
                         " B disagrees with the re-derived " +
                         std::to_string(dm.memUsageBytes) + " B");
    }
}

} // namespace

PlanVerifyOptions
planVerifyOptions(const plan::PlannerOptions &options)
{
    PlanVerifyOptions vo;
    vo.memCapacityBytes = options.memCapacityBytes;
    vo.requireExecutableOrder = options.onlyExecutableOrders;
    vo.model = options.model;
    vo.plannedThreads = options.execThreads;
    vo.topology = options.topology;
    return vo;
}

std::optional<model::DataMovement>
bruteForceDataMovement(const Chain &chain, const std::vector<AxisId> &perm,
                       const std::vector<std::int64_t> &tiles,
                       const model::ModelOptions &options,
                       std::int64_t maxBlocksPerOp)
{
    model::DataMovement result;
    result.perTensorBytes.assign(chain.tensors().size(), 0.0);

    for (const OpDecl &op : chain.ops()) {
        // The operator's block loops, outermost first, with trip counts.
        std::vector<std::int64_t> blocks;
        std::vector<AxisId> opAxes;
        std::int64_t steps = 1;
        for (AxisId axis : perm) {
            if (!op.usesLoop(axis)) {
                continue;
            }
            const auto a = static_cast<std::size_t>(axis);
            const std::int64_t count =
                ceilDiv(chain.axes()[a].extent, tiles[a]);
            opAxes.push_back(axis);
            blocks.push_back(count);
            if (steps > maxBlocksPerOp / std::max<std::int64_t>(count, 1)) {
                return std::nullopt;
            }
            steps *= count;
        }
        if (steps > maxBlocksPerOp) {
            return std::nullopt;
        }

        // Peak usage: every operand tile resident at once.
        std::int64_t footprintBytes = 0;
        for (int t : op.tensorIds) {
            const TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            footprintBytes +=
                tensor.footprintElems(tiles) * tensor.elementSize;
        }
        result.memUsageBytes =
            std::max(result.memUsageBytes, footprintBytes);

        // One simulated on-chip slot per counted tensor: walk every
        // block of the nest in execution order and reload the tensor's
        // tile whenever the block's projection onto the tensor's axes
        // differs from what is resident.
        for (int t : op.tensorIds) {
            const TensorDecl &tensor =
                chain.tensors()[static_cast<std::size_t>(t)];
            const bool counted = options.intermediatesAreIO ||
                                 tensor.kind != TensorKind::Intermediate;
            if (!counted) {
                continue;
            }
            std::vector<char> accessed(opAxes.size(), 0);
            for (std::size_t i = 0; i < opAxes.size(); ++i) {
                accessed[i] = tensor.usesAxis(opAxes[i]) ? 1 : 0;
            }

            std::vector<std::int64_t> idx(opAxes.size(), 0);
            std::vector<std::int64_t> resident(opAxes.size(), -1);
            std::int64_t loads = 0;
            for (std::int64_t step = 0; step < steps; ++step) {
                bool match = true;
                for (std::size_t i = 0; i < opAxes.size(); ++i) {
                    if (accessed[i] != 0 && resident[i] != idx[i]) {
                        match = false;
                        break;
                    }
                }
                if (!match) {
                    ++loads;
                    for (std::size_t i = 0; i < opAxes.size(); ++i) {
                        if (accessed[i] != 0) {
                            resident[i] = idx[i];
                        }
                    }
                }
                // Odometer increment, innermost loop fastest.
                for (std::size_t d = opAxes.size(); d-- > 0;) {
                    if (++idx[d] < blocks[d]) {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            if (steps > 0 && loads == 0) {
                loads = 1; // tensor indexed by no loop: one load
            }
            const double movement =
                static_cast<double>(loads) *
                static_cast<double>(tensor.footprintElems(tiles) *
                                    tensor.elementSize);
            result.volumeBytes += movement;
            result.perTensorBytes[static_cast<std::size_t>(t)] += movement;
        }
    }
    return result;
}

Report
verifyPlan(const Chain &chain, const std::vector<AxisId> &perm,
           const std::vector<std::int64_t> &tiles,
           const PlanVerifyOptions &options)
{
    Report report;
    const bool permOk = checkPermutation(chain, perm, report);
    const bool tilesOk = checkTiles(chain, tiles, report);
    if (permOk && tilesOk) {
        checkLegality(chain, perm, tiles, options, report);
    }
    return report;
}

Report
verifyExecutionPlan(const Chain &chain, const plan::ExecutionPlan &plan,
                    const PlanVerifyOptions &options)
{
    Report report;
    const bool permOk = checkPermutation(chain, plan.perm, report);
    const bool tilesOk = checkTiles(chain, plan.tiles, report);
    if (permOk && tilesOk) {
        const model::DataMovement dm =
            checkLegality(chain, plan.perm, plan.tiles, options, report);
        checkDeclaredPredictions(dm, plan.predictedVolumeBytes, true,
                                 plan.memUsageBytes, true, report);
        // Plans without a table (hand-assembled) get fresh analysis at
        // execution time, so there is nothing to disagree with.
        if (!plan.concurrency.empty()) {
            report.merge(
                verifyConcurrency(chain, plan.tiles, plan.concurrency));
        }
        // PL13: chunking structure against the classes the executors
        // will actually obey, then the per-worker LLC share.
        const std::vector<analysis::AxisConcurrency> kinds =
            static_cast<int>(plan.concurrency.size()) == chain.numAxes()
                ? plan.concurrency
                : analysis::analyzeConcurrency(chain, plan.tiles).kinds();
        checkChunking(chain, plan.plannedThreads, plan.parallelGrain,
                      kinds, report);
        const int workers = plan.plannedThreads > 1
                                ? plan.plannedThreads
                                : options.plannedThreads;
        checkPerWorkerShare(dm.memUsageBytes, workers, options.topology,
                            report);
        // PL14 + SB: a certified plan must survive digest recompute and
        // an analyzer re-run (PlanCache lookups audit through here, so
        // tampered certificates in cache entries are rejected on load).
        if (plan.safety.certified) {
            SafetyVerifyOptions so;
            so.memCapacityBytes = options.memCapacityBytes;
            so.topology = options.topology;
            so.workers = workers;
            report.merge(verifySafetyCertificate(chain, plan, so));
        }
        // PL15: a plan claiming search stats must survive the counts
        // audit and the digest recompute (cache lookups audit through
        // here, so a tampered `search:` line forces a replan).
        if (plan.search.present) {
            report.merge(verifySearchStats(chain, plan));
        }
    }
    return report;
}

Report
verifyPlanDocument(const Chain &chain, const plan::ParsedPlanDoc &doc,
                   const std::string &expectedFingerprint,
                   const PlanVerifyOptions &options)
{
    Report report;
    if (!expectedFingerprint.empty() &&
        doc.fingerprint != expectedFingerprint) {
        report.error("PL10", "fingerprint",
                     "expected " + expectedFingerprint +
                         " but the document carries " +
                         (doc.fingerprint.empty() ? std::string("none")
                                                  : doc.fingerprint));
    }
    if (!doc.haveOrder) {
        report.error("PL05", "order", "document has no order line");
    }
    if (!doc.haveTiles) {
        report.error("PL05", "tiles", "document has no tiles line");
    }
    if (!doc.haveOrder || !doc.haveTiles) {
        return report;
    }

    // Bind the order: axis names -> ids, omitted axes appended innermost
    // (the same reading permFromOrderString applies, but reported as
    // findings instead of thrown).
    auto findAxis = [&chain](const std::string &name) -> AxisId {
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
                return a;
            }
        }
        return -1;
    };
    std::vector<AxisId> perm;
    bool bindable = true;
    std::size_t start = 0;
    while (start < doc.order.size()) {
        std::size_t comma = doc.order.find(',', start);
        if (comma == std::string::npos) {
            comma = doc.order.size();
        }
        const std::string name = doc.order.substr(start, comma - start);
        start = comma + 1;
        const AxisId axis = findAxis(name);
        if (axis < 0) {
            report.error("PL02", "order",
                         "unknown axis \"" + name + "\"");
            bindable = false;
            continue;
        }
        perm.push_back(axis);
    }
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        if (std::find(perm.begin(), perm.end(), a) == perm.end()) {
            perm.push_back(a);
        }
    }

    // Bind the tiles; axes without an entry stay 0 and are reported by
    // the range check as PL05.
    std::vector<std::int64_t> tiles(
        static_cast<std::size_t>(chain.numAxes()), 0);
    std::vector<char> haveTile(static_cast<std::size_t>(chain.numAxes()),
                               0);
    for (const auto &[name, tile] : doc.tiles) {
        const AxisId axis = findAxis(name);
        if (axis < 0) {
            report.error("PL02", "tiles",
                         "unknown axis \"" + name + "\"");
            bindable = false;
            continue;
        }
        tiles[static_cast<std::size_t>(axis)] = tile;
        haveTile[static_cast<std::size_t>(axis)] = 1;
    }
    for (AxisId a = 0; a < chain.numAxes(); ++a) {
        if (haveTile[static_cast<std::size_t>(a)] == 0) {
            report.error("PL05", "tiles." + axisName(chain, a),
                         "no tile size for axis " + axisName(chain, a));
            bindable = false;
        }
    }
    if (!bindable) {
        return report;
    }

    const bool permOk = checkPermutation(chain, perm, report);
    const bool tilesOk = checkTiles(chain, tiles, report);
    if (permOk && tilesOk) {
        const model::DataMovement dm =
            checkLegality(chain, perm, tiles, options, report);
        checkDeclaredPredictions(dm, doc.declaredVolumeBytes,
                                 doc.haveVolume, doc.declaredMemBytes,
                                 doc.haveMem, report);
        report.merge(verifyDocumentConcurrency(chain, doc, tiles));

        // PL13: bind and audit the chunking lines. The parser enforces
        // positivity; binding and parallel-only are checked here so
        // chimera-check reports instead of throwing.
        if (doc.haveGrain && !doc.haveThreads) {
            report.error("PL13", "grain",
                         "document has a grain line without a threads"
                         " line");
        }
        std::vector<std::int64_t> grain;
        if (doc.haveGrain) {
            grain.assign(static_cast<std::size_t>(chain.numAxes()), 1);
            for (const auto &[name, g] : doc.grain) {
                const AxisId axis = findAxis(name);
                if (axis < 0) {
                    report.error("PL02", "grain",
                                 "unknown axis \"" + name + "\"");
                    continue;
                }
                grain[static_cast<std::size_t>(axis)] = g;
            }
        }
        // Grains must target axes the *executors* treat as parallel:
        // the document's own table when it binds, fresh analysis
        // otherwise (mirrors plan::effectiveConcurrency).
        std::vector<analysis::AxisConcurrency> kinds;
        if (doc.haveConcurrency) {
            try {
                kinds = plan::bindConcurrency(chain, doc.concurrency);
            } catch (const Error &) {
                // already reported as PL12 by verifyDocumentConcurrency
            }
        }
        if (static_cast<int>(kinds.size()) != chain.numAxes()) {
            kinds = analysis::analyzeConcurrency(chain, tiles).kinds();
        }
        const int workers =
            doc.haveThreads ? static_cast<int>(doc.threads) : 1;
        checkChunking(chain, workers, grain, kinds, report);
        checkPerWorkerShare(dm.memUsageBytes, workers, options.topology,
                            report);

        // PL14 + SB: bind the safety line (reported, not thrown) and
        // validate the certificate against the bound schedule.
        if (doc.haveSafety) {
            plan::ExecutionPlan bound;
            try {
                bound.safety = plan::bindSafety(chain, doc.safety);
            } catch (const Error &e) {
                report.error("PL14", "safety", e.what());
            }
            if (bound.safety.certified) {
                bound.perm = perm;
                bound.tiles = tiles;
                bound.concurrency = kinds;
                bound.plannedThreads = workers;
                bound.parallelGrain = grain;
                SafetyVerifyOptions so;
                so.memCapacityBytes = options.memCapacityBytes;
                so.topology = options.topology;
                so.workers = workers;
                report.merge(verifySafetyCertificate(chain, bound, so));
            }
        }

        // PL15: bind the search line (reported, not thrown) and audit
        // its claims against the bound schedule.
        if (doc.haveSearch) {
            plan::ExecutionPlan bound;
            bound.perm = perm;
            bound.tiles = tiles;
            try {
                bound.search = plan::bindSearch(doc.search);
            } catch (const Error &e) {
                report.error("PL15", "search", e.what());
            }
            if (bound.search.present) {
                report.merge(verifySearchStats(chain, bound));
            }
        }
    }
    return report;
}

Report
verifyMultiLevelPlan(const Chain &chain,
                     const model::MachineModel &machine,
                     const std::vector<model::LevelSchedule> &levels,
                     const PlanVerifyOptions &options)
{
    Report report;
    if (levels.size() != machine.levels.size()) {
        report.error("PL11", "levels",
                     "schedule has " + std::to_string(levels.size()) +
                         " levels but machine " + machine.name +
                         " has " +
                         std::to_string(machine.levels.size()));
        return report;
    }
    for (std::size_t d = 0; d < levels.size(); ++d) {
        PlanVerifyOptions levelOptions = options;
        levelOptions.memCapacityBytes =
            machine.levels[d].capacityBytes;
        Report levelReport = verifyPlan(chain, levels[d].perm,
                                        levels[d].tiles, levelOptions);
        for (Finding finding : levelReport.findings()) {
            finding.location = "level " + machine.levels[d].name + " / " +
                               finding.location;
            report.add(std::move(finding));
        }
    }
    if (report.hasErrors()) {
        return report; // nesting needs well-formed tile vectors
    }
    for (std::size_t d = 0; d + 1 < levels.size(); ++d) {
        for (AxisId a = 0; a < chain.numAxes(); ++a) {
            const std::int64_t inner =
                levels[d].tiles[static_cast<std::size_t>(a)];
            const std::int64_t outer =
                levels[d + 1].tiles[static_cast<std::size_t>(a)];
            if (inner > outer) {
                report.error(
                    "PL11",
                    "level " + machine.levels[d].name + " / tiles." +
                        axisName(chain, a),
                    "inner tile " + std::to_string(inner) +
                        " does not nest inside the enclosing level's " +
                        std::to_string(outer));
            }
        }
    }
    return report;
}

Report
verifyKernelParams(const kernels::CpuKernelParams &params,
                   int numRegisters)
{
    Report report;
    if (params.mi < 1 || params.ni < 1 || params.mii < 1) {
        report.error("KP03", "kernel-params",
                     "register-tile parameters (MI=" +
                         std::to_string(params.mi) +
                         ", NI=" + std::to_string(params.ni) +
                         ", MII=" + std::to_string(params.mii) +
                         ") must all be positive");
        return report;
    }
    const int used = params.mi * params.ni + params.ni + params.mii;
    if (used > numRegisters) {
        report.error("KP01", "kernel-params",
                     "register usage MI*NI + NI + MII = " +
                         std::to_string(used) + " exceeds the budget of " +
                         std::to_string(numRegisters) + " registers");
    }
    if (params.mii < 2) {
        report.error("KP02", "kernel-params",
                     "MII = " + std::to_string(params.mii) +
                         " cannot hide the A-broadcast latency"
                         " (Algorithm 2 requires MII >= 2)");
    }
    if (params.mi % params.mii != 0) {
        report.error("KP02", "kernel-params",
                     "MII = " + std::to_string(params.mii) +
                         " does not divide MI = " +
                         std::to_string(params.mi) +
                         " (the mo loop steps by MII)");
    }
    return report;
}

} // namespace chimera::verify
