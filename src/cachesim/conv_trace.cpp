#include "cachesim/conv_trace.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/mathutil.hpp"
#include "tensor/reference.hpp"

namespace chimera::cachesim {

using ir::ConvChainConfig;

namespace {

constexpr std::int64_t kElem = 4;

/** Simulated base addresses for the chain's tensors. */
struct ConvAddressMap
{
    std::int64_t input = 0;
    std::int64_t w1 = 0;
    std::int64_t tGlobal = 0;
    std::int64_t w2 = 0;
    std::int64_t output = 0;
    std::int64_t tScratch = 0;
};

ConvAddressMap
layout(const ConvChainConfig &cfg)
{
    auto align = [](std::int64_t v) { return roundUp(v, 4096); };
    ConvAddressMap map;
    std::int64_t cursor = 0;
    map.input = cursor;
    cursor = align(cursor + cfg.batch * cfg.ic * cfg.h * cfg.w * kElem);
    map.w1 = cursor;
    cursor = align(cursor + cfg.oc1 * cfg.ic * cfg.k1 * cfg.k1 * kElem);
    map.tGlobal = cursor;
    cursor = align(cursor + cfg.batch * cfg.oc1 * cfg.oh1() * cfg.ow1() *
                                kElem);
    map.w2 = cursor;
    cursor = align(cursor + cfg.oc2 * cfg.oc1 * cfg.k2 * cfg.k2 * kElem);
    map.output = cursor;
    cursor = align(cursor + cfg.batch * cfg.oc2 * cfg.oh2() * cfg.ow2() *
                                kElem);
    map.tScratch = cursor;
    return map;
}

TraceResult
collect(const CacheHierarchy &caches)
{
    TraceResult result;
    for (int d = 0; d < caches.numLevels(); ++d) {
        result.trafficIntoLevelBytes.push_back(
            caches.trafficIntoLevelBytes(d));
        result.hitRates.push_back(caches.stats(d).hitRate());
    }
    result.dramBytes = caches.dramTrafficBytes();
    return result;
}

/** Touches the input rows feeding mid rows [trLo, trHi) x [tcLo, tcHi). */
void
touchInputRegion(CacheHierarchy &caches, const ConvChainConfig &cfg,
                 std::int64_t inputBase, std::int64_t batchIdx,
                 std::int64_t icLo, std::int64_t icCnt, std::int64_t trLo,
                 std::int64_t trHi, std::int64_t tcLo, std::int64_t tcHi)
{
    const int pad1 = cfg.effectivePad1();
    const std::int64_t rowLo =
        clampI64(trLo * cfg.stride1 - pad1, 0, cfg.h);
    const std::int64_t rowHi = clampI64(
        (trHi - 1) * cfg.stride1 + cfg.k1 - pad1, 0, cfg.h);
    const std::int64_t colLo =
        clampI64(tcLo * cfg.stride1 - pad1, 0, cfg.w);
    const std::int64_t colHi = clampI64(
        (tcHi - 1) * cfg.stride1 + cfg.k1 - pad1, 0, cfg.w);
    if (rowHi <= rowLo || colHi <= colLo) {
        return;
    }
    for (std::int64_t ic = icLo; ic < icLo + icCnt; ++ic) {
        for (std::int64_t row = rowLo; row < rowHi; ++row) {
            caches.access(inputBase +
                              (((batchIdx * cfg.ic + ic) * cfg.h + row) *
                                   cfg.w +
                               colLo) *
                                  kElem,
                          (colHi - colLo) * kElem);
        }
    }
}

} // namespace

TraceResult
traceFusedConvChain(const ConvChainConfig &config,
                    const plan::ExecutionPlan &plan,
                    const std::vector<CacheConfig> &levels)
{
    const ir::Chain chain = ir::makeConvChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    CacheHierarchy caches(levels);
    const ConvAddressMap map = layout(config);

    auto tileOf = [&](const std::string &name, std::int64_t fallback) {
        for (int a = 0; a < chain.numAxes(); ++a) {
            if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
                return plan.tiles[static_cast<std::size_t>(a)];
            }
        }
        return fallback;
    };
    const std::int64_t tb = tileOf("b", 1);
    const std::int64_t toc2 = tileOf("oc2", config.oc2);
    const std::int64_t toh = tileOf("oh", config.oh2());
    const std::int64_t tow = tileOf("ow", config.ow2());
    const std::int64_t toc1 = tileOf("oc1", config.oc1);
    const std::int64_t tic = tileOf("ic", config.ic);

    struct Loop
    {
        char name;
        std::int64_t extent;
        std::int64_t tile;
    };
    std::vector<Loop> loops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            loops.push_back({'b', config.batch, tb});
        } else if (name == "oc1") {
            loops.push_back({'c', config.oc1, toc1});
        } else if (name == "oh") {
            loops.push_back({'h', config.oh2(), toh});
        } else if (name == "ow") {
            loops.push_back({'w', config.ow2(), tow});
        }
    }
    if (config.batch == 1) {
        loops.insert(loops.begin(), {'b', 1, 1});
    }

    const std::int64_t w1Ld = config.ic * config.k1 * config.k1;
    const std::int64_t w2Ld = config.oc1 * config.k2 * config.k2;
    const int st2 = config.stride2;
    const int k2 = config.k2;
    const int pad2 = config.effectivePad2();

    std::int64_t starts[4];
    for (starts[0] = 0; starts[0] < loops[0].extent;
         starts[0] += loops[0].tile) {
    for (starts[1] = 0; starts[1] < loops[1].extent;
         starts[1] += loops[1].tile) {
    for (starts[2] = 0; starts[2] < loops[2].extent;
         starts[2] += loops[2].tile) {
    for (starts[3] = 0; starts[3] < loops[3].extent;
         starts[3] += loops[3].tile) {
        std::int64_t b0 = 0, c0 = 0, h0 = 0, w0 = 0;
        std::int64_t bb = 1, cc = 1, hh = 1, ww = 1;
        for (int i = 0; i < 4; ++i) {
            const Loop &loop = loops[static_cast<std::size_t>(i)];
            const std::int64_t size =
                std::min<std::int64_t>(loop.tile, loop.extent - starts[i]);
            switch (loop.name) {
              case 'b': b0 = starts[i]; bb = size; break;
              case 'c': c0 = starts[i]; cc = size; break;
              case 'h': h0 = starts[i]; hh = size; break;
              case 'w': w0 = starts[i]; ww = size; break;
              default: break;
            }
        }

        const std::int64_t midH = st2 * (hh - 1) + k2;
        const std::int64_t midW = st2 * (ww - 1) + k2;
        const std::int64_t trLo = h0 * st2 - pad2;
        const std::int64_t tcLo = w0 * st2 - pad2;
        const std::int64_t trLoV = std::max<std::int64_t>(0, trLo);
        const std::int64_t trHiV =
            std::min<std::int64_t>(config.oh1(), trLo + midH);
        const std::int64_t tcLoV = std::max<std::int64_t>(0, tcLo);
        const std::int64_t tcHiV =
            std::min<std::int64_t>(config.ow1(), tcLo + midW);

        // conv1 inputs: I slab per ic block + W1 slice.
        for (std::int64_t bi = 0; bi < bb; ++bi) {
            for (std::int64_t ic0 = 0; ic0 < config.ic; ic0 += tic) {
                const std::int64_t icc =
                    std::min<std::int64_t>(tic, config.ic - ic0);
                touchInputRegion(caches, config, map.input, b0 + bi, ic0,
                                 icc, trLoV, trHiV, tcLoV, tcHiV);
                for (std::int64_t oc = 0; oc < cc; ++oc) {
                    caches.access(map.w1 +
                                      ((c0 + oc) * w1Ld +
                                       ic0 * config.k1 * config.k1) *
                                          kElem,
                                  icc * config.k1 * config.k1 * kElem);
                }
            }
            // Intermediate region: on-chip scratch (reused addresses).
            for (std::int64_t i = 0; i < cc * midH; ++i) {
                caches.access(map.tScratch + i * midW * kElem,
                              midW * kElem);
            }
        }

        // conv2: region re-read + W2 slices + output rows (RMW).
        for (std::int64_t bi = 0; bi < bb; ++bi) {
            for (std::int64_t oc0 = 0; oc0 < config.oc2; oc0 += toc2) {
                const std::int64_t occ =
                    std::min<std::int64_t>(toc2, config.oc2 - oc0);
                for (std::int64_t i = 0; i < cc * midH; ++i) {
                    caches.access(map.tScratch + i * midW * kElem,
                                  midW * kElem);
                }
                for (std::int64_t oc = 0; oc < occ; ++oc) {
                    caches.access(map.w2 + ((oc0 + oc) * w2Ld +
                                            c0 * k2 * k2) *
                                               kElem,
                                  cc * k2 * k2 * kElem);
                }
                for (std::int64_t oc = 0; oc < occ; ++oc) {
                    for (std::int64_t rr = 0; rr < hh; ++rr) {
                        caches.access(
                            map.output +
                                ((((b0 + bi) * config.oc2 + oc0 + oc) *
                                      config.oh2() +
                                  h0 + rr) *
                                     config.ow2() +
                                 w0) *
                                    kElem,
                            ww * kElem);
                    }
                }
            }
        }
    }
    }
    }
    }
    return collect(caches);
}

TraceResult
traceUnfusedConvChain(const ConvChainConfig &config,
                      const exec::ConvTiles &tiles1,
                      const exec::ConvTiles &tiles2,
                      const std::vector<CacheConfig> &levels)
{
    CacheHierarchy caches(levels);
    const ConvAddressMap map = layout(config);

    // One pass per convolution, row-by-row as runTiledConv2d does.
    auto traceConv = [&](std::int64_t inBase, std::int64_t wBase,
                         std::int64_t outBase, std::int64_t ic,
                         std::int64_t h, std::int64_t w, std::int64_t oc,
                         int kernel, int stride, int pad,
                         const exec::ConvTiles &tiles) {
        const std::int64_t oh = ref::convOutDim(h, kernel, stride, pad);
        const std::int64_t ow = ref::convOutDim(w, kernel, stride, pad);
        const std::int64_t wLd = ic * kernel * kernel;
        for (std::int64_t bi = 0; bi < config.batch; ++bi) {
            for (std::int64_t r = 0; r < oh; ++r) {
                for (std::int64_t ic0 = 0; ic0 < ic; ic0 += tiles.tic) {
                    const std::int64_t icc =
                        std::min<std::int64_t>(tiles.tic, ic - ic0);
                    // Input rows feeding output row r.
                    const std::int64_t rowLo =
                        clampI64(r * stride - pad, 0, h);
                    const std::int64_t rowHi = clampI64(
                        r * stride + kernel - pad, 0, h);
                    for (std::int64_t c = ic0; c < ic0 + icc; ++c) {
                        for (std::int64_t row = rowLo; row < rowHi;
                             ++row) {
                            caches.access(
                                inBase + (((bi * ic + c) * h + row) * w) *
                                             kElem,
                                w * kElem);
                        }
                    }
                    for (std::int64_t oc0 = 0; oc0 < oc;
                         oc0 += tiles.toc) {
                        const std::int64_t occ = std::min<std::int64_t>(
                            tiles.toc, oc - oc0);
                        for (std::int64_t o = oc0; o < oc0 + occ; ++o) {
                            caches.access(
                                wBase + (o * wLd +
                                         ic0 * kernel * kernel) *
                                            kElem,
                                icc * kernel * kernel * kElem);
                            caches.access(
                                outBase +
                                    (((bi * oc + o) * oh + r) * ow) *
                                        kElem,
                                ow * kElem);
                        }
                    }
                }
            }
        }
    };

    traceConv(map.input, map.w1, map.tGlobal, config.ic, config.h,
              config.w, config.oc1, config.k1, config.stride1,
              config.effectivePad1(), tiles1);
    traceConv(map.tGlobal, map.w2, map.output, config.oc1, config.oh1(),
              config.ow1(), config.oc2, config.k2, config.stride2,
              config.effectivePad2(), tiles2);
    return collect(caches);
}

} // namespace chimera::cachesim
