#pragma once

/**
 * @file
 * Block-level memory traces of the convolution-chain executors for the
 * cache simulator — the conv counterpart of gemm_trace.hpp. The fused
 * walker touches exactly the IO slabs runFusedConvChain reads/writes
 * per region (halo'd input rows, weight slices, output rows), with the
 * intermediate living in a reused on-chip scratch; the unfused walker
 * spills the full intermediate tensor through memory.
 */

#include "cachesim/cache.hpp"
#include "cachesim/gemm_trace.hpp"
#include "exec/conv_chain_exec.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"

namespace chimera::cachesim {

/** Replays the fused conv-chain executor's region walk. */
TraceResult traceFusedConvChain(const ir::ConvChainConfig &config,
                                const plan::ExecutionPlan &plan,
                                const std::vector<CacheConfig> &levels);

/**
 * Replays the unfused path: conv1 over the full tensors (channel
 * blocking per @p tiles), the intermediate written to and re-read from
 * its DRAM-sized buffer, then conv2.
 */
TraceResult traceUnfusedConvChain(const ir::ConvChainConfig &config,
                                  const exec::ConvTiles &tiles1,
                                  const exec::ConvTiles &tiles2,
                                  const std::vector<CacheConfig> &levels);

} // namespace chimera::cachesim
