#pragma once

/**
 * @file
 * Trace-driven multi-level cache simulator.
 *
 * Replaces the paper's hardware performance counters (Figure 8): the
 * executors' block-level memory traces are replayed against a
 * set-associative LRU hierarchy, and the per-level miss traffic is the
 * "measured" data movement volume that Algorithm 1's predictions are
 * validated against. Deterministic by construction, unlike counters.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace chimera::cachesim {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name;
    std::int64_t sizeBytes = 0;
    int associativity = 8;
    int lineBytes = 64;
};

/** Counters of one cache level. */
struct CacheStats
{
    std::int64_t accesses = 0;
    std::int64_t misses = 0;

    double
    hitRate() const
    {
        return accesses == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(misses) /
                               static_cast<double>(accesses);
    }
};

/** One set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Accesses the line containing @p address; returns true on hit. */
    bool accessLine(std::int64_t lineId);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /** Clears contents and counters. */
    void reset();

  private:
    struct Way
    {
        std::int64_t tag = -1;
        std::uint64_t lastUse = 0;
    };

    CacheConfig config_;
    CacheStats stats_;
    std::vector<Way> ways_; ///< sets * associativity, row-major by set.
    std::int64_t numSets_ = 0;
    std::uint64_t clock_ = 0;
};

/**
 * Inclusive multi-level hierarchy: an access probes level 0 upward; a
 * miss at level d is counted and the line is filled into every level at
 * or below d.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const std::vector<CacheConfig> &levels);

    /** Touches @p bytes starting at @p address, one probe per line. */
    void access(std::int64_t address, std::int64_t bytes);

    /** Number of levels. */
    int numLevels() const { return static_cast<int>(caches_.size()); }

    /** Stats of level @p level (0 = innermost). */
    const CacheStats &stats(int level) const;

    /** Configured geometry of level @p level. */
    const CacheConfig &config(int level) const;

    /**
     * Bytes transferred into level @p level from the level above
     * (misses * line size): the measured DV_d of Equation 2.
     */
    double trafficIntoLevelBytes(int level) const;

    /** Bytes fetched from DRAM (outermost level's miss traffic). */
    double dramTrafficBytes() const;

    void reset();

  private:
    std::vector<Cache> caches_;
    int lineBytes_ = 64;
};

/**
 * The Xeon-Gold-6240-like hierarchy used by the Figure 8 experiments
 * (per-core L1d/L2 plus shared L3).
 */
std::vector<CacheConfig> xeonLikeCaches();

} // namespace chimera::cachesim
