#include "cachesim/gemm_trace.hpp"

#include <algorithm>

#include "ir/builders.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::cachesim {

using exec::GemmTiles;
using ir::GemmChainConfig;

namespace {

constexpr std::int64_t kElem = 4; ///< fp32 bytes

/** Base addresses of the chain's tensors in the simulated space. */
struct AddressMap
{
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t cGlobal = 0;
    std::int64_t d = 0;
    std::int64_t e = 0;
    std::int64_t cScratch = 0;
};

AddressMap
layoutTensors(const GemmChainConfig &cfg)
{
    auto align = [](std::int64_t v) { return roundUp(v, 4096); };
    AddressMap map;
    std::int64_t cursor = 0;
    map.a = cursor;
    cursor = align(cursor + cfg.batch * cfg.m * cfg.k * kElem);
    map.b = cursor;
    cursor = align(cursor + cfg.batch * cfg.k * cfg.l * kElem);
    map.cGlobal = cursor;
    cursor = align(cursor + cfg.batch * cfg.m * cfg.l * kElem);
    map.d = cursor;
    cursor = align(cursor + cfg.batch * cfg.l * cfg.n * kElem);
    map.e = cursor;
    cursor = align(cursor + cfg.batch * cfg.m * cfg.n * kElem);
    map.cScratch = cursor;
    return map;
}

/** Touches a [rows x cols] sub-block of a row-major matrix. */
void
touchBlock(CacheHierarchy &caches, std::int64_t base, std::int64_t ld,
           std::int64_t row0, std::int64_t col0, std::int64_t rows,
           std::int64_t cols)
{
    for (std::int64_t r = 0; r < rows; ++r) {
        caches.access(base + ((row0 + r) * ld + col0) * kElem,
                      cols * kElem);
    }
}

TraceResult
collect(const CacheHierarchy &caches)
{
    TraceResult result;
    for (int d = 0; d < caches.numLevels(); ++d) {
        result.trafficIntoLevelBytes.push_back(
            caches.trafficIntoLevelBytes(d));
        result.hitRates.push_back(caches.stats(d).hitRate());
    }
    result.dramBytes = caches.dramTrafficBytes();
    return result;
}

} // namespace

TraceResult
traceFusedGemmChain(const GemmChainConfig &config,
                    const plan::ExecutionPlan &plan,
                    const std::vector<CacheConfig> &levels,
                    const TraceOptions &options)
{
    const ir::Chain chain = ir::makeGemmChain(config);
    CHIMERA_CHECK(static_cast<int>(plan.tiles.size()) == chain.numAxes(),
                  "plan does not match the chain configuration");
    CacheHierarchy caches(levels);
    const AddressMap map = layoutTensors(config);

    auto tileOf = [&](const std::string &name, std::int64_t fallback) {
        for (int a = 0; a < chain.numAxes(); ++a) {
            if (chain.axes()[static_cast<std::size_t>(a)].name == name) {
                return plan.tiles[static_cast<std::size_t>(a)];
            }
        }
        return fallback;
    };
    const std::int64_t tb = tileOf("b", 1);
    const std::int64_t tm = tileOf("m", config.m);
    const std::int64_t tn = tileOf("n", config.n);
    const std::int64_t tk = tileOf("k", config.k);
    const std::int64_t tl = tileOf("l", config.l);

    struct Loop
    {
        char name;
        std::int64_t extent;
        std::int64_t tile;
    };
    std::vector<Loop> loops;
    for (ir::AxisId axis : plan.perm) {
        const std::string &name =
            chain.axes()[static_cast<std::size_t>(axis)].name;
        if (name == "b") {
            loops.push_back({'b', config.batch, tb});
        } else if (name == "m") {
            loops.push_back({'m', config.m, tm});
        } else if (name == "l") {
            loops.push_back({'l', config.l, tl});
        }
    }
    if (config.batch == 1) {
        loops.insert(loops.begin(), {'b', 1, 1});
    }

    const std::int64_t bigM = config.m;
    const std::int64_t bigN = config.n;
    const std::int64_t bigK = config.k;
    const std::int64_t bigL = config.l;

    for (std::int64_t i0 = 0; i0 < loops[0].extent; i0 += loops[0].tile) {
    for (std::int64_t i1 = 0; i1 < loops[1].extent; i1 += loops[1].tile) {
    for (std::int64_t i2 = 0; i2 < loops[2].extent; i2 += loops[2].tile) {
        std::int64_t b0 = 0, m0 = 0, l0 = 0, bb = 1, mm = 1, ll = 1;
        const std::int64_t starts[3] = {i0, i1, i2};
        for (int i = 0; i < 3; ++i) {
            const std::int64_t size = std::min<std::int64_t>(
                loops[i].tile, loops[i].extent - starts[i]);
            switch (loops[i].name) {
              case 'b': b0 = starts[i]; bb = size; break;
              case 'm': m0 = starts[i]; mm = size; break;
              case 'l': l0 = starts[i]; ll = size; break;
              default: break;
            }
        }

        for (std::int64_t k0 = 0; k0 < bigK; k0 += tk) {
            const std::int64_t kk = std::min<std::int64_t>(tk, bigK - k0);
            for (std::int64_t bi = 0; bi < bb; ++bi) {
                touchBlock(caches, map.a, bigK, (b0 + bi) * bigM + m0, k0,
                           mm, kk);
                touchBlock(caches, map.b, bigL, (b0 + bi) * bigK + k0, l0,
                           kk, ll);
                if (options.reuseIntermediate) {
                    touchBlock(caches, map.cScratch, ll, bi * mm, 0, mm,
                               ll);
                } else {
                    touchBlock(caches, map.cGlobal, bigL,
                               (b0 + bi) * bigM + m0, l0, mm, ll);
                }
            }
        }
        for (std::int64_t n0 = 0; n0 < bigN; n0 += tn) {
            const std::int64_t nn = std::min<std::int64_t>(tn, bigN - n0);
            for (std::int64_t bi = 0; bi < bb; ++bi) {
                if (options.reuseIntermediate) {
                    touchBlock(caches, map.cScratch, ll, bi * mm, 0, mm,
                               ll);
                } else {
                    touchBlock(caches, map.cGlobal, bigL,
                               (b0 + bi) * bigM + m0, l0, mm, ll);
                }
                touchBlock(caches, map.d, bigN, (b0 + bi) * bigL + l0, n0,
                           ll, nn);
                touchBlock(caches, map.e, bigN, (b0 + bi) * bigM + m0, n0,
                           mm, nn);
            }
        }
    }
    }
    }
    return collect(caches);
}

TraceResult
traceUnfusedGemmChain(const GemmChainConfig &config, const GemmTiles &tiles1,
                      const GemmTiles &tiles2,
                      const std::vector<CacheConfig> &levels)
{
    CacheHierarchy caches(levels);
    const AddressMap map = layoutTensors(config);

    // GEMM1: C = A x B over the full tensors, m-k-n(l) blocking as in
    // runTiledBatchGemm.
    auto traceGemm = [&](std::int64_t aBase, std::int64_t bBase,
                         std::int64_t cBase, std::int64_t m, std::int64_t n,
                         std::int64_t k, const GemmTiles &tiles) {
        for (std::int64_t bi = 0; bi < config.batch; ++bi) {
            for (std::int64_t m0 = 0; m0 < m; m0 += tiles.tm) {
                const std::int64_t mm =
                    std::min<std::int64_t>(tiles.tm, m - m0);
                for (std::int64_t k0 = 0; k0 < k; k0 += tiles.tk) {
                    const std::int64_t kk =
                        std::min<std::int64_t>(tiles.tk, k - k0);
                    for (std::int64_t n0 = 0; n0 < n; n0 += tiles.tn) {
                        const std::int64_t nn =
                            std::min<std::int64_t>(tiles.tn, n - n0);
                        touchBlock(caches, aBase, k, bi * m + m0, k0, mm,
                                   kk);
                        touchBlock(caches, bBase, n, bi * k + k0, n0, kk,
                                   nn);
                        touchBlock(caches, cBase, n, bi * m + m0, n0, mm,
                                   nn);
                    }
                }
            }
        }
    };

    traceGemm(map.a, map.b, map.cGlobal, config.m, config.l, config.k,
              tiles1);
    traceGemm(map.cGlobal, map.d, map.e, config.m, config.n, config.l,
              tiles2);
    return collect(caches);
}

} // namespace chimera::cachesim
