#include "cachesim/cache.hpp"

#include "support/error.hpp"

namespace chimera::cachesim {

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    CHIMERA_CHECK(config.sizeBytes > 0 && config.associativity > 0 &&
                      config.lineBytes > 0,
                  "invalid cache geometry");
    const std::int64_t lines = config.sizeBytes / config.lineBytes;
    CHIMERA_CHECK(lines >= config.associativity,
                  "cache smaller than one set");
    numSets_ = lines / config.associativity;
    CHIMERA_CHECK(numSets_ >= 1, "cache needs at least one set");
    ways_.assign(static_cast<std::size_t>(numSets_ * config.associativity),
                 Way{});
}

bool
Cache::accessLine(std::int64_t lineId)
{
    ++clock_;
    ++stats_.accesses;
    const std::int64_t set = lineId % numSets_;
    Way *base = ways_.data() + set * config_.associativity;

    Way *lru = base;
    for (int w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.tag == lineId) {
            way.lastUse = clock_;
            return true;
        }
        if (way.lastUse < lru->lastUse) {
            lru = &way;
        }
    }
    ++stats_.misses;
    lru->tag = lineId;
    lru->lastUse = clock_;
    return false;
}

void
Cache::reset()
{
    stats_ = CacheStats{};
    clock_ = 0;
    for (Way &way : ways_) {
        way = Way{};
    }
}

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig> &levels)
{
    CHIMERA_CHECK(!levels.empty(), "hierarchy needs at least one level");
    lineBytes_ = levels.front().lineBytes;
    for (const CacheConfig &config : levels) {
        CHIMERA_CHECK(config.lineBytes == lineBytes_,
                      "all levels must share one line size");
        caches_.emplace_back(config);
    }
    for (std::size_t d = 1; d < levels.size(); ++d) {
        CHIMERA_CHECK(levels[d].sizeBytes >= levels[d - 1].sizeBytes,
                      "levels must be ordered smallest first");
    }
}

void
CacheHierarchy::access(std::int64_t address, std::int64_t bytes)
{
    CHIMERA_CHECK(bytes > 0, "access must cover at least one byte");
    const std::int64_t first = address / lineBytes_;
    const std::int64_t last = (address + bytes - 1) / lineBytes_;
    for (std::int64_t line = first; line <= last; ++line) {
        for (Cache &cache : caches_) {
            if (cache.accessLine(line)) {
                break; // hit: inner levels already filled on the walk
            }
        }
    }
}

const CacheStats &
CacheHierarchy::stats(int level) const
{
    CHIMERA_CHECK(level >= 0 && level < numLevels(), "level out of range");
    return caches_[static_cast<std::size_t>(level)].stats();
}

const CacheConfig &
CacheHierarchy::config(int level) const
{
    CHIMERA_CHECK(level >= 0 && level < numLevels(), "level out of range");
    return caches_[static_cast<std::size_t>(level)].config();
}

double
CacheHierarchy::trafficIntoLevelBytes(int level) const
{
    return static_cast<double>(stats(level).misses) * lineBytes_;
}

double
CacheHierarchy::dramTrafficBytes() const
{
    return trafficIntoLevelBytes(numLevels() - 1);
}

void
CacheHierarchy::reset()
{
    for (Cache &cache : caches_) {
        cache.reset();
    }
}

std::vector<CacheConfig>
xeonLikeCaches()
{
    return {
        {"L1d", 32LL * 1024, 8, 64},
        {"L2", 1024LL * 1024, 16, 64},
        {"L3", 24LL * 1024 * 1024 + 768LL * 1024, 11, 64},
    };
}

} // namespace chimera::cachesim
