#pragma once

/**
 * @file
 * Block-level memory traces of the GEMM-chain executors, replayed
 * against the cache simulator. This is the measurement side of the
 * Figure 8 experiments: the fused/unfused executors' tile-touch
 * sequences are generated exactly as the executors issue them, and the
 * LRU hierarchy decides what actually moves between levels.
 */

#include "cachesim/cache.hpp"
#include "exec/gemm_chain_exec.hpp"
#include "ir/builders.hpp"
#include "plan/planner.hpp"

namespace chimera::cachesim {

/** Trace generation knobs. */
struct TraceOptions
{
    /**
     * When false, the intermediate C is addressed in its full DRAM-sized
     * tensor instead of the reused on-chip scratch region (Figure 8f's
     * "no intermediate reuse" configuration).
     */
    bool reuseIntermediate = true;
};

/** Measured per-level traffic of one traced execution. */
struct TraceResult
{
    /** Traffic into each level in bytes (misses * line), innermost first. */
    std::vector<double> trafficIntoLevelBytes;

    /** Hit rate per level. */
    std::vector<double> hitRates;

    /** Bytes fetched from DRAM. */
    double dramBytes = 0.0;
};

/**
 * Replays the fused executor's block touch sequence for @p plan.
 */
TraceResult traceFusedGemmChain(const ir::GemmChainConfig &config,
                                const plan::ExecutionPlan &plan,
                                const std::vector<CacheConfig> &levels,
                                const TraceOptions &options = {});

/**
 * Replays the unfused (library-style) executor: GEMM1 over the full
 * tensors with @p tiles1, intermediate in DRAM, then GEMM2 with
 * @p tiles2.
 */
TraceResult traceUnfusedGemmChain(const ir::GemmChainConfig &config,
                                  const exec::GemmTiles &tiles1,
                                  const exec::GemmTiles &tiles2,
                                  const std::vector<CacheConfig> &levels);

} // namespace chimera::cachesim
