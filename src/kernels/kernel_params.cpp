#include "kernels/kernel_params.hpp"

#include "support/error.hpp"

namespace chimera::kernels {

double
kernelArithmeticIntensity(int mi, int ni, int ki)
{
    CHIMERA_CHECK(mi >= 1 && ni >= 1 && ki >= 1,
                  "kernel parameters must be positive");
    const double compute = static_cast<double>(mi) * ni * ki;
    const double loadStore =
        static_cast<double>(ki) * (mi + ni) + 2.0 * mi * ni;
    return compute / loadStore;
}

CpuKernelParams
selectCpuKernelParams(int numRegisters)
{
    CHIMERA_CHECK(numRegisters >= 4, "too few vector registers");
    CpuKernelParams best;
    double bestProbeAi = 0.0;
    // KI large enough that the asymptotic AI dominates the comparison;
    // the paper sets KI dynamically at code generation time.
    constexpr int kProbeKi = 1 << 20;
    for (int mi = 1; mi <= numRegisters; ++mi) {
        for (int ni = 1; ni <= numRegisters; ++ni) {
            for (int mii = 2; mii <= mi; ++mii) {
                if (mi % mii != 0) {
                    continue; // Algorithm 2's mo loop steps by MII
                }
                const int regs = mi * ni + ni + mii;
                if (regs > numRegisters) {
                    continue;
                }
                const double ai = kernelArithmeticIntensity(mi, ni, kProbeKi);
                const bool better =
                    ai > bestProbeAi + 1e-12 ||
                    (ai > bestProbeAi - 1e-12 &&
                     (mi > best.mi || (mi == best.mi && mii < best.mii)));
                if (better) {
                    bestProbeAi = ai;
                    best.mi = mi;
                    best.ni = ni;
                    best.mii = mii;
                    best.arithmeticIntensity =
                        static_cast<double>(mi) * ni / (mi + ni);
                    best.registersUsed = regs;
                }
            }
        }
    }
    CHIMERA_CHECK(best.mi > 0, "no feasible kernel parameters");
    return best;
}

} // namespace chimera::kernels
