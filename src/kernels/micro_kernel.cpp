#include "kernels/micro_kernel.hpp"

#include <algorithm>

#include "support/error.hpp"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace chimera::kernels {

void
scalarMicroKernel(const float *aPack, const float *bPack, float *c,
                  std::int64_t ldc, int kc)
{
    float acc[kScalarMr][kScalarNr];
    for (int m = 0; m < kScalarMr; ++m) {
        for (int n = 0; n < kScalarNr; ++n) {
            acc[m][n] = c[m * ldc + n];
        }
    }
    for (int k = 0; k < kc; ++k) {
        const float *a = aPack + static_cast<std::int64_t>(k) * kScalarMr;
        const float *b = bPack + static_cast<std::int64_t>(k) * kScalarNr;
        for (int m = 0; m < kScalarMr; ++m) {
            for (int n = 0; n < kScalarNr; ++n) {
                acc[m][n] += a[m] * b[n];
            }
        }
    }
    for (int m = 0; m < kScalarMr; ++m) {
        for (int n = 0; n < kScalarNr; ++n) {
            c[m * ldc + n] = acc[m][n];
        }
    }
}

#if defined(__AVX2__)

namespace {

/**
 * AVX2 FMA kernel: MI=6, NI=2 x 8 lanes (the (6,2,2) solution of §V-B's
 * optimization for 16 YMM registers). Structure follows Algorithm 2:
 * load B vectors, broadcast A in MII groups, emit the FMA block.
 */
void
avx2MicroKernel(const float *aPack, const float *bPack, float *c,
                std::int64_t ldc, int kc)
{
    constexpr int kMr = 6;
    constexpr int kNr = 16;
    __m256 acc[kMr][2];
    for (int m = 0; m < kMr; ++m) {
        acc[m][0] = _mm256_loadu_ps(c + m * ldc);
        acc[m][1] = _mm256_loadu_ps(c + m * ldc + 8);
    }
    for (int k = 0; k < kc; ++k) {
        const float *a = aPack + static_cast<std::int64_t>(k) * kMr;
        const float *b = bPack + static_cast<std::int64_t>(k) * kNr;
        const __m256 b0 = _mm256_loadu_ps(b);
        const __m256 b1 = _mm256_loadu_ps(b + 8);
        for (int mo = 0; mo < kMr; mo += 2) {
            const __m256 a0 = _mm256_broadcast_ss(a + mo);
            const __m256 a1 = _mm256_broadcast_ss(a + mo + 1);
            acc[mo][0] = _mm256_fmadd_ps(a0, b0, acc[mo][0]);
            acc[mo][1] = _mm256_fmadd_ps(a0, b1, acc[mo][1]);
            acc[mo + 1][0] = _mm256_fmadd_ps(a1, b0, acc[mo + 1][0]);
            acc[mo + 1][1] = _mm256_fmadd_ps(a1, b1, acc[mo + 1][1]);
        }
    }
    for (int m = 0; m < kMr; ++m) {
        _mm256_storeu_ps(c + m * ldc, acc[m][0]);
        _mm256_storeu_ps(c + m * ldc + 8, acc[m][1]);
    }
}

} // namespace

#endif // __AVX2__

#if defined(__AVX512F__)

namespace {

/**
 * AVX-512 kernel per Algorithm 2 with the paper's CascadeLake choice
 * (MI, NI, MII) = (6, 4, 2): 24 ZMM accumulators, 4 B vectors, 2
 * in-flight A broadcasts — 30 of 32 registers.
 */
void
avx512MicroKernel(const float *aPack, const float *bPack, float *c,
                  std::int64_t ldc, int kc)
{
    constexpr int kMi = 6;
    constexpr int kNi = 4;
    constexpr int kMii = 2;
    constexpr int kNr = kNi * 16;
    __m512 acc[kMi][kNi];
    for (int m = 0; m < kMi; ++m) {
        for (int n = 0; n < kNi; ++n) {
            acc[m][n] = _mm512_loadu_ps(c + m * ldc + n * 16);
        }
    }
    for (int k = 0; k < kc; ++k) {
        const float *a = aPack + static_cast<std::int64_t>(k) * kMi;
        const float *b = bPack + static_cast<std::int64_t>(k) * kNr;
        __m512 bv[kNi];
        for (int n = 0; n < kNi; ++n) {
            bv[n] = _mm512_loadu_ps(b + n * 16);
        }
        for (int mo = 0; mo < kMi; mo += kMii) {
            const __m512 a0 = _mm512_set1_ps(a[mo]);
            const __m512 a1 = _mm512_set1_ps(a[mo + 1]);
            for (int n = 0; n < kNi; ++n) {
                acc[mo][n] = _mm512_fmadd_ps(a0, bv[n], acc[mo][n]);
            }
            for (int n = 0; n < kNi; ++n) {
                acc[mo + 1][n] = _mm512_fmadd_ps(a1, bv[n], acc[mo + 1][n]);
            }
        }
    }
    for (int m = 0; m < kMi; ++m) {
        for (int n = 0; n < kNi; ++n) {
            _mm512_storeu_ps(c + m * ldc + n * 16, acc[m][n]);
        }
    }
}

/**
 * Alternative AVX-512 register tile (MI, NI, MII) = (12, 2, 2): 24
 * accumulators over a taller, narrower tile (28 of 32 registers,
 * asymptotic AI 24/14 = 1.71 vs 2.4 for 6x4). Registered alongside the
 * default to exercise the paper's premise that multiple low-level
 * implementations coexist under one replaceable micro kernel; benches
 * can pin it by name to study the tile-shape trade-off.
 */
void
avx512TallMicroKernel(const float *aPack, const float *bPack, float *c,
                      std::int64_t ldc, int kc)
{
    constexpr int kMi = 12;
    constexpr int kNi = 2;
    constexpr int kNr = kNi * 16;
    __m512 acc[kMi][kNi];
    for (int m = 0; m < kMi; ++m) {
        for (int n = 0; n < kNi; ++n) {
            acc[m][n] = _mm512_loadu_ps(c + m * ldc + n * 16);
        }
    }
    for (int k = 0; k < kc; ++k) {
        const float *a = aPack + static_cast<std::int64_t>(k) * kMi;
        const float *b = bPack + static_cast<std::int64_t>(k) * kNr;
        const __m512 b0 = _mm512_loadu_ps(b);
        const __m512 b1 = _mm512_loadu_ps(b + 16);
        for (int mo = 0; mo < kMi; mo += 2) {
            const __m512 a0 = _mm512_set1_ps(a[mo]);
            const __m512 a1 = _mm512_set1_ps(a[mo + 1]);
            acc[mo][0] = _mm512_fmadd_ps(a0, b0, acc[mo][0]);
            acc[mo][1] = _mm512_fmadd_ps(a0, b1, acc[mo][1]);
            acc[mo + 1][0] = _mm512_fmadd_ps(a1, b0, acc[mo + 1][0]);
            acc[mo + 1][1] = _mm512_fmadd_ps(a1, b1, acc[mo + 1][1]);
        }
    }
    for (int m = 0; m < kMi; ++m) {
        for (int n = 0; n < kNi; ++n) {
            _mm512_storeu_ps(c + m * ldc + n * 16, acc[m][n]);
        }
    }
}

} // namespace

#endif // __AVX512F__

MicroKernelRegistry::MicroKernelRegistry()
{
    add(MicroKernel{"scalar_6x16", SimdTier::Scalar, kScalarMr, kScalarNr,
                    &scalarMicroKernel});
#if defined(__AVX2__)
    add(MicroKernel{"avx2_6x16", SimdTier::Avx2Fma, 6, 16,
                    &avx2MicroKernel});
#endif
#if defined(__AVX512F__)
    add(MicroKernel{"avx512_6x64", SimdTier::Avx512, 6, 64,
                    &avx512MicroKernel});
    add(MicroKernel{"avx512_12x32", SimdTier::Avx512, 12, 32,
                    &avx512TallMicroKernel});
#endif
}

const MicroKernelRegistry &
MicroKernelRegistry::instance()
{
    static const MicroKernelRegistry registry;
    return registry;
}

void
MicroKernelRegistry::add(const MicroKernel &kernel)
{
    CHIMERA_CHECK(kernel.fn != nullptr && kernel.mr > 0 && kernel.nr > 0,
                  "malformed micro kernel registration");
    kernels_.push_back(kernel);
}

const MicroKernel &
MicroKernelRegistry::select(SimdTier maxTier) const
{
    const MicroKernel *best = nullptr;
    for (const MicroKernel &kernel : kernels_) {
        if (static_cast<int>(kernel.tier) > static_cast<int>(maxTier)) {
            continue;
        }
        if (best == nullptr ||
            static_cast<int>(kernel.tier) > static_cast<int>(best->tier)) {
            best = &kernel;
        }
    }
    CHIMERA_ASSERT(best != nullptr, "scalar kernel must always register");
    return *best;
}

const MicroKernel &
MicroKernelRegistry::byName(const std::string &name) const
{
    for (const MicroKernel &kernel : kernels_) {
        if (kernel.name == name) {
            return kernel;
        }
    }
    throw Error("unknown micro kernel: " + name);
}

} // namespace chimera::kernels
