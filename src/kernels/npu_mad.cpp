#include "kernels/npu_mad.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace chimera::kernels {

namespace {

std::size_t
packedAElems(const MadShape &s)
{
    return static_cast<std::size_t>(s.m1) * s.k1 * s.m2 * s.k2;
}

std::size_t
packedBElems(const MadShape &s)
{
    return static_cast<std::size_t>(s.k1) * s.n1 * s.n2 * s.k2;
}

std::size_t
packedCElems(const MadShape &s)
{
    return static_cast<std::size_t>(s.m1) * s.n1 * s.m2 * s.n2;
}

} // namespace

void
packMadA(const float *a, std::int64_t lda, std::int64_t rows,
         std::int64_t depth, const MadShape &shape, float *dst)
{
    std::memset(dst, 0, packedAElems(shape) * sizeof(float));
    for (std::int64_t r = 0; r < std::min<std::int64_t>(rows,
                                                        shape.rows());
         ++r) {
        const int m1 = static_cast<int>(r / shape.m2);
        const int m2 = static_cast<int>(r % shape.m2);
        for (std::int64_t kIdx = 0;
             kIdx < std::min<std::int64_t>(depth, shape.depth()); ++kIdx) {
            const int k1 = static_cast<int>(kIdx / shape.k2);
            const int k2 = static_cast<int>(kIdx % shape.k2);
            dst[((static_cast<std::size_t>(m1) * shape.k1 + k1) *
                     shape.m2 +
                 m2) *
                    shape.k2 +
                k2] = a[r * lda + kIdx];
        }
    }
}

void
packMadB(const float *b, std::int64_t ldb, std::int64_t depth,
         std::int64_t cols, const MadShape &shape, float *dst)
{
    std::memset(dst, 0, packedBElems(shape) * sizeof(float));
    for (std::int64_t kIdx = 0;
         kIdx < std::min<std::int64_t>(depth, shape.depth()); ++kIdx) {
        const int k1 = static_cast<int>(kIdx / shape.k2);
        const int k2 = static_cast<int>(kIdx % shape.k2);
        for (std::int64_t c = 0;
             c < std::min<std::int64_t>(cols, shape.cols()); ++c) {
            const int n1 = static_cast<int>(c / shape.n2);
            const int n2 = static_cast<int>(c % shape.n2);
            dst[((static_cast<std::size_t>(k1) * shape.n1 + n1) *
                     shape.n2 +
                 n2) *
                    shape.k2 +
                k2] = b[kIdx * ldb + c];
        }
    }
}

void
madCompute(const float *aPack, const float *bPack, float *cPack,
           const MadShape &s)
{
    // The six-loop nest the `mad` pragma lowers to (§V-B):
    // C[m1,n1,m2,n2] += A[m1,k1,m2,k2] * B[k1,n1,n2,k2].
    for (int m1 = 0; m1 < s.m1; ++m1) {
        for (int n1 = 0; n1 < s.n1; ++n1) {
            float *cBlock =
                cPack + ((static_cast<std::size_t>(m1) * s.n1 + n1) *
                         s.m2 * s.n2);
            for (int k1 = 0; k1 < s.k1; ++k1) {
                const float *aBlock =
                    aPack + ((static_cast<std::size_t>(m1) * s.k1 + k1) *
                             s.m2 * s.k2);
                const float *bBlock =
                    bPack + ((static_cast<std::size_t>(k1) * s.n1 + n1) *
                             s.n2 * s.k2);
                for (int m2 = 0; m2 < s.m2; ++m2) {
                    for (int n2 = 0; n2 < s.n2; ++n2) {
                        float acc = 0.0f;
                        for (int k2 = 0; k2 < s.k2; ++k2) {
                            acc += aBlock[m2 * s.k2 + k2] *
                                   bBlock[n2 * s.k2 + k2];
                        }
                        cBlock[m2 * s.n2 + n2] += acc;
                    }
                }
            }
        }
    }
}

void
unpackMadC(const float *cPack, const MadShape &shape, float *c,
           std::int64_t ldc, std::int64_t rows, std::int64_t cols)
{
    for (std::int64_t r = 0; r < std::min<std::int64_t>(rows,
                                                        shape.rows());
         ++r) {
        const int m1 = static_cast<int>(r / shape.m2);
        const int m2 = static_cast<int>(r % shape.m2);
        for (std::int64_t col = 0;
             col < std::min<std::int64_t>(cols, shape.cols()); ++col) {
            const int n1 = static_cast<int>(col / shape.n2);
            const int n2 = static_cast<int>(col % shape.n2);
            c[r * ldc + col] +=
                cPack[((static_cast<std::size_t>(m1) * shape.n1 + n1) *
                           shape.m2 +
                       m2) *
                          shape.n2 +
                      n2];
        }
    }
}

void
madMatmul(const Tensor &a, const Tensor &b, Tensor &c,
          const MadShape &shape)
{
    CHIMERA_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
                  "madMatmul expects rank-2 tensors");
    const std::int64_t m = a.shape()[0];
    const std::int64_t k = a.shape()[1];
    const std::int64_t n = b.shape()[1];
    CHIMERA_CHECK(b.shape()[0] == k && c.shape()[0] == m &&
                      c.shape()[1] == n,
                  "madMatmul shape mismatch");

    std::vector<float> aPack(packedAElems(shape));
    std::vector<float> bPack(packedBElems(shape));
    std::vector<float> cPack(packedCElems(shape));
    c.zero();

    for (std::int64_t m0 = 0; m0 < m; m0 += shape.rows()) {
        const std::int64_t rows = std::min<std::int64_t>(shape.rows(),
                                                         m - m0);
        for (std::int64_t n0 = 0; n0 < n; n0 += shape.cols()) {
            const std::int64_t cols =
                std::min<std::int64_t>(shape.cols(), n - n0);
            std::fill(cPack.begin(), cPack.end(), 0.0f);
            for (std::int64_t k0 = 0; k0 < k; k0 += shape.depth()) {
                const std::int64_t depth =
                    std::min<std::int64_t>(shape.depth(), k - k0);
                packMadA(a.data() + m0 * k + k0, k, rows, depth, shape,
                         aPack.data());
                packMadB(b.data() + k0 * n + n0, n, depth, cols, shape,
                         bPack.data());
                madCompute(aPack.data(), bPack.data(), cPack.data(),
                           shape);
            }
            unpackMadC(cPack.data(), shape, c.data() + m0 * n + n0, n,
                       rows, cols);
        }
    }
}

double
madArithmeticIntensity(const MadShape &s)
{
    const double compute = static_cast<double>(s.m1) * s.m2 * s.n1 * s.n2;
    const double loads = static_cast<double>(s.m1) * s.m2 +
                         static_cast<double>(s.n1) * s.n2;
    return compute / loads;
}

MadShape
selectMadShape(int lanes, std::int64_t l0aBytes, std::int64_t l0bBytes,
               int k1)
{
    CHIMERA_CHECK(lanes >= 1 && l0aBytes > 0 && l0bBytes > 0 && k1 >= 1,
                  "bad mad shape parameters");
    MadShape shape;
    shape.m2 = lanes; // M2 = N2 = Lane_of_cube_units (§V-B)
    shape.n2 = lanes;
    shape.k2 = lanes;
    shape.k1 = k1;
    // M1 = N1 maximal such that the packed operands fit L0A/L0B.
    constexpr std::int64_t kElem = 4;
    int best = 1;
    for (int m1 = 1; m1 <= 1024; ++m1) {
        const std::int64_t aBytes = static_cast<std::int64_t>(m1) * k1 *
                                    lanes * lanes * kElem;
        const std::int64_t bBytes = static_cast<std::int64_t>(k1) * m1 *
                                    lanes * lanes * kElem;
        if (aBytes <= l0aBytes && bBytes <= l0bBytes) {
            best = m1;
        } else {
            break;
        }
    }
    shape.m1 = best;
    shape.n1 = best;
    return shape;
}

} // namespace chimera::kernels
