#pragma once

/**
 * @file
 * Block-level matrix multiply built on the replaceable micro kernel:
 * packs operand panels and walks MR x NR register tiles. This is the
 * computation performed inside one inter-block computation block; the
 * executors (src/exec) call it once per block in the planned order.
 */

#include <cstdint>

#include "kernels/micro_kernel.hpp"
#include "support/aligned.hpp"

namespace chimera::kernels {

/** Reusable packing/scratch buffers; grows monotonically. */
class Workspace
{
  public:
    /** Returns a buffer of at least @p elems floats for packed A. */
    float *ensureA(std::size_t elems);

    /** Returns a buffer of at least @p elems floats for packed B. */
    float *ensureB(std::size_t elems);

    /** Returns a zeroable scratch of at least @p elems floats. */
    float *ensureScratch(std::size_t elems);

  private:
    AlignedBuffer<float> a_;
    AlignedBuffer<float> b_;
    AlignedBuffer<float> scratch_;
    std::size_t aCap_ = 0;
    std::size_t bCap_ = 0;
    std::size_t scratchCap_ = 0;
};

/**
 * Packs one A panel: dst[k*mr + m] = a[m*lda + k], zero-padded when
 * @p rows < @p mr.
 */
void packAPanel(const float *a, std::int64_t lda, int rows, std::int64_t kc,
                int mr, float *dst);

/**
 * Packs one B panel: dst[k*nr + n] = b[k*ldb + n], zero-padded when
 * @p cols < @p nr.
 */
void packBPanel(const float *b, std::int64_t ldb, std::int64_t kc, int cols,
                int nr, float *dst);

/**
 * C[m x n] += A[m x k] * B[k x n] on strided buffers using @p kernel.
 * Edge tiles are computed into a zeroed scratch and accumulated back.
 */
void blockMatmul(const MicroKernel &kernel, const float *a, std::int64_t lda,
                 const float *b, std::int64_t ldb, float *c, std::int64_t ldc,
                 std::int64_t m, std::int64_t n, std::int64_t k,
                 Workspace &workspace);

/**
 * Reference block matmul without packing or SIMD: the ablation study's
 * "micro kernel disabled" configuration (Figure 10, version without M).
 */
void naiveBlockMatmul(const float *a, std::int64_t lda, const float *b,
                      std::int64_t ldb, float *c, std::int64_t ldc,
                      std::int64_t m, std::int64_t n, std::int64_t k);

} // namespace chimera::kernels
